#include "quant/qdq_elim.h"

#include <map>
#include <set>
#include <utility>
#include <vector>

#include "graph/op_cost.h"

namespace ngb {
namespace quant {

namespace {

/** Per-value consumer census of a graph. */
struct UseInfo {
    // value -> consuming node ids (one entry per use).
    std::map<std::pair<int, int>, std::vector<int>> consumers;
    std::set<std::pair<int, int>> graphOutputs;

    explicit UseInfo(const Graph &g)
    {
        for (const Node &n : g.nodes())
            for (const Value &v : n.inputs)
                consumers[{v.node, v.index}].push_back(n.id);
        for (const Value &v : g.graphOutputs())
            graphOutputs.insert({v.node, v.index});
    }

    /** The single consuming node of @p v when it has exactly one use
     *  and is not a graph output; -1 otherwise. */
    int soleConsumer(const Value &v) const
    {
        if (graphOutputs.count({v.node, v.index}))
            return -1;
        auto it = consumers.find({v.node, v.index});
        if (it == consumers.end() || it->second.size() != 1)
            return -1;
        return it->second.front();
    }
};

bool
isExec(const Node &n)
{
    return n.attrs.getI("executable", 0) != 0;
}

/**
 * Rebuild @p src, letting @p rewrite intercept each node. The callback
 * returns true when it emitted replacement value mappings itself (or
 * arranged for a later node to be skipped); false to copy the node
 * verbatim (with inputs remapped and cost recomputed).
 */
template <class RewriteFn>
Graph
rebuild(const Graph &src, RewriteFn rewrite)
{
    Graph dst;
    dst.setName(src.name());
    std::map<std::pair<int, int>, Value> remap;
    std::set<int> skip;
    auto mapped = [&](const Value &v) { return remap.at({v.node, v.index}); };

    for (const Node &n : src.nodes()) {
        if (skip.count(n.id))
            continue;
        if (rewrite(dst, n, remap, skip, mapped))
            continue;
        Node c = n;
        c.id = -1;
        for (Value &v : c.inputs)
            v = mapped(v);
        if (!n.inputs.empty())
            c.cost = computeOpCost(c, dst);
        int id = dst.addNode(std::move(c));
        for (size_t i = 0; i < n.outShapes.size(); ++i)
            remap[{n.id, static_cast<int>(i)}] =
                Value{id, static_cast<int>(i)};
    }

    // Input-ness is a graph property, not a node-shape one (a param
    // node also has no inputs): remap the declared list verbatim.
    for (const Value &v : src.graphInputs())
        dst.markInput(mapped(v));
    for (const Value &v : src.graphOutputs())
        dst.markOutput(mapped(v));
    return dst;
}

}  // namespace

Graph
cancelQdqPairs(const Graph &src, QdqElimStats *stats)
{
    UseInfo uses(src);
    int64_t cancelled = 0;

    Graph out = rebuild(
        src, [&](Graph &dst, const Node &n, auto &remap, auto &skip,
                 auto &mapped) -> bool {
            if (n.kind != OpKind::Dequantize || !isExec(n))
                return false;
            int qid = uses.soleConsumer(Value{n.id, 0});
            if (qid < 0)
                return false;
            const Node &q = src.node(qid);
            if (q.kind != OpKind::Quantize || !isExec(q) ||
                q.attrs.getI("fused_qdq", 0))
                return false;

            // One requantize node: i32 accumulators in, the NEXT
            // region's int8 activation (+ its scale) out. Keeps the
            // Dequantize's params (weight for the per-channel scales,
            // optional bias) and seed, produces the Quantize's outputs.
            Node rq;
            rq.kind = OpKind::Quantize;
            rq.name = n.name + "+" + q.name;
            rq.inputs.clear();
            for (const Value &v : n.inputs)
                rq.inputs.push_back(mapped(v));
            rq.outShapes = q.outShapes;
            rq.outDtypes = q.outDtypes;
            rq.paramShapes = n.paramShapes;
            rq.paramDtype = n.paramDtype;
            rq.attrs = n.attrs;
            rq.attrs.set("fused_qdq", 1).set("kernels", 3);
            rq.cost = computeOpCost(rq, dst);
            int id = dst.addNode(std::move(rq));
            skip.insert(qid);
            for (size_t i = 0; i < q.outShapes.size(); ++i)
                remap[{qid, static_cast<int>(i)}] =
                    Value{id, static_cast<int>(i)};
            ++cancelled;
            return true;
        });

    if (stats)
        stats->pairsCancelled += cancelled;
    return out;
}

Graph
foldRequantize(const Graph &src, QdqElimStats *stats)
{
    UseInfo uses(src);
    int64_t folded = 0;

    Graph out = rebuild(
        src, [&](Graph &dst, const Node &n, auto &remap, auto &skip,
                 auto &mapped) -> bool {
            if (n.kind != OpKind::Int8Linear || !isExec(n) ||
                n.attrs.getI("requant", 0))
                return false;
            int did = uses.soleConsumer(Value{n.id, 0});
            if (did < 0)
                return false;
            const Node &d = src.node(did);
            if (d.kind != OpKind::Dequantize || !isExec(d) ||
                !(d.inputs[0] == Value{n.id, 0}))
                return false;

            // Fold the rescale + bias into the GEMM write-out: the
            // node keeps its int8 GEMM inputs but now emits the
            // finished F32 activation; the i32 accumulator tensor no
            // longer exists.
            Node fl = n;
            fl.id = -1;
            for (Value &v : fl.inputs)
                v = mapped(v);
            fl.outDtypes = {DType::F32};
            fl.paramShapes = d.paramShapes;
            fl.paramDtype = d.paramDtype;
            fl.attrs.set("requant", 1);
            fl.cost = computeOpCost(fl, dst);
            int id = dst.addNode(std::move(fl));
            skip.insert(did);
            remap[{n.id, 0}] = Value{id, 0};
            remap[{did, 0}] = Value{id, 0};
            ++folded;
            return true;
        });

    if (stats)
        stats->requantFolded += folded;
    return out;
}

Graph
eliminateQdq(const Graph &src, QdqElimStats *stats)
{
    return foldRequantize(cancelQdqPairs(src, stats), stats);
}

}  // namespace quant
}  // namespace ngb
