#ifndef NGB_QUANT_WEIGHT_PACK_H
#define NGB_QUANT_WEIGHT_PACK_H

#include <cstdint>

#include "graph/param_store.h"
#include "tensor/tensor.h"

/**
 * @file
 * Packed int8 weights for the executable quantization subsystem.
 *
 * A quantized GEMM node keeps its master parameter in F32 (ParamStore
 * seeds Gaussians whose std is far below one int8 step, so storing the
 * master narrow would round every weight to zero — the modeled legacy
 * path's known defect). The int8 representation the kernels actually
 * stream is derived once per node through ParamStore::derived:
 * per-output-channel symmetric scales plus the quantized weight in
 * either the reference row layout [N,K] or the packed [K,N] layout the
 * tiled GEMM core wants. Both backends derive from the same master
 * with the same rounding, which is what makes int8 execution
 * bit-identical across backends (i32 accumulation is exact).
 */

namespace ngb {
namespace quant {

// ParamStore::derived slots used on quantized nodes. Slots 0/1 belong
// to the fusion layer (packed f32 Linear weight / folded conv affine);
// the quant layer claims a disjoint range.
constexpr size_t kWeightScaleSlot = 8;   ///< per-channel scales, F32 [N]
constexpr size_t kPackedWeightSlot = 9;  ///< packed int8 weight, I8 [K,N]
constexpr size_t kRowWeightSlot = 10;    ///< row-major int8 weight, I8 [N,K]

/**
 * Per-output-channel symmetric scales for a [N,K] weight:
 * s[n] = absmax(w[n,:]) / 127, with 1.0 for all-zero rows so the
 * quantized row is exactly zero instead of dividing by zero.
 */
Tensor perChannelScales(const Tensor &w);

/**
 * Quantize a [N,K] f32 weight to int8 rows with @p scales, saturating
 * to [-128,127] and rounding half away from zero — exactly the Tensor
 * I8 store convention, so round-tripping through an I8 tensor is the
 * identity.
 */
Tensor quantizeWeightRows(const Tensor &w, const Tensor &scales);

/**
 * Quantize AND transpose to the [K,N] layout the tiled int8 GEMM core
 * streams (the int8 analogue of opt::packWeightTranspose). Same
 * per-element values as quantizeWeightRows.
 */
Tensor packWeightInt8(const Tensor &w, const Tensor &scales);

/**
 * Dequantize an int8 [N,K] row weight back to f32: w[n,k] =
 * wq[n,k] * s[n]. Used by round-trip tests and to reason about the
 * weight-only method's effective weight.
 */
Tensor unpackWeightInt8(const Tensor &wq, const Tensor &scales);

/** Memoized per-channel scales of @p n's weight (param 0). */
const Tensor &weightScales(const Node &n, ParamStore &params);

/** Memoized packed [K,N] int8 weight of @p n (optimized layout). */
const Tensor &packedWeight(const Node &n, ParamStore &params);

/** Memoized [N,K] int8 weight of @p n (reference layout). */
const Tensor &rowWeight(const Node &n, ParamStore &params);

/** Bytes of the int8 representation of a [N,K] weight: the quantized
 *  elements plus the f32 per-channel scales. */
int64_t packedWeightBytes(const Shape &w);

/** Bytes of the f32 weight the int8 representation replaces. */
int64_t floatWeightBytes(const Shape &w);

}  // namespace quant
}  // namespace ngb

#endif  // NGB_QUANT_WEIGHT_PACK_H
