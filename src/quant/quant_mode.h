#ifndef NGB_QUANT_QUANT_MODE_H
#define NGB_QUANT_QUANT_MODE_H

#include <cstdint>
#include <string>

#include "graph/graph.h"
#include "quant/quantize_pass.h"

/**
 * @file
 * The executable quantization modes the runtime, the serving engine,
 * and the CLI A/B on: one switch that names which rewrite the graph
 * gets before fusion and planning.
 *
 *   off      float baseline (no rewrite)
 *   int8     executable LLM.int8() + Q/DQ elimination — the production
 *            form: requantize fused into GEMM epilogues, adjacent
 *            DQ->Q pairs cancelled
 *   int8-raw executable LLM.int8() WITHOUT elimination — the granular
 *            Q -> Int8Linear -> DQ pipeline, kept as the A/B contrast
 *            (bit-identical outputs to int8, more ops and arena)
 *   w8       weight-only int8 — int8 weights dequantized inside the
 *            GEMM, float activations, no Q/DQ ops at all
 */

namespace ngb {
namespace quant {

/** Which executable quantization rewrite to run (see file comment). */
enum class QuantExecMode { Off, Int8, Int8Raw, WeightOnly };

/** Canonical CLI/report name: "off", "int8", "int8-raw", "w8". */
const char *quantModeName(QuantExecMode m);

/**
 * Parse a --quant / $NGB_QUANT value. Accepts "", "0", "off" -> Off;
 * "1", "int8" -> Int8; "int8-raw", "raw" -> Int8Raw; "w8",
 * "weight-only" -> WeightOnly. Throws on anything else.
 */
QuantExecMode parseQuantMode(const std::string &s);

/** Mode from $NGB_QUANT (Off when unset). */
QuantExecMode quantModeFromEnv();

/**
 * The QuantizeConfig the executable modes run with: executable
 * emission, minInFeatures lowered to 32 (the registry's scale-8 build
 * shrinks K well below the modeled default of 512), no outlier side
 * path (its Slice is a modeled construct).
 */
QuantizeConfig executableQuantConfig(QuantExecMode m);

/**
 * Apply @p mode to @p g: the executable quantize rewrite, plus
 * eliminateQdq for Int8. Returns @p g unchanged for Off. Stats (when
 * requested) include the elimination counters.
 */
Graph applyQuantMode(const Graph &g, QuantExecMode mode,
                     QuantizeStats *stats = nullptr);

// ----- profile attribution helpers ---------------------------------------

/** Static census of a (possibly fused) quantized graph, embedded in
 *  runtime/serve profiles so reports can attribute int8 execution. */
struct QuantExecStats {
    bool quantized = false;        ///< any int8 execution in the graph
    int64_t int8Gemms = 0;         ///< GEMM nodes running int8 weights
    int64_t qdqOps = 0;            ///< standalone Q/DQ/requantize nodes
    int64_t packedWeightBytes = 0; ///< int8 weights + f32 scales
    int64_t floatWeightBytes = 0;  ///< f32 bytes those weights replace

    // Measured kernel-time attribution, filled by the runtime drivers.
    double int8GemmUs = 0;   ///< time in int8-weight GEMM kernels
    double floatGemmUs = 0;  ///< time in float GEMM-category kernels
    double qdqUs = 0;        ///< time in standalone Q/DQ kernels

    /** Weight-memory reduction factor of the quantized GEMMs. */
    double weightCompression() const
    {
        return packedWeightBytes > 0
                   ? static_cast<double>(floatWeightBytes) /
                         static_cast<double>(packedWeightBytes)
                   : 1.0;
    }
};

/** True when @p n executes an int8-weight GEMM: an executable
 *  Int8Linear, a wq8 Linear, or a Fused group headed by either. */
bool isInt8GemmNode(const Node &n);

/** True when @p n is a standalone executable Q/DQ/requantize node. */
bool isQdqExecNode(const Node &n);

/** Static census of @p g (counts + weight bytes; times stay zero). */
QuantExecStats quantExecStatsOf(const Graph &g);

}  // namespace quant
}  // namespace ngb

#endif  // NGB_QUANT_QUANT_MODE_H
