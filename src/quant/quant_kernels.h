#ifndef NGB_QUANT_QUANT_KERNELS_H
#define NGB_QUANT_QUANT_KERNELS_H

#include <cmath>
#include <cstdint>
#include <utility>

#include "ops/scalar_ops.h"
#include "tensor/tensor.h"

/**
 * @file
 * Executable int8 GEMM kernels: i8 x i8 -> i32 accumulation with the
 * requantize step fused into the 4x16 tile write-out epilogue, plus
 * the dynamic activation quantization and granular requantize kernels
 * the unfused Q -> Int8Linear -> DQ pipeline runs.
 *
 * Bit-identity contract: i32 accumulation is exact (no rounding), so
 * the tiled packed kernels and the naive row-layout kernels produce
 * the SAME accumulators in any summation order; both then evaluate the
 * single shared float epilogue expression (requantOne + bias +
 * scalar::applyStages). int8 execution is therefore bit-identical
 * across backends, runtimes, and fused-vs-granular graph forms — the
 * tolerance contract is only against the float baseline. The
 * weight-only kernels accumulate in f32 but k-ascending without
 * reassociation or zero-skipping on both layouts, so they are
 * bit-identical across backends too.
 */

namespace ngb {

class ParallelRegion;

namespace kernels {
namespace qnt {

/**
 * Saturating f32 -> i8 cast: clamp to [-128,127], round half away from
 * zero — exactly the Tensor I8 storeElement convention, so the raw
 * pointer fast paths and the flatSet fallbacks quantize identically.
 */
inline int8_t
satCastI8(float v)
{
    float c = v < -128.0f ? -128.0f : (v > 127.0f ? 127.0f : v);
    return static_cast<int8_t>(std::lround(c));
}

/**
 * The shared requantize epilogue expression: accumulator times the
 * combined activation/channel scale. Every int8 kernel (tiled or
 * naive) and the granular Dequantize kernel evaluate THIS expression —
 * sharing the literal float expression is what keeps fused and
 * granular quantized execution bit-identical.
 */
inline float
requantOne(int32_t acc, float xScale, float wScale)
{
    return static_cast<float>(acc) * (xScale * wScale);
}

/** Read a [1] activation-scale tensor; throws when the scale is not a
 *  positive finite value (a zero scale would be a silent div-by-zero
 *  upstream, so it is rejected loudly here). */
float scaleValue(const Tensor &scale);

/**
 * Dynamic absmax activation quantization: scale = absmax/127 (1.0 for
 * an all-zero tensor), xq = saturate(round(x / scale)). Returns
 * {xq I8 (x's shape), scale F32 [1]}.
 */
std::pair<Tensor, Tensor> quantizeActivation(const Tensor &x,
                                             Tensor dstQ = {},
                                             Tensor dstScale = {});

/** Symmetric int8 quantization with an explicit scale; throws when the
 *  scale is not positive and finite. */
Tensor quantizeWithScale(const Tensor &x, float scale, Tensor dst = {});

// ----- granular pipeline (reference row layout, [N,K] weights) -----------

/** xq [..,K] i8 times wq [N,K] i8 -> raw i32 accumulators [..,N]. */
Tensor int8AccLinear(const Tensor &xq, const Tensor &wq, Tensor dst = {});

/**
 * The granular Dequantize kernel: i32 accumulators back to f32 with
 * the per-channel rescale and the bias applied after it —
 * y[..,n] = requantOne(acc, xScale, wScales[n]) + bias[n].
 */
Tensor requantize(const Tensor &acc, float xScale, const Tensor &wScales,
                  const Tensor &bias, Tensor dst = {});

/** Naive int8 GEMM with the full requantize epilogue (+ optional fused
 *  point-wise @p stages) in the write-out; [N,K] weight layout. */
Tensor int8LinearRequant(const Tensor &xq, float xScale, const Tensor &wq,
                         const Tensor &wScales, const Tensor &bias,
                         const scalar::UnaryStage *stages, size_t nStages,
                         Tensor dst = {});

// ----- packed tiled kernels ([K,N] weights from packWeightInt8) ----------
//
// The packed entries take an optional ParallelRegion. Null (the
// default) runs the unchanged serial tile loop; a region shards the
// output into row blocks across the pool workers. Rows are independent
// (exact i32 sums, or per-row k-ascending f32 chains for weight-only),
// so any row partition is bit-identical to the serial sweep — the K
// reduction is never split.

/** Tiled i8 GEMM -> raw i32 accumulators (packed [K,N] weight). */
Tensor int8AccLinearPacked(const Tensor &xq, const Tensor &wtq,
                           Tensor dst = {},
                           const ParallelRegion *par = nullptr);

/**
 * The fused int8 GEMM: 4x16 register-tiled i8 x i8 -> i32 core with
 * the requantize rescale, the bias, and the point-wise @p stages fused
 * into the tile write-out epilogue. This is the kernel behind
 * Int8Linear-headed fused groups under the optimized backend.
 */
Tensor int8LinearPackedRequant(const Tensor &xq, float xScale,
                               const Tensor &wtq, const Tensor &wScales,
                               const Tensor &bias,
                               const scalar::UnaryStage *stages,
                               size_t nStages, Tensor dst = {},
                               const ParallelRegion *par = nullptr);

// ----- weight-only int8 (f32 activations, int8 weights) ------------------

/** Naive weight-only linear: f32 x times int8 [N,K] weight,
 *  dequantized inside the k loop's f32 accumulation; the per-channel
 *  scale multiplies the finished accumulator. */
Tensor w8Linear(const Tensor &x, const Tensor &wq, const Tensor &wScales,
                const Tensor &bias, Tensor dst = {});

/** Tiled weight-only linear over a packed [K,N] int8 weight with the
 *  scale/bias/stages epilogue fused into the tile write-out. */
Tensor w8LinearPacked(const Tensor &x, const Tensor &wtq,
                      const Tensor &wScales, const Tensor &bias,
                      const scalar::UnaryStage *stages, size_t nStages,
                      Tensor dst = {},
                      const ParallelRegion *par = nullptr);

}  // namespace qnt
}  // namespace kernels
}  // namespace ngb

#endif  // NGB_QUANT_QUANT_KERNELS_H
