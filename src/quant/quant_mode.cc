#include "quant/quant_mode.h"

#include <cstdlib>
#include <stdexcept>

#include "obs/metrics.h"
#include "quant/qdq_elim.h"
#include "quant/weight_pack.h"

namespace ngb {
namespace quant {

const char *
quantModeName(QuantExecMode m)
{
    switch (m) {
    case QuantExecMode::Off:
        return "off";
    case QuantExecMode::Int8:
        return "int8";
    case QuantExecMode::Int8Raw:
        return "int8-raw";
    case QuantExecMode::WeightOnly:
        return "w8";
    }
    return "off";
}

QuantExecMode
parseQuantMode(const std::string &s)
{
    if (s.empty() || s == "0" || s == "off")
        return QuantExecMode::Off;
    if (s == "1" || s == "int8")
        return QuantExecMode::Int8;
    if (s == "int8-raw" || s == "raw")
        return QuantExecMode::Int8Raw;
    if (s == "w8" || s == "weight-only")
        return QuantExecMode::WeightOnly;
    throw std::runtime_error(
        "unknown quant mode '" + s +
        "' (expected off, int8, int8-raw, or w8)");
}

QuantExecMode
quantModeFromEnv()
{
    const char *v = std::getenv("NGB_QUANT");
    return v ? parseQuantMode(v) : QuantExecMode::Off;
}

QuantizeConfig
executableQuantConfig(QuantExecMode m)
{
    QuantizeConfig cfg;
    cfg.executable = true;
    cfg.minInFeatures = 32;
    cfg.outlierFraction = 0.0;
    cfg.method = m == QuantExecMode::WeightOnly
                     ? QuantMethod::WeightOnlyInt8
                     : QuantMethod::LlmInt8;
    return cfg;
}

Graph
applyQuantMode(const Graph &g, QuantExecMode mode, QuantizeStats *stats)
{
    if (mode == QuantExecMode::Off) {
        if (stats)
            *stats = QuantizeStats{};
        return g;
    }
    QuantizeStats st;
    Graph out = quantizeLlmInt8(g, executableQuantConfig(mode), &st);
    if (mode == QuantExecMode::Int8) {
        QdqElimStats elim;
        out = eliminateQdq(out, &elim);
        st.qdqPairsCancelled = elim.pairsCancelled;
        st.requantFolded = elim.requantFolded;
        st.nodesAfter = static_cast<int64_t>(out.size());
    }
    if (stats)
        *stats = st;
    // Every quantized graph build (runtime run or engine cache miss)
    // accumulates onto the process-wide quant gauges, so a metrics
    // scrape shows how much of the serving fleet runs int8.
    if (obs::metricsEnabled()) {
        auto &reg = obs::MetricsRegistry::instance();
        reg.gauge("quant.linears_quantized").add(st.linearsQuantized);
        reg.gauge("quant.packed_weight_bytes")
            .add(st.packedWeightBytes);
        reg.gauge("quant.weight_bytes_saved")
            .add(st.floatWeightBytes - st.packedWeightBytes);
    }
    return out;
}

bool
isInt8GemmNode(const Node &n)
{
    auto direct = [](const Node &m) {
        if (m.kind == OpKind::Int8Linear)
            return m.attrs.getI("executable", 0) != 0;
        return m.kind == OpKind::Linear && m.attrs.getI("wq8", 0) != 0;
    };
    if (direct(n))
        return true;
    if (n.kind == OpKind::Fused && !n.fusedBody.empty())
        return direct(n.fusedBody.front());
    return false;
}

bool
isQdqExecNode(const Node &n)
{
    return (n.kind == OpKind::Quantize || n.kind == OpKind::Dequantize) &&
           n.attrs.getI("executable", 0) != 0;
}

QuantExecStats
quantExecStatsOf(const Graph &g)
{
    QuantExecStats st;
    auto tally = [&](const Node &m) {
        if (!isInt8GemmNode(m))
            return;
        ++st.int8Gemms;
        // Param 0 is the [N,K] master weight on every int8 GEMM form.
        if (!m.paramShapes.empty()) {
            st.packedWeightBytes += packedWeightBytes(m.paramShapes[0]);
            st.floatWeightBytes += floatWeightBytes(m.paramShapes[0]);
        }
    };
    for (const Node &n : g.nodes()) {
        if (n.kind == OpKind::Fused) {
            for (const Node &m : n.fusedBody)
                tally(m);
        } else {
            tally(n);
            if (isQdqExecNode(n))
                ++st.qdqOps;
        }
    }
    st.quantized = st.int8Gemms > 0 || st.qdqOps > 0;
    return st;
}

}  // namespace quant
}  // namespace ngb
