#ifndef NGB_QUANT_QDQ_ELIM_H
#define NGB_QUANT_QDQ_ELIM_H

#include <cstdint>

#include "graph/graph.h"

/**
 * @file
 * Q/DQ elimination over executable-quantized graphs.
 *
 * The executable LlmInt8 rewrite brackets every quantized GEMM with
 * Quantize/Dequantize, so two quantized linears in sequence run
 * DQ -> (float) -> Q between them: the activation leaves int8 only to
 * immediately re-enter it. Two local rewrites remove that round trip:
 *
 *  1. cancelQdqPairs: a Dequantize whose sole consumer is the next
 *     region's Quantize collapses with it into ONE fused requantize
 *     node (attr "fused_qdq") that maps i32 accumulators straight to
 *     the next region's int8 activation — the float tensor between
 *     them never hits the arena. The fused node computes exactly the
 *     f32 values the Dequantize would have produced before absmax
 *     quantization, so results are bit-identical to the uneliminated
 *     graph.
 *
 *  2. foldRequantize: a remaining Dequantize fed solely by its own
 *     granular Int8Linear folds into the GEMM as the tile write-out
 *     epilogue (attr "requant"): rescale + bias happen in registers as
 *     each accumulator completes, and the i32 accumulator tensor
 *     disappears from the graph.
 *
 * After both rewrites an activation-quantized region runs back-to-back
 * in int8 with no standalone Q/DQ traffic inside it.
 */

namespace ngb {
namespace quant {

/** What eliminateQdq did, merged into QuantizeStats by the driver. */
struct QdqElimStats {
    int64_t pairsCancelled = 0;  ///< DQ->Q pairs fused into requantize
    int64_t requantFolded = 0;   ///< DQs folded into Int8Linear epilogues
};

/** Collapse adjacent executable Dequantize->Quantize pairs. */
Graph cancelQdqPairs(const Graph &src, QdqElimStats *stats = nullptr);

/** Fold remaining executable Dequantizes into their Int8Linears. */
Graph foldRequantize(const Graph &src, QdqElimStats *stats = nullptr);

/** Both rewrites, in order: cancel cross-GEMM pairs first, then fold
 *  what remains into the GEMM epilogues. */
Graph eliminateQdq(const Graph &src, QdqElimStats *stats = nullptr);

}  // namespace quant
}  // namespace ngb

#endif  // NGB_QUANT_QDQ_ELIM_H
