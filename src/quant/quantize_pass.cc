#include "quant/quantize_pass.h"

#include <algorithm>
#include <map>

#include "graph/op_cost.h"
#include "quant/weight_pack.h"

namespace ngb {

namespace {

/** Append a node to @p dst with cost computed, returning its Value. */
Value
emit(Graph &dst, Node n)
{
    n.cost = computeOpCost(n, dst);
    int id = dst.addNode(std::move(n));
    return {id, 0};
}

/**
 * Pin the deterministic parameter seed to the source node. Copied and
 * replacement nodes get fresh ids in the rewritten graph; without the
 * pin ParamStore would seed their parameters from the NEW id and the
 * quantized graph's weights would not match the float baseline's.
 */
void
pinSeed(Node &c, const Node &src)
{
    c.attrs.set("seed_id",
                static_cast<double>(src.attrs.getI("seed_id", src.id)));
}

}  // namespace

Graph
quantizeLlmInt8(const Graph &src, const QuantizeConfig &cfg,
                QuantizeStats *stats)
{
    Graph dst;
    dst.setName(src.name() + "-int8");
    QuantizeStats st;
    st.nodesBefore = static_cast<int64_t>(src.size());

    // Old value -> new value.
    std::map<std::pair<int, int>, Value> remap;
    auto mapped = [&](const Value &v) { return remap.at({v.node, v.index}); };

    for (const Node &n : src.nodes()) {
        if (n.inputs.empty()) {
            // Graph input or parameter-only node: copy verbatim.
            // (Input-ness is NOT implied by having no inputs — e.g. a
            // standalone embedding table is a param node — so the
            // graph-input list is remapped explicitly at the end.)
            Node c = n;
            c.id = -1;
            pinSeed(c, n);
            int id = dst.addNode(std::move(c));
            for (size_t i = 0; i < n.outShapes.size(); ++i)
                remap[{n.id, static_cast<int>(i)}] =
                    Value{id, static_cast<int>(i)};
            continue;
        }

        bool eligible = n.kind == OpKind::Linear &&
                        !n.paramShapes.empty() &&
                        n.paramShapes[0][1] >= cfg.minInFeatures;

        if (eligible && cfg.method == QuantMethod::WeightOnlyInt8) {
            // Weight-only: the same Linear, with int8 weights that the
            // kernel dequantizes on the fly. No graph changes at all.
            ++st.linearsQuantized;
            Node c = n;
            c.id = -1;
            pinSeed(c, n);
            for (Value &v : c.inputs)
                v = mapped(v);
            if (cfg.executable) {
                // Executable form: the master weight stays F32 (the
                // ParamStore Gaussians are far below one int8 step, so
                // a narrow master would round to zero); the int8
                // representation is derived per node and the "wq8"
                // attr routes the kernel to it.
                c.attrs.set("wq8", 1);
                st.packedWeightBytes +=
                    quant::packedWeightBytes(n.paramShapes[0]);
                st.floatWeightBytes +=
                    quant::floatWeightBytes(n.paramShapes[0]);
            } else {
                c.paramDtype = DType::I8;
            }
            c.cost = computeOpCost(c, dst);
            int id = dst.addNode(std::move(c));
            remap[{n.id, 0}] = Value{id, 0};
            continue;
        }

        if (!eligible) {
            if (n.kind == OpKind::Linear)
                ++st.linearsKept;
            Node c = n;
            c.id = -1;
            pinSeed(c, n);
            for (Value &v : c.inputs)
                v = mapped(v);
            c.cost = computeOpCost(c, dst);
            int id = dst.addNode(std::move(c));
            for (size_t i = 0; i < n.outShapes.size(); ++i)
                remap[{n.id, static_cast<int>(i)}] =
                    Value{id, static_cast<int>(i)};
            continue;
        }

        ++st.linearsQuantized;
        Value x = mapped(n.inputs[0]);
        const Shape &xs = dst.shapeOf(x);
        int64_t k = n.paramShapes[0][1];
        int64_t out_features = n.paramShapes[0][0];
        bool bias = n.paramShapes.size() > 1;
        std::vector<int64_t> odims = xs.dims();
        odims.back() = out_features;

        if (cfg.executable) {
            // Executable granular pipeline. The activation scale is a
            // first-class [1] value flowing from Quantize to both
            // consumers, so eliminateQdq can rewire it when it cancels
            // or folds the Dequantize.
            Node q;
            q.kind = OpKind::Quantize;
            q.name = n.name + ".quant";
            q.inputs = {x};
            q.outShapes = {xs, Shape{1}};
            q.outDtypes = {DType::I8, DType::F32};
            q.attrs.set("kernels", 3).set("executable", 1);
            pinSeed(q, n);
            Value xq = emit(dst, std::move(q));
            Value xscale{xq.node, 1};
            ++st.addedNonGemmOps;

            // INT8 GEMM producing raw i32 accumulators. The master
            // weight param stays F32; the kernels stream the derived
            // per-channel int8 representation (weight_pack.h).
            Node lin;
            lin.kind = OpKind::Int8Linear;
            lin.name = n.name + ".int8";
            lin.inputs = {xq, xscale};
            lin.outShapes = {Shape(odims)};
            lin.outDtypes = {DType::I32};
            lin.paramShapes = {Shape{out_features, k}};
            pinSeed(lin, n);
            lin.attrs.set("executable", 1);
            Value acc = emit(dst, std::move(lin));

            // Requantize: per-channel rescale of the accumulators plus
            // the bias. Carries the weight param so it can derive the
            // same per-channel scales the GEMM quantized with.
            Node dq;
            dq.kind = OpKind::Dequantize;
            dq.name = n.name + ".dequant";
            dq.inputs = {acc, xscale};
            dq.outShapes = {Shape(odims)};
            dq.outDtypes = {DType::F32};
            dq.paramShapes = {Shape{out_features, k}};
            if (bias)
                dq.paramShapes.push_back(Shape{out_features});
            dq.attrs.set("kernels", 2).set("executable", 1);
            pinSeed(dq, n);
            Value y = emit(dst, std::move(dq));
            ++st.addedNonGemmOps;

            st.packedWeightBytes +=
                quant::packedWeightBytes(n.paramShapes[0]);
            st.floatWeightBytes +=
                quant::floatWeightBytes(n.paramShapes[0]);
            remap[{n.id, 0}] = y;
            continue;
        }

        // absmax activation quantization (reduce + scale kernels).
        Node q;
        q.kind = OpKind::Quantize;
        q.name = n.name + ".quant";
        q.inputs = {x};
        q.outShapes = {xs};
        q.outDtypes = {DType::I8};
        q.attrs.set("kernels", 3);  // absmax reduce, scale compute, cast
        Value xq = emit(dst, std::move(q));
        ++st.addedNonGemmOps;

        // INT8 GEMM.
        Node lin;
        lin.kind = OpKind::Int8Linear;
        lin.name = n.name + ".int8";
        lin.inputs = {xq};
        lin.outShapes = {Shape(odims)};
        // The executable kernel fuses the x_scale*w_scale rescale into
        // the accumulator write-out, so the node's concrete output is
        // F32 (same element size as the modeled i32 accumulator, so
        // cost-model byte counts are unchanged). Declared dtypes are
        // enforced now that output buffers are allocator-provided.
        lin.outDtypes = {DType::F32};
        lin.paramShapes = {Shape{out_features, k}};
        lin.paramDtype = DType::I8;
        if (bias)
            lin.paramShapes.push_back(Shape{out_features});
        Value acc = emit(dst, std::move(lin));

        // Dequantize the int32 accumulator back to fp16/fp32.
        Node dq;
        dq.kind = OpKind::Dequantize;
        dq.name = n.name + ".dequant";
        dq.inputs = {acc};
        dq.outShapes = {Shape(odims)};
        dq.outDtypes = {DType::F32};
        // bitsandbytes rescales row-wise then column-wise: two passes.
        dq.attrs.set("kernels", 2);
        Value y = emit(dst, std::move(dq));
        ++st.addedNonGemmOps;

        if (cfg.outlierFraction > 0) {
            int64_t k_out = std::max<int64_t>(
                1, static_cast<int64_t>(
                       static_cast<double>(k) * cfg.outlierFraction));
            // Slice the outlier feature columns.
            Node sl;
            sl.kind = OpKind::Slice;
            sl.name = n.name + ".outlier_cols";
            sl.inputs = {x};
            std::vector<int64_t> sdims = xs.dims();
            sdims.back() = k_out;
            sl.outShapes = {Shape(sdims)};
            sl.outDtypes = {DType::F32};
            sl.attrs.set("dim",
                         static_cast<double>(xs.rank() - 1))
                .set("start", 0.0);
            Value xo = emit(dst, std::move(sl));
            ++st.addedNonGemmOps;

            // fp16 GEMM over the outlier columns.
            Node fl;
            fl.kind = OpKind::Linear;
            fl.name = n.name + ".outlier_fp16";
            fl.inputs = {xo};
            fl.outShapes = {Shape(odims)};
            fl.outDtypes = {DType::F32};
            fl.paramShapes = {Shape{out_features, k_out}};
            Value yo = emit(dst, std::move(fl));

            // Merge the two partial results.
            Node ad;
            ad.kind = OpKind::Add;
            ad.name = n.name + ".merge";
            ad.inputs = {y, yo};
            ad.outShapes = {Shape(odims)};
            ad.outDtypes = {DType::F32};
            y = emit(dst, std::move(ad));
            ++st.addedNonGemmOps;
        }

        remap[{n.id, 0}] = y;
    }

    for (const Value &v : src.graphInputs())
        dst.markInput(mapped(v));
    for (const Value &v : src.graphOutputs())
        dst.markOutput(mapped(v));

    st.nodesAfter = static_cast<int64_t>(dst.size());
    if (stats)
        *stats = st;
    return dst;
}

}  // namespace ngb
