#include "quant/weight_pack.h"

#include <cmath>
#include <stdexcept>

#include "quant/quant_kernels.h"

namespace ngb {
namespace quant {

namespace {

void
requireRowWeight(const Tensor &w, const char *who)
{
    if (w.shape().rank() != 2)
        throw std::runtime_error(std::string(who) +
                                 ": [N,K] weight required, got " +
                                 w.shape().str());
}

}  // namespace

Tensor
perChannelScales(const Tensor &w)
{
    requireRowWeight(w, "perChannelScales");
    int64_t n = w.shape()[0], k = w.shape()[1];
    Tensor out = Tensor::empty(Shape{n}, DType::F32);
    float *po = out.dataF32();
    for (int64_t j = 0; j < n; ++j) {
        float mx = 0.0f;
        for (int64_t kk = 0; kk < k; ++kk)
            mx = std::max(mx, std::abs(w.flatAt(j * k + kk)));
        po[j] = mx > 0.0f ? mx / 127.0f : 1.0f;
    }
    return out;
}

Tensor
quantizeWeightRows(const Tensor &w, const Tensor &scales)
{
    requireRowWeight(w, "quantizeWeightRows");
    int64_t n = w.shape()[0], k = w.shape()[1];
    if (scales.numel() != n)
        throw std::runtime_error("quantizeWeightRows: scale count " +
                                 std::to_string(scales.numel()) +
                                 " != output channels " +
                                 std::to_string(n));
    Tensor out = Tensor::empty(Shape{n, k}, DType::I8);
    int8_t *po = out.dataI8();
    for (int64_t j = 0; j < n; ++j) {
        float s = scales.flatAt(j);
        if (!(s > 0.0f) || !std::isfinite(s))
            throw std::runtime_error(
                "quantizeWeightRows: non-positive scale " +
                std::to_string(s) + " for channel " + std::to_string(j));
        for (int64_t kk = 0; kk < k; ++kk)
            po[j * k + kk] =
                kernels::qnt::satCastI8(w.flatAt(j * k + kk) / s);
    }
    return out;
}

Tensor
packWeightInt8(const Tensor &w, const Tensor &scales)
{
    Tensor rows = quantizeWeightRows(w, scales);
    int64_t n = rows.shape()[0], k = rows.shape()[1];
    Tensor out = Tensor::empty(Shape{k, n}, DType::I8);
    const int8_t *pr = rows.dataI8();
    int8_t *po = out.dataI8();
    for (int64_t j = 0; j < n; ++j)
        for (int64_t kk = 0; kk < k; ++kk)
            po[kk * n + j] = pr[j * k + kk];
    return out;
}

Tensor
unpackWeightInt8(const Tensor &wq, const Tensor &scales)
{
    requireRowWeight(wq, "unpackWeightInt8");
    if (wq.dtype() != DType::I8)
        throw std::runtime_error("unpackWeightInt8: int8 weight required");
    int64_t n = wq.shape()[0], k = wq.shape()[1];
    Tensor out = Tensor::empty(Shape{n, k}, DType::F32);
    float *po = out.dataF32();
    for (int64_t j = 0; j < n; ++j) {
        float s = scales.flatAt(j);
        for (int64_t kk = 0; kk < k; ++kk)
            po[j * k + kk] = wq.flatAt(j * k + kk) * s;
    }
    return out;
}

const Tensor &
weightScales(const Node &n, ParamStore &params)
{
    return params.derived(n, kWeightScaleSlot, [&]() -> Tensor {
        return perChannelScales(params.get(n, 0));
    });
}

const Tensor &
packedWeight(const Node &n, ParamStore &params)
{
    return params.derived(n, kPackedWeightSlot, [&]() -> Tensor {
        // Nested derived is safe: builds run outside the store mutex.
        return packWeightInt8(params.get(n, 0), weightScales(n, params));
    });
}

const Tensor &
rowWeight(const Node &n, ParamStore &params)
{
    return params.derived(n, kRowWeightSlot, [&]() -> Tensor {
        return quantizeWeightRows(params.get(n, 0),
                                  weightScales(n, params));
    });
}

int64_t
packedWeightBytes(const Shape &w)
{
    return w.numel() + w[0] * static_cast<int64_t>(sizeof(float));
}

int64_t
floatWeightBytes(const Shape &w)
{
    return w.numel() * static_cast<int64_t>(sizeof(float));
}

}  // namespace quant
}  // namespace ngb
