#ifndef NGB_QUANT_QUANTIZE_PASS_H
#define NGB_QUANT_QUANTIZE_PASS_H

#include "graph/graph.h"

namespace ngb {

/** Which post-training quantization scheme to apply. */
enum class QuantMethod {
    /**
     * LLM.int8() (Dettmers et al.): int8 activations AND weights with
     * dynamic activation quantization — fast GEMMs, but Q/DQ operators
     * appear around every quantized linear (Section IV-C's subject).
     */
    LlmInt8,
    /**
     * Weight-only int8 (the GPTQ/AWQ family the paper cites as
     * [21]/[36]): weights stored narrow and dequantized inside the
     * GEMM kernel — parameter traffic halves with NO new non-GEMM
     * operators. The contrast shows Fig. 9's non-GEMM blowup is a
     * property of activation quantization, not of quantization per se.
     */
    WeightOnlyInt8,
};

/**
 * Configuration of the post-training quantization pass
 * (Section IV-C characterizes the LlmInt8 method).
 */
struct QuantizeConfig {
    QuantMethod method = QuantMethod::LlmInt8;

    /** Only quantize Linear layers with at least this many in-features
     *  (LLM.int8() targets the large projection matrices). */
    int64_t minInFeatures = 512;

    /**
     * Fraction of input features treated as emergent outliers and
     * kept in 16-bit via the mixed-precision decomposition. Adds the
     * Slice + fp16 GEMM + Add side path the method prescribes.
     */
    double outlierFraction = 0.01;

    /**
     * Emit the executable graph form instead of the modeled one. The
     * executable LlmInt8 rewrite produces concrete dtypes the runtime
     * honors: Quantize grows a second [1] F32 scale output, Int8Linear
     * consumes {xq, xscale}, keeps its master weight in F32 (per-channel
     * int8 representations are derived through ParamStore::derived) and
     * produces raw I32 accumulators, and Dequantize carries the weight
     * (+ bias) params so it can apply the per-channel rescale. Every
     * emitted node pins "seed_id" to the source Linear's id so derived
     * parameters match the float baseline exactly. The executable
     * WeightOnlyInt8 rewrite keeps the Linear node and sets the "wq8"
     * attr; the kernel streams the derived int8 weight. Executable mode
     * emits no outlier side path.
     */
    bool executable = false;
};

/** What the pass did, for the workload report and Figure 9. */
struct QuantizeStats {
    int64_t linearsQuantized = 0;
    int64_t linearsKept = 0;
    int64_t addedNonGemmOps = 0;   ///< Q/DQ + decomposition ops inserted
    int64_t nodesBefore = 0;
    int64_t nodesAfter = 0;

    // Executable-mode extras (zero for modeled rewrites).
    int64_t qdqPairsCancelled = 0;  ///< DQ->Q pairs fused by eliminateQdq
    int64_t requantFolded = 0;      ///< DQs folded into Int8Linear epilogues
    int64_t packedWeightBytes = 0;  ///< int8 weights + f32 scales
    int64_t floatWeightBytes = 0;   ///< the f32 weights they replace
};

/**
 * Rewrite @p src so every eligible Linear executes as
 *
 *   absmax-quantize(x) -> Int8Linear -> dequantize
 *   [+ slice -> fp16 Linear -> add   (outlier decomposition)]
 *
 * All other operators keep running in floating point, which is why
 * quantization *adds* non-GEMM work: activations must be dequantized
 * and requantized around every non-GEMM operator.
 */
Graph quantizeLlmInt8(const Graph &src, const QuantizeConfig &cfg,
                      QuantizeStats *stats = nullptr);

}  // namespace ngb

#endif  // NGB_QUANT_QUANTIZE_PASS_H
