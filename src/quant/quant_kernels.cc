#include "quant/quant_kernels.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "ops/kernels.h"
#include "runtime/intraop.h"
#include "tensor/scratch.h"

namespace ngb {
namespace kernels {
namespace qnt {

namespace {

// Same register-tile geometry as the f32 GEMM core
// (opt::matmulCoreEpi): the int8 core differs only in operand width
// and the i32 accumulator type.
constexpr int64_t kMR = 4;   ///< output rows per register tile
constexpr int64_t kNR = 16;  ///< output cols per register tile

/**
 * i32 accumulator tile loop over A[M,K] i8 @ B[K,N] i8, mirroring
 * matmulCoreEpi's 4x16 structure (k-ascending, no reassociation, B row
 * loaded once per four output rows). @p finish maps (row, col, i32
 * accumulator) to the stored value; i32 accumulation is exact, so
 * every path that reaches the same @p finish expression is
 * bit-identical regardless of summation order.
 */
template <class StoreT, class FinishFn>
void
int8TileLoop(const int8_t *A, const int8_t *B, StoreT *C, int64_t M,
             int64_t K, int64_t N, FinishFn finish)
{
    int64_t i = 0;
    for (; i + kMR <= M; i += kMR) {
        int64_t j = 0;
        for (; j + kNR <= N; j += kNR) {
            int32_t acc[kMR][kNR] = {};
            for (int64_t k = 0; k < K; ++k) {
                const int8_t *brow = B + k * N + j;
                int32_t av[kMR];
                for (int64_t r = 0; r < kMR; ++r)
                    av[r] = A[(i + r) * K + k];
                for (int64_t jj = 0; jj < kNR; ++jj) {
                    int32_t bv = brow[jj];
                    for (int64_t r = 0; r < kMR; ++r)
                        acc[r][jj] += av[r] * bv;
                }
            }
            for (int64_t r = 0; r < kMR; ++r) {
                StoreT *crow = C + (i + r) * N + j;
                for (int64_t jj = 0; jj < kNR; ++jj)
                    crow[jj] = finish(j + jj, acc[r][jj]);
            }
        }
        for (; j < N; ++j) {  // N tail: kMR scalar dot products
            for (int64_t r = 0; r < kMR; ++r) {
                int32_t acc = 0;
                for (int64_t k = 0; k < K; ++k)
                    acc += static_cast<int32_t>(A[(i + r) * K + k]) *
                           static_cast<int32_t>(B[k * N + j]);
                C[(i + r) * N + j] = finish(j, acc);
            }
        }
    }
    for (; i < M; ++i) {  // M tail: one row at a time, scalar dots
        for (int64_t j = 0; j < N; ++j) {
            int32_t acc = 0;
            for (int64_t k = 0; k < K; ++k)
                acc += static_cast<int32_t>(A[i * K + k]) *
                       static_cast<int32_t>(B[k * N + j]);
            C[i * N + j] = finish(j, acc);
        }
    }
}

/**
 * f32-accumulator tile loop for the weight-only kernels: A is f32, B
 * is int8 dequantized element-wise inside the core. Accumulation stays
 * k-ascending with no reassociation or zero-skipping (in both the tile
 * body and the tails), matching the naive w8Linear loop exactly, so
 * the packed and row-layout weight-only kernels are bit-identical.
 */
template <class FinishFn>
void
w8TileLoop(const float *A, const int8_t *B, float *C, int64_t M,
           int64_t K, int64_t N, FinishFn finish)
{
    int64_t i = 0;
    for (; i + kMR <= M; i += kMR) {
        int64_t j = 0;
        for (; j + kNR <= N; j += kNR) {
            float acc[kMR][kNR] = {};
            for (int64_t k = 0; k < K; ++k) {
                const int8_t *brow = B + k * N + j;
                float av[kMR];
                for (int64_t r = 0; r < kMR; ++r)
                    av[r] = A[(i + r) * K + k];
                for (int64_t jj = 0; jj < kNR; ++jj) {
                    float bv = static_cast<float>(brow[jj]);
                    for (int64_t r = 0; r < kMR; ++r)
                        acc[r][jj] += av[r] * bv;
                }
            }
            for (int64_t r = 0; r < kMR; ++r) {
                float *crow = C + (i + r) * N + j;
                for (int64_t jj = 0; jj < kNR; ++jj)
                    crow[jj] = finish(j + jj, acc[r][jj]);
            }
        }
        for (; j < N; ++j) {
            for (int64_t r = 0; r < kMR; ++r) {
                float acc = 0.0f;
                for (int64_t k = 0; k < K; ++k)
                    acc += A[(i + r) * K + k] *
                           static_cast<float>(B[k * N + j]);
                C[(i + r) * N + j] = finish(j, acc);
            }
        }
    }
    for (; i < M; ++i) {
        for (int64_t j = 0; j < N; ++j) {
            float acc = 0.0f;
            for (int64_t k = 0; k < K; ++k)
                acc += A[i * K + k] * static_cast<float>(B[k * N + j]);
            C[i * N + j] = finish(j, acc);
        }
    }
}

/// Below this the sharding overhead exceeds the int8 GEMM itself
/// (same threshold as the f32 core in optimized_kernels.cc).
constexpr int64_t kParMinFlops = 1 << 17;

/**
 * Run @p body(i0, rows) over kMR-aligned row blocks of [0,M), through
 * @p par when profitable, serially otherwise. Rows of an int8 GEMM are
 * independent — exact i32 sums, or per-row k-ascending f32 chains for
 * the weight-only kernels — so any row partition is bit-identical to
 * the serial sweep; the K reduction is never split. One block per
 * worker: the packed kernels have no panel-packing stage, so finer
 * grains would only add task overhead.
 */
template <class BodyFn>
void
shardRows(const ParallelRegion *par, int64_t m, int64_t k, int64_t n,
          BodyFn body)
{
    const int threads = par ? par->threads() : 1;
    if (threads <= 1 || m <= kMR || 2 * m * n * k < kParMinFlops) {
        body(static_cast<int64_t>(0), m);
        return;
    }
    const int64_t tiles = (m + kMR - 1) / kMR;
    const int64_t block =
        (tiles + threads - 1) / threads * kMR;
    const int64_t nBlocks = (m + block - 1) / block;
    par->run(static_cast<size_t>(nBlocks), [&](size_t s, int) {
        const int64_t i0 = static_cast<int64_t>(s) * block;
        body(i0, std::min(block, m - i0));
    });
}

int64_t
rowsOf(const Tensor &x, int64_t k, const char *who)
{
    const Shape &s = x.shape();
    if (s.rank() < 1 || s[s.rank() - 1] != k)
        throw std::runtime_error(std::string(who) +
                                 ": trailing dim must be K=" +
                                 std::to_string(k) + ", got " + s.str());
    return x.numel() / k;
}

Shape
withTrailing(const Shape &in, int64_t n)
{
    std::vector<int64_t> dims = in.dims();
    dims.back() = n;
    return Shape{dims};
}

const float *
biasPtrOf(const Tensor &bias, int64_t n, const char *who)
{
    if (!bias.defined())
        return nullptr;
    if (bias.numel() != n)
        throw std::runtime_error(std::string(who) + ": bias numel " +
                                 std::to_string(bias.numel()) +
                                 " != N=" + std::to_string(n));
    return bias.dataF32();
}

void
requireScales(const Tensor &wScales, int64_t n, const char *who)
{
    if (wScales.numel() != n)
        throw std::runtime_error(std::string(who) + ": scale count " +
                                 std::to_string(wScales.numel()) +
                                 " != N=" + std::to_string(n));
}

}  // namespace

float
scaleValue(const Tensor &scale)
{
    if (!scale.defined() || scale.numel() < 1)
        throw std::runtime_error("scaleValue: scale tensor required");
    float s = scale.flatAt(0);
    if (!(s > 0.0f) || !std::isfinite(s))
        throw std::runtime_error("scaleValue: non-positive scale " +
                                 std::to_string(s));
    return s;
}

std::pair<Tensor, Tensor>
quantizeActivation(const Tensor &x, Tensor dstQ, Tensor dstScale)
{
    Tensor xq = claimOut(std::move(dstQ), x.shape(), DType::I8);
    Tensor sc = claimOut(std::move(dstScale), Shape{1}, DType::F32);
    int64_t count = x.numel();
    float mx = 0.0f;
    if (x.dtype() == DType::F32 && x.isContiguous()) {
        const float *px = x.dataF32();
        for (int64_t i = 0; i < count; ++i)
            mx = std::max(mx, std::abs(px[i]));
    } else {
        for (int64_t i = 0; i < count; ++i)
            mx = std::max(mx, std::abs(x.flatAt(i)));
    }
    float scale = mx > 0.0f ? mx / 127.0f : 1.0f;
    sc.dataF32()[0] = scale;
    quantizeWithScale(x, scale, xq);
    return {std::move(xq), std::move(sc)};
}

Tensor
quantizeWithScale(const Tensor &x, float scale, Tensor dst)
{
    if (!(scale > 0.0f) || !std::isfinite(scale))
        throw std::runtime_error("quantizeWithScale: non-positive scale " +
                                 std::to_string(scale));
    Tensor out = claimOut(std::move(dst), x.shape(), DType::I8);
    int64_t count = x.numel();
    int8_t *po = out.dataI8();
    float inv = 1.0f / scale;
    if (x.dtype() == DType::F32 && x.isContiguous()) {
        const float *px = x.dataF32();
        for (int64_t i = 0; i < count; ++i)
            po[i] = satCastI8(px[i] * inv);
    } else {
        for (int64_t i = 0; i < count; ++i)
            po[i] = satCastI8(x.flatAt(i) * inv);
    }
    return out;
}

Tensor
int8AccLinear(const Tensor &xq, const Tensor &wq, Tensor dst)
{
    if (wq.shape().rank() != 2)
        throw std::runtime_error("int8AccLinear: [N,K] weight required");
    if (xq.dtype() != DType::I8 || wq.dtype() != DType::I8)
        throw std::runtime_error("int8AccLinear: int8 operands required");
    int64_t n = wq.shape()[0], k = wq.shape()[1];
    int64_t m = rowsOf(xq, k, "int8AccLinear");
    Tensor xc = toContiguous(xq);
    Tensor wc = toContiguous(wq);
    Tensor out =
        claimOut(std::move(dst), withTrailing(xq.shape(), n), DType::I32);
    const int8_t *px = xc.dataI8();
    const int8_t *pw = wc.dataI8();
    int32_t *po = out.dataI32();
    // Reference layout: one k-ascending dot per (row, channel). The i32
    // sums are exact, so this matches the tiled packed kernel bit for
    // bit despite the different loop structure.
    for (int64_t i = 0; i < m; ++i) {
        const int8_t *xrow = px + i * k;
        for (int64_t j = 0; j < n; ++j) {
            const int8_t *wrow = pw + j * k;
            int32_t acc = 0;
            for (int64_t kk = 0; kk < k; ++kk)
                acc += static_cast<int32_t>(xrow[kk]) *
                       static_cast<int32_t>(wrow[kk]);
            po[i * n + j] = acc;
        }
    }
    return out;
}

Tensor
requantize(const Tensor &acc, float xScale, const Tensor &wScales,
           const Tensor &bias, Tensor dst)
{
    if (acc.dtype() != DType::I32)
        throw std::runtime_error("requantize: i32 accumulators required");
    int64_t n = acc.shape()[acc.shape().rank() - 1];
    requireScales(wScales, n, "requantize");
    const float *pb = biasPtrOf(bias, n, "requantize");
    Tensor ac = toContiguous(acc);
    Tensor out = claimOut(std::move(dst), acc.shape(), DType::F32);
    const int32_t *pa = ac.dataI32();
    const float *ps = wScales.dataF32();
    float *po = out.dataF32();
    int64_t rows = acc.numel() / n;
    for (int64_t i = 0; i < rows; ++i)
        for (int64_t j = 0; j < n; ++j) {
            float v = requantOne(pa[i * n + j], xScale, ps[j]);
            if (pb)
                v += pb[j];
            po[i * n + j] = v;
        }
    return out;
}

Tensor
int8LinearRequant(const Tensor &xq, float xScale, const Tensor &wq,
                  const Tensor &wScales, const Tensor &bias,
                  const scalar::UnaryStage *stages, size_t nStages,
                  Tensor dst)
{
    if (wq.shape().rank() != 2)
        throw std::runtime_error("int8LinearRequant: [N,K] weight "
                                 "required");
    int64_t n = wq.shape()[0], k = wq.shape()[1];
    int64_t m = rowsOf(xq, k, "int8LinearRequant");
    requireScales(wScales, n, "int8LinearRequant");
    const float *pb = biasPtrOf(bias, n, "int8LinearRequant");
    Tensor xc = toContiguous(xq);
    Tensor wc = toContiguous(wq);
    Tensor out =
        claimOut(std::move(dst), withTrailing(xq.shape(), n), DType::F32);
    const int8_t *px = xc.dataI8();
    const int8_t *pw = wc.dataI8();
    const float *ps = wScales.dataF32();
    float *po = out.dataF32();
    for (int64_t i = 0; i < m; ++i) {
        const int8_t *xrow = px + i * k;
        for (int64_t j = 0; j < n; ++j) {
            const int8_t *wrow = pw + j * k;
            int32_t acc = 0;
            for (int64_t kk = 0; kk < k; ++kk)
                acc += static_cast<int32_t>(xrow[kk]) *
                       static_cast<int32_t>(wrow[kk]);
            float v = requantOne(acc, xScale, ps[j]);
            if (pb)
                v += pb[j];
            po[i * n + j] = scalar::applyStages(stages, nStages, v);
        }
    }
    return out;
}

Tensor
int8AccLinearPacked(const Tensor &xq, const Tensor &wtq, Tensor dst,
                    const ParallelRegion *par)
{
    if (wtq.shape().rank() != 2)
        throw std::runtime_error("int8AccLinearPacked: [K,N] weight "
                                 "required");
    int64_t k = wtq.shape()[0], n = wtq.shape()[1];
    int64_t m = rowsOf(xq, k, "int8AccLinearPacked");
    Tensor xc = toContiguous(xq);
    Tensor out =
        claimOut(std::move(dst), withTrailing(xq.shape(), n), DType::I32);
    const int8_t *px = xc.dataI8();
    const int8_t *pw = wtq.dataI8();
    int32_t *po = out.dataI32();
    shardRows(par, m, k, n, [&](int64_t i0, int64_t rows) {
        int8TileLoop(px + i0 * k, pw, po + i0 * n, rows, k, n,
                     [](int64_t, int32_t acc) { return acc; });
    });
    return out;
}

Tensor
int8LinearPackedRequant(const Tensor &xq, float xScale, const Tensor &wtq,
                        const Tensor &wScales, const Tensor &bias,
                        const scalar::UnaryStage *stages, size_t nStages,
                        Tensor dst, const ParallelRegion *par)
{
    if (wtq.shape().rank() != 2)
        throw std::runtime_error("int8LinearPackedRequant: [K,N] weight "
                                 "required");
    int64_t k = wtq.shape()[0], n = wtq.shape()[1];
    int64_t m = rowsOf(xq, k, "int8LinearPackedRequant");
    requireScales(wScales, n, "int8LinearPackedRequant");
    const float *pb = biasPtrOf(bias, n, "int8LinearPackedRequant");
    const float *ps = wScales.dataF32();
    Tensor xc = toContiguous(xq);
    Tensor out =
        claimOut(std::move(dst), withTrailing(xq.shape(), n), DType::F32);
    const int8_t *px = xc.dataI8();
    const int8_t *pw = wtq.dataI8();
    float *po = out.dataF32();
    shardRows(par, m, k, n, [&](int64_t i0, int64_t rows) {
        int8TileLoop(px + i0 * k, pw, po + i0 * n, rows, k, n,
                     [&](int64_t col, int32_t acc) {
                         float v = requantOne(acc, xScale, ps[col]);
                         if (pb)
                             v += pb[col];
                         return scalar::applyStages(stages, nStages, v);
                     });
    });
    return out;
}

Tensor
w8Linear(const Tensor &x, const Tensor &wq, const Tensor &wScales,
         const Tensor &bias, Tensor dst)
{
    if (wq.shape().rank() != 2)
        throw std::runtime_error("w8Linear: [N,K] weight required");
    int64_t n = wq.shape()[0], k = wq.shape()[1];
    int64_t m = rowsOf(x, k, "w8Linear");
    requireScales(wScales, n, "w8Linear");
    const float *pb = biasPtrOf(bias, n, "w8Linear");
    Tensor xc = toContiguousF32(x);
    Tensor wc = toContiguous(wq);
    Tensor out =
        claimOut(std::move(dst), withTrailing(x.shape(), n), DType::F32);
    const float *px = xc.dataF32();
    const int8_t *pw = wc.dataI8();
    const float *ps = wScales.dataF32();
    float *po = out.dataF32();
    for (int64_t i = 0; i < m; ++i) {
        const float *xrow = px + i * k;
        for (int64_t j = 0; j < n; ++j) {
            const int8_t *wrow = pw + j * k;
            float acc = 0.0f;
            for (int64_t kk = 0; kk < k; ++kk)
                acc += xrow[kk] * static_cast<float>(wrow[kk]);
            float v = acc * ps[j];
            if (pb)
                v += pb[j];
            po[i * n + j] = v;
        }
    }
    return out;
}

Tensor
w8LinearPacked(const Tensor &x, const Tensor &wtq, const Tensor &wScales,
               const Tensor &bias, const scalar::UnaryStage *stages,
               size_t nStages, Tensor dst, const ParallelRegion *par)
{
    if (wtq.shape().rank() != 2)
        throw std::runtime_error("w8LinearPacked: [K,N] weight required");
    int64_t k = wtq.shape()[0], n = wtq.shape()[1];
    int64_t m = rowsOf(x, k, "w8LinearPacked");
    requireScales(wScales, n, "w8LinearPacked");
    const float *pb = biasPtrOf(bias, n, "w8LinearPacked");
    const float *ps = wScales.dataF32();
    Tensor xc = toContiguousF32(x);
    Tensor out =
        claimOut(std::move(dst), withTrailing(x.shape(), n), DType::F32);
    const float *px = xc.dataF32();
    const int8_t *pw = wtq.dataI8();
    float *po = out.dataF32();
    shardRows(par, m, k, n, [&](int64_t i0, int64_t rows) {
        w8TileLoop(px + i0 * k, pw, po + i0 * n, rows, k, n,
                   [&](int64_t col, float acc) {
                       float v = acc * ps[col];
                       if (pb)
                           v += pb[col];
                       return scalar::applyStages(stages, nStages, v);
                   });
    });
    return out;
}

}  // namespace qnt
}  // namespace kernels
}  // namespace ngb
