#ifndef NGB_TENSOR_TENSOR_H
#define NGB_TENSOR_TENSOR_H

#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

#include "tensor/dtype.h"
#include "tensor/shape.h"

namespace ngb {

/**
 * Reference-counted flat byte buffer backing one or more tensor views.
 */
class Storage
{
  public:
    explicit Storage(size_t bytes) : data_(bytes, 0) {}

    uint8_t *raw() { return data_.data(); }
    const uint8_t *raw() const { return data_.data(); }
    size_t bytes() const { return data_.size(); }

  private:
    std::vector<uint8_t> data_;
};

/**
 * A strided, view-aware N-dimensional tensor.
 *
 * Tensors share storage: layout ops such as permute(), view(), and
 * slice() return new tensors aliasing the same buffer, mirroring the
 * PyTorch semantics that make "memory operators" cheap or expensive
 * depending on whether a copy (contiguous()) is required.
 *
 * Element arithmetic is always performed in float regardless of the
 * nominal dtype; F16 and I8 tensors store their narrow representation
 * and convert on access so quantization behaviour is observable.
 */
class Tensor
{
  public:
    /** An empty (null) tensor. */
    Tensor() = default;

    /** Allocate a zero-filled contiguous tensor. */
    Tensor(Shape shape, DType dtype = DType::F32);

    /** Build a view over existing storage. */
    Tensor(std::shared_ptr<Storage> storage, Shape shape,
           std::vector<int64_t> strides, int64_t offset, DType dtype);

    static Tensor zeros(const Shape &shape, DType dtype = DType::F32);
    static Tensor full(const Shape &shape, float value,
                       DType dtype = DType::F32);
    /** Deterministic pseudo-random normal values (mean 0, std @p std). */
    static Tensor randn(const Shape &shape, uint64_t seed, float std = 1.0f);
    /** Values 0, step, 2*step, ... in row-major order. */
    static Tensor arange(const Shape &shape, float step = 1.0f);

    bool defined() const { return storage_ != nullptr; }
    const Shape &shape() const { return shape_; }
    const std::vector<int64_t> &strides() const { return strides_; }
    DType dtype() const { return dtype_; }
    int64_t numel() const { return shape_.numel(); }
    /** Bytes occupied by this view's elements (numel * element size). */
    int64_t bytes() const
    {
        return numel() * static_cast<int64_t>(dtypeSize(dtype_));
    }

    /** True when elements are laid out row-major with no gaps. */
    bool isContiguous() const;

    /** Read the element at @p idx (rank-matched indices) as float. */
    float at(const std::vector<int64_t> &idx) const;
    /** Write the element at @p idx from a float. */
    void set(const std::vector<int64_t> &idx, float v);

    /** Read the i-th element in logical row-major order as float. */
    float flatAt(int64_t i) const;
    void flatSet(int64_t i, float v);

    /**
     * Direct pointer to this view's first element, valid only for
     * contiguous tensors of the matching type.
     */
    float *dataF32();
    const float *dataF32() const;
    int8_t *dataI8();
    const int8_t *dataI8() const;
    int32_t *dataI32();
    const int32_t *dataI32() const;

    // -- Layout (memory) operators; all O(1) views unless noted ----------

    /** Reinterpret as @p shape; requires contiguity and equal numel. */
    Tensor view(const Shape &shape) const;
    /** view() when contiguous, otherwise copy-then-view. */
    Tensor reshape(const Shape &shape) const;
    /** Reorder dimensions; returns a non-contiguous view. */
    Tensor permute(const std::vector<int> &order) const;
    /** Swap two dimensions. */
    Tensor transpose(int d0, int d1) const;
    /** Materialize a contiguous copy iff needed. */
    Tensor contiguous() const;
    /** Narrow dimension @p dim to [start, start+len). */
    Tensor slice(int dim, int64_t start, int64_t len) const;
    /** Insert a size-1 dimension at @p dim. */
    Tensor unsqueeze(int dim) const;
    /** Remove a size-1 dimension at @p dim. */
    Tensor squeeze(int dim) const;
    /** Broadcast size-1 dimensions up to @p shape (view, stride 0). */
    Tensor expand(const Shape &shape) const;

    /** Deep copy with the same dtype. */
    Tensor clone() const;
    /** Convert (copy) to another dtype. */
    Tensor to(DType dtype) const;

    std::shared_ptr<Storage> storage() const { return storage_; }
    int64_t offset() const { return offset_; }

  private:
    int64_t elementIndex(const std::vector<int64_t> &idx) const;
    int64_t flatToElementIndex(int64_t i) const;
    float loadElement(int64_t elem_index) const;
    void storeElement(int64_t elem_index, float v);

    std::shared_ptr<Storage> storage_;
    Shape shape_;
    std::vector<int64_t> strides_;
    int64_t offset_ = 0;
    DType dtype_ = DType::F32;
};

}  // namespace ngb

#endif  // NGB_TENSOR_TENSOR_H
