#ifndef NGB_TENSOR_TENSOR_H
#define NGB_TENSOR_TENSOR_H

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

#include "tensor/dtype.h"
#include "tensor/shape.h"

namespace ngb {

/** Lock-free max-update for the allocation gauges. */
inline void
atomicStoreMax(std::atomic<int64_t> &gauge, int64_t value)
{
    int64_t cur = gauge.load();
    while (value > cur && !gauge.compare_exchange_weak(cur, value)) {
    }
}

/**
 * Reference-counted flat byte buffer backing one or more tensor views.
 *
 * Owning storages come from the heap and are globally counted (see
 * heapAllocCount/liveBytes below) so the runtime can prove "zero
 * per-request tensor mallocs" instead of asserting it. A storage can
 * also wrap external memory it does not own — the seam the arena
 * runtime and Tensor::fromExternal build on.
 *
 * Uninitialized allocation (zero = false) skips the page-touching
 * memset that kernels immediately overwrite. With poison enabled
 * ($NGB_POISON=1 or setPoison(true)), uninitialized buffers are filled
 * with 0xA5 instead, so a kernel that reads its output before writing
 * it produces loud garbage under the debug/sanitizer test legs rather
 * than silently relying on zero fill.
 */
class Storage
{
  public:
    /** Byte written into uninitialized buffers when poison is on. */
    static constexpr uint8_t kPoisonByte = 0xA5;

    /** Allocate a zero-filled owning buffer. */
    explicit Storage(size_t bytes) : Storage(bytes, /*zero=*/true) {}

    /** Allocate an owning buffer, uninitialized when @p zero is false. */
    Storage(size_t bytes, bool zero);

    /** Wrap @p bytes of caller-owned memory (not counted, not freed). */
    Storage(void *data, size_t bytes);

    ~Storage();

    Storage(const Storage &) = delete;
    Storage &operator=(const Storage &) = delete;

    uint8_t *raw() { return data_; }
    const uint8_t *raw() const { return data_; }
    size_t bytes() const { return bytes_; }
    bool ownsMemory() const { return owned_ != nullptr; }

    // -- Global allocation accounting (owning storages only) -----------

    /** Heap buffers allocated since process start. */
    static uint64_t heapAllocCount();
    /** Bytes of heap buffers allocated since process start. */
    static uint64_t heapAllocBytes();
    /** Bytes of owning storages currently alive. */
    static int64_t liveBytes();
    /** High-water mark of liveBytes() since the last reset. */
    static int64_t peakLiveBytes();
    /** Restart peak tracking from the current live set. */
    static void resetPeakLiveBytes();

    /** Poison-fill state (initialized once from $NGB_POISON). */
    static bool poisonEnabled();
    static void setPoison(bool on);

  private:
    std::unique_ptr<uint8_t[]> owned_;  ///< null for external memory
    uint8_t *data_ = nullptr;
    size_t bytes_ = 0;
};

/**
 * A strided, view-aware N-dimensional tensor.
 *
 * Tensors share storage: layout ops such as permute(), view(), and
 * slice() return new tensors aliasing the same buffer, mirroring the
 * PyTorch semantics that make "memory operators" cheap or expensive
 * depending on whether a copy (contiguous()) is required.
 *
 * Element arithmetic is always performed in float regardless of the
 * nominal dtype; F16 and I8 tensors store their narrow representation
 * and convert on access so quantization behaviour is observable.
 */
class Tensor
{
  public:
    /** An empty (null) tensor. */
    Tensor() = default;

    /** Allocate a zero-filled contiguous tensor. */
    Tensor(Shape shape, DType dtype = DType::F32);

    /** Build a view over existing storage. */
    Tensor(std::shared_ptr<Storage> storage, Shape shape,
           std::vector<int64_t> strides, int64_t offset, DType dtype);

    /**
     * Allocate a contiguous tensor WITHOUT initializing its elements
     * (poison-filled under $NGB_POISON). The allocation primitive for
     * kernel outputs and value-filling factories — anything that fully
     * writes its buffer and should not pay the hidden memset of the
     * zero-filling constructor.
     */
    static Tensor empty(const Shape &shape, DType dtype = DType::F32);

    /**
     * A contiguous tensor view over caller-owned memory. The caller
     * guarantees @p data outlives every view of it and holds at least
     * shape.numel() * dtypeSize(dtype) bytes; nothing is copied,
     * counted, or freed.
     */
    static Tensor fromExternal(void *data, const Shape &shape,
                               DType dtype = DType::F32);

    static Tensor zeros(const Shape &shape, DType dtype = DType::F32);
    static Tensor full(const Shape &shape, float value,
                       DType dtype = DType::F32);
    /** Deterministic pseudo-random normal values (mean 0, std @p std). */
    static Tensor randn(const Shape &shape, uint64_t seed, float std = 1.0f);
    /** Values 0, step, 2*step, ... in row-major order. */
    static Tensor arange(const Shape &shape, float step = 1.0f);

    bool defined() const { return storage_ != nullptr; }
    const Shape &shape() const { return shape_; }
    const std::vector<int64_t> &strides() const { return strides_; }
    DType dtype() const { return dtype_; }
    int64_t numel() const { return shape_.numel(); }
    /** Bytes occupied by this view's elements (numel * element size). */
    int64_t bytes() const
    {
        return numel() * static_cast<int64_t>(dtypeSize(dtype_));
    }

    /** True when elements are laid out row-major with no gaps. */
    bool isContiguous() const;

    /** Read the element at @p idx (rank-matched indices) as float. */
    float at(const std::vector<int64_t> &idx) const;
    /** Write the element at @p idx from a float. */
    void set(const std::vector<int64_t> &idx, float v);

    /** Read the i-th element in logical row-major order as float. */
    float flatAt(int64_t i) const;
    void flatSet(int64_t i, float v);

    /**
     * Direct pointer to this view's first element, valid only for
     * contiguous tensors of the matching type.
     */
    float *dataF32();
    const float *dataF32() const;
    int8_t *dataI8();
    const int8_t *dataI8() const;
    int32_t *dataI32();
    const int32_t *dataI32() const;

    // -- Layout (memory) operators; all O(1) views unless noted ----------

    /** Reinterpret as @p shape; requires contiguity and equal numel. */
    Tensor view(const Shape &shape) const;
    /** view() when contiguous, otherwise copy-then-view. */
    Tensor reshape(const Shape &shape) const;
    /** Reorder dimensions; returns a non-contiguous view. */
    Tensor permute(const std::vector<int> &order) const;
    /** Swap two dimensions. */
    Tensor transpose(int d0, int d1) const;
    /** Materialize a contiguous copy iff needed. */
    Tensor contiguous() const;
    /** Narrow dimension @p dim to [start, start+len). */
    Tensor slice(int dim, int64_t start, int64_t len) const;
    /** Insert a size-1 dimension at @p dim. */
    Tensor unsqueeze(int dim) const;
    /** Remove a size-1 dimension at @p dim. */
    Tensor squeeze(int dim) const;
    /** Broadcast size-1 dimensions up to @p shape (view, stride 0). */
    Tensor expand(const Shape &shape) const;

    /** Deep copy with the same dtype. */
    Tensor clone() const;
    /** Convert (copy) to another dtype. */
    Tensor to(DType dtype) const;

    /**
     * Overwrite this tensor's elements with @p src's, in logical
     * row-major order (shapes may differ as long as numel matches —
     * the reshape/flatten semantics). Converts through float when the
     * dtypes differ; takes the memcpy fast path when both sides are
     * contiguous with the same dtype. Returns *this.
     */
    Tensor &copyFrom(const Tensor &src);

    /** Set every element to zero (bytewise for contiguous tensors). */
    Tensor &fillZero();

    std::shared_ptr<Storage> storage() const { return storage_; }
    int64_t offset() const { return offset_; }

  private:
    int64_t elementIndex(const std::vector<int64_t> &idx) const;
    int64_t flatToElementIndex(int64_t i) const;
    float loadElement(int64_t elem_index) const;
    void storeElement(int64_t elem_index, float v);

    std::shared_ptr<Storage> storage_;
    Shape shape_;
    std::vector<int64_t> strides_;
    int64_t offset_ = 0;
    DType dtype_ = DType::F32;
};

}  // namespace ngb

#endif  // NGB_TENSOR_TENSOR_H
