#ifndef NGB_TENSOR_SHAPE_H
#define NGB_TENSOR_SHAPE_H

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace ngb {

/**
 * A tensor shape: an ordered list of non-negative dimension extents.
 *
 * Shapes are value types used pervasively by shape inference and the
 * cost model; they intentionally stay small and cheap to copy.
 */
class Shape
{
  public:
    Shape() = default;
    Shape(std::initializer_list<int64_t> dims) : dims_(dims) {}
    explicit Shape(std::vector<int64_t> dims) : dims_(std::move(dims)) {}

    /** Number of dimensions (rank). */
    size_t rank() const { return dims_.size(); }

    /** Extent of dimension @p i; negative indices count from the back. */
    int64_t dim(int i) const;

    int64_t operator[](size_t i) const { return dims_[i]; }
    int64_t &operator[](size_t i) { return dims_[i]; }

    /** Total number of elements (1 for a scalar / rank-0 shape). */
    int64_t numel() const;

    const std::vector<int64_t> &dims() const { return dims_; }

    bool operator==(const Shape &o) const { return dims_ == o.dims_; }
    bool operator!=(const Shape &o) const { return dims_ != o.dims_; }

    /** Render as "[2, 3, 4]". */
    std::string str() const;

    /** Row-major (C-contiguous) strides for this shape, in elements. */
    std::vector<int64_t> contiguousStrides() const;

  private:
    std::vector<int64_t> dims_;
};

}  // namespace ngb

#endif  // NGB_TENSOR_SHAPE_H
