#include "tensor/scratch.h"

#include <algorithm>
#include <atomic>
#include <cstring>

namespace ngb {

namespace {

constexpr size_t kAlign = 64;
constexpr size_t kMinBlock = size_t{1} << 20;  // 1 MiB

std::atomic<int64_t> g_global_high_water{0};
std::atomic<int64_t> g_global_high_water_sum{0};

/** This thread's share already folded into the cross-thread sum. */
thread_local int64_t t_sum_contribution = 0;

size_t
alignUp(size_t n)
{
    return (n + kAlign - 1) / kAlign * kAlign;
}

}  // namespace

ScratchArena &
ScratchArena::local()
{
    thread_local ScratchArena arena;
    return arena;
}

int64_t
ScratchArena::inUseBytes() const
{
    int64_t used = 0;
    for (size_t b = 0; b < cur_ && b < blocks_.size(); ++b)
        used += static_cast<int64_t>(blocks_[b]->bytes());
    return used + static_cast<int64_t>(off_);
}

int64_t
ScratchArena::reservedBytes() const
{
    int64_t total = 0;
    for (const auto &b : blocks_)
        total += static_cast<int64_t>(b->bytes());
    return total;
}

Tensor
ScratchArena::alloc(const Shape &shape, DType dtype)
{
    size_t bytes =
        alignUp(static_cast<size_t>(shape.numel()) * dtypeSize(dtype));
    // Advance through existing blocks; grow only when none fits.
    while (cur_ < blocks_.size() &&
           off_ + bytes > blocks_[cur_]->bytes()) {
        ++cur_;
        off_ = 0;
    }
    if (cur_ >= blocks_.size()) {
        size_t grow = std::max(
            {kMinBlock, bytes,
             blocks_.empty() ? size_t{0} : 2 * blocks_.back()->bytes()});
        blocks_.push_back(
            std::make_shared<Storage>(grow, /*zero=*/false));
        off_ = 0;
    }
    size_t at = off_;
    off_ += bytes;
    high_water_ = std::max(high_water_, inUseBytes());
    int64_t elem_offset =
        static_cast<int64_t>(at / dtypeSize(dtype));  // 64-aligned
    return Tensor(blocks_[cur_], shape, shape.contiguousStrides(),
                  elem_offset, dtype);
}

bool
ScratchArena::owns(const Tensor &t) const
{
    if (!t.defined())
        return false;
    const Storage *s = t.storage().get();
    for (const auto &b : blocks_)
        if (b.get() == s)
            return true;
    return false;
}

void
ScratchArena::reset(const Mark &m)
{
    if (Storage::poisonEnabled()) {
        // Repoison everything between the mark and the bump pointer so
        // an escaped scratch view reads garbage, not stale-but-right
        // data.
        for (size_t b = m.block; b <= cur_ && b < blocks_.size(); ++b) {
            size_t from = b == m.block ? m.offset : 0;
            size_t to = b == cur_ ? off_ : blocks_[b]->bytes();
            if (to > from)
                std::memset(blocks_[b]->raw() + from,
                            Storage::kPoisonByte, to - from);
        }
    }
    cur_ = m.block;
    off_ = m.offset;
}

int64_t
ScratchArena::globalHighWaterBytes()
{
    return g_global_high_water.load();
}

int64_t
ScratchArena::globalHighWaterSumBytes()
{
    return g_global_high_water_sum.load();
}

ScratchScope::ScratchScope()
{
    ScratchArena &a = ScratchArena::local();
    mark_ = a.mark();
    ++a.depth_;
}

ScratchScope::~ScratchScope()
{
    ScratchArena &a = ScratchArena::local();
    a.reset(mark_);
    --a.depth_;
    if (a.depth_ == 0) {
        atomicStoreMax(g_global_high_water, a.high_water_);
        // Fold only this thread's growth since its last contribution,
        // so the sum counts each worker's peak exactly once.
        if (a.high_water_ > t_sum_contribution) {
            g_global_high_water_sum.fetch_add(a.high_water_ -
                                              t_sum_contribution);
            t_sum_contribution = a.high_water_;
        }
    }
}

Tensor
scratchEmpty(const Shape &shape, DType dtype)
{
    ScratchArena &a = ScratchArena::local();
    return a.active() ? a.alloc(shape, dtype)
                      : Tensor::empty(shape, dtype);
}

bool
isScratch(const Tensor &t)
{
    return ScratchArena::local().owns(t);
}

Tensor
toContiguousF32(const Tensor &t)
{
    if (!t.defined() || (t.dtype() == DType::F32 && t.isContiguous()))
        return t;
    Tensor s = scratchEmpty(t.shape(), DType::F32);
    s.copyFrom(t);
    return s;
}

Tensor
toContiguous(const Tensor &t)
{
    if (!t.defined() || t.isContiguous())
        return t;
    Tensor s = scratchEmpty(t.shape(), t.dtype());
    s.copyFrom(t);
    return s;
}

}  // namespace ngb
