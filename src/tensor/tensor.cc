#include "tensor/tensor.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <random>
#include <stdexcept>

namespace ngb {

namespace {

// Process-wide owning-storage accounting. Atomics, not a lock: the
// counters sit on every kernel-output allocation.
std::atomic<uint64_t> g_alloc_count{0};
std::atomic<uint64_t> g_alloc_bytes{0};
std::atomic<int64_t> g_live_bytes{0};
std::atomic<int64_t> g_peak_live_bytes{0};

// -1 = read $NGB_POISON on first use; 0/1 = explicit.
std::atomic<int> g_poison{-1};

void
bumpLive(int64_t delta)
{
    int64_t live = g_live_bytes.fetch_add(delta) + delta;
    if (delta > 0)
        atomicStoreMax(g_peak_live_bytes, live);
}

}  // namespace

Storage::Storage(size_t bytes, bool zero)
    : owned_(zero ? new uint8_t[bytes]() : new uint8_t[bytes]),
      data_(owned_.get()),
      bytes_(bytes)
{
    if (!zero && poisonEnabled())
        std::memset(data_, kPoisonByte, bytes_);
    g_alloc_count.fetch_add(1);
    g_alloc_bytes.fetch_add(bytes_);
    bumpLive(static_cast<int64_t>(bytes_));
}

Storage::Storage(void *data, size_t bytes)
    : data_(static_cast<uint8_t *>(data)), bytes_(bytes)
{
}

Storage::~Storage()
{
    if (owned_)
        bumpLive(-static_cast<int64_t>(bytes_));
}

uint64_t
Storage::heapAllocCount()
{
    return g_alloc_count.load();
}

uint64_t
Storage::heapAllocBytes()
{
    return g_alloc_bytes.load();
}

int64_t
Storage::liveBytes()
{
    return g_live_bytes.load();
}

int64_t
Storage::peakLiveBytes()
{
    return g_peak_live_bytes.load();
}

void
Storage::resetPeakLiveBytes()
{
    g_peak_live_bytes.store(g_live_bytes.load());
}

bool
Storage::poisonEnabled()
{
    int state = g_poison.load();
    if (state < 0) {
        const char *env = std::getenv("NGB_POISON");
        state = env && *env && std::string(env) != "0" ? 1 : 0;
        g_poison.store(state);
    }
    return state == 1;
}

void
Storage::setPoison(bool on)
{
    g_poison.store(on ? 1 : 0);
}

Tensor::Tensor(Shape shape, DType dtype)
    : storage_(std::make_shared<Storage>(
          static_cast<size_t>(shape.numel()) * dtypeSize(dtype))),
      shape_(std::move(shape)),
      strides_(shape_.contiguousStrides()),
      offset_(0),
      dtype_(dtype)
{
}

Tensor::Tensor(std::shared_ptr<Storage> storage, Shape shape,
               std::vector<int64_t> strides, int64_t offset, DType dtype)
    : storage_(std::move(storage)),
      shape_(std::move(shape)),
      strides_(std::move(strides)),
      offset_(offset),
      dtype_(dtype)
{
}

Tensor
Tensor::empty(const Shape &shape, DType dtype)
{
    Tensor t;
    t.storage_ = std::make_shared<Storage>(
        static_cast<size_t>(shape.numel()) * dtypeSize(dtype),
        /*zero=*/false);
    t.shape_ = shape;
    t.strides_ = shape.contiguousStrides();
    t.offset_ = 0;
    t.dtype_ = dtype;
    return t;
}

Tensor
Tensor::fromExternal(void *data, const Shape &shape, DType dtype)
{
    Tensor t;
    t.storage_ = std::make_shared<Storage>(
        data, static_cast<size_t>(shape.numel()) * dtypeSize(dtype));
    t.shape_ = shape;
    t.strides_ = shape.contiguousStrides();
    t.offset_ = 0;
    t.dtype_ = dtype;
    return t;
}

Tensor
Tensor::zeros(const Shape &shape, DType dtype)
{
    return Tensor(shape, dtype);
}

Tensor
Tensor::full(const Shape &shape, float value, DType dtype)
{
    Tensor t = empty(shape, dtype);
    for (int64_t i = 0; i < t.numel(); ++i)
        t.flatSet(i, value);
    return t;
}

Tensor
Tensor::randn(const Shape &shape, uint64_t seed, float std)
{
    Tensor t = empty(shape, DType::F32);
    std::mt19937_64 rng(seed);
    std::normal_distribution<float> dist(0.0f, std);
    float *p = t.dataF32();
    for (int64_t i = 0; i < t.numel(); ++i)
        p[i] = dist(rng);
    return t;
}

Tensor
Tensor::arange(const Shape &shape, float step)
{
    Tensor t = empty(shape, DType::F32);
    float *p = t.dataF32();
    for (int64_t i = 0; i < t.numel(); ++i)
        p[i] = static_cast<float>(i) * step;
    return t;
}

bool
Tensor::isContiguous() const
{
    return strides_ == shape_.contiguousStrides();
}

int64_t
Tensor::elementIndex(const std::vector<int64_t> &idx) const
{
    assert(idx.size() == shape_.rank());
    int64_t e = offset_;
    for (size_t i = 0; i < idx.size(); ++i) {
        assert(idx[i] >= 0 && idx[i] < shape_[i]);
        e += idx[i] * strides_[i];
    }
    return e;
}

int64_t
Tensor::flatToElementIndex(int64_t i) const
{
    int64_t e = offset_;
    for (int d = static_cast<int>(shape_.rank()) - 1; d >= 0; --d) {
        size_t du = static_cast<size_t>(d);
        int64_t extent = shape_[du];
        e += (i % extent) * strides_[du];
        i /= extent;
    }
    return e;
}

float
Tensor::loadElement(int64_t e) const
{
    const uint8_t *base = storage_->raw();
    switch (dtype_) {
      case DType::F32: {
        float v;
        std::memcpy(&v, base + e * 4, 4);
        return v;
      }
      case DType::F16: {
        uint16_t h;
        std::memcpy(&h, base + e * 2, 2);
        return halfToFloat(h);
      }
      case DType::I8:
        return static_cast<float>(
            *reinterpret_cast<const int8_t *>(base + e));
      case DType::I32: {
        int32_t v;
        std::memcpy(&v, base + e * 4, 4);
        return static_cast<float>(v);
      }
      case DType::B8:
        return base[e] ? 1.0f : 0.0f;
    }
    return 0.0f;
}

void
Tensor::storeElement(int64_t e, float v)
{
    uint8_t *base = storage_->raw();
    switch (dtype_) {
      case DType::F32:
        std::memcpy(base + e * 4, &v, 4);
        break;
      case DType::F16: {
        uint16_t h = floatToHalf(v);
        std::memcpy(base + e * 2, &h, 2);
        break;
      }
      case DType::I8: {
        float c = std::clamp(v, -128.0f, 127.0f);
        *reinterpret_cast<int8_t *>(base + e) =
            static_cast<int8_t>(std::lround(c));
        break;
      }
      case DType::I32: {
        int32_t iv = static_cast<int32_t>(std::lround(v));
        std::memcpy(base + e * 4, &iv, 4);
        break;
      }
      case DType::B8:
        base[e] = v != 0.0f ? 1 : 0;
        break;
    }
}

float
Tensor::at(const std::vector<int64_t> &idx) const
{
    return loadElement(elementIndex(idx));
}

void
Tensor::set(const std::vector<int64_t> &idx, float v)
{
    storeElement(elementIndex(idx), v);
}

float
Tensor::flatAt(int64_t i) const
{
    return loadElement(flatToElementIndex(i));
}

void
Tensor::flatSet(int64_t i, float v)
{
    storeElement(flatToElementIndex(i), v);
}

float *
Tensor::dataF32()
{
    assert(dtype_ == DType::F32 && isContiguous());
    return reinterpret_cast<float *>(storage_->raw()) + offset_;
}

const float *
Tensor::dataF32() const
{
    assert(dtype_ == DType::F32 && isContiguous());
    return reinterpret_cast<const float *>(storage_->raw()) + offset_;
}

int8_t *
Tensor::dataI8()
{
    assert(dtype_ == DType::I8 && isContiguous());
    return reinterpret_cast<int8_t *>(storage_->raw()) + offset_;
}

const int8_t *
Tensor::dataI8() const
{
    assert(dtype_ == DType::I8 && isContiguous());
    return reinterpret_cast<const int8_t *>(storage_->raw()) + offset_;
}

int32_t *
Tensor::dataI32()
{
    assert(dtype_ == DType::I32 && isContiguous());
    return reinterpret_cast<int32_t *>(storage_->raw()) + offset_;
}

const int32_t *
Tensor::dataI32() const
{
    assert(dtype_ == DType::I32 && isContiguous());
    return reinterpret_cast<const int32_t *>(storage_->raw()) + offset_;
}

Tensor
Tensor::view(const Shape &shape) const
{
    if (!isContiguous())
        throw std::runtime_error("view() requires a contiguous tensor");
    if (shape.numel() != numel())
        throw std::runtime_error("view(): numel mismatch " + shape_.str() +
                                 " -> " + shape.str());
    return Tensor(storage_, shape, shape.contiguousStrides(), offset_,
                  dtype_);
}

Tensor
Tensor::reshape(const Shape &shape) const
{
    if (isContiguous())
        return view(shape);
    return contiguous().view(shape);
}

Tensor
Tensor::permute(const std::vector<int> &order) const
{
    if (order.size() != shape_.rank())
        throw std::runtime_error("permute(): order rank mismatch");
    std::vector<int64_t> dims(order.size()), strides(order.size());
    std::vector<bool> seen(order.size(), false);
    for (size_t i = 0; i < order.size(); ++i) {
        int o = order[i];
        if (o < 0 || o >= static_cast<int>(order.size()) || seen[o])
            throw std::runtime_error("permute(): invalid order");
        seen[static_cast<size_t>(o)] = true;
        dims[i] = shape_[static_cast<size_t>(o)];
        strides[i] = strides_[static_cast<size_t>(o)];
    }
    return Tensor(storage_, Shape(dims), strides, offset_, dtype_);
}

Tensor
Tensor::transpose(int d0, int d1) const
{
    int r = static_cast<int>(shape_.rank());
    if (d0 < 0)
        d0 += r;
    if (d1 < 0)
        d1 += r;
    std::vector<int> order(static_cast<size_t>(r));
    for (int i = 0; i < r; ++i)
        order[static_cast<size_t>(i)] = i;
    std::swap(order[static_cast<size_t>(d0)], order[static_cast<size_t>(d1)]);
    return permute(order);
}

Tensor
Tensor::contiguous() const
{
    if (isContiguous())
        return *this;
    return Tensor::empty(shape_, dtype_).copyFrom(*this);
}

Tensor
Tensor::slice(int dim, int64_t start, int64_t len) const
{
    int r = static_cast<int>(shape_.rank());
    if (dim < 0)
        dim += r;
    size_t du = static_cast<size_t>(dim);
    if (dim < 0 || dim >= r || start < 0 || start + len > shape_[du])
        throw std::runtime_error("slice(): out of range");
    Shape ns = shape_;
    ns[du] = len;
    return Tensor(storage_, ns, strides_, offset_ + start * strides_[du],
                  dtype_);
}

Tensor
Tensor::unsqueeze(int dim) const
{
    int r = static_cast<int>(shape_.rank());
    if (dim < 0)
        dim += r + 1;
    std::vector<int64_t> dims = shape_.dims();
    std::vector<int64_t> strides = strides_;
    dims.insert(dims.begin() + dim, 1);
    strides.insert(strides.begin() + dim, 0);
    return Tensor(storage_, Shape(dims), strides, offset_, dtype_);
}

Tensor
Tensor::squeeze(int dim) const
{
    int r = static_cast<int>(shape_.rank());
    if (dim < 0)
        dim += r;
    size_t du = static_cast<size_t>(dim);
    if (shape_[du] != 1)
        throw std::runtime_error("squeeze(): dimension is not 1");
    std::vector<int64_t> dims = shape_.dims();
    std::vector<int64_t> strides = strides_;
    dims.erase(dims.begin() + dim);
    strides.erase(strides.begin() + dim);
    return Tensor(storage_, Shape(dims), strides, offset_, dtype_);
}

Tensor
Tensor::expand(const Shape &shape) const
{
    if (shape.rank() != shape_.rank())
        throw std::runtime_error("expand(): rank mismatch");
    std::vector<int64_t> strides = strides_;
    for (size_t i = 0; i < shape.rank(); ++i) {
        if (shape_[i] == shape[i])
            continue;
        if (shape_[i] != 1)
            throw std::runtime_error("expand(): can only expand size-1 dims");
        strides[i] = 0;
    }
    return Tensor(storage_, shape, strides, offset_, dtype_);
}

Tensor
Tensor::clone() const
{
    return Tensor::empty(shape_, dtype_).copyFrom(*this);
}

Tensor
Tensor::to(DType dtype) const
{
    return Tensor::empty(shape_, dtype).copyFrom(*this);
}

Tensor &
Tensor::copyFrom(const Tensor &src)
{
    if (numel() != src.numel())
        throw std::runtime_error("copyFrom: numel mismatch " +
                                 shape_.str() + " <- " +
                                 src.shape().str());
    if (dtype_ == src.dtype_ && isContiguous() && src.isContiguous()) {
        uint8_t *dst_p = storage_->raw() + offset_ * dtypeSize(dtype_);
        const uint8_t *src_p =
            src.storage_->raw() + src.offset_ * dtypeSize(dtype_);
        if (dst_p != src_p)  // memmove: source may share the buffer
            std::memmove(dst_p, src_p, static_cast<size_t>(bytes()));
        return *this;
    }
    for (int64_t i = 0; i < numel(); ++i)
        flatSet(i, src.flatAt(i));
    return *this;
}

Tensor &
Tensor::fillZero()
{
    // All-zero bytes decode to 0 for every supported dtype.
    if (isContiguous()) {
        std::memset(storage_->raw() + offset_ * dtypeSize(dtype_), 0,
                    static_cast<size_t>(bytes()));
        return *this;
    }
    for (int64_t i = 0; i < numel(); ++i)
        flatSet(i, 0.0f);
    return *this;
}

}  // namespace ngb
