#include "tensor/dtype.h"

#include <cmath>
#include <cstring>

namespace ngb {

size_t
dtypeSize(DType t)
{
    switch (t) {
      case DType::F32: return 4;
      case DType::F16: return 2;
      case DType::I8: return 1;
      case DType::I32: return 4;
      case DType::B8: return 1;
    }
    return 0;
}

std::string
dtypeName(DType t)
{
    switch (t) {
      case DType::F32: return "f32";
      case DType::F16: return "f16";
      case DType::I8: return "i8";
      case DType::I32: return "i32";
      case DType::B8: return "b8";
    }
    return "?";
}

float
halfToFloat(uint16_t h)
{
    uint32_t sign = (h & 0x8000u) << 16;
    uint32_t exp = (h >> 10) & 0x1f;
    uint32_t mant = h & 0x3ffu;
    uint32_t bits;
    if (exp == 0) {
        if (mant == 0) {
            bits = sign;
        } else {
            // Subnormal: normalize.
            int shift = 0;
            while (!(mant & 0x400u)) {
                mant <<= 1;
                ++shift;
            }
            mant &= 0x3ffu;
            bits = sign | ((112u - shift) << 23) | (mant << 13);
        }
    } else if (exp == 0x1f) {
        bits = sign | 0x7f800000u | (mant << 13);
    } else {
        bits = sign | ((exp + 112u) << 23) | (mant << 13);
    }
    float f;
    std::memcpy(&f, &bits, sizeof(f));
    return f;
}

uint16_t
floatToHalf(float f)
{
    uint32_t bits;
    std::memcpy(&bits, &f, sizeof(bits));
    uint32_t sign = (bits >> 16) & 0x8000u;
    int32_t exp = static_cast<int32_t>((bits >> 23) & 0xffu) - 127 + 15;
    uint32_t mant = bits & 0x7fffffu;
    if (exp >= 0x1f) {
        // Overflow or inf/nan.
        uint32_t nan_mant = ((bits >> 23) & 0xffu) == 0xffu && mant ? 0x200u : 0;
        return static_cast<uint16_t>(sign | 0x7c00u | nan_mant);
    }
    if (exp <= 0) {
        if (exp < -10)
            return static_cast<uint16_t>(sign);
        // Subnormal half.
        mant |= 0x800000u;
        uint32_t shift = static_cast<uint32_t>(14 - exp);
        uint32_t half_mant = mant >> shift;
        uint32_t round = (mant >> (shift - 1)) & 1u;
        return static_cast<uint16_t>(sign | (half_mant + round));
    }
    uint32_t half_mant = mant >> 13;
    uint32_t round = (mant >> 12) & 1u;
    uint32_t out = sign | (static_cast<uint32_t>(exp) << 10) | half_mant;
    return static_cast<uint16_t>(out + round);
}

}  // namespace ngb
