#ifndef NGB_TENSOR_DTYPE_H
#define NGB_TENSOR_DTYPE_H

#include <cstddef>
#include <cstdint>
#include <string>

namespace ngb {

/**
 * Element data types supported by the tensor library.
 *
 * F16 is stored as IEEE 754 binary16 in memory and widened to float for
 * arithmetic; it exists primarily so that the platform cost model can
 * account for half-precision byte traffic and tensor-core GEMM rates.
 */
enum class DType : uint8_t {
    F32,
    F16,
    I8,
    I32,
    B8,  ///< boolean stored as one byte
};

/** Size of one element of the given type, in bytes. */
size_t dtypeSize(DType t);

/** Human-readable name, e.g. "f32". */
std::string dtypeName(DType t);

/** Convert an IEEE binary16 bit pattern to float. */
float halfToFloat(uint16_t h);

/** Convert a float to the nearest IEEE binary16 bit pattern. */
uint16_t floatToHalf(float f);

}  // namespace ngb

#endif  // NGB_TENSOR_DTYPE_H
