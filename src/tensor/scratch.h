#ifndef NGB_TENSOR_SCRATCH_H
#define NGB_TENSOR_SCRATCH_H

#include <cstdint>
#include <memory>
#include <vector>

#include "tensor/tensor.h"

/**
 * @file
 * Per-thread bump-allocated scratch memory for kernel-internal
 * temporaries (im2col patch matrices, contiguous/F32 input
 * materializations, packed operand copies).
 *
 * Kernel temporaries die inside the kernel call that made them, so
 * they do not need their own heap allocations: the executors open a
 * ScratchScope around each node evaluation, temporaries bump-allocate
 * from a thread-local arena, and the scope's destructor hands the
 * bytes back. The arena grows to the peak per-node demand during the
 * first requests and then stops allocating — together with the
 * planned output arenas this is what makes the steady-state serving
 * loop perform zero tensor mallocs.
 *
 * Discipline: a tensor allocated from scratch must NOT escape the
 * enclosing ScratchScope — its bytes are reused by the next scope.
 * Escapes are caught by the poison leg: with $NGB_POISON=1 the scope
 * destructor repoisons the released range, so a stale scratch view
 * reads 0xA5 garbage and fails the bit-identity suites loudly.
 * isScratch() lets holders of a maybe-scratch tensor (the fused-chain
 * interpreter) detect and copy out before escaping.
 */

namespace ngb {

/** The calling thread's scratch arena. */
class ScratchArena
{
  public:
    /** Bump position (restored by ScratchScope on unwind). */
    struct Mark {
        size_t block = 0;
        size_t offset = 0;
    };

    static ScratchArena &local();

    /** True when at least one ScratchScope is open on this thread. */
    bool active() const { return depth_ > 0; }

    /**
     * Bump-allocate an uninitialized contiguous tensor. Grows the
     * arena (one heap block) when the current blocks cannot hold the
     * request; steady state allocates nothing.
     */
    Tensor alloc(const Shape &shape, DType dtype);

    /** True when @p t 's bytes live inside this thread's arena. */
    bool owns(const Tensor &t) const;

    /** Bytes currently reserved across this thread's blocks. */
    int64_t reservedBytes() const;

    /** This thread's peak in-use bytes. */
    int64_t highWaterBytes() const { return high_water_; }

    /** Max highWaterBytes() across every thread (updated on scope exit). */
    static int64_t globalHighWaterBytes();

    /**
     * Sum of highWaterBytes() across every thread that ever opened a
     * scope — the aggregate footprint intra-op sharding pays for its
     * per-worker pack panels (each worker arena peaks independently,
     * so the sum, not the max, is what resident memory sees).
     */
    static int64_t globalHighWaterSumBytes();

  private:
    friend class ScratchScope;

    Mark mark() const { return {cur_, off_}; }
    void reset(const Mark &m);
    int64_t inUseBytes() const;

    std::vector<std::shared_ptr<Storage>> blocks_;
    size_t cur_ = 0;    ///< block currently bumping
    size_t off_ = 0;    ///< bump offset inside blocks_[cur_]
    int depth_ = 0;     ///< open-scope count
    int64_t high_water_ = 0;
};

/**
 * RAII scope: temporaries allocated while the scope is open are
 * reclaimed (and repoisoned under $NGB_POISON) when it closes. Scopes
 * nest; an inner scope only reclaims its own allocations.
 */
class ScratchScope
{
  public:
    ScratchScope();
    ~ScratchScope();

    ScratchScope(const ScratchScope &) = delete;
    ScratchScope &operator=(const ScratchScope &) = delete;

  private:
    ScratchArena::Mark mark_;
};

/**
 * An uninitialized contiguous tensor from the thread's scratch arena
 * when a ScratchScope is open, else a plain heap tensor (so kernels
 * stay callable outside an executor).
 */
Tensor scratchEmpty(const Shape &shape, DType dtype = DType::F32);

/** True when @p t is backed by the calling thread's scratch arena. */
bool isScratch(const Tensor &t);

/**
 * @p t itself when it is already contiguous F32, else a contiguous
 * F32 materialization in scratch. The zero-copy replacement for the
 * contiguous().to(F32) kernel preamble; read-only use, may alias @p t.
 */
Tensor toContiguousF32(const Tensor &t);

/** @p t itself when contiguous, else a same-dtype copy in scratch. */
Tensor toContiguous(const Tensor &t);

}  // namespace ngb

#endif  // NGB_TENSOR_SCRATCH_H
