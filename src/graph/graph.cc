#include "graph/graph.h"

namespace ngb {

int
Graph::addNode(Node n)
{
    n.id = static_cast<int>(nodes_.size());
    nodes_.push_back(std::move(n));
    return nodes_.back().id;
}

GraphStats
Graph::stats() const
{
    GraphStats s;
    for (const Node &n : nodes_) {
        if (n.inputs.empty()) {
            // Graph inputs and weight/buffer placeholders are not
            // executed operators; only their parameters count.
            if (!n.attrs.has("buffer"))
                s.totalParams += n.paramCount();
            continue;
        }
        ++s.numOps;
        if (n.isGemm()) {
            ++s.numGemmOps;
            s.gemmFlops += n.cost.flops;
        } else {
            ++s.numNonGemmOps;
        }
        s.totalFlops += n.cost.flops;
        if (!n.attrs.has("buffer"))
            s.totalParams += n.paramCount();
        ++s.opsByCategory[n.category()];
    }
    return s;
}

std::vector<int>
Graph::useCounts() const
{
    std::vector<int> uses(nodes_.size(), 0);
    for (const Node &n : nodes_)
        for (const Value &v : n.inputs)
            if (v.valid())
                ++uses[static_cast<size_t>(v.node)];
    for (const Value &v : outputs_)
        if (v.valid())
            ++uses[static_cast<size_t>(v.node)];
    return uses;
}

}  // namespace ngb
