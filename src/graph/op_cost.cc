#include "graph/op_cost.h"

#include <algorithm>
#include <cmath>

namespace ngb {

namespace {

double
shapeBytes(const Shape &s, DType t)
{
    return static_cast<double>(s.numel()) *
           static_cast<double>(dtypeSize(t));
}

/** Approximate flops per element for element-wise functions. */
double
elemwiseFlopsPerElement(OpKind k)
{
    switch (k) {
      case OpKind::ReLU: return 1;
      case OpKind::GELU: return 10;  // erf-based CDF
      case OpKind::SiLU: return 6;   // exp + div
      case OpKind::Sigmoid: return 5;
      case OpKind::Tanh: return 7;
      case OpKind::Erf: return 8;
      case OpKind::Exp: return 4;
      case OpKind::Log: return 4;
      case OpKind::Sqrt: return 2;
      case OpKind::Pow: return 8;
      case OpKind::Where: return 1;
      case OpKind::Quantize: return 3;   // scale + round + clamp
      case OpKind::Dequantize: return 2; // scale + widen
      default: return 1;  // add/sub/mul/div/neg
    }
}

}  // namespace

OpCost
computeOpCost(const Node &n, const Graph &g)
{
    OpCost c;

    double in_bytes = 0;
    for (const Value &v : n.inputs)
        if (v.valid())
            in_bytes += shapeBytes(g.shapeOf(v), g.dtypeOf(v));
    double out_elems = 0;
    double out_bytes = 0;
    for (size_t i = 0; i < n.outShapes.size(); ++i) {
        out_elems += static_cast<double>(n.outShapes[i].numel());
        out_bytes += shapeBytes(n.outShapes[i], n.outDtypes[i]);
    }
    double param_bytes = 0;
    for (const Shape &s : n.paramShapes)
        param_bytes += shapeBytes(s, n.paramDtype);

    // Executable-quantization byte corrections: these nodes declare an
    // F32 master weight but the kernel streams a derived narrow
    // representation (int8 elements + one f32 scale per channel), or,
    // for Dequantize/requantize nodes, touches only the [N] scales of
    // the weight param they carry.
    bool wq8 = n.kind == OpKind::Linear && n.attrs.getI("wq8", 0) != 0;
    bool execInt8 = n.kind == OpKind::Int8Linear &&
                    n.attrs.getI("executable", 0) != 0;
    bool execQdq = (n.kind == OpKind::Quantize ||
                    n.kind == OpKind::Dequantize) &&
                   n.attrs.getI("executable", 0) != 0;
    if ((wq8 || execInt8) && !n.paramShapes.empty()) {
        const Shape &w = n.paramShapes[0];
        param_bytes -= shapeBytes(w, n.paramDtype);
        param_bytes += static_cast<double>(w.numel()) +      // int8 cells
                       static_cast<double>(w[0]) * 4.0;      // f32 scales
    } else if (execQdq && !n.paramShapes.empty()) {
        const Shape &w = n.paramShapes[0];
        param_bytes -= shapeBytes(w, n.paramDtype);
        param_bytes += static_cast<double>(w[0]) * 4.0;      // f32 scales
    }

    c.bytesIn = in_bytes;
    c.bytesOut = out_bytes;
    c.bytesParam = param_bytes;

    switch (n.kind) {
      case OpKind::Linear:
      case OpKind::Int8Linear: {
        // x: [.., K], w: [N, K]
        const Shape &x = g.shapeOf(n.inputs[0]);
        int64_t k = x.dim(-1);
        int64_t m = x.numel() / k;
        int64_t nn = n.paramShapes[0][0];
        c.flops = 2.0 * static_cast<double>(m) * static_cast<double>(k) *
                  static_cast<double>(nn);
        break;
      }
      case OpKind::Conv2d: {
        // out: [N, F, OH, OW]; w: [F, C/g, R, S]
        const Shape &o = n.outShapes[0];
        const Shape &w = n.paramShapes[0];
        c.flops = 2.0 * static_cast<double>(o.numel()) *
                  static_cast<double>(w[1] * w[2] * w[3]);
        break;
      }
      case OpKind::BMM: {
        const Shape &a = g.shapeOf(n.inputs[0]);
        const Shape &b = g.shapeOf(n.inputs[1]);
        c.flops = 2.0 * static_cast<double>(a[0] * a[1] * a[2] * b[2]);
        break;
      }
      case OpKind::MatMul: {
        const Shape &a = g.shapeOf(n.inputs[0]);
        const Shape &b = g.shapeOf(n.inputs[1]);
        c.flops = 2.0 * static_cast<double>(a[0] * a[1] * b[1]);
        break;
      }

      case OpKind::LayerNorm:
      case OpKind::GroupNorm:
        c.flops = 8.0 * out_elems;  // mean, var, normalize, affine
        break;
      case OpKind::RMSNorm:
        c.flops = 5.0 * out_elems;  // no mean subtraction
        break;
      case OpKind::BatchNorm2d:
      case OpKind::FrozenBatchNorm2d:
        c.flops = 2.0 * out_elems;  // folded scale + shift
        break;

      case OpKind::Softmax:
      case OpKind::LogSoftmax:
        c.flops = 6.0 * out_elems;  // max, exp, sum, div
        break;

      case OpKind::NMS: {
        // Sort + pairwise IoU on the candidate set (Figure 2 (a)).
        const Shape &boxes = g.shapeOf(n.inputs[0]);
        double nb = static_cast<double>(boxes[0]);
        double kept = static_cast<double>(
            n.attrs.getI("expected_keep", boxes[0]));
        c.flops = nb * std::log2(std::max(nb, 2.0)) * 4.0 +
                  kept * nb * 16.0;
        break;
      }
      case OpKind::RoIAlign:
        c.flops = 14.0 * out_elems;  // 4-tap bilinear sample per output
        break;
      case OpKind::Interpolate:
        c.flops = 12.0 * out_elems;
        break;

      case OpKind::MaxPool2d:
      case OpKind::AvgPool2d: {
        int64_t kk = n.attrs.getI("kernel", 1);
        c.flops = out_elems * static_cast<double>(kk * kk);
        break;
      }
      case OpKind::AdaptiveAvgPool2d: {
        const Shape &x = g.shapeOf(n.inputs[0]);
        c.flops = static_cast<double>(x.numel());
        break;
      }

      case OpKind::Embedding:
      case OpKind::Gather:
        c.flops = 0;  // pure data movement
        break;

      case OpKind::TopK: {
        const Shape &x = g.shapeOf(n.inputs[0]);
        double d = static_cast<double>(x.dim(-1));
        c.flops = static_cast<double>(x.numel()) *
                  std::log2(std::max(d, 2.0));
        break;
      }
      case OpKind::CumSum:
        c.flops = out_elems;
        break;

      // Memory operators.
      case OpKind::View:
      case OpKind::Permute:
      case OpKind::Transpose:
      case OpKind::Expand:
      case OpKind::Squeeze:
      case OpKind::Unsqueeze:
      case OpKind::Slice:
      case OpKind::Split:
        // Metadata-only stride updates: no kernel, no byte traffic.
        c.flops = 0;
        c.bytesIn = 0;
        c.bytesOut = 0;
        c.zeroCopy = true;
        break;

      case OpKind::Reshape:
      case OpKind::Contiguous:
      case OpKind::Concat:
      case OpKind::Roll:
      case OpKind::Pad:
        // Copy kernels: bytes already counted, no arithmetic.
        c.flops = 0;
        break;

      case OpKind::Fused:
        // Filled in by the fusion engine from its constituents.
        break;

      default:
        c.flops = elemwiseFlopsPerElement(n.kind) * out_elems;
        break;
    }
    return c;
}

}  // namespace ngb
