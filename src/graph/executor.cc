#include "graph/executor.h"

#include <stdexcept>

#include "tensor/scratch.h"

namespace ngb {

std::vector<Tensor>
Executor::run(const std::vector<Tensor> &inputs)
{
    results_.clear();
    const auto &gin = g_.graphInputs();
    if (inputs.size() != gin.size())
        throw std::runtime_error("Executor: expected " +
                                 std::to_string(gin.size()) + " inputs");
    for (size_t i = 0; i < gin.size(); ++i) {
        if (inputs[i].shape() != g_.shapeOf(gin[i]))
            throw std::runtime_error(
                "Executor: input " + std::to_string(i) + " shape " +
                inputs[i].shape().str() + " != declared " +
                g_.shapeOf(gin[i]).str());
        results_[{gin[i].node, gin[i].index}] = inputs[i];
    }

    auto lookup = [&](const Value &v) -> const Tensor & {
        auto it = results_.find({v.node, v.index});
        if (it == results_.end())
            throw std::runtime_error(
                "Executor: missing input value from node " +
                std::to_string(v.node));
        return it->second;
    };

    for (int id : sched_.order()) {
        const Node &n = g_.node(id);
        if (results_.count({n.id, 0}))
            continue;  // graph input
        if (n.inputs.empty()) {
            // Learned constant (GraphBuilder::weight).
            if (n.paramShapes.empty())
                throw std::runtime_error(
                    "Executor: input node without a bound tensor: " +
                    n.name);
            results_[{n.id, 0}] = params_.get(n, 0);
            continue;
        }
        // Kernel-internal temporaries die with the node evaluation.
        ScratchScope scratch;
        std::vector<Tensor> outs = evalNode(n, lookup, params_, backend_);
        for (size_t i = 0; i < outs.size(); ++i)
            results_[{n.id, static_cast<int>(i)}] = std::move(outs[i]);
    }

    std::vector<Tensor> outs;
    for (const Value &v : g_.graphOutputs())
        outs.push_back(valueOf(v));
    return outs;
}

const Tensor &
Executor::valueOf(Value v) const
{
    auto it = results_.find({v.node, v.index});
    if (it == results_.end())
        throw std::runtime_error("Executor: value not computed");
    return it->second;
}

}  // namespace ngb
