#include "graph/executor.h"

#include <stdexcept>

#include "ops/kernels.h"

namespace ngb {

namespace kn = kernels;

const Tensor &
ParamStore::get(const Node &n, size_t index)
{
    auto key = std::make_pair(n.id, index);
    auto it = cache_.find(key);
    if (it != cache_.end())
        return it->second;

    const Shape &shape = n.paramShapes[index];
    Tensor t;
    bool is_norm = opCategoryOf(n.kind) == OpCategory::Normalization;
    if (is_norm) {
        // gamma=1, beta=0, running_mean=0, running_var=1.
        float v = (index == 0 || index == 3) ? 1.0f : 0.0f;
        t = Tensor::full(shape, v);
    } else if (n.paramShapes.size() > 1 && index == n.paramShapes.size() - 1
               && shape.rank() == 1) {
        // Bias vectors start at zero.
        t = Tensor::zeros(shape);
    } else {
        uint64_t s = seed_ + static_cast<uint64_t>(n.id) * 1315423911ull +
                     index * 2654435761ull;
        t = Tensor::randn(shape, s, 0.05f);
        if (n.paramDtype != DType::F32)
            t = t.to(n.paramDtype);
    }
    return cache_.emplace(key, std::move(t)).first->second;
}

std::vector<Tensor>
Executor::run(const std::vector<Tensor> &inputs)
{
    results_.clear();
    const auto &gin = g_.graphInputs();
    if (inputs.size() != gin.size())
        throw std::runtime_error("Executor: expected " +
                                 std::to_string(gin.size()) + " inputs");
    for (size_t i = 0; i < gin.size(); ++i) {
        if (inputs[i].shape() != g_.shapeOf(gin[i]))
            throw std::runtime_error(
                "Executor: input " + std::to_string(i) + " shape " +
                inputs[i].shape().str() + " != declared " +
                g_.shapeOf(gin[i]).str());
        results_[{gin[i].node, gin[i].index}] = inputs[i];
    }

    for (const Node &n : g_.nodes()) {
        if (results_.count({n.id, 0}))
            continue;  // graph input
        if (n.inputs.empty()) {
            // Learned constant (GraphBuilder::weight).
            if (n.paramShapes.empty())
                throw std::runtime_error(
                    "Executor: input node without a bound tensor: " +
                    n.name);
            results_[{n.id, 0}] = params_.get(n, 0);
            continue;
        }
        Tensor out = execNode(n);
        results_[{n.id, 0}] = std::move(out);
    }

    std::vector<Tensor> outs;
    for (const Value &v : g_.graphOutputs())
        outs.push_back(valueOf(v));
    return outs;
}

const Tensor &
Executor::valueOf(Value v) const
{
    auto it = results_.find({v.node, v.index});
    if (it == results_.end())
        throw std::runtime_error("Executor: value not computed");
    return it->second;
}

Tensor
Executor::execNode(const Node &n)
{
    auto in = [&](size_t i) -> const Tensor & {
        const Value &v = n.inputs[i];
        auto it = results_.find({v.node, v.index});
        if (it == results_.end())
            throw std::runtime_error("Executor: missing input for node " +
                                     std::to_string(n.id) + " (" + n.name +
                                     ")");
        return it->second;
    };
    auto param = [&](size_t i) -> const Tensor & {
        return params_.get(n, i);
    };
    auto optBias = [&]() -> Tensor {
        return n.paramShapes.size() > 1 ? param(n.paramShapes.size() - 1)
                                        : Tensor();
    };

    switch (n.kind) {
      case OpKind::Linear:
        return kn::linear(in(0), param(0), optBias());
      case OpKind::Int8Linear: {
        // Dynamic activation quantization, absmax weight scale.
        float xs = kn::absmaxScale(in(0));
        Tensor wq = param(0);
        float ws = 1.0f;
        if (wq.dtype() != DType::I8) {
            ws = kn::absmaxScale(wq);
            wq = kn::quantize(wq, ws);
        } else {
            ws = 0.05f / 127.0f * 3.0f;  // matches ParamStore I8 rounding
        }
        Tensor xq = kn::quantize(in(0), xs);
        return kn::int8Linear(xq, wq, optBias(), xs, ws);
      }
      case OpKind::Conv2d:
        return kn::conv2d(in(0), param(0), optBias(),
                          static_cast<int>(n.attrs.getI("stride")),
                          static_cast<int>(n.attrs.getI("padding")),
                          static_cast<int>(n.attrs.getI("groups", 1)));
      case OpKind::BMM:
        return kn::bmm(in(0), in(1));
      case OpKind::MatMul:
        return kn::matmul(in(0), in(1));

      case OpKind::ReLU:
        return kn::relu(in(0));
      case OpKind::GELU:
        return kn::gelu(in(0));
      case OpKind::SiLU:
        return kn::silu(in(0));
      case OpKind::Sigmoid:
        return kn::sigmoid(in(0));
      case OpKind::Tanh:
        return kn::tanhOp(in(0));
      case OpKind::Erf:
        return kn::erfOp(in(0));
      case OpKind::Exp:
        return kn::expOp(in(0));
      case OpKind::Log:
        return kn::logOp(in(0));

      case OpKind::LayerNorm:
        return kn::layerNorm(in(0), param(0), param(1),
                             static_cast<float>(n.attrs.getF("eps", 1e-5)));
      case OpKind::BatchNorm2d:
      case OpKind::FrozenBatchNorm2d:
        return kn::batchNorm2d(in(0), param(0), param(1), param(2),
                               param(3),
                               static_cast<float>(n.attrs.getF("eps",
                                                               1e-5)));
      case OpKind::RMSNorm:
        return kn::rmsNorm(in(0), param(0),
                           static_cast<float>(n.attrs.getF("eps", 1e-6)));
      case OpKind::GroupNorm:
        return kn::groupNorm(in(0), param(0), param(1),
                             static_cast<int>(n.attrs.getI("groups", 1)),
                             static_cast<float>(n.attrs.getF("eps", 1e-5)));

      case OpKind::Add:
        if (n.inputs.size() == 1)
            return kn::addScalar(in(0),
                                 static_cast<float>(n.attrs.getF("scalar")));
        return kn::add(in(0), in(1));
      case OpKind::Sub:
        return kn::sub(in(0), in(1));
      case OpKind::Mul:
        if (n.inputs.size() == 1)
            return kn::mulScalar(in(0),
                                 static_cast<float>(n.attrs.getF("scalar")));
        return kn::mul(in(0), in(1));
      case OpKind::Div:
        return kn::div(in(0), in(1));
      case OpKind::Neg:
        return kn::neg(in(0));
      case OpKind::Sqrt:
        return kn::sqrtOp(in(0));
      case OpKind::Pow:
        return kn::powScalar(
            in(0), static_cast<float>(n.attrs.getF("exponent", 2.0)));
      case OpKind::Where:
        return kn::where(in(0), in(1), in(2));

      case OpKind::Softmax:
        return kn::softmax(in(0), static_cast<int>(n.attrs.getI("dim")));
      case OpKind::LogSoftmax:
        return kn::logSoftmax(in(0), static_cast<int>(n.attrs.getI("dim")));

      case OpKind::Reshape:
        return in(0).reshape(n.outShapes[0]);
      case OpKind::View:
        return in(0).contiguous().view(n.outShapes[0]);
      case OpKind::Permute: {
        const auto &ord = n.attrs.getInts("order");
        std::vector<int> o(ord.begin(), ord.end());
        return in(0).permute(o);
      }
      case OpKind::Transpose:
        return in(0).transpose(static_cast<int>(n.attrs.getI("d0")),
                               static_cast<int>(n.attrs.getI("d1")));
      case OpKind::Contiguous:
        return in(0).contiguous();
      case OpKind::Slice:
        return in(0).slice(static_cast<int>(n.attrs.getI("dim")),
                           n.attrs.getI("start"),
                           n.outShapes[0][static_cast<size_t>(
                               n.attrs.getI("dim"))]);
      case OpKind::Expand:
        return in(0).expand(n.outShapes[0]);
      case OpKind::Squeeze:
        return in(0).squeeze(static_cast<int>(n.attrs.getI("dim")));
      case OpKind::Unsqueeze:
        return in(0).unsqueeze(static_cast<int>(n.attrs.getI("dim")));
      case OpKind::Roll:
        return kn::roll(in(0), n.attrs.getI("shift"),
                        static_cast<int>(n.attrs.getI("dim")));
      case OpKind::Pad:
        return kn::pad(in(0), static_cast<int>(n.attrs.getI("dim")),
                       n.attrs.getI("before"), n.attrs.getI("after"));
      case OpKind::Concat: {
        std::vector<Tensor> xs;
        for (size_t i = 0; i < n.inputs.size(); ++i)
            xs.push_back(in(i));
        return kn::concat(xs, static_cast<int>(n.attrs.getI("dim")));
      }

      case OpKind::NMS: {
        Tensor kept = kn::nms(
            in(0), in(1),
            static_cast<float>(n.attrs.getF("iou_threshold", 0.5)),
            static_cast<float>(n.attrs.getF("score_threshold", 0.0)));
        // Pad / trim to the static expected_keep size.
        int64_t want = n.outShapes[0][0];
        Tensor out(Shape{want}, DType::I32);
        int32_t *po = out.dataI32();
        const int32_t *pk = kept.dataI32();
        for (int64_t i = 0; i < want; ++i)
            po[i] = i < kept.numel() ? pk[i] : 0;
        return out;
      }
      case OpKind::RoIAlign:
        return kn::roiAlign(in(0), in(1),
                            static_cast<int>(n.attrs.getI("out_h")),
                            static_cast<int>(n.attrs.getI("out_w")));
      case OpKind::Interpolate:
        return kn::interpolateBilinear(
            in(0), static_cast<int>(n.attrs.getI("out_h")),
            static_cast<int>(n.attrs.getI("out_w")));

      case OpKind::MaxPool2d:
        return kn::maxPool2d(in(0),
                             static_cast<int>(n.attrs.getI("kernel")),
                             static_cast<int>(n.attrs.getI("stride")),
                             static_cast<int>(n.attrs.getI("padding")));
      case OpKind::AvgPool2d:
        return kn::avgPool2d(in(0),
                             static_cast<int>(n.attrs.getI("kernel")),
                             static_cast<int>(n.attrs.getI("stride")),
                             static_cast<int>(n.attrs.getI("padding")));
      case OpKind::AdaptiveAvgPool2d:
        return kn::adaptiveAvgPool2d(
            in(0), static_cast<int>(n.attrs.getI("out_h")),
            static_cast<int>(n.attrs.getI("out_w")));

      case OpKind::Embedding:
        return kn::embedding(in(0), param(0));
      case OpKind::Gather:
        return kn::gather(in(0), static_cast<int>(n.attrs.getI("dim")),
                          in(1));
      case OpKind::CumSum:
        return kn::cumsum(in(0), static_cast<int>(n.attrs.getI("dim")));

      case OpKind::Quantize:
        return kn::quantize(in(0), kn::absmaxScale(in(0)));
      case OpKind::Dequantize: {
        // Symmetric round-trip: reuse the producing scale when known.
        return kn::dequantize(in(0), 1.0f);
      }

      case OpKind::Split:
      case OpKind::TopK:
      case OpKind::Fused:
        break;  // handled below / unsupported
    }

    if (n.kind == OpKind::Split) {
        // Multi-output handled by caller via results_; store extras here.
        auto parts = kn::split(in(0), n.attrs.getI("size", 1),
                               static_cast<int>(n.attrs.getI("dim")));
        for (size_t i = 1; i < parts.size(); ++i)
            results_[{n.id, static_cast<int>(i)}] =
                parts[i].contiguous();
        return parts[0].contiguous();
    }
    if (n.kind == OpKind::TopK) {
        auto [vals, idx] = kn::topk(in(0),
                                    static_cast<int>(n.attrs.getI("k")));
        results_[{n.id, 1}] = idx;
        return vals;
    }
    throw std::runtime_error("Executor: unsupported op " +
                             opKindName(n.kind));
}

}  // namespace ngb
