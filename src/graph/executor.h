#ifndef NGB_GRAPH_EXECUTOR_H
#define NGB_GRAPH_EXECUTOR_H

#include <map>
#include <vector>

#include "graph/graph.h"
#include "graph/node_eval.h"
#include "graph/schedule.h"
#include "tensor/tensor.h"

namespace ngb {

/**
 * Concrete reference execution of a graph on the host CPU.
 *
 * Executes nodes in the order of a pluggable Schedule (serial
 * topological order by default) through a pluggable kernel Backend
 * (the process default — $NGB_BACKEND or reference — unless one is
 * passed). This is the functional half of the framework: tests use it
 * to verify operator and graph semantics (e.g. that quantization
 * rewrites preserve accuracy bounds), while timing comes from the
 * platform cost model instead of wall-clock. The parallel runtime in
 * src/runtime dispatches the same node evaluation from the same
 * schedules onto a thread pool; under the same Backend the two are
 * bit-identical.
 */
class Executor
{
  public:
    explicit Executor(const Graph &g,
                      const Backend &backend = defaultBackend())
        : g_(g), sched_(Schedule::serial(g)), params_(0x5eed),
          backend_(backend)
    {
    }

    /** Execute in the order of a caller-provided schedule. */
    Executor(const Graph &g, Schedule sched,
             const Backend &backend = defaultBackend())
        : g_(g), sched_(std::move(sched)), params_(0x5eed),
          backend_(backend)
    {
    }

    /**
     * Run the graph on @p inputs (one tensor per graph input, in
     * order). Returns the tensors for the graph outputs.
     */
    std::vector<Tensor> run(const std::vector<Tensor> &inputs);

    /** Tensor produced for @p v during the last run(). */
    const Tensor &valueOf(Value v) const;

    ParamStore &params() { return params_; }
    const Schedule &schedule() const { return sched_; }
    const Backend &backend() const { return backend_; }

  private:
    const Graph &g_;
    Schedule sched_;
    ParamStore params_;
    const Backend &backend_;
    std::map<std::pair<int, int>, Tensor> results_;
};

}  // namespace ngb

#endif  // NGB_GRAPH_EXECUTOR_H
