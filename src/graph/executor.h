#ifndef NGB_GRAPH_EXECUTOR_H
#define NGB_GRAPH_EXECUTOR_H

#include <map>
#include <vector>

#include "graph/graph.h"
#include "tensor/tensor.h"

namespace ngb {

/**
 * Deterministic synthetic parameters for a graph's operators.
 *
 * Weight values never affect the paper's metric (latency share), but
 * concrete execution needs sane parameters: normalization scales are
 * ones, shifts/means are zeros, variances are ones, and projection
 * weights are seeded Gaussians so results are reproducible.
 */
class ParamStore
{
  public:
    explicit ParamStore(uint64_t seed = 0x5eed) : seed_(seed) {}

    /** Materialize (and cache) parameter @p index of node @p n. */
    const Tensor &get(const Node &n, size_t index);

  private:
    uint64_t seed_;
    std::map<std::pair<int, size_t>, Tensor> cache_;
};

/**
 * Concrete reference execution of a graph on the host CPU.
 *
 * Executes nodes in topological order using the kernels in src/ops.
 * This is the functional half of the framework: tests use it to verify
 * operator and graph semantics (e.g. that quantization rewrites
 * preserve accuracy bounds), while timing comes from the platform
 * cost model instead of wall-clock.
 */
class Executor
{
  public:
    explicit Executor(const Graph &g) : g_(g), params_(0x5eed) {}

    /**
     * Run the graph on @p inputs (one tensor per graph input, in
     * order). Returns the tensors for the graph outputs.
     */
    std::vector<Tensor> run(const std::vector<Tensor> &inputs);

    /** Tensor produced for @p v during the last run(). */
    const Tensor &valueOf(Value v) const;

    ParamStore &params() { return params_; }

  private:
    Tensor execNode(const Node &n);

    const Graph &g_;
    ParamStore params_;
    std::map<std::pair<int, int>, Tensor> results_;
};

}  // namespace ngb

#endif  // NGB_GRAPH_EXECUTOR_H
