#ifndef NGB_GRAPH_DOT_EXPORT_H
#define NGB_GRAPH_DOT_EXPORT_H

#include <ostream>

#include "graph/graph.h"

namespace ngb {

/**
 * Graphviz DOT rendering of an operator graph, matching the
 * operator-graph view of the NonGEMM Bench flow (Figure 4). Nodes are
 * colored by operator category; edges are labeled with tensor shapes.
 * Intended for small graphs (test-scale models, custom blocks) —
 * paper-scale graphs render but are large.
 */
struct DotOptions {
    bool shapesOnEdges = true;
    /** Hide zero-copy layout ops to declutter (their chains collapse). */
    bool hideZeroCopy = false;
    size_t maxNodes = 4096;
};

void writeDot(const Graph &g, const DotOptions &opts, std::ostream &os);

}  // namespace ngb

#endif  // NGB_GRAPH_DOT_EXPORT_H
