#ifndef NGB_GRAPH_PARAM_STORE_H
#define NGB_GRAPH_PARAM_STORE_H

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <utility>

#include "graph/graph.h"
#include "tensor/tensor.h"

namespace ngb {

/**
 * Deterministic synthetic parameters for a graph's operators.
 *
 * Weight values never affect the paper's metric (latency share), but
 * concrete execution needs sane parameters: normalization scales are
 * ones, shifts/means are zeros, variances are ones, and projection
 * weights are seeded Gaussians so results are reproducible.
 *
 * get() is guarded by a mutex so concurrent node evaluation is safe;
 * the parallel runtime additionally calls materialize() up front so
 * hot-path lookups are contention-free cache hits.
 */
class ParamStore
{
  public:
    explicit ParamStore(uint64_t seed = 0x5eed) : seed_(seed) {}

    /** Materialize (and cache) parameter @p index of node @p n. */
    const Tensor &get(const Node &n, size_t index);

    /** Pre-fill the cache with every parameter of every node in @p g. */
    void materialize(const Graph &g);

    /**
     * Memoized derived tensor for (@p n, @p slot): @p build runs once
     * (under the store mutex), later calls return the cached result.
     * Backends use this to amortize per-node preprocessing of
     * immutable parameters — e.g. the optimized backend's packed
     * weight transpose — across every request of a long-lived engine.
     * @p build must be deterministic: concurrent executors share the
     * cache, so whoever builds first defines the value for everyone.
     */
    const Tensor &derived(const Node &n, size_t slot,
                          const std::function<Tensor()> &build);

  private:
    uint64_t seed_;
    std::mutex mutex_;
    std::map<std::pair<int, size_t>, Tensor> cache_;
    std::map<std::pair<int, size_t>, Tensor> derived_;
};

}  // namespace ngb

#endif  // NGB_GRAPH_PARAM_STORE_H
