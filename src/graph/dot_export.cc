#include "graph/dot_export.h"

#include <map>

namespace ngb {

namespace {

const char *
dotColor(OpCategory c)
{
    switch (c) {
      case OpCategory::Gemm: return "#aec7e8";
      case OpCategory::Activation: return "#ffbb78";
      case OpCategory::Normalization: return "#98df8a";
      case OpCategory::Memory: return "#ff9896";
      case OpCategory::ElementWise: return "#c5b0d5";
      case OpCategory::LogitCompute: return "#c49c94";
      case OpCategory::RoiSelection: return "#f7b6d2";
      case OpCategory::Interpolation: return "#c7c7c7";
      case OpCategory::Embedding: return "#dbdb8d";
      case OpCategory::QDQ: return "#9edae5";
      case OpCategory::Misc: return "#ededed";
    }
    return "#ffffff";
}

std::string
escapeLabel(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"')
            out += '\\';
        out += c;
    }
    return out;
}

}  // namespace

void
writeDot(const Graph &g, const DotOptions &opts, std::ostream &os)
{
    os << "digraph \"" << escapeLabel(g.name()) << "\" {\n";
    os << "  rankdir=TB;\n  node [shape=box, style=filled, "
          "fontname=\"sans-serif\", fontsize=10];\n";

    size_t emitted = 0;
    std::vector<bool> shown(g.size(), false);
    for (const Node &n : g.nodes()) {
        if (emitted >= opts.maxNodes)
            break;
        if (opts.hideZeroCopy && n.cost.zeroCopy && !n.inputs.empty())
            continue;
        shown[static_cast<size_t>(n.id)] = true;
        ++emitted;
        std::string label = n.inputs.empty()
                                ? (n.paramShapes.empty() ? "input"
                                                         : "weight")
                                : opKindName(n.kind);
        os << "  n" << n.id << " [label=\"" << escapeLabel(label);
        if (!n.name.empty() && n.name != label)
            os << "\\n" << escapeLabel(n.name);
        os << "\", fillcolor=\"" << dotColor(n.category()) << "\"];\n";
    }

    // Edges, skipping through hidden zero-copy chains.
    auto resolve = [&](Value v) {
        while (v.valid() && !shown[static_cast<size_t>(v.node)]) {
            const Node &src = g.node(v.node);
            if (src.inputs.empty())
                return Value{-1, 0};
            v = src.inputs[0];
        }
        return v;
    };
    for (const Node &n : g.nodes()) {
        if (!shown[static_cast<size_t>(n.id)])
            continue;
        for (const Value &raw : n.inputs) {
            Value v = resolve(raw);
            if (!v.valid())
                continue;
            os << "  n" << v.node << " -> n" << n.id;
            if (opts.shapesOnEdges)
                os << " [label=\""
                   << escapeLabel(g.shapeOf(raw).str()) << "\", "
                   << "fontsize=8]";
            os << ";\n";
        }
    }
    os << "}\n";
}

}  // namespace ngb
