#ifndef NGB_GRAPH_BUILDER_H
#define NGB_GRAPH_BUILDER_H

#include <string>
#include <utility>
#include <vector>

#include "graph/graph.h"

namespace ngb {

/**
 * Ergonomic construction of operator graphs with inline shape
 * inference. Each method appends one node, computes its output
 * shape(s) and resource cost, and returns a Value handle.
 *
 * The model zoo (src/models) is written entirely against this API.
 */
class GraphBuilder
{
  public:
    explicit GraphBuilder(Graph &g) : g_(g) {}

    /** Declare a graph input of the given shape/dtype. */
    Value input(const Shape &shape, DType dtype = DType::F32,
                const std::string &name = "input");

    /** Mark a value as a graph output. */
    void output(Value v) { g_.markOutput(v); }

    /**
     * A learned constant tensor (position embeddings, class tokens,
     * anchor tables). Costs nothing at run time — it lives in device
     * memory like any other parameter — and is materialized from the
     * ParamStore during concrete execution.
     */
    Value weight(const Shape &shape, const std::string &name = "weight");

    /**
     * Like weight(), but for a runtime-derived constant (anchor grids,
     * RoI lists, routing indices) that is not a learned parameter and
     * is excluded from the model's parameter count.
     */
    Value buffer(const Shape &shape, const std::string &name = "buffer");

    // ----- GEMM operators -----------------------------------------------

    /** nn.Linear: x[..,K] -> [..,out_features]. */
    Value linear(Value x, int64_t out_features, bool bias = true,
                 const std::string &name = "linear");
    /** Quantized linear (int8 weights/activations, fp32 out). */
    Value int8Linear(Value x, int64_t out_features, bool bias = true,
                     const std::string &name = "int8_linear");
    Value conv2d(Value x, int64_t out_channels, int kernel, int stride,
                 int padding, int groups = 1, bool bias = true,
                 const std::string &name = "conv2d");
    Value bmm(Value a, Value b, const std::string &name = "bmm");
    Value matmul(Value a, Value b, const std::string &name = "matmul");

    // ----- Activations ----------------------------------------------------

    Value relu(Value x);
    Value gelu(Value x);
    Value silu(Value x);
    Value sigmoid(Value x);
    Value tanh(Value x);
    Value erf(Value x);
    Value exp(Value x);
    Value log(Value x);

    // ----- Normalization ---------------------------------------------------

    Value layerNorm(Value x, double eps = 1e-5);
    Value batchNorm2d(Value x, bool frozen = false, double eps = 1e-5);
    Value rmsNorm(Value x, double eps = 1e-6);
    Value groupNorm(Value x, int groups, double eps = 1e-5);

    // ----- Element-wise -----------------------------------------------------

    Value add(Value a, Value b);
    Value sub(Value a, Value b);
    Value mul(Value a, Value b);
    Value div(Value a, Value b);
    Value neg(Value x);
    Value sqrt(Value x);
    Value powScalar(Value x, double e);
    Value addScalar(Value x, double s);
    Value mulScalar(Value x, double s);
    Value where(Value cond, Value a, Value b);

    // ----- Logit ------------------------------------------------------------

    Value softmax(Value x, int dim = -1);
    Value logSoftmax(Value x, int dim = -1);

    // ----- Memory operators --------------------------------------------------

    Value reshape(Value x, const Shape &shape);
    Value view(Value x, const Shape &shape);
    Value permute(Value x, const std::vector<int64_t> &order);
    Value transpose(Value x, int d0, int d1);
    Value contiguous(Value x);
    std::vector<Value> split(Value x, int64_t size, int dim);
    Value concat(const std::vector<Value> &xs, int dim);
    Value slice(Value x, int dim, int64_t start, int64_t len);
    Value expand(Value x, const Shape &shape);
    Value squeeze(Value x, int dim);
    Value unsqueeze(Value x, int dim);
    Value roll(Value x, int64_t shift, int dim);
    /** Zero-pad @p dim (F.pad); a real copy kernel. */
    Value pad(Value x, int dim, int64_t before, int64_t after);

    // ----- RoI / interpolation / pooling -------------------------------------

    /**
     * NMS over @p boxes [N,4] with @p scores [N]. Graph-level shape
     * inference is static, so @p expected_keep fixes the output size
     * (dynamic behaviour is a defining non-GEMM property, Section II).
     */
    Value nms(Value boxes, Value scores, double iou_threshold,
              double score_threshold, int64_t expected_keep);
    Value roiAlign(Value feat, Value rois, int out_h, int out_w);
    Value interpolate(Value x, int out_h, int out_w);
    Value maxPool2d(Value x, int kernel, int stride, int padding);
    Value avgPool2d(Value x, int kernel, int stride, int padding);
    Value adaptiveAvgPool2d(Value x, int out_h, int out_w);

    // ----- Embedding / indexing / quant ----------------------------------------

    /** Token-id input of the given shape (I32). */
    Value tokenInput(const Shape &shape,
                     const std::string &name = "token_ids");
    Value embedding(Value ids, int64_t vocab, int64_t dim,
                    const std::string &name = "embedding");
    std::pair<Value, Value> topk(Value x, int k);
    Value gather(Value x, int dim, Value index);
    Value cumsum(Value x, int dim);
    Value quantize(Value x);
    Value dequantize(Value x);

    Graph &graph() { return g_; }

  private:
    int add(Node n);
    Value unary(OpKind k, Value x, const std::string &name = "");
    Value binary(OpKind k, Value a, Value b);
    const Shape &shapeOf(Value v) const { return g_.shapeOf(v); }

    Graph &g_;
};

}  // namespace ngb

#endif  // NGB_GRAPH_BUILDER_H
