#ifndef NGB_GRAPH_VALIDATE_H
#define NGB_GRAPH_VALIDATE_H

#include <string>
#include <vector>

#include "graph/graph.h"

namespace ngb {

/**
 * Structural validation of a model graph, for users plugging custom
 * builders into the registry: catches dangling value references,
 * topological-order violations, shape/attribute inconsistencies, and
 * unreachable (dead) operators before they hit the executor.
 */
struct ValidationIssue {
    enum class Severity { Error, Warning };
    Severity severity;
    int node = -1;
    std::string message;
};

struct ValidationResult {
    std::vector<ValidationIssue> issues;

    bool ok() const
    {
        for (const ValidationIssue &i : issues)
            if (i.severity == ValidationIssue::Severity::Error)
                return false;
        return true;
    }
    size_t errorCount() const
    {
        size_t n = 0;
        for (const ValidationIssue &i : issues)
            n += i.severity == ValidationIssue::Severity::Error;
        return n;
    }
    size_t warningCount() const
    {
        return issues.size() - errorCount();
    }
};

/**
 * Validate @p g. Errors: out-of-range value references, inputs that
 * point forward (topology), output-index overflow, rank-0 operator
 * results where inputs exist, graph outputs referencing missing nodes.
 * Warnings: operators whose results are never consumed (dead code),
 * missing names.
 */
ValidationResult validateGraph(const Graph &g);

/** Render issues for logs / test failure messages. */
std::string formatIssues(const ValidationResult &r);

}  // namespace ngb

#endif  // NGB_GRAPH_VALIDATE_H
