#include "graph/validate.h"

#include <sstream>

namespace ngb {

ValidationResult
validateGraph(const Graph &g)
{
    ValidationResult r;
    auto error = [&](int node, const std::string &msg) {
        r.issues.push_back(
            {ValidationIssue::Severity::Error, node, msg});
    };
    auto warn = [&](int node, const std::string &msg) {
        r.issues.push_back(
            {ValidationIssue::Severity::Warning, node, msg});
    };

    int n_nodes = static_cast<int>(g.size());
    std::vector<int> uses(g.size(), 0);

    for (const Node &n : g.nodes()) {
        if (n.outShapes.size() != n.outDtypes.size())
            error(n.id, "output shape/dtype arity mismatch");
        if (n.outShapes.empty())
            error(n.id, "operator produces no outputs");
        for (const Value &v : n.inputs) {
            if (v.node < 0 || v.node >= n_nodes) {
                error(n.id, "input references unknown node " +
                                std::to_string(v.node));
                continue;
            }
            if (v.node >= n.id)
                error(n.id, "input references a later node " +
                                std::to_string(v.node) +
                                " (topology violated)");
            const Node &src = g.node(v.node);
            if (v.index < 0 ||
                v.index >= static_cast<int>(src.outShapes.size()))
                error(n.id, "input output-index " +
                                std::to_string(v.index) +
                                " out of range for node " +
                                std::to_string(v.node));
            else
                ++uses[static_cast<size_t>(v.node)];
        }
        if (n.name.empty())
            warn(n.id, "operator has no name");

        // Executable Fused nodes (applyFusion): the folded chain must
        // be self-consistent or the fused kernels cannot interpret it.
        if (n.kind == OpKind::Fused) {
            if (n.fusedBody.empty()) {
                error(n.id, "Fused node has an empty fusedBody");
                continue;
            }
            if (n.fusedKinds.size() != n.fusedBody.size())
                error(n.id, "Fused node fusedKinds/fusedBody size "
                            "mismatch");
            for (size_t j = 0; j < n.fusedBody.size(); ++j) {
                const Node &m = n.fusedBody[j];
                if (j < n.fusedKinds.size() && n.fusedKinds[j] != m.kind)
                    error(n.id, "fused member " + std::to_string(j) +
                                    " kind disagrees with fusedKinds");
                if (m.outShapes.size() != 1)
                    error(n.id, "fused member '" + m.name +
                                    "' is not single-output");
                const auto &ext = m.attrs.getInts("__ext_ports");
                if (ext.size() != m.inputs.size()) {
                    error(n.id, "fused member '" + m.name +
                                    "' lacks a valid __ext_ports map");
                    continue;
                }
                int chain_ports = 0;
                for (int64_t e : ext) {
                    if (e < 0)
                        ++chain_ports;
                    else if (e >= static_cast<int64_t>(n.inputs.size()))
                        error(n.id,
                              "fused member '" + m.name +
                                  "' external port out of range");
                }
                if (j == 0 && chain_ports != 0)
                    error(n.id, "fused head member '" + m.name +
                                    "' consumes a predecessor output");
                if (j > 0 && chain_ports != 1)
                    error(n.id,
                          "fused member '" + m.name +
                              "' must consume its predecessor exactly "
                              "once");
            }
            const Node &tail = n.fusedBody.back();
            if (tail.outShapes.size() == 1 &&
                !(n.outShapes.size() == 1 &&
                  n.outShapes[0] == tail.outShapes[0]))
                error(n.id, "Fused node output shape disagrees with "
                            "its tail member");
        } else if (!n.fusedBody.empty()) {
            warn(n.id, "non-Fused operator carries a fusedBody");
        }
    }

    for (const Value &v : g.graphOutputs()) {
        if (v.node < 0 || v.node >= n_nodes)
            error(-1, "graph output references unknown node " +
                          std::to_string(v.node));
        else
            ++uses[static_cast<size_t>(v.node)];
    }
    if (g.graphOutputs().empty())
        warn(-1, "graph declares no outputs");

    for (const Node &n : g.nodes()) {
        if (n.inputs.empty())
            continue;  // inputs/weights may legitimately be unused
        if (uses[static_cast<size_t>(n.id)] == 0)
            warn(n.id, "result of '" + n.name + "' is never consumed");
    }
    return r;
}

std::string
formatIssues(const ValidationResult &r)
{
    std::ostringstream os;
    for (const ValidationIssue &i : r.issues) {
        os << (i.severity == ValidationIssue::Severity::Error ? "error"
                                                              : "warn")
           << " [node " << i.node << "] " << i.message << "\n";
    }
    return os.str();
}

}  // namespace ngb
