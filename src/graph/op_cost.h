#ifndef NGB_GRAPH_OP_COST_H
#define NGB_GRAPH_OP_COST_H

#include "graph/graph.h"
#include "graph/node.h"

namespace ngb {

/**
 * Derive the device-independent resource demand (FLOPs, activation and
 * parameter byte traffic, zero-copy flag) of @p n from its input
 * shapes in @p g, its output shapes, and its attributes.
 *
 * Element-wise FLOP weights follow the rough per-element instruction
 * cost of each function (e.g. GELU via erf is ~10 flops/element while
 * ReLU is 1); these relative weights, together with byte traffic,
 * drive the roofline cost model.
 */
OpCost computeOpCost(const Node &n, const Graph &g);

}  // namespace ngb

#endif  // NGB_GRAPH_OP_COST_H
