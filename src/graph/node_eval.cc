#include "graph/node_eval.h"

#include <stdexcept>

#include "ops/kernels.h"

namespace ngb {

namespace kn = kernels;

const Tensor &
ParamStore::get(const Node &n, size_t index)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto key = std::make_pair(n.id, index);
    auto it = cache_.find(key);
    if (it != cache_.end())
        return it->second;

    const Shape &shape = n.paramShapes[index];
    Tensor t;
    bool is_norm = opCategoryOf(n.kind) == OpCategory::Normalization;
    if (is_norm) {
        // gamma=1, beta=0, running_mean=0, running_var=1.
        float v = (index == 0 || index == 3) ? 1.0f : 0.0f;
        t = Tensor::full(shape, v);
    } else if (n.paramShapes.size() > 1 && index == n.paramShapes.size() - 1
               && shape.rank() == 1) {
        // Bias vectors start at zero.
        t = Tensor::zeros(shape);
    } else {
        uint64_t s = seed_ + static_cast<uint64_t>(n.id) * 1315423911ull +
                     index * 2654435761ull;
        t = Tensor::randn(shape, s, 0.05f);
        if (n.paramDtype != DType::F32)
            t = t.to(n.paramDtype);
    }
    return cache_.emplace(key, std::move(t)).first->second;
}

void
ParamStore::materialize(const Graph &g)
{
    for (const Node &n : g.nodes())
        for (size_t i = 0; i < n.paramShapes.size(); ++i)
            get(n, i);
}

std::vector<Tensor>
evalNode(const Node &n,
         const std::function<const Tensor &(const Value &)> &input,
         ParamStore &params)
{
    auto in = [&](size_t i) -> const Tensor & { return input(n.inputs[i]); };
    auto param = [&](size_t i) -> const Tensor & {
        return params.get(n, i);
    };
    auto optBias = [&]() -> Tensor {
        return n.paramShapes.size() > 1 ? param(n.paramShapes.size() - 1)
                                        : Tensor();
    };
    auto one = [](Tensor t) {
        std::vector<Tensor> out;
        out.push_back(std::move(t));
        return out;
    };

    switch (n.kind) {
      case OpKind::Linear:
        return one(kn::linear(in(0), param(0), optBias()));
      case OpKind::Int8Linear: {
        // Dynamic activation quantization, absmax weight scale.
        float xs = kn::absmaxScale(in(0));
        Tensor wq = param(0);
        float ws = 1.0f;
        if (wq.dtype() != DType::I8) {
            ws = kn::absmaxScale(wq);
            wq = kn::quantize(wq, ws);
        } else {
            ws = 0.05f / 127.0f * 3.0f;  // matches ParamStore I8 rounding
        }
        Tensor xq = kn::quantize(in(0), xs);
        return one(kn::int8Linear(xq, wq, optBias(), xs, ws));
      }
      case OpKind::Conv2d:
        return one(kn::conv2d(in(0), param(0), optBias(),
                              static_cast<int>(n.attrs.getI("stride")),
                              static_cast<int>(n.attrs.getI("padding")),
                              static_cast<int>(n.attrs.getI("groups", 1))));
      case OpKind::BMM:
        return one(kn::bmm(in(0), in(1)));
      case OpKind::MatMul:
        return one(kn::matmul(in(0), in(1)));

      case OpKind::ReLU:
        return one(kn::relu(in(0)));
      case OpKind::GELU:
        return one(kn::gelu(in(0)));
      case OpKind::SiLU:
        return one(kn::silu(in(0)));
      case OpKind::Sigmoid:
        return one(kn::sigmoid(in(0)));
      case OpKind::Tanh:
        return one(kn::tanhOp(in(0)));
      case OpKind::Erf:
        return one(kn::erfOp(in(0)));
      case OpKind::Exp:
        return one(kn::expOp(in(0)));
      case OpKind::Log:
        return one(kn::logOp(in(0)));

      case OpKind::LayerNorm:
        return one(kn::layerNorm(
            in(0), param(0), param(1),
            static_cast<float>(n.attrs.getF("eps", 1e-5))));
      case OpKind::BatchNorm2d:
      case OpKind::FrozenBatchNorm2d:
        return one(kn::batchNorm2d(
            in(0), param(0), param(1), param(2), param(3),
            static_cast<float>(n.attrs.getF("eps", 1e-5))));
      case OpKind::RMSNorm:
        return one(kn::rmsNorm(
            in(0), param(0),
            static_cast<float>(n.attrs.getF("eps", 1e-6))));
      case OpKind::GroupNorm:
        return one(kn::groupNorm(
            in(0), param(0), param(1),
            static_cast<int>(n.attrs.getI("groups", 1)),
            static_cast<float>(n.attrs.getF("eps", 1e-5))));

      case OpKind::Add:
        if (n.inputs.size() == 1)
            return one(kn::addScalar(
                in(0), static_cast<float>(n.attrs.getF("scalar"))));
        return one(kn::add(in(0), in(1)));
      case OpKind::Sub:
        return one(kn::sub(in(0), in(1)));
      case OpKind::Mul:
        if (n.inputs.size() == 1)
            return one(kn::mulScalar(
                in(0), static_cast<float>(n.attrs.getF("scalar"))));
        return one(kn::mul(in(0), in(1)));
      case OpKind::Div:
        return one(kn::div(in(0), in(1)));
      case OpKind::Neg:
        return one(kn::neg(in(0)));
      case OpKind::Sqrt:
        return one(kn::sqrtOp(in(0)));
      case OpKind::Pow:
        return one(kn::powScalar(
            in(0), static_cast<float>(n.attrs.getF("exponent", 2.0))));
      case OpKind::Where:
        return one(kn::where(in(0), in(1), in(2)));

      case OpKind::Softmax:
        return one(kn::softmax(in(0),
                               static_cast<int>(n.attrs.getI("dim"))));
      case OpKind::LogSoftmax:
        return one(kn::logSoftmax(in(0),
                                  static_cast<int>(n.attrs.getI("dim"))));

      case OpKind::Reshape:
        return one(in(0).reshape(n.outShapes[0]));
      case OpKind::View:
        return one(in(0).contiguous().view(n.outShapes[0]));
      case OpKind::Permute: {
        const auto &ord = n.attrs.getInts("order");
        std::vector<int> o(ord.begin(), ord.end());
        return one(in(0).permute(o));
      }
      case OpKind::Transpose:
        return one(in(0).transpose(static_cast<int>(n.attrs.getI("d0")),
                                   static_cast<int>(n.attrs.getI("d1"))));
      case OpKind::Contiguous:
        return one(in(0).contiguous());
      case OpKind::Slice:
        return one(in(0).slice(static_cast<int>(n.attrs.getI("dim")),
                               n.attrs.getI("start"),
                               n.outShapes[0][static_cast<size_t>(
                                   n.attrs.getI("dim"))]));
      case OpKind::Expand:
        return one(in(0).expand(n.outShapes[0]));
      case OpKind::Squeeze:
        return one(in(0).squeeze(static_cast<int>(n.attrs.getI("dim"))));
      case OpKind::Unsqueeze:
        return one(in(0).unsqueeze(static_cast<int>(n.attrs.getI("dim"))));
      case OpKind::Roll:
        return one(kn::roll(in(0), n.attrs.getI("shift"),
                            static_cast<int>(n.attrs.getI("dim"))));
      case OpKind::Pad:
        return one(kn::pad(in(0), static_cast<int>(n.attrs.getI("dim")),
                           n.attrs.getI("before"), n.attrs.getI("after")));
      case OpKind::Concat: {
        std::vector<Tensor> xs;
        for (size_t i = 0; i < n.inputs.size(); ++i)
            xs.push_back(in(i));
        return one(kn::concat(xs, static_cast<int>(n.attrs.getI("dim"))));
      }

      case OpKind::NMS: {
        Tensor kept = kn::nms(
            in(0), in(1),
            static_cast<float>(n.attrs.getF("iou_threshold", 0.5)),
            static_cast<float>(n.attrs.getF("score_threshold", 0.0)));
        // Pad / trim to the static expected_keep size.
        int64_t want = n.outShapes[0][0];
        Tensor out(Shape{want}, DType::I32);
        int32_t *po = out.dataI32();
        const int32_t *pk = kept.dataI32();
        for (int64_t i = 0; i < want; ++i)
            po[i] = i < kept.numel() ? pk[i] : 0;
        return one(std::move(out));
      }
      case OpKind::RoIAlign:
        return one(kn::roiAlign(in(0), in(1),
                                static_cast<int>(n.attrs.getI("out_h")),
                                static_cast<int>(n.attrs.getI("out_w"))));
      case OpKind::Interpolate:
        return one(kn::interpolateBilinear(
            in(0), static_cast<int>(n.attrs.getI("out_h")),
            static_cast<int>(n.attrs.getI("out_w"))));

      case OpKind::MaxPool2d:
        return one(kn::maxPool2d(
            in(0), static_cast<int>(n.attrs.getI("kernel")),
            static_cast<int>(n.attrs.getI("stride")),
            static_cast<int>(n.attrs.getI("padding"))));
      case OpKind::AvgPool2d:
        return one(kn::avgPool2d(
            in(0), static_cast<int>(n.attrs.getI("kernel")),
            static_cast<int>(n.attrs.getI("stride")),
            static_cast<int>(n.attrs.getI("padding"))));
      case OpKind::AdaptiveAvgPool2d:
        return one(kn::adaptiveAvgPool2d(
            in(0), static_cast<int>(n.attrs.getI("out_h")),
            static_cast<int>(n.attrs.getI("out_w"))));

      case OpKind::Embedding:
        return one(kn::embedding(in(0), param(0)));
      case OpKind::Gather:
        return one(kn::gather(in(0),
                              static_cast<int>(n.attrs.getI("dim")),
                              in(1)));
      case OpKind::CumSum:
        return one(kn::cumsum(in(0),
                              static_cast<int>(n.attrs.getI("dim"))));

      case OpKind::Quantize:
        return one(kn::quantize(in(0), kn::absmaxScale(in(0))));
      case OpKind::Dequantize:
        // Symmetric round-trip: reuse the producing scale when known.
        return one(kn::dequantize(in(0), 1.0f));

      case OpKind::Split:
      case OpKind::TopK:
      case OpKind::Fused:
        break;  // handled below / unsupported
    }

    if (n.kind == OpKind::Split) {
        auto parts = kn::split(in(0), n.attrs.getI("size", 1),
                               static_cast<int>(n.attrs.getI("dim")));
        std::vector<Tensor> out;
        for (Tensor &p : parts)
            out.push_back(p.contiguous());
        return out;
    }
    if (n.kind == OpKind::TopK) {
        auto [vals, idx] = kn::topk(in(0),
                                    static_cast<int>(n.attrs.getI("k")));
        std::vector<Tensor> out;
        out.push_back(std::move(vals));
        out.push_back(std::move(idx));
        return out;
    }
    throw std::runtime_error("evalNode: unsupported op " +
                             opKindName(n.kind));
}

}  // namespace ngb
