#ifndef NGB_GRAPH_ATTRS_H
#define NGB_GRAPH_ATTRS_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ngb {

/**
 * A small open-ended attribute bag for graph nodes (stride, padding,
 * axis, eps, thresholds, ...). Attributes are written once by the
 * GraphBuilder and read by the executor and the cost model.
 */
class Attrs
{
  public:
    Attrs &set(const std::string &key, double v)
    {
        scalars_[key] = v;
        return *this;
    }

    Attrs &setInts(const std::string &key, std::vector<int64_t> v)
    {
        int_lists_[key] = std::move(v);
        return *this;
    }

    /** Fetch a scalar attribute, or @p def when absent. */
    double getF(const std::string &key, double def = 0.0) const
    {
        auto it = scalars_.find(key);
        return it == scalars_.end() ? def : it->second;
    }

    /** Fetch a scalar attribute as int64, or @p def when absent. */
    int64_t getI(const std::string &key, int64_t def = 0) const
    {
        auto it = scalars_.find(key);
        return it == scalars_.end() ? def
                                    : static_cast<int64_t>(it->second);
    }

    /** Fetch an integer-list attribute; empty when absent. */
    const std::vector<int64_t> &getInts(const std::string &key) const
    {
        static const std::vector<int64_t> kEmpty;
        auto it = int_lists_.find(key);
        return it == int_lists_.end() ? kEmpty : it->second;
    }

    bool has(const std::string &key) const
    {
        return scalars_.count(key) || int_lists_.count(key);
    }

  private:
    std::map<std::string, double> scalars_;
    std::map<std::string, std::vector<int64_t>> int_lists_;
};

}  // namespace ngb

#endif  // NGB_GRAPH_ATTRS_H
