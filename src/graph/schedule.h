#ifndef NGB_GRAPH_SCHEDULE_H
#define NGB_GRAPH_SCHEDULE_H

#include <cstddef>
#include <vector>

#include "graph/graph.h"

namespace ngb {

/** Shape of a schedule, for reports and the batch driver. */
struct ScheduleStats {
    size_t numLevels = 0;
    size_t maxWidth = 0;     ///< widest dependency level
    double avgWidth = 0;     ///< nodes / levels
};

/**
 * An execution order for a graph, partitioned into dependency levels.
 *
 * A level (wavefront) is a set of nodes whose inputs were all produced
 * by earlier levels, so every node within one level can run
 * concurrently. Two canonical schedules exist:
 *
 *  - serial():    one node per level in construction (topological)
 *                 order — the reference backend, equivalent to the
 *                 original single-threaded Executor loop.
 *  - wavefront(): ASAP levels (level = 1 + max over producer levels),
 *                 the schedule the parallel runtime dispatches from.
 *
 * The schedule is a pure function of graph structure; both the serial
 * Executor and the parallel runtime consume it, so swapping backends
 * can never change which nodes run, only when.
 */
class Schedule
{
  public:
    enum class Kind { Serial, Wavefront };

    /** One node per level, in topological order. */
    static Schedule serial(const Graph &g);

    /** ASAP dependency levels. */
    static Schedule wavefront(const Graph &g);

    Kind kind() const { return kind_; }
    const std::vector<std::vector<int>> &levels() const { return levels_; }

    /** All node ids, flattened in level order. */
    const std::vector<int> &order() const { return order_; }

    /** Level index of node @p id. */
    int levelOf(int id) const { return levelOf_[static_cast<size_t>(id)]; }

    size_t numLevels() const { return levels_.size(); }

    ScheduleStats stats() const;

  private:
    Kind kind_ = Kind::Serial;
    std::vector<std::vector<int>> levels_;
    std::vector<int> order_;
    std::vector<int> levelOf_;
};

}  // namespace ngb

#endif  // NGB_GRAPH_SCHEDULE_H
