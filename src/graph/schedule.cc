#include "graph/schedule.h"

#include <algorithm>

namespace ngb {

Schedule
Schedule::serial(const Graph &g)
{
    Schedule s;
    s.kind_ = Kind::Serial;
    s.levelOf_.resize(g.size(), 0);
    s.levels_.reserve(g.size());
    for (const Node &n : g.nodes()) {
        s.levelOf_[static_cast<size_t>(n.id)] =
            static_cast<int>(s.levels_.size());
        s.levels_.push_back({n.id});
        s.order_.push_back(n.id);
    }
    return s;
}

Schedule
Schedule::wavefront(const Graph &g)
{
    Schedule s;
    s.kind_ = Kind::Wavefront;
    s.levelOf_.resize(g.size(), 0);
    // Nodes are stored topologically (inputs have smaller ids), so a
    // single forward pass computes ASAP levels.
    int max_level = -1;
    for (const Node &n : g.nodes()) {
        int lvl = 0;
        for (const Value &v : n.inputs)
            lvl = std::max(lvl, s.levelOf_[static_cast<size_t>(v.node)] + 1);
        s.levelOf_[static_cast<size_t>(n.id)] = lvl;
        max_level = std::max(max_level, lvl);
    }
    s.levels_.resize(static_cast<size_t>(max_level + 1));
    for (const Node &n : g.nodes())
        s.levels_[static_cast<size_t>(
            s.levelOf_[static_cast<size_t>(n.id)])].push_back(n.id);
    for (const auto &lvl : s.levels_)
        for (int id : lvl)
            s.order_.push_back(id);
    return s;
}

ScheduleStats
Schedule::stats() const
{
    ScheduleStats st;
    st.numLevels = levels_.size();
    for (const auto &lvl : levels_)
        st.maxWidth = std::max(st.maxWidth, lvl.size());
    st.avgWidth = levels_.empty()
                      ? 0
                      : static_cast<double>(order_.size()) /
                            static_cast<double>(levels_.size());
    return st;
}

}  // namespace ngb
