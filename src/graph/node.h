#ifndef NGB_GRAPH_NODE_H
#define NGB_GRAPH_NODE_H

#include <string>
#include <vector>

#include "graph/attrs.h"
#include "ops/op_types.h"
#include "tensor/dtype.h"
#include "tensor/shape.h"

namespace ngb {

/** A reference to one output of a node. */
struct Value {
    int node = -1;
    int index = 0;

    bool valid() const { return node >= 0; }
    bool operator==(const Value &o) const
    {
        return node == o.node && index == o.index;
    }
};

/**
 * Resource demand of one operator instance, in device-independent
 * units. Filled in at graph-construction time from the operator's
 * shapes and attributes; the platform cost model turns these into
 * seconds for a particular device.
 */
struct OpCost {
    double flops = 0;        ///< arithmetic operations
    double bytesIn = 0;      ///< activation bytes read
    double bytesOut = 0;     ///< activation bytes written
    double bytesParam = 0;   ///< parameter bytes read
    bool zeroCopy = false;   ///< metadata-only layout change, no kernel

    double totalBytes() const { return bytesIn + bytesOut + bytesParam; }
};

/**
 * One operator instance in a model graph.
 */
struct Node {
    int id = -1;
    OpKind kind = OpKind::Add;
    std::string name;

    std::vector<Value> inputs;
    std::vector<Shape> outShapes;
    std::vector<DType> outDtypes;

    /** Shapes of this operator's learned parameters, if any. */
    std::vector<Shape> paramShapes;
    DType paramDtype = DType::F32;

    Attrs attrs;
    OpCost cost;

    /**
     * For Fused nodes: the operator kinds folded into this kernel and
     * the category the resulting latency is attributed to (a fused
     * group containing a GEMM op is attributed to GEMM; a pure
     * non-GEMM chain is attributed to its dominant member).
     */
    std::vector<OpKind> fusedKinds;
    OpCategory attributedCategory = OpCategory::Misc;

    /**
     * For executable Fused nodes (applyFusion): the folded member
     * operators, in chain order, each a full Node copy carrying its
     * original kind/attrs/paramShapes so a backend's fused kernel can
     * interpret (or pre-merge) the chain. Members keep their original
     * graph id in the "seed_id" attr (deterministic parameters) and
     * get a synthetic unique id for ParamStore cache keying; their
     * "__ext_ports" attr maps each input port to the fused node's
     * external inputs (-1 = fed by the previous member's output).
     */
    std::vector<Node> fusedBody;

    /** Attribution group for latency accounting. */
    OpCategory category() const
    {
        return kind == OpKind::Fused ? attributedCategory
                                     : opCategoryOf(kind);
    }

    bool isGemm() const { return category() == OpCategory::Gemm; }

    int64_t paramCount() const
    {
        int64_t n = 0;
        for (const Shape &s : paramShapes)
            n += s.numel();
        for (const Node &m : fusedBody)
            n += m.paramCount();
        return n;
    }
};

}  // namespace ngb

#endif  // NGB_GRAPH_NODE_H
