#include "graph/builder.h"

#include <algorithm>
#include <stdexcept>

#include "graph/op_cost.h"

namespace ngb {

namespace {

Shape
broadcastShape(const Shape &a, const Shape &b)
{
    size_t r = std::max(a.rank(), b.rank());
    std::vector<int64_t> out(r);
    for (size_t i = 0; i < r; ++i) {
        int64_t da = i < r - a.rank() ? 1 : a[i - (r - a.rank())];
        int64_t db = i < r - b.rank() ? 1 : b[i - (r - b.rank())];
        if (da != db && da != 1 && db != 1)
            throw std::runtime_error("builder: broadcast mismatch " +
                                     a.str() + " vs " + b.str());
        out[i] = std::max(da, db);
    }
    return Shape(out);
}

int
normDim(const Shape &s, int dim)
{
    int r = static_cast<int>(s.rank());
    if (dim < 0)
        dim += r;
    if (dim < 0 || dim >= r)
        throw std::runtime_error("builder: dim out of range");
    return dim;
}

}  // namespace

int
GraphBuilder::add(Node n)
{
    if (n.name.empty())
        n.name = opKindName(n.kind);
    n.cost = computeOpCost(n, g_);
    return g_.addNode(std::move(n));
}

Value
GraphBuilder::input(const Shape &shape, DType dtype, const std::string &name)
{
    Node n;
    n.kind = OpKind::View;  // placeholder kind; inputs cost nothing
    n.name = name;
    n.outShapes = {shape};
    n.outDtypes = {dtype};
    n.cost.zeroCopy = true;
    int id = g_.addNode(std::move(n));
    Value v{id, 0};
    g_.markInput(v);
    return v;
}

Value
GraphBuilder::tokenInput(const Shape &shape, const std::string &name)
{
    return input(shape, DType::I32, name);
}

Value
GraphBuilder::weight(const Shape &shape, const std::string &name)
{
    Node n;
    n.kind = OpKind::View;
    n.name = name;
    n.outShapes = {shape};
    n.outDtypes = {DType::F32};
    n.paramShapes = {shape};
    n.cost.zeroCopy = true;
    int id = g_.addNode(std::move(n));
    return {id, 0};
}

Value
GraphBuilder::buffer(const Shape &shape, const std::string &name)
{
    Value v = weight(shape, name);
    g_.node(v.node).attrs.set("buffer", 1);
    return v;
}

Value
GraphBuilder::unary(OpKind k, Value x, const std::string &name)
{
    Node n;
    n.kind = k;
    n.name = name;
    n.inputs = {x};
    n.outShapes = {shapeOf(x)};
    n.outDtypes = {DType::F32};
    return {add(std::move(n)), 0};
}

Value
GraphBuilder::binary(OpKind k, Value a, Value b)
{
    Node n;
    n.kind = k;
    n.inputs = {a, b};
    n.outShapes = {broadcastShape(shapeOf(a), shapeOf(b))};
    n.outDtypes = {DType::F32};
    return {add(std::move(n)), 0};
}

Value
GraphBuilder::linear(Value x, int64_t out_features, bool bias,
                     const std::string &name)
{
    const Shape &xs = shapeOf(x);
    int64_t k = xs.dim(-1);
    Node n;
    n.kind = OpKind::Linear;
    n.name = name;
    n.inputs = {x};
    std::vector<int64_t> dims = xs.dims();
    dims.back() = out_features;
    n.outShapes = {Shape(dims)};
    n.outDtypes = {DType::F32};
    n.paramShapes = {Shape{out_features, k}};
    if (bias)
        n.paramShapes.push_back(Shape{out_features});
    return {add(std::move(n)), 0};
}

Value
GraphBuilder::int8Linear(Value x, int64_t out_features, bool bias,
                         const std::string &name)
{
    const Shape &xs = shapeOf(x);
    int64_t k = xs.dim(-1);
    Node n;
    n.kind = OpKind::Int8Linear;
    n.name = name;
    n.inputs = {x};
    std::vector<int64_t> dims = xs.dims();
    dims.back() = out_features;
    n.outShapes = {Shape(dims)};
    n.outDtypes = {DType::F32};
    n.paramShapes = {Shape{out_features, k}};
    n.paramDtype = DType::I8;
    if (bias)
        n.paramShapes.push_back(Shape{out_features});
    return {add(std::move(n)), 0};
}

Value
GraphBuilder::conv2d(Value x, int64_t out_channels, int kernel, int stride,
                     int padding, int groups, bool bias,
                     const std::string &name)
{
    const Shape &xs = shapeOf(x);
    if (xs.rank() != 4)
        throw std::runtime_error("conv2d: NCHW input required");
    int64_t c = xs[1];
    int64_t oh = (xs[2] + 2 * padding - kernel) / stride + 1;
    int64_t ow = (xs[3] + 2 * padding - kernel) / stride + 1;
    Node n;
    n.kind = OpKind::Conv2d;
    n.name = name;
    n.inputs = {x};
    n.outShapes = {Shape{xs[0], out_channels, oh, ow}};
    n.outDtypes = {DType::F32};
    n.paramShapes = {Shape{out_channels, c / groups, kernel, kernel}};
    if (bias)
        n.paramShapes.push_back(Shape{out_channels});
    n.attrs.set("kernel", kernel)
        .set("stride", stride)
        .set("padding", padding)
        .set("groups", groups);
    return {add(std::move(n)), 0};
}

Value
GraphBuilder::bmm(Value a, Value b, const std::string &name)
{
    const Shape &as = shapeOf(a);
    const Shape &bs = shapeOf(b);
    if (as.rank() != 3 || bs.rank() != 3 || as[0] != bs[0] ||
        as[2] != bs[1])
        throw std::runtime_error("bmm: bad shapes " + as.str() + " x " +
                                 bs.str());
    Node n;
    n.kind = OpKind::BMM;
    n.name = name;
    n.inputs = {a, b};
    n.outShapes = {Shape{as[0], as[1], bs[2]}};
    n.outDtypes = {DType::F32};
    return {add(std::move(n)), 0};
}

Value
GraphBuilder::matmul(Value a, Value b, const std::string &name)
{
    const Shape &as = shapeOf(a);
    const Shape &bs = shapeOf(b);
    if (as.rank() != 2 || bs.rank() != 2 || as[1] != bs[0])
        throw std::runtime_error("matmul: bad shapes");
    Node n;
    n.kind = OpKind::MatMul;
    n.name = name;
    n.inputs = {a, b};
    n.outShapes = {Shape{as[0], bs[1]}};
    n.outDtypes = {DType::F32};
    return {add(std::move(n)), 0};
}

Value GraphBuilder::relu(Value x) { return unary(OpKind::ReLU, x); }
Value GraphBuilder::gelu(Value x) { return unary(OpKind::GELU, x); }
Value GraphBuilder::silu(Value x) { return unary(OpKind::SiLU, x); }
Value GraphBuilder::sigmoid(Value x) { return unary(OpKind::Sigmoid, x); }
Value GraphBuilder::tanh(Value x) { return unary(OpKind::Tanh, x); }
Value GraphBuilder::erf(Value x) { return unary(OpKind::Erf, x); }
Value GraphBuilder::exp(Value x) { return unary(OpKind::Exp, x); }
Value GraphBuilder::log(Value x) { return unary(OpKind::Log, x); }

Value
GraphBuilder::layerNorm(Value x, double eps)
{
    const Shape &xs = shapeOf(x);
    int64_t d = xs.dim(-1);
    Node n;
    n.kind = OpKind::LayerNorm;
    n.inputs = {x};
    n.outShapes = {xs};
    n.outDtypes = {DType::F32};
    n.paramShapes = {Shape{d}, Shape{d}};
    n.attrs.set("eps", eps).set("kernels", 2);
    return {add(std::move(n)), 0};
}

Value
GraphBuilder::batchNorm2d(Value x, bool frozen, double eps)
{
    const Shape &xs = shapeOf(x);
    if (xs.rank() != 4)
        throw std::runtime_error("batchNorm2d: NCHW input required");
    int64_t c = xs[1];
    Node n;
    n.kind = frozen ? OpKind::FrozenBatchNorm2d : OpKind::BatchNorm2d;
    n.inputs = {x};
    n.outShapes = {xs};
    n.outDtypes = {DType::F32};
    n.paramShapes = {Shape{c}, Shape{c}, Shape{c}, Shape{c}};
    n.attrs.set("eps", eps);
    return {add(std::move(n)), 0};
}

Value
GraphBuilder::rmsNorm(Value x, double eps)
{
    const Shape &xs = shapeOf(x);
    Node n;
    n.kind = OpKind::RMSNorm;
    n.inputs = {x};
    n.outShapes = {xs};
    n.outDtypes = {DType::F32};
    n.paramShapes = {Shape{xs.dim(-1)}};
    n.attrs.set("eps", eps);
    return {add(std::move(n)), 0};
}

Value
GraphBuilder::groupNorm(Value x, int groups, double eps)
{
    const Shape &xs = shapeOf(x);
    Node n;
    n.kind = OpKind::GroupNorm;
    n.inputs = {x};
    n.outShapes = {xs};
    n.outDtypes = {DType::F32};
    n.paramShapes = {Shape{xs[1]}, Shape{xs[1]}};
    n.attrs.set("eps", eps).set("groups", groups);
    return {add(std::move(n)), 0};
}

Value GraphBuilder::add(Value a, Value b) { return binary(OpKind::Add, a, b); }
Value GraphBuilder::sub(Value a, Value b) { return binary(OpKind::Sub, a, b); }
Value GraphBuilder::mul(Value a, Value b) { return binary(OpKind::Mul, a, b); }
Value GraphBuilder::div(Value a, Value b) { return binary(OpKind::Div, a, b); }
Value GraphBuilder::neg(Value x) { return unary(OpKind::Neg, x); }
Value GraphBuilder::sqrt(Value x) { return unary(OpKind::Sqrt, x); }

Value
GraphBuilder::powScalar(Value x, double e)
{
    Value v = unary(OpKind::Pow, x);
    g_.node(v.node).attrs.set("exponent", e);
    return v;
}

Value
GraphBuilder::addScalar(Value x, double s)
{
    Value v = unary(OpKind::Add, x);
    g_.node(v.node).attrs.set("scalar", s);
    return v;
}

Value
GraphBuilder::mulScalar(Value x, double s)
{
    Value v = unary(OpKind::Mul, x);
    g_.node(v.node).attrs.set("scalar", s);
    return v;
}

Value
GraphBuilder::where(Value cond, Value a, Value b)
{
    Node n;
    n.kind = OpKind::Where;
    n.inputs = {cond, a, b};
    n.outShapes = {broadcastShape(
        broadcastShape(shapeOf(cond), shapeOf(a)), shapeOf(b))};
    n.outDtypes = {DType::F32};
    return {add(std::move(n)), 0};
}

Value
GraphBuilder::softmax(Value x, int dim)
{
    Value v = unary(OpKind::Softmax, x);
    g_.node(v.node).attrs.set("dim", normDim(shapeOf(x), dim));
    return v;
}

Value
GraphBuilder::logSoftmax(Value x, int dim)
{
    Value v = unary(OpKind::LogSoftmax, x);
    g_.node(v.node).attrs.set("dim", normDim(shapeOf(x), dim));
    return v;
}

Value
GraphBuilder::reshape(Value x, const Shape &shape)
{
    if (shape.numel() != shapeOf(x).numel())
        throw std::runtime_error("reshape: numel mismatch " +
                                 shapeOf(x).str() + " -> " + shape.str());
    Node n;
    n.kind = OpKind::Reshape;
    n.inputs = {x};
    n.outShapes = {shape};
    n.outDtypes = {g_.dtypeOf(x)};
    return {add(std::move(n)), 0};
}

Value
GraphBuilder::view(Value x, const Shape &shape)
{
    if (shape.numel() != shapeOf(x).numel())
        throw std::runtime_error("view: numel mismatch");
    Node n;
    n.kind = OpKind::View;
    n.inputs = {x};
    n.outShapes = {shape};
    n.outDtypes = {g_.dtypeOf(x)};
    return {add(std::move(n)), 0};
}

Value
GraphBuilder::permute(Value x, const std::vector<int64_t> &order)
{
    const Shape &xs = shapeOf(x);
    if (order.size() != xs.rank())
        throw std::runtime_error("permute: order rank mismatch");
    std::vector<int64_t> dims(order.size());
    for (size_t i = 0; i < order.size(); ++i)
        dims[i] = xs[static_cast<size_t>(order[i])];
    Node n;
    n.kind = OpKind::Permute;
    n.inputs = {x};
    n.outShapes = {Shape(dims)};
    n.outDtypes = {g_.dtypeOf(x)};
    n.attrs.setInts("order", order);
    return {add(std::move(n)), 0};
}

Value
GraphBuilder::transpose(Value x, int d0, int d1)
{
    const Shape &xs = shapeOf(x);
    d0 = normDim(xs, d0);
    d1 = normDim(xs, d1);
    std::vector<int64_t> dims = xs.dims();
    std::swap(dims[static_cast<size_t>(d0)], dims[static_cast<size_t>(d1)]);
    Node n;
    n.kind = OpKind::Transpose;
    n.inputs = {x};
    n.outShapes = {Shape(dims)};
    n.outDtypes = {g_.dtypeOf(x)};
    n.attrs.set("d0", d0).set("d1", d1);
    return {add(std::move(n)), 0};
}

Value
GraphBuilder::contiguous(Value x)
{
    Node n;
    n.kind = OpKind::Contiguous;
    n.inputs = {x};
    n.outShapes = {shapeOf(x)};
    n.outDtypes = {g_.dtypeOf(x)};
    return {add(std::move(n)), 0};
}

std::vector<Value>
GraphBuilder::split(Value x, int64_t size, int dim)
{
    const Shape &xs = shapeOf(x);
    dim = normDim(xs, dim);
    int64_t extent = xs[static_cast<size_t>(dim)];
    Node n;
    n.kind = OpKind::Split;
    n.inputs = {x};
    for (int64_t off = 0; off < extent; off += size) {
        std::vector<int64_t> dims = xs.dims();
        dims[static_cast<size_t>(dim)] = std::min(size, extent - off);
        n.outShapes.push_back(Shape(dims));
        n.outDtypes.push_back(g_.dtypeOf(x));
    }
    n.attrs.set("size", static_cast<double>(size)).set("dim", dim);
    int id = add(std::move(n));
    std::vector<Value> outs;
    for (size_t i = 0; i < g_.node(id).outShapes.size(); ++i)
        outs.push_back({id, static_cast<int>(i)});
    return outs;
}

Value
GraphBuilder::concat(const std::vector<Value> &xs, int dim)
{
    if (xs.empty())
        throw std::runtime_error("concat: empty list");
    const Shape &s0 = shapeOf(xs[0]);
    dim = normDim(s0, dim);
    std::vector<int64_t> dims = s0.dims();
    int64_t total = 0;
    for (const Value &v : xs)
        total += shapeOf(v)[static_cast<size_t>(dim)];
    dims[static_cast<size_t>(dim)] = total;
    Node n;
    n.kind = OpKind::Concat;
    n.inputs = xs;
    n.outShapes = {Shape(dims)};
    n.outDtypes = {g_.dtypeOf(xs[0])};
    n.attrs.set("dim", dim);
    return {add(std::move(n)), 0};
}

Value
GraphBuilder::slice(Value x, int dim, int64_t start, int64_t len)
{
    const Shape &xs = shapeOf(x);
    dim = normDim(xs, dim);
    std::vector<int64_t> dims = xs.dims();
    dims[static_cast<size_t>(dim)] = len;
    Node n;
    n.kind = OpKind::Slice;
    n.inputs = {x};
    n.outShapes = {Shape(dims)};
    n.outDtypes = {g_.dtypeOf(x)};
    n.attrs.set("dim", dim).set("start", static_cast<double>(start));
    return {add(std::move(n)), 0};
}

Value
GraphBuilder::expand(Value x, const Shape &shape)
{
    Node n;
    n.kind = OpKind::Expand;
    n.inputs = {x};
    n.outShapes = {shape};
    n.outDtypes = {g_.dtypeOf(x)};
    return {add(std::move(n)), 0};
}

Value
GraphBuilder::squeeze(Value x, int dim)
{
    const Shape &xs = shapeOf(x);
    dim = normDim(xs, dim);
    std::vector<int64_t> dims = xs.dims();
    dims.erase(dims.begin() + dim);
    Node n;
    n.kind = OpKind::Squeeze;
    n.inputs = {x};
    n.outShapes = {Shape(dims)};
    n.outDtypes = {g_.dtypeOf(x)};
    n.attrs.set("dim", dim);
    return {add(std::move(n)), 0};
}

Value
GraphBuilder::unsqueeze(Value x, int dim)
{
    const Shape &xs = shapeOf(x);
    int r = static_cast<int>(xs.rank());
    if (dim < 0)
        dim += r + 1;
    std::vector<int64_t> dims = xs.dims();
    dims.insert(dims.begin() + dim, 1);
    Node n;
    n.kind = OpKind::Unsqueeze;
    n.inputs = {x};
    n.outShapes = {Shape(dims)};
    n.outDtypes = {g_.dtypeOf(x)};
    n.attrs.set("dim", dim);
    return {add(std::move(n)), 0};
}

Value
GraphBuilder::roll(Value x, int64_t shift, int dim)
{
    const Shape &xs = shapeOf(x);
    dim = normDim(xs, dim);
    Node n;
    n.kind = OpKind::Roll;
    n.inputs = {x};
    n.outShapes = {xs};
    n.outDtypes = {g_.dtypeOf(x)};
    n.attrs.set("shift", static_cast<double>(shift)).set("dim", dim);
    return {add(std::move(n)), 0};
}

Value
GraphBuilder::pad(Value x, int dim, int64_t before, int64_t after)
{
    const Shape &xs = shapeOf(x);
    dim = normDim(xs, dim);
    std::vector<int64_t> dims = xs.dims();
    dims[static_cast<size_t>(dim)] += before + after;
    Node n;
    n.kind = OpKind::Pad;
    n.inputs = {x};
    n.outShapes = {Shape(dims)};
    n.outDtypes = {g_.dtypeOf(x)};
    n.attrs.set("dim", dim)
        .set("before", static_cast<double>(before))
        .set("after", static_cast<double>(after));
    return {add(std::move(n)), 0};
}

Value
GraphBuilder::nms(Value boxes, Value scores, double iou_threshold,
                  double score_threshold, int64_t expected_keep)
{
    Node n;
    n.kind = OpKind::NMS;
    n.inputs = {boxes, scores};
    n.outShapes = {Shape{expected_keep}};
    n.outDtypes = {DType::I32};
    n.attrs.set("iou_threshold", iou_threshold)
        .set("score_threshold", score_threshold)
        .set("expected_keep", static_cast<double>(expected_keep));
    return {add(std::move(n)), 0};
}

Value
GraphBuilder::roiAlign(Value feat, Value rois, int out_h, int out_w)
{
    const Shape &fs = shapeOf(feat);
    const Shape &rs = shapeOf(rois);
    Node n;
    n.kind = OpKind::RoIAlign;
    n.inputs = {feat, rois};
    n.outShapes = {Shape{rs[0], fs[1], out_h, out_w}};
    n.outDtypes = {DType::F32};
    n.attrs.set("out_h", out_h).set("out_w", out_w);
    return {add(std::move(n)), 0};
}

Value
GraphBuilder::interpolate(Value x, int out_h, int out_w)
{
    const Shape &xs = shapeOf(x);
    Node n;
    n.kind = OpKind::Interpolate;
    n.inputs = {x};
    n.outShapes = {Shape{xs[0], xs[1], out_h, out_w}};
    n.outDtypes = {DType::F32};
    n.attrs.set("out_h", out_h).set("out_w", out_w);
    return {add(std::move(n)), 0};
}

namespace {

Shape
poolOutShape(const Shape &xs, int kernel, int stride, int padding)
{
    int64_t oh = (xs[2] + 2 * padding - kernel) / stride + 1;
    int64_t ow = (xs[3] + 2 * padding - kernel) / stride + 1;
    return Shape{xs[0], xs[1], oh, ow};
}

}  // namespace

Value
GraphBuilder::maxPool2d(Value x, int kernel, int stride, int padding)
{
    Node n;
    n.kind = OpKind::MaxPool2d;
    n.inputs = {x};
    n.outShapes = {poolOutShape(shapeOf(x), kernel, stride, padding)};
    n.outDtypes = {DType::F32};
    n.attrs.set("kernel", kernel).set("stride", stride).set("padding",
                                                            padding);
    return {add(std::move(n)), 0};
}

Value
GraphBuilder::avgPool2d(Value x, int kernel, int stride, int padding)
{
    Node n;
    n.kind = OpKind::AvgPool2d;
    n.inputs = {x};
    n.outShapes = {poolOutShape(shapeOf(x), kernel, stride, padding)};
    n.outDtypes = {DType::F32};
    n.attrs.set("kernel", kernel).set("stride", stride).set("padding",
                                                            padding);
    return {add(std::move(n)), 0};
}

Value
GraphBuilder::adaptiveAvgPool2d(Value x, int out_h, int out_w)
{
    const Shape &xs = shapeOf(x);
    Node n;
    n.kind = OpKind::AdaptiveAvgPool2d;
    n.inputs = {x};
    n.outShapes = {Shape{xs[0], xs[1], out_h, out_w}};
    n.outDtypes = {DType::F32};
    n.attrs.set("out_h", out_h).set("out_w", out_w);
    return {add(std::move(n)), 0};
}

Value
GraphBuilder::embedding(Value ids, int64_t vocab, int64_t dim,
                        const std::string &name)
{
    const Shape &is = shapeOf(ids);
    std::vector<int64_t> dims = is.dims();
    dims.push_back(dim);
    Node n;
    n.kind = OpKind::Embedding;
    n.name = name;
    n.inputs = {ids};
    n.outShapes = {Shape(dims)};
    n.outDtypes = {DType::F32};
    n.paramShapes = {Shape{vocab, dim}};
    return {add(std::move(n)), 0};
}

std::pair<Value, Value>
GraphBuilder::topk(Value x, int k)
{
    const Shape &xs = shapeOf(x);
    std::vector<int64_t> dims = xs.dims();
    dims.back() = k;
    Node n;
    n.kind = OpKind::TopK;
    n.inputs = {x};
    n.outShapes = {Shape(dims), Shape(dims)};
    n.outDtypes = {DType::F32, DType::I32};
    n.attrs.set("k", k);
    int id = add(std::move(n));
    return {{id, 0}, {id, 1}};
}

Value
GraphBuilder::gather(Value x, int dim, Value index)
{
    Node n;
    n.kind = OpKind::Gather;
    n.inputs = {x, index};
    n.outShapes = {shapeOf(index)};
    n.outDtypes = {DType::F32};
    n.attrs.set("dim", normDim(shapeOf(x), dim));
    return {add(std::move(n)), 0};
}

Value
GraphBuilder::cumsum(Value x, int dim)
{
    Value v = unary(OpKind::CumSum, x);
    g_.node(v.node).attrs.set("dim", normDim(shapeOf(x), dim));
    return v;
}

Value
GraphBuilder::quantize(Value x)
{
    Node n;
    n.kind = OpKind::Quantize;
    n.inputs = {x};
    n.outShapes = {shapeOf(x)};
    n.outDtypes = {DType::I8};
    return {add(std::move(n)), 0};
}

Value
GraphBuilder::dequantize(Value x)
{
    Node n;
    n.kind = OpKind::Dequantize;
    n.inputs = {x};
    n.outShapes = {shapeOf(x)};
    n.outDtypes = {DType::F32};
    return {add(std::move(n)), 0};
}

}  // namespace ngb
