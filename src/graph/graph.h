#ifndef NGB_GRAPH_GRAPH_H
#define NGB_GRAPH_GRAPH_H

#include <map>
#include <string>
#include <vector>

#include "graph/node.h"

namespace ngb {

/**
 * Aggregate statistics over a graph, used by the workload report.
 */
struct GraphStats {
    int64_t numOps = 0;
    int64_t numGemmOps = 0;
    int64_t numNonGemmOps = 0;
    double totalFlops = 0;
    double gemmFlops = 0;
    int64_t totalParams = 0;
    std::map<OpCategory, int64_t> opsByCategory;
};

/**
 * An operator graph for one model at fixed input shapes.
 *
 * Nodes are stored in topological (construction) order: every node's
 * inputs refer to nodes with smaller ids, which both the executor and
 * the deployment-flow rewriters rely on.
 */
class Graph
{
  public:
    /** Append a node; fills in its id and returns it. */
    int addNode(Node n);

    const Node &node(int id) const { return nodes_[static_cast<size_t>(id)]; }
    Node &node(int id) { return nodes_[static_cast<size_t>(id)]; }

    const std::vector<Node> &nodes() const { return nodes_; }
    size_t size() const { return nodes_.size(); }

    const Shape &shapeOf(Value v) const
    {
        return node(v.node).outShapes[static_cast<size_t>(v.index)];
    }

    DType dtypeOf(Value v) const
    {
        return node(v.node).outDtypes[static_cast<size_t>(v.index)];
    }

    void markInput(Value v) { inputs_.push_back(v); }
    void markOutput(Value v) { outputs_.push_back(v); }
    const std::vector<Value> &graphInputs() const { return inputs_; }
    const std::vector<Value> &graphOutputs() const { return outputs_; }

    const std::string &name() const { return name_; }
    void setName(std::string n) { name_ = std::move(n); }

    /** Compute workload statistics (op counts, FLOPs, params). */
    GraphStats stats() const;

    /** Number of uses of each node's outputs, indexed by node id. */
    std::vector<int> useCounts() const;

    /** True when any node is an executable Fused group (applyFusion
     *  ran on this graph). Runtime profiles record it. */
    bool hasFusedNodes() const
    {
        for (const Node &n : nodes_)
            if (n.kind == OpKind::Fused)
                return true;
        return false;
    }

  private:
    std::string name_;
    std::vector<Node> nodes_;
    std::vector<Value> inputs_;
    std::vector<Value> outputs_;
};

}  // namespace ngb

#endif  // NGB_GRAPH_GRAPH_H
