#include "graph/param_store.h"

namespace ngb {

const Tensor &
ParamStore::get(const Node &n, size_t index)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto key = std::make_pair(n.id, index);
    auto it = cache_.find(key);
    if (it != cache_.end())
        return it->second;

    const Shape &shape = n.paramShapes[index];
    Tensor t;
    bool is_norm = opCategoryOf(n.kind) == OpCategory::Normalization;
    if (is_norm) {
        // gamma=1, beta=0, running_mean=0, running_var=1.
        float v = (index == 0 || index == 3) ? 1.0f : 0.0f;
        t = Tensor::full(shape, v);
    } else if (n.paramShapes.size() > 1 && index == n.paramShapes.size() - 1
               && shape.rank() == 1) {
        // Bias vectors start at zero.
        t = Tensor::zeros(shape);
    } else {
        // Fusion rewrites renumber nodes; a member node inside a Fused
        // group keeps its pre-rewrite id in "seed_id" so its Gaussian
        // weights stay bit-identical to the unfused graph's.
        int64_t sid = n.attrs.getI("seed_id", n.id);
        uint64_t s = seed_ + static_cast<uint64_t>(sid) * 1315423911ull +
                     index * 2654435761ull;
        t = Tensor::randn(shape, s, 0.05f);
        if (n.paramDtype != DType::F32)
            t = t.to(n.paramDtype);
    }
    return cache_.emplace(key, std::move(t)).first->second;
}

const Tensor &
ParamStore::derived(const Node &n, size_t slot,
                    const std::function<Tensor()> &build)
{
    auto key = std::make_pair(n.id, slot);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = derived_.find(key);
        if (it != derived_.end())
            return it->second;
    }
    // Build OUTSIDE the lock: @p build typically reads base parameters
    // through get(), which takes the same mutex (and holding it here
    // would serialize every concurrent param lookup behind the pack).
    // Losers of the build race discard their copy; builds are
    // deterministic, so first-emplace-wins is value-identical.
    Tensor built = build();
    std::lock_guard<std::mutex> lock(mutex_);
    return derived_.emplace(key, std::move(built)).first->second;
}

void
ParamStore::materialize(const Graph &g)
{
    for (const Node &n : g.nodes()) {
        for (size_t i = 0; i < n.paramShapes.size(); ++i)
            get(n, i);
        // Fused groups hold their members' parameters; generating
        // them here keeps first-request kernel timings clean (and the
        // hot path free of the store mutex), same as top-level nodes.
        for (const Node &m : n.fusedBody)
            for (size_t i = 0; i < m.paramShapes.size(); ++i)
                get(m, i);
    }
}

}  // namespace ngb
