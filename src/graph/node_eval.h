#ifndef NGB_GRAPH_NODE_EVAL_H
#define NGB_GRAPH_NODE_EVAL_H

#include <functional>
#include <map>
#include <mutex>
#include <vector>

#include "graph/graph.h"
#include "tensor/tensor.h"

namespace ngb {

/**
 * Deterministic synthetic parameters for a graph's operators.
 *
 * Weight values never affect the paper's metric (latency share), but
 * concrete execution needs sane parameters: normalization scales are
 * ones, shifts/means are zeros, variances are ones, and projection
 * weights are seeded Gaussians so results are reproducible.
 *
 * get() is guarded by a mutex so concurrent node evaluation is safe;
 * the parallel runtime additionally calls materialize() up front so
 * hot-path lookups are contention-free cache hits.
 */
class ParamStore
{
  public:
    explicit ParamStore(uint64_t seed = 0x5eed) : seed_(seed) {}

    /** Materialize (and cache) parameter @p index of node @p n. */
    const Tensor &get(const Node &n, size_t index);

    /** Pre-fill the cache with every parameter of every node in @p g. */
    void materialize(const Graph &g);

  private:
    uint64_t seed_;
    std::mutex mutex_;
    std::map<std::pair<int, size_t>, Tensor> cache_;
};

/**
 * Evaluate one operator node with the reference kernels in src/ops.
 *
 * @p input resolves an incoming Value to its already-computed tensor.
 * Returns every output of the node (most ops produce one; Split and
 * TopK produce several). Pure with respect to graph state: all reads
 * go through @p input / @p params, so the serial Executor and the
 * parallel runtime share one dispatch path and stay bit-identical.
 */
std::vector<Tensor>
evalNode(const Node &n,
         const std::function<const Tensor &(const Value &)> &input,
         ParamStore &params);

}  // namespace ngb

#endif  // NGB_GRAPH_NODE_EVAL_H
