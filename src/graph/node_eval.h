#ifndef NGB_GRAPH_NODE_EVAL_H
#define NGB_GRAPH_NODE_EVAL_H

#include <functional>
#include <vector>

#include "graph/graph.h"
#include "graph/param_store.h"
#include "ops/backend.h"
#include "tensor/tensor.h"

namespace ngb {

/**
 * Evaluate one operator node through @p backend's kernel registry
 * (falling back along the backend's fallback chain for ops it does
 * not override).
 *
 * @p input resolves an incoming Value to its already-computed tensor.
 * Returns every output of the node (most ops produce one; Split and
 * TopK produce several). Pure with respect to graph state: all reads
 * go through @p input / @p params, so the serial Executor, the
 * parallel runtime, and the serving engines share one dispatch path
 * per backend and stay bit-identical to each other.
 *
 * @p alloc, when non-null, provides the node's output buffers (the
 * runtime's planned-arena execution); null keeps the heap default.
 *
 * @p par, when non-null, lends the node's kernel an intra-op region
 * (GEMMs shard across its workers); null keeps kernels serial.
 */
inline std::vector<Tensor>
evalNode(const Node &n,
         const std::function<const Tensor &(const Value &)> &input,
         ParamStore &params, const Backend &backend,
         Allocator *alloc = nullptr, const ParallelRegion *par = nullptr)
{
    return backend.eval(
        KernelContext{n, input, params, &backend, alloc, par});
}

}  // namespace ngb

#endif  // NGB_GRAPH_NODE_EVAL_H
