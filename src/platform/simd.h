#ifndef NGB_PLATFORM_SIMD_H
#define NGB_PLATFORM_SIMD_H

#include <cstdint>
#include <vector>

#include "platform/cpu_features.h"

/**
 * @file
 * The explicit-SIMD shim: one vector-register abstraction, three
 * instruction sets behind it.
 *
 * Each ISA lives in its own translation unit (simd_avx2.cc,
 * simd_avx512.cc, simd_neon.cc) compiled with that ISA's flags only
 * for that file; the kernel BODIES are shared templates over a small
 * vector-register concept (simd_kernels_inl.h), so AVX2, AVX-512 and
 * NEON run the same algorithm at different widths. A TU whose ISA the
 * compiler cannot target compiles to a stub returning nullptr, and
 * the runtime dispatcher (simdOpsFor + platform::activeIsa) clamps to
 * what is actually compiled in — so one binary carries every level it
 * can and degrades per-op through the Backend fallback chain
 * everywhere else.
 *
 * Numerics contract (what the differential tests assert):
 *  - gemmF32 keeps ONE accumulator per output element and walks k
 *    ascending with single-rounded fused multiply-adds (vector FMA in
 *    the panels, std::fmaf in the tails). Results are therefore
 *    deterministic and IDENTICAL across every TileConfig the
 *    autotuner may pick — tiling moves loop boundaries, never the
 *    per-element operation sequence — but differ from the
 *    mul-then-add optimized/reference GEMM by FMA rounding: compare
 *    with closeDifference.
 *  - gemmI8 accumulates in exact i32, so VNNI, sdot, and the widening
 *    paths all produce bit-identical accumulators to the scalar int8
 *    kernels (PR 8's contract extends to SIMD unchanged).
 *  - relu / addScalar / mulScalar / binaryOp evaluate the same float
 *    expression per element as the scalar kernels: bit-identical.
 *  - layerNormRows uses vector-reduced two-pass moments: the
 *    reduction tree differs from both the reference two-pass and the
 *    optimized Welford sweep — tolerance, like optimized-vs-reference
 *    already is.
 */

namespace ngb {
namespace simd {

/**
 * One GEMM tiling choice — the autotuner's search space. @p mr output
 * rows per register panel (one of 1/2/4/6/8), @p nv accumulator
 * vectors per row (1/2/4, each SimdOps::vectorWidthF32 lanes wide),
 * @p kc k-block size (0 = unblocked). Every config computes
 * bit-identical results (see the numerics contract above); they
 * differ only in register pressure and cache behaviour, which is why
 * picking one is a pure timing decision the tuning cache can replay.
 */
struct TileConfig {
    int mr = 4;
    int nv = 2;
    int64_t kc = 0;
};

/**
 * The per-ISA kernel table. Raw-pointer kernels on contiguous F32/I8
 * data; the simd backend (src/ops/simd_backend.cc) owns tensor
 * plumbing, layout packing, and fallback decisions.
 */
struct SimdOps {
    const char *name;              ///< "avx2" / "avx512" / "neon"
    platform::IsaLevel level;
    int vectorWidthF32;            ///< f32 lanes per register
    bool int8Dot;                  ///< gemmI8 wants the dot-interleaved
                                   ///< B layout (VNNI / sdot active)

    /** C[M,N] = A[M,K] * B[K,N] (+ bias[N] when non-null). */
    void (*gemmF32)(const float *A, const float *B, float *C,
                    int64_t M, int64_t K, int64_t N, const float *bias,
                    const TileConfig &tile);

    /**
     * gemmF32 over lda/ldb/ldc-strided sub-matrices. The per-element
     * operation sequence is identical to gemmF32 (strides move
     * pointers, never the k chain), so a macro-tile decomposition of a
     * big GEMM through this entry — the intra-op sharding path — is
     * bit-identical to one whole-problem gemmF32 call.
     */
    void (*gemmF32Strided)(const float *A, int64_t lda, const float *B,
                           int64_t ldb, float *C, int64_t ldc,
                           int64_t M, int64_t K, int64_t N,
                           const float *bias, const TileConfig &tile);

    /**
     * C[M,N] (i32) = A[M,K] (i8) * B (i8). B layout: the dot
     * interleave from packDotInterleave when int8Dot, else plain
     * row-major [K,N]. Only tile.mr participates in tuning here.
     */
    void (*gemmI8)(const int8_t *A, const int8_t *B, int32_t *C,
                   int64_t M, int64_t K, int64_t N,
                   const TileConfig &tile);

    void (*relu)(const float *x, float *out, int64_t n);
    void (*addScalar)(const float *x, float s, float *out, int64_t n);
    void (*mulScalar)(const float *x, float s, float *out, int64_t n);

    /** op: 0 add, 1 sub, 2 mul, 3 div; same-shape contiguous. */
    void (*binaryOp)(int op, const float *a, const float *b, float *out,
                     int64_t n);

    /** Row-wise layer norm over the last dim @p d with affine. */
    void (*layerNormRows)(const float *x, const float *gamma,
                          const float *beta, float eps, int64_t rows,
                          int64_t d, float *out);
};

/** Per-ISA tables; nullptr when that TU was compiled without its ISA
 *  (missing compiler support) — dispatch clamps around the gap. */
const SimdOps *simdOpsAvx2();
const SimdOps *simdOpsAvx512();
const SimdOps *simdOpsNeon();

/** Table for @p level, nullptr for Scalar or a not-compiled level. */
const SimdOps *simdOpsFor(platform::IsaLevel level);

/**
 * The tile configurations the autotuner searches for f32 GEMM at
 * @p level (first entry is the no-cache default). All produce
 * identical bits; see TileConfig.
 */
const std::vector<TileConfig> &gemmTileCandidates(platform::IsaLevel level);

/** Row-block candidates for the int8 GEMM (only mr varies). */
const std::vector<TileConfig> &int8TileCandidates(platform::IsaLevel level);

/**
 * Pack a row-major [K,N] int8 weight into the 4-deep dot-product
 * interleave the VNNI/sdot kernels stream: groups of 4 consecutive k
 * rows become [N][4] panels (so one 32-bit lane load feeds one
 * dot-product instruction), laid out [K/4][N][4]; the K%4 tail rows
 * follow in plain [tail][N] row-major. @p dst must hold K*N bytes.
 */
void packDotInterleave(const int8_t *src, int8_t *dst, int64_t K,
                       int64_t N);

}  // namespace simd
}  // namespace ngb

#endif  // NGB_PLATFORM_SIMD_H
