#include "platform/tuning_cache.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>

#include "obs/json_util.h"
#include "platform/cpu_features.h"

namespace ngb {
namespace simd {

namespace {

// v2 added the "threads" key field (intra-op parallelism); v1 files
// are dropped wholesale by the version check below.
constexpr int kFormatVersion = 2;

/** Value of the string field @p key inside @p obj, "" when absent.
 *  The cache only parses files it wrote itself (escaped, flat
 *  objects), so a plain scan is sufficient and a malformed file
 *  degrades to "no entries" rather than an error. */
std::string
fieldString(const std::string &obj, const std::string &key)
{
    const std::string needle = "\"" + key + "\":";
    size_t pos = obj.find(needle);
    if (pos == std::string::npos)
        return "";
    pos += needle.size();
    while (pos < obj.size() && (obj[pos] == ' ' || obj[pos] == '\n'))
        ++pos;
    if (pos >= obj.size() || obj[pos] != '"')
        return "";
    size_t end = obj.find('"', pos + 1);
    if (end == std::string::npos)
        return "";
    return obj.substr(pos + 1, end - pos - 1);
}

double
fieldNumber(const std::string &obj, const std::string &key, double def)
{
    const std::string needle = "\"" + key + "\":";
    size_t pos = obj.find(needle);
    if (pos == std::string::npos)
        return def;
    return std::atof(obj.c_str() + pos + needle.size());
}

}  // namespace

TuningCache::TuningCache(std::string path) : path_(std::move(path))
{
    std::lock_guard<std::mutex> lock(mutex_);
    loadLocked();
}

void
TuningCache::loadLocked()
{
    std::ifstream f(path_);
    if (!f)
        return;
    std::stringstream ss;
    ss << f.rdbuf();
    const std::string text = ss.str();
    if (fieldNumber(text, "version", 0) != kFormatVersion ||
        fieldString(text, "machine") != platform::machineTag()) {
        // Another machine's (or another format's) tunings: tile
        // choices do not transfer, drop the whole file's contents.
        size_t n = 0;
        for (size_t pos = text.find("{\"op\":");
             pos != std::string::npos;
             pos = text.find("{\"op\":", pos + 1))
            ++n;
        stats_.entriesRejected += n;
        return;
    }
    for (size_t pos = text.find("{\"op\":"); pos != std::string::npos;
         pos = text.find("{\"op\":", pos + 1)) {
        size_t end = text.find('}', pos);
        if (end == std::string::npos)
            break;
        const std::string obj = text.substr(pos, end - pos + 1);
        TuneKey key{fieldString(obj, "op"), fieldString(obj, "shape"),
                    fieldString(obj, "isa"),
                    static_cast<int>(fieldNumber(obj, "threads", 1))};
        if (key.op.empty() || key.shape.empty() || key.isa.empty()) {
            ++stats_.entriesRejected;
            continue;
        }
        Entry e;
        e.choice = static_cast<int>(fieldNumber(obj, "choice", 0));
        e.ns = fieldNumber(obj, "ns", 0);
        table_[key] = e;
        ++stats_.entriesLoaded;
    }
}

void
TuningCache::saveLocked() const
{
    if (path_.empty())
        return;
    const std::string tmp = path_ + ".tmp";
    {
        std::ofstream f(tmp, std::ios::trunc);
        if (!f)
            return;
        f << "{\n  \"version\": " << kFormatVersion
          << ",\n  \"machine\": "
          << obs::jsonQuote(platform::machineTag())
          << ",\n  \"entries\": [\n";
        size_t i = 0;
        for (const auto &[key, e] : table_) {
            obs::JsonDict d;
            d.add("op", key.op)
                .add("shape", key.shape)
                .add("isa", key.isa)
                .add("threads", key.threads)
                .add("choice", e.choice)
                .add("ns", e.ns, 1);
            f << "    " << d.str()
              << (++i < table_.size() ? "," : "") << "\n";
        }
        f << "  ]\n}\n";
    }
    std::rename(tmp.c_str(), path_.c_str());
}

int
TuningCache::choose(const TuneKey &key, int nCandidates,
                    const std::function<double(int)> &timeCandidate)
{
    if (nCandidates <= 1)
        return 0;
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = table_.find(key);
    if (it != table_.end() && it->second.choice >= 0 &&
        it->second.choice < nCandidates) {
        ++stats_.replays;
        return it->second.choice;
    }
    int best = 0;
    double bestNs = std::numeric_limits<double>::infinity();
    for (int i = 0; i < nCandidates; ++i) {
        const double ns = timeCandidate(i);
        ++stats_.tuneRuns;
        if (ns < bestNs) {
            bestNs = ns;
            best = i;
        }
    }
    table_[key] = Entry{best, bestNs};
    ++stats_.tunedKeys;
    saveLocked();
    return best;
}

bool
TuningCache::contains(const TuneKey &key) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return table_.count(key) != 0;
}

size_t
TuningCache::entries() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return table_.size();
}

TuneStats
TuningCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

TuningCache &
TuningCache::process()
{
    static TuningCache *cache = [] {
        const char *env = std::getenv("NGB_TUNE_CACHE");
        return env && *env ? new TuningCache(env) : new TuningCache();
    }();
    return *cache;
}

}  // namespace simd
}  // namespace ngb
