#include "platform/simd.h"

/**
 * @file
 * ISA-agnostic half of the SIMD shim: runtime table dispatch, the
 * autotuner's per-ISA candidate lists, and the int8 dot-product
 * weight interleave (plain C++ — packing needs no intrinsics).
 */

namespace ngb {
namespace simd {

const SimdOps *
simdOpsFor(platform::IsaLevel level)
{
    switch (level) {
    case platform::IsaLevel::Avx512: return simdOpsAvx512();
    case platform::IsaLevel::Avx2: return simdOpsAvx2();
    case platform::IsaLevel::Neon: return simdOpsNeon();
    case platform::IsaLevel::Scalar: return nullptr;
    }
    return nullptr;
}

const std::vector<TileConfig> &
gemmTileCandidates(platform::IsaLevel level)
{
    // First entry = default when no tuning-cache entry exists yet.
    // mr must come from {1,2,4,6,8} (the instantiated panel heights),
    // nv from {1,2,4}. kc > 0 adds a k-block cache pass; every
    // candidate is bit-identical (simd.h numerics contract).
    static const std::vector<TileConfig> kAvx2 = {
        {4, 2, 0}, {6, 2, 0}, {4, 4, 0}, {2, 4, 0},
        {8, 1, 0}, {4, 2, 256}, {6, 2, 384},
    };
    static const std::vector<TileConfig> kAvx512 = {
        {4, 2, 0}, {6, 2, 0}, {8, 2, 0}, {4, 4, 0},
        {2, 4, 0}, {4, 2, 256}, {8, 2, 384},
    };
    static const std::vector<TileConfig> kNeon = {
        {4, 2, 0}, {6, 2, 0}, {4, 4, 0}, {8, 2, 0}, {4, 2, 256},
    };
    static const std::vector<TileConfig> kScalar = {{4, 2, 0}};
    switch (level) {
    case platform::IsaLevel::Avx512: return kAvx512;
    case platform::IsaLevel::Avx2: return kAvx2;
    case platform::IsaLevel::Neon: return kNeon;
    case platform::IsaLevel::Scalar: return kScalar;
    }
    return kScalar;
}

const std::vector<TileConfig> &
int8TileCandidates(platform::IsaLevel level)
{
    // Only the row block varies for the int8 kernels (columns are
    // pinned to the dot-product register shape).
    static const std::vector<TileConfig> kRows = {
        {4, 0, 0}, {2, 0, 0}, {8, 0, 0}};
    (void)level;
    return kRows;
}

void
packDotInterleave(const int8_t *src, int8_t *dst, int64_t K, int64_t N)
{
    const int64_t K4 = K & ~int64_t(3);
    for (int64_t g = 0; g < K4 / 4; ++g)
        for (int64_t n = 0; n < N; ++n)
            for (int t = 0; t < 4; ++t)
                dst[(g * N + n) * 4 + t] = src[(4 * g + t) * N + n];
    int8_t *tail = dst + K4 * N;
    for (int64_t k = K4; k < K; ++k)
        for (int64_t n = 0; n < N; ++n)
            tail[(k - K4) * N + n] = src[k * N + n];
}

}  // namespace simd
}  // namespace ngb
