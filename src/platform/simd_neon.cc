#include "platform/simd.h"

/**
 * @file
 * aarch64 NEON (ASIMD) instantiation of the shared SIMD kernels
 * (4-wide f32) plus int8 GEMM: the sdot kernel over the 4-deep
 * interleaved weight layout when the build and CPU have DOTPROD
 * (signed x signed, so no bias/compensation is needed), and a
 * widening vmlal fallback over plain [K,N] otherwise. All exact i32
 * accumulation — the PR 8 bit-identity contract holds.
 */

#if defined(__aarch64__) && defined(__ARM_NEON)

#include <arm_neon.h>

#include <cstring>

#include "platform/simd_kernels_inl.h"

namespace ngb {
namespace simd {
namespace {

struct V4 {
    static constexpr int W = 4;
    using R = float32x4_t;
    static R load(const float *p) { return vld1q_f32(p); }
    static void store(float *p, R v) { vst1q_f32(p, v); }
    static R broadcast(float v) { return vdupq_n_f32(v); }
    static R zero() { return vdupq_n_f32(0.0f); }
    static R add(R a, R b) { return vaddq_f32(a, b); }
    static R sub(R a, R b) { return vsubq_f32(a, b); }
    static R mul(R a, R b) { return vmulq_f32(a, b); }
    static R div(R a, R b) { return vdivq_f32(a, b); }
    static R max(R a, R b) { return vmaxq_f32(a, b); }
    static R fma(R a, R b, R c) { return vfmaq_f32(c, a, b); }
    static float reduceAdd(R v) { return vaddvq_f32(v); }
};

/** Widening int8 GEMM over plain [K,N]: 8 columns per iteration. */
void
gemmI8Widen(const int8_t *A, const int8_t *B, int32_t *C, int64_t M,
            int64_t K, int64_t N, const TileConfig &tile)
{
    const int mr = tile.mr > 0 ? (tile.mr < 8 ? tile.mr : 8) : 4;
    int64_t m0 = 0;
    while (m0 < M) {
        const int rows = static_cast<int>(
            M - m0 < static_cast<int64_t>(mr) ? M - m0 : mr);
        int64_t j = 0;
        for (; j + 8 <= N; j += 8) {
            int32x4_t lo[8], hi[8];
            for (int r = 0; r < rows; ++r) {
                lo[r] = vdupq_n_s32(0);
                hi[r] = vdupq_n_s32(0);
            }
            for (int64_t k = 0; k < K; ++k) {
                const int16x8_t b16 =
                    vmovl_s8(vld1_s8(B + k * N + j));
                const int32x4_t blo = vmovl_s16(vget_low_s16(b16));
                const int32x4_t bhi = vmovl_s16(vget_high_s16(b16));
                for (int r = 0; r < rows; ++r) {
                    const int32_t a =
                        static_cast<int32_t>(A[(m0 + r) * K + k]);
                    lo[r] = vmlaq_n_s32(lo[r], blo, a);
                    hi[r] = vmlaq_n_s32(hi[r], bhi, a);
                }
            }
            for (int r = 0; r < rows; ++r) {
                vst1q_s32(C + (m0 + r) * N + j, lo[r]);
                vst1q_s32(C + (m0 + r) * N + j + 4, hi[r]);
            }
        }
        for (; j < N; ++j)
            for (int r = 0; r < rows; ++r) {
                int32_t acc = 0;
                for (int64_t k = 0; k < K; ++k)
                    acc += static_cast<int32_t>(A[(m0 + r) * K + k]) *
                           static_cast<int32_t>(B[k * N + j]);
                C[(m0 + r) * N + j] = acc;
            }
        m0 += rows;
    }
}

#ifdef __ARM_FEATURE_DOTPROD

/** sdot int8 GEMM over the packDotInterleave layout. */
void
gemmI8Dot(const int8_t *A, const int8_t *B, int32_t *C, int64_t M,
          int64_t K, int64_t N, const TileConfig &tile)
{
    const int mr = tile.mr > 0 ? (tile.mr < 8 ? tile.mr : 8) : 4;
    const int64_t K4 = K & ~int64_t(3);
    const int64_t groups = K4 / 4;
    const int8_t *Btail = B + K4 * N;
    int64_t m0 = 0;
    while (m0 < M) {
        const int rows = static_cast<int>(
            M - m0 < static_cast<int64_t>(mr) ? M - m0 : mr);
        int64_t j = 0;
        for (; j + 4 <= N; j += 4) {
            int32x4_t acc[8];
            for (int r = 0; r < rows; ++r)
                acc[r] = vdupq_n_s32(0);
            for (int64_t g = 0; g < groups; ++g) {
                const int8x16_t bq =
                    vld1q_s8(B + (g * N + j) * 4);
                for (int r = 0; r < rows; ++r) {
                    uint32_t aw;
                    std::memcpy(&aw, A + (m0 + r) * K + g * 4, 4);
                    const int8x16_t av = vreinterpretq_s8_u32(
                        vdupq_n_u32(aw));
                    acc[r] = vdotq_s32(acc[r], av, bq);
                }
            }
            for (int64_t k = K4; k < K; ++k) {
                const int16x4_t b16 = vget_low_s16(vmovl_s8(
                    vld1_s8(Btail + (k - K4) * N + j)));
                const int32x4_t bv = vmovl_s16(b16);
                for (int r = 0; r < rows; ++r)
                    acc[r] = vmlaq_n_s32(
                        acc[r], bv,
                        static_cast<int32_t>(A[(m0 + r) * K + k]));
            }
            for (int r = 0; r < rows; ++r)
                vst1q_s32(C + (m0 + r) * N + j, acc[r]);
        }
        for (; j < N; ++j)
            for (int r = 0; r < rows; ++r) {
                int32_t acc = 0;
                for (int64_t g = 0; g < groups; ++g)
                    for (int t = 0; t < 4; ++t)
                        acc += static_cast<int32_t>(
                                   A[(m0 + r) * K + 4 * g + t]) *
                               static_cast<int32_t>(
                                   B[(g * N + j) * 4 + t]);
                for (int64_t k = K4; k < K; ++k)
                    acc += static_cast<int32_t>(A[(m0 + r) * K + k]) *
                           static_cast<int32_t>(
                               Btail[(k - K4) * N + j]);
                C[(m0 + r) * N + j] = acc;
            }
        m0 += rows;
    }
}

#endif  // __ARM_FEATURE_DOTPROD

const SimdOps kOpsWiden = {
    "neon",
    platform::IsaLevel::Neon,
    V4::W,
    false,
    &inl::gemmF32Tmpl<V4>,
    &inl::gemmF32StridedTmpl<V4>,
    &gemmI8Widen,
    &inl::reluTmpl<V4>,
    &inl::addScalarTmpl<V4>,
    &inl::mulScalarTmpl<V4>,
    &inl::binaryOpTmpl<V4>,
    &inl::layerNormRowsTmpl<V4>,
};

#ifdef __ARM_FEATURE_DOTPROD
const SimdOps kOpsDot = {
    "neon",
    platform::IsaLevel::Neon,
    V4::W,
    true,
    &inl::gemmF32Tmpl<V4>,
    &inl::gemmF32StridedTmpl<V4>,
    &gemmI8Dot,
    &inl::reluTmpl<V4>,
    &inl::addScalarTmpl<V4>,
    &inl::mulScalarTmpl<V4>,
    &inl::binaryOpTmpl<V4>,
    &inl::layerNormRowsTmpl<V4>,
};
#endif

}  // namespace

const SimdOps *
simdOpsNeon()
{
#ifdef __ARM_FEATURE_DOTPROD
    if (platform::hasDotprod())
        return &kOpsDot;
#endif
    return &kOpsWiden;
}

}  // namespace simd
}  // namespace ngb

#else  // not aarch64 NEON

namespace ngb {
namespace simd {

const SimdOps *
simdOpsNeon()
{
    return nullptr;
}

}  // namespace simd
}  // namespace ngb

#endif
