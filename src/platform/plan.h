#ifndef NGB_PLATFORM_PLAN_H
#define NGB_PLATFORM_PLAN_H

#include <string>
#include <vector>

#include "graph/graph.h"

namespace ngb {

/**
 * One scheduled kernel group: either a single graph node or a set of
 * nodes fused into one device kernel by a deployment flow.
 *
 * A group is the unit the cost model prices. kernelCount captures
 * composite eager operators (e.g. HuggingFace's GELU or DETR's custom
 * FrozenBatchNorm) that launch several primitive kernels and re-read
 * the whole tensor between them — exactly the traffic operator fusion
 * later removes.
 */
struct KernelGroup {
    std::vector<int> nodeIds;   ///< member nodes, in graph order
    OpCategory category = OpCategory::Misc;  ///< latency attribution
    std::string label;

    bool onGpu = false;     ///< executes on the GPU device
    bool zeroCopy = false;  ///< metadata-only; host bookkeeping only
    bool fused = false;     ///< more than one graph node in this kernel
    int kernelCount = 1;    ///< primitive device kernels launched
    /** How many of those kernels traverse the full activation tensor
     *  (composite ops often launch several tiny scalar kernels plus a
     *  couple of full passes; only the full passes cost bandwidth). */
    int bigKernels = 1;

    double flops = 0;
    double bytesIn = 0;
    double bytesOut = 0;
    double bytesParam = 0;
    /** Host<->device bytes moved because of a CPU fallback. */
    double transferBytes = 0;
    /** Device->host synchronizations this op forces (dynamic index
     *  ops like nonzero/where stall the CUDA stream). */
    int hostSyncs = 0;
    /** Computation precision for GEMM rate selection. */
    bool f16 = false;
    bool i8 = false;

    /**
     * Flow-specific host dispatch cost per launch, us; negative means
     * "use the cost model default". Compiled flows (ORT, TensorRT)
     * dispatch from a prebuilt session and are much cheaper than
     * eager PyTorch.
     */
    double dispatchUsOverride = -1.0;
    /** Flow-specific multiplier on the effective compute rate. */
    double rateScale = 1.0;
};

/**
 * A fully scheduled execution of a graph under one deployment flow:
 * an ordered list of kernel groups plus flow-level metadata.
 */
struct ExecutionPlan {
    const Graph *graph = nullptr;
    std::string flowName;
    bool gpuEnabled = false;
    std::vector<KernelGroup> groups;

    /** Number of graph nodes covered by multi-node (fused) groups. */
    int64_t fusedNodeCount() const
    {
        int64_t n = 0;
        for (const KernelGroup &g : groups)
            if (g.fused)
                n += static_cast<int64_t>(g.nodeIds.size());
        return n;
    }
};

}  // namespace ngb

#endif  // NGB_PLATFORM_PLAN_H
