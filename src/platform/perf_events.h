#ifndef NGB_PLATFORM_PERF_EVENTS_H
#define NGB_PLATFORM_PERF_EVENTS_H

#include <cstddef>
#include <cstdint>
#include <string>

/**
 * @file
 * Thin shim over Linux `perf_event_open`: one grouped set of hardware
 * counters (cycles, instructions, LLC misses, branch misses) per
 * thread, read with a single read() per scope so the four values are
 * mutually consistent (the kernel schedules and unschedules a group
 * atomically).
 *
 * Graceful degradation is the contract, not an afterthought: CI
 * containers, hardened kernels (perf_event_paranoid >= 3), non-Linux
 * hosts, and VMs without a PMU must all keep every caller green.
 * Opening falls back through ever-smaller groups (4 -> 2 -> cycles
 * alone) and finally to a clock-only mode whose CounterValues carry
 * `measured = false` and real elapsed time — callers report "counters
 * unavailable" with a reason string, never wrong numbers and never a
 * hard failure.
 */

namespace ngb {
namespace perf {

/**
 * One consistent reading of a thread's counter group. When `measured`
 * is false the counter fields are zero and only the time fields are
 * meaningful (clock fallback). timeEnabled/timeRunning expose kernel
 * multiplexing: running < enabled means the PMU was oversubscribed and
 * raw counts cover only the running fraction (ratios like IPC stay
 * consistent because the whole group schedules together).
 */
struct CounterValues {
    uint64_t cycles = 0;
    uint64_t instructions = 0;
    uint64_t cacheMisses = 0;   ///< LLC misses
    uint64_t branchMisses = 0;
    uint64_t timeEnabledNs = 0;
    uint64_t timeRunningNs = 0;
    bool measured = false;  ///< true: real PMU counts; false: clock only
};

/**
 * Decode one PERF_FORMAT_GROUP | TOTAL_TIME_ENABLED | TOTAL_TIME_RUNNING
 * read buffer: words = [nr, time_enabled, time_running, v0, v1, ...].
 * The first @p expect values map onto cycles/instructions/cacheMisses/
 * branchMisses in order; missing trailing counters (a degraded group)
 * stay zero. Returns false (and leaves @p out zeroed) on a malformed
 * buffer — nr mismatch or a buffer shorter than its own header claims.
 * Pure function, unit-testable without a PMU.
 */
bool parseGroupRead(const uint64_t *words, size_t nwords, size_t expect,
                    CounterValues *out);

/**
 * A per-thread group of hardware counters. Open on the thread that
 * will be measured (the fd counts that thread only); read() from the
 * same thread. Never throws: a group that cannot open degrades to the
 * clock fallback and remembers why.
 */
class PerfGroup
{
  public:
    /** Open the group for the calling thread (or degrade). */
    PerfGroup();

    /** Test seam: skip the syscall entirely and use the fallback. */
    explicit PerfGroup(bool forceFallback);

    ~PerfGroup();

    PerfGroup(const PerfGroup &) = delete;
    PerfGroup &operator=(const PerfGroup &) = delete;

    /** True when real PMU counters are being read. */
    bool available() const { return fd_ >= 0; }

    /** Number of hardware counters actually opened (0 in fallback). */
    size_t counters() const { return nCounters_; }

    /** Why the group is degraded ("" when fully available). */
    const std::string &detail() const { return detail_; }

    /**
     * One consistent sample: a single read() of the whole group, or
     * the monotonic clock in fallback mode (measured = false, elapsed
     * time still real so scope durations keep working).
     */
    CounterValues read() const;

  private:
    void open();
    void closeAll();

    int fd_ = -1;           ///< group leader; -1 = fallback mode
    int siblings_[3] = {-1, -1, -1};
    size_t nCounters_ = 0;  ///< leader + opened siblings
    std::string detail_;
};

/**
 * Process-level availability probe, evaluated once on first use (opens
 * and closes a probe group on the calling thread). `detail` names the
 * degradation cause — e.g. "perf_event_open: Permission denied
 * (perf_event_paranoid too high?)" — for reports and JSON.
 */
struct PerfStatus {
    bool available = false;
    size_t counters = 0;
    std::string detail;
};

const PerfStatus &perfStatus();

/**
 * RAPL package energy via /sys/class/powercap: the sum of every
 * readable intel-rapl domain's energy_uj, in joules. ok = false when
 * no domain is readable (unprivileged containers, non-Intel hosts) —
 * callers must label their energy numbers as model-derived then.
 * Counters wrap at max_energy_range_uj; diff two readings over a
 * short window and treat negative deltas as a wrap.
 */
struct RaplReading {
    bool ok = false;
    double joules = 0;
    int domains = 0;
};

RaplReading readRaplJoules();

}  // namespace perf
}  // namespace ngb

#endif  // NGB_PLATFORM_PERF_EVENTS_H
