#ifndef NGB_PLATFORM_DEVICE_SPEC_H
#define NGB_PLATFORM_DEVICE_SPEC_H

#include <string>

namespace ngb {

/**
 * Static performance envelope of one compute device.
 *
 * Rates are peak theoretical numbers from vendor datasheets; the cost
 * model derates them with per-operator-class efficiency factors.
 */
struct DeviceSpec {
    std::string name;
    bool isGpu = false;

    double peakGflopsF32 = 0;  ///< dense FP32 (CUDA core / AVX) GFLOP/s
    double peakGflopsTf32 = 0; ///< TF32 tensor-core rate PyTorch GEMMs use
    double peakGflopsF16 = 0;  ///< FP16 tensor-core (GPU) or 2x AVX rate
    double peakTopsI8 = 0;     ///< INT8 tensor-core TOPS
    double memBwGBs = 0;       ///< DRAM/HBM bandwidth, GB/s
    double kernelLaunchUs = 0; ///< per-kernel launch latency (GPU only)
    double busyPowerW = 0;     ///< average power while executing
    double idlePowerW = 0;

    /** Peak GFLOP/s for GEMM kernels at the given precision. */
    double gemmPeakGflops(bool f16, bool i8) const
    {
        if (i8 && peakTopsI8 > 0)
            return peakTopsI8 * 1000.0;
        if (f16 && peakGflopsF16 > 0)
            return peakGflopsF16;
        if (peakGflopsTf32 > 0)
            return peakGflopsTf32;  // PyTorch enables TF32 on Ampere+
        return peakGflopsF32;
    }
};

/**
 * A two-device evaluation platform (host CPU + optional discrete GPU)
 * mirroring Table III of the paper.
 */
struct PlatformSpec {
    std::string id;           ///< "A" (data center) or "B" (workstation)
    std::string description;
    DeviceSpec cpu;
    DeviceSpec gpu;
    double pcieGBs = 0;       ///< host<->device copy bandwidth
    double pcieLatencyUs = 0; ///< per-transfer latency
};

/** Platform A: AMD EPYC 7763 + NVIDIA A100 80GB (data center). */
PlatformSpec platformA();

/** Platform B: Intel i9-13900K + NVIDIA RTX 4090 (workstation). */
PlatformSpec platformB();

/** Look up by id ("A" or "B"). */
PlatformSpec platformById(const std::string &id);

}  // namespace ngb

#endif  // NGB_PLATFORM_DEVICE_SPEC_H
