#include "platform/device_spec.h"

#include <stdexcept>

namespace ngb {

PlatformSpec
platformA()
{
    PlatformSpec p;
    p.id = "A";
    p.description = "Data center: AMD EPYC 7763 + NVIDIA A100 80GB PCIe";

    p.cpu.name = "AMD EPYC 7763";
    p.cpu.isGpu = false;
    // 64 cores x 2.45 GHz x 32 FP32 FLOP/cycle (2x FMA AVX2).
    p.cpu.peakGflopsF32 = 5017;
    p.cpu.peakGflopsF16 = 5017;
    p.cpu.peakTopsI8 = 10.0;  // VNNI-less; int8 via AVX2 ~2x fp32
    p.cpu.memBwGBs = 204.8;   // 8-channel DDR4-3200
    p.cpu.kernelLaunchUs = 0;
    p.cpu.busyPowerW = 280;
    p.cpu.idlePowerW = 100;

    p.gpu.name = "NVIDIA A100 80GB";
    p.gpu.isGpu = true;
    p.gpu.peakGflopsF32 = 19500;
    p.gpu.peakGflopsTf32 = 156000;
    p.gpu.peakGflopsF16 = 312000;
    p.gpu.peakTopsI8 = 624;
    p.gpu.memBwGBs = 2039;
    p.gpu.kernelLaunchUs = 8.0;
    p.gpu.busyPowerW = 300;
    p.gpu.idlePowerW = 60;

    p.pcieGBs = 24.0;  // PCIe 4.0 x16 effective
    p.pcieLatencyUs = 8.0;
    return p;
}

PlatformSpec
platformB()
{
    PlatformSpec p;
    p.id = "B";
    p.description = "Workstation: Intel i9-13900K + NVIDIA RTX 4090";

    p.cpu.name = "Intel i9-13900K";
    p.cpu.isGpu = false;
    // 8P (5.5 GHz) + 16E (4.3 GHz) cores, AVX2.
    p.cpu.peakGflopsF32 = 1900;
    p.cpu.peakGflopsF16 = 1900;
    p.cpu.peakTopsI8 = 7.6;  // VNNI
    p.cpu.memBwGBs = 89.6;   // dual-channel DDR5-5600
    p.cpu.kernelLaunchUs = 0;
    p.cpu.busyPowerW = 253;
    p.cpu.idlePowerW = 40;

    p.gpu.name = "NVIDIA RTX 4090";
    p.gpu.isGpu = true;
    p.gpu.peakGflopsF32 = 82600;
    p.gpu.peakGflopsTf32 = 82600;  // Ada TF32 tensor rate ~ FP32 rate x2
    p.gpu.peakGflopsF16 = 330000;
    p.gpu.peakTopsI8 = 660;
    p.gpu.memBwGBs = 1008;
    p.gpu.kernelLaunchUs = 6.0;
    p.gpu.busyPowerW = 450;
    p.gpu.idlePowerW = 25;

    p.pcieGBs = 24.0;
    p.pcieLatencyUs = 8.0;
    return p;
}

PlatformSpec
platformById(const std::string &id)
{
    if (id == "A" || id == "a")
        return platformA();
    if (id == "B" || id == "b")
        return platformB();
    throw std::runtime_error("unknown platform id: " + id);
}

}  // namespace ngb
