#include "platform/perf_events.h"

#include <chrono>
#include <cstring>

#if defined(__linux__) && __has_include(<linux/perf_event.h>)
#define NGB_HAVE_PERF_EVENT 1
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#else
#define NGB_HAVE_PERF_EVENT 0
#endif

#if defined(__linux__)
#include <dirent.h>

#include <cstdio>
#include <cstdlib>
#endif

namespace ngb {
namespace perf {

bool
parseGroupRead(const uint64_t *words, size_t nwords, size_t expect,
               CounterValues *out)
{
    *out = CounterValues{};
    if (words == nullptr || nwords < 3)
        return false;
    uint64_t nr = words[0];
    // The header must describe exactly the buffer handed to us, and
    // we never map more values than the group was opened with.
    if (nwords != 3 + nr || nr > expect)
        return false;
    out->timeEnabledNs = words[1];
    out->timeRunningNs = words[2];
    uint64_t *slot[4] = {&out->cycles, &out->instructions,
                         &out->cacheMisses, &out->branchMisses};
    for (uint64_t i = 0; i < nr && i < 4; ++i)
        *slot[i] = words[3 + i];
    out->measured = nr > 0;
    return true;
}

namespace {

uint64_t
monotonicNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

#if NGB_HAVE_PERF_EVENT

int
openCounter(uint32_t type, uint64_t config, int groupFd)
{
    perf_event_attr attr;
    std::memset(&attr, 0, sizeof(attr));
    attr.type = type;
    attr.size = sizeof(attr);
    attr.config = config;
    attr.disabled = groupFd < 0 ? 1 : 0;  // leader starts the group
    // User-space only: works at perf_event_paranoid <= 2 (the common
    // non-hardened default) without CAP_PERFMON.
    attr.exclude_kernel = 1;
    attr.exclude_hv = 1;
    attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_TOTAL_TIME_ENABLED |
                       PERF_FORMAT_TOTAL_TIME_RUNNING;
    return static_cast<int>(syscall(__NR_perf_event_open, &attr,
                                    /*pid=*/0, /*cpu=*/-1, groupFd,
                                    /*flags=*/0));
}

std::string
openErrorDetail(int err)
{
    std::string msg = std::string("perf_event_open: ") +
                      std::strerror(err);
    if (err == EACCES || err == EPERM)
        msg += " (perf_event_paranoid too high? need <= 2, or "
               "CAP_PERFMON)";
    else if (err == ENOSYS)
        msg += " (syscall unavailable — seccomp/container?)";
    else if (err == ENOENT)
        msg += " (event unsupported on this PMU)";
    return msg;
}

#endif  // NGB_HAVE_PERF_EVENT

}  // namespace

PerfGroup::PerfGroup()
{
    open();
}

PerfGroup::PerfGroup(bool forceFallback)
{
    if (forceFallback)
        detail_ = "fallback forced (test)";
    else
        open();
}

PerfGroup::~PerfGroup()
{
    closeAll();
}

void
PerfGroup::open()
{
#if NGB_HAVE_PERF_EVENT
    fd_ = openCounter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES, -1);
    if (fd_ < 0) {
        detail_ = openErrorDetail(errno);
        return;
    }
    nCounters_ = 1;
    // Siblings in CounterValues order. A PMU short on programmable
    // counters (or missing an event) just yields a smaller group —
    // cycles+instructions still give IPC; misses stay "unavailable".
    const uint64_t configs[3] = {PERF_COUNT_HW_INSTRUCTIONS,
                                 PERF_COUNT_HW_CACHE_MISSES,
                                 PERF_COUNT_HW_BRANCH_MISSES};
    for (int i = 0; i < 3; ++i) {
        // Stop at the first failure: CounterValues maps group slots
        // positionally, so a hole would shift later counters into the
        // wrong fields.
        int fd = openCounter(PERF_TYPE_HARDWARE, configs[i], fd_);
        if (fd < 0) {
            detail_ = "partial group (" +
                      std::to_string(nCounters_) + "/4): " +
                      openErrorDetail(errno);
            break;
        }
        siblings_[i] = fd;
        ++nCounters_;
    }
    ioctl(fd_, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
    ioctl(fd_, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
#else
    detail_ = "perf_event_open not compiled in (non-Linux host)";
#endif
}

void
PerfGroup::closeAll()
{
#if NGB_HAVE_PERF_EVENT
    for (int i = 0; i < 3; ++i)
        if (siblings_[i] >= 0)
            ::close(siblings_[i]);
    if (fd_ >= 0)
        ::close(fd_);
#endif
    fd_ = -1;
    siblings_[0] = siblings_[1] = siblings_[2] = -1;
    nCounters_ = 0;
}

CounterValues
PerfGroup::read() const
{
    CounterValues v;
#if NGB_HAVE_PERF_EVENT
    if (fd_ >= 0) {
        // [nr, time_enabled, time_running, v0..v3]
        uint64_t buf[3 + 4] = {};
        ssize_t n = ::read(fd_, buf, sizeof(buf));
        if (n >= 0 &&
            parseGroupRead(buf, static_cast<size_t>(n) / sizeof(uint64_t),
                           nCounters_, &v))
            return v;
        v = CounterValues{};  // torn read: degrade this sample
    }
#endif
    v.timeEnabledNs = monotonicNs();
    v.timeRunningNs = v.timeEnabledNs;
    v.measured = false;
    return v;
}

const PerfStatus &
perfStatus()
{
    static const PerfStatus status = [] {
        PerfStatus s;
        PerfGroup probe;
        s.available = probe.available();
        s.counters = probe.counters();
        s.detail = probe.available()
                       ? (probe.detail().empty() ? "hardware counters"
                                                 : probe.detail())
                       : probe.detail();
        return s;
    }();
    return status;
}

RaplReading
readRaplJoules()
{
    RaplReading r;
#if defined(__linux__)
    // Top-level package domains only (intel-rapl:N); subdomains
    // (intel-rapl:N:M) would double-count their parent package.
    DIR *dir = opendir("/sys/class/powercap");
    if (dir == nullptr)
        return r;
    while (dirent *e = readdir(dir)) {
        const char *name = e->d_name;
        if (std::strncmp(name, "intel-rapl:", 11) != 0 ||
            std::strchr(name + 11, ':') != nullptr)
            continue;
        std::string path = std::string("/sys/class/powercap/") + name +
                           "/energy_uj";
        std::FILE *f = std::fopen(path.c_str(), "r");
        if (f == nullptr)
            continue;
        unsigned long long uj = 0;
        if (std::fscanf(f, "%llu", &uj) == 1) {
            r.joules += static_cast<double>(uj) * 1e-6;
            ++r.domains;
        }
        std::fclose(f);
    }
    closedir(dir);
    r.ok = r.domains > 0;
#endif
    return r;
}

}  // namespace perf
}  // namespace ngb
