#include "platform/cpu_features.h"

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <stdexcept>

#if defined(__x86_64__) || defined(_M_X64)
#include <cpuid.h>
#define NGB_X86 1
#endif

#if defined(__aarch64__) && defined(__linux__)
#include <sys/auxv.h>
#define NGB_AARCH64_LINUX 1
#endif

#include "platform/simd.h"

namespace ngb {
namespace platform {

namespace {

#ifdef NGB_X86

struct X86Features {
    bool avx2 = false;
    bool avx512 = false;
    bool vnni = false;
    std::string tag = "x86_64";
};

/** xgetbv(0): which register states the OS saves/restores. */
uint64_t
readXcr0()
{
    uint32_t eax = 0, edx = 0;
    __asm__ volatile("xgetbv" : "=a"(eax), "=d"(edx) : "c"(0));
    return (static_cast<uint64_t>(edx) << 32) | eax;
}

X86Features
detectX86()
{
    X86Features f;
    unsigned eax, ebx, ecx, edx;
    if (!__get_cpuid(0, &eax, &ebx, &ecx, &edx))
        return f;
    unsigned maxLeaf = eax;
    {
        char vendor[13] = {};
        std::memcpy(vendor + 0, &ebx, 4);
        std::memcpy(vendor + 4, &edx, 4);
        std::memcpy(vendor + 8, &ecx, 4);
        f.tag = vendor;
    }
    if (!__get_cpuid(1, &eax, &ebx, &ecx, &edx))
        return f;
    f.tag += "-fam" + std::to_string((eax >> 8) & 0xf) + "-mod" +
             std::to_string(((eax >> 4) & 0xf) | ((eax >> 12) & 0xf0));
    bool osxsave = ecx & (1u << 27);
    bool avx = ecx & (1u << 28);
    bool fma = ecx & (1u << 12);
    if (!(osxsave && avx) || maxLeaf < 7)
        return f;
    uint64_t xcr0 = readXcr0();
    bool ymmOs = (xcr0 & 0x6) == 0x6;          // XMM+YMM state saved
    bool zmmOs = (xcr0 & 0xe6) == 0xe6;        // + opmask, ZMM state
    unsigned b7, c7, d7, a7;
    __cpuid_count(7, 0, a7, b7, c7, d7);
    f.avx2 = ymmOs && fma && (b7 & (1u << 5));
    bool f512 = b7 & (1u << 16), bw = b7 & (1u << 30);
    bool vl = b7 & (1u << 31), dq = b7 & (1u << 17);
    f.avx512 = zmmOs && f.avx2 && f512 && bw && vl && dq;
    f.vnni = f.avx512 && (c7 & (1u << 11));
    return f;
}

const X86Features &
x86Features()
{
    static const X86Features f = detectX86();
    return f;
}

#endif  // NGB_X86

/** Active-level override state, guarded for the tests that flip it. */
std::mutex gIsaMutex;
bool gHaveOverride = false;
IsaLevel gOverride = IsaLevel::Scalar;

/** Parse + clamp the ambient $NGB_ISA once. */
void
applyEnvOverrideOnce()
{
    static std::once_flag once;
    std::call_once(once, [] {
        const char *env = std::getenv("NGB_ISA");
        if (!env || !*env)
            return;
        IsaLevel want;
        try {
            want = isaFromName(env);
        } catch (const std::exception &e) {
            std::fprintf(stderr, "NGB_ISA: %s (ignored)\n", e.what());
            return;
        }
        IsaLevel best = detectIsa();
        if (want > best) {
            std::fprintf(stderr,
                         "NGB_ISA=%s exceeds host/build support; "
                         "clamping to %s\n",
                         env, isaName(best));
            want = best;
        }
        gHaveOverride = true;
        gOverride = want;
    });
}

}  // namespace

const char *
isaName(IsaLevel level)
{
    switch (level) {
    case IsaLevel::Scalar: return "scalar";
    case IsaLevel::Neon: return "neon";
    case IsaLevel::Avx2: return "avx2";
    case IsaLevel::Avx512: return "avx512";
    }
    return "scalar";
}

IsaLevel
isaFromName(const std::string &name)
{
    if (name == "auto")
        return detectIsa();
    if (name == "scalar")
        return IsaLevel::Scalar;
    if (name == "neon")
        return IsaLevel::Neon;
    if (name == "avx2")
        return IsaLevel::Avx2;
    if (name == "avx512")
        return IsaLevel::Avx512;
    throw std::runtime_error(
        "unknown ISA level '" + name +
        "' (known: auto, scalar, neon, avx2, avx512)");
}

IsaLevel
detectHardwareIsa()
{
#ifdef NGB_X86
    if (x86Features().avx512)
        return IsaLevel::Avx512;
    if (x86Features().avx2)
        return IsaLevel::Avx2;
    return IsaLevel::Scalar;
#elif defined(__aarch64__)
    // aarch64 baseline mandates ASIMD; getauxval confirms on Linux.
#ifdef NGB_AARCH64_LINUX
    return (getauxval(AT_HWCAP) & (1 << 1) /* HWCAP_ASIMD */)
               ? IsaLevel::Neon
               : IsaLevel::Scalar;
#else
    return IsaLevel::Neon;
#endif
#else
    return IsaLevel::Scalar;
#endif
}

IsaLevel
detectIsa()
{
    static const IsaLevel level = [] {
        IsaLevel hw = detectHardwareIsa();
        // Clamp to the levels whose kernels were compiled in; a build
        // without the per-ISA flags degrades cleanly to Scalar (the
        // simd backend then registers nothing and falls back).
        while (hw != IsaLevel::Scalar && !simd::simdOpsFor(hw)) {
            if (hw == IsaLevel::Neon)
                hw = IsaLevel::Scalar;
            else
                hw = static_cast<IsaLevel>(static_cast<int>(hw) - 1);
        }
        return hw;
    }();
    return level;
}

bool
hasVnni()
{
#ifdef NGB_X86
    return x86Features().vnni;
#else
    return false;
#endif
}

bool
hasDotprod()
{
#ifdef NGB_AARCH64_LINUX
    return getauxval(AT_HWCAP) & (1 << 20) /* HWCAP_ASIMDDP */;
#elif defined(__ARM_FEATURE_DOTPROD)
    return true;
#else
    return false;
#endif
}

IsaLevel
activeIsa()
{
    applyEnvOverrideOnce();
    std::lock_guard<std::mutex> lock(gIsaMutex);
    return gHaveOverride ? gOverride : detectIsa();
}

void
setActiveIsa(IsaLevel level)
{
    if (level > detectIsa())
        throw std::runtime_error(
            std::string("--isa ") + isaName(level) +
            " not supported on this host/build (best: " +
            isaName(detectIsa()) + ")");
    applyEnvOverrideOnce();
    std::lock_guard<std::mutex> lock(gIsaMutex);
    gHaveOverride = true;
    gOverride = level;
}

void
setActiveIsaName(const std::string &name)
{
    if (name == "auto") {
        applyEnvOverrideOnce();
        std::lock_guard<std::mutex> lock(gIsaMutex);
        gHaveOverride = false;
        return;
    }
    setActiveIsa(isaFromName(name));
}

std::vector<IsaLevel>
supportedIsaLevels()
{
    std::vector<IsaLevel> levels{IsaLevel::Scalar};
    IsaLevel best = detectIsa();
    if (best == IsaLevel::Neon)
        levels.push_back(IsaLevel::Neon);
    if (best >= IsaLevel::Avx2)
        levels.push_back(IsaLevel::Avx2);
    if (best >= IsaLevel::Avx512)
        levels.push_back(IsaLevel::Avx512);
    return levels;
}

const std::string &
machineTag()
{
    static const std::string tag = [] {
#ifdef NGB_X86
        return x86Features().tag;
#elif defined(__aarch64__)
        return std::string("aarch64");
#else
        return std::string("generic");
#endif
    }();
    return tag;
}

}  // namespace platform
}  // namespace ngb
