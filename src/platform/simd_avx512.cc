#include "platform/simd.h"

/**
 * @file
 * AVX-512 instantiation of the shared SIMD kernels (16-wide f32) plus
 * two int8 GEMMs: the VNNI dot-product kernel (vpdpbusd over the
 * 4-deep interleaved weight layout) and a widening fallback for
 * AVX-512 hardware without VNNI. Compiled with the -mavx512* flags
 * via per-source properties in CMakeLists.txt.
 *
 * vpdpbusd is unsigned x signed: the kernel biases each activation
 * byte by +128 (XOR 0x80) and subtracts the per-column compensation
 * 128 * sum_k B[k][n] afterwards — i32 arithmetic throughout, so the
 * result is exactly the signed i8 x i8 accumulator every other int8
 * kernel produces (the PR 8 bit-identity contract holds on VNNI).
 */

#if defined(__AVX512F__) && defined(__AVX512BW__) && \
    defined(__AVX512VL__) && defined(__AVX512DQ__)

#include <immintrin.h>

#include <cstring>

#include "platform/simd_kernels_inl.h"

namespace ngb {
namespace simd {
namespace {

struct V16 {
    static constexpr int W = 16;
    using R = __m512;
    static R load(const float *p) { return _mm512_loadu_ps(p); }
    static void store(float *p, R v) { _mm512_storeu_ps(p, v); }
    static R broadcast(float v) { return _mm512_set1_ps(v); }
    static R zero() { return _mm512_setzero_ps(); }
    static R add(R a, R b) { return _mm512_add_ps(a, b); }
    static R sub(R a, R b) { return _mm512_sub_ps(a, b); }
    static R mul(R a, R b) { return _mm512_mul_ps(a, b); }
    static R div(R a, R b) { return _mm512_div_ps(a, b); }
    static R max(R a, R b) { return _mm512_max_ps(a, b); }
    static R fma(R a, R b, R c) { return _mm512_fmadd_ps(a, b, c); }
    static float reduceAdd(R v) { return _mm512_reduce_add_ps(v); }
};

/** Scalar reference walk of the dot-interleaved layout (N tails). */
int32_t
dotInterleavedScalar(const int8_t *A, const int8_t *B,
                     const int8_t *Btail, int64_t m, int64_t j,
                     int64_t K, int64_t K4, int64_t N)
{
    int32_t acc = 0;
    for (int64_t g = 0; g < K4 / 4; ++g)
        for (int t = 0; t < 4; ++t)
            acc += static_cast<int32_t>(A[m * K + 4 * g + t]) *
                   static_cast<int32_t>(B[(g * N + j) * 4 + t]);
    for (int64_t k = K4; k < K; ++k)
        acc += static_cast<int32_t>(A[m * K + k]) *
               static_cast<int32_t>(Btail[(k - K4) * N + j]);
    return acc;
}

#ifdef __AVX512VNNI__

/** VNNI int8 GEMM over the packDotInterleave layout. */
void
gemmI8Vnni(const int8_t *A, const int8_t *B, int32_t *C, int64_t M,
           int64_t K, int64_t N, const TileConfig &tile)
{
    const int mr0 = tile.mr > 0 ? (tile.mr < 8 ? tile.mr : 8) : 4;
    const int64_t K4 = K & ~int64_t(3);
    const int64_t groups = K4 / 4;
    const int8_t *Btail = B + K4 * N;
    const __m512i ones = _mm512_set1_epi8(1);
    int64_t j = 0;
    for (; j + 16 <= N; j += 16) {
        // comp[n] = 128 * sum_{k<K4} B[k][n]: undoes the +128 bias the
        // activation bytes carry through the unsigned dpbusd operand.
        __m512i comp = _mm512_setzero_si512();
        for (int64_t g = 0; g < groups; ++g)
            comp = _mm512_dpbusd_epi32(
                comp, ones,
                _mm512_loadu_si512(B + (g * N + j) * 4));
        comp = _mm512_slli_epi32(comp, 7);
        int64_t m0 = 0;
        while (m0 < M) {
            const int rows = static_cast<int>(
                M - m0 < static_cast<int64_t>(mr0) ? M - m0 : mr0);
            __m512i acc[8];
            for (int r = 0; r < rows; ++r)
                acc[r] = _mm512_setzero_si512();
            for (int64_t g = 0; g < groups; ++g) {
                const __m512i bq =
                    _mm512_loadu_si512(B + (g * N + j) * 4);
                for (int r = 0; r < rows; ++r) {
                    uint32_t aw;
                    std::memcpy(&aw, A + (m0 + r) * K + g * 4, 4);
                    const __m512i av = _mm512_set1_epi32(
                        static_cast<int32_t>(aw ^ 0x80808080u));
                    acc[r] = _mm512_dpbusd_epi32(acc[r], av, bq);
                }
            }
            for (int r = 0; r < rows; ++r)
                acc[r] = _mm512_sub_epi32(acc[r], comp);
            for (int64_t k = K4; k < K; ++k) {
                const __m512i bv =
                    _mm512_cvtepi8_epi32(_mm_loadu_si128(
                        reinterpret_cast<const __m128i *>(
                            Btail + (k - K4) * N + j)));
                for (int r = 0; r < rows; ++r) {
                    const __m512i av = _mm512_set1_epi32(
                        static_cast<int32_t>(A[(m0 + r) * K + k]));
                    acc[r] = _mm512_add_epi32(
                        acc[r], _mm512_mullo_epi32(av, bv));
                }
            }
            for (int r = 0; r < rows; ++r)
                _mm512_storeu_si512(C + (m0 + r) * N + j, acc[r]);
            m0 += rows;
        }
    }
    for (; j < N; ++j)
        for (int64_t m = 0; m < M; ++m)
            C[m * N + j] =
                dotInterleavedScalar(A, B, Btail, m, j, K, K4, N);
}

#endif  // __AVX512VNNI__

/** Widening int8 GEMM over plain [K,N] (AVX-512 without VNNI). */
void
gemmI8Widen512(const int8_t *A, const int8_t *B, int32_t *C, int64_t M,
               int64_t K, int64_t N, const TileConfig &tile)
{
    const int mr = tile.mr > 0 ? (tile.mr < 8 ? tile.mr : 8) : 4;
    int64_t m0 = 0;
    while (m0 < M) {
        const int rows = static_cast<int>(
            M - m0 < static_cast<int64_t>(mr) ? M - m0 : mr);
        int64_t j = 0;
        for (; j + 16 <= N; j += 16) {
            __m512i acc[8];
            for (int r = 0; r < rows; ++r)
                acc[r] = _mm512_setzero_si512();
            for (int64_t k = 0; k < K; ++k) {
                const __m512i bv =
                    _mm512_cvtepi8_epi32(_mm_loadu_si128(
                        reinterpret_cast<const __m128i *>(B + k * N +
                                                          j)));
                for (int r = 0; r < rows; ++r) {
                    const __m512i av = _mm512_set1_epi32(
                        static_cast<int32_t>(A[(m0 + r) * K + k]));
                    acc[r] = _mm512_add_epi32(
                        acc[r], _mm512_mullo_epi32(av, bv));
                }
            }
            for (int r = 0; r < rows; ++r)
                _mm512_storeu_si512(C + (m0 + r) * N + j, acc[r]);
        }
        for (; j < N; ++j)
            for (int r = 0; r < rows; ++r) {
                int32_t acc = 0;
                for (int64_t k = 0; k < K; ++k)
                    acc += static_cast<int32_t>(A[(m0 + r) * K + k]) *
                           static_cast<int32_t>(B[k * N + j]);
                C[(m0 + r) * N + j] = acc;
            }
        m0 += rows;
    }
}

const SimdOps kOpsPlain = {
    "avx512",
    platform::IsaLevel::Avx512,
    V16::W,
    false,
    &inl::gemmF32Tmpl<V16>,
    &inl::gemmF32StridedTmpl<V16>,
    &gemmI8Widen512,
    &inl::reluTmpl<V16>,
    &inl::addScalarTmpl<V16>,
    &inl::mulScalarTmpl<V16>,
    &inl::binaryOpTmpl<V16>,
    &inl::layerNormRowsTmpl<V16>,
};

#ifdef __AVX512VNNI__
const SimdOps kOpsVnni = {
    "avx512",
    platform::IsaLevel::Avx512,
    V16::W,
    true,
    &inl::gemmF32Tmpl<V16>,
    &inl::gemmF32StridedTmpl<V16>,
    &gemmI8Vnni,
    &inl::reluTmpl<V16>,
    &inl::addScalarTmpl<V16>,
    &inl::mulScalarTmpl<V16>,
    &inl::binaryOpTmpl<V16>,
    &inl::layerNormRowsTmpl<V16>,
};
#endif

}  // namespace

const SimdOps *
simdOpsAvx512()
{
#ifdef __AVX512VNNI__
    if (platform::hasVnni())
        return &kOpsVnni;
#endif
    return &kOpsPlain;
}

}  // namespace simd
}  // namespace ngb

#else  // AVX-512 not compiled in

namespace ngb {
namespace simd {

const SimdOps *
simdOpsAvx512()
{
    return nullptr;
}

}  // namespace simd
}  // namespace ngb

#endif
