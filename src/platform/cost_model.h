#ifndef NGB_PLATFORM_COST_MODEL_H
#define NGB_PLATFORM_COST_MODEL_H

#include <vector>

#include "platform/device_spec.h"
#include "platform/plan.h"

namespace ngb {

/**
 * Tunable constants of the analytical cost model. Defaults are
 * calibrated so the GEMM/non-GEMM latency *shares* reproduce the
 * paper's Figures 1 and 6 (see EXPERIMENTS.md); individual knobs are
 * exposed for the ablation benchmarks.
 */
struct CostModelParams {
    /** Fraction of peak GEMM rate real kernels reach. */
    double gemmEffGpu = 0.45;
    double gemmEffCpu = 0.35;  // eager CPU GEMMs sit far from peak

    /**
     * GEMM kernels ramp toward peak with size: a kernel of F flops
     * reaches peak * F / (F + gemmRampFlops) utilization (tiny Swin
     * window GEMMs run at a few percent of tensor-core peak; ViT-H
     * projections approach it).
     */
    double gemmRampFlopsGpu = 2e9;
    double gemmRampFlopsCpu = 2e7;

    /**
     * Non-GEMM kernels run on scalar units with irregular access;
     * fraction of the F32 peak they achieve.
     */
    double nonGemmComputeEffGpu = 0.04;
    double nonGemmComputeEffCpu = 0.50;

    /** Achievable fraction of peak DRAM bandwidth. */
    double bwEffGemm = 0.85;
    double bwEffNonGemm = 0.60;
    /** CPU streaming kernels approach peak DRAM bandwidth. */
    double bwEffCpu = 0.80;

    /** Eager-framework host dispatch per launched kernel, us. */
    double hostDispatchUs = 12.0;
    /** Host cost of a metadata-only (zero-copy) layout op, us. */
    double zeroCopyUs = 2.5;
    /** Extra host dispatch for dynamic ops (NMS-style sync), us. */
    double dynamicSyncUs = 30.0;

    /** Multiplier a fused kernel's launch count is reduced to. */
    double fusedDispatchUs = 3.0;

    /**
     * Model asynchronous dispatch: eager frameworks enqueue GPU
     * kernels ahead of execution, so wall-clock is the *max* of the
     * host-dispatch timeline and the device timeline rather than the
     * sum — until a sync point (NMS, dynamic index) drains the queue.
     * Off by default: the paper's per-operator breakdowns attribute
     * wall time serially, which the calibration matches.
     */
    bool asyncDispatch = false;
};

/** Priced timing of one kernel group. */
struct GroupTiming {
    double hostUs = 0;      ///< framework dispatch on the host CPU
    double deviceUs = 0;    ///< kernel execution on the placed device
    double transferUs = 0;  ///< PCIe traffic for CPU fallback
    bool onGpu = false;

    double totalUs() const { return hostUs + deviceUs + transferUs; }
};

/**
 * Roofline latency/energy model for an ExecutionPlan on a platform.
 *
 * Per kernel group:
 *   device time = launches * launch_overhead
 *               + max(flops / effective_rate, bytes / effective_bw)
 *   host time   = launches * dispatch (or the zero-copy constant)
 * where the effective rate depends on operator class (GEMM kernels use
 * tensor-core rates; non-GEMM kernels use derated scalar rates) and
 * precision, reproducing the Amdahl's-law shift the paper studies.
 */
class CostModel
{
  public:
    explicit CostModel(PlatformSpec platform,
                       CostModelParams params = CostModelParams())
        : platform_(std::move(platform)), params_(params)
    {
    }

    /** Price one kernel group. */
    GroupTiming price(const KernelGroup &g) const;

    /** Price every group of a plan, in order. */
    std::vector<GroupTiming> priceAll(const ExecutionPlan &plan) const;

    /** End-to-end latency of a plan, us. With asyncDispatch, host and
     *  device timelines overlap between synchronization points. */
    double latencyUs(const ExecutionPlan &plan) const;

    /**
     * Latency of the plan's dependency-critical path, us: the longest
     * chain of kernel groups linked by producer/consumer edges, each
     * weighted with its priced time. This is the floor an infinitely
     * wide parallel runtime could reach (the wavefront scheduler's
     * Amdahl bound); the serial sum latencyUs() is its ceiling.
     */
    double criticalPathUs(const ExecutionPlan &plan) const;

    /** As above, reusing timings already computed by priceAll(). */
    double criticalPathUs(const ExecutionPlan &plan,
                          const std::vector<GroupTiming> &timings) const;

    const PlatformSpec &platform() const { return platform_; }
    const CostModelParams &params() const { return params_; }
    CostModelParams &params() { return params_; }

  private:
    PlatformSpec platform_;
    CostModelParams params_;
};

/**
 * Energy estimate for a priced plan (Figure 5): busy power on the
 * executing device over its busy time plus idle power over the rest
 * of the end-to-end window.
 */
struct EnergyBreakdown {
    double gpuJoules = 0;
    double cpuJoules = 0;

    double totalJoules() const { return gpuJoules + cpuJoules; }
};

EnergyBreakdown energyOf(const ExecutionPlan &plan,
                         const std::vector<GroupTiming> &timings,
                         const PlatformSpec &platform);

}  // namespace ngb

#endif  // NGB_PLATFORM_COST_MODEL_H
