#ifndef NGB_PLATFORM_CPU_FEATURES_H
#define NGB_PLATFORM_CPU_FEATURES_H

#include <string>
#include <vector>

/**
 * @file
 * Runtime CPU-feature detection and the active-ISA dispatch level.
 *
 * The simd backend compiles one translation unit per ISA (see
 * CMakeLists.txt: per-source -mavx2 / -mavx512 / -march flags) and
 * picks
 * between them at runtime: detectIsa() interrogates the hardware
 * (cpuid on x86, getauxval/compile flags on aarch64), the build
 * clamps that to the levels actually compiled in, and activeIsa()
 * applies the user's override ($NGB_ISA or --isa) on top. Everything
 * downstream — kernel registration, tuning-cache keys, EngineKey —
 * reads activeIsa(), so one knob moves the whole stack.
 *
 * Override semantics: forcing a LOWER level than the host supports is
 * always allowed (that is how CI runs the forced-scalar dispatch leg
 * on AVX-512 runners); forcing a HIGHER level than the host (or the
 * build) supports is a loud error from setActiveIsa, and a clamp with
 * a stderr warning when it comes from the ambient $NGB_ISA.
 */

namespace ngb {
namespace platform {

/**
 * Vector dispatch levels, ordered: a host that supports level L
 * supports every numerically-lower level too (Neon and Avx2 are
 * mutually exclusive in practice, but each degrades to Scalar).
 */
enum class IsaLevel : int {
    Scalar = 0,  ///< no explicit SIMD: the simd backend registers
                 ///< nothing and every op falls through the chain
    Neon = 1,    ///< aarch64 ASIMD (+ sdot when the CPU has DOTPROD)
    Avx2 = 2,    ///< x86 AVX2 + FMA, 8-wide f32
    Avx512 = 3,  ///< x86 AVX-512 F/BW/VL/DQ, 16-wide f32 (+ VNNI)
};

/** Canonical lower-case name ("scalar", "neon", "avx2", "avx512"). */
const char *isaName(IsaLevel level);

/** Parse a name (or "auto" -> detected best); throws listing the
 *  known names on anything else. */
IsaLevel isaFromName(const std::string &name);

/** Best level the HARDWARE supports (cached; ignores build flags). */
IsaLevel detectHardwareIsa();

/**
 * Best level this process can dispatch to: hardware support clamped
 * to the levels whose translation units were compiled in.
 */
IsaLevel detectIsa();

/** True when the hardware has AVX-512 VNNI (vpdpbusd) — the int8
 *  dot-product unit the quantized GEMM path uses at Avx512 level. */
bool hasVnni();

/** True when the hardware has aarch64 DOTPROD (sdot). */
bool hasDotprod();

/**
 * The dispatch level in effect: the $NGB_ISA override (validated and
 * clamped to detectIsa() with a stderr warning on over-ask) when set,
 * else detectIsa().
 */
IsaLevel activeIsa();

/**
 * Force the dispatch level for this process (the --isa flag and the
 * per-level tests). Throws when @p level exceeds detectIsa() — a
 * forced level must actually run on this host/build.
 */
void setActiveIsa(IsaLevel level);

/** setActiveIsa(isaFromName(name)); "auto" restores detection. */
void setActiveIsaName(const std::string &name);

/** Levels this host/build can dispatch to, ascending (always starts
 *  with Scalar). The per-level differential tests sweep this. */
std::vector<IsaLevel> supportedIsaLevels();

/**
 * A stable identity string for the machine's tuning-relevant
 * microarchitecture (x86 vendor+family/model or a generic tag), used
 * by the tuning cache to invalidate entries tuned on another box.
 */
const std::string &machineTag();

}  // namespace platform
}  // namespace ngb

#endif  // NGB_PLATFORM_CPU_FEATURES_H
