#include "platform/simd.h"

/**
 * @file
 * AVX2+FMA instantiation of the shared SIMD kernels (8-wide f32) plus
 * a widening int8 GEMM (i8 -> i32 via cvtepi8_epi32 + mullo, exact).
 * Compiled with -mavx2 -mfma via per-source flags in CMakeLists.txt;
 * without them this TU is the nullptr stub and dispatch clamps down.
 */

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include "platform/simd_kernels_inl.h"

namespace ngb {
namespace simd {
namespace {

struct V8 {
    static constexpr int W = 8;
    using R = __m256;
    static R load(const float *p) { return _mm256_loadu_ps(p); }
    static void store(float *p, R v) { _mm256_storeu_ps(p, v); }
    static R broadcast(float v) { return _mm256_set1_ps(v); }
    static R zero() { return _mm256_setzero_ps(); }
    static R add(R a, R b) { return _mm256_add_ps(a, b); }
    static R sub(R a, R b) { return _mm256_sub_ps(a, b); }
    static R mul(R a, R b) { return _mm256_mul_ps(a, b); }
    static R div(R a, R b) { return _mm256_div_ps(a, b); }
    static R max(R a, R b) { return _mm256_max_ps(a, b); }
    static R fma(R a, R b, R c) { return _mm256_fmadd_ps(a, b, c); }
    static float reduceAdd(R v)
    {
        __m128 lo = _mm256_castps256_ps128(v);
        __m128 hi = _mm256_extractf128_ps(v, 1);
        __m128 s = _mm_add_ps(lo, hi);
        s = _mm_add_ps(s, _mm_movehl_ps(s, s));
        s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 1));
        return _mm_cvtss_f32(s);
    }
};

/**
 * Widening int8 GEMM over the plain [K,N] layout: 8 columns per
 * iteration, broadcast-A times sign-extended B, exact i32 adds — the
 * same accumulators as the scalar int8 kernels in any order.
 */
void
gemmI8Avx2(const int8_t *A, const int8_t *B, int32_t *C, int64_t M,
           int64_t K, int64_t N, const TileConfig &tile)
{
    const int mr = tile.mr > 0 ? tile.mr : 4;
    int64_t m0 = 0;
    while (m0 < M) {
        const int rows = static_cast<int>(
            M - m0 < static_cast<int64_t>(mr) ? M - m0 : mr);
        int64_t j = 0;
        for (; j + 8 <= N; j += 8) {
            __m256i acc[8];
            for (int r = 0; r < rows; ++r)
                acc[r] = _mm256_setzero_si256();
            for (int64_t k = 0; k < K; ++k) {
                __m128i b8 = _mm_loadl_epi64(
                    reinterpret_cast<const __m128i *>(B + k * N + j));
                __m256i bv = _mm256_cvtepi8_epi32(b8);
                for (int r = 0; r < rows; ++r) {
                    __m256i av = _mm256_set1_epi32(
                        static_cast<int32_t>(A[(m0 + r) * K + k]));
                    acc[r] = _mm256_add_epi32(
                        acc[r], _mm256_mullo_epi32(av, bv));
                }
            }
            for (int r = 0; r < rows; ++r)
                _mm256_storeu_si256(
                    reinterpret_cast<__m256i *>(C + (m0 + r) * N + j),
                    acc[r]);
        }
        for (; j < N; ++j)
            for (int r = 0; r < rows; ++r) {
                int32_t acc = 0;
                for (int64_t k = 0; k < K; ++k)
                    acc += static_cast<int32_t>(A[(m0 + r) * K + k]) *
                           static_cast<int32_t>(B[k * N + j]);
                C[(m0 + r) * N + j] = acc;
            }
        m0 += rows;
    }
}

const SimdOps kOpsAvx2 = {
    "avx2",
    platform::IsaLevel::Avx2,
    V8::W,
    false,
    &inl::gemmF32Tmpl<V8>,
    &inl::gemmF32StridedTmpl<V8>,
    &gemmI8Avx2,
    &inl::reluTmpl<V8>,
    &inl::addScalarTmpl<V8>,
    &inl::mulScalarTmpl<V8>,
    &inl::binaryOpTmpl<V8>,
    &inl::layerNormRowsTmpl<V8>,
};

}  // namespace

const SimdOps *
simdOpsAvx2()
{
    return &kOpsAvx2;
}

}  // namespace simd
}  // namespace ngb

#else  // !(__AVX2__ && __FMA__)

namespace ngb {
namespace simd {

const SimdOps *
simdOpsAvx2()
{
    return nullptr;
}

}  // namespace simd
}  // namespace ngb

#endif
