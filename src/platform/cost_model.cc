#include "platform/cost_model.h"

#include <algorithm>
#include <cmath>

namespace ngb {

GroupTiming
CostModel::price(const KernelGroup &g) const
{
    GroupTiming t;
    t.onGpu = g.onGpu;

    if (g.zeroCopy) {
        // Metadata-only layout update: a host library call, no kernel.
        t.hostUs = params_.zeroCopyUs * g.kernelCount;
        return t;
    }

    const DeviceSpec &dev = g.onGpu ? platform_.gpu : platform_.cpu;
    bool gemm = g.category == OpCategory::Gemm;

    // Effective compute rate in GFLOP/s.
    double rate;
    if (gemm) {
        double eff = dev.isGpu ? params_.gemmEffGpu : params_.gemmEffCpu;
        double ramp = dev.isGpu ? params_.gemmRampFlopsGpu
                                : params_.gemmRampFlopsCpu;
        double util = g.flops / (g.flops + ramp);
        rate = dev.gemmPeakGflops(g.f16, g.i8) * eff * util;
    } else {
        double eff = dev.isGpu ? params_.nonGemmComputeEffGpu
                               : params_.nonGemmComputeEffCpu;
        rate = dev.peakGflopsF32 * eff;
    }
    rate *= g.rateScale;

    // Effective bandwidth in GB/s. Composite eager operators re-read
    // and re-write the activation once per primitive kernel.
    double bw_eff = dev.isGpu
                        ? (gemm ? params_.bwEffGemm : params_.bwEffNonGemm)
                        : params_.bwEffCpu;
    double bw = dev.memBwGBs * bw_eff;
    double act_bytes = (g.bytesIn + g.bytesOut) *
                       std::max(1, g.bigKernels);
    double bytes = act_bytes + g.bytesParam;

    double compute_us = g.flops / rate * 1e-3;       // flops/GFLOPs = ns
    double mem_us = bytes / bw * 1e-3;
    double exec_us = std::max(compute_us, mem_us);

    double launches = std::max(1, g.kernelCount);
    if (dev.isGpu)
        t.deviceUs = exec_us + launches * dev.kernelLaunchUs;
    else
        t.deviceUs = exec_us;

    // Host-side framework dispatch. Fused kernels were compiled ahead
    // of time and dispatch once, cheaply.
    double per_launch = g.dispatchUsOverride >= 0 ? g.dispatchUsOverride
                                                  : params_.hostDispatchUs;
    double dispatch = g.fused ? params_.fusedDispatchUs
                              : per_launch * launches;
    t.hostUs = dispatch;
    if (dev.isGpu) {
        if (g.category == OpCategory::RoiSelection)
            t.hostUs += params_.dynamicSyncUs;  // NMS syncs the stream
        t.hostUs += g.hostSyncs * params_.dynamicSyncUs;
    }

    if (g.transferBytes > 0) {
        t.transferUs = g.transferBytes / platform_.pcieGBs * 1e-3 +
                       2.0 * platform_.pcieLatencyUs;
    }
    return t;
}

std::vector<GroupTiming>
CostModel::priceAll(const ExecutionPlan &plan) const
{
    std::vector<GroupTiming> out;
    out.reserve(plan.groups.size());
    for (const KernelGroup &g : plan.groups)
        out.push_back(price(g));
    return out;
}

double
CostModel::latencyUs(const ExecutionPlan &plan) const
{
    if (!params_.asyncDispatch) {
        double total = 0;
        for (const KernelGroup &g : plan.groups)
            total += price(g).totalUs();
        return total;
    }
    // Async mode: host dispatch runs ahead of the device queue; a
    // sync point (dynamic op) forces both timelines to converge.
    double host_t = 0, dev_t = 0;
    for (const KernelGroup &g : plan.groups) {
        GroupTiming t = price(g);
        host_t += t.hostUs;
        double start = std::max(dev_t, host_t);
        dev_t = start + t.deviceUs + t.transferUs;
        if (g.hostSyncs > 0 || g.category == OpCategory::RoiSelection)
            host_t = dev_t;  // queue drained
    }
    return std::max(host_t, dev_t);
}

double
CostModel::criticalPathUs(const ExecutionPlan &plan) const
{
    return criticalPathUs(plan, priceAll(plan));
}

double
CostModel::criticalPathUs(const ExecutionPlan &plan,
                          const std::vector<GroupTiming> &timings) const
{
    if (!plan.graph) {
        double total = 0;
        for (const GroupTiming &t : timings)
            total += t.totalUs();
        return total;
    }
    const Graph &g = *plan.graph;

    // Map every graph node to the kernel group that computes it.
    std::vector<int> group_of(g.size(), -1);
    for (size_t gi = 0; gi < plan.groups.size(); ++gi)
        for (int id : plan.groups[gi].nodeIds)
            group_of[static_cast<size_t>(id)] = static_cast<int>(gi);

    // Group emission order is NOT topological: fusion places a chain
    // group at its head node's position, so a producer group can be
    // emitted after its consumer. Nodes ARE topological (inputs have
    // smaller ids), so sweep nodes, folding each one's cross-group
    // inputs into its group's start time; repeat until the finish
    // times stop moving (the node order is near-topological over
    // groups, so this converges in one or two passes).
    std::vector<double> finish(plan.groups.size(), 0);
    std::vector<double> start(plan.groups.size(), 0);
    bool changed = true;
    while (changed) {
        changed = false;
        for (const Node &n : g.nodes()) {
            int gi = group_of[static_cast<size_t>(n.id)];
            if (gi < 0)
                continue;
            auto ugi = static_cast<size_t>(gi);
            for (const Value &v : n.inputs) {
                int pg = group_of[static_cast<size_t>(v.node)];
                if (pg >= 0 && pg != gi)
                    start[ugi] = std::max(
                        start[ugi], finish[static_cast<size_t>(pg)]);
            }
            double f = start[ugi] + timings[ugi].totalUs();
            if (f > finish[ugi]) {
                finish[ugi] = f;
                changed = true;
            }
        }
    }
    double path = 0;
    for (double f : finish)
        path = std::max(path, f);
    return path;
}

EnergyBreakdown
energyOf(const ExecutionPlan &plan, const std::vector<GroupTiming> &timings,
         const PlatformSpec &platform)
{
    EnergyBreakdown e;
    double total_us = 0;
    double gpu_busy_us = 0;
    double cpu_busy_us = 0;
    for (const GroupTiming &t : timings) {
        total_us += t.totalUs();
        if (t.onGpu)
            gpu_busy_us += t.deviceUs;
        else
            cpu_busy_us += t.deviceUs;
        cpu_busy_us += t.hostUs;
    }
    double sec = 1e-6;
    if (plan.gpuEnabled) {
        e.gpuJoules = gpu_busy_us * sec * platform.gpu.busyPowerW +
                      (total_us - gpu_busy_us) * sec *
                          platform.gpu.idlePowerW;
    }
    e.cpuJoules = cpu_busy_us * sec * platform.cpu.busyPowerW +
                  (total_us - cpu_busy_us) * sec * platform.cpu.idlePowerW;
    return e;
}

}  // namespace ngb
