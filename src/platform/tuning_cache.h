#ifndef NGB_PLATFORM_TUNING_CACHE_H
#define NGB_PLATFORM_TUNING_CACHE_H

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <tuple>

/**
 * @file
 * The persistent tile-size autotuner behind the simd backend.
 *
 * Every GEMM-family kernel call asks the cache which TileConfig
 * candidate to run for its (op, shape, isa) key — the same
 * "identity of a planned artifact" idea as EngineCache, one level
 * down. A hit replays the stored choice with zero measurement; a miss
 * times every candidate once (they are bit-identical, so this is a
 * pure timing decision), records the winner, and persists the whole
 * table to the JSON file $NGB_TUNE_CACHE names (atomic tmp+rename).
 * First request tunes, steady state replays, and the NEXT process
 * pointed at the same file starts warm: its stats().tuneRuns stays 0,
 * which is exactly what bench_micro_kernels --expect-warm asserts.
 *
 * Invalidation rule: the file carries the machine tag
 * (platform::machineTag()) and a format version; a file written on a
 * different microarchitecture (or an unknown version) is ignored
 * wholesale — tile choices do not transfer between machines. Entries
 * are additionally keyed by ISA name, so one file can hold tunings
 * for several dispatch levels of the same machine (the per-level test
 * sweep and the forced-scalar CI leg share a file safely).
 */

namespace ngb {
namespace simd {

/** Identity of one tuning decision: operator, problem shape, ISA, and
 *  the intra-op thread count the kernel shards across. The best tile
 *  at one thread count is not the best at another (per-worker macro
 *  tiles see different cache footprints), so entries tuned serially
 *  and entries tuned under a ParallelRegion coexist in one file. */
struct TuneKey {
    std::string op;     ///< "matmul" / "linear" / "bmm" / "int8_linear"
    std::string shape;  ///< canonical "MxKxN" string
    std::string isa;    ///< platform::isaName of the dispatch level
    int threads = 1;    ///< intra-op workers (1 = serial kernel)

    bool operator<(const TuneKey &o) const
    {
        return std::tie(op, shape, isa, threads) <
               std::tie(o.op, o.shape, o.isa, o.threads);
    }
};

struct TuneStats {
    uint64_t tuneRuns = 0;    ///< timed candidate runs this process
    uint64_t tunedKeys = 0;   ///< keys tuned (missed) this process
    uint64_t replays = 0;     ///< lookups served without measuring
    uint64_t entriesLoaded = 0;    ///< entries accepted from the file
    uint64_t entriesRejected = 0;  ///< dropped: machine/version mismatch
};

class TuningCache
{
  public:
    /** In-memory cache (no persistence) — tests and ad-hoc use. */
    TuningCache() = default;

    /** Cache backed by @p path: loads surviving entries now, rewrites
     *  the file after every newly tuned key. */
    explicit TuningCache(std::string path);

    TuningCache(const TuningCache &) = delete;
    TuningCache &operator=(const TuningCache &) = delete;

    /**
     * The candidate index to run for @p key. Replays the cached
     * choice when one exists (and still names one of @p nCandidates);
     * otherwise calls @p timeCandidate(i) for every candidate — it
     * must run the real kernel and return its best observed ns —
     * records the fastest, persists, and returns it. Thread-safe; a
     * key is tuned at most once per process.
     */
    int choose(const TuneKey &key, int nCandidates,
               const std::function<double(int)> &timeCandidate);

    bool contains(const TuneKey &key) const;
    size_t entries() const;
    TuneStats stats() const;
    const std::string &path() const { return path_; }

    /**
     * The process-wide cache: backed by $NGB_TUNE_CACHE when set,
     * else in-memory only (tuning still happens, nothing persists).
     */
    static TuningCache &process();

  private:
    struct Entry {
        int choice = 0;
        double ns = 0;
    };

    void loadLocked();
    void saveLocked() const;

    std::string path_;
    mutable std::mutex mutex_;
    std::map<TuneKey, Entry> table_;
    TuneStats stats_;
};

}  // namespace simd
}  // namespace ngb

#endif  // NGB_PLATFORM_TUNING_CACHE_H
