#ifndef NGB_PLATFORM_SIMD_KERNELS_INL_H
#define NGB_PLATFORM_SIMD_KERNELS_INL_H

#include <cmath>
#include <cstdint>

#include "platform/simd.h"

/**
 * @file
 * The shared SIMD kernel bodies: templates over a vector-register
 * concept V, included ONLY by the per-ISA translation units (each
 * compiled with its own ISA flags), so one algorithm serves AVX2,
 * AVX-512 and NEON at their native widths.
 *
 * The V concept:
 *   static constexpr int W;          // f32 lanes
 *   using R = <register type>;
 *   static R    load(const float *); // unaligned
 *   static void store(float *, R);
 *   static R    broadcast(float);
 *   static R    zero();
 *   static R    add(R, R), sub(R, R), mul(R, R), div(R, R), max(R, R);
 *   static R    fma(R a, R b, R c);  // a*b + c, single rounding
 *   static float reduceAdd(R);
 *
 * Numerics: see the contract in simd.h. Every f32 GEMM path below —
 * wide panels, single-vector columns, scalar tails — performs the
 * identical per-element sequence (k-ascending single-rounded FMA into
 * one accumulator, then one bias add), so results do not depend on
 * the tile configuration or on where an element falls relative to a
 * vector boundary.
 */

namespace ngb {
namespace simd {
namespace inl {

/**
 * One register panel: MR rows by NV vectors of C, accumulated over
 * k in [k0,k1). @p first zero-initializes the accumulators, otherwise
 * they resume from the partial sums a previous k-block stored in C;
 * @p last applies the bias on write-out.
 */
template <class V, int MR, int NV>
inline void
gemmPanel(const float *A, int64_t lda, const float *B, int64_t ldb,
          float *C, int64_t ldc, int64_t i, int64_t j, int64_t k0,
          int64_t k1, const float *bias, bool first, bool last)
{
    typename V::R acc[MR][NV];
    for (int r = 0; r < MR; ++r)
        for (int v = 0; v < NV; ++v)
            acc[r][v] = first ? V::zero()
                              : V::load(C + (i + r) * ldc + j + v * V::W);
    for (int64_t k = k0; k < k1; ++k) {
        typename V::R bv[NV];
        for (int v = 0; v < NV; ++v)
            bv[v] = V::load(B + k * ldb + j + v * V::W);
        for (int r = 0; r < MR; ++r) {
            typename V::R av = V::broadcast(A[(i + r) * lda + k]);
            for (int v = 0; v < NV; ++v)
                acc[r][v] = V::fma(av, bv[v], acc[r][v]);
        }
    }
    if (last && bias)
        for (int v = 0; v < NV; ++v) {
            typename V::R bb = V::load(bias + j + v * V::W);
            for (int r = 0; r < MR; ++r)
                acc[r][v] = V::add(acc[r][v], bb);
        }
    for (int r = 0; r < MR; ++r)
        for (int v = 0; v < NV; ++v)
            V::store(C + (i + r) * ldc + j + v * V::W, acc[r][v]);
}

/** Scalar column tail: same fma chain, one column at a time. */
template <int MR>
inline void
gemmScalarCols(const float *A, int64_t lda, const float *B, int64_t ldb,
               float *C, int64_t ldc, int64_t i, int64_t j, int64_t jEnd,
               int64_t k0, int64_t k1, const float *bias, bool first,
               bool last)
{
    for (int64_t jj = j; jj < jEnd; ++jj)
        for (int r = 0; r < MR; ++r) {
            const float *a = A + (i + r) * lda;
            float acc = first ? 0.0f : C[(i + r) * ldc + jj];
            for (int64_t k = k0; k < k1; ++k)
                acc = std::fmaf(a[k], B[k * ldb + jj], acc);
            if (last && bias)
                acc += bias[jj];
            C[(i + r) * ldc + jj] = acc;
        }
}

/** One band of MR rows across all N columns: nv-wide panels, then
 *  single-vector panels, then the scalar tail. */
template <class V, int MR>
inline void
gemmRowBand(const float *A, int64_t lda, const float *B, int64_t ldb,
            float *C, int64_t ldc, int64_t i, int64_t N, int nv,
            int64_t k0, int64_t k1, const float *bias, bool first,
            bool last)
{
    int64_t j = 0;
    if (nv >= 4)
        for (; j + 4 * V::W <= N; j += 4 * V::W)
            gemmPanel<V, MR, 4>(A, lda, B, ldb, C, ldc, i, j, k0, k1,
                                bias, first, last);
    if (nv >= 2)
        for (; j + 2 * V::W <= N; j += 2 * V::W)
            gemmPanel<V, MR, 2>(A, lda, B, ldb, C, ldc, i, j, k0, k1,
                                bias, first, last);
    for (; j + V::W <= N; j += V::W)
        gemmPanel<V, MR, 1>(A, lda, B, ldb, C, ldc, i, j, k0, k1, bias,
                            first, last);
    gemmScalarCols<MR>(A, lda, B, ldb, C, ldc, i, j, N, k0, k1, bias,
                       first, last);
}

/**
 * The strided f32 GEMM driver behind SimdOps::gemmF32Strided: the
 * operands are lda/ldb/ldc-strided sub-matrices of larger arrays.
 * Per the numerics contract, strides move the pointers and never the
 * per-element k chain, so computing a macro-tile of a big GEMM through
 * this entry produces the same bits that one whole-problem gemmF32
 * call writes into that tile — the seam intra-op sharding relies on.
 */
template <class V>
void
gemmF32StridedTmpl(const float *A, int64_t lda, const float *B,
                   int64_t ldb, float *C, int64_t ldc, int64_t M,
                   int64_t K, int64_t N, const float *bias,
                   const TileConfig &tile)
{
    const int mr = tile.mr > 0 ? tile.mr : 4;
    const int nv = tile.nv > 0 ? tile.nv : 2;
    const int64_t kc = tile.kc > 0 ? tile.kc : (K > 0 ? K : 1);
    for (int64_t k0 = 0; k0 < K || (K == 0 && k0 == 0); k0 += kc) {
        const int64_t k1 = K < k0 + kc ? K : k0 + kc;
        const bool first = k0 == 0;
        const bool last = k1 == K;
        int64_t i = 0;
        switch (mr) {
        case 8:
            for (; i + 8 <= M; i += 8)
                gemmRowBand<V, 8>(A, lda, B, ldb, C, ldc, i, N, nv, k0,
                                  k1, bias, first, last);
            break;
        case 6:
            for (; i + 6 <= M; i += 6)
                gemmRowBand<V, 6>(A, lda, B, ldb, C, ldc, i, N, nv, k0,
                                  k1, bias, first, last);
            break;
        case 2:
            for (; i + 2 <= M; i += 2)
                gemmRowBand<V, 2>(A, lda, B, ldb, C, ldc, i, N, nv, k0,
                                  k1, bias, first, last);
            break;
        default:
            for (; i + 4 <= M; i += 4)
                gemmRowBand<V, 4>(A, lda, B, ldb, C, ldc, i, N, nv, k0,
                                  k1, bias, first, last);
            break;
        }
        for (; i < M; ++i)
            gemmRowBand<V, 1>(A, lda, B, ldb, C, ldc, i, N, nv, k0, k1,
                              bias, first, last);
        if (K == 0)
            break;
    }
}

/** The f32 GEMM driver behind SimdOps::gemmF32. */
template <class V>
void
gemmF32Tmpl(const float *A, const float *B, float *C, int64_t M,
            int64_t K, int64_t N, const float *bias,
            const TileConfig &tile)
{
    gemmF32StridedTmpl<V>(A, K, B, N, C, N, M, K, N, bias, tile);
}

/** relu: max(x, 0) — the same expression the scalar kernels use. */
template <class V>
void
reluTmpl(const float *x, float *out, int64_t n)
{
    const typename V::R z = V::zero();
    int64_t i = 0;
    for (; i + V::W <= n; i += V::W)
        V::store(out + i, V::max(V::load(x + i), z));
    for (; i < n; ++i)
        out[i] = x[i] > 0.0f ? x[i] : 0.0f;
}

template <class V>
void
addScalarTmpl(const float *x, float s, float *out, int64_t n)
{
    const typename V::R sv = V::broadcast(s);
    int64_t i = 0;
    for (; i + V::W <= n; i += V::W)
        V::store(out + i, V::add(V::load(x + i), sv));
    for (; i < n; ++i)
        out[i] = x[i] + s;
}

template <class V>
void
mulScalarTmpl(const float *x, float s, float *out, int64_t n)
{
    const typename V::R sv = V::broadcast(s);
    int64_t i = 0;
    for (; i + V::W <= n; i += V::W)
        V::store(out + i, V::mul(V::load(x + i), sv));
    for (; i < n; ++i)
        out[i] = x[i] * s;
}

template <class V>
void
binaryOpTmpl(int op, const float *a, const float *b, float *out,
             int64_t n)
{
    int64_t i = 0;
    switch (op) {
    case 0:
        for (; i + V::W <= n; i += V::W)
            V::store(out + i, V::add(V::load(a + i), V::load(b + i)));
        for (; i < n; ++i)
            out[i] = a[i] + b[i];
        break;
    case 1:
        for (; i + V::W <= n; i += V::W)
            V::store(out + i, V::sub(V::load(a + i), V::load(b + i)));
        for (; i < n; ++i)
            out[i] = a[i] - b[i];
        break;
    case 2:
        for (; i + V::W <= n; i += V::W)
            V::store(out + i, V::mul(V::load(a + i), V::load(b + i)));
        for (; i < n; ++i)
            out[i] = a[i] * b[i];
        break;
    default:
        for (; i + V::W <= n; i += V::W)
            V::store(out + i, V::div(V::load(a + i), V::load(b + i)));
        for (; i < n; ++i)
            out[i] = a[i] / b[i];
        break;
    }
}

/**
 * Row-wise layer norm, vector-reduced two-pass moments. The lane
 * reduction reassociates the sums (unlike the reference's scalar
 * two-pass and the optimized backend's Welford sweep), so this is a
 * tolerance kernel by design — same as optimized-vs-reference.
 */
template <class V>
void
layerNormRowsTmpl(const float *x, const float *gamma, const float *beta,
                  float eps, int64_t rows, int64_t d, float *out)
{
    for (int64_t r = 0; r < rows; ++r) {
        const float *xr = x + r * d;
        float *yr = out + r * d;
        typename V::R vs = V::zero();
        int64_t j = 0;
        for (; j + V::W <= d; j += V::W)
            vs = V::add(vs, V::load(xr + j));
        float sum = V::reduceAdd(vs);
        for (; j < d; ++j)
            sum += xr[j];
        const float mean = sum / static_cast<float>(d);
        const typename V::R vm = V::broadcast(mean);
        typename V::R v2 = V::zero();
        float s2 = 0.0f;
        j = 0;
        for (; j + V::W <= d; j += V::W) {
            typename V::R dv = V::sub(V::load(xr + j), vm);
            v2 = V::fma(dv, dv, v2);
        }
        s2 = V::reduceAdd(v2);
        for (; j < d; ++j) {
            const float dv = xr[j] - mean;
            s2 = std::fmaf(dv, dv, s2);
        }
        const float inv =
            1.0f / std::sqrt(s2 / static_cast<float>(d) + eps);
        const typename V::R vinv = V::broadcast(inv);
        j = 0;
        for (; j + V::W <= d; j += V::W) {
            typename V::R nv =
                V::mul(V::sub(V::load(xr + j), vm), vinv);
            V::store(yr + j, V::add(V::mul(nv, V::load(gamma + j)),
                                    V::load(beta + j)));
        }
        for (; j < d; ++j)
            yr[j] = (xr[j] - mean) * inv * gamma[j] + beta[j];
    }
}

/**
 * Widening int8 GEMM fallback shared by the non-dot-product paths:
 * exact i32 accumulation over the plain [K,N] layout, vectorization
 * left to the per-ISA widening kernels; this scalar version is the
 * correctness mirror the tests compare against.
 */
inline void
gemmI8RowMajorScalar(const int8_t *A, const int8_t *B, int32_t *C,
                     int64_t M, int64_t K, int64_t N)
{
    for (int64_t m = 0; m < M; ++m)
        for (int64_t n = 0; n < N; ++n) {
            int32_t acc = 0;
            for (int64_t k = 0; k < K; ++k)
                acc += static_cast<int32_t>(A[m * K + k]) *
                       static_cast<int32_t>(B[k * N + n]);
            C[m * N + n] = acc;
        }
}

}  // namespace inl
}  // namespace simd
}  // namespace ngb

#endif  // NGB_PLATFORM_SIMD_KERNELS_INL_H
