#include "obs/json_util.h"

#include <cmath>
#include <cstdio>

namespace ngb {
namespace obs {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        case '\r':
            out += "\\r";
            break;
        case '\b':
            out += "\\b";
            break;
        case '\f':
            out += "\\f";
            break;
        default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

std::string
jsonQuote(const std::string &s)
{
    return "\"" + jsonEscape(s) + "\"";
}

std::string
jsonNumber(double v, int precision)
{
    if (!std::isfinite(v))
        return "0";
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", precision, v);
    std::string out(buf);
    // Trim trailing zeros (and a bare trailing dot) so integral values
    // render as integers and diffs stay stable across precisions.
    if (out.find('.') != std::string::npos) {
        size_t last = out.find_last_not_of('0');
        if (out[last] == '.')
            --last;
        out.resize(last + 1);
    }
    return out;
}

}  // namespace obs
}  // namespace ngb
