#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "obs/json_util.h"
#include "obs/perf.h"
#include "obs/trace.h"
#include "tensor/scratch.h"
#include "tensor/tensor.h"

namespace ngb {
namespace obs {

namespace detail {

static bool
envFlag(const char *name)
{
    const char *v = std::getenv(name);
    return v != nullptr && v[0] != '\0' && v[0] != '0';
}

std::atomic<bool> g_metricsEnabled{envFlag("NGB_METRICS")};

}  // namespace detail

void
setMetricsEnabled(bool on)
{
    detail::g_metricsEnabled.store(on, std::memory_order_relaxed);
}

// -- Histogram ---------------------------------------------------------

int
Histogram::bucketOf(double v)
{
    if (!(v > 0))
        return 0;  // <= 0 (and NaN) land in underflow
    int e;
    double m = std::frexp(v, &e);  // v = m * 2^e, m in [0.5, 1)
    int octave = (e - 1) - kMinExp;
    if (octave < 0)
        return 0;
    if (octave >= kOctaves)
        return kBuckets - 1;
    // Position within the octave: log2(2m) in [0, 1).
    int sub = static_cast<int>(kSub * std::log2(2.0 * m));
    sub = std::min(std::max(sub, 0), kSub - 1);
    return 1 + octave * kSub + sub;
}

double
Histogram::bucketLo(int i)
{
    if (i <= 0)
        return 0;
    if (i >= kBuckets - 1)
        return std::ldexp(1.0, kMaxExp);
    return std::exp2(kMinExp + static_cast<double>(i - 1) / kSub);
}

double
Histogram::bucketHi(int i)
{
    if (i <= 0)
        return std::ldexp(1.0, kMinExp);
    if (i >= kBuckets - 1)
        return std::ldexp(1.0, kMaxExp);
    return std::exp2(kMinExp + static_cast<double>(i) / kSub);
}

namespace {

void
atomicAddDouble(std::atomic<double> &a, double v)
{
    double cur = a.load(std::memory_order_relaxed);
    while (!a.compare_exchange_weak(cur, cur + v,
                                    std::memory_order_relaxed)) {
    }
}

void
atomicMinDouble(std::atomic<double> &a, double v)
{
    double cur = a.load(std::memory_order_relaxed);
    while (v < cur &&
           !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
}

void
atomicMaxDouble(std::atomic<double> &a, double v)
{
    double cur = a.load(std::memory_order_relaxed);
    while (v > cur &&
           !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
}

}  // namespace

void
Histogram::observe(double v)
{
    if (std::isnan(v))
        return;
    counts_[bucketOf(v)].fetch_add(1, std::memory_order_relaxed);
    int64_t prev = count_.fetch_add(1, std::memory_order_relaxed);
    atomicAddDouble(sum_, v);
    if (prev == 0) {
        // First observation seeds min/max; racing observers fix any
        // momentary zero through the min/max CAS below.
        min_.store(v, std::memory_order_relaxed);
        max_.store(v, std::memory_order_relaxed);
    }
    atomicMinDouble(min_, v);
    atomicMaxDouble(max_, v);
}

Histogram::Snapshot
Histogram::snapshot() const
{
    Snapshot s;
    for (int i = 0; i < kBuckets; ++i)
        s.counts[i] = counts_[i].load(std::memory_order_relaxed);
    s.count = count_.load(std::memory_order_relaxed);
    s.sum = sum_.load(std::memory_order_relaxed);
    s.min = min_.load(std::memory_order_relaxed);
    s.max = max_.load(std::memory_order_relaxed);
    return s;
}

double
Histogram::Snapshot::percentile(double q) const
{
    // Bucket totals, not `count`, define the population: a mid-run
    // snapshot can catch `count` ahead of (or behind) the buckets.
    uint64_t total = 0;
    for (uint64_t c : counts)
        total += c;
    if (total == 0)
        return 0;
    // The extreme quantiles are exact: min/max are tracked scalars,
    // not bucket estimates.
    if (q <= 0)
        return min;
    if (q >= 1)
        return max;
    q = std::min(std::max(q, 0.0), 1.0);
    double target = q * static_cast<double>(total - 1) + 1;
    uint64_t seen = 0;
    for (int i = 0; i < kBuckets; ++i) {
        if (counts[i] == 0)
            continue;
        if (static_cast<double>(seen + counts[i]) >= target) {
            double lo = bucketLo(i);
            double hi = bucketHi(i);
            // Clamp the edge buckets to observed extremes so p0/p100
            // report real values rather than bucket bounds.
            lo = std::max(lo, min);
            hi = std::min(hi, max);
            if (hi <= lo)
                return lo;
            double within =
                (target - static_cast<double>(seen)) / counts[i];
            return lo + (hi - lo) * std::min(within, 1.0);
        }
        seen += counts[i];
    }
    return max;
}

void
Histogram::reset()
{
    for (auto &c : counts_)
        c.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    min_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
}

// -- MetricsRegistry ---------------------------------------------------

MetricsRegistry &
MetricsRegistry::instance()
{
    // Leaked on purpose: call sites hold instrument references that
    // must stay valid through static destruction.
    static MetricsRegistry *r = new MetricsRegistry();
    return *r;
}

MetricsRegistry::MetricsRegistry()
{
    // Externally-owned levels, re-homed onto the registry as callback
    // gauges: sampled per snapshot, zero cost on their hot paths.
    providers_["tensor.heap_alloc_count"] = [] {
        return static_cast<int64_t>(Storage::heapAllocCount());
    };
    providers_["tensor.heap_alloc_bytes"] = [] {
        return static_cast<int64_t>(Storage::heapAllocBytes());
    };
    providers_["tensor.live_bytes"] = [] { return Storage::liveBytes(); };
    providers_["tensor.peak_live_bytes"] = [] {
        return Storage::peakLiveBytes();
    };
    providers_["scratch.high_water_bytes"] = [] {
        return ScratchArena::globalHighWaterBytes();
    };
    // Spans lost to ring wrap-around: nonzero means the exported
    // trace under-reports and scrapers should widen the ring.
    providers_["trace.dropped_spans"] = [] {
        return static_cast<int64_t>(Tracer::instance().totalDropped());
    };
    // Cumulative hardware-counter totals from kernel CounterScopes
    // (all zero when --perf is off or counters are unavailable).
    providers_["perf.cycles"] = [] {
        return static_cast<int64_t>(
            PerfAggregator::instance().totals().total.cycles);
    };
    providers_["perf.instructions"] = [] {
        return static_cast<int64_t>(
            PerfAggregator::instance().totals().total.instructions);
    };
    providers_["perf.llc_misses"] = [] {
        return static_cast<int64_t>(
            PerfAggregator::instance().totals().total.cacheMisses);
    };
    providers_["perf.branch_misses"] = [] {
        return static_cast<int64_t>(
            PerfAggregator::instance().totals().total.branchMisses);
    };
    providers_["perf.kernel_scopes"] = [] {
        return static_cast<int64_t>(
            PerfAggregator::instance().totals().total.scopes);
    };
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram &
MetricsRegistry::histogram(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = histograms_[name];
    if (!slot)
        slot = std::make_unique<Histogram>();
    return *slot;
}

void
MetricsRegistry::gaugeFn(const std::string &name,
                         std::function<int64_t()> fn)
{
    std::lock_guard<std::mutex> lock(mutex_);
    providers_[name] = std::move(fn);
}

void
MetricsRegistry::writeJson(std::ostream &os) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    os << "{\n  \"counters\": {";
    bool first = true;
    for (const auto &kv : counters_) {
        os << (first ? "\n" : ",\n") << "    " << jsonQuote(kv.first)
           << ": " << kv.second->value();
        first = false;
    }
    os << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
    first = true;
    for (const auto &kv : gauges_) {
        os << (first ? "\n" : ",\n") << "    " << jsonQuote(kv.first)
           << ": " << kv.second->value();
        first = false;
    }
    for (const auto &kv : providers_) {
        os << (first ? "\n" : ",\n") << "    " << jsonQuote(kv.first)
           << ": " << kv.second();
        first = false;
    }
    os << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
    first = true;
    for (const auto &kv : histograms_) {
        Histogram::Snapshot s = kv.second->snapshot();
        JsonDict d;
        d.add("count", s.count);
        d.add("sum", s.sum);
        d.add("mean", s.mean());
        d.add("min", s.min);
        d.add("max", s.max);
        d.add("p50", s.percentile(0.50));
        d.add("p90", s.percentile(0.90));
        d.add("p95", s.percentile(0.95));
        d.add("p99", s.percentile(0.99));
        os << (first ? "\n" : ",\n") << "    " << jsonQuote(kv.first)
           << ": " << d.str();
        first = false;
    }
    os << (first ? "" : "\n  ") << "}\n}\n";
}

namespace {

std::string
promName(const std::string &name)
{
    std::string out = "ngb_";
    for (char c : name) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                  c == '_';
        if (c >= 'A' && c <= 'Z') {
            out += static_cast<char>(c - 'A' + 'a');
        } else {
            out += ok ? c : '_';
        }
    }
    return out;
}

}  // namespace

void
MetricsRegistry::writePrometheus(std::ostream &os) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &kv : counters_) {
        std::string n = promName(kv.first);
        os << "# TYPE " << n << " counter\n"
           << n << " " << kv.second->value() << "\n";
    }
    for (const auto &kv : gauges_) {
        std::string n = promName(kv.first);
        os << "# TYPE " << n << " gauge\n"
           << n << " " << kv.second->value() << "\n";
    }
    for (const auto &kv : providers_) {
        std::string n = promName(kv.first);
        os << "# TYPE " << n << " gauge\n"
           << n << " " << kv.second() << "\n";
    }
    for (const auto &kv : histograms_) {
        std::string n = promName(kv.first);
        Histogram::Snapshot s = kv.second->snapshot();
        os << "# TYPE " << n << " summary\n";
        for (double q : {0.5, 0.9, 0.95, 0.99}) {
            os << n << "{quantile=\"" << jsonNumber(q, 2) << "\"} "
               << jsonNumber(s.percentile(q)) << "\n";
        }
        os << n << "_sum " << jsonNumber(s.sum) << "\n"
           << n << "_count " << s.count << "\n";
    }
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &kv : counters_)
        kv.second->reset();
    for (auto &kv : gauges_)
        kv.second->reset();
    for (auto &kv : histograms_)
        kv.second->reset();
}

}  // namespace obs
}  // namespace ngb
