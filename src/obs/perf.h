#ifndef NGB_OBS_PERF_H
#define NGB_OBS_PERF_H

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

#include "obs/trace.h"
#include "ops/op_types.h"
#include "platform/perf_events.h"

/**
 * @file
 * Hardware-counter profiling layered on the span tracer: a
 * CounterScope snapshots the calling thread's perf-event group at
 * construction and destruction, attaches the delta to the enclosing
 * span record (Node/Level/Request spans grow an optional counter
 * payload), and accumulates per-op-category totals into the process
 * PerfAggregator — the measured substrate for per-category IPC,
 * misses-per-kilo-instruction, and the roofline summary.
 *
 * Same zero-cost-when-off discipline as tracing: perfEnabled() is one
 * relaxed atomic load (compile-time false under -DNGB_NO_OBS), and the
 * counters themselves degrade gracefully — a host without
 * perf_event_open access still runs every scope, reporting counters
 * as unavailable rather than failing or fabricating numbers.
 */

namespace ngb {
namespace obs {

namespace detail {
extern std::atomic<bool> g_perfEnabled;
}

/** True when counter sampling is on ($NGB_PERF=1 or setPerfEnabled). */
inline bool
perfEnabled()
{
    return kObsCompiled &&
           detail::g_perfEnabled.load(std::memory_order_relaxed);
}

/** Flip counter sampling for the process. */
void setPerfEnabled(bool on);

/** Dense category index space for the aggregation tables. */
constexpr size_t kPerfCategories =
    static_cast<size_t>(OpCategory::Misc) + 1;

/**
 * Saturating counter difference @p b - @p a (a read before b on the
 * same thread's group). measured only when both ends carried real PMU
 * counts; the time fields always subtract (clock fallback keeps real
 * elapsed time, so scope durations survive degradation).
 */
perf::CounterValues counterDelta(const perf::CounterValues &a,
                                 const perf::CounterValues &b);

/**
 * Aggregated hardware-counter profile of one run (or one serving
 * session): totals and a per-op-category table of the counter deltas
 * recorded by top-level Node CounterScopes. When `measured` is false
 * every counter is zero and `status` says why (the numbers that ARE
 * reported are never fabricated).
 */
struct PerfCounterStats {
    bool enabled = false;   ///< counter sampling was on for the run
    bool measured = false;  ///< real PMU counts (vs clock fallback)
    size_t hwCounters = 0;  ///< counters per group (4 = full)
    std::string status;     ///< degradation detail, "" when full

    struct Bucket {
        uint64_t cycles = 0;
        uint64_t instructions = 0;
        uint64_t cacheMisses = 0;  ///< LLC misses
        uint64_t branchMisses = 0;
        uint64_t scopes = 0;  ///< aggregated (top-level) kernel scopes

        double ipc() const
        {
            return cycles > 0 ? static_cast<double>(instructions) /
                                    static_cast<double>(cycles)
                              : 0.0;
        }

        /** LLC misses per thousand instructions. */
        double missesPerKiloInstr() const
        {
            return instructions > 0
                       ? 1000.0 * static_cast<double>(cacheMisses) /
                             static_cast<double>(instructions)
                       : 0.0;
        }

        /** DRAM traffic proxy: LLC misses x 64-byte lines. */
        double bytesMovedEstimate() const
        {
            return static_cast<double>(cacheMisses) * 64.0;
        }
    };

    Bucket total;
    std::array<Bucket, kPerfCategories> byCategory{};

    const Bucket &category(OpCategory c) const
    {
        return byCategory[static_cast<size_t>(c)];
    }

    /** Field-wise @p t1 - @p t0 of two cumulative snapshots. */
    static PerfCounterStats since(const PerfCounterStats &t0,
                                  const PerfCounterStats &t1);
};

/**
 * Process-wide accumulation of CounterScope deltas: per-thread tables
 * of relaxed atomics (each thread is the sole writer of its table),
 * registered on a thread's first scope and retired never. totals()
 * sums across threads and is safe to call while producers run (the
 * counters are monotone, so two totals() calls bracket a run and
 * their difference is the run's aggregate); per-run consumers diff
 * snapshots via PerfCounterStats::since after their fork-join.
 */
class PerfAggregator
{
  public:
    static PerfAggregator &instance();

    /** Cumulative process totals (enabled/measured/status filled in). */
    PerfCounterStats totals() const;

    /** Zero every thread's table (bench/test isolation, quiescent). */
    void clear();

    /** Accumulate a scope delta under @p category (ignores < 0). */
    void accumulate(int category, const perf::CounterValues &d);

  private:
    PerfAggregator() = default;

    struct ThreadBucket {
        // [category][cycles, instructions, cacheMisses, branchMisses,
        // scopes] — single-writer relaxed stores, racing readers sum.
        std::atomic<uint64_t> v[kPerfCategories][5] = {};
    };

    ThreadBucket &threadBucket();

    mutable std::mutex mutex_;  ///< bucket registration / enumeration
    std::vector<std::unique_ptr<ThreadBucket>> buckets_;
};

/**
 * RAII counter sampling around a unit of work on ONE thread: reads
 * the thread's grouped counters at construction and destruction (one
 * read() syscall each), writes the delta into @p span's counter
 * payload (null = aggregate only), and — when @p category >= 0 —
 * accumulates it into the PerfAggregator.
 *
 * Nest freely: reads are cumulative, so inner scopes simply see a
 * subset of the outer delta. Aggregating call sites must pass
 * category >= 0 only at the outermost per-kernel level (the eval seam
 * passes -1 for fused members so group totals count once); Level and
 * Request scopes are attach-only by construction.
 *
 * The payload reflects the RECORDING thread's counters within the
 * scope — meaningful for Node and Request scopes (work runs where it
 * is recorded), coordination-only for a Level span whose kernels ran
 * on pool workers.
 */
class CounterScope
{
  public:
    explicit CounterScope(SpanEvent *span, int category = -1);
    ~CounterScope();

    CounterScope(const CounterScope &) = delete;
    CounterScope &operator=(const CounterScope &) = delete;

    bool armed() const { return armed_; }

  private:
    bool armed_;
    SpanEvent *span_;
    int category_;
    perf::CounterValues start_;
};

}  // namespace obs
}  // namespace ngb

#endif  // NGB_OBS_PERF_H
