#include "obs/perf.h"

#include <cstdlib>

namespace ngb {
namespace obs {

namespace detail {

namespace {

bool
envFlag(const char *name)
{
    const char *v = std::getenv(name);
    return v != nullptr && v[0] != '\0' && v[0] != '0';
}

}  // namespace

std::atomic<bool> g_perfEnabled{envFlag("NGB_PERF")};

}  // namespace detail

void
setPerfEnabled(bool on)
{
    detail::g_perfEnabled.store(on, std::memory_order_relaxed);
}

perf::CounterValues
counterDelta(const perf::CounterValues &a, const perf::CounterValues &b)
{
    auto sub = [](uint64_t hi, uint64_t lo) {
        return hi > lo ? hi - lo : 0;
    };
    perf::CounterValues d;
    d.cycles = sub(b.cycles, a.cycles);
    d.instructions = sub(b.instructions, a.instructions);
    d.cacheMisses = sub(b.cacheMisses, a.cacheMisses);
    d.branchMisses = sub(b.branchMisses, a.branchMisses);
    d.timeEnabledNs = sub(b.timeEnabledNs, a.timeEnabledNs);
    d.timeRunningNs = sub(b.timeRunningNs, a.timeRunningNs);
    d.measured = a.measured && b.measured;
    return d;
}

PerfCounterStats
PerfCounterStats::since(const PerfCounterStats &t0,
                        const PerfCounterStats &t1)
{
    auto sub = [](uint64_t hi, uint64_t lo) {
        return hi > lo ? hi - lo : 0;
    };
    auto subBucket = [&](const Bucket &b1, const Bucket &b0) {
        Bucket d;
        d.cycles = sub(b1.cycles, b0.cycles);
        d.instructions = sub(b1.instructions, b0.instructions);
        d.cacheMisses = sub(b1.cacheMisses, b0.cacheMisses);
        d.branchMisses = sub(b1.branchMisses, b0.branchMisses);
        d.scopes = sub(b1.scopes, b0.scopes);
        return d;
    };
    PerfCounterStats d;
    d.enabled = t1.enabled;
    d.measured = t1.measured;
    d.hwCounters = t1.hwCounters;
    d.status = t1.status;
    d.total = subBucket(t1.total, t0.total);
    for (size_t c = 0; c < kPerfCategories; ++c)
        d.byCategory[c] = subBucket(t1.byCategory[c], t0.byCategory[c]);
    return d;
}

namespace {

/**
 * The calling thread's counter group, opened lazily on the thread's
 * first scope so only threads that actually measure pay for fds.
 */
perf::PerfGroup &
threadGroup()
{
    thread_local perf::PerfGroup group;
    return group;
}

thread_local void *t_bucket = nullptr;

}  // namespace

PerfAggregator &
PerfAggregator::instance()
{
    // Leaked on purpose (same lifetime contract as the Tracer):
    // threads may accumulate until process exit.
    static PerfAggregator *a = new PerfAggregator();
    return *a;
}

PerfAggregator::ThreadBucket &
PerfAggregator::threadBucket()
{
    if (t_bucket == nullptr) {
        std::lock_guard<std::mutex> lock(mutex_);
        buckets_.push_back(std::make_unique<ThreadBucket>());
        t_bucket = buckets_.back().get();
    }
    return *static_cast<ThreadBucket *>(t_bucket);
}

void
PerfAggregator::accumulate(int category, const perf::CounterValues &d)
{
    if (category < 0 ||
        static_cast<size_t>(category) >= kPerfCategories)
        return;
    ThreadBucket &b = threadBucket();
    std::atomic<uint64_t> *row = b.v[category];
    // Clock-fallback deltas carry no counts: the scope still counts
    // (so reports can say "N scopes, counters unavailable") but the
    // zeros never dilute a partially-available session's ratios.
    if (d.measured) {
        row[0].fetch_add(d.cycles, std::memory_order_relaxed);
        row[1].fetch_add(d.instructions, std::memory_order_relaxed);
        row[2].fetch_add(d.cacheMisses, std::memory_order_relaxed);
        row[3].fetch_add(d.branchMisses, std::memory_order_relaxed);
    }
    row[4].fetch_add(1, std::memory_order_relaxed);
}

PerfCounterStats
PerfAggregator::totals() const
{
    PerfCounterStats s;
    s.enabled = perfEnabled();
    const perf::PerfStatus &st = perf::perfStatus();
    s.measured = st.available;
    s.hwCounters = st.counters;
    s.status = st.detail;
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &b : buckets_) {
        for (size_t c = 0; c < kPerfCategories; ++c) {
            const std::atomic<uint64_t> *row = b->v[c];
            PerfCounterStats::Bucket &out = s.byCategory[c];
            out.cycles += row[0].load(std::memory_order_relaxed);
            out.instructions += row[1].load(std::memory_order_relaxed);
            out.cacheMisses += row[2].load(std::memory_order_relaxed);
            out.branchMisses += row[3].load(std::memory_order_relaxed);
            out.scopes += row[4].load(std::memory_order_relaxed);
        }
    }
    for (const PerfCounterStats::Bucket &c : s.byCategory) {
        s.total.cycles += c.cycles;
        s.total.instructions += c.instructions;
        s.total.cacheMisses += c.cacheMisses;
        s.total.branchMisses += c.branchMisses;
        s.total.scopes += c.scopes;
    }
    return s;
}

void
PerfAggregator::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &b : buckets_)
        for (size_t c = 0; c < kPerfCategories; ++c)
            for (int i = 0; i < 5; ++i)
                b->v[c][i].store(0, std::memory_order_relaxed);
}

CounterScope::CounterScope(SpanEvent *span, int category)
    : armed_(perfEnabled()), span_(span), category_(category)
{
    if (armed_)
        start_ = threadGroup().read();
}

CounterScope::~CounterScope()
{
    if (!armed_)
        return;
    perf::CounterValues d = counterDelta(start_, threadGroup().read());
    if (span_ != nullptr) {
        span_->hasCounters = true;
        span_->countersMeasured = d.measured;
        span_->cCycles = d.cycles;
        span_->cInstr = d.instructions;
        span_->cCacheMiss = d.cacheMisses;
        span_->cBranchMiss = d.branchMisses;
    }
    if (category_ >= 0)
        PerfAggregator::instance().accumulate(category_, d);
}

}  // namespace obs
}  // namespace ngb
