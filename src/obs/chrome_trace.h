#ifndef NGB_OBS_CHROME_TRACE_H
#define NGB_OBS_CHROME_TRACE_H

#include <ostream>
#include <string>

#include "obs/json_util.h"

namespace ngb {
namespace obs {

/**
 * A track identifier in the Chrome trace JSON format. Chrome/Perfetto
 * accept both numeric tids (real thread tracks, nameable through
 * thread_name metadata) and string tids (the legacy catapult
 * extension the modeled exporter uses for its "host"/"gpu" lanes);
 * the two render differently, so the writer keeps the distinction.
 */
struct TraceTid {
    std::string text;
    bool quoted = true;

    TraceTid(int id) : text(std::to_string(id)), quoted(false) {}
    TraceTid(const char *name) : text(name) {}
    TraceTid(const std::string &name) : text(name) {}
};

/**
 * Streaming writer of the Chrome trace-event JSON format (the format
 * chrome://tracing and ui.perfetto.dev load). One emitter shared by
 * the MODELED plan exporter (profiler/trace_export) and the MEASURED
 * span exporter (obs/trace), so escaping, separators, and key order
 * are correct in both by construction.
 *
 * Events are emitted as they are reported; the document is closed by
 * finish() (or the destructor). Not thread-safe — exporters serialize.
 */
class ChromeTraceWriter
{
  public:
    explicit ChromeTraceWriter(std::ostream &os) : os_(os)
    {
        os_ << "{\"traceEvents\":[\n";
    }

    ~ChromeTraceWriter() { finish(); }

    ChromeTraceWriter(const ChromeTraceWriter &) = delete;
    ChromeTraceWriter &operator=(const ChromeTraceWriter &) = delete;

    /** One complete ("ph":"X") duration span on a thread track. */
    void completeEvent(const std::string &name, const std::string &cat,
                      int pid, const TraceTid &tid, double tsUs,
                      double durUs, const JsonDict &args = {});

    /**
     * One async begin/end pair ("ph":"b"/"e") tied by @p id — the
     * track for request-scoped spans that overlap each other on the
     * same thread (queue residency).
     */
    void asyncBegin(const std::string &name, const std::string &cat,
                    int pid, const TraceTid &tid, uint64_t id,
                    double tsUs, const JsonDict &args = {});
    void asyncEnd(const std::string &name, const std::string &cat,
                  int pid, const TraceTid &tid, uint64_t id,
                  double tsUs);

    /** thread_name metadata so tracks render with readable names. */
    void threadName(int pid, const TraceTid &tid,
                    const std::string &name);
    /** process_name metadata. */
    void processName(int pid, const std::string &name);

    /**
     * Attach a top-level key (rendered JSON) emitted beside
     * traceEvents when the document closes — the Chrome-format slot
     * for exporter metadata (drop counts, counter availability) that
     * belongs to the trace as a whole rather than to any event.
     */
    void topLevelRaw(const std::string &key, const std::string &rendered);

    /** Close the trace document (idempotent). */
    void finish();

  private:
    /** Common prefix: separator + name/cat/ph/pid/tid. */
    void open(const std::string &name, const std::string &cat,
              const char *ph, int pid, const TraceTid &tid);

    std::ostream &os_;
    bool first_ = true;
    bool finished_ = false;
    std::string topLevel_;
};

}  // namespace obs
}  // namespace ngb

#endif  // NGB_OBS_CHROME_TRACE_H
