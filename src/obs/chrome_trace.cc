#include "obs/chrome_trace.h"

namespace ngb {
namespace obs {

void
ChromeTraceWriter::open(const std::string &name, const std::string &cat,
                        const char *ph, int pid, const TraceTid &tid)
{
    if (!first_)
        os_ << ",\n";
    first_ = false;
    os_ << "  {\"name\":" << jsonQuote(name) << ",\"cat\":"
        << jsonQuote(cat) << ",\"ph\":\"" << ph << "\",\"pid\":" << pid
        << ",\"tid\":";
    if (tid.quoted)
        os_ << jsonQuote(tid.text);
    else
        os_ << tid.text;
}

void
ChromeTraceWriter::completeEvent(const std::string &name,
                                 const std::string &cat, int pid,
                                 const TraceTid &tid, double tsUs,
                                 double durUs, const JsonDict &args)
{
    open(name, cat, "X", pid, tid);
    os_ << ",\"ts\":" << jsonNumber(tsUs) << ",\"dur\":"
        << jsonNumber(durUs);
    if (!args.empty())
        os_ << ",\"args\":" << args.str();
    os_ << "}";
}

void
ChromeTraceWriter::asyncBegin(const std::string &name,
                              const std::string &cat, int pid,
                              const TraceTid &tid, uint64_t id,
                              double tsUs, const JsonDict &args)
{
    open(name, cat, "b", pid, tid);
    os_ << ",\"id\":" << id << ",\"ts\":" << jsonNumber(tsUs);
    if (!args.empty())
        os_ << ",\"args\":" << args.str();
    os_ << "}";
}

void
ChromeTraceWriter::asyncEnd(const std::string &name,
                            const std::string &cat, int pid,
                            const TraceTid &tid, uint64_t id, double tsUs)
{
    open(name, cat, "e", pid, tid);
    os_ << ",\"id\":" << id << ",\"ts\":" << jsonNumber(tsUs) << "}";
}

void
ChromeTraceWriter::threadName(int pid, const TraceTid &tid,
                              const std::string &name)
{
    open("thread_name", "__metadata", "M", pid, tid);
    os_ << ",\"args\":" << JsonDict().add("name", name).str() << "}";
}

void
ChromeTraceWriter::processName(int pid, const std::string &name)
{
    open("process_name", "__metadata", "M", pid, 0);
    os_ << ",\"args\":" << JsonDict().add("name", name).str() << "}";
}

void
ChromeTraceWriter::topLevelRaw(const std::string &key,
                               const std::string &rendered)
{
    topLevel_ += ',';
    topLevel_ += jsonQuote(key);
    topLevel_ += ':';
    topLevel_ += rendered;
}

void
ChromeTraceWriter::finish()
{
    if (finished_)
        return;
    finished_ = true;
    os_ << "\n],\"displayTimeUnit\":\"ms\"" << topLevel_ << "}\n";
}

}  // namespace obs
}  // namespace ngb
