#include "obs/trace.h"

#include <algorithm>
#include <cstdlib>

#include "obs/chrome_trace.h"
#include "ops/op_types.h"
#include "tensor/dtype.h"

namespace ngb {
namespace obs {

namespace detail {

static bool
envFlag(const char *name)
{
    const char *v = std::getenv(name);
    return v != nullptr && v[0] != '\0' && v[0] != '0';
}

std::atomic<bool> g_traceEnabled{envFlag("NGB_TRACE")};

}  // namespace detail

void
setTraceEnabled(bool on)
{
    detail::g_traceEnabled.store(on, std::memory_order_relaxed);
}

const char *
spanKindName(SpanKind k)
{
    switch (k) {
    case SpanKind::Queue:
        return "queue";
    case SpanKind::Batch:
        return "batch";
    case SpanKind::Request:
        return "request";
    case SpanKind::Level:
        return "level";
    case SpanKind::Node:
        return "node";
    case SpanKind::Shard:
        return "shard";
    case SpanKind::Plan:
        return "plan";
    case SpanKind::Mark:
        return "mark";
    }
    return "span";
}

namespace {
thread_local uint64_t t_traceId = 0;
thread_local TraceBuffer *t_buffer = nullptr;
thread_local std::string *t_nameHint = nullptr;
}  // namespace

uint64_t
currentTraceId()
{
    return t_traceId;
}

TraceIdScope::TraceIdScope(uint64_t id) : saved_(t_traceId)
{
    t_traceId = id;
}

TraceIdScope::~TraceIdScope()
{
    t_traceId = saved_;
}

std::vector<SpanEvent>
TraceBuffer::snapshot() const
{
    uint64_t h = head_.load(std::memory_order_acquire);
    uint64_t cap = ring_.size();
    uint64_t n = h < cap ? h : cap;
    std::vector<SpanEvent> out;
    out.reserve(n);
    for (uint64_t i = h - n; i < h; ++i)
        out.push_back(ring_[i % cap]);
    return out;
}

Tracer &
Tracer::instance()
{
    // Leaked on purpose: threads may record (and their buffers must
    // stay valid) until process exit, after statics are destroyed.
    static Tracer *t = new Tracer();
    return *t;
}

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now())
{
}

TraceBuffer &
Tracer::threadBuffer()
{
    if (t_buffer == nullptr) {
        std::lock_guard<std::mutex> lock(mutex_);
        buffers_.push_back(std::make_unique<TraceBuffer>(
            capacity_, static_cast<int>(buffers_.size())));
        t_buffer = buffers_.back().get();
        if (t_nameHint != nullptr)
            t_buffer->setName(*t_nameHint);
    }
    return *t_buffer;
}

void
Tracer::setThreadName(const std::string &name)
{
    if (t_buffer != nullptr) {
        t_buffer->setName(name);
        return;
    }
    // Defer: don't pay for a ring buffer on a thread that may never
    // record (pool workers are named unconditionally at spawn).
    if (t_nameHint == nullptr)
        t_nameHint = new std::string();  // leaked per thread, tiny
    *t_nameHint = name;
}

void
Tracer::setCapacity(size_t events)
{
    std::lock_guard<std::mutex> lock(mutex_);
    capacity_ = events > 0 ? events : 1;
}

void
Tracer::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &b : buffers_)
        b->clear();
    epoch_ = std::chrono::steady_clock::now();
}

std::vector<Tracer::ThreadEvents>
Tracer::collect() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<ThreadEvents> out;
    out.reserve(buffers_.size());
    for (const auto &b : buffers_) {
        ThreadEvents te;
        te.tid = b->tid();
        te.name = b->name();
        te.dropped = b->dropped();
        te.events = b->snapshot();
        out.push_back(std::move(te));
    }
    return out;
}

uint64_t
Tracer::totalRecorded() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    uint64_t n = 0;
    for (const auto &b : buffers_)
        n += b->recorded();
    return n;
}

uint64_t
Tracer::totalDropped() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    uint64_t n = 0;
    for (const auto &b : buffers_)
        n += b->dropped();
    return n;
}

namespace {

std::string
spanDisplayName(const SpanEvent &ev)
{
    switch (ev.kind) {
    case SpanKind::Node:
        if (ev.fused && ev.label[0] != '\0')
            return ev.label;
        if (ev.op >= 0)
            return opKindName(static_cast<OpKind>(ev.op));
        break;
    case SpanKind::Shard:
        return "shard " + std::to_string(ev.a0) + "/" +
               std::to_string(ev.a1);
    case SpanKind::Level:
        return "level " + std::to_string(ev.a0);
    default:
        break;
    }
    if (ev.label[0] != '\0')
        return std::string(spanKindName(ev.kind)) + " " + ev.label;
    return spanKindName(ev.kind);
}

std::string
spanCategory(const SpanEvent &ev)
{
    switch (ev.kind) {
    case SpanKind::Node:
        if (ev.cat >= 0)
            return opCategoryName(static_cast<OpCategory>(ev.cat));
        return "kernel";
    case SpanKind::Queue:
    case SpanKind::Batch:
        return "serve";
    case SpanKind::Request:
    case SpanKind::Level:
    case SpanKind::Shard:
        return "exec";
    case SpanKind::Plan:
        return "plan";
    case SpanKind::Mark:
        return "mark";
    }
    return "span";
}

JsonDict
spanArgs(const SpanEvent &ev)
{
    JsonDict args;
    if (ev.traceId != 0)
        args.add("trace_id", ev.traceId);
    switch (ev.kind) {
    case SpanKind::Node:
        args.add("node", static_cast<int64_t>(ev.node));
        if (ev.backend != nullptr)
            args.add("backend", ev.backend);
        if (ev.fused)
            args.add("fused", true);
        if (ev.a0 > 0)
            args.add("numel", ev.a0);
        if (ev.a1 >= 0)
            args.add("arena_offset", ev.a1);
        if (ev.a2 >= 0)
            args.add("dtype",
                     dtypeName(static_cast<DType>(ev.a2)));
        break;
    case SpanKind::Queue:
        if (ev.label[0] != '\0')
            args.add("model", ev.label);
        args.add("depth_at_admit", ev.a0);
        break;
    case SpanKind::Batch:
        if (ev.label[0] != '\0')
            args.add("model", ev.label);
        args.add("batch_size", ev.a0);
        args.add("closed_by_timeout", ev.flag);
        break;
    case SpanKind::Request:
        args.add("slot", ev.a0);
        break;
    case SpanKind::Level:
        args.add("level", ev.a0);
        args.add("nodes", ev.a1);
        break;
    case SpanKind::Shard:
        args.add("shard", ev.a0);
        args.add("shards", ev.a1);
        break;
    case SpanKind::Plan:
        if (ev.label[0] != '\0')
            args.add("model", ev.label);
        if (ev.a0 > 0)
            args.add("nodes", ev.a0);
        if (ev.a1 > 0)
            args.add("arena_bytes", ev.a1);
        break;
    case SpanKind::Mark:
        break;
    }
    if (ev.hasCounters) {
        if (ev.countersMeasured) {
            args.add("cycles", ev.cCycles);
            args.add("instructions", ev.cInstr);
            args.add("llc_misses", ev.cCacheMiss);
            args.add("branch_misses", ev.cBranchMiss);
        } else {
            args.add("counters", "unavailable");
        }
    }
    return args;
}

}  // namespace

void
Tracer::writeChromeTrace(std::ostream &os) const
{
    std::vector<ThreadEvents> threads = collect();
    ChromeTraceWriter w(os);
    w.processName(0, "ngb measured");
    for (const auto &t : threads)
        w.threadName(0, t.tid, t.name);
    for (const auto &t : threads) {
        for (const SpanEvent &ev : t.events) {
            if (ev.kind == SpanKind::Queue) {
                // Queue residencies of concurrent requests overlap on
                // the batcher track, which complete events would
                // render as bogus nesting — emit them as async pairs
                // tied by trace id instead.
                w.asyncBegin(spanDisplayName(ev), spanCategory(ev), 0,
                             t.tid, ev.traceId, ev.startUs,
                             spanArgs(ev));
                w.asyncEnd(spanDisplayName(ev), spanCategory(ev), 0,
                           t.tid, ev.traceId, ev.startUs + ev.durUs);
            } else {
                w.completeEvent(spanDisplayName(ev), spanCategory(ev),
                                0, t.tid, ev.startUs, ev.durUs,
                                spanArgs(ev));
            }
        }
        if (t.dropped > 0) {
            JsonDict args;
            args.add("dropped_spans", t.dropped);
            w.completeEvent("ring_dropped", "obs", 0, t.tid, 0.0, 0.0,
                            args);
        }
    }
    // Trace-level metadata: total and per-thread ring drops, so
    // consumers (tools/check_trace.py) can flag lossy traces without
    // scanning every event for ring_dropped markers.
    uint64_t dropped = 0;
    JsonDict per_thread;
    for (const auto &t : threads) {
        dropped += t.dropped;
        if (t.dropped > 0)
            per_thread.add(t.name, t.dropped);
    }
    JsonDict meta;
    meta.add("dropped_spans", dropped);
    if (dropped > 0)
        meta.addRaw("dropped_by_thread", per_thread.str());
    w.topLevelRaw("otherData", meta.str());
    w.finish();
}

}  // namespace obs
}  // namespace ngb
