#ifndef NGB_OBS_METRICS_H
#define NGB_OBS_METRICS_H

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

/**
 * @file
 * Lock-light metrics registry: named counters, gauges, and
 * log-bucketed latency histograms whose hot paths are single relaxed
 * atomic ops, registered once by name and snapshottable MID-RUN (from
 * the serve-loop sampler thread or an external caller) as JSON or
 * Prometheus text. Unlike the serve report's sorted-vector
 * percentiles — exact, but only available after the session drains —
 * histogram quantiles here are readable while producers are still
 * hammering the buckets, at a bounded relative error set by the
 * bucket width.
 *
 * Registration (registry lookup by name) takes a mutex and is meant
 * for setup paths; call sites keep the returned reference, which
 * stays valid for the process lifetime (instruments are never
 * removed).
 */

namespace ngb {
namespace obs {

namespace detail {
extern std::atomic<bool> g_metricsEnabled;
}

/** True when metric recording is on ($NGB_METRICS=1 or setter). */
inline bool
metricsEnabled()
{
#ifdef NGB_NO_OBS
    return false;
#else
    return detail::g_metricsEnabled.load(std::memory_order_relaxed);
#endif
}

/** Flip metric recording for the process. */
void setMetricsEnabled(bool on);

/** Monotonically increasing count (requests admitted, batches, ...). */
class Counter
{
  public:
    void inc(int64_t n = 1)
    {
        v_.fetch_add(n, std::memory_order_relaxed);
    }

    int64_t value() const { return v_.load(std::memory_order_relaxed); }
    void reset() { v_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<int64_t> v_{0};
};

/** Point-in-time level (queue depth, live batch size, ...). */
class Gauge
{
  public:
    void set(int64_t v) { v_.store(v, std::memory_order_relaxed); }

    void add(int64_t n)
    {
        v_.fetch_add(n, std::memory_order_relaxed);
    }

    int64_t value() const { return v_.load(std::memory_order_relaxed); }
    void reset() { v_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<int64_t> v_{0};
};

/**
 * Log-bucketed histogram: kSub sub-buckets per power-of-two octave
 * (kSub = 16 bounds the relative quantile error at 2^(1/16)-1 ≈
 * 4.4% of a bucket, ~2.2% at the midpoint), covering [2^-8, 2^40)
 * with explicit under/overflow buckets. observe() is two relaxed
 * fetch_adds plus CAS loops for the sum/min/max scalars; quantiles
 * interpolate within the landing bucket from a consistent-enough
 * mid-run snapshot of the bucket array.
 *
 * Values are unit-free; serving code records microseconds.
 */
class Histogram
{
  public:
    static constexpr int kSub = 16;
    static constexpr int kMinExp = -8;
    static constexpr int kMaxExp = 40;
    static constexpr int kOctaves = kMaxExp - kMinExp;
    /** [0] = underflow (v < 2^kMinExp), [last] = overflow. */
    static constexpr int kBuckets = kOctaves * kSub + 2;

    void observe(double v);

    int64_t count() const
    {
        return count_.load(std::memory_order_relaxed);
    }

    double sum() const { return sum_.load(std::memory_order_relaxed); }

    /** Immutable copy for coherent quantile reads. */
    struct Snapshot {
        std::array<uint64_t, kBuckets> counts{};
        int64_t count = 0;
        double sum = 0;
        double min = 0;
        double max = 0;

        double mean() const { return count > 0 ? sum / count : 0; }

        /** Interpolated value at quantile @p q in [0, 1]. */
        double percentile(double q) const;
    };

    Snapshot snapshot() const;

    /** Shorthand: snapshot().percentile(q). */
    double percentile(double q) const
    {
        return snapshot().percentile(q);
    }

    void reset();

    /** Inclusive lower / exclusive upper value bound of bucket @p i. */
    static double bucketLo(int i);
    static double bucketHi(int i);

  private:
    static int bucketOf(double v);

    std::array<std::atomic<uint64_t>, kBuckets> counts_{};
    std::atomic<int64_t> count_{0};
    std::atomic<double> sum_{0};
    std::atomic<double> min_{0};
    std::atomic<double> max_{0};
};

/**
 * The process-wide instrument registry. counter()/gauge()/histogram()
 * get-or-create by name; gaugeFn() registers a callback sampled at
 * snapshot time (how externally-owned levels — tensor heap stats,
 * scratch high water — are exported without touching their hot
 * paths). writeJson()/writePrometheus() render a mid-run snapshot.
 */
class MetricsRegistry
{
  public:
    static MetricsRegistry &instance();

    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Histogram &histogram(const std::string &name);

    /** Callback gauge, read (under the registry mutex) per snapshot. */
    void gaugeFn(const std::string &name, std::function<int64_t()> fn);

    /**
     * {"counters":{...},"gauges":{...},"histograms":{name:{count,
     * sum, mean, min, max, p50, p90, p95, p99}}} — keys sorted, so
     * output is diff-stable.
     */
    void writeJson(std::ostream &os) const;

    /**
     * Prometheus text exposition: names sanitized to [a-z0-9_] and
     * prefixed "ngb_", histograms rendered as summaries with
     * quantile labels.
     */
    void writePrometheus(std::ostream &os) const;

    /** Zero every instrument (bench/test isolation between runs). */
    void reset();

  private:
    MetricsRegistry();

    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
    std::map<std::string, std::function<int64_t()>> providers_;
};

}  // namespace obs
}  // namespace ngb

#endif  // NGB_OBS_METRICS_H
