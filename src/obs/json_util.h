#ifndef NGB_OBS_JSON_UTIL_H
#define NGB_OBS_JSON_UTIL_H

#include <cstdint>
#include <string>

/**
 * @file
 * The one JSON string/value emitter shared by every hand-rolled JSON
 * writer in the tree (profile_report, serve_report, trace_export, the
 * measured-trace and metrics exporters). Before this existed each
 * writer carried its own "escape quotes and backslashes" lambda, none
 * of which escaped control characters — an op label with an embedded
 * newline (or a model name with a quote) produced unparseable JSON.
 */

namespace ngb {
namespace obs {

/**
 * Escape @p s for inclusion inside a JSON string literal: quote,
 * backslash, and every control character below 0x20 (\n, \t, \r, \b,
 * \f get their short forms, the rest \u00XX). Returns the escaped
 * body WITHOUT surrounding quotes.
 */
std::string jsonEscape(const std::string &s);

/** @p s escaped and wrapped in double quotes. */
std::string jsonQuote(const std::string &s);

/**
 * Format a double as a JSON number: fixed-point with up to @p
 * precision fractional digits, trailing zeros trimmed; non-finite
 * values (illegal in JSON) degrade to 0.
 */
std::string jsonNumber(double v, int precision = 3);

/**
 * Incremental "{...}" builder for small inline objects (Chrome trace
 * event args, metrics rows). Values are emitted as given: add() a
 * string quotes and escapes it, addRaw() splices pre-rendered JSON.
 */
class JsonDict
{
  public:
    JsonDict &add(const std::string &key, const std::string &value)
    {
        return addRaw(key, jsonQuote(value));
    }

    JsonDict &add(const std::string &key, const char *value)
    {
        return addRaw(key, jsonQuote(value ? value : ""));
    }

    JsonDict &add(const std::string &key, bool value)
    {
        return addRaw(key, value ? "true" : "false");
    }

    JsonDict &add(const std::string &key, int64_t value)
    {
        return addRaw(key, std::to_string(value));
    }

    JsonDict &add(const std::string &key, int value)
    {
        return add(key, static_cast<int64_t>(value));
    }

    JsonDict &add(const std::string &key, uint64_t value)
    {
        return addRaw(key, std::to_string(value));
    }

    JsonDict &add(const std::string &key, double value, int precision = 3)
    {
        return addRaw(key, jsonNumber(value, precision));
    }

    JsonDict &addRaw(const std::string &key, const std::string &rendered)
    {
        if (!body_.empty())
            body_ += ',';
        body_ += jsonQuote(key);
        body_ += ':';
        body_ += rendered;
        return *this;
    }

    bool empty() const { return body_.empty(); }

    /** The finished object, braces included. */
    std::string str() const { return "{" + body_ + "}"; }

  private:
    std::string body_;
};

}  // namespace obs
}  // namespace ngb

#endif  // NGB_OBS_JSON_UTIL_H
