#ifndef NGB_OBS_TRACE_H
#define NGB_OBS_TRACE_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

/**
 * @file
 * The measured-span tracer: per-request trace ids propagated from
 * queue admission down to per-node kernel evaluation, recorded into
 * per-thread single-producer ring buffers and exported as a
 * Chrome/Perfetto trace of what ACTUALLY ran (threads as tracks) —
 * the runtime counterpart of the profiler's modeled-plan export.
 *
 * Zero-cost-when-off discipline: every producer call site guards on
 * traceEnabled(), which inlines to one relaxed atomic load and a
 * predictable branch (and to a compile-time `false` when the tree is
 * built with -DNGB_NO_OBS, letting the optimizer strip the hooks
 * entirely). Recording itself is lock-free: each thread owns its ring
 * buffer, writes are a struct copy plus one release store, and the
 * ring overwrites its oldest events when full (drops are counted,
 * never blocked on).
 *
 * Readers (export/collect) are quiescent-only: they must not race
 * live producers. The serving/runtime drivers satisfy this by
 * exporting after join()/run() returns, which synchronizes with every
 * worker through the pool's fork-join barrier.
 */

namespace ngb {
namespace obs {

#ifdef NGB_NO_OBS
constexpr bool kObsCompiled = false;
#else
constexpr bool kObsCompiled = true;
#endif

namespace detail {
extern std::atomic<bool> g_traceEnabled;
}

/** True when span recording is on ($NGB_TRACE=1 or setTraceEnabled). */
inline bool
traceEnabled()
{
    return kObsCompiled &&
           detail::g_traceEnabled.load(std::memory_order_relaxed);
}

/** Flip span recording for the process. */
void setTraceEnabled(bool on);

/** What one span measured (determines its export rendering). */
enum class SpanKind : uint8_t {
    Queue,    ///< admission -> batch close (async track, per request)
    Batch,    ///< one dispatched batch (engine.run wall)
    Request,  ///< one request's schedule walk inside a batch
    Level,    ///< one wavefront level's fork-join region
    Node,     ///< one kernel evaluation (Backend::eval)
    Shard,    ///< one intra-op shard inside a Node's ParallelRegion
    Plan,     ///< engine/plan construction (cache-miss cost)
    Mark,     ///< generic labelled region
};

const char *spanKindName(SpanKind k);

/**
 * One recorded span. Fixed-size and string-free on the hot path: the
 * label is a bounded char array (truncating copy), the backend name
 * points at a Backend's own storage (built-in backends live for the
 * process; ad-hoc backends must outlive export). Kind-specific args
 * ride in a0..a2 — see the recording sites for each kind's layout.
 */
struct SpanEvent {
    double startUs = 0;  ///< since the tracer epoch
    double durUs = 0;
    uint64_t traceId = 0;  ///< per-request id; 0 = session-scoped
    SpanKind kind = SpanKind::Mark;
    int16_t op = -1;   ///< OpKind when kind == Node
    int16_t cat = -1;  ///< OpCategory when kind == Node
    int32_t node = -1;
    bool fused = false;
    bool flag = false;  ///< kind-specific (batch: closed by timeout)
    const char *backend = nullptr;
    int64_t a0 = 0;
    int64_t a1 = 0;
    int64_t a2 = 0;
    char label[24] = {};

    /**
     * Optional hardware-counter payload (Node/Level/Request spans,
     * filled by obs::CounterScope when --perf is on). countersMeasured
     * distinguishes real PMU deltas from the clock fallback, whose
     * counter fields stay zero and are never exported as numbers.
     */
    bool hasCounters = false;
    bool countersMeasured = false;
    uint64_t cCycles = 0;
    uint64_t cInstr = 0;
    uint64_t cCacheMiss = 0;   ///< LLC misses
    uint64_t cBranchMiss = 0;

    void setLabel(const std::string &s)
    {
        size_t n = s.size() < sizeof(label) - 1 ? s.size()
                                                : sizeof(label) - 1;
        std::memcpy(label, s.data(), n);
        label[n] = '\0';
    }
};

/**
 * The current thread's trace id (what recorded spans are tagged
 * with). Propagated, not inferred: executors set it per request via
 * TraceIdScope before walking the schedule.
 */
uint64_t currentTraceId();

/** RAII save/set/restore of the thread's trace id. */
class TraceIdScope
{
  public:
    explicit TraceIdScope(uint64_t id);
    ~TraceIdScope();

    TraceIdScope(const TraceIdScope &) = delete;
    TraceIdScope &operator=(const TraceIdScope &) = delete;

  private:
    uint64_t saved_;
};

/** One thread's ring buffer: single producer, quiescent readers. */
class TraceBuffer
{
  public:
    explicit TraceBuffer(size_t capacity, int tid)
        : ring_(capacity), tid_(tid),
          name_("thread-" + std::to_string(tid))
    {
    }

    void record(const SpanEvent &ev)
    {
        uint64_t h = head_.load(std::memory_order_relaxed);
        ring_[h % ring_.size()] = ev;
        head_.store(h + 1, std::memory_order_release);
    }

    int tid() const { return tid_; }
    const std::string &name() const { return name_; }
    void setName(std::string n) { name_ = std::move(n); }

    /** Events recorded since the last clear (including dropped). */
    uint64_t recorded() const
    {
        return head_.load(std::memory_order_acquire);
    }

    /** Events overwritten because the ring wrapped. */
    uint64_t dropped() const
    {
        uint64_t h = recorded();
        return h > ring_.size() ? h - ring_.size() : 0;
    }

    /** Oldest-first copy of the retained events (quiescent only). */
    std::vector<SpanEvent> snapshot() const;

    void clear() { head_.store(0, std::memory_order_release); }

  private:
    std::vector<SpanEvent> ring_;
    std::atomic<uint64_t> head_{0};
    int tid_;
    std::string name_;
};

/**
 * Process-wide tracer: owns every thread's ring buffer (buffers are
 * registered on a thread's first record and retired never, so a
 * thread that exits keeps its events exportable), the session epoch
 * all timestamps are relative to, and the Chrome-trace exporter.
 */
class Tracer
{
  public:
    static Tracer &instance();

    /** Monotonic microseconds since the tracer epoch. */
    double nowUs() const
    {
        return std::chrono::duration<double, std::micro>(
                   std::chrono::steady_clock::now() - epoch_)
            .count();
    }

    /** @p tp (same clock) relative to the epoch, in microseconds. */
    double sinceEpochUs(std::chrono::steady_clock::time_point tp) const
    {
        return std::chrono::duration<double, std::micro>(tp - epoch_)
            .count();
    }

    /** Record @p ev into the calling thread's ring buffer. */
    void record(const SpanEvent &ev) { threadBuffer().record(ev); }

    /**
     * Name the calling thread's track ("batcher", "worker-3", ...).
     * Cheap when the thread never records: the name is held as a
     * thread-local hint and only bound (with the ring allocation) on
     * the thread's first record.
     */
    void setThreadName(const std::string &name);

    /**
     * Ring capacity (events per thread) for buffers registered after
     * the call; existing buffers keep theirs. Default 1 << 15.
     */
    void setCapacity(size_t events);

    /** Drop every recorded event and restart the epoch (quiescent). */
    void clear();

    struct ThreadEvents {
        int tid = 0;
        std::string name;
        uint64_t dropped = 0;
        std::vector<SpanEvent> events;  ///< oldest first
    };

    /** Copy of every thread's retained events (quiescent only). */
    std::vector<ThreadEvents> collect() const;

    /** Total spans recorded across threads (including dropped). */
    uint64_t totalRecorded() const;
    /** Total spans lost to ring wrap-around across threads. */
    uint64_t totalDropped() const;

    /**
     * Export everything recorded as a Chrome/Perfetto trace: one
     * track per recording thread (complete events, named via
     * thread_name metadata), queue spans as per-request async pairs,
     * every span's args carrying its trace id and kind-specific
     * metadata (op kind, backend, fused flag, tensor numel, arena
     * offset, batch size / queue depth). Quiescent only.
     */
    void writeChromeTrace(std::ostream &os) const;

  private:
    Tracer();

    TraceBuffer &threadBuffer();

    std::chrono::steady_clock::time_point epoch_;
    mutable std::mutex mutex_;  ///< buffer registration / collection
    std::vector<std::unique_ptr<TraceBuffer>> buffers_;
    size_t capacity_ = size_t{1} << 15;
};

// -- Convenience producers (all no-ops when tracing is off) ------------

/**
 * RAII span: captures the start time at construction and records at
 * destruction. Fill the event fields through ev() before it closes.
 */
class ScopedSpan
{
  public:
    explicit ScopedSpan(SpanKind kind)
        : armed_(traceEnabled())
    {
        if (!armed_)
            return;
        ev_.kind = kind;
        ev_.traceId = currentTraceId();
        ev_.startUs = Tracer::instance().nowUs();
    }

    ~ScopedSpan()
    {
        if (!armed_)
            return;
        Tracer &t = Tracer::instance();
        ev_.durUs = t.nowUs() - ev_.startUs;
        t.record(ev_);
    }

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

    /** Mutable event, valid only while armed(). */
    SpanEvent &ev() { return ev_; }
    bool armed() const { return armed_; }

  private:
    bool armed_;
    SpanEvent ev_;
};

}  // namespace obs
}  // namespace ngb

#endif  // NGB_OBS_TRACE_H
