#ifndef NGB_DEPLOY_FUSION_H
#define NGB_DEPLOY_FUSION_H

#include <vector>

#include "platform/plan.h"

namespace ngb {

/**
 * What a deployment flow's fusion pass is allowed to do.
 */
struct FusionConfig {
    /**
     * Fold BatchNorm (and a following ReLU) into a preceding Conv2d,
     * the CONV+BN+RELU pattern the paper identifies as the reason
     * TensorRT all but removes DETR's normalization latency.
     */
    bool fuseConvBnRelu = false;

    /**
     * Fuse chains of point-wise operators (element-wise arithmetic,
     * activations, normalizations, softmax, Q/DQ) into one kernel.
     */
    bool fusePointwiseChains = false;

    /**
     * Allow zero-copy layout ops inside a chain (shuffle fusion);
     * both studied flows break chains at layout boundaries by default.
     */
    bool fuseThroughLayout = false;

    /**
     * Minimum number of ops in a point-wise chain before it is worth
     * compiling a fused kernel. TensorRT's documented pattern needs
     * three consecutive point-wise operators (Section IV-B).
     */
    int minChainLen = 2;
};

/**
 * Statistics of one fusion pass, matching Table V's metrics.
 */
struct FusionStats {
    int64_t totalNonGemm = 0;  ///< non-GEMM nodes in the graph
    int64_t fusedNonGemm = 0;  ///< non-GEMM nodes placed in fused groups
    int64_t fusedWithGemm = 0; ///< non-GEMM nodes folded into GEMM kernels
    int64_t groupsEmitted = 0;

    /** Fraction of non-GEMM operators that were fused (Table V). */
    double fusionRate() const
    {
        return totalNonGemm > 0
                   ? static_cast<double>(fusedNonGemm) /
                         static_cast<double>(totalNonGemm)
                   : 0.0;
    }
};

/**
 * Pattern-based greedy fusion over a graph.
 *
 * Partitions every non-input node of @p g into kernel groups: fused
 * multi-node groups where the config's patterns match (single-consumer
 * chains only, so fusion never changes semantics) and singleton groups
 * elsewhere. Group costs (flops, boundary bytes, params) are
 * aggregated so that fusing removes the intermediate tensor traffic
 * and all but one kernel launch — the two effects Section IV-B
 * attributes TensorRT's speedups to.
 */
std::vector<KernelGroup> fuseGraph(const Graph &g, const FusionConfig &cfg,
                                   FusionStats *stats = nullptr);

/** Build a singleton kernel group for one node (no fusion). */
KernelGroup singletonGroup(const Graph &g, const Node &n);

}  // namespace ngb

#endif  // NGB_DEPLOY_FUSION_H
