#ifndef NGB_DEPLOY_FUSION_H
#define NGB_DEPLOY_FUSION_H

#include <vector>

#include "platform/plan.h"

namespace ngb {

/**
 * What a deployment flow's fusion pass is allowed to do.
 */
struct FusionConfig {
    /**
     * Fold BatchNorm (and a following ReLU) into a preceding Conv2d,
     * the CONV+BN+RELU pattern the paper identifies as the reason
     * TensorRT all but removes DETR's normalization latency.
     */
    bool fuseConvBnRelu = false;

    /**
     * Fuse chains of point-wise operators (element-wise arithmetic,
     * activations, normalizations, softmax, Q/DQ) into one kernel.
     */
    bool fusePointwiseChains = false;

    /**
     * Allow zero-copy layout ops inside a chain (shuffle fusion);
     * both studied flows break chains at layout boundaries by default.
     */
    bool fuseThroughLayout = false;

    /**
     * Minimum number of ops in a point-wise chain before it is worth
     * compiling a fused kernel. TensorRT's documented pattern needs
     * three consecutive point-wise operators (Section IV-B). Values
     * below 1 are treated as 1 (a chain has at least its head).
     */
    int minChainLen = 2;

    /**
     * Let a point-wise chain start at a GEMM operator (Linear, MatMul,
     * BMM, Conv2d without a BN to fold), so activation / element-wise
     * epilogues fold into the GEMM kernel — the fusedWithGemm class of
     * Table V. Off by default so the modeled deployment flows keep the
     * paper's pattern set; the executable --fuse path enables it.
     */
    bool fuseGemmEpilogues = false;
};

/**
 * Statistics of one fusion pass, matching Table V's metrics.
 */
struct FusionStats {
    int64_t totalNonGemm = 0;  ///< non-GEMM nodes in the graph
    int64_t fusedNonGemm = 0;  ///< non-GEMM nodes placed in fused groups
    int64_t fusedWithGemm = 0; ///< non-GEMM nodes folded into GEMM kernels
    int64_t groupsEmitted = 0;

    /** Fraction of non-GEMM operators that were fused (Table V). */
    double fusionRate() const
    {
        return totalNonGemm > 0
                   ? static_cast<double>(fusedNonGemm) /
                         static_cast<double>(totalNonGemm)
                   : 0.0;
    }
};

/**
 * Pattern-based greedy fusion over a graph.
 *
 * Partitions every non-input node of @p g into kernel groups: fused
 * multi-node groups where the config's patterns match (single-consumer
 * chains only, so fusion never changes semantics) and singleton groups
 * elsewhere. Group costs (flops, boundary bytes, params) are
 * aggregated so that fusing removes the intermediate tensor traffic
 * and all but one kernel launch — the two effects Section IV-B
 * attributes TensorRT's speedups to.
 */
std::vector<KernelGroup> fuseGraph(const Graph &g, const FusionConfig &cfg,
                                   FusionStats *stats = nullptr);

/** Build a singleton kernel group for one node (no fusion). */
KernelGroup singletonGroup(const Graph &g, const Node &n);

/**
 * Apply a fusion config as a graph rewrite instead of a score: every
 * multi-node group fuseGraph() finds becomes ONE executable
 * OpKind::Fused node whose fusedBody carries the member operators
 * (original attrs/params, "seed_id" preserving parameter identity),
 * and every other node is copied through. The result is a valid,
 * topologically ordered graph the executors run end to end: the
 * reference backend interprets each chain member-by-member
 * (bit-identical to the unfused graph), the optimized backend
 * pre-merges Conv+BN affines and fuses bias/activation epilogues into
 * its GEMM tile write-out (tolerance, documented reassociation).
 *
 * @p stats receives the same FusionStats the scoring pass reports.
 */
Graph applyFusion(const Graph &g, const FusionConfig &cfg,
                  FusionStats *stats = nullptr);

/**
 * The FusionConfig behind the execution-level --fuse flag (and the
 * NGB_FUSE=1 CI leg): CONV+BN+RELU folding, point-wise chains, and
 * GEMM epilogues, at the default chain-length threshold.
 */
FusionConfig executableFusionConfig();

/** True when $NGB_FUSE is set non-empty and not "0" — the process
 *  default for "apply fusion before executing" (serve engines, CLI). */
bool fuseEnabledByEnv();

}  // namespace ngb

#endif  // NGB_DEPLOY_FUSION_H
