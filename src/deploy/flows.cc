#include <stdexcept>

#include "deploy/flow.h"
#include "deploy/fusion.h"

namespace ngb {

namespace {

/** Activation bytes through a node, from shapes (ignores zero-copy). */
double
fullActBytes(const Graph &g, const Node &n)
{
    double b = 0;
    for (const Value &v : n.inputs)
        b += static_cast<double>(g.shapeOf(v).numel()) *
             static_cast<double>(dtypeSize(g.dtypeOf(v)));
    for (size_t i = 0; i < n.outShapes.size(); ++i)
        b += static_cast<double>(n.outShapes[i].numel()) *
             static_cast<double>(dtypeSize(n.outDtypes[i]));
    return b;
}

void
applyPrecision(KernelGroup &kg, const FlowOptions &opts)
{
    if (opts.f16 && !kg.i8) {
        kg.f16 = true;
        // Graphs are built with F32 tensors; halve the traffic.
        kg.bytesIn *= 0.5;
        kg.bytesOut *= 0.5;
        kg.bytesParam *= 0.5;
        kg.transferBytes *= 0.5;
    }
}

void
placeGroup(KernelGroup &kg, const FlowOptions &opts)
{
    kg.onGpu = opts.gpu && !kg.zeroCopy;
}

/**
 * Eager PyTorch: every operator is its own dispatch; composite
 * operators (attr "kernels") launch several primitive kernels.
 */
class PyTorchFlow : public DeploymentFlow
{
  public:
    std::string name() const override { return "pytorch"; }

    ExecutionPlan
    plan(const Graph &g, const FlowOptions &opts) const override
    {
        ExecutionPlan p;
        p.graph = &g;
        p.flowName = name();
        p.gpuEnabled = opts.gpu;
        for (const Node &n : g.nodes()) {
            if (n.inputs.empty())
                continue;  // graph input
            KernelGroup kg = singletonGroup(g, n);
            placeGroup(kg, opts);
            applyPrecision(kg, opts);
            p.groups.push_back(std::move(kg));
        }
        return p;
    }
};

/**
 * TorchInductor: point-wise chain fusion, eager-grade GEMM kernels,
 * moderate dispatch savings on fused regions.
 */
class InductorFlow : public DeploymentFlow
{
  public:
    std::string name() const override { return "inductor"; }

    ExecutionPlan
    plan(const Graph &g, const FlowOptions &opts) const override
    {
        FusionConfig cfg;
        cfg.fusePointwiseChains = true;
        ExecutionPlan p;
        p.graph = &g;
        p.flowName = name();
        p.gpuEnabled = opts.gpu;
        for (KernelGroup &kg : fuseGraph(g, cfg)) {
            placeGroup(kg, opts);
            kg.dispatchUsOverride = kg.fused ? -1.0 : 4.0;
            applyPrecision(kg, opts);
            p.groups.push_back(std::move(kg));
        }
        return p;
    }
};

/**
 * ONNX Runtime CUDA EP: compiled session with cheap dispatch and
 * slightly faster kernels, but memory-layout operators unsupported on
 * the EP fall back to the CPU, forcing PCIe round trips (Case Study 1).
 */
class OrtFlow : public DeploymentFlow
{
  public:
    std::string name() const override { return "ort"; }

    static bool
    unsupportedOnEp(OpKind k)
    {
        switch (k) {
          case OpKind::View:
          case OpKind::Reshape:
          case OpKind::Permute:
          case OpKind::Transpose:
          case OpKind::Contiguous:
          case OpKind::Split:
          case OpKind::Expand:
          case OpKind::Squeeze:
          case OpKind::Unsqueeze:
          case OpKind::Slice:
          case OpKind::Roll:
            return true;
          default:
            return false;
        }
    }

    ExecutionPlan
    plan(const Graph &g, const FlowOptions &opts) const override
    {
        ExecutionPlan p;
        p.graph = &g;
        p.flowName = name();
        p.gpuEnabled = opts.gpu;
        for (const Node &n : g.nodes()) {
            if (n.inputs.empty())
                continue;
            KernelGroup kg = singletonGroup(g, n);
            kg.dispatchUsOverride = 1.5;
            kg.rateScale = 1.15;
            if (opts.gpu && unsupportedOnEp(n.kind)) {
                // CPU fallback: materialize the tensor on the host and
                // copy it back, regardless of zero-copy semantics.
                kg.onGpu = false;
                kg.zeroCopy = false;
                double bytes = fullActBytes(g, n);
                kg.bytesIn = bytes * 0.5;
                kg.bytesOut = bytes * 0.5;
                kg.transferBytes = bytes;
            } else {
                placeGroup(kg, opts);
            }
            applyPrecision(kg, opts);
            p.groups.push_back(std::move(kg));
        }
        return p;
    }
};

/**
 * TensorRT: engine-compiled execution. CONV+BN+ReLU folding,
 * point-wise and shuffle fusion, fastest kernel implementations.
 */
class TensorRtFlow : public DeploymentFlow
{
  public:
    std::string name() const override { return "tensorrt"; }

    ExecutionPlan
    plan(const Graph &g, const FlowOptions &opts) const override
    {
        FusionConfig cfg;
        cfg.fuseConvBnRelu = true;
        cfg.fusePointwiseChains = true;
        cfg.minChainLen = 3;
        ExecutionPlan p;
        p.graph = &g;
        p.flowName = name();
        p.gpuEnabled = opts.gpu;
        for (KernelGroup &kg : fuseGraph(g, cfg)) {
            placeGroup(kg, opts);
            kg.dispatchUsOverride = 1.0;
            kg.rateScale = 1.25;
            applyPrecision(kg, opts);
            p.groups.push_back(std::move(kg));
        }
        return p;
    }
};

}  // namespace

std::unique_ptr<DeploymentFlow>
makePyTorchFlow()
{
    return std::make_unique<PyTorchFlow>();
}

std::unique_ptr<DeploymentFlow>
makeInductorFlow()
{
    return std::make_unique<InductorFlow>();
}

std::unique_ptr<DeploymentFlow>
makeOrtFlow()
{
    return std::make_unique<OrtFlow>();
}

std::unique_ptr<DeploymentFlow>
makeTensorRtFlow()
{
    return std::make_unique<TensorRtFlow>();
}

std::unique_ptr<DeploymentFlow>
makeFlow(const std::string &name)
{
    if (name == "pytorch" || name == "pt")
        return makePyTorchFlow();
    if (name == "inductor" || name == "torchinductor")
        return makeInductorFlow();
    if (name == "ort" || name == "onnxruntime")
        return makeOrtFlow();
    if (name == "tensorrt" || name == "trt")
        return makeTensorRtFlow();
    throw std::runtime_error("unknown deployment flow: " + name);
}

}  // namespace ngb
