#ifndef NGB_DEPLOY_FLOW_H
#define NGB_DEPLOY_FLOW_H

#include <memory>
#include <string>

#include "platform/plan.h"

namespace ngb {

/**
 * Options common to all deployment flows.
 */
struct FlowOptions {
    bool gpu = true;   ///< place kernels on the GPU device
    bool f16 = false;  ///< run GEMM kernels in half precision
};

/**
 * A deployment flow: schedules a model graph into an ExecutionPlan,
 * applying the flow's optimizations (operator fusion, kernel choice)
 * and reflecting its operator-support limitations (CPU fallback).
 *
 * Four flows mirror the paper's Section III-B: PyTorch eager,
 * TorchInductor, ONNX Runtime (CUDA EP), and TensorRT.
 */
class DeploymentFlow
{
  public:
    virtual ~DeploymentFlow() = default;

    virtual std::string name() const = 0;

    /** Schedule @p g under @p opts. The graph must outlive the plan. */
    virtual ExecutionPlan plan(const Graph &g,
                               const FlowOptions &opts) const = 0;
};

/** Eager PyTorch: one kernel (group) per operator, no fusion. */
std::unique_ptr<DeploymentFlow> makePyTorchFlow();

/**
 * TorchInductor: compiles element-wise / normalization / logit chains
 * into single fused kernels; GEMM kernels unchanged.
 */
std::unique_ptr<DeploymentFlow> makeInductorFlow();

/**
 * ONNX Runtime with the CUDA execution provider: compiled session
 * (cheap dispatch, faster kernels) but memory-layout operators are
 * unsupported on the EP and fall back to the CPU with PCIe transfers
 * (paper Case Study 1).
 */
std::unique_ptr<DeploymentFlow> makeOrtFlow();

/**
 * TensorRT: CONV+BN+ReLU pattern fusion into the GEMM kernel,
 * aggressive point-wise chain fusion, fastest kernels (paper Case
 * Study 2).
 */
std::unique_ptr<DeploymentFlow> makeTensorRtFlow();

/** Factory by name: "pytorch", "inductor", "ort", "tensorrt". */
std::unique_ptr<DeploymentFlow> makeFlow(const std::string &name);

}  // namespace ngb

#endif  // NGB_DEPLOY_FLOW_H
