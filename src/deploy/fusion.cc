#include "deploy/fusion.h"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <set>
#include <stdexcept>
#include <string>

namespace ngb {

namespace {

bool
isInputNode(const Node &n)
{
    return n.inputs.empty();
}

/** Kinds allowed inside a point-wise fusion chain. */
bool
pointwiseFusible(const Node &n, bool through_layout)
{
    if (n.kind == OpKind::Fused)
        return false;  // never nest fused groups
    if (n.outShapes.size() != 1)
        return false;  // e.g. executable Quantize: value + scale out
    switch (n.category()) {
      case OpCategory::Activation:
      case OpCategory::ElementWise:
      case OpCategory::Normalization:
      case OpCategory::LogitCompute:
      case OpCategory::QDQ:
        return true;
      case OpCategory::Memory:
        return through_layout && n.cost.zeroCopy;
      default:
        return false;
    }
}

/** Sum of activation bytes of a node's outputs. */
double
outBytes(const Node &n)
{
    double b = 0;
    for (size_t i = 0; i < n.outShapes.size(); ++i)
        b += static_cast<double>(n.outShapes[i].numel()) *
             static_cast<double>(dtypeSize(n.outDtypes[i]));
    return b;
}

double
valueBytes(const Graph &g, const Value &v)
{
    return static_cast<double>(g.shapeOf(v).numel()) *
           static_cast<double>(dtypeSize(g.dtypeOf(v)));
}

}  // namespace

KernelGroup
singletonGroup(const Graph &g, const Node &n)
{
    (void)g;
    KernelGroup kg;
    kg.nodeIds = {n.id};
    kg.category = n.category();
    kg.label = n.name;
    kg.zeroCopy = n.cost.zeroCopy;
    kg.kernelCount = static_cast<int>(n.attrs.getI("kernels", 1));
    kg.bigKernels = static_cast<int>(
        n.attrs.getI("big_kernels", kg.kernelCount));
    kg.flops = n.cost.flops;
    kg.bytesIn = n.cost.bytesIn;
    kg.bytesOut = n.cost.bytesOut;
    kg.bytesParam = n.cost.bytesParam;
    kg.i8 = n.kind == OpKind::Int8Linear;
    kg.hostSyncs = static_cast<int>(n.attrs.getI("syncs", 0));
    return kg;
}

std::vector<KernelGroup>
fuseGraph(const Graph &g, const FusionConfig &cfg, FusionStats *stats)
{
    std::vector<int> uses = g.useCounts();

    // Map each value to its single consumer node id (or -1).
    std::map<std::pair<int, int>, int> consumer;
    for (const Node &n : g.nodes()) {
        for (const Value &v : n.inputs) {
            auto key = std::make_pair(v.node, v.index);
            if (consumer.count(key))
                consumer[key] = -2;  // multiple consumers
            else
                consumer[key] = n.id;
        }
    }
    auto soleConsumer = [&](int node_id) -> const Node * {
        const Node &n = g.node(node_id);
        if (n.outShapes.size() != 1)
            return nullptr;
        if (uses[static_cast<size_t>(node_id)] != 1)
            return nullptr;
        auto it = consumer.find({node_id, 0});
        if (it == consumer.end() || it->second < 0)
            return nullptr;
        return &g.node(it->second);
    };

    FusionStats st;
    std::vector<bool> taken(g.size(), false);
    std::vector<KernelGroup> groups;

    for (const Node &n : g.nodes()) {
        if (!isInputNode(n) && !n.isGemm())
            ++st.totalNonGemm;
    }

    auto aggregate = [&](const std::vector<int> &ids) {
        KernelGroup kg;
        kg.nodeIds = ids;
        kg.fused = ids.size() > 1;
        kg.kernelCount = 1;
        std::set<int> members(ids.begin(), ids.end());
        double best_weight = -1;
        bool has_gemm = false;
        for (int id : ids) {
            const Node &m = g.node(id);
            kg.flops += m.cost.flops;
            kg.bytesParam += m.cost.bytesParam;
            kg.i8 = kg.i8 || m.kind == OpKind::Int8Linear;
            if (m.isGemm())
                has_gemm = true;
            // External inputs only (graph inputs included: the fused
            // kernel still reads those bytes).
            for (const Value &v : m.inputs) {
                if (!members.count(v.node))
                    kg.bytesIn += valueBytes(g, v);
            }
            double w = m.cost.flops + m.cost.bytesIn + m.cost.bytesOut;
            if (!m.isGemm() && w > best_weight) {
                best_weight = w;
                kg.category = m.category();
                kg.label = m.name;
            }
        }
        // Outputs escaping the group.
        int last = ids.back();
        kg.bytesOut += outBytes(g.node(last));
        if (has_gemm) {
            kg.category = OpCategory::Gemm;
            kg.label = g.node(ids.front()).name + "+fused";
        }
        return kg;
    };

    // Values below 1 would let an empty "chain" through the threshold
    // check; a chain always contains at least its head.
    const int min_chain = std::max(cfg.minChainLen, 1);

    // Greedy point-wise extension from @p tail into @p chain.
    auto extendChain = [&](std::vector<int> &chain, int tail) {
        while (true) {
            const Node *c = soleConsumer(tail);
            if (!c || taken[static_cast<size_t>(c->id)])
                break;
            if (!pointwiseFusible(*c, cfg.fuseThroughLayout))
                break;
            // The chain tail must be the consumer's data producer;
            // other inputs become external group inputs.
            chain.push_back(c->id);
            tail = c->id;
        }
    };

    for (const Node &n : g.nodes()) {
        if (taken[static_cast<size_t>(n.id)] || isInputNode(n))
            continue;

        std::vector<int> chain = {n.id};

        if (cfg.fuseConvBnRelu && n.kind == OpKind::Conv2d) {
            // CONV -> BN [-> ReLU] folding.
            const Node *c = soleConsumer(n.id);
            if (c && (c->kind == OpKind::BatchNorm2d ||
                      c->kind == OpKind::FrozenBatchNorm2d ||
                      c->kind == OpKind::GroupNorm)) {
                chain.push_back(c->id);
                const Node *r = soleConsumer(c->id);
                if (r && (r->kind == OpKind::ReLU ||
                          r->kind == OpKind::SiLU ||
                          r->kind == OpKind::GELU))
                    chain.push_back(r->id);
            } else if (c && c->kind == OpKind::ReLU) {
                chain.push_back(c->id);
            }
        }
        if (chain.size() == 1 && cfg.fuseGemmEpilogues && n.isGemm() &&
            n.kind != OpKind::Fused && n.outShapes.size() == 1) {
            // GEMM + point-wise epilogue chain. Any epilogue is worth
            // folding into the GEMM write-out, so the point-wise
            // profitability threshold does not apply.
            extendChain(chain, n.id);
        } else if (chain.size() == 1 && cfg.fusePointwiseChains &&
                   pointwiseFusible(n, cfg.fuseThroughLayout)) {
            extendChain(chain, n.id);
            // Chains below the flow's profitability threshold stay
            // unfused; a single zero-copy op stays zero-copy.
            if (static_cast<int>(chain.size()) < min_chain) {
                chain.resize(1);
            }
            if (chain.size() == 1) {
                KernelGroup kg = singletonGroup(g, n);
                groups.push_back(kg);
                taken[static_cast<size_t>(n.id)] = true;
                ++st.groupsEmitted;
                continue;
            }
        }

        if (chain.size() > 1) {
            for (int id : chain)
                taken[static_cast<size_t>(id)] = true;
            KernelGroup kg = aggregate(chain);
            bool head_gemm = g.node(chain.front()).isGemm();
            for (int id : chain) {
                const Node &m = g.node(id);
                if (!m.isGemm()) {
                    ++st.fusedNonGemm;
                    if (head_gemm)
                        ++st.fusedWithGemm;
                }
            }
            groups.push_back(std::move(kg));
        } else {
            taken[static_cast<size_t>(n.id)] = true;
            groups.push_back(singletonGroup(g, n));
        }
        ++st.groupsEmitted;
    }

    if (stats)
        *stats = st;
    return groups;
}

namespace {

/**
 * Member slots per fused node in the synthetic negative member-id
 * space (-1 - fid * kMaxFusedMembers - j). Member ids must be unique
 * per ParamStore, which keys its caches on (node id, param index);
 * real node ids are non-negative, so the two spaces never collide.
 */
constexpr int kMaxFusedMembers = 256;

}  // namespace

Graph
applyFusion(const Graph &g, const FusionConfig &cfg, FusionStats *stats)
{
    std::vector<KernelGroup> groups = fuseGraph(g, cfg, stats);

    // Work items: every input/constant node (fuseGraph skips them)
    // plus every group, emitted in ascending tail-id order. Chain
    // member ids strictly ascend and only a group's tail value
    // escapes the group, so the producer of any external input has a
    // strictly smaller tail id than the consuming group's tail:
    // ascending tail order is a topological order for the new graph.
    struct Item {
        int tail;
        const KernelGroup *group;  ///< null: input node @p tail
    };
    std::vector<Item> items;
    for (const Node &n : g.nodes())
        if (isInputNode(n))
            items.push_back({n.id, nullptr});
    for (const KernelGroup &kg : groups)
        items.push_back({kg.nodeIds.back(), &kg});
    std::sort(items.begin(), items.end(),
              [](const Item &a, const Item &b) { return a.tail < b.tail; });

    Graph out;
    out.setName(g.name());
    std::map<std::pair<int, int>, Value> vmap;  // old value -> new
    auto mapValue = [&](const Value &v) {
        auto it = vmap.find({v.node, v.index});
        if (it == vmap.end())
            throw std::runtime_error(
                "applyFusion: value from node " + std::to_string(v.node) +
                " consumed before its group was emitted (fusion broke "
                "topological order)");
        return it->second;
    };
    // Fusion renumbers nodes, but parameter values are seeded by node
    // id; "seed_id" pins every node (and fused member) to its
    // pre-rewrite id so the rewritten graph computes with identical
    // parameters. Existing seed_ids (an already-rewritten input graph)
    // are kept.
    auto pinSeedId = [](Node &n, int old_id) {
        if (!n.attrs.has("seed_id"))
            n.attrs.set("seed_id", old_id);
    };

    for (const Item &item : items) {
        if (!item.group || item.group->nodeIds.size() == 1) {
            // Input node or singleton group: copy through.
            int old_id = item.group ? item.group->nodeIds[0] : item.tail;
            Node n = g.node(old_id);
            pinSeedId(n, old_id);
            for (Value &v : n.inputs)
                v = mapValue(v);
            int nid = out.addNode(std::move(n));
            const Node &src = g.node(old_id);
            for (size_t k = 0; k < src.outShapes.size(); ++k)
                vmap[{old_id, static_cast<int>(k)}] =
                    Value{nid, static_cast<int>(k)};
            continue;
        }

        const KernelGroup &kg = *item.group;
        if (kg.nodeIds.size() > static_cast<size_t>(kMaxFusedMembers))
            throw std::runtime_error(
                "applyFusion: fused group exceeds " +
                std::to_string(kMaxFusedMembers) + " members");

        Node f;
        f.kind = OpKind::Fused;
        f.attributedCategory = kg.category;
        f.cost.flops = kg.flops;
        f.cost.bytesIn = kg.bytesIn;
        f.cost.bytesOut = kg.bytesOut;
        f.cost.bytesParam = kg.bytesParam;

        std::vector<Node> body;
        std::vector<Value> ext;
        std::string name;
        int prev = -1;
        for (int id : kg.nodeIds) {
            const Node &m = g.node(id);
            if (m.outShapes.size() != 1)
                throw std::runtime_error(
                    "applyFusion: cannot fold multi-output op '" +
                    m.name + "' into a fused chain");
            Node member = m;
            pinSeedId(member, id);
            // Map each input port: -1 = fed by the previous member's
            // output, else an index into the fused node's inputs.
            std::vector<int64_t> ext_ports;
            int chain_ports = 0;
            for (const Value &v : m.inputs) {
                if (prev != -1 && v.node == prev) {
                    ext_ports.push_back(-1);
                    ++chain_ports;
                } else {
                    ext_ports.push_back(
                        static_cast<int64_t>(ext.size()));
                    ext.push_back(mapValue(v));
                }
            }
            if (prev != -1 && chain_ports != 1)
                throw std::runtime_error(
                    "applyFusion: chain member '" + m.name +
                    "' must consume its predecessor exactly once");
            member.attrs.setInts("__ext_ports", std::move(ext_ports));
            f.fusedKinds.push_back(m.kind);
            name += (name.empty() ? "" : "+") + m.name;
            body.push_back(std::move(member));
            prev = id;
        }
        const Node &tail = g.node(kg.nodeIds.back());
        f.name = std::move(name);
        f.inputs = std::move(ext);
        f.outShapes = tail.outShapes;
        f.outDtypes = tail.outDtypes;

        int fid = out.addNode(std::move(f));
        Node &fn = out.node(fid);
        for (size_t j = 0; j < body.size(); ++j)
            body[j].id = -1 - (fid * kMaxFusedMembers +
                               static_cast<int>(j));
        fn.fusedBody = std::move(body);
        vmap[{kg.nodeIds.back(), 0}] = Value{fid, 0};
    }

    for (const Value &v : g.graphInputs())
        out.markInput(mapValue(v));
    for (const Value &v : g.graphOutputs())
        out.markOutput(mapValue(v));
    return out;
}

FusionConfig
executableFusionConfig()
{
    FusionConfig cfg;
    cfg.fuseConvBnRelu = true;
    cfg.fusePointwiseChains = true;
    cfg.fuseGemmEpilogues = true;
    return cfg;
}

bool
fuseEnabledByEnv()
{
    const char *env = std::getenv("NGB_FUSE");
    return env && *env && std::string(env) != "0";
}

}  // namespace ngb
