#include "deploy/fusion.h"

#include <algorithm>
#include <map>
#include <set>

namespace ngb {

namespace {

bool
isInputNode(const Node &n)
{
    return n.inputs.empty();
}

/** Kinds allowed inside a point-wise fusion chain. */
bool
pointwiseFusible(const Node &n, bool through_layout)
{
    switch (n.category()) {
      case OpCategory::Activation:
      case OpCategory::ElementWise:
      case OpCategory::Normalization:
      case OpCategory::LogitCompute:
      case OpCategory::QDQ:
        return true;
      case OpCategory::Memory:
        return through_layout && n.cost.zeroCopy;
      default:
        return false;
    }
}

/** Sum of activation bytes of a node's outputs. */
double
outBytes(const Node &n)
{
    double b = 0;
    for (size_t i = 0; i < n.outShapes.size(); ++i)
        b += static_cast<double>(n.outShapes[i].numel()) *
             static_cast<double>(dtypeSize(n.outDtypes[i]));
    return b;
}

double
valueBytes(const Graph &g, const Value &v)
{
    return static_cast<double>(g.shapeOf(v).numel()) *
           static_cast<double>(dtypeSize(g.dtypeOf(v)));
}

}  // namespace

KernelGroup
singletonGroup(const Graph &g, const Node &n)
{
    (void)g;
    KernelGroup kg;
    kg.nodeIds = {n.id};
    kg.category = n.category();
    kg.label = n.name;
    kg.zeroCopy = n.cost.zeroCopy;
    kg.kernelCount = static_cast<int>(n.attrs.getI("kernels", 1));
    kg.bigKernels = static_cast<int>(
        n.attrs.getI("big_kernels", kg.kernelCount));
    kg.flops = n.cost.flops;
    kg.bytesIn = n.cost.bytesIn;
    kg.bytesOut = n.cost.bytesOut;
    kg.bytesParam = n.cost.bytesParam;
    kg.i8 = n.kind == OpKind::Int8Linear;
    kg.hostSyncs = static_cast<int>(n.attrs.getI("syncs", 0));
    return kg;
}

std::vector<KernelGroup>
fuseGraph(const Graph &g, const FusionConfig &cfg, FusionStats *stats)
{
    std::vector<int> uses = g.useCounts();

    // Map each value to its single consumer node id (or -1).
    std::map<std::pair<int, int>, int> consumer;
    for (const Node &n : g.nodes()) {
        for (const Value &v : n.inputs) {
            auto key = std::make_pair(v.node, v.index);
            if (consumer.count(key))
                consumer[key] = -2;  // multiple consumers
            else
                consumer[key] = n.id;
        }
    }
    auto soleConsumer = [&](int node_id) -> const Node * {
        const Node &n = g.node(node_id);
        if (n.outShapes.size() != 1)
            return nullptr;
        if (uses[static_cast<size_t>(node_id)] != 1)
            return nullptr;
        auto it = consumer.find({node_id, 0});
        if (it == consumer.end() || it->second < 0)
            return nullptr;
        return &g.node(it->second);
    };

    FusionStats st;
    std::vector<bool> taken(g.size(), false);
    std::vector<KernelGroup> groups;

    for (const Node &n : g.nodes()) {
        if (!isInputNode(n) && !n.isGemm())
            ++st.totalNonGemm;
    }

    auto aggregate = [&](const std::vector<int> &ids) {
        KernelGroup kg;
        kg.nodeIds = ids;
        kg.fused = ids.size() > 1;
        kg.kernelCount = 1;
        std::set<int> members(ids.begin(), ids.end());
        double best_weight = -1;
        bool has_gemm = false;
        for (int id : ids) {
            const Node &m = g.node(id);
            kg.flops += m.cost.flops;
            kg.bytesParam += m.cost.bytesParam;
            kg.i8 = kg.i8 || m.kind == OpKind::Int8Linear;
            if (m.isGemm())
                has_gemm = true;
            // External inputs only.
            for (const Value &v : m.inputs) {
                if (!members.count(v.node) &&
                    !isInputNode(g.node(v.node)))
                    kg.bytesIn += valueBytes(g, v);
                else if (!members.count(v.node))
                    kg.bytesIn += valueBytes(g, v);
            }
            double w = m.cost.flops + m.cost.bytesIn + m.cost.bytesOut;
            if (!m.isGemm() && w > best_weight) {
                best_weight = w;
                kg.category = m.category();
                kg.label = m.name;
            }
        }
        // Outputs escaping the group.
        int last = ids.back();
        kg.bytesOut += outBytes(g.node(last));
        if (has_gemm) {
            kg.category = OpCategory::Gemm;
            kg.label = g.node(ids.front()).name + "+fused";
        }
        return kg;
    };

    for (const Node &n : g.nodes()) {
        if (taken[static_cast<size_t>(n.id)] || isInputNode(n))
            continue;

        std::vector<int> chain = {n.id};

        if (cfg.fuseConvBnRelu && n.kind == OpKind::Conv2d) {
            // CONV -> BN [-> ReLU] folding.
            const Node *c = soleConsumer(n.id);
            if (c && (c->kind == OpKind::BatchNorm2d ||
                      c->kind == OpKind::FrozenBatchNorm2d ||
                      c->kind == OpKind::GroupNorm)) {
                chain.push_back(c->id);
                const Node *r = soleConsumer(c->id);
                if (r && (r->kind == OpKind::ReLU ||
                          r->kind == OpKind::SiLU ||
                          r->kind == OpKind::GELU))
                    chain.push_back(r->id);
            } else if (c && c->kind == OpKind::ReLU) {
                chain.push_back(c->id);
            }
        } else if (cfg.fusePointwiseChains &&
                   pointwiseFusible(n, cfg.fuseThroughLayout)) {
            // Greedy point-wise chain extension.
            int tail = n.id;
            while (true) {
                const Node *c = soleConsumer(tail);
                if (!c || taken[static_cast<size_t>(c->id)])
                    break;
                if (!pointwiseFusible(*c, cfg.fuseThroughLayout))
                    break;
                // The chain tail must be the consumer's data producer;
                // other inputs become external group inputs.
                chain.push_back(c->id);
                tail = c->id;
            }
            // Chains below the flow's profitability threshold stay
            // unfused; a single zero-copy op stays zero-copy.
            if (static_cast<int>(chain.size()) < cfg.minChainLen) {
                chain.resize(1);
            }
            if (chain.size() == 1) {
                KernelGroup kg = singletonGroup(g, n);
                groups.push_back(kg);
                taken[static_cast<size_t>(n.id)] = true;
                ++st.groupsEmitted;
                continue;
            }
        }

        if (chain.size() > 1) {
            for (int id : chain)
                taken[static_cast<size_t>(id)] = true;
            KernelGroup kg = aggregate(chain);
            bool head_gemm = g.node(chain.front()).isGemm();
            for (int id : chain) {
                const Node &m = g.node(id);
                if (!m.isGemm()) {
                    ++st.fusedNonGemm;
                    if (head_gemm)
                        ++st.fusedWithGemm;
                }
            }
            groups.push_back(std::move(kg));
        } else {
            taken[static_cast<size_t>(n.id)] = true;
            groups.push_back(singletonGroup(g, n));
        }
        ++st.groupsEmitted;
    }

    if (stats)
        *stats = st;
    return groups;
}

}  // namespace ngb
