#include "serve/request_queue.h"

#include <algorithm>

#include "obs/metrics.h"

namespace ngb {

namespace {

using Clock = std::chrono::steady_clock;

/** Admission-side instruments (producer threads; relaxed atomics). */
struct QueueMetrics {
    obs::Counter &admitted;
    obs::Counter &rejected;
    obs::Gauge &depth;

    static QueueMetrics &instance()
    {
        auto &reg = obs::MetricsRegistry::instance();
        static QueueMetrics m{
            reg.counter("serve.requests_admitted"),
            reg.counter("serve.requests_rejected"),
            reg.gauge("serve.queue_depth"),
        };
        return m;
    }
};

}  // namespace

RequestQueue::RequestQueue(size_t maxDepth, AdmissionPolicy policy)
    : maxDepth_(std::max<size_t>(maxDepth, 1)), policy_(policy)
{
}

bool
RequestQueue::push(ServeRequest r)
{
    // Arrival is stamped on entry, before any admission blocking, so
    // a request's reported queue time covers the full submit ->
    // dispatch interval (backpressure wait included).
    r.arrival = Clock::now();
    bool metrics = obs::metricsEnabled();
    std::unique_lock<std::mutex> lock(mutex_);
    if (closed_) {
        if (metrics)
            QueueMetrics::instance().rejected.inc();
        return false;
    }
    if (queue_.size() >= maxDepth_) {
        if (policy_ == AdmissionPolicy::Reject) {
            if (metrics)
                QueueMetrics::instance().rejected.inc();
            return false;
        }
        spaceCv_.wait(lock, [&] {
            return closed_ || queue_.size() < maxDepth_;
        });
        if (closed_) {
            if (metrics)
                QueueMetrics::instance().rejected.inc();
            return false;
        }
    }
    queue_.push_back(std::move(r));
    if (metrics) {
        QueueMetrics &m = QueueMetrics::instance();
        m.admitted.inc();
        m.depth.set(static_cast<int64_t>(queue_.size()));
    }
    dataCv_.notify_one();
    return true;
}

std::vector<ServeRequest>
RequestQueue::extractLocked(const std::string &model, int maxBatch)
{
    std::vector<ServeRequest> out;
    out.reserve(std::min(static_cast<size_t>(maxBatch), queue_.size()));
    for (auto it = queue_.begin();
         it != queue_.end() && out.size() < static_cast<size_t>(maxBatch);) {
        if (it->model == model) {
            out.push_back(std::move(*it));
            it = queue_.erase(it);
        } else {
            ++it;
        }
    }
    return out;
}

std::vector<ServeRequest>
RequestQueue::popBatch(int maxBatch, int64_t timeoutUs,
                       bool *closedByTimeout)
{
    maxBatch = std::max(maxBatch, 1);
    // Clamp the deadline to one hour: `arrival + microseconds(t)` is
    // converted to the clock's (nanosecond) period, so a huge t meant
    // as "never" would overflow int64 and wrap to an already-expired
    // deadline, closing every batch instantly.
    timeoutUs = std::min<int64_t>(std::max<int64_t>(timeoutUs, 0),
                                  3'600'000'000);
    if (closedByTimeout)
        *closedByTimeout = false;
    std::unique_lock<std::mutex> lock(mutex_);
    while (true) {
        if (queue_.empty()) {
            if (closed_)
                return {};
            dataCv_.wait(lock,
                         [&] { return closed_ || !queue_.empty(); });
            continue;
        }

        // Only this (batcher) thread pops, so the oldest request — and
        // with it the batch's model and deadline — is stable across
        // the waits below.
        const std::string model = queue_.front().model;
        size_t available = 0;
        for (const ServeRequest &r : queue_)
            if (r.model == model && ++available >=
                                        static_cast<size_t>(maxBatch))
                break;

        // Close immediately when full, closed, or at capacity: with the
        // queue at maxDepth every producer is blocked (or shedding), so
        // no same-model request can arrive and waiting out the deadline
        // would only idle the engine.
        if (available >= static_cast<size_t>(maxBatch) || closed_ ||
            queue_.size() >= maxDepth_) {
            auto batch = extractLocked(model, maxBatch);
            if (obs::metricsEnabled())
                QueueMetrics::instance().depth.set(
                    static_cast<int64_t>(queue_.size()));
            spaceCv_.notify_all();
            return batch;
        }

        auto deadline =
            queue_.front().arrival + std::chrono::microseconds(timeoutUs);
        if (Clock::now() >= deadline) {
            if (closedByTimeout)
                *closedByTimeout = true;
            auto batch = extractLocked(model, maxBatch);
            if (obs::metricsEnabled())
                QueueMetrics::instance().depth.set(
                    static_cast<int64_t>(queue_.size()));
            spaceCv_.notify_all();
            return batch;
        }
        dataCv_.wait_until(lock, deadline);
    }
}

void
RequestQueue::close()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        closed_ = true;
    }
    spaceCv_.notify_all();
    dataCv_.notify_all();
}

size_t
RequestQueue::depth() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
}

bool
RequestQueue::closed() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
}

}  // namespace ngb
