#ifndef NGB_SERVE_SERVE_STATS_H
#define NGB_SERVE_SERVE_STATS_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/perf.h"
#include "quant/quant_mode.h"

namespace ngb {

/**
 * Per-request latency record, in the units a user of the server
 * experiences: queueUs is arrival -> batch close (admission +
 * batching delay), execUs is batch close -> completion (the wall time
 * of the batch the request rode in, including any engine build on a
 * cache miss). totalUs() is end-to-end.
 */
struct RequestRecord {
    uint64_t id = 0;
    std::string model;
    uint64_t seed = 0;
    double queueUs = 0;
    double execUs = 0;
    int batchSize = 1;  ///< size of the batch this request rode in

    double totalUs() const { return queueUs + execUs; }
};

/** One dispatched batch. */
struct BatchRecord {
    std::string model;
    int size = 0;
    double wallUs = 0;
    bool closedByTimeout = false;  ///< deadline fired before max_batch
};

/** Queue depth observed at one batch-dispatch instant. */
struct QueueDepthSample {
    double tUs = 0;  ///< since serving start
    size_t depth = 0;
};

/**
 * Everything the serving layer measures over one run: admission
 * counters, per-request latency records, per-batch records, queue
 * depth over time, and engine-cache behavior. The profiler's serve
 * report (src/profiler/serve_report.h) turns this into the
 * human-readable and JSON outputs.
 */
struct ServeStats {
    double durationUs = 0;  ///< first submission -> queue drained

    int64_t offered = 0;    ///< requests the load generator produced
    int64_t admitted = 0;   ///< accepted into the queue
    int64_t rejected = 0;   ///< bounced by admission control
    int64_t completed = 0;  ///< served to completion

    std::vector<RequestRecord> requests;  ///< completed, dispatch order
    std::vector<BatchRecord> batches;

    /**
     * Queue depth over time, timestamps monotonic since session start
     * (the same t0 durationUs measures from): event-driven samples
     * taken at every batch dispatch, merged with fixed-cadence samples
     * from the serve loop's sampler thread when one runs.
     */
    std::vector<QueueDepthSample> depthSamples;

    /** Sampler thread cadence (0 = no sampler ran). */
    int64_t samplerCadenceUs = 0;
    std::map<int, int64_t> batchSizeHist;
    std::map<std::string, int64_t> completedByModel;

    int64_t cacheHits = 0;
    int64_t cacheMisses = 0;
    double engineBuildUs = 0;  ///< total planning time on cache misses

    // -- Memory behaviour of the serving session ----------------------

    bool arena = false;          ///< engines executed through arenas
    int64_t tensorAllocs = 0;    ///< Storage heap allocs during serving
    int64_t tensorAllocBytes = 0;
    int64_t arenaBlocks = 0;     ///< pooled blocks across all engines
    int64_t arenaBlockBytes = 0; ///< total bytes of those blocks

    // -- Quantization of the served engines ---------------------------

    std::string quantMode = "off";  ///< EngineConfig::quant compiled in
    /** Census summed across cached engines (times stay zero). */
    quant::QuantExecStats quant;

    /**
     * Hardware-counter aggregate of the session's kernel work (zeroed
     * stats with enabled=false when --perf was off; measured=false
     * with a status string on hosts without perf_event_open access).
     */
    obs::PerfCounterStats perf;

    /** Session-mean counter footprint of one completed request. */
    double cyclesPerRequest() const
    {
        return completed > 0 ? static_cast<double>(perf.total.cycles) /
                                   static_cast<double>(completed)
                             : 0;
    }

    /**
     * Heap tensor allocations per completed request over the whole
     * session (includes warm-up: engine builds and pool growth — a
     * steady-state loop adds zero, so this tends to 0 as sessions
     * lengthen with arenas on).
     */
    double allocsPerRequest() const
    {
        return completed > 0 ? static_cast<double>(tensorAllocs) /
                                   static_cast<double>(completed)
                             : static_cast<double>(tensorAllocs);
    }

    double throughputRps() const
    {
        return durationUs > 0
                   ? 1e6 * static_cast<double>(completed) / durationUs
                   : 0;
    }

    double cacheHitRate() const
    {
        int64_t total = cacheHits + cacheMisses;
        return total > 0
                   ? static_cast<double>(cacheHits) /
                         static_cast<double>(total)
                   : 0;
    }

    double meanBatchSize() const
    {
        return batches.empty() ? 0
                               : static_cast<double>(completed) /
                                     static_cast<double>(batches.size());
    }
};

}  // namespace ngb

#endif  // NGB_SERVE_SERVE_STATS_H
