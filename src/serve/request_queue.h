#ifndef NGB_SERVE_REQUEST_QUEUE_H
#define NGB_SERVE_REQUEST_QUEUE_H

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace ngb {

/**
 * One inference request as it travels through the serving layer.
 *
 * The payload is a (model, seed) pair rather than materialized
 * tensors: inputs are derived deterministically from the seed at
 * dispatch time (makeRequestInputs), which keeps the queue cheap and
 * makes every request independently re-runnable for verification.
 */
struct ServeRequest {
    uint64_t id = 0;
    std::string model;
    uint64_t seed = 0;
    std::chrono::steady_clock::time_point arrival;

    /**
     * Invoked on the batcher thread when the request completes, with
     * the request's graph outputs moved in. May be empty. Closed-loop
     * clients use it to issue their next request; the serve driver
     * uses it to retain outputs for --verify.
     */
    std::function<void(std::vector<Tensor> &&)> onComplete;
};

/** What admission control does when the queue is at maxDepth. */
enum class AdmissionPolicy {
    Block,   ///< push() waits for space (backpressure onto the client)
    Reject,  ///< push() fails immediately (load shedding)
};

/**
 * Thread-safe bounded FIFO between load generators and the
 * DynamicBatcher.
 *
 * Producers push() from any number of threads; the single batcher
 * thread calls popBatch(), which implements the batching policy:
 * take the model of the oldest queued request (FIFO across models —
 * no tenant starvation) and close a batch of that model when either
 * maxBatch requests are available or the oldest has waited
 * timeoutUs. Requests of other models keep their queue positions.
 *
 * close() ends admission: subsequent or blocked push() calls return
 * false, popBatch() drains what is left without waiting out the
 * deadline, then returns empty batches forever.
 */
class RequestQueue
{
  public:
    explicit RequestQueue(size_t maxDepth = 256,
                          AdmissionPolicy policy = AdmissionPolicy::Block);

    /**
     * Admit @p r (stamps arrival). Returns false when rejected by
     * admission control or the queue is closed.
     */
    bool push(ServeRequest r);

    /**
     * Block until a batch can be closed under the (maxBatch,
     * timeoutUs) policy, then return it (nonempty, single model,
     * arrival order). Empty result means closed-and-drained.
     * @p closedByTimeout reports which condition closed the batch.
     * timeoutUs is clamped to [0, 1 h] (overflow-safe "never").
     */
    std::vector<ServeRequest> popBatch(int maxBatch, int64_t timeoutUs,
                                       bool *closedByTimeout = nullptr);

    void close();

    size_t depth() const;
    size_t maxDepth() const { return maxDepth_; }
    AdmissionPolicy policy() const { return policy_; }
    bool closed() const;

  private:
    /** Remove and return up to maxBatch queued requests of @p model. */
    std::vector<ServeRequest> extractLocked(const std::string &model,
                                            int maxBatch);

    mutable std::mutex mutex_;
    std::condition_variable spaceCv_;  ///< producers wait (Block policy)
    std::condition_variable dataCv_;   ///< batcher waits for arrivals
    std::deque<ServeRequest> queue_;
    size_t maxDepth_;
    AdmissionPolicy policy_;
    bool closed_ = false;
};

}  // namespace ngb

#endif  // NGB_SERVE_REQUEST_QUEUE_H
