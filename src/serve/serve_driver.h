#ifndef NGB_SERVE_SERVE_DRIVER_H
#define NGB_SERVE_SERVE_DRIVER_H

#include <cstdint>
#include <vector>

#include "serve/dynamic_batcher.h"
#include "serve/load_gen.h"

namespace ngb {
namespace serve {

/** Everything one serving run needs: traffic, policy, and shapes. */
struct ServeConfig {
    std::vector<MixEntry> mix{{"vit_b", 1}};

    double rps = 100;      ///< open-loop Poisson arrival rate
    double durationS = 2;  ///< load-generation horizon
    int clients = 0;       ///< > 0: closed-loop N clients (rps unused)

    DynamicBatcher::Policy policy;
    size_t queueDepth = 256;
    AdmissionPolicy admission = AdmissionPolicy::Block;

    EngineConfig engine;  ///< scale / seqLen for every tenant

    uint64_t seed = 42;  ///< load-gen + request-payload seed
    bool verify = false;
    bool collectOutputs = false;  ///< retain outputs (implied by verify)

    /**
     * Cadence of the serve loop's sampler thread, which snapshots
     * queue depth onto the session time axis (ServeStats::depthSamples)
     * and — when the paths below are set — rewrites live metrics
     * snapshots every tick. 0 disables the sampler.
     */
    int64_t samplerCadenceUs = 10000;

    /** Rewritten each sampler tick + once post-drain. "" = off. */
    std::string metricsJsonPath;
    std::string metricsPromPath;
};

/** Retained outputs of one served request (verify / determinism). */
struct CompletedOutput {
    uint64_t id = 0;
    std::string model;
    uint64_t seed = 0;
    std::vector<Tensor> outputs;
};

struct ServeResult {
    ServeStats stats;
    std::vector<CompletedOutput> outputs;  ///< when collected, in
                                           ///< completion order
    bool verified = false;
    int64_t verifiedRequests = 0;
    int64_t verifyMismatches = 0;
};

/**
 * Run one complete serving session on @p pool: build the engine
 * cache, start the DynamicBatcher, generate traffic (open-loop
 * Poisson trace replay, or closed-loop clients when cfg.clients > 0),
 * drain, and — when cfg.verify — re-run every served request on the
 * serial Executor and count bit-exact mismatches.
 *
 * Deterministic under a fixed cfg.seed: in open-loop mode the request
 * trace (ids, models, payload seeds) and every request's outputs are
 * identical across runs; only the timing-derived statistics vary. In
 * closed-loop mode the trace *length* depends on wall-clock service
 * speed — each client's request sequence and all payloads/outputs are
 * still seed-deterministic, but how far a client gets within the
 * horizon is not.
 */
ServeResult runServe(const ServeConfig &cfg, ThreadPool &pool);

}  // namespace serve
}  // namespace ngb

#endif  // NGB_SERVE_SERVE_DRIVER_H
