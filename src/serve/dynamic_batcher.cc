#include "serve/dynamic_batcher.h"

#include "runtime/request_util.h"
#include "runtime/runtime_profile.h"

namespace ngb {
namespace serve {

namespace {

using Clock = std::chrono::steady_clock;

}  // namespace

DynamicBatcher::DynamicBatcher(RequestQueue &queue, EngineCache &cache,
                               Policy policy, Sink sink)
    : queue_(queue), cache_(cache), policy_(policy), sink_(std::move(sink))
{
}

DynamicBatcher::~DynamicBatcher()
{
    if (thread_.joinable()) {
        queue_.close();
        thread_.join();
    }
}

void
DynamicBatcher::start()
{
    t0_ = Clock::now();
    thread_ = std::thread([this] { loop(); });
}

void
DynamicBatcher::dispatch(std::vector<ServeRequest> &batch, bool byTimeout)
{
    auto dispatchTp = Clock::now();
    stats_.depthSamples.push_back(
        {std::chrono::duration<double, std::micro>(dispatchTp - t0_)
             .count(),
         queue_.depth()});

    Engine &engine = cache_.get(batch[0].model);
    std::vector<std::vector<Tensor>> inputs;
    inputs.reserve(batch.size());
    for (const ServeRequest &r : batch)
        inputs.push_back(makeRequestInputs(engine.graph(), r.seed));
    std::vector<std::vector<Tensor>> outputs = engine.run(inputs);
    double execUs = elapsedUsSince(dispatchTp);

    BatchRecord br;
    br.model = batch[0].model;
    br.size = static_cast<int>(batch.size());
    br.wallUs = execUs;
    br.closedByTimeout = byTimeout;
    stats_.batches.push_back(br);
    ++stats_.batchSizeHist[br.size];

    for (size_t i = 0; i < batch.size(); ++i) {
        ServeRequest &r = batch[i];
        RequestRecord rec;
        rec.id = r.id;
        rec.model = r.model;
        rec.seed = r.seed;
        rec.queueUs = std::chrono::duration<double, std::micro>(
                          dispatchTp - r.arrival)
                          .count();
        rec.execUs = execUs;
        rec.batchSize = br.size;
        stats_.requests.push_back(rec);
        ++stats_.completed;
        ++stats_.completedByModel[r.model];
        if (sink_)
            sink_(rec, outputs[i]);
        if (r.onComplete) {
            auto complete = std::move(r.onComplete);
            r.onComplete = nullptr;  // never double-notified on error
            complete(std::move(outputs[i]));
        }
    }
}

void
DynamicBatcher::loop()
{
    while (true) {
        bool byTimeout = false;
        std::vector<ServeRequest> batch =
            queue_.popBatch(policy_.maxBatch, policy_.timeoutUs, &byTimeout);
        if (batch.empty())
            break;  // closed and drained
        try {
            dispatch(batch, byTimeout);
        } catch (...) {
            if (!error_)
                error_ = std::current_exception();
            // Fail fast: refuse new work and unblock anyone waiting on
            // requests this loop will never serve — the in-flight
            // batch first, then whatever is still queued.
            queue_.close();
            for (ServeRequest &r : batch)
                if (r.onComplete)
                    r.onComplete({});
            while (true) {
                std::vector<ServeRequest> rest =
                    queue_.popBatch(policy_.maxBatch, 0);
                if (rest.empty())
                    break;
                for (ServeRequest &r : rest)
                    if (r.onComplete)
                        r.onComplete({});
            }
            break;
        }
    }
}

void
DynamicBatcher::join()
{
    if (thread_.joinable())
        thread_.join();
    auto cache = cache_.stats();
    stats_.cacheHits = cache.hits;
    stats_.cacheMisses = cache.misses;
    stats_.engineBuildUs = cache.buildUs;
    if (error_)
        std::rethrow_exception(error_);
}

}  // namespace serve
}  // namespace ngb
