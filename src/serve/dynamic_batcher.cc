#include "serve/dynamic_batcher.h"

#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/request_util.h"
#include "runtime/runtime_profile.h"

namespace ngb {
namespace serve {

namespace {

using Clock = std::chrono::steady_clock;

/**
 * The batcher's serving instruments, resolved once. Observation sites
 * below guard on metricsEnabled() before touching them, so a
 * metrics-off session pays one branch per request.
 */
struct BatcherMetrics {
    obs::Counter &requests;
    obs::Counter &batches;
    obs::Counter &batchesByTimeout;
    obs::Histogram &queueUs;
    obs::Histogram &execUs;
    obs::Histogram &latencyUs;
    obs::Histogram &batchSize;

    static BatcherMetrics &instance()
    {
        auto &reg = obs::MetricsRegistry::instance();
        static BatcherMetrics m{
            reg.counter("serve.requests_completed"),
            reg.counter("serve.batches"),
            reg.counter("serve.batches_by_timeout"),
            reg.histogram("serve.queue_us"),
            reg.histogram("serve.exec_us"),
            reg.histogram("serve.latency_us"),
            reg.histogram("serve.batch_size"),
        };
        return m;
    }
};

}  // namespace

DynamicBatcher::DynamicBatcher(RequestQueue &queue, EngineCache &cache,
                               Policy policy, Sink sink)
    : queue_(queue), cache_(cache), policy_(policy), sink_(std::move(sink))
{
}

DynamicBatcher::~DynamicBatcher()
{
    if (thread_.joinable()) {
        queue_.close();
        thread_.join();
    }
}

void
DynamicBatcher::start(Clock::time_point epoch)
{
    t0_ = epoch;
    thread_ = std::thread([this] { loop(); });
}

void
DynamicBatcher::dispatch(std::vector<ServeRequest> &batch, bool byTimeout)
{
    auto dispatchTp = Clock::now();
    stats_.depthSamples.push_back(
        {std::chrono::duration<double, std::micro>(dispatchTp - t0_)
             .count(),
         queue_.depth()});

    // Each request's queue residency (admission -> batch close) as an
    // async span: concurrent residencies overlap on this thread's
    // track, which complete events would render as bogus nesting.
    if (obs::traceEnabled()) {
        obs::Tracer &tracer = obs::Tracer::instance();
        double closeUs = tracer.sinceEpochUs(dispatchTp);
        for (const ServeRequest &r : batch) {
            obs::SpanEvent ev;
            ev.kind = obs::SpanKind::Queue;
            // +1: open-loop request ids start at 0, and trace id 0
            // means "session-scoped span", not "request zero".
            ev.traceId = r.id + 1;
            ev.startUs = tracer.sinceEpochUs(r.arrival);
            ev.durUs = closeUs - ev.startUs;
            ev.setLabel(r.model);
            ev.a0 = static_cast<int64_t>(queue_.depth());
            tracer.record(ev);
        }
    }

    Engine &engine = cache_.get(batch[0].model);
    std::vector<std::vector<Tensor>> inputs;
    std::vector<uint64_t> traceIds;
    inputs.reserve(batch.size());
    traceIds.reserve(batch.size());
    for (const ServeRequest &r : batch) {
        inputs.push_back(makeRequestInputs(engine.graph(), r.seed));
        traceIds.push_back(r.id + 1);  // same +1 as the queue span
    }
    std::vector<std::vector<Tensor>> outputs;
    {
        obs::ScopedSpan span(obs::SpanKind::Batch);
        span.ev().setLabel(batch[0].model);
        span.ev().a0 = static_cast<int64_t>(batch.size());
        span.ev().flag = byTimeout;
        outputs = engine.run(inputs, &traceIds);
    }
    double execUs = elapsedUsSince(dispatchTp);

    BatchRecord br;
    br.model = batch[0].model;
    br.size = static_cast<int>(batch.size());
    br.wallUs = execUs;
    br.closedByTimeout = byTimeout;
    stats_.batches.push_back(br);
    ++stats_.batchSizeHist[br.size];

    if (obs::metricsEnabled()) {
        BatcherMetrics &m = BatcherMetrics::instance();
        m.batches.inc();
        if (byTimeout)
            m.batchesByTimeout.inc();
        m.execUs.observe(execUs);
        m.batchSize.observe(static_cast<double>(br.size));
    }

    for (size_t i = 0; i < batch.size(); ++i) {
        ServeRequest &r = batch[i];
        RequestRecord rec;
        rec.id = r.id;
        rec.model = r.model;
        rec.seed = r.seed;
        rec.queueUs = std::chrono::duration<double, std::micro>(
                          dispatchTp - r.arrival)
                          .count();
        rec.execUs = execUs;
        rec.batchSize = br.size;
        stats_.requests.push_back(rec);
        ++stats_.completed;
        ++stats_.completedByModel[r.model];
        if (obs::metricsEnabled()) {
            BatcherMetrics &m = BatcherMetrics::instance();
            m.requests.inc();
            m.queueUs.observe(rec.queueUs);
            m.latencyUs.observe(rec.queueUs + rec.execUs);
        }
        if (sink_)
            sink_(rec, outputs[i]);
        if (r.onComplete) {
            auto complete = std::move(r.onComplete);
            r.onComplete = nullptr;  // never double-notified on error
            complete(std::move(outputs[i]));
        }
    }
}

void
DynamicBatcher::loop()
{
    obs::Tracer::instance().setThreadName("batcher");
    while (true) {
        bool byTimeout = false;
        std::vector<ServeRequest> batch =
            queue_.popBatch(policy_.maxBatch, policy_.timeoutUs, &byTimeout);
        if (batch.empty())
            break;  // closed and drained
        try {
            dispatch(batch, byTimeout);
        } catch (...) {
            if (!error_)
                error_ = std::current_exception();
            // Fail fast: refuse new work and unblock anyone waiting on
            // requests this loop will never serve — the in-flight
            // batch first, then whatever is still queued.
            queue_.close();
            for (ServeRequest &r : batch)
                if (r.onComplete)
                    r.onComplete({});
            while (true) {
                std::vector<ServeRequest> rest =
                    queue_.popBatch(policy_.maxBatch, 0);
                if (rest.empty())
                    break;
                for (ServeRequest &r : rest)
                    if (r.onComplete)
                        r.onComplete({});
            }
            break;
        }
    }
}

void
DynamicBatcher::join()
{
    if (thread_.joinable())
        thread_.join();
    auto cache = cache_.stats();
    stats_.cacheHits = cache.hits;
    stats_.cacheMisses = cache.misses;
    stats_.engineBuildUs = cache.buildUs;
    if (error_)
        std::rethrow_exception(error_);
}

}  // namespace serve
}  // namespace ngb
