#include "serve/engine.h"

#include <chrono>

#include "models/registry.h"
#include "platform/cpu_features.h"
#include "runtime/runtime_profile.h"

namespace ngb {
namespace serve {

namespace {

/** Resolve an engine's backend: explicit pin > cache config > default. */
const Backend &
resolveBackend(const EngineConfig &cfg, const std::string &pin)
{
    const std::string &name = !pin.empty() ? pin : cfg.backend;
    return name.empty() ? defaultBackend() : findBackend(name);
}

/** The ISA level an engine key records: config pin > active level. */
std::string
resolveIsa(const EngineConfig &cfg)
{
    return cfg.isa.empty() ? platform::isaName(platform::activeIsa())
                           : cfg.isa;
}

}  // namespace

Engine::Engine(const std::string &model, const EngineConfig &cfg,
               ThreadPool &pool, const std::string &backendName)
    : model_(model)
{
    auto t0 = std::chrono::steady_clock::now();
    const auto &info = models::findModel(model);
    ModelConfig mc;
    mc.batch = 1;
    mc.seqLen = cfg.seqLen;
    mc.testScale = cfg.scale;
    graph_ = std::make_unique<Graph>(info.build(mc));
    quantMode_ = quant::parseQuantMode(cfg.quant);
    if (quantMode_ != quant::QuantExecMode::Off)
        *graph_ = quant::applyQuantMode(*graph_, quantMode_,
                                        &quantStats_);
    if (cfg.fuse)
        *graph_ = applyFusion(*graph_, executableFusionConfig());
    plan_ = buildEnginePlan(*graph_);
    backend_ = &resolveBackend(cfg, backendName);
    driver_ = std::make_unique<BatchDriver>(*graph_, pool, plan_,
                                            *backend_, cfg.arena,
                                            cfg.intraop);
    buildUs_ = elapsedUsSince(t0);
}

EngineCache::EngineCache(ThreadPool &pool, EngineConfig cfg)
    : pool_(pool), cfg_(cfg)
{
}

Engine &
EngineCache::get(const std::string &model, const std::string &backend)
{
    std::lock_guard<std::mutex> lock(mutex_);
    EngineKey key{model, cfg_.scale, pool_.threads(),
                  resolveBackend(cfg_, backend).name(), cfg_.fuse,
                  cfg_.arena, cfg_.quant, resolveIsa(cfg_),
                  intraOpModeName(cfg_.intraop)};
    auto it = engines_.find(key);
    if (it != engines_.end()) {
        ++stats_.hits;
        return *it->second;
    }
    ++stats_.misses;
    auto engine = std::make_unique<Engine>(model, cfg_, pool_, backend);
    stats_.buildUs += engine->buildUs();
    auto [pos, inserted] = engines_.emplace(key, std::move(engine));
    (void)inserted;
    stats_.engines = engines_.size();
    return *pos->second;
}

EngineCache::Stats
EngineCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    Stats s = stats_;
    for (const auto &[key, engine] : engines_) {
        (void)key;
        s.arenaBlocks += engine->arenaBlocks();
        s.arenaBlockBytes +=
            static_cast<int64_t>(engine->arenaBlocks()) *
            engine->arenaBlockBytes();
        const quant::QuantExecStats &q = engine->driver().profile().quant;
        s.quant.quantized = s.quant.quantized || q.quantized;
        s.quant.int8Gemms += q.int8Gemms;
        s.quant.qdqOps += q.qdqOps;
        s.quant.packedWeightBytes += q.packedWeightBytes;
        s.quant.floatWeightBytes += q.floatWeightBytes;
    }
    return s;
}

}  // namespace serve
}  // namespace ngb
