#include "serve/serve_driver.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <thread>

#include "graph/executor.h"
#include "models/registry.h"
#include "obs/metrics.h"
#include "obs/perf.h"
#include "obs/trace.h"
#include "runtime/request_util.h"
#include "runtime/runtime_profile.h"

namespace ngb {
namespace serve {

namespace {

using Clock = std::chrono::steady_clock;

/** Completion latch a closed-loop client waits on; shared with the
 *  batcher's callback so it survives either side exiting first. */
struct Latch {
    std::mutex m;
    std::condition_variable cv;
    bool done = false;
};

void
replayOpenLoop(std::vector<TraceEvent> &trace, RequestQueue &queue,
               Clock::time_point t0, ServeStats &counters)
{
    for (size_t n = 0; n < trace.size(); ++n) {
        if (queue.closed())
            return;  // batcher failed: stop replaying, report now
        TraceEvent &ev = trace[n];
        std::this_thread::sleep_until(
            t0 + std::chrono::microseconds(
                     static_cast<int64_t>(ev.atUs)));
        ServeRequest r;
        r.id = n;
        r.model = std::move(ev.model);
        r.seed = ev.seed;
        ++counters.offered;
        if (queue.push(std::move(r)))
            ++counters.admitted;
        else
            ++counters.rejected;
    }
}

void
runClosedLoop(const ServeConfig &cfg, RequestQueue &queue,
              Clock::time_point t0, ServeStats &counters)
{
    std::atomic<int64_t> offered{0}, admitted{0}, rejected{0};
    std::vector<std::thread> clients;
    clients.reserve(static_cast<size_t>(cfg.clients));
    auto horizon = t0 + std::chrono::duration_cast<Clock::duration>(
                            std::chrono::duration<double>(cfg.durationS));
    for (int c = 0; c < cfg.clients; ++c) {
        clients.emplace_back([&, c] {
            uint64_t pick_state =
                cfg.seed ^ (0x9e3779b97f4a7c15ull *
                            static_cast<uint64_t>(c + 1));
            for (uint64_t n = 0; Clock::now() < horizon; ++n) {
                ServeRequest r;
                r.id = (static_cast<uint64_t>(c + 1) << 32) | n;
                r.model = pickModel(cfg.mix, nextU01(pick_state));
                r.seed = requestSeed(cfg.seed,
                                     static_cast<uint64_t>(c + 1), n);
                auto latch = std::make_shared<Latch>();
                r.onComplete = [latch](std::vector<Tensor> &&) {
                    {
                        std::lock_guard<std::mutex> lock(latch->m);
                        latch->done = true;
                    }
                    latch->cv.notify_one();
                };
                ++offered;
                if (!queue.push(std::move(r))) {
                    ++rejected;
                    if (queue.closed())
                        return;
                    // Back off before retrying so shed clients do not
                    // busy-spin on the queue mutex (and inflate the
                    // offered/rejected counters) while the batcher
                    // works the backlog down.
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(2));
                    continue;
                }
                ++admitted;
                std::unique_lock<std::mutex> lock(latch->m);
                latch->cv.wait(lock, [&] { return latch->done; });
            }
        });
    }
    for (std::thread &t : clients)
        t.join();
    counters.offered = offered;
    counters.admitted = admitted;
    counters.rejected = rejected;
}

/**
 * Atomically publish one snapshot file: write a sibling temp file,
 * then rename() over the target (atomic within a filesystem on
 * POSIX), so a scraper reading mid-tick sees either the previous
 * complete snapshot or the new one — never a torn prefix.
 */
void
publishSnapshot(const std::string &path,
                const std::function<void(std::ostream &)> &write)
{
    std::string tmp = path + ".tmp";
    {
        std::ofstream f(tmp, std::ios::trunc);
        if (!f)
            return;
        write(f);
        if (!f.good())
            return;  // keep the last good snapshot in place
    }
    std::rename(tmp.c_str(), path.c_str());
}

/** Rewrite the JSON / Prometheus metrics snapshot files (if set). */
void
writeMetricsSnapshots(const ServeConfig &cfg)
{
    auto &reg = obs::MetricsRegistry::instance();
    if (!cfg.metricsJsonPath.empty())
        publishSnapshot(cfg.metricsJsonPath,
                        [&](std::ostream &os) { reg.writeJson(os); });
    if (!cfg.metricsPromPath.empty())
        publishSnapshot(cfg.metricsPromPath, [&](std::ostream &os) {
            reg.writePrometheus(os);
        });
}

/**
 * The serve loop's observer thread: every cadence tick it samples
 * queue depth onto the session time axis and republishes the metrics
 * snapshot files — the "scrape while serving" path, running beside
 * the batcher rather than inside it so observation never blocks
 * dispatch.
 */
class SamplerThread
{
  public:
    SamplerThread(const ServeConfig &cfg, RequestQueue &queue,
                  Clock::time_point t0)
        : cfg_(cfg), queue_(queue), t0_(t0)
    {
        if (cfg_.samplerCadenceUs > 0)
            thread_ = std::thread([this] { loop(); });
    }

    ~SamplerThread() { stopAndJoin(); }

    void stopAndJoin()
    {
        if (!thread_.joinable())
            return;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            stop_ = true;
        }
        cv_.notify_one();
        thread_.join();
    }

    /** Samples taken so far; call after stopAndJoin(). */
    const std::vector<QueueDepthSample> &samples() const
    {
        return samples_;
    }

  private:
    void loop()
    {
        obs::Tracer::instance().setThreadName("sampler");
        std::unique_lock<std::mutex> lock(mutex_);
        while (!stop_) {
            if (cv_.wait_for(
                    lock,
                    std::chrono::microseconds(cfg_.samplerCadenceUs),
                    [&] { return stop_; }))
                break;
            samples_.push_back(
                {std::chrono::duration<double, std::micro>(
                     Clock::now() - t0_)
                     .count(),
                 queue_.depth()});
            writeMetricsSnapshots(cfg_);
        }
    }

    const ServeConfig &cfg_;
    RequestQueue &queue_;
    Clock::time_point t0_;
    std::vector<QueueDepthSample> samples_;
    std::thread thread_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stop_ = false;
};

void
verifyAgainstSerial(ServeResult &result, EngineCache &cache)
{
    // One serial Executor per model, dispatching through the SAME
    // kernel backend the engine served with (bit-identity is a
    // same-backend property; cross-backend accuracy is the
    // differential test suite's job). The engine's own graph is
    // reused so reference and served runs share shapes and params by
    // construction. Post-join cache.get() calls do not perturb the
    // reported hit/miss stats (already snapshotted).
    std::map<std::string, std::unique_ptr<Executor>> refs;
    for (const CompletedOutput &co : result.outputs) {
        Engine &engine = cache.get(co.model);
        std::unique_ptr<Executor> &ref = refs[co.model];
        if (!ref)
            ref = std::make_unique<Executor>(engine.graph(),
                                             engine.backend());
        std::vector<Tensor> want =
            ref->run(makeRequestInputs(engine.graph(), co.seed));
        ++result.verifiedRequests;
        if (!bitIdentical(want, co.outputs))
            ++result.verifyMismatches;
    }
    result.verified = true;
}

}  // namespace

ServeResult
runServe(const ServeConfig &cfg, ThreadPool &pool)
{
    // Fail on unknown tenants before any thread starts.
    for (const MixEntry &e : cfg.mix)
        models::findModel(e.model);

    EngineCache cache(pool, cfg.engine);
    RequestQueue queue(cfg.queueDepth, cfg.admission);

    ServeResult result;
    const bool collect = cfg.verify || cfg.collectOutputs;
    const bool arena = cfg.engine.arena;
    DynamicBatcher::Sink sink;
    if (collect)
        sink = [&result, arena](const RequestRecord &rec,
                                const std::vector<Tensor> &outs) {
            // Dispatch-thread only. Heap engines: shallow views are
            // free to retain. Arena engines: retained views would pin
            // their request's arena block for the whole session, so
            // deep-copy and let the pool recycle the block.
            std::vector<Tensor> kept;
            kept.reserve(outs.size());
            for (const Tensor &t : outs)
                kept.push_back(arena ? t.clone() : t);
            result.outputs.push_back(
                {rec.id, rec.model, rec.seed, std::move(kept)});
        };

    DynamicBatcher batcher(queue, cache, cfg.policy, std::move(sink));
    ServeStats counters;  // load-generator-side admission counts

    // Materialize the open-loop trace BEFORE t0: generation time must
    // not eat into the arrival schedule, or already-due events would
    // replay as a burst the Poisson process never contained.
    std::vector<TraceEvent> trace;
    if (cfg.clients <= 0)
        trace = poissonTrace(cfg.mix, cfg.rps, cfg.durationS, cfg.seed);

    uint64_t allocs0 = Storage::heapAllocCount();
    uint64_t alloc_bytes0 = Storage::heapAllocBytes();
    // Session counter aggregate = post-drain minus pre-start snapshot
    // of the cumulative per-thread tables (kernel scopes accumulate on
    // the batcher/pool threads while requests execute).
    obs::PerfCounterStats perf0;
    if (obs::perfEnabled())
        perf0 = obs::PerfAggregator::instance().totals();
    auto t0 = Clock::now();
    batcher.start(t0);
    SamplerThread sampler(cfg, queue, t0);
    if (cfg.clients > 0)
        runClosedLoop(cfg, queue, t0, counters);
    else
        replayOpenLoop(trace, queue, t0, counters);
    queue.close();
    batcher.join();  // rethrows dispatch-loop errors
    sampler.stopAndJoin();

    result.stats = batcher.stats();
    result.stats.durationUs = elapsedUsSince(t0);
    if (obs::perfEnabled())
        result.stats.perf = obs::PerfCounterStats::since(
            perf0, obs::PerfAggregator::instance().totals());
    result.stats.samplerCadenceUs =
        cfg.samplerCadenceUs > 0 ? cfg.samplerCadenceUs : 0;

    // One time axis for depth-over-time: event-driven dispatch samples
    // and fixed-cadence sampler samples, merged in timestamp order.
    result.stats.depthSamples.insert(result.stats.depthSamples.end(),
                                     sampler.samples().begin(),
                                     sampler.samples().end());
    std::sort(result.stats.depthSamples.begin(),
              result.stats.depthSamples.end(),
              [](const QueueDepthSample &a, const QueueDepthSample &b) {
                  return a.tUs < b.tUs;
              });

    if (obs::traceEnabled()) {
        obs::SpanEvent ev;
        ev.kind = obs::SpanKind::Mark;
        ev.setLabel("serve_session");
        ev.startUs = obs::Tracer::instance().sinceEpochUs(t0);
        ev.durUs = result.stats.durationUs;
        obs::Tracer::instance().record(ev);
    }
    writeMetricsSnapshots(cfg);  // final totals after drain
    result.stats.offered = counters.offered;
    result.stats.admitted = counters.admitted;
    result.stats.rejected = counters.rejected;

    result.stats.arena = arena;
    result.stats.tensorAllocs =
        static_cast<int64_t>(Storage::heapAllocCount() - allocs0);
    result.stats.tensorAllocBytes =
        static_cast<int64_t>(Storage::heapAllocBytes() - alloc_bytes0);
    auto cache_stats = cache.stats();
    result.stats.arenaBlocks =
        static_cast<int64_t>(cache_stats.arenaBlocks);
    result.stats.arenaBlockBytes = cache_stats.arenaBlockBytes;
    result.stats.quantMode = cfg.engine.quant;
    result.stats.quant = cache_stats.quant;

    if (cfg.verify)
        verifyAgainstSerial(result, cache);
    return result;
}

}  // namespace serve
}  // namespace ngb
