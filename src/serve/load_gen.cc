#include "serve/load_gen.h"

#include <cmath>
#include <stdexcept>

namespace ngb {
namespace serve {

uint64_t
nextRand(uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ull;
    uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

double
nextU01(uint64_t &state)
{
    // 53 mantissa bits -> uniform in [0, 1).
    return static_cast<double>(nextRand(state) >> 11) * 0x1.0p-53;
}

uint64_t
requestSeed(uint64_t seed, uint64_t stream, uint64_t n)
{
    uint64_t state = seed ^ (stream * 0xd6e8feb86659fd93ull);
    state ^= n * 0xa3b195354a39b70dull;
    return nextRand(state);
}

std::vector<MixEntry>
parseMix(const std::string &spec)
{
    std::vector<MixEntry> mix;
    size_t pos = 0;
    while (pos <= spec.size()) {
        size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        std::string item = spec.substr(pos, comma - pos);
        pos = comma + 1;
        if (item.empty())
            continue;
        MixEntry e;
        size_t colon = item.find(':');
        if (colon == std::string::npos) {
            e.model = item;
        } else {
            e.model = item.substr(0, colon);
            std::string w = item.substr(colon + 1);
            size_t used = 0;
            try {
                e.weight = std::stod(w, &used);
            } catch (const std::exception &) {
                throw std::runtime_error("bad mix weight in \"" + item +
                                         "\"");
            }
            if (used != w.size())  // "4x" must not parse as 4
                throw std::runtime_error("bad mix weight in \"" + item +
                                         "\"");
        }
        if (e.model.empty())
            throw std::runtime_error("empty model name in mix \"" + spec +
                                     "\"");
        if (!(e.weight > 0))
            throw std::runtime_error("mix weight must be > 0 in \"" +
                                     item + "\"");
        mix.push_back(std::move(e));
    }
    if (mix.empty())
        throw std::runtime_error("empty traffic mix \"" + spec + "\"");
    return mix;
}

const std::string &
pickModel(const std::vector<MixEntry> &mix, double u01)
{
    double total = 0;
    for (const MixEntry &e : mix)
        total += e.weight;
    double target = u01 * total;
    double cum = 0;
    for (const MixEntry &e : mix) {
        cum += e.weight;
        if (target < cum)
            return e.model;
    }
    return mix.back().model;
}

std::vector<TraceEvent>
poissonTrace(const std::vector<MixEntry> &mix, double rps,
             double durationS, uint64_t seed)
{
    if (!(rps > 0) || !std::isfinite(rps))
        throw std::runtime_error("poissonTrace: rps must be finite > 0");
    if (!(durationS > 0) || !std::isfinite(durationS))
        throw std::runtime_error(
            "poissonTrace: duration must be finite > 0");
    // The trace is materialized up front (that is what makes it a
    // replayable, deterministic artifact), so bound its size instead
    // of letting an absurd rps x duration exhaust memory.
    constexpr size_t kMaxEvents = 10'000'000;
    std::vector<TraceEvent> trace;
    uint64_t state = seed;
    double t_us = 0;
    const double horizon_us = durationS * 1e6;
    for (uint64_t n = 0;; ++n) {
        // Inverse-CDF exponential inter-arrival at rate rps.
        double u = nextU01(state);
        t_us += -std::log(1.0 - u) * 1e6 / rps;
        if (t_us >= horizon_us)
            break;
        if (trace.size() >= kMaxEvents)
            throw std::runtime_error(
                "poissonTrace: more than 10M arrivals; lower rps or "
                "duration");
        TraceEvent ev;
        ev.atUs = t_us;
        ev.model = pickModel(mix, nextU01(state));
        ev.seed = requestSeed(seed, 0, n);
        trace.push_back(std::move(ev));
    }
    return trace;
}

}  // namespace serve
}  // namespace ngb
