#ifndef NGB_SERVE_ENGINE_H
#define NGB_SERVE_ENGINE_H

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>
#include <vector>

#include "deploy/fusion.h"
#include "ops/backend.h"
#include "quant/quant_mode.h"
#include "runtime/batch_driver.h"
#include "runtime/thread_pool.h"

namespace ngb {
namespace serve {

/** Graph-shape knobs shared by every engine a cache builds. */
struct EngineConfig {
    int64_t scale = 8;   ///< ModelConfig::testScale
    int64_t seqLen = 8;  ///< NLP sequence length

    /**
     * Default kernel backend for engines this cache builds; "" means
     * the process default ($NGB_BACKEND or reference). Individual
     * tenants can pin a different backend per EngineCache::get call.
     */
    std::string backend;

    /**
     * Run applyFusion (executableFusionConfig) on every engine's
     * graph before planning — the TensorRT-style "compile the engine
     * with fusion" deployment step. Defaults to $NGB_FUSE, so a CI
     * leg can serve the whole suite fused.
     */
    bool fuse = fuseEnabledByEnv();

    /**
     * Execute through pooled per-request arenas (the engine plan's
     * MemoryPlan made executable): the steady-state serving loop then
     * performs zero tensor mallocs. Defaults to $NGB_ARENA; outputs
     * are bit-identical either way.
     */
    bool arena = arenaEnabledByEnv();

    /**
     * Executable quantization mode compiled into every engine of this
     * cache ("off", "int8", "int8-raw", "w8"): the quantize rewrite
     * (plus Q/DQ elimination for "int8") runs before fusion and
     * planning, so served engines execute quantized plans end to end.
     * Defaults to $NGB_QUANT.
     */
    std::string quant = quant::quantModeName(quant::quantModeFromEnv());

    /**
     * ISA dispatch level recorded in this cache's engine keys; ""
     * resolves to platform::activeIsa() when the key is built.
     * Dispatch itself is process-global (--isa / $NGB_ISA) — this
     * field keeps engines whose kernels were tile-tuned under one
     * dispatch level cached apart from engines built under another,
     * the same role the backend name plays in the key.
     */
    std::string isa;

    /**
     * Intra-op mode compiled into every engine of this cache: how the
     * BatchDriver hands pool threads to kernels on single-request
     * batches (and how its GEMMs tile-tune — thread count is part of
     * the TuneKey). Defaults to $NGB_INTRAOP; outputs are
     * bit-identical across modes.
     */
    IntraOpMode intraop = intraOpModeFromEnv();
};

/**
 * Identity of one planned engine. Thread count is part of the key
 * because the plan is amortized against a specific pool size — a
 * server that resizes its pool gets distinct engines, the same way
 * TensorRT engines are keyed by build-time configuration. The kernel
 * backend is part of the key too, so tenants pinning different
 * backends get distinct engines and per-backend measurements never
 * mix.
 */
struct EngineKey {
    std::string model;
    int64_t scale = 8;
    int threads = 1;
    std::string backend = "reference";
    bool fuse = false;   ///< engine graph was compiled with fusion
    bool arena = false;  ///< engine executes through pooled arenas
    std::string quant = "off";  ///< quantization mode compiled in
    std::string isa = "scalar"; ///< ISA dispatch level at build time
    std::string intraop = "off"; ///< intra-op mode compiled in

    bool operator<(const EngineKey &o) const
    {
        return std::tie(model, scale, threads, backend, fuse, arena,
                        quant, isa, intraop) <
               std::tie(o.model, o.scale, o.threads, o.backend, o.fuse,
                        o.arena, o.quant, o.isa, o.intraop);
    }
};

/**
 * A fully-planned, long-lived inference engine for one model: the
 * built Graph, its EnginePlan (wavefront schedule + arena memory plan
 * + materialized ParamStore), and a BatchDriver bound to the shared
 * pool. Construction pays the full planning cost once; run() then
 * streams any number of batches through the plan with no per-call
 * planning, which is exactly what the EngineCache amortizes across a
 * serving session.
 */
class Engine
{
  public:
    /**
     * Build the engine for @p model under kernel backend
     * @p backendName ("" = cfg.backend, itself defaulting to the
     * process default backend).
     */
    Engine(const std::string &model, const EngineConfig &cfg,
           ThreadPool &pool, const std::string &backendName = "");

    Engine(const Engine &) = delete;
    Engine &operator=(const Engine &) = delete;

    const std::string &model() const { return model_; }
    const Graph &graph() const { return *graph_; }
    BatchDriver &driver() { return *driver_; }
    const Backend &backend() const { return *backend_; }

    /** Wall time spent building graph + plan (the cache-miss cost). */
    double buildUs() const { return buildUs_; }

    /** True when this engine executes through pooled arenas. */
    bool arenaEnabled() const { return driver_->arenaEnabled(); }

    /** Arena blocks this engine's plan has materialized (0 = heap). */
    size_t arenaBlocks() const { return plan_->arenas.blocks(); }

    /** Bytes per arena block (the planned peak). */
    int64_t arenaBlockBytes() const
    {
        return plan_->arenas.blockBytes();
    }

    /** Quantization mode this engine was compiled with. */
    quant::QuantExecMode quantMode() const { return quantMode_; }

    /** What the quantize rewrite did (all-zero under mode off). */
    const QuantizeStats &quantizeStats() const { return quantStats_; }

    /** @p traceIds: per-request span tags, see BatchDriver::run. */
    std::vector<std::vector<Tensor>>
    run(const std::vector<std::vector<Tensor>> &requests,
        const std::vector<uint64_t> *traceIds = nullptr)
    {
        return driver_->run(requests, traceIds);
    }

  private:
    std::string model_;
    std::unique_ptr<Graph> graph_;
    std::shared_ptr<EnginePlan> plan_;
    const Backend *backend_ = nullptr;
    std::unique_ptr<BatchDriver> driver_;
    double buildUs_ = 0;
    quant::QuantExecMode quantMode_ = quant::QuantExecMode::Off;
    QuantizeStats quantStats_;
};

/**
 * Multi-tenant cache of planned engines, keyed (model, scale,
 * threads). get() builds on miss and counts hits/misses, so a serving
 * run can report how much planning it amortized. Thread-safe; the
 * returned Engine reference stays valid for the cache's lifetime
 * (engines are never evicted — the registry is small and plans are
 * the whole point of caching). A miss builds the engine while holding
 * the cache lock: with the single dispatch thread that is the design
 * point today, the cold-build stall is the serving stall either way;
 * a multi-dispatcher server would want a per-key once-latch here.
 */
class EngineCache
{
  public:
    struct Stats {
        int64_t hits = 0;
        int64_t misses = 0;
        double buildUs = 0;  ///< total planning time across misses
        size_t engines = 0;

        size_t arenaBlocks = 0;      ///< pooled blocks across engines
        int64_t arenaBlockBytes = 0; ///< total bytes of those blocks

        /** Quantization census summed across cached engines (times
         *  stay zero — serving attributes time per batch, not here). */
        quant::QuantExecStats quant;
    };

    explicit EngineCache(ThreadPool &pool, EngineConfig cfg = {});

    /**
     * Engine for @p model, building (and timing) it on a miss. A
     * tenant can pin a kernel backend with @p backend (""/default:
     * the cache config's backend); engines are keyed on the resolved
     * backend name, so the same model under two backends yields two
     * engines.
     */
    Engine &get(const std::string &model, const std::string &backend = "");

    Stats stats() const;

  private:
    ThreadPool &pool_;
    EngineConfig cfg_;
    mutable std::mutex mutex_;
    std::map<EngineKey, std::unique_ptr<Engine>> engines_;
    Stats stats_;
};

}  // namespace serve
}  // namespace ngb

#endif  // NGB_SERVE_ENGINE_H
