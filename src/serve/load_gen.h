#ifndef NGB_SERVE_LOAD_GEN_H
#define NGB_SERVE_LOAD_GEN_H

#include <cstdint>
#include <string>
#include <vector>

namespace ngb {
namespace serve {

/** One tenant of a traffic mix: a registry model and its weight. */
struct MixEntry {
    std::string model;
    double weight = 1;
};

/**
 * Parse a traffic-mix spec like "vit_b:4,gpt2:1" (weight defaults to
 * 1 when ":w" is omitted, so "vit_b,gpt2" is a uniform mix). Throws
 * std::runtime_error on malformed specs or non-positive weights;
 * model names are validated against the registry by the caller.
 */
std::vector<MixEntry> parseMix(const std::string &spec);

/** Weighted sample from @p mix given a uniform @p u01 in [0, 1). */
const std::string &pickModel(const std::vector<MixEntry> &mix, double u01);

/** One planned arrival of an open-loop trace. */
struct TraceEvent {
    double atUs = 0;  ///< offset from trace start
    std::string model;
    uint64_t seed = 0;  ///< request-input seed (deterministic payload)
};

/**
 * Deterministic open-loop Poisson arrival trace: exponential
 * inter-arrival times at @p rps over @p durationS, each event's model
 * drawn from the weighted @p mix and its input seed derived from the
 * event index. The generator is hand-rolled (splitmix64), so a fixed
 * @p seed reproduces the identical trace on every run and platform —
 * the property the --seed determinism guarantee rests on.
 */
std::vector<TraceEvent> poissonTrace(const std::vector<MixEntry> &mix,
                                     double rps, double durationS,
                                     uint64_t seed);

/**
 * The request-seed stream shared by both load generators: request
 * @p n of logical stream @p stream (trace index, or client id) under
 * base seed @p seed. Collision-resistant mixing keeps every request's
 * synthetic inputs distinct yet reproducible.
 */
uint64_t requestSeed(uint64_t seed, uint64_t stream, uint64_t n);

/** splitmix64 step: advances @p state and returns a mixed value. */
uint64_t nextRand(uint64_t &state);

/** Uniform double in [0, 1) from the splitmix64 stream. */
double nextU01(uint64_t &state);

}  // namespace serve
}  // namespace ngb

#endif  // NGB_SERVE_LOAD_GEN_H
