#ifndef NGB_SERVE_DYNAMIC_BATCHER_H
#define NGB_SERVE_DYNAMIC_BATCHER_H

#include <exception>
#include <functional>
#include <thread>

#include "serve/engine.h"
#include "serve/request_queue.h"
#include "serve/serve_stats.h"

namespace ngb {
namespace serve {

/**
 * The serving scheduler: one dispatch thread that drains the
 * RequestQueue into per-model batches and runs them through cached
 * engines on the shared ThreadPool.
 *
 * A batch closes when max_batch same-model requests are queued or
 * when the oldest has waited batch_timeout_us — the classic dynamic
 * batching deadline policy (Triton/vLLM shape): the timeout bounds
 * the batching delay a lightly-loaded tenant pays, max_batch bounds
 * the head-of-line blocking a heavily-loaded one causes. Batches are
 * dispatched strictly sequentially from this thread, so exactly one
 * fork-join region is in flight on the pool at a time (the pool does
 * not support concurrent parallelFor calls); intra-batch parallelism
 * comes from the pool's workers.
 *
 * Timestamps: a request's queue time is arrival -> batch close, its
 * execute time batch close -> batch completion (engine-cache build on
 * a miss counts as execute — it is cold-start service time).
 */
class DynamicBatcher
{
  public:
    struct Policy {
        int maxBatch = 8;
        int64_t timeoutUs = 2000;
    };

    /**
     * Called on the dispatch thread for every completed request,
     * before the request's own onComplete. Outputs are borrowed;
     * Tensor copies are shallow, so retaining them is cheap.
     */
    using Sink = std::function<void(const RequestRecord &,
                                    const std::vector<Tensor> &)>;

    DynamicBatcher(RequestQueue &queue, EngineCache &cache,
                   Policy policy, Sink sink = nullptr);
    ~DynamicBatcher();

    DynamicBatcher(const DynamicBatcher &) = delete;
    DynamicBatcher &operator=(const DynamicBatcher &) = delete;

    /**
     * Spawn the dispatch thread. @p epoch re-bases depth-sample
     * timestamps onto the caller's session start, so batcher-side
     * samples and the serve loop's sampler-thread samples share one
     * monotonic time axis.
     */
    void start(std::chrono::steady_clock::time_point epoch);
    void start() { start(std::chrono::steady_clock::now()); }

    /**
     * Wait until the queue is closed and drained and the dispatch
     * thread has exited. Rethrows the first dispatch-loop exception
     * (after failing pending requests with empty outputs).
     */
    void join();

    /**
     * Batcher-side statistics (requests, batches, histogram, depth
     * samples, completion counters). Valid after join().
     */
    const ServeStats &stats() const { return stats_; }

  private:
    void loop();

    /** Run one closed batch; on throw the caller fails its requests. */
    void dispatch(std::vector<ServeRequest> &batch, bool byTimeout);

    RequestQueue &queue_;
    EngineCache &cache_;
    Policy policy_;
    Sink sink_;

    ServeStats stats_;  ///< written only by the dispatch thread
    std::chrono::steady_clock::time_point t0_;
    std::thread thread_;
    std::exception_ptr error_;
};

}  // namespace serve
}  // namespace ngb

#endif  // NGB_SERVE_DYNAMIC_BATCHER_H
