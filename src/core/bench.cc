#include "core/bench.h"

#include "deploy/flow.h"
#include "models/registry.h"
#include "platform/cost_model.h"
#include "quant/quantize_pass.h"

namespace ngb {

ProfileReport
Bench::run(const BenchConfig &cfg)
{
    const models::ModelInfo &info = models::findModel(cfg.model);

    ModelConfig mc;
    mc.batch = cfg.batch;
    mc.seqLen = cfg.seqLen > 0 ? cfg.seqLen : info.defaultSeqLen;
    if (mc.seqLen == 0)
        mc.seqLen = 8;
    mc.testScale = cfg.testScale;
    mc.decodeStep = cfg.decodeStep;

    Graph g = info.build(mc);

    QuantizeStats qstats;
    if (cfg.quantize) {
        QuantizeConfig qc;
        qc.method = cfg.quantMethod;
        qc.outlierFraction = cfg.outlierFraction;
        g = quantizeLlmInt8(g, qc, &qstats);
    }

    auto flow = makeFlow(cfg.flow);
    FlowOptions opts;
    opts.gpu = cfg.gpu;
    opts.f16 = info.halfPrecision;
    ExecutionPlan plan = flow->plan(g, opts);

    // Recompute fusion statistics for reports (Table V).
    FusionStats fstats;
    fstats.totalNonGemm = g.stats().numNonGemmOps;
    for (const KernelGroup &kg : plan.groups) {
        if (!kg.fused)
            continue;
        bool head_gemm = g.node(kg.nodeIds.front()).isGemm();
        for (int id : kg.nodeIds) {
            if (!g.node(id).isGemm()) {
                ++fstats.fusedNonGemm;
                if (head_gemm)
                    ++fstats.fusedWithGemm;
            }
        }
    }
    fstats.groupsEmitted = static_cast<int64_t>(plan.groups.size());

    PlatformSpec platform = platformById(cfg.platform);
    CostModel cm(platform, cfg.costParams);
    std::vector<GroupTiming> timings = cm.priceAll(plan);

    ProfileReport r = aggregateProfile(plan, timings, platform);
    r.criticalPathUs = cm.criticalPathUs(plan, timings);
    if (cfg.costParams.asyncDispatch) {
        // Wall-clock under host/device overlap; the per-category
        // attribution stays serial (as the paper's profiler reports).
        r.totalUs = cm.latencyUs(plan);
    }
    r.batch = cfg.batch;
    r.seqLen = mc.seqLen;
    r.fusionStats = fstats;
    return r;
}

}  // namespace ngb
