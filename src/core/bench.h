#ifndef NGB_CORE_BENCH_H
#define NGB_CORE_BENCH_H

#include <string>

#include "platform/cost_model.h"
#include "quant/quantize_pass.h"
#include "profiler/profile_report.h"

namespace ngb {

/**
 * One characterization point: which model, at what batch/sequence
 * length, deployed through which flow on which platform.
 *
 * This is the library's primary entry point and mirrors the
 * NonGEMM Bench inputs of Section III-B (models, deployment flow,
 * dataset-shaped inputs, configuration).
 */
struct BenchConfig {
    std::string model = "vit_b";   ///< registry key (src/models)
    int64_t batch = 1;
    std::string platform = "A";    ///< "A" data center, "B" workstation
    bool gpu = true;               ///< GPU acceleration on/off
    std::string flow = "pytorch";  ///< pytorch | inductor | ort | tensorrt
    int64_t seqLen = 0;            ///< 0 = model default (NLP only)
    bool decodeStep = false;       ///< one generate() step over a KV cache
    bool quantize = false;         ///< apply the quantization pass
    QuantMethod quantMethod = QuantMethod::LlmInt8;
    double outlierFraction = 0.01; ///< LLM.int8() decomposition share
    int64_t testScale = 1;         ///< >1 shrinks the model for tests

    /** Cost-model constants (exposed for the ablation benchmarks). */
    CostModelParams costParams = CostModelParams();
};

/**
 * NonGEMM Bench core: builds the model graph, applies optional
 * quantization, schedules it through the deployment flow, prices it on
 * the platform cost model, and aggregates the three reports.
 */
class Bench
{
  public:
    /** Run one characterization point. */
    static ProfileReport run(const BenchConfig &cfg);
};

}  // namespace ngb

#endif  // NGB_CORE_BENCH_H
