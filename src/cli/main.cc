/**
 * @file
 * The NonGEMM Bench command-line driver — the C++ counterpart of the
 * original artifact's run.py. Profiles any registry model under any
 * deployment flow and platform, and writes CSV / SVG / Chrome-trace
 * outputs.
 *
 *   ngb --list
 *   ngb --model swin_b --flow tensorrt --platform A --batch 8
 *   ngb --model llama3 --quantize --seq 2048 --svg out.svg --trace t.json
 */
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "core/bench.h"
#include "graph/dot_export.h"
#include "graph/validate.h"
#include "deploy/flow.h"
#include "models/registry.h"
#include "profiler/svg_chart.h"
#include "profiler/workload_report.h"
#include "profiler/trace_export.h"
#include "quant/quantize_pass.h"

using namespace ngb;

namespace {

void
usage()
{
    std::cout <<
        "NonGEMM Bench (C++): operator-level GEMM/non-GEMM profiling\n"
        "\n"
        "usage: ngb [options]\n"
        "  --list               list registry models and exit\n"
        "  --model NAME         model to profile (default vit_b)\n"
        "  --flow FLOW          pytorch|inductor|ort|tensorrt\n"
        "  --platform A|B       data center (A) or workstation (B)\n"
        "  --batch N            batch size (default 1)\n"
        "  --seq N              sequence length for NLP models\n"
        "  --cpu-only           disable GPU acceleration\n"
        "  --quantize           apply the LLM.int8() pass\n"
        "  --decode             profile one generate() decode step\n"
        "  --ops-csv FILE       write per-op CSV\n"
        "  --cat-csv FILE       write category CSV\n"
        "  --json FILE          write the full report as JSON\n"
        "  --svg FILE           write a stacked-bar SVG\n"
        "  --trace FILE         write a Chrome trace JSON\n"
        "  --dot FILE           write the operator graph as Graphviz\n"
        "  --workload           print the Section III-C workload report\n";
}

}  // namespace

int
main(int argc, char **argv)
{
    BenchConfig cfg;
    std::string ops_csv, cat_csv, svg, trace, json, dot;
    bool workload = false;

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::cerr << "missing value for " << a << "\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (a == "--help" || a == "-h") {
            usage();
            return 0;
        } else if (a == "--list") {
            std::cout << "registry (" << models::modelRegistry().size()
                      << " models):\n";
            for (const auto &m : models::modelRegistry())
                std::cout << "  " << m.name << "  [" << m.task << ", "
                          << m.dataset << "]"
                          << (m.halfPrecision ? " fp16" : "") << "\n";
            return 0;
        } else if (a == "--model") {
            cfg.model = next();
        } else if (a == "--flow") {
            cfg.flow = next();
        } else if (a == "--platform") {
            cfg.platform = next();
        } else if (a == "--batch") {
            cfg.batch = std::stol(next());
        } else if (a == "--seq") {
            cfg.seqLen = std::stol(next());
        } else if (a == "--cpu-only") {
            cfg.gpu = false;
        } else if (a == "--quantize") {
            cfg.quantize = true;
        } else if (a == "--decode") {
            cfg.decodeStep = true;
        } else if (a == "--json") {
            json = next();
        } else if (a == "--dot") {
            dot = next();
        } else if (a == "--workload") {
            workload = true;
        } else if (a == "--ops-csv") {
            ops_csv = next();
        } else if (a == "--cat-csv") {
            cat_csv = next();
        } else if (a == "--svg") {
            svg = next();
        } else if (a == "--trace") {
            trace = next();
        } else {
            std::cerr << "unknown option: " << a << "\n";
            usage();
            return 2;
        }
    }

    try {
        ProfileReport r = Bench::run(cfg);
        printReport(r, std::cout);

        if (!ops_csv.empty()) {
            std::ofstream f(ops_csv);
            writeOpCsv(r, f);
            std::cout << "wrote " << ops_csv << "\n";
        }
        if (!cat_csv.empty()) {
            std::ofstream f(cat_csv);
            writeCategoryCsv(r, f);
            std::cout << "wrote " << cat_csv << "\n";
        }
        if (!svg.empty()) {
            std::ofstream f(svg);
            SvgChartOptions opts;
            opts.title = cfg.model + " / " + cfg.flow + " / platform " +
                         cfg.platform;
            writeSvgChart({r}, opts, f);
            std::cout << "wrote " << svg << "\n";
        }
        if (!json.empty()) {
            std::ofstream f(json);
            writeJsonReport(r, f);
            std::cout << "wrote " << json << "\n";
        }
        if (workload || !dot.empty() || !trace.empty()) {
            // Rebuild the graph/plan for graph-level outputs.
            const auto &info = models::findModel(cfg.model);
            ModelConfig mc;
            mc.batch = cfg.batch;
            mc.seqLen = cfg.seqLen > 0 ? cfg.seqLen
                                       : std::max<int64_t>(
                                             info.defaultSeqLen, 8);
            mc.decodeStep = cfg.decodeStep;
            Graph g = info.build(mc);
            if (cfg.quantize) {
                QuantizeConfig qc;
                g = quantizeLlmInt8(g, qc);
            }
            ValidationResult vr = validateGraph(g);
            if (!vr.ok())
                std::cerr << "graph validation failed:\n"
                          << formatIssues(vr);
            if (workload)
                printWorkloadReport(buildWorkloadReport(g), std::cout);
            if (!dot.empty()) {
                std::ofstream f(dot);
                DotOptions opts;
                writeDot(g, opts, f);
                std::cout << "wrote " << dot << "\n";
            }
            if (!trace.empty()) {
                auto flow = makeFlow(cfg.flow);
                FlowOptions fo;
                fo.gpu = cfg.gpu;
                fo.f16 = info.halfPrecision;
                ExecutionPlan plan = flow->plan(g, fo);
                CostModel cm(platformById(cfg.platform), cfg.costParams);
                auto timings = cm.priceAll(plan);
                std::ofstream f(trace);
                writeChromeTrace(plan, timings, f);
                std::cout << "wrote " << trace << "\n";
            }
        }
    } catch (const std::exception &e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
    return 0;
}
