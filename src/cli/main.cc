/**
 * @file
 * The NonGEMM Bench command-line driver — the C++ counterpart of the
 * original artifact's run.py. Profiles any registry model under any
 * deployment flow and platform, and writes CSV / SVG / Chrome-trace
 * outputs.
 *
 *   ngb --list
 *   ngb --model swin_b --flow tensorrt --platform A --batch 8
 *   ngb --model llama3 --quantize --seq 2048 --svg out.svg --trace t.json
 */
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>

#include "core/bench.h"
#include "graph/dot_export.h"
#include "graph/validate.h"
#include "deploy/flow.h"
#include "models/registry.h"
#include "profiler/nongemm_report.h"
#include "profiler/runtime_report.h"
#include "profiler/svg_chart.h"
#include "profiler/workload_report.h"
#include "profiler/trace_export.h"
#include "quant/quantize_pass.h"
#include "runtime/batch_driver.h"
#include "runtime/parallel_executor.h"
#include "runtime/request_util.h"

using namespace ngb;

namespace {

/** Options of the concrete-execution (--runtime) mode. */
struct RuntimeCli {
    bool enabled = false;
    bool parallel = false;   ///< serial reference vs parallel runtime
    int threads = 0;         ///< 0 = hardware concurrency
    int64_t scale = 8;       ///< testScale: full paper-scale models are
                             ///< not host-executable in reasonable time
    bool verify = false;     ///< cross-check parallel against serial
};

/** Deterministic per-request inputs (request r perturbs the seed). */
std::vector<Tensor>
requestInputs(const Graph &g, size_t r)
{
    return makeRequestInputs(g, 1234 + 7919 * static_cast<uint64_t>(r));
}

/**
 * Execute one model concretely through the runtime: N independent
 * requests, serial reference or parallel wavefront/batch backend.
 * Returns false if --verify found a mismatch. When the parallel
 * backend ran, @p outProfile / @p outPlan receive its measurements.
 */
bool
runRuntimeModel(const std::string &name, const BenchConfig &cfg,
                const RuntimeCli &rt, ThreadPool &pool,
                RuntimeProfile *outProfile, MemoryPlan *outPlan)
{
    const auto &info = models::findModel(name);
    ModelConfig mc;
    mc.batch = 1;
    mc.seqLen = cfg.seqLen > 0 ? cfg.seqLen : 8;
    mc.testScale = rt.scale;
    mc.decodeStep = cfg.decodeStep;
    Graph g = info.build(mc);
    if (cfg.quantize) {
        QuantizeConfig qc;
        qc.method = cfg.quantMethod;
        qc.outlierFraction = cfg.outlierFraction;
        g = quantizeLlmInt8(g, qc);
    }

    size_t requests = static_cast<size_t>(cfg.batch);
    std::vector<std::vector<Tensor>> reqs;
    for (size_t r = 0; r < requests; ++r)
        reqs.push_back(requestInputs(g, r));

    std::cout << "== " << name << "  (" << g.size() << " nodes, scale 1/"
              << rt.scale << ", " << requests << " request"
              << (requests == 1 ? "" : "s") << ")\n";

    std::vector<std::vector<Tensor>> outs(requests);
    if (rt.parallel && requests > 1) {
        // Inter-request parallelism: one planned graph, N requests.
        BatchDriver driver(g, pool);
        outs = driver.run(reqs);
        printMemoryPlan(driver.memoryPlan(), std::cout);
        printRuntimeReport(driver.profile(), std::cout);
        printNonGemmReport(buildNonGemmReport(g),
                           driver.profile().usByCategory, std::cout);
        if (outProfile)
            *outProfile = driver.profile();
        if (outPlan)
            *outPlan = driver.memoryPlan();
    } else if (rt.parallel) {
        // Single request: wavefront (intra-graph) parallelism.
        ParallelExecutor ex(g, pool);
        outs[0] = ex.run(reqs[0]);
        printMemoryPlan(ex.memoryPlan(), std::cout);
        printRuntimeReport(ex.profile(), std::cout);
        printNonGemmReport(buildNonGemmReport(g),
                           ex.profile().usByCategory, std::cout);
        if (outProfile)
            *outProfile = ex.profile();
        if (outPlan)
            *outPlan = ex.memoryPlan();
    } else {
        Executor ex(g);
        for (size_t r = 0; r < requests; ++r)
            outs[r] = ex.run(reqs[r]);
        MemoryPlan plan = planMemory(g, Schedule::wavefront(g));
        printMemoryPlan(plan, std::cout);
    }

    if (rt.verify) {
        Executor ref(g);
        for (size_t r = 0; r < requests; ++r) {
            if (!bitIdentical(outs[r], ref.run(reqs[r]))) {
                std::cout << "  VERIFY FAILED: request " << r
                          << " differs from serial Executor\n";
                return false;
            }
        }
        std::cout << "  verify: all " << requests
                  << " request outputs bit-identical to serial\n";
    }
    return true;
}

int
runtimeMain(const BenchConfig &cfg, const RuntimeCli &rt,
            const std::string &json)
{
    ThreadPool pool(rt.parallel ? rt.threads : 1);
    std::vector<std::string> names;
    if (cfg.model == "all") {
        for (const auto &m : models::modelRegistry())
            names.push_back(m.name);
    } else {
        names.push_back(cfg.model);
    }

    bool ok = true;
    RuntimeProfile profile;
    MemoryPlan memplan;
    bool measured = false;
    for (const std::string &name : names) {
        bool want = rt.parallel && cfg.model != "all";
        ok = runRuntimeModel(name, cfg, rt, pool,
                             want ? &profile : nullptr,
                             want ? &memplan : nullptr) &&
             ok;
        measured = measured || want;
    }

    // For a single model also emit the modeled report for the SAME
    // graph the runtime executed (same scale and sequence length),
    // with the measured-runtime summary attached.
    if (cfg.model != "all") {
        BenchConfig scaled = cfg;
        scaled.testScale = rt.scale;
        scaled.batch = 1;
        scaled.seqLen = cfg.seqLen > 0 ? cfg.seqLen : 8;
        ProfileReport r = Bench::run(scaled);
        if (measured) {
            r.runtime.threads = profile.threads;
            r.runtime.requests = profile.requests;
            r.runtime.wallUs = profile.wallUs;
            r.runtime.sumUs = profile.sumUs;
            r.runtime.planUs = profile.planUs;
            r.runtime.levels = profile.schedule.numLevels;
            r.runtime.maxWidth = profile.schedule.maxWidth;
            r.runtime.arenaBytes = memplan.arenaBytes;
            r.runtime.totalTensorBytes = memplan.totalBytes;
        }
        printReport(r, std::cout);
        if (!json.empty()) {
            std::ofstream f(json);
            writeJsonReport(r, f);
            std::cout << "wrote " << json << "\n";
        }
    }
    return ok ? 0 : 1;
}

void
usage()
{
    std::cout <<
        "NonGEMM Bench (C++): operator-level GEMM/non-GEMM profiling\n"
        "\n"
        "usage: ngb [options]\n"
        "  --list               list registry models and exit\n"
        "  --model NAME         model to profile (default vit_b; 'all'\n"
        "                       iterates the registry in --runtime mode)\n"
        "  --flow FLOW          pytorch|inductor|ort|tensorrt\n"
        "  --platform A|B       data center (A) or workstation (B)\n"
        "  --batch N            batch size (default 1)\n"
        "  --seq N              sequence length for NLP models\n"
        "  --cpu-only           disable GPU acceleration\n"
        "  --quantize           apply the LLM.int8() pass\n"
        "  --decode             profile one generate() decode step\n"
        "  --ops-csv FILE       write per-op CSV\n"
        "  --cat-csv FILE       write category CSV\n"
        "  --json FILE          write the full report as JSON\n"
        "  --svg FILE           write a stacked-bar SVG\n"
        "  --trace FILE         write a Chrome trace JSON\n"
        "  --dot FILE           write the operator graph as Graphviz\n"
        "  --workload           print the Section III-C workload report\n"
        "\n"
        "concrete execution (src/runtime):\n"
        "  --runtime MODE       serial | parallel: actually execute the\n"
        "                       graph; --batch N becomes N independent\n"
        "                       requests through one planned graph\n"
        "  --threads N          worker threads (default: hardware)\n"
        "  --scale N            shrink models by N for host execution\n"
        "                       (default 8; 1 = paper scale, slow)\n"
        "  --verify             cross-check outputs bit-identically\n"
        "                       against the serial Executor\n";
}

}  // namespace

int
main(int argc, char **argv)
{
    BenchConfig cfg;
    RuntimeCli rt;
    std::string ops_csv, cat_csv, svg, trace, json, dot;
    bool workload = false;

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::cerr << "missing value for " << a << "\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (a == "--help" || a == "-h") {
            usage();
            return 0;
        } else if (a == "--list") {
            std::cout << "registry (" << models::modelRegistry().size()
                      << " models):\n";
            for (const auto &m : models::modelRegistry())
                std::cout << "  " << m.name << "  [" << m.task << ", "
                          << m.dataset << "]"
                          << (m.halfPrecision ? " fp16" : "") << "\n";
            return 0;
        } else if (a == "--model") {
            cfg.model = next();
        } else if (a == "--flow") {
            cfg.flow = next();
        } else if (a == "--platform") {
            cfg.platform = next();
        } else if (a == "--batch") {
            cfg.batch = std::stol(next());
        } else if (a == "--seq") {
            cfg.seqLen = std::stol(next());
        } else if (a == "--cpu-only") {
            cfg.gpu = false;
        } else if (a == "--quantize") {
            cfg.quantize = true;
        } else if (a == "--decode") {
            cfg.decodeStep = true;
        } else if (a == "--runtime") {
            std::string mode = next();
            if (mode != "serial" && mode != "parallel") {
                std::cerr << "--runtime expects serial|parallel\n";
                return 2;
            }
            rt.enabled = true;
            rt.parallel = mode == "parallel";
        } else if (a == "--threads") {
            rt.threads = static_cast<int>(std::stol(next()));
        } else if (a == "--scale") {
            rt.scale = std::stol(next());
        } else if (a == "--verify") {
            rt.verify = true;
        } else if (a == "--json") {
            json = next();
        } else if (a == "--dot") {
            dot = next();
        } else if (a == "--workload") {
            workload = true;
        } else if (a == "--ops-csv") {
            ops_csv = next();
        } else if (a == "--cat-csv") {
            cat_csv = next();
        } else if (a == "--svg") {
            svg = next();
        } else if (a == "--trace") {
            trace = next();
        } else {
            std::cerr << "unknown option: " << a << "\n";
            usage();
            return 2;
        }
    }

    if (rt.enabled && cfg.batch < 1) {
        std::cerr << "--batch must be >= 1 in --runtime mode\n";
        return 2;
    }
    if (rt.enabled && rt.scale < 1) {
        std::cerr << "--scale must be >= 1\n";
        return 2;
    }
    if (rt.threads < 0) {
        std::cerr << "--threads must be >= 0 (0 = hardware)\n";
        return 2;
    }
    if (rt.enabled) {
        if (!ops_csv.empty() || !cat_csv.empty() || !svg.empty() ||
            !trace.empty() || !dot.empty() || workload)
            std::cerr << "note: --ops-csv/--cat-csv/--svg/--trace/--dot/"
                         "--workload are ignored in --runtime mode\n";
        if (!json.empty() && cfg.model == "all")
            std::cerr << "note: --json is only written for a single "
                         "model in --runtime mode\n";
    }

    try {
        if (rt.enabled)
            return runtimeMain(cfg, rt, json);

        ProfileReport r = Bench::run(cfg);
        printReport(r, std::cout);

        if (!ops_csv.empty()) {
            std::ofstream f(ops_csv);
            writeOpCsv(r, f);
            std::cout << "wrote " << ops_csv << "\n";
        }
        if (!cat_csv.empty()) {
            std::ofstream f(cat_csv);
            writeCategoryCsv(r, f);
            std::cout << "wrote " << cat_csv << "\n";
        }
        if (!svg.empty()) {
            std::ofstream f(svg);
            SvgChartOptions opts;
            opts.title = cfg.model + " / " + cfg.flow + " / platform " +
                         cfg.platform;
            writeSvgChart({r}, opts, f);
            std::cout << "wrote " << svg << "\n";
        }
        if (!json.empty()) {
            std::ofstream f(json);
            writeJsonReport(r, f);
            std::cout << "wrote " << json << "\n";
        }
        if (workload || !dot.empty() || !trace.empty()) {
            // Rebuild the graph/plan for graph-level outputs.
            const auto &info = models::findModel(cfg.model);
            ModelConfig mc;
            mc.batch = cfg.batch;
            mc.seqLen = cfg.seqLen > 0 ? cfg.seqLen
                                       : std::max<int64_t>(
                                             info.defaultSeqLen, 8);
            mc.decodeStep = cfg.decodeStep;
            Graph g = info.build(mc);
            if (cfg.quantize) {
                QuantizeConfig qc;
                g = quantizeLlmInt8(g, qc);
            }
            ValidationResult vr = validateGraph(g);
            if (!vr.ok())
                std::cerr << "graph validation failed:\n"
                          << formatIssues(vr);
            if (workload)
                printWorkloadReport(buildWorkloadReport(g), std::cout);
            if (!dot.empty()) {
                std::ofstream f(dot);
                DotOptions opts;
                writeDot(g, opts, f);
                std::cout << "wrote " << dot << "\n";
            }
            if (!trace.empty()) {
                auto flow = makeFlow(cfg.flow);
                FlowOptions fo;
                fo.gpu = cfg.gpu;
                fo.f16 = info.halfPrecision;
                ExecutionPlan plan = flow->plan(g, fo);
                CostModel cm(platformById(cfg.platform), cfg.costParams);
                auto timings = cm.priceAll(plan);
                std::ofstream f(trace);
                writeChromeTrace(plan, timings, f);
                std::cout << "wrote " << trace << "\n";
            }
        }
    } catch (const std::exception &e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
    return 0;
}
