/**
 * @file
 * The NonGEMM Bench command-line driver — the C++ counterpart of the
 * original artifact's run.py. Profiles any registry model under any
 * deployment flow and platform, and writes CSV / SVG / Chrome-trace
 * outputs.
 *
 *   ngb --list
 *   ngb --model swin_b --flow tensorrt --platform A --batch 8
 *   ngb --model llama3 --quantize --seq 2048 --svg out.svg --trace t.json
 */
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>

#include "core/bench.h"
#include "graph/dot_export.h"
#include "graph/validate.h"
#include "deploy/flow.h"
#include "deploy/fusion.h"
#include "models/registry.h"
#include "obs/metrics.h"
#include "obs/perf.h"
#include "obs/trace.h"
#include "ops/backend.h"
#include "platform/cpu_features.h"
#include "profiler/nongemm_report.h"
#include "profiler/runtime_report.h"
#include "profiler/serve_report.h"
#include "profiler/svg_chart.h"
#include "profiler/workload_report.h"
#include "profiler/trace_export.h"
#include "quant/quant_mode.h"
#include "quant/quantize_pass.h"
#include "runtime/arena.h"
#include "runtime/batch_driver.h"
#include "runtime/parallel_executor.h"
#include "runtime/request_util.h"
#include "serve/serve_driver.h"

using namespace ngb;

namespace {

/** Options of the concrete-execution (--runtime) mode. */
struct RuntimeCli {
    bool enabled = false;
    bool parallel = false;   ///< serial reference vs parallel runtime
    int threads = 0;         ///< 0 = hardware concurrency
    int64_t scale = 8;       ///< testScale: full paper-scale models are
                             ///< not host-executable in reasonable time
    bool verify = false;     ///< cross-check parallel against serial
    std::string backend;     ///< kernel backend; "" = process default,
                             ///< "both" = reference + optimized sweep
    bool fuse = false;       ///< applyFusion before executing; in
                             ///< parallel mode the unfused graph is
                             ///< measured too and printed side by side
    std::string arena;       ///< "on"/"off"; "" = $NGB_ARENA default
    std::string quant;       ///< quant mode; "" = $NGB_QUANT default
    std::string intraop;     ///< "on"/"off"/"auto"; "" = $NGB_INTRAOP

    /** Resolved arena mode: explicit flag beats the environment. */
    bool arenaOn() const
    {
        return arena.empty() ? arenaEnabledByEnv() : arena == "on";
    }

    /** Resolved intra-op mode: explicit flag beats $NGB_INTRAOP. */
    IntraOpMode intraOpMode() const
    {
        return intraop.empty() ? intraOpModeFromEnv()
                               : parseIntraOpMode(intraop);
    }

    /** Resolved quantization mode: explicit flag beats $NGB_QUANT. */
    quant::QuantExecMode quantMode() const
    {
        return quant.empty() ? quant::quantModeFromEnv()
                             : quant::parseQuantMode(quant);
    }
};

/** Options of the serving (--serve) mode. */
struct ServeCliOpts {
    bool enabled = false;
    std::string mix;          ///< "vit_b:4,gpt2:1"; empty = --model
    double rps = 100;
    double durationS = 2;
    int clients = 0;          ///< > 0: closed loop instead of Poisson
    int maxBatch = 8;
    int64_t batchTimeoutUs = 2000;
    size_t queueDepth = 256;
    std::string admission = "block";
    uint64_t seed = 42;
};

/** Observability outputs of the executing modes (--runtime/--serve). */
struct ObsCliOpts {
    std::string trace;    ///< measured Chrome/Perfetto trace JSON
    std::string metrics;  ///< metrics registry snapshot, JSON
    std::string prom;     ///< metrics registry snapshot, Prometheus text
    bool perf = false;    ///< sample hw counters around kernel scopes

    bool any() const
    {
        return !trace.empty() || !metrics.empty() || !prom.empty() ||
               perf;
    }
};

/**
 * Export whatever the observability subsystem recorded: the measured
 * span trace and/or metrics snapshots. Called after an executing mode
 * finishes (all workers quiescent, so ring reads are race-free).
 */
void
writeObsArtifacts(const ObsCliOpts &obsOut)
{
    if (!obsOut.trace.empty()) {
        std::ofstream f(obsOut.trace);
        obs::Tracer::instance().writeChromeTrace(f);
        std::cout << "wrote " << obsOut.trace << " ("
                  << obs::Tracer::instance().totalRecorded() << " spans";
        if (uint64_t d = obs::Tracer::instance().totalDropped())
            std::cout << ", " << d << " dropped";
        std::cout << ")\n";
    }
    if (!obsOut.metrics.empty()) {
        std::ofstream f(obsOut.metrics);
        obs::MetricsRegistry::instance().writeJson(f);
        std::cout << "wrote " << obsOut.metrics << "\n";
    }
    if (!obsOut.prom.empty()) {
        std::ofstream f(obsOut.prom);
        obs::MetricsRegistry::instance().writePrometheus(f);
        std::cout << "wrote " << obsOut.prom << "\n";
    }
}

/** Deterministic per-request inputs (request r perturbs the seed). */
std::vector<Tensor>
requestInputs(const Graph &g, size_t r)
{
    return makeRequestInputs(g, 1234 + 7919 * static_cast<uint64_t>(r));
}

/**
 * Execute one model concretely through the runtime: N independent
 * requests, serial reference or parallel wavefront/batch backend.
 * Returns false if --verify found a mismatch. When the parallel
 * backend ran, @p outProfile / @p outPlan receive its measurements.
 */
bool
runRuntimeModel(const std::string &name, const BenchConfig &cfg,
                const RuntimeCli &rt, const Backend &backend, bool fuse,
                ThreadPool &pool, RuntimeProfile *outProfile,
                MemoryPlan *outPlan)
{
    const auto &info = models::findModel(name);
    ModelConfig mc;
    mc.batch = 1;
    mc.seqLen = cfg.seqLen > 0 ? cfg.seqLen : 8;
    mc.testScale = rt.scale;
    mc.decodeStep = cfg.decodeStep;
    Graph unfused = info.build(mc);
    if (cfg.quantize) {
        QuantizeConfig qc;
        qc.method = cfg.quantMethod;
        qc.outlierFraction = cfg.outlierFraction;
        unfused = quantizeLlmInt8(unfused, qc);
    }
    // Executable quantization rewrites the graph BEFORE fusion, so the
    // fused form fuses Int8Linear-headed groups. The float graph is
    // kept when verifying: int8 outputs are checked against it within
    // quantization tolerance (relative L2, not element-wise).
    quant::QuantExecMode qm = rt.quantMode();
    Graph floatBaseline;
    QuantizeStats qstats;
    if (qm != quant::QuantExecMode::Off) {
        if (rt.verify)
            floatBaseline = unfused;
        unfused = quant::applyQuantMode(unfused, qm, &qstats);
    }
    // When fusing, keep the unfused graph: --verify compares the two
    // (the ternary only moves it in the unfused case).
    FusionStats fstats;
    Graph g = fuse ? applyFusion(unfused, executableFusionConfig(),
                                 &fstats)
                   : std::move(unfused);

    size_t requests = static_cast<size_t>(cfg.batch);
    std::vector<std::vector<Tensor>> reqs;
    for (size_t r = 0; r < requests; ++r)
        reqs.push_back(requestInputs(g, r));

    std::cout << "== " << name << "  (" << g.size() << " nodes, scale 1/"
              << rt.scale << ", " << requests << " request"
              << (requests == 1 ? "" : "s") << ", backend "
              << backend.name() << (fuse ? ", fused" : "")
              << (qm != quant::QuantExecMode::Off
                      ? ", quant " + std::string(quant::quantModeName(qm))
                      : "")
              << ")\n";
    if (qm != quant::QuantExecMode::Off && qstats.linearsQuantized > 0) {
        std::cout << "  quant: " << qstats.linearsQuantized
                  << " linears -> int8";
        if (qstats.qdqPairsCancelled || qstats.requantFolded)
            std::cout << ", " << qstats.qdqPairsCancelled
                      << " Q/DQ pairs fused, " << qstats.requantFolded
                      << " requantizes folded into GEMMs";
        if (qstats.floatWeightBytes > 0)
            std::cout << ", weight memory "
                      << static_cast<double>(qstats.floatWeightBytes) /
                             static_cast<double>(qstats.packedWeightBytes)
                      << "x smaller";
        std::cout << "\n";
    }
    if (fuse)
        std::cout << "  fusion: " << fstats.groupsEmitted
                  << " kernel groups, " << fstats.fusedNonGemm << "/"
                  << fstats.totalNonGemm << " non-GEMM ops fused (rate "
                  << fstats.fusionRate() << "), " << fstats.fusedWithGemm
                  << " folded into GEMM kernels\n";

    std::vector<std::vector<Tensor>> outs(requests);
    std::shared_ptr<EnginePlan> shared_plan;  // reused by verify's A/B
    if (rt.parallel && requests > 1) {
        // Inter-request parallelism: one planned graph, N requests.
        shared_plan = buildEnginePlan(g);
        BatchDriver driver(g, pool, shared_plan, backend, rt.arenaOn(),
                           rt.intraOpMode());
        outs = driver.run(reqs);
        printMemoryPlan(driver.memoryPlan(), std::cout);
        printRuntimeReport(driver.profile(), std::cout);
        printNonGemmReport(buildNonGemmReport(g),
                           driver.profile().usByCategory, std::cout);
        if (outProfile)
            *outProfile = driver.profile();
        if (outPlan)
            *outPlan = driver.memoryPlan();
    } else if (rt.parallel) {
        // Single request: wavefront (intra-graph) parallelism, deep
        // levels handing the pool to GEMMs per the hybrid scheduler.
        ParallelExecutor ex(g, pool, backend, rt.arenaOn(),
                            rt.intraOpMode());
        outs[0] = ex.run(reqs[0]);
        printMemoryPlan(ex.memoryPlan(), std::cout);
        printRuntimeReport(ex.profile(), std::cout);
        printNonGemmReport(buildNonGemmReport(g),
                           ex.profile().usByCategory, std::cout);
        if (outProfile)
            *outProfile = ex.profile();
        if (outPlan)
            *outPlan = ex.memoryPlan();
    } else {
        Executor ex(g, backend);
        for (size_t r = 0; r < requests; ++r)
            outs[r] = ex.run(reqs[r]);
        MemoryPlan plan = planMemory(g, Schedule::wavefront(g));
        printMemoryPlan(plan, std::cout);
    }

    if (rt.verify) {
        // Bit-identity against a serial walk of the SAME backend:
        // parallelism / batching must never change a single bit. The
        // serial Executor allocates from the heap, so with --arena on
        // this doubles as the heap-vs-arena bit-identity assertion.
        Executor ref(g, backend);
        for (size_t r = 0; r < requests; ++r) {
            if (!bitIdentical(outs[r], ref.run(reqs[r]))) {
                std::cout << "  VERIFY FAILED: request " << r
                          << " differs from serial Executor\n";
                return false;
            }
        }
        std::cout << "  verify: all " << requests
                  << " request outputs bit-identical to serial "
                  << backend.name()
                  << (rt.parallel && rt.arenaOn() ? " (arena vs heap)"
                                                  : "")
                  << "\n";
        // And the other arena A/B direction: an arena-mode parallel
        // run must match a heap-mode parallel run bit for bit (the
        // plan is mode-independent, so the batch path's is reused).
        if (rt.parallel && rt.arenaOn()) {
            if (!shared_plan)
                shared_plan = buildEnginePlan(g);
            BatchDriver heap_driver(g, pool, shared_plan, backend,
                                    /*arena=*/false, rt.intraOpMode());
            std::vector<std::vector<Tensor>> heap_outs =
                heap_driver.run(reqs);
            for (size_t r = 0; r < requests; ++r) {
                if (!bitIdentical(outs[r], heap_outs[r])) {
                    std::cout << "  VERIFY FAILED: request " << r
                              << " arena vs heap parallel run\n";
                    return false;
                }
            }
            std::cout << "  verify: arena outputs bit-identical to a "
                         "heap-mode parallel run\n";
        }
        // Fused execution must reproduce the unfused graph under the
        // SAME backend: bit-identical where chains are interpreted /
        // single-passed, within tolerance ONLY where a non-reference
        // backend pre-merges a Conv-headed group's affines (the
        // documented reassociation) — anything else failing
        // bit-identity is a fused-kernel regression.
        if (fuse) {
            bool conv_fused = false;
            for (const Node &n : g.nodes())
                conv_fused = conv_fused ||
                             (n.kind == OpKind::Fused &&
                              !n.fusedBody.empty() &&
                              n.fusedBody[0].kind == OpKind::Conv2d);
            bool tolerance_ok =
                conv_fused &&
                backend.name() != referenceBackend().name();
            Executor unf(unfused, backend);
            bool all_bits = true;
            bool act_quant_fused =
                qm == quant::QuantExecMode::Int8 ||
                qm == quant::QuantExecMode::Int8Raw;
            for (size_t r = 0; r < requests; ++r) {
                std::vector<Tensor> want = unf.run(reqs[r]);
                // Under activation quantization the conv-group
                // reassociation is further amplified by absmax
                // boundaries (see the backend check below), so the
                // tolerance case widens to the quant comparator.
                std::string diff =
                    tolerance_ok
                        ? (act_quant_fused
                               ? quantDifference(outs[r], want)
                               : closeDifference(outs[r], want))
                        : bitDifference(outs[r], want);
                all_bits = all_bits && bitIdentical(outs[r], want);
                if (!diff.empty()) {
                    std::cout << "  VERIFY FAILED: request " << r
                              << " fused vs unfused: " << diff << "\n";
                    return false;
                }
            }
            std::cout << "  verify: all " << requests
                      << " fused outputs "
                      << (all_bits ? "bit-identical to"
                                   : "within tolerance of")
                      << " the unfused graph\n";
        }
        // A non-reference backend must additionally reproduce the
        // reference numerics within float tolerance (optimized
        // kernels may reassociate accumulation, so not bit-for-bit).
        // Activation-quantized graphs get the quant comparator
        // instead: the backends' float ops legally differ by ulps,
        // and an absmax scale moving one ulp shifts EVERY int8 code
        // of that tensor by a step — element-wise tolerance explodes
        // while the tensor as a whole stays within quantization
        // noise.
        bool act_quant = qm == quant::QuantExecMode::Int8 ||
                         qm == quant::QuantExecMode::Int8Raw;
        if (backend.name() != referenceBackend().name()) {
            Executor refref(g, referenceBackend());
            for (size_t r = 0; r < requests; ++r) {
                std::vector<Tensor> want = refref.run(reqs[r]);
                std::string diff =
                    act_quant ? quantDifference(outs[r], want)
                              : closeDifference(outs[r], want);
                if (!diff.empty()) {
                    std::cout << "  VERIFY FAILED: request " << r
                              << " vs reference backend: " << diff
                              << "\n";
                    return false;
                }
            }
            std::cout << "  verify: all " << requests
                      << " request outputs within tolerance of the "
                         "reference backend\n";
        }
        // Quantized execution must stay within quantization tolerance
        // of the FLOAT graph (relative L2 per output): the A/B that
        // proves int8 execution changed cost, not semantics.
        if (qm != quant::QuantExecMode::Off) {
            Executor fb(floatBaseline, backend);
            for (size_t r = 0; r < requests; ++r) {
                std::string diff =
                    quantDifference(outs[r], fb.run(reqs[r]));
                if (!diff.empty()) {
                    std::cout << "  VERIFY FAILED: request " << r
                              << " quantized vs float baseline: " << diff
                              << "\n";
                    return false;
                }
            }
            std::cout << "  verify: all " << requests
                      << " quantized outputs within quantization "
                         "tolerance of the float graph\n";
        }
    }
    return true;
}

int
runtimeMain(const BenchConfig &cfg, const RuntimeCli &rt,
            const ObsCliOpts &obsOut, const std::string &json)
{
    ThreadPool pool(rt.parallel ? rt.threads : 1);
    std::vector<std::string> names;
    if (cfg.model == "all") {
        for (const auto &m : models::modelRegistry())
            names.push_back(m.name);
    } else {
        names.push_back(cfg.model);
    }

    // --backend both: measure the same graphs under reference AND
    // optimized kernels and print the side-by-side GEMM / non-GEMM
    // attribution — the paper's split re-measured as kernels improve.
    std::vector<const Backend *> backends;
    if (rt.backend == "both")
        backends = {&referenceBackend(), &optimizedBackend()};
    else if (rt.backend.empty())
        backends = {&defaultBackend()};
    else
        backends = {&findBackend(rt.backend)};

    bool ok = true;
    RuntimeProfile profile;
    MemoryPlan memplan;
    bool measured = false;
    for (const std::string &name : names) {
        std::vector<RuntimeProfile> perBackend;
        for (const Backend *backend : backends) {
            bool want = rt.parallel;
            RuntimeProfile p;
            // --fuse in parallel mode measures the unfused graph
            // first, so the fused-vs-unfused attribution (GEMM share,
            // per-category split) prints side by side like
            // --backend both. Measurement only: the fused run right
            // after re-executes the unfused graph for its own verify,
            // so repeating the full battery here would triple the
            // serial re-executions per model.
            RuntimeProfile unfusedProfile;
            if (rt.fuse && want) {
                RuntimeCli measure = rt;
                measure.verify = false;
                ok = runRuntimeModel(name, cfg, measure, *backend,
                                     false, pool, &unfusedProfile,
                                     nullptr) &&
                     ok;
            }
            ok = runRuntimeModel(name, cfg, rt, *backend, rt.fuse, pool,
                                 want ? &p : nullptr,
                                 want ? &memplan : nullptr) &&
                 ok;
            if (rt.fuse && want)
                printRuntimeComparison(unfusedProfile, p,
                                       "unfused", "fused", std::cout);
            if (want && cfg.model != "all") {
                profile = p;
                measured = true;
            }
            if (want)
                perBackend.push_back(std::move(p));
        }
        if (perBackend.size() > 1)
            printBackendComparison(perBackend.front(), perBackend.back(),
                                   std::cout);
    }

    // For a single model also emit the modeled report for the SAME
    // graph the runtime executed (same scale and sequence length),
    // with the measured-runtime summary attached.
    if (cfg.model != "all") {
        BenchConfig scaled = cfg;
        scaled.testScale = rt.scale;
        scaled.batch = 1;
        scaled.seqLen = cfg.seqLen > 0 ? cfg.seqLen : 8;
        ProfileReport r = Bench::run(scaled);
        if (measured) {
            r.runtime.backend = profile.backend;
            r.runtime.fused = profile.fused;
            r.runtime.threads = profile.threads;
            r.runtime.intraop = profile.intraop;
            r.runtime.deepLevels = profile.deepLevelCount();
            r.runtime.requests = profile.requests;
            r.runtime.wallUs = profile.wallUs;
            r.runtime.sumUs = profile.sumUs;
            r.runtime.planUs = profile.planUs;
            r.runtime.levels = profile.schedule.numLevels;
            r.runtime.maxWidth = profile.schedule.maxWidth;
            r.runtime.arenaBytes = memplan.arenaBytes;
            r.runtime.totalTensorBytes = memplan.totalBytes;
            r.runtime.arena = profile.memory.arena;
            r.runtime.measuredPeakBytes = profile.memory.boundPeakBytes;
            r.runtime.heapAllocs = profile.memory.heapAllocs;
            r.runtime.scratchPeakBytes = profile.memory.scratchPeakBytes;
            r.runtime.scratchWorkerSumBytes =
                profile.memory.scratchWorkerSumBytes;
            r.runtime.quant = profile.quant;
            r.runtime.perf = profile.perf;
            r.runtime.modelFlops = profile.modelFlops;
            r.runtime.modelBytes = profile.modelBytes;
        }
        printReport(r, std::cout);
        if (!json.empty()) {
            std::ofstream f(json);
            writeJsonReport(r, f);
            std::cout << "wrote " << json << "\n";
        }
    }
    writeObsArtifacts(obsOut);
    return ok ? 0 : 1;
}

int
serveMain(const BenchConfig &cfg, const RuntimeCli &rt,
          const ServeCliOpts &sv, const ObsCliOpts &obsOut,
          const std::string &json)
{
    serve::ServeConfig sc;
    sc.mix = sv.mix.empty()
                 ? std::vector<serve::MixEntry>{{cfg.model, 1}}
                 : serve::parseMix(sv.mix);
    sc.rps = sv.rps;
    sc.durationS = sv.durationS;
    sc.clients = sv.clients;
    sc.policy.maxBatch = sv.maxBatch;
    sc.policy.timeoutUs = sv.batchTimeoutUs;
    sc.queueDepth = sv.queueDepth;
    if (sv.admission == "reject")
        sc.admission = AdmissionPolicy::Reject;
    else if (sv.admission == "block")
        sc.admission = AdmissionPolicy::Block;
    else
        throw std::runtime_error("--admission expects block|reject");
    sc.engine.scale = rt.scale;
    sc.engine.seqLen = cfg.seqLen > 0 ? cfg.seqLen : 8;
    sc.engine.backend = rt.backend;  // "" = process default
    if (rt.fuse)
        sc.engine.fuse = true;  // default: $NGB_FUSE
    sc.engine.arena = rt.arenaOn();
    if (!rt.quant.empty())  // default: $NGB_QUANT (EngineConfig)
        sc.engine.quant = quant::quantModeName(
            quant::parseQuantMode(rt.quant));
    sc.engine.intraop = rt.intraOpMode();  // flag beats $NGB_INTRAOP
    sc.seed = sv.seed;
    sc.verify = rt.verify;
    // The sampler thread rewrites these live every cadence tick; the
    // final post-drain snapshot lands in the same files.
    sc.metricsJsonPath = obsOut.metrics;
    sc.metricsPromPath = obsOut.prom;

    int threads = resolveThreads(rt.threads);
    std::cout << "== serving  mix=";
    for (size_t i = 0; i < sc.mix.size(); ++i)
        std::cout << (i ? "," : "") << sc.mix[i].model << ":"
                  << sc.mix[i].weight;
    if (sc.clients > 0)
        std::cout << "  closed-loop clients=" << sc.clients;
    else
        std::cout << "  open-loop rps=" << sc.rps;
    std::cout << "  duration=" << sc.durationS << "s  max_batch="
              << sc.policy.maxBatch << "  batch_timeout="
              << sc.policy.timeoutUs << "us  queue_depth="
              << sc.queueDepth << " (" << sv.admission << ")  threads="
              << threads << "  scale=1/" << rt.scale << "  backend="
              << (sc.engine.backend.empty() ? defaultBackend().name()
                                            : sc.engine.backend)
              << (sc.engine.fuse ? " (fused)" : "")
              << (sc.engine.quant != "off" ? "  quant=" + sc.engine.quant
                                           : "")
              << (sc.engine.arena ? "  memory=arena" : "  memory=heap")
              << "  intraop=" << intraOpModeName(sc.engine.intraop)
              << "  seed=" << sc.seed << "\n";

    ThreadPool pool(threads);
    serve::ServeResult result = serve::runServe(sc, pool);
    printServeReport(result.stats, std::cout);

    bool ok = true;
    if (result.verified) {
        if (result.verifyMismatches == 0) {
            std::cout << "  verify: all " << result.verifiedRequests
                      << " served requests bit-identical to the serial "
                         "Executor\n";
        } else {
            std::cout << "  VERIFY FAILED: " << result.verifyMismatches
                      << " of " << result.verifiedRequests
                      << " served requests differ from serial\n";
            ok = false;
        }
    }
    if (result.stats.completed != result.stats.admitted) {
        std::cout << "  WARNING: " << result.stats.admitted
                  << " admitted but only " << result.stats.completed
                  << " completed\n";
        ok = false;
    }
    if (!json.empty()) {
        std::ofstream f(json);
        writeServeJson(result.stats, f);
        std::cout << "wrote " << json << "\n";
    }
    // runServe already rewrote the metrics snapshots live (sampler
    // cadence) and once post-drain; this re-render is byte-identical
    // and exists to print the "wrote" lines and the span count.
    writeObsArtifacts(obsOut);
    return ok ? 0 : 1;
}

void
usage()
{
    std::cout <<
        "NonGEMM Bench (C++): operator-level GEMM/non-GEMM profiling\n"
        "\n"
        "usage: ngb [options]\n"
        "  --list               list registry models and exit\n"
        "  --model NAME         model to profile (default vit_b; 'all'\n"
        "                       iterates the registry in --runtime mode)\n"
        "  --flow FLOW          pytorch|inductor|ort|tensorrt\n"
        "  --platform A|B       data center (A) or workstation (B)\n"
        "  --batch N            batch size (default 1)\n"
        "  --seq N              sequence length for NLP models\n"
        "  --cpu-only           disable GPU acceleration\n"
        "  --quantize           apply the LLM.int8() pass\n"
        "  --decode             profile one generate() decode step\n"
        "  --ops-csv FILE       write per-op CSV\n"
        "  --cat-csv FILE       write category CSV\n"
        "  --json FILE          write the full report as JSON\n"
        "  --svg FILE           write a stacked-bar SVG\n"
        "  --trace FILE         write a Chrome/Perfetto trace JSON. In\n"
        "                       the analytical bench this is the MODELED\n"
        "                       cost-model timeline; with --runtime or\n"
        "                       --serve it enables span tracing and\n"
        "                       exports the MEASURED trace (queue, batch,\n"
        "                       request, level, and per-kernel spans,\n"
        "                       per-request trace ids). $NGB_TRACE=1\n"
        "                       enables recording without exporting\n"
        "  --dot FILE           write the operator graph as Graphviz\n"
        "  --workload           print the Section III-C workload report\n"
        "\n"
        "concrete execution (src/runtime):\n"
        "  --runtime MODE       serial | parallel: actually execute the\n"
        "                       graph; --batch N becomes N independent\n"
        "                       requests through one planned graph\n"
        "  --threads N          worker threads (default: hardware)\n"
        "  --scale N            shrink models by N for host execution\n"
        "                       (default 8; 1 = paper scale, slow)\n"
        "  --backend NAME       kernel backend: reference | optimized\n"
        "                       | simd, or 'both' to measure the same\n"
        "                       graph under both reference and\n"
        "                       optimized and print the side-by-side\n"
        "                       GEMM/non-GEMM attribution (default:\n"
        "                       $NGB_BACKEND or reference)\n"
        "  --isa LEVEL          auto | scalar | neon | avx2 | avx512:\n"
        "                       force the process-wide SIMD dispatch\n"
        "                       level the simd backend registers its\n"
        "                       kernels at. Forcing a level below what\n"
        "                       the host supports is always allowed\n"
        "                       (scalar makes every op fall through to\n"
        "                       optimized); asking for more than the\n"
        "                       host/build supports is an error. auto\n"
        "                       (default) uses runtime CPU detection.\n"
        "                       $NGB_ISA sets it ambiently (clamped,\n"
        "                       with a warning, instead of erroring)\n"
        "  --arena MODE         on | off: execute through planned,\n"
        "                       pooled per-request memory arenas (the\n"
        "                       MemoryPlan made executable): zero\n"
        "                       steady-state tensor mallocs/memsets.\n"
        "                       Applies to --runtime parallel and\n"
        "                       --serve; bit-identical to heap. With\n"
        "                       --verify, heap-vs-arena identity is\n"
        "                       asserted. $NGB_ARENA=1 sets the\n"
        "                       process default\n"
        "  --quant MODE         executable int8 quantization, applied\n"
        "                       before fusion and planning:\n"
        "                         int8     activations + weights int8,\n"
        "                                  per-channel weight scales,\n"
        "                                  requantize fused into the\n"
        "                                  GEMM epilogue, adjacent Q/DQ\n"
        "                                  pairs eliminated\n"
        "                         int8-raw int8 without Q/DQ\n"
        "                                  elimination (the granular\n"
        "                                  form; bit-identical outputs\n"
        "                                  to int8)\n"
        "                         w8       weight-only int8: weights\n"
        "                                  stored packed int8 and\n"
        "                                  dequantized inside the GEMM\n"
        "                         off      float execution (default)\n"
        "                       With --verify, quantized outputs are\n"
        "                       additionally checked against the float\n"
        "                       graph within quantization tolerance\n"
        "                       (relative L2 per output). $NGB_QUANT\n"
        "                       sets the process default; works with\n"
        "                       --serve too (quant mode is part of the\n"
        "                       engine-cache key)\n"
        "  --intraop MODE       on | off | auto: intra-op parallelism\n"
        "                       (hybrid inter/intra-op scheduling).\n"
        "                       off keeps kernels serial (wavefront /\n"
        "                       batch parallelism only); on hands the\n"
        "                       pool to GEMMs whenever a level or batch\n"
        "                       is narrower than the pool; auto\n"
        "                       (default) asks a per-level cost model.\n"
        "                       Sharding splits M/N macro-tiles, never\n"
        "                       the K reduction, so outputs are\n"
        "                       bit-identical at every thread count.\n"
        "                       $NGB_INTRAOP sets the process default;\n"
        "                       applies to --serve too (part of the\n"
        "                       engine-cache key)\n"
        "  --fuse               applyFusion before executing: CONV+BN\n"
        "                       (+act) folding, point-wise chains, and\n"
        "                       GEMM epilogues run as single fused\n"
        "                       kernels. In parallel mode the unfused\n"
        "                       graph is measured too and the\n"
        "                       fused-vs-unfused per-category split is\n"
        "                       printed side by side. Implies\n"
        "                       --runtime parallel when neither\n"
        "                       --runtime nor --serve is given.\n"
        "                       $NGB_FUSE=1 sets it process-wide.\n"
        "  --verify             cross-check outputs bit-identically\n"
        "                       against a serial walk of the same\n"
        "                       backend; non-reference backends are\n"
        "                       additionally checked against the\n"
        "                       reference backend within tolerance;\n"
        "                       with --fuse, fused outputs are also\n"
        "                       checked against the unfused graph\n"
        "\n"
        "serving (src/serve): closed-box server under synthetic load\n"
        "  --serve              serve a traffic mix through the engine\n"
        "                       cache + dynamic batcher and report\n"
        "                       p50/p95/p99 queue/execute latency\n"
        "  --mix SPEC           weighted tenant mix, e.g. vit_b:4,gpt2:1\n"
        "                       (default: --model alone)\n"
        "  --rps X              open-loop Poisson arrival rate (default\n"
        "                       100)\n"
        "  --clients N          closed-loop: N clients, each waiting for\n"
        "                       its previous request (disables --rps)\n"
        "  --duration-s X       load-generation horizon (default 2)\n"
        "  --max-batch N        close a batch at N requests (default 8)\n"
        "  --batch-timeout-us N close a partial batch once its oldest\n"
        "                       request waited N us (default 2000)\n"
        "  --queue-depth N      admission-control bound (default 256)\n"
        "  --admission POL      block | reject when the queue is full\n"
        "  --seed N             load-gen seed (default 42): open-loop\n"
        "                       trace and all request outputs are\n"
        "                       deterministic under a fixed seed\n"
        "\n"
        "observability (src/obs), --runtime/--serve modes only:\n"
        "  --metrics FILE       meter the run (counters, gauges,\n"
        "                       log-bucketed latency histograms) and\n"
        "                       write the registry snapshot as JSON; in\n"
        "                       --serve mode the file is rewritten live\n"
        "                       every sampler tick. $NGB_METRICS=1\n"
        "                       enables metering without exporting\n"
        "  --prom FILE          same snapshot in Prometheus text format\n"
        "  --perf               sample hardware counters (cycles,\n"
        "                       instructions, LLC/branch misses) around\n"
        "                       every kernel scope via perf_event_open\n"
        "                       and report per-category IPC/MPKI plus a\n"
        "                       measured roofline; degrades to a clock\n"
        "                       fallback when the syscall is denied\n"
        "                       (see kernel.perf_event_paranoid).\n"
        "                       $NGB_PERF=1 enables it too\n"
        "\n"
        "--threads/--scale/--seq/--verify/--backend/--fuse/--quant/\n"
        "--intraop/--json apply to --serve too (fused, quantized, and\n"
        "intra-op engines are cached separately).\n";
}

}  // namespace

int
main(int argc, char **argv)
{
    BenchConfig cfg;
    RuntimeCli rt;
    ServeCliOpts sv;
    ObsCliOpts obsOut;
    std::string ops_csv, cat_csv, svg, trace, json, dot;
    bool workload = false;
    bool flowFlagsUsed = false;   // --flow/--platform/--cpu-only seen
    bool serveFlagsUsed = false;  // any serving-only flag seen

    std::string a;  // current flag, for the catch below
    try {
    for (int i = 1; i < argc; ++i) {
        a = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::cerr << "missing value for " << a << "\n";
                std::exit(2);
            }
            return argv[++i];
        };
        // Strict numeric parses: the whole token must be consumed
        // ("4x" or "1e5" as an integer are usage errors, not 4 / 1),
        // and int-typed flags are range-checked instead of silently
        // wrapping through static_cast.
        auto strict = [&](const std::string &s, size_t used) {
            if (used != s.size()) {
                std::cerr << "invalid value for " << a << ": \"" << s
                          << "\"\n";
                std::exit(2);
            }
        };
        auto nextLong = [&]() -> long {
            std::string s = next();
            size_t used = 0;
            long v = std::stol(s, &used);
            strict(s, used);
            return v;
        };
        auto nextDouble = [&]() -> double {
            std::string s = next();
            size_t used = 0;
            double v = std::stod(s, &used);
            strict(s, used);
            return v;
        };
        auto nextU64 = [&]() -> uint64_t {
            std::string s = next();
            if (!s.empty() && s[0] == '-') {
                // stoull would silently wrap "-1" to 2^64-1.
                std::cerr << a << " must be >= 0\n";
                std::exit(2);
            }
            size_t used = 0;
            unsigned long long v = std::stoull(s, &used);
            strict(s, used);
            return v;
        };
        auto nextInt = [&](long lo, long hi) -> int {
            long v = nextLong();
            if (v < lo || v > hi) {
                std::cerr << a << " must be in [" << lo << ", " << hi
                          << "]\n";
                std::exit(2);
            }
            return static_cast<int>(v);
        };
        if (a == "--help" || a == "-h") {
            usage();
            return 0;
        } else if (a == "--list") {
            std::cout << "registry (" << models::modelRegistry().size()
                      << " models):\n";
            for (const auto &m : models::modelRegistry())
                std::cout << "  " << m.name << "  [" << m.task << ", "
                          << m.dataset << "]"
                          << (m.halfPrecision ? " fp16" : "") << "\n";
            return 0;
        } else if (a == "--model") {
            cfg.model = next();
        } else if (a == "--flow") {
            cfg.flow = next();
            flowFlagsUsed = true;
        } else if (a == "--platform") {
            cfg.platform = next();
            flowFlagsUsed = true;
        } else if (a == "--batch") {
            cfg.batch = nextLong();
        } else if (a == "--seq") {
            cfg.seqLen = nextLong();
        } else if (a == "--cpu-only") {
            cfg.gpu = false;
            flowFlagsUsed = true;
        } else if (a == "--quantize") {
            cfg.quantize = true;
        } else if (a == "--decode") {
            cfg.decodeStep = true;
        } else if (a == "--runtime") {
            std::string mode = next();
            if (mode != "serial" && mode != "parallel") {
                std::cerr << "--runtime expects serial|parallel\n";
                return 2;
            }
            rt.enabled = true;
            rt.parallel = mode == "parallel";
        } else if (a == "--serve") {
            sv.enabled = true;
        } else if (a == "--mix") {
            sv.mix = next();
            serveFlagsUsed = true;
        } else if (a == "--rps") {
            sv.rps = nextDouble();
            serveFlagsUsed = true;
        } else if (a == "--clients") {
            // Closed loop spawns one OS thread per client; bound it to
            // what that model can actually support.
            sv.clients = nextInt(0, 1024);
            serveFlagsUsed = true;
        } else if (a == "--duration-s") {
            sv.durationS = nextDouble();
            serveFlagsUsed = true;
        } else if (a == "--max-batch") {
            sv.maxBatch = nextInt(1, 1 << 20);
            serveFlagsUsed = true;
        } else if (a == "--batch-timeout-us") {
            sv.batchTimeoutUs = nextLong();
            serveFlagsUsed = true;
        } else if (a == "--queue-depth") {
            // Signed parse: stoul would wrap "-1" to a huge depth and
            // silently disable admission control.
            long depth = nextLong();
            if (depth < 1) {
                std::cerr << "--queue-depth must be >= 1\n";
                return 2;
            }
            sv.queueDepth = static_cast<size_t>(depth);
            serveFlagsUsed = true;
        } else if (a == "--admission") {
            sv.admission = next();
            serveFlagsUsed = true;
        } else if (a == "--seed") {
            sv.seed = nextU64();
            serveFlagsUsed = true;
        } else if (a == "--backend") {
            rt.backend = next();
        } else if (a == "--isa") {
            // Applied immediately, before any backend is built: the
            // simd backend registers kernels for the level active at
            // its first use, so the override must precede it.
            try {
                platform::setActiveIsaName(next());
            } catch (const std::exception &e) {
                std::cerr << e.what() << "\n";
                return 2;
            }
        } else if (a == "--fuse") {
            rt.fuse = true;
        } else if (a == "--arena") {
            rt.arena = next();
            if (rt.arena != "on" && rt.arena != "off") {
                std::cerr << "--arena expects on|off\n";
                return 2;
            }
        } else if (a == "--quant") {
            rt.quant = next();
            try {
                quant::parseQuantMode(rt.quant);
            } catch (const std::exception &e) {
                std::cerr << e.what() << "\n";
                return 2;
            }
        } else if (a == "--intraop") {
            rt.intraop = next();
            try {
                parseIntraOpMode(rt.intraop);
            } catch (const std::exception &e) {
                std::cerr << e.what() << "\n";
                return 2;
            }
        } else if (a == "--threads") {
            rt.threads = nextInt(0, 1 << 14);
        } else if (a == "--scale") {
            rt.scale = nextLong();
        } else if (a == "--verify") {
            rt.verify = true;
        } else if (a == "--json") {
            json = next();
        } else if (a == "--dot") {
            dot = next();
        } else if (a == "--workload") {
            workload = true;
        } else if (a == "--ops-csv") {
            ops_csv = next();
        } else if (a == "--cat-csv") {
            cat_csv = next();
        } else if (a == "--svg") {
            svg = next();
        } else if (a == "--trace") {
            trace = next();
        } else if (a == "--metrics") {
            obsOut.metrics = next();
        } else if (a == "--prom") {
            obsOut.prom = next();
        } else if (a == "--perf") {
            obsOut.perf = true;
        } else {
            std::cerr << "unknown option: " << a << "\n";
            usage();
            return 2;
        }
    }
    } catch (const std::exception &) {
        // std::sto* on a malformed number must be a usage error, not
        // an uncaught-exception abort.
        std::cerr << "invalid value for " << a << "\n";
        return 2;
    }

    if (sv.enabled && rt.enabled) {
        std::cerr << "--serve and --runtime are mutually exclusive\n";
        return 2;
    }
    // $NGB_FUSE flips the default only for modes that actually
    // execute kernels; a bare analytical-bench invocation must keep
    // producing the modeled report regardless of the environment.
    if (fuseEnabledByEnv() && (rt.enabled || sv.enabled))
        rt.fuse = true;
    if (rt.fuse && !rt.enabled && !sv.enabled) {
        // Fusion is an execution-level rewrite; bare --fuse means
        // "execute it": default to the parallel runtime so --verify
        // also covers serial-vs-parallel bit-identity on the fused
        // graph.
        rt.enabled = true;
        rt.parallel = true;
    }
    if (serveFlagsUsed && !sv.enabled) {
        // A forgotten --serve must not silently run the analytical
        // bench with every serving flag dropped.
        std::cerr << "serving flags (--mix/--rps/--clients/--duration-s/"
                     "--max-batch/--batch-timeout-us/--queue-depth/"
                     "--admission/--seed) require --serve\n";
        return 2;
    }
    if (sv.enabled && (cfg.quantize || cfg.decodeStep || cfg.batch != 1 ||
                       flowFlagsUsed)) {
        // Reject rather than silently serve a different graph than the
        // user asked for (--verify compares against the same engine
        // graph, so it cannot catch this).
        std::cerr << "--quantize/--decode/--batch/--flow/--platform/"
                     "--cpu-only are not supported in --serve mode "
                     "(engines serve the raw registry graph; traffic "
                     "comes from --mix/--rps)\n";
        return 2;
    }
    if (sv.enabled &&
        (sv.maxBatch < 1 || sv.batchTimeoutUs < 0 ||
         (sv.clients <= 0 && sv.rps <= 0) || sv.durationS <= 0 ||
         sv.clients < 0)) {
        std::cerr << "--serve: bad load/batch parameters (need max-batch"
                     " >= 1, batch-timeout-us >= 0, rps > 0,"
                     " duration-s > 0, clients >= 0)\n";
        return 2;
    }
    if (rt.enabled && cfg.batch < 1) {
        std::cerr << "--batch must be >= 1 in --runtime mode\n";
        return 2;
    }
    if ((rt.enabled || sv.enabled) && rt.scale < 1) {
        std::cerr << "--scale must be >= 1\n";
        return 2;
    }
    if (!rt.arena.empty() && !rt.enabled && !sv.enabled) {
        std::cerr << "--arena requires --runtime or --serve (the "
                     "analytical bench does not allocate tensors)\n";
        return 2;
    }
    if (!rt.quant.empty() && !rt.enabled && !sv.enabled) {
        std::cerr << "--quant requires --runtime or --serve (use "
                     "--quantize for the modeled LLM.int8() rewrite in "
                     "the analytical bench)\n";
        return 2;
    }
    if (!rt.quant.empty() && cfg.quantize) {
        std::cerr << "--quant and --quantize are mutually exclusive "
                     "(executable int8 vs the modeled rewrite)\n";
        return 2;
    }
    if (rt.arenaOn() && rt.enabled && !rt.parallel && !rt.arena.empty()) {
        std::cerr << "--arena on requires --runtime parallel or --serve "
                     "(the serial reference walk stays heap-backed as "
                     "the verification baseline)\n";
        return 2;
    }
    if (!rt.backend.empty()) {
        if (!rt.enabled && !sv.enabled) {
            std::cerr << "--backend requires --runtime or --serve "
                         "(the analytical bench does not execute "
                         "kernels)\n";
            return 2;
        }
        if (rt.backend == "both" && sv.enabled) {
            std::cerr << "--backend both is a --runtime comparison "
                         "sweep; pick one backend for --serve\n";
            return 2;
        }
        if (rt.backend == "both" && rt.enabled && !rt.parallel) {
            // The side-by-side attribution needs measured per-node
            // timings, which only the parallel runtime collects.
            std::cerr << "--backend both requires --runtime parallel "
                         "(the serial walk does not measure per-op "
                         "time)\n";
            return 2;
        }
        if (rt.backend != "both") {
            try {
                findBackend(rt.backend);
            } catch (const std::exception &e) {
                std::cerr << e.what() << "\n";
                return 2;
            }
        }
    }
    if (obsOut.any() && !rt.enabled && !sv.enabled) {
        std::cerr << "--metrics/--prom/--perf require --runtime or "
                     "--serve (the analytical bench executes no "
                     "kernels to meter)\n";
        return 2;
    }
    if (rt.enabled || sv.enabled) {
        // In the executing modes --trace is the MEASURED trace: enable
        // span recording and export what actually ran. (The analytical
        // modes keep writing the modeled cost-model trace below.)
        if (!trace.empty()) {
            obsOut.trace = trace;
            trace.clear();
            obs::setTraceEnabled(true);
        }
        if (!obsOut.metrics.empty() || !obsOut.prom.empty())
            obs::setMetricsEnabled(true);
        if (obsOut.perf)
            obs::setPerfEnabled(true);
        if (!ops_csv.empty() || !cat_csv.empty() || !svg.empty() ||
            !dot.empty() || workload)
            std::cerr << "note: --ops-csv/--cat-csv/--svg/--dot/"
                         "--workload are ignored in --runtime/--serve "
                         "modes\n";
        if (rt.enabled && !json.empty() && cfg.model == "all")
            std::cerr << "note: --json is only written for a single "
                         "model in --runtime mode\n";
        if (sv.enabled && cfg.model == "all") {
            // "all" is a --runtime sweep; as a serve tenant it would
            // only fail later with an obscure unknown-model error.
            std::cerr << "--model all is not a serve tenant; list the "
                         "mix explicitly with --mix\n";
            return 2;
        }
    }

    try {
        if (sv.enabled)
            return serveMain(cfg, rt, sv, obsOut, json);
        if (rt.enabled)
            return runtimeMain(cfg, rt, obsOut, json);

        ProfileReport r = Bench::run(cfg);
        printReport(r, std::cout);

        if (!ops_csv.empty()) {
            std::ofstream f(ops_csv);
            writeOpCsv(r, f);
            std::cout << "wrote " << ops_csv << "\n";
        }
        if (!cat_csv.empty()) {
            std::ofstream f(cat_csv);
            writeCategoryCsv(r, f);
            std::cout << "wrote " << cat_csv << "\n";
        }
        if (!svg.empty()) {
            std::ofstream f(svg);
            SvgChartOptions opts;
            opts.title = cfg.model + " / " + cfg.flow + " / platform " +
                         cfg.platform;
            writeSvgChart({r}, opts, f);
            std::cout << "wrote " << svg << "\n";
        }
        if (!json.empty()) {
            std::ofstream f(json);
            writeJsonReport(r, f);
            std::cout << "wrote " << json << "\n";
        }
        if (workload || !dot.empty() || !trace.empty()) {
            // Rebuild the graph/plan for graph-level outputs.
            const auto &info = models::findModel(cfg.model);
            ModelConfig mc;
            mc.batch = cfg.batch;
            mc.seqLen = cfg.seqLen > 0 ? cfg.seqLen
                                       : std::max<int64_t>(
                                             info.defaultSeqLen, 8);
            mc.decodeStep = cfg.decodeStep;
            Graph g = info.build(mc);
            if (cfg.quantize) {
                QuantizeConfig qc;
                g = quantizeLlmInt8(g, qc);
            }
            ValidationResult vr = validateGraph(g);
            if (!vr.ok())
                std::cerr << "graph validation failed:\n"
                          << formatIssues(vr);
            if (workload)
                printWorkloadReport(buildWorkloadReport(g), std::cout);
            if (!dot.empty()) {
                std::ofstream f(dot);
                DotOptions opts;
                writeDot(g, opts, f);
                std::cout << "wrote " << dot << "\n";
            }
            if (!trace.empty()) {
                auto flow = makeFlow(cfg.flow);
                FlowOptions fo;
                fo.gpu = cfg.gpu;
                fo.f16 = info.halfPrecision;
                ExecutionPlan plan = flow->plan(g, fo);
                CostModel cm(platformById(cfg.platform), cfg.costParams);
                auto timings = cm.priceAll(plan);
                std::ofstream f(trace);
                writeChromeTrace(plan, timings, f);
                std::cout << "wrote " << trace << "\n";
            }
        }
    } catch (const std::exception &e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
    return 0;
}
