#include "runtime/intraop.h"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

#include "obs/trace.h"
#include "tensor/scratch.h"

namespace ngb {

IntraOpMode
intraOpModeFromEnv()
{
    const char *env = std::getenv("NGB_INTRAOP");
    if (!env || !*env)
        return IntraOpMode::Auto;
    const std::string s(env);
    if (s == "0" || s == "off")
        return IntraOpMode::Off;
    if (s == "1" || s == "on")
        return IntraOpMode::On;
    return IntraOpMode::Auto;
}

IntraOpMode
parseIntraOpMode(const std::string &s)
{
    if (s == "off")
        return IntraOpMode::Off;
    if (s == "on")
        return IntraOpMode::On;
    if (s == "auto")
        return IntraOpMode::Auto;
    throw std::runtime_error("unknown --intraop mode '" + s +
                             "' (expected on, off, or auto)");
}

const char *
intraOpModeName(IntraOpMode m)
{
    switch (m) {
    case IntraOpMode::Off:
        return "off";
    case IntraOpMode::On:
        return "on";
    case IntraOpMode::Auto:
        return "auto";
    }
    return "?";
}

void
ParallelRegion::run(size_t nShards,
                    const std::function<void(size_t, int)> &fn) const
{
    if (nShards == 0)
        return;
    // Capture the dispatching thread's trace id here: pool workers do
    // not inherit thread-locals, so each shard re-establishes it (the
    // Shard spans must land under the launching request).
    const uint64_t traceId = obs::currentTraceId();
    const int64_t total = static_cast<int64_t>(nShards);
    auto shard = [&](size_t i, int worker) {
        obs::TraceIdScope tid(traceId);
        obs::ScopedSpan span(obs::SpanKind::Shard);
        if (span.armed()) {
            span.ev().a0 = static_cast<int64_t>(i);
            span.ev().a1 = total;
            span.ev().a2 = worker;
        }
        // Pack panels a shard allocates die with the shard: the next
        // shard this worker picks up starts from a clean high-water
        // mark instead of stacking panels.
        ScratchScope scratch;
        fn(i, worker);
    };
    if (!pool_ || pool_->threads() == 1 || nShards == 1) {
        for (size_t i = 0; i < nShards; ++i)
            shard(i, ThreadPool::inTask()
                          ? std::max(ThreadPool::currentWorker(), 0)
                          : 0);
        return;
    }
    pool_->parallelFor(nShards, shard);
}

}  // namespace ngb
