#ifndef NGB_RUNTIME_MEMORY_PLANNER_H
#define NGB_RUNTIME_MEMORY_PLANNER_H

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "graph/schedule.h"

namespace ngb {

/** Arena assignment of one produced tensor. */
struct TensorPlacement {
    Value value;           ///< producing (node, output index)
    int64_t bytes = 0;     ///< aligned size reserved in the arena
    int firstLevel = 0;    ///< schedule level that produces it
    int lastLevel = 0;     ///< last schedule level that reads it
    int64_t offset = 0;    ///< byte offset inside the arena
};

/**
 * Result of lifetime-based arena planning for one (graph, schedule)
 * pair. arenaBytes is the planned peak; totalBytes is what a
 * no-reuse allocator (one live buffer per produced tensor) would
 * need. reuseFactor() > 1 means lifetime reuse is paying off.
 */
struct MemoryPlan {
    std::vector<TensorPlacement> placements;
    int64_t arenaBytes = 0;
    int64_t totalBytes = 0;

    double reuseFactor() const
    {
        return arenaBytes > 0
                   ? static_cast<double>(totalBytes) /
                         static_cast<double>(arenaBytes)
                   : 1.0;
    }

    /** Placement for @p v, or nullptr if not planned (inputs/params). */
    const TensorPlacement *find(Value v) const;
};

/**
 * Plan arena offsets for every tensor a graph execution produces.
 *
 * Lifetimes are computed in schedule-level space: a tensor is live
 * from its producer's level through the last level that consumes it
 * (graph outputs stay live to the end; because all nodes of a level
 * may run concurrently, a tensor consumed at level L is held through
 * the whole of L). Offsets are assigned greedily, biggest tensor
 * first within each level, into the best-fit free block — the classic
 * serving-runtime arena strategy of TVM/TFLite-style planners, keeping
 * peak memory near the live-set maximum instead of the sum of all
 * intermediates.
 *
 * Graph inputs are caller-owned and learned parameters live in the
 * ParamStore for the process lifetime, so neither is planned.
 */
MemoryPlan planMemory(const Graph &g, const Schedule &s);

/**
 * Check the invariant tests rely on: no two placements whose
 * [firstLevel, lastLevel] lifetimes overlap may overlap in their
 * [offset, offset+bytes) arena ranges. Returns true when safe.
 */
bool verifyNoAliasing(const MemoryPlan &plan);

}  // namespace ngb

#endif  // NGB_RUNTIME_MEMORY_PLANNER_H
