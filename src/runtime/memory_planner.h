#ifndef NGB_RUNTIME_MEMORY_PLANNER_H
#define NGB_RUNTIME_MEMORY_PLANNER_H

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"
#include "graph/schedule.h"

namespace ngb {

/** Arena assignment of one produced tensor. */
struct TensorPlacement {
    Value value;           ///< producing (node, output index)
    int64_t bytes = 0;     ///< aligned size reserved in the arena
    int firstLevel = 0;    ///< schedule level that produces it
    int lastLevel = 0;     ///< last schedule level that reads it
    int64_t offset = 0;    ///< byte offset inside the arena
};

/**
 * Result of lifetime-based arena planning for one (graph, schedule)
 * pair. arenaBytes is the planned peak; totalBytes is what a
 * no-reuse allocator (one live buffer per produced tensor) would
 * need. reuseFactor() > 1 means lifetime reuse is paying off.
 */
struct MemoryPlan {
    std::vector<TensorPlacement> placements;
    int64_t arenaBytes = 0;
    int64_t totalBytes = 0;

    double reuseFactor() const
    {
        return arenaBytes > 0
                   ? static_cast<double>(totalBytes) /
                         static_cast<double>(arenaBytes)
                   : 1.0;
    }

    /**
     * Placement for @p v, or nullptr if not planned (inputs/params).
     * O(1): the arena executors resolve every node output of every
     * request through this, so planMemory indexes the placements;
     * call buildIndex() after mutating placements by hand.
     */
    const TensorPlacement *find(Value v) const;

    /** (Re)build the Value -> placement index over `placements`. */
    void buildIndex();

  private:
    static int64_t key(Value v)
    {
        return (static_cast<int64_t>(v.node) << 32) |
               static_cast<int64_t>(static_cast<uint32_t>(v.index));
    }

    std::unordered_map<int64_t, size_t> index_;
};

/**
 * Plan arena offsets for every tensor a graph execution produces.
 *
 * Lifetimes are computed in schedule-level space: a tensor is live
 * from its producer's level through the last level that consumes it
 * (graph outputs stay live to the end; because all nodes of a level
 * may run concurrently, a tensor consumed at level L is held through
 * the whole of L). Offsets are assigned greedily, biggest tensor
 * first within each level, into the best-fit free block — the classic
 * serving-runtime arena strategy of TVM/TFLite-style planners, keeping
 * peak memory near the live-set maximum instead of the sum of all
 * intermediates.
 *
 * Graph inputs are caller-owned and learned parameters live in the
 * ParamStore for the process lifetime, so neither is planned.
 *
 * Alias awareness: layout operators that may return zero-copy VIEWS
 * of their input (Reshape/View/Permute/Transpose/Contiguous/Expand/
 * Squeeze/Unsqueeze/Slice — see mayAliasInput) do not copy bytes, so
 * a consumer of the view actually reads the producer's buffer. Every
 * placement along such an alias chain therefore has its lifetime
 * extended to the chain's last reader, keeping the underlying arena
 * slot unreused while any view of it is live. The alias ops keep
 * their own placements (used when they must materialize, e.g. a
 * Reshape of non-contiguous data).
 */
MemoryPlan planMemory(const Graph &g, const Schedule &s);

/** True for ops whose output may be a zero-copy view of input 0. */
bool mayAliasInput(OpKind k);

/**
 * Check the invariant tests rely on: no two placements whose
 * [firstLevel, lastLevel] lifetimes overlap may overlap in their
 * [offset, offset+bytes) arena ranges. Returns true when safe.
 */
bool verifyNoAliasing(const MemoryPlan &plan);

}  // namespace ngb

#endif  // NGB_RUNTIME_MEMORY_PLANNER_H
