#include "runtime/parallel_executor.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <stdexcept>

#include "obs/perf.h"
#include "obs/trace.h"
#include "tensor/scratch.h"

namespace ngb {

namespace {

using Clock = std::chrono::steady_clock;

/** GEMM work below this isn't worth forking a region for (matches the
 *  kParMinFlops serial cut inside the kernels themselves). */
constexpr double kDeepMinGemmFlops = 1 << 17;

/** Fraction of linear speedup a sharded GEMM actually achieves (pack
 *  overhead, ragged macro-tile grids, fork-join latency). */
constexpr double kIntraOpEfficiency = 0.7;

}  // namespace

ParallelExecutor::ParallelExecutor(const Graph &g, ThreadPool &pool,
                                   const Backend &backend, bool arena,
                                   IntraOpMode intraop)
    : ParallelExecutor(g, Schedule::wavefront(g), pool, backend, arena,
                       intraop)
{
}

ParallelExecutor::ParallelExecutor(const Graph &g, Schedule sched,
                                   ThreadPool &pool,
                                   const Backend &backend, bool arena,
                                   IntraOpMode intraop)
    : g_(g), sched_(std::move(sched)), pool_(pool), backend_(backend),
      params_(0x5eed), arena_(arena), intraop_(intraop)
{
    auto t0 = Clock::now();
    profile_.backend = backend_.name();
    profile_.fused = g_.hasFusedNodes();
    profile_.quant = quant::quantExecStatsOf(g_);
    for (const Node &n : g_.nodes()) {
        profile_.modelFlops += n.cost.flops;
        profile_.modelBytes += n.cost.totalBytes();
    }
    memplan_ = planMemory(g_, sched_);
    arena_ = arena_ && memplan_.arenaBytes > 0;
    if (arena_)
        arenaPool_.configure(memplan_.arenaBytes);

    // Per-node last-use level -> nodes releasable after each level.
    // The final level is never released: graph outputs live there.
    std::vector<int> last_level(g_.size(), -1);
    for (const TensorPlacement &p : memplan_.placements) {
        auto id = static_cast<size_t>(p.value.node);
        last_level[id] = std::max(last_level[id], p.lastLevel);
    }
    releaseAfterLevel_.resize(sched_.numLevels());
    int final_level = static_cast<int>(sched_.numLevels()) - 1;
    for (size_t id = 0; id < last_level.size(); ++id)
        if (last_level[id] >= 0 && last_level[id] < final_level)
            releaseAfterLevel_[static_cast<size_t>(last_level[id])]
                .push_back(static_cast<int>(id));

    // Hybrid inter/intra-op decision, per level. Everything it reads
    // is static (cost model + pool width), so it is resolved once
    // here and replayed by every run().
    const int T = pool_.threads();
    deepLevels_.assign(sched_.numLevels(), 0);
    if (intraop_ != IntraOpMode::Off && T > 1) {
        for (size_t lvl = 0; lvl < sched_.numLevels(); ++lvl) {
            const std::vector<int> &nodes = sched_.levels()[lvl];
            const auto width = static_cast<int>(nodes.size());
            double gemm_flops = 0;  // shardable work on this level
            double max_flops = 0;   // wide critical path per wave
            double deep_cost = 0;   // sequential, GEMMs sharded
            for (int id : nodes) {
                const Node &n = g_.node(id);
                const double f = n.cost.flops;
                max_flops = std::max(max_flops, f);
                const bool shardable =
                    n.category() == OpCategory::Gemm &&
                    f >= kDeepMinGemmFlops;
                if (shardable)
                    gemm_flops += f;
                deep_cost +=
                    shardable ? f / (T * kIntraOpEfficiency) : f;
            }
            if (gemm_flops <= 0)
                continue;  // nothing a region could speed up
            if (intraop_ == IntraOpMode::On) {
                deepLevels_[lvl] = width < T ? 1 : 0;
                continue;
            }
            // Auto: wide runs the level in ceil(width/T) waves, each
            // bounded by its heaviest node; deep runs nodes back to
            // back with GEMMs at ~70% of linear pool speedup.
            const double waves = (width + T - 1) / T;
            const double wide_cost = waves * max_flops;
            deepLevels_[lvl] = deep_cost < wide_cost ? 1 : 0;
        }
    }
    profile_.planUs = elapsedUsSince(t0);
}

std::vector<Tensor>
ParallelExecutor::run(const std::vector<Tensor> &inputs)
{
    const auto &gin = g_.graphInputs();
    if (inputs.size() != gin.size())
        throw std::runtime_error("ParallelExecutor: expected " +
                                 std::to_string(gin.size()) + " inputs");

    if (!warmedUp_) {
        // One serial pass so the hot loop's ParamStore lookups are
        // contention-free cache hits, plus the backend's own derived
        // state (e.g. packed weights) so kernels measure clean.
        auto t0 = Clock::now();
        params_.materialize(g_);
        backend_.prepare(g_, params_);
        profile_.planUs += elapsedUsSince(t0);
        warmedUp_ = true;
    }

    std::vector<std::vector<Tensor>> results(g_.size());
    for (size_t i = 0; i < gin.size(); ++i) {
        const Value &v = gin[i];
        if (inputs[i].shape() != g_.shapeOf(v))
            throw std::runtime_error(
                "ParallelExecutor: input " + std::to_string(i) + " shape " +
                inputs[i].shape().str() + " != declared " +
                g_.shapeOf(v).str());
        auto &slot = results[static_cast<size_t>(v.node)];
        if (slot.size() <= static_cast<size_t>(v.index))
            slot.resize(static_cast<size_t>(v.index) + 1);
        slot[static_cast<size_t>(v.index)] = inputs[i];
    }

    auto lookup = [&](const Value &v) -> const Tensor & {
        const auto &slot = results[static_cast<size_t>(v.node)];
        if (static_cast<size_t>(v.index) >= slot.size() ||
            !slot[static_cast<size_t>(v.index)].defined())
            throw std::runtime_error(
                "ParallelExecutor: missing input value from node " +
                std::to_string(v.node));
        return slot[static_cast<size_t>(v.index)];
    };

    std::vector<double> node_us(g_.size(), 0);
    double reset_baseline = 0;
    for (const ThreadPool::WorkerStats &ws : pool_.drainStats())
        reset_baseline += ws.busyUs;  // discard pre-run counters
    (void)reset_baseline;

    // Arena execution: bind every planned output of this run to its
    // offset inside one pooled block (per-request slot).
    std::unique_ptr<ArenaAllocator> arena_alloc;
    if (arena_)
        arena_alloc = std::make_unique<ArenaAllocator>(
            memplan_, arenaPool_.acquire());
    uint64_t allocs0 = Storage::heapAllocCount();
    uint64_t alloc_bytes0 = Storage::heapAllocBytes();

    // The pool's workers don't inherit this thread's trace id —
    // re-establish it inside each task so node spans stay tagged.
    uint64_t trace_id = obs::currentTraceId();

    // Bracket the run with cumulative aggregator snapshots: the
    // kernel-level CounterScopes (eval seam) accumulate on the pool's
    // workers, and the post-join difference is this run's aggregate.
    obs::PerfCounterStats perf0;
    if (obs::perfEnabled())
        perf0 = obs::PerfAggregator::instance().totals();

    // One node, either path. A null region keeps the kernel serial
    // (wide levels); a pool-backed region lends it the workers (deep
    // levels). Outputs are bit-identical either way.
    auto eval_one = [&](int node_id, const ParallelRegion *par) {
        const Node &n = g_.node(node_id);
        auto id = static_cast<size_t>(n.id);
        if (!results[id].empty() && results[id][0].defined())
            return;  // graph input, already bound
        auto k0 = Clock::now();
        if (n.inputs.empty()) {
            if (n.paramShapes.empty())
                throw std::runtime_error(
                    "ParallelExecutor: input node without a bound "
                    "tensor: " + n.name);
            results[id] = {params_.get(n, 0)};
        } else {
            ScratchScope scratch;  // node-lifetime temporaries
            results[id] = evalNode(n, lookup, params_, backend_,
                                   arena_alloc.get(), par);
        }
        node_us[id] = elapsedUsSince(k0);
    };

    profile_.levels.clear();
    auto wall0 = Clock::now();
    for (size_t lvl = 0; lvl < sched_.numLevels(); ++lvl) {
        const std::vector<int> &nodes = sched_.levels()[lvl];
        const bool deep = deepLevels_[lvl] != 0;
        obs::ScopedSpan level_span(obs::SpanKind::Level);
        level_span.ev().a0 = static_cast<int64_t>(lvl);
        level_span.ev().a1 = static_cast<int64_t>(nodes.size());
        level_span.ev().a2 = deep ? 1 : 0;
        // Attach-only (never aggregated): this is the dispatching
        // thread's view of the fork-join region, not the workers'.
        obs::CounterScope level_counters(
            level_span.armed() ? &level_span.ev() : nullptr);
        auto t0 = Clock::now();
        if (deep) {
            // Deep: nodes sequential on this thread, each GEMM
            // sharding macro-tiles across the whole pool.
            ParallelRegion region(&pool_);
            for (int node_id : nodes)
                eval_one(node_id, &region);
        } else {
            // Wide: one task per node, kernels serial.
            pool_.parallelFor(nodes.size(), [&](size_t i, int) {
                obs::TraceIdScope tid(trace_id);
                eval_one(nodes[i], nullptr);
            });
        }
        LevelTiming lt;
        lt.level = static_cast<int>(lvl);
        lt.nodes = nodes.size();
        lt.wallUs = elapsedUsSince(t0);
        lt.deep = deep;
        profile_.levels.push_back(lt);

        for (int id : releaseAfterLevel_[lvl])
            results[static_cast<size_t>(id)].clear();
    }
    profile_.wallUs = elapsedUsSince(wall0);

    profile_.perf = obs::PerfCounterStats{};
    if (obs::perfEnabled())
        profile_.perf = obs::PerfCounterStats::since(
            perf0, obs::PerfAggregator::instance().totals());

    profile_.threads = pool_.threads();
    profile_.intraop = intraOpModeName(intraop_);
    profile_.schedule = sched_.stats();
    profile_.sumUs = 0;
    profile_.usByCategory.clear();
    profile_.quant.int8GemmUs = 0;
    profile_.quant.floatGemmUs = 0;
    profile_.quant.qdqUs = 0;
    for (const Node &n : g_.nodes()) {
        double us = node_us[static_cast<size_t>(n.id)];
        profile_.sumUs += us;
        profile_.usByCategory[n.category()] += us;
        if (quant::isInt8GemmNode(n))
            profile_.quant.int8GemmUs += us;
        else if (n.category() == OpCategory::Gemm)
            profile_.quant.floatGemmUs += us;
        else if (quant::isQdqExecNode(n))
            profile_.quant.qdqUs += us;
    }
    profile_.threadBusyUs.clear();
    profile_.steals = 0;
    for (const ThreadPool::WorkerStats &ws : pool_.drainStats()) {
        profile_.threadBusyUs.push_back(ws.busyUs);
        profile_.steals += ws.steals;
    }

    profile_.memory = MemoryStats{};
    profile_.memory.arena = arena_;
    profile_.memory.plannedArenaBytes = memplan_.arenaBytes;
    profile_.memory.plannedTotalBytes = memplan_.totalBytes;
    profile_.memory.heapAllocs =
        static_cast<int64_t>(Storage::heapAllocCount() - allocs0);
    profile_.memory.heapAllocBytes =
        static_cast<int64_t>(Storage::heapAllocBytes() - alloc_bytes0);
    profile_.memory.scratchPeakBytes =
        ScratchArena::globalHighWaterBytes();
    profile_.memory.scratchWorkerSumBytes =
        ScratchArena::globalHighWaterSumBytes();
    if (arena_alloc) {
        profile_.memory.boundPeakBytes = arena_alloc->boundPeakBytes();
        profile_.memory.arenaTensors = arena_alloc->planned();
        profile_.memory.heapTensors = arena_alloc->fallbacks();
        profile_.memory.arenaBlocks =
            static_cast<int64_t>(arenaPool_.blocks());
    }

    std::vector<Tensor> outs;
    for (const Value &v : g_.graphOutputs())
        outs.push_back(lookup(v));
    return outs;
}

}  // namespace ngb
