#include "runtime/request_util.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

namespace ngb {

std::vector<Tensor>
makeRequestInputs(const Graph &g, uint64_t seed)
{
    std::vector<Tensor> inputs;
    for (const Value &v : g.graphInputs()) {
        if (g.dtypeOf(v) == DType::I32) {
            Tensor ids(g.shapeOf(v), DType::I32);
            // Unsigned modulo: ids stay in [0, 7) for any 64-bit seed
            // (a signed cast would go negative for seeds above 2^63).
            for (int64_t i = 0; i < ids.numel(); ++i)
                ids.flatSet(i, static_cast<float>(
                                   (static_cast<uint64_t>(i) + seed) % 7));
            inputs.push_back(ids);
        } else {
            inputs.push_back(Tensor::randn(g.shapeOf(v), seed, 0.5f));
        }
    }
    return inputs;
}

std::string
bitDifference(const std::vector<Tensor> &a, const std::vector<Tensor> &b)
{
    if (a.size() != b.size())
        return "output count differs: " + std::to_string(a.size()) +
               " vs " + std::to_string(b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        if (a[i].shape() != b[i].shape())
            return "output " + std::to_string(i) + " shape differs: " +
                   a[i].shape().str() + " vs " + b[i].shape().str();
        for (int64_t j = 0; j < a[i].numel(); ++j) {
            float x = a[i].flatAt(j), y = b[i].flatAt(j);
            uint32_t bx, by;
            std::memcpy(&bx, &x, 4);
            std::memcpy(&by, &y, 4);
            if (bx != by)
                return "output " + std::to_string(i) + " element " +
                       std::to_string(j) + " differs: " +
                       std::to_string(x) + " vs " + std::to_string(y);
        }
    }
    return "";
}

std::string
closeDifference(const std::vector<Tensor> &a, const std::vector<Tensor> &b,
                float rtol, float atol)
{
    if (a.size() != b.size())
        return "output count differs: " + std::to_string(a.size()) +
               " vs " + std::to_string(b.size());
    // Scan everything and report the WORST offender (largest error
    // relative to its tolerance), not the first: the first element
    // over the line is usually marginal rounding, while the worst one
    // points at the actual defect.
    double worst = 1.0;
    size_t worst_i = 0;
    int64_t worst_j = 0;
    float worst_x = 0, worst_y = 0;
    for (size_t i = 0; i < a.size(); ++i) {
        if (a[i].shape() != b[i].shape())
            return "output " + std::to_string(i) + " shape differs: " +
                   a[i].shape().str() + " vs " + b[i].shape().str();
        for (int64_t j = 0; j < a[i].numel(); ++j) {
            float x = a[i].flatAt(j), y = b[i].flatAt(j);
            double over;
            if (std::isnan(x) != std::isnan(y))
                over = std::numeric_limits<double>::infinity();
            else if (std::isnan(x))
                continue;
            else if (std::isinf(x) || std::isinf(y))
                // inf/inf would be NaN and slip past the comparison:
                // infinities only match the exact same infinity.
                over = x == y ? 0.0
                              : std::numeric_limits<double>::infinity();
            else
                over = std::abs(static_cast<double>(x) - y) /
                       (atol + rtol * std::abs(static_cast<double>(y)));
            if (over > worst) {
                worst = over;
                worst_i = i;
                worst_j = j;
                worst_x = x;
                worst_y = y;
            }
        }
    }
    if (worst <= 1.0)
        return "";
    return "output " + std::to_string(worst_i) + " element " +
           std::to_string(worst_j) + " differs beyond rtol=" +
           std::to_string(rtol) + " (worst, " + std::to_string(worst) +
           "x tolerance): " + std::to_string(worst_x) + " vs " +
           std::to_string(worst_y);
}

std::string
quantDifference(const std::vector<Tensor> &a, const std::vector<Tensor> &b,
                double maxRelL2)
{
    if (a.size() != b.size())
        return "output count differs: " + std::to_string(a.size()) +
               " vs " + std::to_string(b.size());
    double worst = 0;
    size_t worst_i = 0;
    for (size_t i = 0; i < a.size(); ++i) {
        if (a[i].shape() != b[i].shape())
            return "output " + std::to_string(i) + " shape differs: " +
                   a[i].shape().str() + " vs " + b[i].shape().str();
        if (a[i].dtype() != b[i].dtype())
            return "output " + std::to_string(i) + " dtype differs";
        if (a[i].dtype() != DType::F32) {
            // Integer outputs carry no quantization noise: exact.
            for (int64_t j = 0; j < a[i].numel(); ++j)
                if (a[i].flatAt(j) != b[i].flatAt(j))
                    return "output " + std::to_string(i) +
                           " (non-float) element " + std::to_string(j) +
                           " differs: " + std::to_string(a[i].flatAt(j)) +
                           " vs " + std::to_string(b[i].flatAt(j));
            continue;
        }
        double err2 = 0, ref2 = 0;
        for (int64_t j = 0; j < a[i].numel(); ++j) {
            double x = a[i].flatAt(j), y = b[i].flatAt(j);
            if (std::isnan(x) || std::isnan(y) || std::isinf(x) ||
                std::isinf(y)) {
                // Non-finite values must match bit-for-bit in kind.
                if (std::isnan(x) != std::isnan(y) || (!std::isnan(x) && x != y))
                    return "output " + std::to_string(i) + " element " +
                           std::to_string(j) + " non-finite mismatch: " +
                           std::to_string(x) + " vs " + std::to_string(y);
                continue;
            }
            err2 += (x - y) * (x - y);
            ref2 += y * y;
        }
        double rel = std::sqrt(err2) / std::max(std::sqrt(ref2), 1e-12);
        if (rel > worst) {
            worst = rel;
            worst_i = i;
        }
    }
    if (worst <= maxRelL2)
        return "";
    return "output " + std::to_string(worst_i) + " relative L2 error " +
           std::to_string(worst) + " exceeds quant tolerance " +
           std::to_string(maxRelL2);
}

}  // namespace ngb
