#include "runtime/request_util.h"

#include <cstring>

namespace ngb {

std::vector<Tensor>
makeRequestInputs(const Graph &g, uint64_t seed)
{
    std::vector<Tensor> inputs;
    for (const Value &v : g.graphInputs()) {
        if (g.dtypeOf(v) == DType::I32) {
            Tensor ids(g.shapeOf(v), DType::I32);
            // Unsigned modulo: ids stay in [0, 7) for any 64-bit seed
            // (a signed cast would go negative for seeds above 2^63).
            for (int64_t i = 0; i < ids.numel(); ++i)
                ids.flatSet(i, static_cast<float>(
                                   (static_cast<uint64_t>(i) + seed) % 7));
            inputs.push_back(ids);
        } else {
            inputs.push_back(Tensor::randn(g.shapeOf(v), seed, 0.5f));
        }
    }
    return inputs;
}

std::string
bitDifference(const std::vector<Tensor> &a, const std::vector<Tensor> &b)
{
    if (a.size() != b.size())
        return "output count differs: " + std::to_string(a.size()) +
               " vs " + std::to_string(b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        if (a[i].shape() != b[i].shape())
            return "output " + std::to_string(i) + " shape differs: " +
                   a[i].shape().str() + " vs " + b[i].shape().str();
        for (int64_t j = 0; j < a[i].numel(); ++j) {
            float x = a[i].flatAt(j), y = b[i].flatAt(j);
            uint32_t bx, by;
            std::memcpy(&bx, &x, 4);
            std::memcpy(&by, &y, 4);
            if (bx != by)
                return "output " + std::to_string(i) + " element " +
                       std::to_string(j) + " differs: " +
                       std::to_string(x) + " vs " + std::to_string(y);
        }
    }
    return "";
}

}  // namespace ngb
