#ifndef NGB_RUNTIME_PARALLEL_EXECUTOR_H
#define NGB_RUNTIME_PARALLEL_EXECUTOR_H

#include <vector>

#include "graph/executor.h"
#include "graph/node_eval.h"
#include "graph/schedule.h"
#include "runtime/arena.h"
#include "runtime/memory_planner.h"
#include "runtime/runtime_profile.h"
#include "runtime/thread_pool.h"

namespace ngb {

/**
 * Wavefront-parallel graph execution on a work-stealing thread pool.
 *
 * Dispatches each dependency level of a Schedule as one fork-join
 * region: all nodes of a level are independent by construction, so
 * they run concurrently and write disjoint result slots (no locking
 * on the hot path). Kernels come from the same pluggable Backend the
 * serial Executor dispatches through, with the same deterministic
 * ParamStore, so outputs are bit-identical to an Executor running the
 * same backend, regardless of thread count or interleaving.
 *
 * Between levels the executor releases tensors whose last consumer
 * level has passed (the lifetimes the MemoryPlanner computes), so
 * resident activation memory tracks the live set instead of the whole
 * graph.
 *
 * With @p arena enabled (default: $NGB_ARENA), the memory plan is
 * EXECUTED rather than advisory: every planned node output is bound
 * to its offset inside a pooled arena block, so a warmed-up run
 * performs zero tensor mallocs and zero memsets. Outputs are returned
 * as views into the block; the pool recycles a block automatically
 * once the caller drops them. Results are bit-identical either way.
 */
class ParallelExecutor
{
  public:
    /** Uses an internally built wavefront schedule for @p g. */
    ParallelExecutor(const Graph &g, ThreadPool &pool,
                     const Backend &backend = defaultBackend(),
                     bool arena = arenaEnabledByEnv());

    ParallelExecutor(const Graph &g, Schedule sched, ThreadPool &pool,
                     const Backend &backend = defaultBackend(),
                     bool arena = arenaEnabledByEnv());

    /** Run the graph; same contract as Executor::run. */
    std::vector<Tensor> run(const std::vector<Tensor> &inputs);

    /** Measured timings of the last run(). */
    const RuntimeProfile &profile() const { return profile_; }

    const Schedule &schedule() const { return sched_; }
    const MemoryPlan &memoryPlan() const { return memplan_; }
    ParamStore &params() { return params_; }
    const Backend &backend() const { return backend_; }
    bool arenaEnabled() const { return arena_; }

  private:
    const Graph &g_;
    Schedule sched_;
    ThreadPool &pool_;
    const Backend &backend_;
    MemoryPlan memplan_;
    ParamStore params_;
    bool arena_ = false;
    ArenaPool arenaPool_;
    bool warmedUp_ = false;

    /** Node ids whose results can be dropped after each level. */
    std::vector<std::vector<int>> releaseAfterLevel_;

    RuntimeProfile profile_;
};

}  // namespace ngb

#endif  // NGB_RUNTIME_PARALLEL_EXECUTOR_H
