#ifndef NGB_RUNTIME_PARALLEL_EXECUTOR_H
#define NGB_RUNTIME_PARALLEL_EXECUTOR_H

#include <vector>

#include "graph/executor.h"
#include "graph/node_eval.h"
#include "graph/schedule.h"
#include "runtime/arena.h"
#include "runtime/intraop.h"
#include "runtime/memory_planner.h"
#include "runtime/runtime_profile.h"
#include "runtime/thread_pool.h"

namespace ngb {

/**
 * Wavefront-parallel graph execution on a work-stealing thread pool.
 *
 * Dispatches each dependency level of a Schedule as one fork-join
 * region: all nodes of a level are independent by construction, so
 * they run concurrently and write disjoint result slots (no locking
 * on the hot path). Kernels come from the same pluggable Backend the
 * serial Executor dispatches through, with the same deterministic
 * ParamStore, so outputs are bit-identical to an Executor running the
 * same backend, regardless of thread count or interleaving.
 *
 * Between levels the executor releases tensors whose last consumer
 * level has passed (the lifetimes the MemoryPlanner computes), so
 * resident activation memory tracks the live set instead of the whole
 * graph.
 *
 * With @p arena enabled (default: $NGB_ARENA), the memory plan is
 * EXECUTED rather than advisory: every planned node output is bound
 * to its offset inside a pooled arena block, so a warmed-up run
 * performs zero tensor mallocs and zero memsets. Outputs are returned
 * as views into the block; the pool recycles a block automatically
 * once the caller drops them. Results are bit-identical either way.
 *
 * Hybrid inter/intra-op scheduling: each level is dispatched either
 * WIDE (the fork-join above — one task per node, kernels serial) or
 * DEEP (nodes run sequentially on the dispatching thread, each with a
 * full-pool ParallelRegion so its GEMMs shard macro-tiles across the
 * workers). Wide wins when the level itself carries enough nodes to
 * fill the pool; deep wins on narrow levels — the residual-stream
 * trunk of a transformer — where wavefront parallelism has nothing to
 * fork. IntraOpMode::Off pins every level wide (the pre-intra-op
 * shape), On goes deep whenever a level is narrower than the pool,
 * and Auto asks a per-level cost model (see deepLevels_ in the ctor).
 * The choice never affects results: kernels are bit-identical at any
 * thread count by the ParallelRegion determinism contract.
 */
class ParallelExecutor
{
  public:
    /** Uses an internally built wavefront schedule for @p g. */
    ParallelExecutor(const Graph &g, ThreadPool &pool,
                     const Backend &backend = defaultBackend(),
                     bool arena = arenaEnabledByEnv(),
                     IntraOpMode intraop = intraOpModeFromEnv());

    ParallelExecutor(const Graph &g, Schedule sched, ThreadPool &pool,
                     const Backend &backend = defaultBackend(),
                     bool arena = arenaEnabledByEnv(),
                     IntraOpMode intraop = intraOpModeFromEnv());

    /** Run the graph; same contract as Executor::run. */
    std::vector<Tensor> run(const std::vector<Tensor> &inputs);

    /** Measured timings of the last run(). */
    const RuntimeProfile &profile() const { return profile_; }

    const Schedule &schedule() const { return sched_; }
    const MemoryPlan &memoryPlan() const { return memplan_; }
    ParamStore &params() { return params_; }
    const Backend &backend() const { return backend_; }
    bool arenaEnabled() const { return arena_; }
    IntraOpMode intraOpMode() const { return intraop_; }

    /** Levels the hybrid scheduler resolved to deep (intra-op). */
    const std::vector<char> &deepLevels() const { return deepLevels_; }

  private:
    const Graph &g_;
    Schedule sched_;
    ThreadPool &pool_;
    const Backend &backend_;
    MemoryPlan memplan_;
    ParamStore params_;
    bool arena_ = false;
    IntraOpMode intraop_ = IntraOpMode::Auto;
    ArenaPool arenaPool_;
    bool warmedUp_ = false;

    /** Per-level wide/deep decision (static: graph costs + pool width). */
    std::vector<char> deepLevels_;

    /** Node ids whose results can be dropped after each level. */
    std::vector<std::vector<int>> releaseAfterLevel_;

    RuntimeProfile profile_;
};

}  // namespace ngb

#endif  // NGB_RUNTIME_PARALLEL_EXECUTOR_H
