#include "runtime/arena.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

namespace ngb {

bool
arenaEnabledByEnv()
{
    static const bool enabled = [] {
        const char *env = std::getenv("NGB_ARENA");
        return env && *env && std::string(env) != "0" &&
               std::string(env) != "off";
    }();
    return enabled;
}

std::shared_ptr<Storage>
ArenaPool::acquire()
{
    if (bytes_ <= 0)
        throw std::runtime_error("ArenaPool: not configured");
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &b : blocks_) {
        if (b.use_count() == 1) {
            // The dropping thread's final reference release is a
            // release operation on the control block; this fence
            // completes the happens-before edge so the old request's
            // writes to the block are visible before it is reused.
            std::atomic_thread_fence(std::memory_order_acquire);
            if (Storage::poisonEnabled())
                std::memset(b->raw(), Storage::kPoisonByte, b->bytes());
            return b;
        }
    }
    blocks_.push_back(std::make_shared<Storage>(
        static_cast<size_t>(bytes_), /*zero=*/false));
    return blocks_.back();
}

size_t
ArenaPool::blocks() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return blocks_.size();
}

ArenaAllocator::ArenaAllocator(const MemoryPlan &plan,
                               std::shared_ptr<Storage> block)
    : plan_(plan), block_(std::move(block))
{
}

Tensor
ArenaAllocator::allocate(const Node &n, size_t i)
{
    const TensorPlacement *p =
        block_ ? plan_.find({n.id, static_cast<int>(i)}) : nullptr;
    if (!p) {
        fallbacks_.fetch_add(1);
        return Tensor::empty(n.outShapes[i], n.outDtypes[i]);
    }
    DType dt = n.outDtypes[i];
    int64_t end = p->offset + p->bytes;
    if (end > static_cast<int64_t>(block_->bytes()))
        throw std::runtime_error("ArenaAllocator: placement beyond block");
    atomicStoreMax(bound_peak_, end);
    planned_.fetch_add(1);
    // Offsets are 64-byte aligned, so the element conversion is exact.
    return Tensor(block_, n.outShapes[i],
                  n.outShapes[i].contiguousStrides(),
                  p->offset / static_cast<int64_t>(dtypeSize(dt)), dt);
}

int64_t
ArenaAllocator::plannedOffset(const Node &n, size_t i) const
{
    const TensorPlacement *p =
        block_ ? plan_.find({n.id, static_cast<int>(i)}) : nullptr;
    return p ? p->offset : -1;
}

}  // namespace ngb
