#ifndef NGB_RUNTIME_REQUEST_UTIL_H
#define NGB_RUNTIME_REQUEST_UTIL_H

#include <string>
#include <vector>

#include "graph/graph.h"
#include "tensor/tensor.h"

namespace ngb {

/**
 * Deterministic inputs for one request against @p g: seeded Gaussian
 * activations for float inputs, small cycling token ids for I32
 * inputs. Shared by the CLI's --verify, the batch-scaling bench, and
 * the runtime tests so all three exercise identical traffic.
 */
std::vector<Tensor> makeRequestInputs(const Graph &g, uint64_t seed);

/**
 * Compare two output sets bit-for-bit (float payloads compared by bit
 * pattern, so NaN payloads and signed zeros must match too). Returns
 * an empty string when identical, else a description of the first
 * mismatch.
 */
std::string bitDifference(const std::vector<Tensor> &a,
                          const std::vector<Tensor> &b);

inline bool
bitIdentical(const std::vector<Tensor> &a, const std::vector<Tensor> &b)
{
    return bitDifference(a, b).empty();
}

}  // namespace ngb

#endif  // NGB_RUNTIME_REQUEST_UTIL_H
