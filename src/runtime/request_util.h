#ifndef NGB_RUNTIME_REQUEST_UTIL_H
#define NGB_RUNTIME_REQUEST_UTIL_H

#include <string>
#include <vector>

#include "graph/graph.h"
#include "tensor/tensor.h"

namespace ngb {

/**
 * Deterministic inputs for one request against @p g: seeded Gaussian
 * activations for float inputs, small cycling token ids for I32
 * inputs. Shared by the CLI's --verify, the batch-scaling bench, and
 * the runtime tests so all three exercise identical traffic.
 */
std::vector<Tensor> makeRequestInputs(const Graph &g, uint64_t seed);

/**
 * Compare two output sets bit-for-bit (float payloads compared by bit
 * pattern, so NaN payloads and signed zeros must match too). Returns
 * an empty string when identical, else a description of the first
 * mismatch.
 */
std::string bitDifference(const std::vector<Tensor> &a,
                          const std::vector<Tensor> &b);

inline bool
bitIdentical(const std::vector<Tensor> &a, const std::vector<Tensor> &b)
{
    return bitDifference(a, b).empty();
}

/**
 * Compare two output sets within float tolerance: every element must
 * satisfy |a - b| <= atol + rtol * |b| (numpy allclose semantics, b is
 * the reference). The cross-backend check: optimized kernels may
 * legally reassociate float accumulation, so their outputs match the
 * reference backend to tolerance rather than bit-for-bit. Returns an
 * empty string when close, else a description of the worst mismatch.
 */
std::string closeDifference(const std::vector<Tensor> &a,
                            const std::vector<Tensor> &b,
                            float rtol = 1e-3f, float atol = 1e-5f);

inline bool
allClose(const std::vector<Tensor> &a, const std::vector<Tensor> &b,
         float rtol = 1e-3f, float atol = 1e-5f)
{
    return closeDifference(a, b, rtol, atol).empty();
}

}  // namespace ngb

#endif  // NGB_RUNTIME_REQUEST_UTIL_H
