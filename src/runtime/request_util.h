#ifndef NGB_RUNTIME_REQUEST_UTIL_H
#define NGB_RUNTIME_REQUEST_UTIL_H

#include <string>
#include <vector>

#include "graph/graph.h"
#include "tensor/tensor.h"

namespace ngb {

/**
 * Deterministic inputs for one request against @p g: seeded Gaussian
 * activations for float inputs, small cycling token ids for I32
 * inputs. Shared by the CLI's --verify, the batch-scaling bench, and
 * the runtime tests so all three exercise identical traffic.
 */
std::vector<Tensor> makeRequestInputs(const Graph &g, uint64_t seed);

/**
 * Compare two output sets bit-for-bit (float payloads compared by bit
 * pattern, so NaN payloads and signed zeros must match too). Returns
 * an empty string when identical, else a description of the first
 * mismatch.
 */
std::string bitDifference(const std::vector<Tensor> &a,
                          const std::vector<Tensor> &b);

inline bool
bitIdentical(const std::vector<Tensor> &a, const std::vector<Tensor> &b)
{
    return bitDifference(a, b).empty();
}

/**
 * Compare two output sets within float tolerance: every element must
 * satisfy |a - b| <= atol + rtol * |b| (numpy allclose semantics, b is
 * the reference). The cross-backend check: optimized kernels may
 * legally reassociate float accumulation, so their outputs match the
 * reference backend to tolerance rather than bit-for-bit. Returns an
 * empty string when close, else a description of the worst mismatch.
 */
std::string closeDifference(const std::vector<Tensor> &a,
                            const std::vector<Tensor> &b,
                            float rtol = 1e-3f, float atol = 1e-5f);

inline bool
allClose(const std::vector<Tensor> &a, const std::vector<Tensor> &b,
         float rtol = 1e-3f, float atol = 1e-5f)
{
    return closeDifference(a, b, rtol, atol).empty();
}

/**
 * Compare a quantized run @p a against its float baseline @p b by
 * relative L2 error per output tensor: ||a - b|| / max(||b||, eps)
 * must stay below @p maxRelL2. Element-wise tolerances are the wrong
 * yardstick for int8 — quantization error is a dense, small, roughly
 * uniform perturbation, so individual near-zero elements legitimately
 * move by many times their own magnitude while the tensor as a whole
 * stays close. Non-F32 outputs (token ids) must still match exactly.
 * Returns an empty string when within tolerance, else a description
 * of the worst output.
 */
std::string quantDifference(const std::vector<Tensor> &a,
                            const std::vector<Tensor> &b,
                            double maxRelL2 = 0.12);

inline bool
quantClose(const std::vector<Tensor> &a, const std::vector<Tensor> &b,
           double maxRelL2 = 0.12)
{
    return quantDifference(a, b, maxRelL2).empty();
}

}  // namespace ngb

#endif  // NGB_RUNTIME_REQUEST_UTIL_H
