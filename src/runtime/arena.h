#ifndef NGB_RUNTIME_ARENA_H
#define NGB_RUNTIME_ARENA_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "ops/allocator.h"
#include "runtime/memory_planner.h"

/**
 * @file
 * Executable memory planning: the runtime-side allocator that turns a
 * MemoryPlan from decorative (release scheduling only) into the actual
 * owner of every intermediate byte.
 *
 * An ArenaAllocator binds one request's node outputs to their planned
 * offsets inside one arena block (a single Storage of plan.arenaBytes).
 * Blocks come from an ArenaPool that recycles them across requests:
 * a block is free again once nothing references it — callers simply
 * drop their output tensors, no explicit release call — so a
 * steady-state serving loop reuses a fixed set of blocks and performs
 * zero tensor mallocs.
 */

namespace ngb {

/** True when $NGB_ARENA enables arena-backed execution process-wide. */
bool arenaEnabledByEnv();

/**
 * Pool of interchangeable arena blocks, one in use per in-flight
 * request. acquire() hands back a block no live tensor references
 * (use_count == 1 means the pool holds the only reference; new
 * references are only minted through the pool, so the check cannot
 * race) or grows the pool by one block. Thread-safe.
 */
class ArenaPool
{
  public:
    ArenaPool() = default;

    /** Set the block size; must be called before acquire(). */
    void configure(int64_t bytes) { bytes_ = bytes; }

    int64_t blockBytes() const { return bytes_; }

    /**
     * A block with no outstanding references, allocating only when
     * every pooled block is still referenced by in-flight outputs.
     * Under $NGB_POISON each acquisition repoisons the block, so a
     * kernel reading a previous request's leftovers is caught.
     */
    std::shared_ptr<Storage> acquire();

    /** Blocks ever created (== peak concurrent block demand). */
    size_t blocks() const;

  private:
    mutable std::mutex mutex_;
    std::vector<std::shared_ptr<Storage>> blocks_;
    int64_t bytes_ = 0;
};

/**
 * Allocator binding one request's planned node outputs to their
 * MemoryPlan offsets inside one arena block. Unplanned values (and
 * anything when the plan reserved no bytes) fall back to the heap and
 * are counted. Stats use atomics: wavefront levels allocate from
 * many worker threads concurrently.
 */
class ArenaAllocator final : public Allocator
{
  public:
    ArenaAllocator(const MemoryPlan &plan, std::shared_ptr<Storage> block);

    Tensor allocate(const Node &n, size_t i) override;

    int64_t plannedOffset(const Node &n, size_t i) const override;

    const char *name() const override { return "arena"; }

    /** Outputs served at their planned arena offsets. */
    int64_t planned() const { return planned_.load(); }
    /** Outputs that fell back to the heap (unplanned values). */
    int64_t fallbacks() const { return fallbacks_.load(); }
    /** Highest arena byte actually bound (measured peak footprint). */
    int64_t boundPeakBytes() const { return bound_peak_.load(); }

  private:
    const MemoryPlan &plan_;
    std::shared_ptr<Storage> block_;
    std::atomic<int64_t> planned_{0};
    std::atomic<int64_t> fallbacks_{0};
    std::atomic<int64_t> bound_peak_{0};
};

}  // namespace ngb

#endif  // NGB_RUNTIME_ARENA_H
