#ifndef NGB_RUNTIME_BATCH_DRIVER_H
#define NGB_RUNTIME_BATCH_DRIVER_H

#include <memory>
#include <vector>

#include "graph/executor.h"
#include "graph/node_eval.h"
#include "graph/schedule.h"
#include "runtime/arena.h"
#include "runtime/intraop.h"
#include "runtime/memory_planner.h"
#include "runtime/runtime_profile.h"
#include "runtime/thread_pool.h"

namespace ngb {

/**
 * The planning artifacts of one graph, built once and reused for the
 * lifetime of an engine: wavefront schedule, arena/lifetime memory
 * plan, step-granular release lists, and the fully materialized
 * (read-only thereafter) ParamStore.
 *
 * Splitting this out of BatchDriver lets the serving layer's Engine
 * own the expensive state and re-run traffic through a long-lived
 * driver without ever replanning; ParamStore holds a mutex, so the
 * struct is non-movable and is passed by shared_ptr.
 */
struct EnginePlan {
    Schedule sched;
    MemoryPlan memplan;
    ParamStore params{0x5eed};

    /** Node ids droppable after each position in schedule order. */
    std::vector<std::vector<int>> releaseAfterStep;

    /**
     * Arena blocks for arena-enabled drivers of this plan, one per
     * in-flight request slot, recycled across requests (and across
     * every driver/engine sharing the plan) as callers drop outputs.
     */
    ArenaPool arenas;

    double planUs = 0;  ///< wall time spent planning + materializing
};

/** Build (and time) the full plan for @p g. */
std::shared_ptr<EnginePlan> buildEnginePlan(const Graph &g);

/**
 * Serving-style driver: run N independent requests through ONE
 * planned graph.
 *
 * Planning work — wavefront schedule, arena/lifetime memory plan,
 * deterministic parameter materialization — happens once per plan
 * and is amortized over every request, the way a serving stack builds
 * an engine once and then streams traffic through it. Requests are
 * then dispatched across the work-stealing pool; each request
 * executes in schedule order with eager lifetime-based tensor release
 * and all requests share the read-only ParamStore.
 *
 * run() is cheap to call repeatedly on a long-lived driver (no
 * per-call planning); it is not itself thread-safe — the serving
 * layer serializes batches through one dispatch thread.
 *
 * Parameters are identical per request (same ParamStore seed the
 * serial Executor uses), so request i's outputs are bit-identical to
 * `Executor(g).run(requests[i])` for every i, independent of thread
 * count, batch size, or scheduling order.
 *
 * Hybrid scheduling: a batch of many requests saturates the pool with
 * inter-request parallelism, so kernels stay serial. A batch of ONE
 * request (the latency-bound serving case) leaves every worker idle —
 * with intra-op enabled (IntraOpMode::On / Auto) it runs on the
 * calling thread with a full-pool ParallelRegion instead, so its
 * GEMMs shard across the workers. Outputs are bit-identical either
 * way (the ParallelRegion determinism contract).
 */
class BatchDriver
{
  public:
    /** Plan internally (schedule + arena + params) for @p g. */
    BatchDriver(const Graph &g, ThreadPool &pool,
                const Backend &backend = defaultBackend(),
                bool arena = arenaEnabledByEnv(),
                IntraOpMode intraop = intraOpModeFromEnv());

    /** Adopt an already-built @p plan for @p g (must match). */
    BatchDriver(const Graph &g, ThreadPool &pool,
                std::shared_ptr<EnginePlan> plan,
                const Backend &backend = defaultBackend(),
                bool arena = arenaEnabledByEnv(),
                IntraOpMode intraop = intraOpModeFromEnv());

    /**
     * Execute every request (one vector of graph-input tensors each)
     * and return per-request graph outputs, in request order.
     *
     * Arena mode: each request's outputs are VIEWS into that
     * request's pooled arena block, so retaining them pins the whole
     * block (plan.arenaBytes — the request's full intermediate
     * footprint, not just the output bytes) until they are dropped.
     * Callers that keep outputs long-term should clone() them out,
     * the way the serve driver's collection sink does; callers that
     * consume and drop them (the steady-state serving loop) recycle
     * blocks automatically and allocate nothing.
     *
     * @p traceIds (optional, parallel to @p requests) tags each
     * request's measured spans — the whole schedule walk down to
     * per-node kernel evaluation — with the serving layer's
     * per-request trace id, so an exported trace reassembles batches
     * back into requests. Untagged requests record with id 0.
     */
    std::vector<std::vector<Tensor>>
    run(const std::vector<std::vector<Tensor>> &requests,
        const std::vector<uint64_t> *traceIds = nullptr);

    /** Measured timings of the last run(). */
    const RuntimeProfile &profile() const { return profile_; }

    const EnginePlan &plan() const { return *plan_; }
    const Schedule &schedule() const { return plan_->sched; }
    const MemoryPlan &memoryPlan() const { return plan_->memplan; }
    ParamStore &params() { return plan_->params; }
    const Backend &backend() const { return backend_; }
    bool arenaEnabled() const { return arena_; }
    IntraOpMode intraOpMode() const { return intraop_; }

  private:
    struct RequestMemory {
        int64_t boundPeakBytes = 0;
        int64_t arenaTensors = 0;
        int64_t heapTensors = 0;
    };

    std::vector<Tensor> runOne(const std::vector<Tensor> &inputs,
                               std::vector<double> &node_us,
                               RequestMemory &mem,
                               const ParallelRegion *par = nullptr);

    const Graph &g_;
    ThreadPool &pool_;
    std::shared_ptr<EnginePlan> plan_;
    const Backend &backend_;
    bool arena_ = false;
    IntraOpMode intraop_ = IntraOpMode::Auto;

    RuntimeProfile profile_;
};

}  // namespace ngb

#endif  // NGB_RUNTIME_BATCH_DRIVER_H
