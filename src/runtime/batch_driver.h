#ifndef NGB_RUNTIME_BATCH_DRIVER_H
#define NGB_RUNTIME_BATCH_DRIVER_H

#include <vector>

#include "graph/executor.h"
#include "graph/node_eval.h"
#include "graph/schedule.h"
#include "runtime/memory_planner.h"
#include "runtime/runtime_profile.h"
#include "runtime/thread_pool.h"

namespace ngb {

/**
 * Serving-style driver: run N independent requests through ONE
 * planned graph.
 *
 * Planning work — wavefront schedule, arena/lifetime memory plan,
 * deterministic parameter materialization — happens once per driver
 * and is amortized over every request, the way a serving stack builds
 * an engine once and then streams traffic through it. Requests are
 * then dispatched across the work-stealing pool; each request
 * executes in schedule order with eager lifetime-based tensor release
 * and all requests share the read-only ParamStore.
 *
 * Parameters are identical per request (same ParamStore seed the
 * serial Executor uses), so request i's outputs are bit-identical to
 * `Executor(g).run(requests[i])` for every i, independent of thread
 * count, batch size, or scheduling order.
 */
class BatchDriver
{
  public:
    BatchDriver(const Graph &g, ThreadPool &pool);

    /**
     * Execute every request (one vector of graph-input tensors each)
     * and return per-request graph outputs, in request order.
     */
    std::vector<std::vector<Tensor>>
    run(const std::vector<std::vector<Tensor>> &requests);

    /** Measured timings of the last run(). */
    const RuntimeProfile &profile() const { return profile_; }

    const Schedule &schedule() const { return sched_; }
    const MemoryPlan &memoryPlan() const { return memplan_; }
    ParamStore &params() { return params_; }

  private:
    std::vector<Tensor> runOne(const std::vector<Tensor> &inputs,
                               std::vector<double> &node_us);

    const Graph &g_;
    ThreadPool &pool_;
    Schedule sched_;
    MemoryPlan memplan_;
    ParamStore params_;

    /** Node ids droppable after each position in schedule order. */
    std::vector<std::vector<int>> releaseAfterStep_;

    RuntimeProfile profile_;
};

}  // namespace ngb

#endif  // NGB_RUNTIME_BATCH_DRIVER_H
