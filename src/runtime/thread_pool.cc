#include "runtime/thread_pool.h"

#include "obs/trace.h"
#include "runtime/runtime_profile.h"

namespace ngb {

namespace {

/**
 * Nesting detection is thread-local rather than per-pool: a task is a
 * task no matter which pool dealt it, and an intra-op region must
 * degrade to inline execution even if it targets a different pool
 * than the one whose task is running (oversubscription is about the
 * thread, not the pool).
 */
thread_local int t_taskDepth = 0;
thread_local int t_workerId = -1;

/** RAII "this thread is executing task work for worker @p id". */
struct TaskScope {
    explicit TaskScope(int id) : saved(t_workerId)
    {
        t_workerId = id;
        ++t_taskDepth;
    }
    ~TaskScope()
    {
        --t_taskDepth;
        t_workerId = saved;
    }
    int saved;
};

}  // namespace

bool
ThreadPool::inTask()
{
    return t_taskDepth > 0;
}

int
ThreadPool::currentWorker()
{
    return t_workerId;
}

int
resolveThreads(int requested)
{
    if (requested > 0)
        return requested;
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

ThreadPool::ThreadPool(int threads)
{
    threads = resolveThreads(threads);
    queues_.reserve(static_cast<size_t>(threads));
    for (int i = 0; i < threads; ++i)
        queues_.push_back(std::make_unique<Queue>());
    // Worker 0 is the calling thread; spawn the rest.
    workers_.reserve(static_cast<size_t>(threads - 1));
    for (int i = 1; i < threads; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(wakeMutex_);
        stop_ = true;
    }
    wakeCv_.notify_all();
    for (std::thread &t : workers_)
        t.join();
}

void
ThreadPool::workerLoop(int id)
{
    obs::Tracer::instance().setThreadName("worker-" +
                                          std::to_string(id));
    uint64_t seen = 0;
    while (true) {
        {
            std::unique_lock<std::mutex> lock(wakeMutex_);
            wakeCv_.wait(lock, [&] {
                return stop_ || epoch_.load(std::memory_order_acquire) != seen;
            });
            if (stop_)
                return;
            seen = epoch_.load(std::memory_order_acquire);
        }
        workUntilDrained(id);
    }
}

bool
ThreadPool::popTask(int id, size_t &task, bool &stolen)
{
    // Own queue first (front: locality), then steal from the back of
    // the others, scanning ring-wise from our right neighbour.
    {
        Queue &q = *queues_[static_cast<size_t>(id)];
        std::lock_guard<std::mutex> lock(q.mutex);
        if (!q.tasks.empty()) {
            task = q.tasks.front();
            q.tasks.pop_front();
            stolen = false;
            return true;
        }
    }
    int n = threads();
    for (int d = 1; d < n; ++d) {
        Queue &q = *queues_[static_cast<size_t>((id + d) % n)];
        std::lock_guard<std::mutex> lock(q.mutex);
        if (!q.tasks.empty()) {
            task = q.tasks.back();
            q.tasks.pop_back();
            stolen = true;
            return true;
        }
    }
    return false;
}

void
ThreadPool::workUntilDrained(int id)
{
    Queue &own = *queues_[static_cast<size_t>(id)];
    while (remaining_.load(std::memory_order_acquire) > 0) {
        size_t task;
        bool stolen = false;
        if (!popTask(id, task, stolen))
            return;  // stragglers are being finished by their owners
        auto t0 = std::chrono::steady_clock::now();
        try {
            TaskScope scope(id);
            (*fn_)(task, id);
        } catch (...) {
            std::lock_guard<std::mutex> lock(errorMutex_);
            if (!error_)
                error_ = std::current_exception();
        }
        {
            std::lock_guard<std::mutex> lock(own.mutex);
            own.stats.busyUs += elapsedUsSince(t0);
            ++own.stats.tasks;
            own.stats.steals += stolen;
        }
        if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
            std::lock_guard<std::mutex> lock(doneMutex_);
            doneCv_.notify_all();
        }
    }
}

void
ThreadPool::parallelFor(size_t n, const std::function<void(size_t, int)> &fn)
{
    if (n == 0)
        return;
    if (t_taskDepth > 0) {
        // Nested region: this thread is already executing a pool task
        // (its region's fn_/remaining_ are live, and blocking here
        // would deadlock a same-pool join). Run the iterations inline
        // on the enclosing task's worker slot — no stats, since the
        // enclosing task's busy timer is already running.
        int id = t_workerId >= 0 ? t_workerId : 0;
        for (size_t i = 0; i < n; ++i)
            fn(i, id);
        return;
    }
    int workers = threads();
    if (workers == 1 || n == 1) {
        // Serial fast path on the calling thread.
        Queue &own = *queues_[0];
        for (size_t i = 0; i < n; ++i) {
            auto t0 = std::chrono::steady_clock::now();
            {
                TaskScope scope(0);
                fn(i, 0);
            }
            own.stats.busyUs += elapsedUsSince(t0);
            ++own.stats.tasks;
        }
        return;
    }

    fn_ = &fn;
    // Deal tasks round-robin so each worker starts with a local run of
    // indices; stealing rebalances the tail.
    for (int w = 0; w < workers; ++w) {
        Queue &q = *queues_[static_cast<size_t>(w)];
        std::lock_guard<std::mutex> lock(q.mutex);
        for (size_t i = static_cast<size_t>(w); i < n;
             i += static_cast<size_t>(workers))
            q.tasks.push_back(i);
    }
    remaining_.store(n, std::memory_order_release);
    {
        std::lock_guard<std::mutex> lock(wakeMutex_);
        epoch_.fetch_add(1, std::memory_order_acq_rel);
    }
    wakeCv_.notify_all();

    workUntilDrained(0);
    {
        std::unique_lock<std::mutex> lock(doneMutex_);
        doneCv_.wait(lock, [&] {
            return remaining_.load(std::memory_order_acquire) == 0;
        });
    }
    fn_ = nullptr;

    std::exception_ptr err;
    {
        std::lock_guard<std::mutex> lock(errorMutex_);
        err = error_;
        error_ = nullptr;
    }
    if (err)
        std::rethrow_exception(err);
}

std::vector<ThreadPool::WorkerStats>
ThreadPool::drainStats()
{
    std::vector<WorkerStats> out;
    out.reserve(queues_.size());
    for (auto &qp : queues_) {
        std::lock_guard<std::mutex> lock(qp->mutex);
        out.push_back(qp->stats);
        qp->stats = WorkerStats();
    }
    return out;
}

}  // namespace ngb
