#ifndef NGB_RUNTIME_RUNTIME_PROFILE_H
#define NGB_RUNTIME_RUNTIME_PROFILE_H

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "graph/schedule.h"
#include "obs/perf.h"
#include "ops/op_types.h"
#include "quant/quant_mode.h"

namespace ngb {

/** Microseconds elapsed since @p t0 (shared by the runtime timers). */
inline double
elapsedUsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** Wall-clock of one dispatched wavefront level. */
struct LevelTiming {
    int level = 0;
    size_t nodes = 0;
    double wallUs = 0;

    /** Hybrid scheduling: true when the level ran DEEP (nodes
     *  sequential, each GEMM sharded across the pool) rather than
     *  WIDE (one task per node, kernels serial). */
    bool deep = false;
};

/**
 * Measured memory behaviour of one runtime execution: what the plan
 * promised vs what the allocator actually did. heapAllocs counts
 * Storage heap allocations during the measured run (process-global
 * counters, so concurrent unrelated executors add noise — the
 * allocation-regression tests run one driver at a time).
 */
struct MemoryStats {
    bool arena = false;             ///< outputs bound to planned arenas
    int64_t plannedArenaBytes = 0;  ///< MemoryPlan::arenaBytes
    int64_t plannedTotalBytes = 0;  ///< no-reuse footprint
    int64_t boundPeakBytes = 0;     ///< measured max bound arena extent
    int64_t arenaTensors = 0;       ///< outputs served at planned offsets
    int64_t heapTensors = 0;        ///< outputs that fell back to heap
    int64_t heapAllocs = 0;         ///< Storage heap allocs during run
    int64_t heapAllocBytes = 0;     ///< bytes of those allocations
    int64_t arenaBlocks = 0;        ///< pool blocks backing the run

    /**
     * Kernel-temporary high water across all threads SINCE PROCESS
     * START (scratch arenas are monotone per thread, so this is a
     * process-lifetime gauge, not a per-run delta — an earlier run of
     * a bigger model raises it for every later profile).
     */
    int64_t scratchPeakBytes = 0;

    /**
     * Sum of per-worker scratch high waters (same process-lifetime
     * gauge) — the aggregate resident cost of intra-op sharding's
     * per-worker pack panels: every pool worker's arena peaks
     * independently, so the footprint is the sum, not the max.
     */
    int64_t scratchWorkerSumBytes = 0;

    /** Planned-vs-measured arena utilization (1.0 = fully exercised). */
    double utilization() const
    {
        return plannedArenaBytes > 0
                   ? static_cast<double>(boundPeakBytes) /
                         static_cast<double>(plannedArenaBytes)
                   : 0.0;
    }

    double allocsPerRequest(int requests) const
    {
        return requests > 0 ? static_cast<double>(heapAllocs) /
                                  static_cast<double>(requests)
                            : static_cast<double>(heapAllocs);
    }
};

/**
 * Measured (wall-clock) profile of one parallel-runtime execution —
 * the host-side counterpart of the cost-model ProfileReport. Unlike
 * the modeled numbers, these come from std::chrono around the actual
 * reference kernels, so they feed the profiler's runtime report and a
 * measured GEMM / non-GEMM split.
 */
struct RuntimeProfile {
    int threads = 1;
    int requests = 1;

    /** Kernel backend the measurement was taken under. */
    std::string backend = "reference";

    /** Intra-op mode the run executed under ("off" / "on" / "auto"). */
    std::string intraop = "off";

    /** True when the executed graph contained applyFusion's Fused
     *  groups (set automatically by the runtime drivers). */
    bool fused = false;

    double planUs = 0;     ///< schedule + memory plan + param warm-up
    double wallUs = 0;     ///< fork-join wall time of execution
    double sumUs = 0;      ///< total kernel time across all workers

    ScheduleStats schedule;
    std::vector<LevelTiming> levels;     ///< per-level wall (wavefront)
    std::vector<double> threadBusyUs;    ///< per-worker busy time
    int64_t steals = 0;                  ///< work-stealing migrations

    /** Planned-vs-measured memory behaviour of the run. */
    MemoryStats memory;

    /** Measured kernel time by operator category. */
    std::map<OpCategory, double> usByCategory;

    /**
     * Executable-quantization census and int8-vs-float kernel-time
     * attribution (quant.quantized false on float graphs; the drivers
     * fill the census at plan time and the timers during execution).
     */
    quant::QuantExecStats quant;

    /**
     * Hardware-counter aggregate of the run (perf.enabled false when
     * --perf was off; perf.measured false on hosts without
     * perf_event_open access, where only scope counts are real).
     */
    obs::PerfCounterStats perf;

    /**
     * Cost-model resource demand of ONE request through the graph
     * (sum of OpCost over nodes) — the deterministic numerator the
     * roofline divides by measured wall time.
     */
    double modelFlops = 0;
    double modelBytes = 0;

    /** Measured FLOP/s: modeled FLOPs over measured wall time. */
    double measuredFlopsPerSec() const
    {
        return wallUs > 0 ? modelFlops * requests / (wallUs * 1e-6) : 0;
    }

    /** Measured DRAM-bandwidth proxy: LLC-miss lines over wall time. */
    double measuredBandwidthProxy() const
    {
        return wallUs > 0
                   ? perf.total.bytesMovedEstimate() / (wallUs * 1e-6)
                   : 0;
    }

    /** FLOPs per byte actually moved (measured denominator). */
    double measuredArithmeticIntensity() const
    {
        double bytes = perf.total.bytesMovedEstimate();
        return bytes > 0 ? modelFlops * requests / bytes : 0;
    }

    /** Levels the hybrid scheduler ran deep in the last execution. */
    int deepLevelCount() const
    {
        int n = 0;
        for (const LevelTiming &lt : levels)
            n += lt.deep ? 1 : 0;
        return n;
    }

    double gemmUs() const
    {
        auto it = usByCategory.find(OpCategory::Gemm);
        return it != usByCategory.end() ? it->second : 0;
    }
    double nonGemmUs() const { return sumUs - gemmUs(); }
    double nonGemmPct() const
    {
        return sumUs > 0 ? 100.0 * nonGemmUs() / sumUs : 0;
    }

    /**
     * Average number of workers concurrently inside kernels
     * (worker-seconds of kernel time per wall-second). On dedicated
     * cores this equals the speedup over a serial replay; under core
     * oversubscription it reports achieved occupancy instead — kernel
     * time inflates with time-slicing, wall does not shrink.
     */
    double concurrency() const { return wallUs > 0 ? sumUs / wallUs : 1.0; }

    /** Fraction of the worker-seconds actually spent in kernels. */
    double utilization() const
    {
        return wallUs > 0 && threads > 0
                   ? sumUs / (wallUs * static_cast<double>(threads))
                   : 1.0;
    }
};

}  // namespace ngb

#endif  // NGB_RUNTIME_RUNTIME_PROFILE_H
