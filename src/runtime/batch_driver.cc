#include "runtime/batch_driver.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <stdexcept>

#include "obs/perf.h"
#include "obs/trace.h"
#include "tensor/scratch.h"

namespace ngb {

namespace {

using Clock = std::chrono::steady_clock;

}  // namespace

std::shared_ptr<EnginePlan>
buildEnginePlan(const Graph &g)
{
    obs::ScopedSpan span(obs::SpanKind::Plan);
    span.ev().setLabel(g.name());
    span.ev().a0 = static_cast<int64_t>(g.size());

    auto plan = std::make_shared<EnginePlan>();
    auto t0 = Clock::now();
    plan->sched = Schedule::wavefront(g);
    plan->memplan = planMemory(g, plan->sched);

    // Step-granular release for the serial per-request walk: a node's
    // results drop right after the last schedule step that reads them.
    const std::vector<int> &order = plan->sched.order();
    std::vector<int> step_of(g.size(), 0);
    for (size_t s = 0; s < order.size(); ++s)
        step_of[static_cast<size_t>(order[s])] = static_cast<int>(s);

    std::vector<int> last_step(g.size(), -1);
    for (const Node &n : g.nodes())
        for (const Value &v : n.inputs)
            last_step[static_cast<size_t>(v.node)] =
                std::max(last_step[static_cast<size_t>(v.node)],
                         step_of[static_cast<size_t>(n.id)]);
    int end = static_cast<int>(order.size()) - 1;
    for (const Value &v : g.graphOutputs())
        last_step[static_cast<size_t>(v.node)] = end + 1;  // never drop
    for (const Value &v : g.graphInputs())
        last_step[static_cast<size_t>(v.node)] = end + 1;  // caller-owned

    plan->releaseAfterStep.resize(order.size());
    for (size_t id = 0; id < last_step.size(); ++id)
        if (last_step[id] >= 0 && last_step[id] <= end)
            plan->releaseAfterStep[static_cast<size_t>(last_step[id])]
                .push_back(static_cast<int>(id));

    plan->params.materialize(g);
    plan->arenas.configure(plan->memplan.arenaBytes);
    plan->planUs = elapsedUsSince(t0);
    span.ev().a1 = plan->memplan.arenaBytes;
    return plan;
}

BatchDriver::BatchDriver(const Graph &g, ThreadPool &pool,
                         const Backend &backend, bool arena,
                         IntraOpMode intraop)
    : BatchDriver(g, pool, buildEnginePlan(g), backend, arena, intraop)
{
}

BatchDriver::BatchDriver(const Graph &g, ThreadPool &pool,
                         std::shared_ptr<EnginePlan> plan,
                         const Backend &backend, bool arena,
                         IntraOpMode intraop)
    : g_(g), pool_(pool), plan_(std::move(plan)), backend_(backend),
      arena_(arena), intraop_(intraop)
{
    if (!plan_)
        throw std::runtime_error("BatchDriver: null EnginePlan");
    arena_ = arena_ && plan_->memplan.arenaBytes > 0;
    // Backend warm-up (e.g. packed Linear weights) happens here, with
    // planning, so request timings never include first-touch
    // preprocessing. Idempotent on a shared plan: derived state is
    // memoized in the plan's ParamStore.
    auto t0 = Clock::now();
    backend_.prepare(g_, plan_->params);
    profile_.planUs = plan_->planUs + elapsedUsSince(t0);
    profile_.backend = backend_.name();
    profile_.fused = g_.hasFusedNodes();
    profile_.quant = quant::quantExecStatsOf(g_);
    for (const Node &n : g_.nodes()) {
        profile_.modelFlops += n.cost.flops;
        profile_.modelBytes += n.cost.totalBytes();
    }
}

std::vector<Tensor>
BatchDriver::runOne(const std::vector<Tensor> &inputs,
                    std::vector<double> &node_us, RequestMemory &mem,
                    const ParallelRegion *par)
{
    const auto &gin = g_.graphInputs();
    if (inputs.size() != gin.size())
        throw std::runtime_error("BatchDriver: expected " +
                                 std::to_string(gin.size()) +
                                 " inputs per request");

    std::vector<std::vector<Tensor>> results(g_.size());
    for (size_t i = 0; i < gin.size(); ++i) {
        const Value &v = gin[i];
        if (inputs[i].shape() != g_.shapeOf(v))
            throw std::runtime_error(
                "BatchDriver: input " + std::to_string(i) + " shape " +
                inputs[i].shape().str() + " != declared " +
                g_.shapeOf(v).str());
        auto &slot = results[static_cast<size_t>(v.node)];
        if (slot.size() <= static_cast<size_t>(v.index))
            slot.resize(static_cast<size_t>(v.index) + 1);
        slot[static_cast<size_t>(v.index)] = inputs[i];
    }

    auto lookup = [&](const Value &v) -> const Tensor & {
        const auto &slot = results[static_cast<size_t>(v.node)];
        if (static_cast<size_t>(v.index) >= slot.size() ||
            !slot[static_cast<size_t>(v.index)].defined())
            throw std::runtime_error(
                "BatchDriver: missing input value from node " +
                std::to_string(v.node));
        return slot[static_cast<size_t>(v.index)];
    };

    // ParamStore::get is safe concurrently and, after materialize(),
    // lock-held time is one map lookup.
    ParamStore &params = plan_->params;

    // One pooled arena block per in-flight request: planned node
    // outputs land at their planned offsets, zero mallocs steady
    // state. The block recycles once the caller drops the outputs.
    std::unique_ptr<ArenaAllocator> arena_alloc;
    if (arena_)
        arena_alloc = std::make_unique<ArenaAllocator>(
            plan_->memplan, plan_->arenas.acquire());

    const std::vector<int> &order = plan_->sched.order();
    for (size_t step = 0; step < order.size(); ++step) {
        const Node &n = g_.node(order[step]);
        auto id = static_cast<size_t>(n.id);
        if (results[id].empty() || !results[id][0].defined()) {
            auto k0 = Clock::now();
            if (n.inputs.empty()) {
                if (n.paramShapes.empty())
                    throw std::runtime_error(
                        "BatchDriver: input node without a bound tensor: " +
                        n.name);
                results[id] = {params.get(n, 0)};
            } else {
                ScratchScope scratch;  // node-lifetime temporaries
                results[id] = evalNode(n, lookup, params, backend_,
                                       arena_alloc.get(), par);
            }
            node_us[id] += elapsedUsSince(k0);
        }
        for (int rid : plan_->releaseAfterStep[step])
            results[static_cast<size_t>(rid)].clear();
    }

    if (arena_alloc) {
        mem.boundPeakBytes = arena_alloc->boundPeakBytes();
        mem.arenaTensors = arena_alloc->planned();
        mem.heapTensors = arena_alloc->fallbacks();
    }

    std::vector<Tensor> outs;
    for (const Value &v : g_.graphOutputs())
        outs.push_back(lookup(v));
    return outs;
}

std::vector<std::vector<Tensor>>
BatchDriver::run(const std::vector<std::vector<Tensor>> &requests,
                 const std::vector<uint64_t> *traceIds)
{
    std::vector<std::vector<Tensor>> outputs(requests.size());
    std::vector<std::vector<double>> node_us(
        requests.size(), std::vector<double>(g_.size(), 0));
    std::vector<RequestMemory> req_mem(requests.size());

    for ([[maybe_unused]] const auto &ws : pool_.drainStats())
        ;  // reset pre-run counters
    uint64_t allocs0 = Storage::heapAllocCount();
    uint64_t alloc_bytes0 = Storage::heapAllocBytes();

    // Post-join difference of cumulative aggregator snapshots = this
    // batch's counter aggregate (the eval seam accumulates on workers).
    obs::PerfCounterStats perf0;
    if (obs::perfEnabled())
        perf0 = obs::PerfAggregator::instance().totals();

    // Hybrid scheduling: many requests saturate the pool with
    // inter-request parallelism (kernels serial); a batch of ONE
    // request has no inter-request parallelism to exploit, so with
    // intra-op enabled it runs HERE — on the dispatch thread, outside
    // any pool task, so the nesting guard doesn't inline its shards —
    // lending the whole pool to its GEMMs through a region.
    const bool deep = intraop_ != IntraOpMode::Off &&
                      requests.size() == 1 && pool_.threads() > 1;

    auto run_request = [&](size_t r, const ParallelRegion *par) {
        // The serving layer's per-request id rides into every span
        // this request records on whichever worker picked it up.
        // Standalone (--runtime) batches get synthetic 1-based ids so
        // their spans still group per request in the trace viewer.
        obs::TraceIdScope tid(traceIds && r < traceIds->size()
                                  ? (*traceIds)[r]
                                  : static_cast<uint64_t>(r) + 1);
        obs::ScopedSpan span(obs::SpanKind::Request);
        span.ev().a0 = static_cast<int64_t>(r);
        // Attach-only: the request runs on this worker, so its span
        // payload is the request's own counter footprint (kernel
        // scopes inside it do the per-category aggregation).
        obs::CounterScope counters(span.armed() ? &span.ev() : nullptr);
        outputs[r] = runOne(requests[r], node_us[r], req_mem[r], par);
    };

    auto wall0 = Clock::now();
    if (deep) {
        ParallelRegion region(&pool_);
        run_request(0, &region);
    } else {
        pool_.parallelFor(requests.size(),
                          [&](size_t r, int) { run_request(r, nullptr); });
    }
    profile_.wallUs = elapsedUsSince(wall0);

    profile_.perf = obs::PerfCounterStats{};
    if (obs::perfEnabled())
        profile_.perf = obs::PerfCounterStats::since(
            perf0, obs::PerfAggregator::instance().totals());

    profile_.threads = pool_.threads();
    profile_.requests = static_cast<int>(requests.size());
    profile_.intraop = intraOpModeName(intraop_);
    profile_.schedule = plan_->sched.stats();
    profile_.levels.clear();
    profile_.sumUs = 0;
    profile_.usByCategory.clear();
    profile_.quant.int8GemmUs = 0;
    profile_.quant.floatGemmUs = 0;
    profile_.quant.qdqUs = 0;
    for (const Node &n : g_.nodes()) {
        double us = 0;
        for (const auto &per_request : node_us)
            us += per_request[static_cast<size_t>(n.id)];
        profile_.sumUs += us;
        profile_.usByCategory[n.category()] += us;
        if (quant::isInt8GemmNode(n))
            profile_.quant.int8GemmUs += us;
        else if (n.category() == OpCategory::Gemm)
            profile_.quant.floatGemmUs += us;
        else if (quant::isQdqExecNode(n))
            profile_.quant.qdqUs += us;
    }
    profile_.threadBusyUs.clear();
    profile_.steals = 0;
    for (const ThreadPool::WorkerStats &ws : pool_.drainStats()) {
        profile_.threadBusyUs.push_back(ws.busyUs);
        profile_.steals += ws.steals;
    }

    profile_.memory = MemoryStats{};
    profile_.memory.arena = arena_;
    profile_.memory.plannedArenaBytes = plan_->memplan.arenaBytes;
    profile_.memory.plannedTotalBytes = plan_->memplan.totalBytes;
    profile_.memory.heapAllocs =
        static_cast<int64_t>(Storage::heapAllocCount() - allocs0);
    profile_.memory.heapAllocBytes =
        static_cast<int64_t>(Storage::heapAllocBytes() - alloc_bytes0);
    profile_.memory.scratchPeakBytes =
        ScratchArena::globalHighWaterBytes();
    profile_.memory.scratchWorkerSumBytes =
        ScratchArena::globalHighWaterSumBytes();
    for (const RequestMemory &m : req_mem) {
        profile_.memory.boundPeakBytes = std::max(
            profile_.memory.boundPeakBytes, m.boundPeakBytes);
        profile_.memory.arenaTensors += m.arenaTensors;
        profile_.memory.heapTensors += m.heapTensors;
    }
    if (arena_)
        profile_.memory.arenaBlocks =
            static_cast<int64_t>(plan_->arenas.blocks());
    return outputs;
}

}  // namespace ngb
