#ifndef NGB_RUNTIME_INTRAOP_H
#define NGB_RUNTIME_INTRAOP_H

#include <cstddef>
#include <functional>
#include <string>

#include "runtime/thread_pool.h"

/**
 * @file
 * Intra-op parallelism: the ParallelRegion seam kernels shard work
 * through, and the on/off/auto mode the hybrid scheduler consults.
 *
 * A kernel receives a region through KernelContext::par. A null
 * pointer (the default everywhere) means "serial": kernels must run
 * their unchanged single-thread code path. A non-null region lends
 * the kernel the pool's workers for the duration of one run() call —
 * a blocking fork-join over shards.
 *
 * Determinism contract: regions shard ITERATION SPACE, never
 * reductions. A GEMM may split M or N (each output element is still
 * produced by exactly one shard, with its full k-ascending
 * accumulator chain); it must never split K. Under that rule every
 * thread count produces bit-identical outputs, which the differential
 * suite in tests/intraop_test.cc enforces over the whole registry.
 */

namespace ngb {

/** How the executor hands pool threads to kernels. */
enum class IntraOpMode {
    Off,   ///< never: kernels always run serial (pre-intra-op shape)
    On,    ///< whenever a level is narrower than the pool
    Auto,  ///< cost model picks wide (inter-node) vs deep (intra-op)
};

/** $NGB_INTRAOP: "0"/"off" -> Off, "1"/"on" -> On, else Auto. */
IntraOpMode intraOpModeFromEnv();

/** Parse "on"/"off"/"auto" (throws std::runtime_error otherwise). */
IntraOpMode parseIntraOpMode(const std::string &s);

const char *intraOpModeName(IntraOpMode m);

/**
 * A borrowed slice of the thread pool a kernel may shard work across.
 * Inert when constructed without a pool: run() degrades to a serial
 * loop, so kernels can be written against the region unconditionally.
 *
 * run() is safe to call from inside a wavefront task: the pool's
 * nesting guard runs the shards inline on the calling worker (no
 * deadlock, no oversubscription). Each shard executes under the
 * launching request's trace id, inside its own Shard child span and
 * its own ScratchScope (per-worker pack buffers release on shard
 * exit).
 */
class ParallelRegion
{
  public:
    explicit ParallelRegion(ThreadPool *pool = nullptr) : pool_(pool) {}

    /** Workers available to run(); 1 when inert. */
    int threads() const { return pool_ ? pool_->threads() : 1; }

    /**
     * Execute @p fn(shard, worker) for every shard in [0, nShards),
     * blocking until all complete. Shards may run on any pool worker
     * (worker in [0, threads())); a given shard runs exactly once.
     */
    void run(size_t nShards,
             const std::function<void(size_t, int)> &fn) const;

  private:
    ThreadPool *pool_;
};

}  // namespace ngb

#endif  // NGB_RUNTIME_INTRAOP_H
