#ifndef NGB_RUNTIME_THREAD_POOL_H
#define NGB_RUNTIME_THREAD_POOL_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace ngb {

/**
 * Resolve a requested worker count to an actual one: positive values
 * pass through, zero / negative mean "use the hardware", and a host
 * that reports hardware_concurrency() == 0 (permitted by the standard)
 * still gets one worker. Every pool-sizing path — ThreadPool itself,
 * the CLI, the serving layer's engine keys — goes through this so a
 * pool can never end up empty.
 */
int resolveThreads(int requested);

/**
 * A work-stealing thread pool for data-parallel node dispatch.
 *
 * The pool owns threads()-1 background workers; the thread that calls
 * parallelFor() participates as worker 0, so a pool of size 1 degrades
 * to plain serial execution with no synchronization overhead beyond a
 * function call. Tasks are dealt round-robin into per-worker deques;
 * each worker drains its own deque from the front and steals from the
 * back of its neighbours' when empty — the classic Cilk/TBB shape that
 * keeps hot tasks local and migrates work only under imbalance.
 *
 * parallelFor() is a blocking fork-join region. Nesting is safe but
 * degenerate by design: a parallelFor() issued from INSIDE a pool task
 * (an intra-op region launched by a kernel that is itself a wavefront
 * task) runs its iterations inline on the calling worker — no second
 * fork-join is set up, so there is no deadlock, no oversubscription,
 * and no double-counting of WorkerStats (the enclosing task's timer is
 * already running). Exceptions thrown by tasks are captured and the
 * first one is rethrown on the calling thread after the region
 * completes, so a throwing kernel cannot deadlock the pool.
 */
class ThreadPool
{
  public:
    struct WorkerStats {
        double busyUs = 0;    ///< time spent inside tasks
        int64_t tasks = 0;    ///< tasks executed
        int64_t steals = 0;   ///< tasks obtained from another worker
    };

    /** @p threads total workers; 0 picks hardware_concurrency. */
    explicit ThreadPool(int threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    int threads() const { return static_cast<int>(queues_.size()); }

    /**
     * Execute @p fn(index, workerId) for every index in [0, n).
     * Blocks until all tasks finish. workerId in [0, threads()).
     */
    void parallelFor(size_t n, const std::function<void(size_t, int)> &fn);

    /** Per-worker counters accumulated since the last drain. */
    std::vector<WorkerStats> drainStats();

    /**
     * True while the calling thread is inside a parallelFor task of
     * ANY pool (thread-local, not per-pool). Nested parallelFor calls
     * consult this to degrade to inline execution.
     */
    static bool inTask();

    /**
     * The worker slot the calling thread occupies in the region it is
     * currently executing a task for, or -1 outside any task.
     */
    static int currentWorker();

  private:
    struct Queue {
        std::mutex mutex;
        std::deque<size_t> tasks;
        WorkerStats stats;
    };

    void workerLoop(int id);
    void workUntilDrained(int id);
    bool popTask(int id, size_t &task, bool &stolen);

    std::vector<std::unique_ptr<Queue>> queues_;
    std::vector<std::thread> workers_;

    const std::function<void(size_t, int)> *fn_ = nullptr;
    std::atomic<size_t> remaining_{0};
    std::atomic<uint64_t> epoch_{0};
    bool stop_ = false;

    std::mutex wakeMutex_;
    std::condition_variable wakeCv_;
    std::mutex doneMutex_;
    std::condition_variable doneCv_;

    std::mutex errorMutex_;
    std::exception_ptr error_;
};

}  // namespace ngb

#endif  // NGB_RUNTIME_THREAD_POOL_H
