#include "runtime/memory_planner.h"

#include <algorithm>
#include <map>

namespace ngb {

namespace {

constexpr int64_t kAlign = 64;

int64_t
alignUp(int64_t n)
{
    return (n + kAlign - 1) / kAlign * kAlign;
}

/** Best-fit free-list arena with offset-sorted coalescing blocks. */
class Arena
{
  public:
    int64_t allocate(int64_t bytes)
    {
        // Best fit: smallest free block that still holds the request.
        auto best = free_.end();
        for (auto it = free_.begin(); it != free_.end(); ++it)
            if (it->second >= bytes &&
                (best == free_.end() || it->second < best->second))
                best = it;
        if (best != free_.end()) {
            int64_t offset = best->first;
            int64_t size = best->second;
            free_.erase(best);
            if (size > bytes)
                free_[offset + bytes] = size - bytes;
            return offset;
        }
        int64_t offset = top_;
        top_ += bytes;
        return offset;
    }

    void release(int64_t offset, int64_t bytes)
    {
        auto [it, inserted] = free_.emplace(offset, bytes);
        (void)inserted;
        // Coalesce with the successor, then the predecessor.
        auto next = std::next(it);
        if (next != free_.end() && it->first + it->second == next->first) {
            it->second += next->second;
            free_.erase(next);
        }
        if (it != free_.begin()) {
            auto prev = std::prev(it);
            if (prev->first + prev->second == it->first) {
                prev->second += it->second;
                free_.erase(it);
            }
        }
    }

    int64_t peak() const { return top_; }

  private:
    std::map<int64_t, int64_t> free_;  // offset -> size
    int64_t top_ = 0;
};

}  // namespace

const TensorPlacement *
MemoryPlan::find(Value v) const
{
    if (!index_.empty() || placements.empty()) {
        auto it = index_.find(key(v));
        return it != index_.end() ? &placements[it->second] : nullptr;
    }
    // Hand-built plan without an index (tests): linear fallback.
    for (const TensorPlacement &p : placements)
        if (p.value == v)
            return &p;
    return nullptr;
}

void
MemoryPlan::buildIndex()
{
    index_.clear();
    index_.reserve(placements.size());
    for (size_t i = 0; i < placements.size(); ++i)
        index_[key(placements[i].value)] = i;
}

bool
mayAliasInput(OpKind k)
{
    switch (k) {
      case OpKind::Reshape:
      case OpKind::View:
      case OpKind::Permute:
      case OpKind::Transpose:
      case OpKind::Contiguous:
      case OpKind::Expand:
      case OpKind::Squeeze:
      case OpKind::Unsqueeze:
      case OpKind::Slice:
        return true;
      default:
        return false;
    }
}

MemoryPlan
planMemory(const Graph &g, const Schedule &s)
{
    MemoryPlan plan;
    int last_level = static_cast<int>(s.numLevels()) - 1;

    // Which (node, index) values are graph inputs (caller-owned)?
    auto isGraphInput = [&](int node) {
        for (const Value &v : g.graphInputs())
            if (v.node == node)
                return true;
        return false;
    };

    // Index placements by node id for the consumer scan below; outputs
    // of one node are contiguous in plan.placements.
    std::vector<int> first_placement(g.size(), -1);

    for (const Node &n : g.nodes()) {
        if (isGraphInput(n.id))
            continue;
        if (n.inputs.empty())
            continue;  // learned constant, lives in the ParamStore
        first_placement[static_cast<size_t>(n.id)] =
            static_cast<int>(plan.placements.size());
        for (size_t i = 0; i < n.outShapes.size(); ++i) {
            TensorPlacement p;
            p.value = {n.id, static_cast<int>(i)};
            p.bytes = alignUp(n.outShapes[i].numel() *
                              static_cast<int64_t>(dtypeSize(n.outDtypes[i])));
            p.firstLevel = s.levelOf(n.id);
            p.lastLevel = p.firstLevel;  // extended by consumers below
            plan.placements.push_back(p);
        }
    }

    auto placementOf = [&](Value v) -> TensorPlacement * {
        int base = first_placement[static_cast<size_t>(v.node)];
        if (base < 0)
            return nullptr;
        return &plan.placements[static_cast<size_t>(base + v.index)];
    };

    for (const Node &n : g.nodes())
        for (const Value &v : n.inputs)
            if (TensorPlacement *p = placementOf(v))
                p->lastLevel = std::max(p->lastLevel, s.levelOf(n.id));
    for (const Value &v : g.graphOutputs())
        if (TensorPlacement *p = placementOf(v))
            p->lastLevel = last_level;

    // Alias extension: a view-producing op's output shares its input's
    // bytes, so the input buffer must stay live as long as the view
    // (and transitively, views of views). Walking node ids in reverse
    // (ids are topological: builders only reference existing nodes)
    // propagates a whole chain's last reader to every buffer along it
    // in one pass.
    const std::vector<Node> &nodes = g.nodes();
    for (auto it = nodes.rbegin(); it != nodes.rend(); ++it) {
        const Node &n = *it;
        if (!mayAliasInput(n.kind) || n.inputs.empty())
            continue;
        TensorPlacement *self = placementOf({n.id, 0});
        TensorPlacement *src = placementOf(n.inputs[0]);
        if (self && src)
            src->lastLevel = std::max(src->lastLevel, self->lastLevel);
    }

    // Sweep levels in order: free expired tensors, then place the
    // level's new tensors biggest-first (greedy best-fit by size).
    std::map<int, std::vector<TensorPlacement *>> by_first, by_last;
    for (TensorPlacement &p : plan.placements) {
        by_first[p.firstLevel].push_back(&p);
        by_last[p.lastLevel].push_back(&p);
        plan.totalBytes += p.bytes;
    }

    Arena arena;
    for (int lvl = 0; lvl <= last_level; ++lvl) {
        if (lvl > 0) {
            auto it = by_last.find(lvl - 1);
            if (it != by_last.end())
                for (TensorPlacement *p : it->second)
                    arena.release(p->offset, p->bytes);
        }
        auto it = by_first.find(lvl);
        if (it == by_first.end())
            continue;
        std::vector<TensorPlacement *> batch = it->second;
        std::stable_sort(batch.begin(), batch.end(),
                         [](const TensorPlacement *a,
                            const TensorPlacement *b) {
                             return a->bytes > b->bytes;
                         });
        for (TensorPlacement *p : batch)
            p->offset = arena.allocate(p->bytes);
    }
    plan.arenaBytes = arena.peak();
    plan.buildIndex();
    return plan;
}

bool
verifyNoAliasing(const MemoryPlan &plan)
{
    for (size_t i = 0; i < plan.placements.size(); ++i) {
        const TensorPlacement &a = plan.placements[i];
        for (size_t j = i + 1; j < plan.placements.size(); ++j) {
            const TensorPlacement &b = plan.placements[j];
            bool lifetimes_overlap = a.firstLevel <= b.lastLevel &&
                                     b.firstLevel <= a.lastLevel;
            bool ranges_overlap = a.offset < b.offset + b.bytes &&
                                  b.offset < a.offset + a.bytes;
            if (lifetimes_overlap && ranges_overlap)
                return false;
        }
    }
    return true;
}

}  // namespace ngb
