#include <cmath>
#include <stdexcept>

#include "graph/builder.h"
#include "models/common.h"
#include "models/models.h"
#include "models/swin_backbone.h"

namespace ngb {
namespace models {

namespace {

/** [B, HW, C] -> windowed [B*nW, win*win, C]: view/permute/contiguous. */
Value
windowPartition(GraphBuilder &b, Value x, int64_t batch, int64_t h,
                int64_t w, int64_t c, int64_t win)
{
    Value v = b.view(x, Shape{batch, h / win, win, w / win, win, c});
    v = b.permute(v, {0, 1, 3, 2, 4, 5});
    v = b.contiguous(v);
    return b.view(v, Shape{batch * (h / win) * (w / win), win * win, c});
}

/** Inverse of windowPartition. */
Value
windowReverse(GraphBuilder &b, Value x, int64_t batch, int64_t h, int64_t w,
              int64_t c, int64_t win)
{
    Value v = b.view(x, Shape{batch, h / win, w / win, win, win, c});
    v = b.permute(v, {0, 1, 3, 2, 4, 5});
    v = b.contiguous(v);
    return b.view(v, Shape{batch, h * w, c});
}

/** One (shifted-)window attention block at resolution h x w. */
Value
swinBlock(GraphBuilder &b, Value x, int64_t batch, int64_t h, int64_t w,
          int64_t c, int64_t heads, int64_t win, bool shifted,
          const std::string &prefix)
{
    int64_t hd = c / heads;
    // HF's maybe_pad: feature maps whose sides are not multiples of
    // the window get zero-padded before partitioning and cropped back
    // after — two more full copies per block (big Memory traffic at
    // detection resolutions).
    int64_t hp = (h + win - 1) / win * win;
    int64_t wp = (w + win - 1) / win * win;
    bool padded = hp != h || wp != w;
    int64_t n_win = (hp / win) * (wp / win);
    int64_t bw = batch * n_win;
    int64_t t = win * win;

    Value shortcut = x;
    Value v = b.layerNorm(x);

    v = b.view(v, Shape{batch, h, w, c});
    if (padded) {
        if (hp != h)
            v = b.pad(v, 1, 0, hp - h);
        if (wp != w)
            v = b.pad(v, 2, 0, wp - w);
    }
    // The cyclic shift for shifted windows (torch.roll) moves the
    // whole feature map — a real copy, the Swin memory signature.
    if (shifted) {
        v = b.roll(v, -(win / 2), 1);
        v = b.roll(v, -(win / 2), 2);
    }
    v = b.view(v, Shape{batch, hp * wp, c});
    v = windowPartition(b, v, batch, hp, wp, c, win);

    // Fused qkv + head split.
    Value qkv = b.linear(v, 3 * c, true, prefix + ".qkv");
    Value q5 = b.view(qkv, Shape{bw, t, 3, heads, hd});
    Value qp = b.permute(q5, {2, 0, 3, 1, 4});
    qp = b.contiguous(qp);
    Value flat = b.view(qp, Shape{3 * bw * heads, t, hd});
    auto parts = b.split(flat, bw * heads, 0);
    Value q = parts[0], k = parts[1], vv = parts[2];

    q = b.mulScalar(q, 1.0 / std::sqrt(static_cast<double>(hd)));
    Value kt = b.contiguous(b.transpose(k, 1, 2));
    Value logits = b.bmm(q, kt, prefix + ".attn_logits");

    // Relative position bias (+ shift mask for shifted windows).
    Value bias = b.weight(Shape{1, t, t}, prefix + ".rel_pos_bias");
    logits = b.add(logits, bias);
    if (shifted) {
        Value mask = b.weight(Shape{1, t, t}, prefix + ".shift_mask");
        logits = b.add(logits, mask);
    }
    Value probs = b.softmax(logits, -1);
    Value ctx = b.bmm(probs, vv, prefix + ".attn_context");

    // Merge heads: view + permute + contiguous + view.
    ctx = b.view(ctx, Shape{bw, heads, t, hd});
    ctx = b.permute(ctx, {0, 2, 1, 3});
    ctx = b.contiguous(ctx);
    ctx = b.view(ctx, Shape{bw, t, c});
    ctx = b.linear(ctx, c, true, prefix + ".proj");

    Value merged = windowReverse(b, ctx, batch, hp, wp, c, win);
    if (shifted) {
        merged = b.view(merged, Shape{batch, hp, wp, c});
        merged = b.roll(merged, win / 2, 1);
        merged = b.roll(merged, win / 2, 2);
        merged = b.view(merged, Shape{batch, hp * wp, c});
    }
    if (padded) {
        // Crop the pad back off (strided slices + one copy).
        merged = b.view(merged, Shape{batch, hp, wp, c});
        merged = b.slice(merged, 1, 0, h);
        merged = b.slice(merged, 2, 0, w);
        merged = b.contiguous(merged);
        merged = b.view(merged, Shape{batch, h * w, c});
    }
    Value y = b.add(shortcut, merged);

    Value m = b.layerNorm(y);
    m = transformerMlp(b, m, c * 4, 1, prefix + ".mlp");
    return b.add(y, m);
}

/** Patch merging: 4 strided slices + concat + LN + reduction linear. */
Value
patchMerging(GraphBuilder &b, Value x, int64_t batch, int64_t h, int64_t w,
             int64_t c, const std::string &prefix)
{
    Value v = b.view(x, Shape{batch, h, w, c});
    if (h % 2 || w % 2) {
        if (h % 2)
            v = b.pad(v, 1, 0, 1);
        if (w % 2)
            v = b.pad(v, 2, 0, 1);
        h += h % 2;
        w += w % 2;
    }
    // x[:, 0::2, 0::2], [1::2, 0::2], [0::2, 1::2], [1::2, 1::2]:
    // strided slices followed by a channel concat.
    std::vector<Value> quads;
    for (int i = 0; i < 4; ++i) {
        Value s = b.slice(v, 1, (i & 1), h / 2);
        s = b.slice(s, 2, (i >> 1), w / 2);
        quads.push_back(s);
    }
    Value cat = b.concat(quads, -1);  // [B, h/2, w/2, 4c]
    cat = b.view(cat, Shape{batch, (h / 2) * (w / 2), 4 * c});
    cat = b.layerNorm(cat);
    return b.linear(cat, 2 * c, false, prefix + ".reduction");
}

}  // namespace

SwinFeatures
buildSwinBackbone(GraphBuilder &b, Value image, const SwinSpec &spec,
                  const std::string &prefix)
{
    const Shape &is = b.graph().shapeOf(image);
    int64_t batch = is[0];
    int64_t img = is[2];
    int64_t side = img / 4;
    int64_t c = spec.embedDim;

    // Patch embedding: conv k4 s4 + flatten + LN.
    Value v = b.conv2d(image, c, 4, 4, 0, 1, true, prefix + ".patch_embed");
    v = b.reshape(v, Shape{batch, c, side * side});
    v = b.permute(v, {0, 2, 1});
    v = b.contiguous(v);
    v = b.layerNorm(v);

    SwinFeatures feats;
    int64_t h = side, w = side;
    for (size_t stage = 0; stage < spec.depths.size(); ++stage) {
        int64_t heads = spec.heads[stage];
        for (int64_t blk = 0; blk < spec.depths[stage]; ++blk) {
            bool shifted = (blk % 2) == 1;
            v = swinBlock(b, v, batch, h, w, c, heads, spec.window,
                          shifted,
                          prefix + ".s" + std::to_string(stage) + ".b" +
                              std::to_string(blk));
        }
        feats.stages.push_back({v, h, w, c});
        if (stage + 1 < spec.depths.size()) {
            v = patchMerging(b, v, batch, h, w, c,
                             prefix + ".merge" + std::to_string(stage));
            h = (h + 1) / 2;
            w = (w + 1) / 2;
            c *= 2;
        }
    }
    return feats;
}

SwinSpec
swinVariant(const std::string &v)
{
    if (v == "t")
        return {96, {2, 2, 6, 2}, {3, 6, 12, 24}, 7};
    if (v == "s")
        return {96, {2, 2, 18, 2}, {3, 6, 12, 24}, 7};
    if (v == "b")
        return {128, {2, 2, 18, 2}, {4, 8, 16, 32}, 7};
    throw std::runtime_error("unknown Swin variant: " + v);
}

Graph
buildSwin(const std::string &variant, const ModelConfig &cfg)
{
    SwinSpec spec = swinVariant(variant);
    int64_t img = cfg.imageSize > 0 ? cfg.imageSize : 224;
    if (cfg.testScale > 1) {
        spec.embedDim =
            std::max<int64_t>(spec.heads[0] * 4,
                              spec.embedDim / cfg.testScale);
        spec.embedDim -= spec.embedDim % spec.heads[0];
        for (auto &d : spec.depths)
            d = std::max<int64_t>(1, d / cfg.testScale);
        // Tiny spatial config whose stages stay window-divisible.
        spec.window = 2;
        img = 64;
    }

    Graph g;
    g.setName("swin_" + variant);
    GraphBuilder b(g);

    Value x = b.input(Shape{cfg.batch, 3, img, img}, DType::F32, "pixels");
    SwinFeatures f = buildSwinBackbone(b, x, spec, "swin");

    // Classification head: LN + mean-pool + linear.
    const SwinStage &last = f.stages.back();
    Value v = b.layerNorm(last.tokens);
    Value pooled = b.reshape(v, Shape{cfg.batch, last.h * last.w, last.c});
    // Global average pool over tokens via AdaptiveAvgPool on NCHW view.
    pooled = b.permute(pooled, {0, 2, 1});
    pooled = b.contiguous(pooled);
    pooled = b.view(pooled, Shape{cfg.batch, last.c, last.h, last.w});
    pooled = b.adaptiveAvgPool2d(pooled, 1, 1);
    pooled = b.reshape(pooled, Shape{cfg.batch, last.c});
    Value logits = b.linear(pooled, 1000, true, "head");
    b.output(logits);
    return g;
}

}  // namespace models
}  // namespace ngb
