#ifndef NGB_MODELS_RESNET_H
#define NGB_MODELS_RESNET_H

#include <string>
#include <vector>

#include "graph/builder.h"

namespace ngb {
namespace models {

/** Multi-scale feature maps of a ResNet backbone (strides 4..32). */
struct ResNetFeatures {
    Value c2, c3, c4, c5;
};

/**
 * How FrozenBatchNorm2d latency shows up in an eager profile.
 *
 * Both DETR and torchvision implement it in Python out of primitive
 * torch ops (the "custom implementation ... identified as independent
 * kernels" of Section IV-A). DETR's module is attributed to the
 * Normalization group (Table IV: DETR Norm 34.8%), while torchvision's
 * big x*scale and +bias passes trace as aten::mul / aten::add and land
 * in Element-wise Arithmetic (Table IV: R-CNNs Elt-wise ~34%).
 */
enum class FrozenBnStyle {
    NormModule,   ///< attribute to Normalization (DETR)
    Elementwise,  ///< attribute big passes to ElementWise (torchvision)
    NativeBn,     ///< plain eval-mode nn.BatchNorm2d (one aten kernel)
};

/**
 * ResNet-50 backbone as used by the detection models.
 *
 * @param style profiler attribution of the frozen batch norms.
 * @param width divide channel widths by this for test-size graphs.
 */
ResNetFeatures resnet50Backbone(GraphBuilder &b, Value image,
                                FrozenBnStyle style, int64_t width,
                                const std::string &prefix);

}  // namespace models
}  // namespace ngb

#endif  // NGB_MODELS_RESNET_H
