#include <algorithm>
#include <string>

#include "graph/builder.h"
#include "models/common.h"
#include "models/models.h"

namespace ngb {
namespace models {

/**
 * Mixtral 8x7B: Llama-style attention (GQA, rotary) with a top-2
 * mixture-of-experts MLP. The eager HF implementation dispatches
 * tokens to experts with index ops (one-hot routing, index_select,
 * index_add) — the Memory-operator traffic that makes Memory the
 * dominant non-GEMM group for Mixtral in Table IV.
 */
Graph
buildMixtral(const ModelConfig &cfg)
{
    int64_t dim = 4096, depth = 32, heads = 32, kv_heads = 8;
    int64_t ffn = 14336, vocab = 32000;
    int64_t experts_active = 2, experts_total = 8;
    if (cfg.testScale > 1) {
        dim = std::max<int64_t>(heads * 4, dim / cfg.testScale);
        dim -= dim % heads;
        ffn = std::max<int64_t>(8, ffn / cfg.testScale);
        depth = std::max<int64_t>(1, depth / cfg.testScale);
        vocab = 512;
    }
    int64_t t = cfg.seqLen;
    int64_t hd = dim / heads;
    int64_t kv_dim = kv_heads * hd;
    int64_t groups = heads / kv_heads;
    int64_t tokens = cfg.batch * t;
    // Average expert load under top-2 routing.
    int64_t tokens_per_expert =
        std::max<int64_t>(1, tokens * experts_active / experts_total);

    Graph g;
    g.setName("mixtral-8x7b");
    GraphBuilder b(g);

    Value ids = b.tokenInput(Shape{cfg.batch, t});
    Value x = b.embedding(ids, vocab, dim, "embed_tokens");
    Value cos_w = b.weight(Shape{1, t, hd}, "rotary_cos");
    Value sin_w = b.weight(Shape{1, t, hd}, "rotary_sin");

    for (int64_t i = 0; i < depth; ++i) {
        std::string p = "layer" + std::to_string(i);

        Value h = b.rmsNorm(x);
        setKernels(b, h, 8);
        b.graph().node(h.node).attrs.set("big_kernels", 3);
        Value q = b.linear(h, dim, false, p + ".q_proj");
        Value k = b.linear(h, kv_dim, false, p + ".k_proj");
        Value v = b.linear(h, kv_dim, false, p + ".v_proj");
        q = splitHeadsOp(b, q, heads);
        k = splitHeadsOp(b, k, kv_heads);
        v = splitHeadsOp(b, v, kv_heads);

        // Rotary (slices + neg + concat + muls + add), as in Llama.
        auto rotary = [&](Value vv) {
            Value x1 = b.slice(vv, -1, 0, hd / 2);
            Value x2 = b.slice(vv, -1, hd / 2, hd - hd / 2);
            Value rot = b.concat({b.neg(x2), x1}, -1);
            return b.add(b.mul(vv, cos_w), b.mul(rot, sin_w));
        };
        q = rotary(q);
        k = rotary(k);

        auto repeat = [&](Value kv) {
            Value r = b.view(kv, Shape{cfg.batch, kv_heads, 1, t, hd});
            r = b.expand(r, Shape{cfg.batch, kv_heads, groups, t, hd});
            r = b.contiguous(r);
            return b.view(r, Shape{cfg.batch * heads, t, hd});
        };
        k = repeat(k);
        v = repeat(v);

        Value ctx = attentionCoreOp(b, q, k, v, cfg.batch, heads, hd,
                                    true);
        x = b.add(x, b.linear(ctx, dim, false, p + ".o_proj"));

        // --- Sparse MoE block -----------------------------------------
        Value h2 = b.rmsNorm(x);
        setKernels(b, h2, 8);
        b.graph().node(h2.node).attrs.set("big_kernels", 3);
        Value flat = b.reshape(h2, Shape{tokens, dim});

        // Router: logits -> softmax -> top-2 -> renormalize.
        Value router_logits = b.linear(flat, experts_total, false,
                                       p + ".router");
        Value probs = b.softmax(router_logits, -1);
        auto [topv, topi] = b.topk(probs, static_cast<int>(experts_active));
        (void)topi;
        Value denom = b.add(b.slice(topv, -1, 0, 1),
                            b.slice(topv, -1, 1, 1));
        Value weights = b.div(topv, denom);

        // Expert dispatch: the HF eager implementation loops over all
        // 8 experts, index-selecting each expert's token subset (T/4
        // tokens on average under top-2 routing), running the gated
        // MLP, and index_add-ing the result back.
        Value merged = flat;
        for (int64_t e = 0; e < experts_total; ++e) {
            std::string ep = p + ".expert" + std::to_string(e);
            Value sel_idx = b.buffer(Shape{tokens_per_expert, dim},
                                     ep + ".token_index");
            Value tok = b.gather(flat, 0, sel_idx);
            g.node(tok.node).name = ep + ".index_select";
            // torch.where(expert_mask[e]) materializes dynamic indices
            // and stalls the CUDA stream before the gather can launch.
            g.node(tok.node).attrs.set("syncs", 2);

            Value gate = b.linear(tok, ffn, false, ep + ".w1");
            Value up = b.linear(tok, ffn, false, ep + ".w3");
            Value act = b.mul(b.silu(gate), up);
            Value down = b.linear(act, dim, false, ep + ".w2");

            // Routing weight column (the two top-2 slots alternate).
            Value w_col = b.slice(weights, -1, e % 2, 1);  // [tokens, 1]
            Value w_sel = b.slice(w_col, 0, 0, tokens_per_expert);
            Value scaled = b.mul(down, w_sel);            // [tpe, dim]

            // In-place index_add_ back into the token buffer: reads
            // and rewrites the target rows plus the buffer stitch —
            // Memory traffic, not a full-tensor arithmetic pass.
            Value target_rows = b.slice(merged, 0, 0, tokens_per_expert);
            Value summed = b.add(target_rows, scaled);
            Value stitched = summed;
            if (tokens_per_expert < tokens) {
                Value rest = b.slice(merged, 0, tokens_per_expert,
                                     tokens - tokens_per_expert);
                stitched = b.concat({summed, rest}, 0);
            }
            g.node(stitched.node).name = ep + ".index_add";
            merged = stitched;
        }
        x = b.add(x, b.reshape(merged, Shape{cfg.batch, t, dim}));
    }

    Value fin = b.rmsNorm(x);
    setKernels(b, fin, 8);
    b.graph().node(fin.node).attrs.set("big_kernels", 3);
    Value logits = b.linear(fin, vocab, false, "lm_head");
    b.output(logits);
    return g;
}

}  // namespace models
}  // namespace ngb
