#ifndef NGB_MODELS_MODELS_H
#define NGB_MODELS_MODELS_H

#include "graph/graph.h"
#include "models/model_config.h"

/**
 * @file
 * Graph builders for the 17 NonGEMM Bench models (Table II) plus the
 * Llama3-8B model of the quantization study (Figure 9). Builders
 * reconstruct each architecture operator by operator at the shapes the
 * paper profiled; weights are synthetic (latency attribution does not
 * depend on weight values).
 */

namespace ngb {
namespace models {

// Image classification (ImageNet).
Graph buildViT(const std::string &variant, const ModelConfig &cfg);   // b, l, h
Graph buildSwin(const std::string &variant, const ModelConfig &cfg);  // t, s, b
/** Extension beyond Table II: the classic CNN baseline of Fig. 3 (a). */
Graph buildResNet50(const ModelConfig &cfg);
/** Extension: bandwidth-bound depthwise CNN (the paper's ref [51]). */
Graph buildMobileNetV2(const ModelConfig &cfg);
/** Extension: norm-free all-conv CNN (the paper's ref [52]). */
Graph buildVgg16(const ModelConfig &cfg);

// Object detection (COCO).
Graph buildFasterRcnn(const ModelConfig &cfg);
Graph buildMaskRcnn(const ModelConfig &cfg);
Graph buildDetr(const ModelConfig &cfg);

// Image segmentation (COCO).
Graph buildMaskFormer(const ModelConfig &cfg);
Graph buildSegFormer(const ModelConfig &cfg);

// NLP (wikitext).
Graph buildGpt2(const std::string &variant, const ModelConfig &cfg);  // "", l, xl
Graph buildBert(const ModelConfig &cfg);
Graph buildLlama2(const ModelConfig &cfg);
Graph buildLlama3(const ModelConfig &cfg);
Graph buildMixtral(const ModelConfig &cfg);

}  // namespace models
}  // namespace ngb

#endif  // NGB_MODELS_MODELS_H
