#include <stdexcept>

#include "graph/builder.h"
#include "models/common.h"
#include "models/models.h"

namespace ngb {
namespace models {

namespace {

struct VitConfig {
    int64_t dim;
    int64_t depth;
    int64_t heads;
    int64_t patch;
};

VitConfig
vitVariant(const std::string &v)
{
    if (v == "b")
        return {768, 12, 12, 16};
    if (v == "l")
        return {1024, 24, 16, 16};
    if (v == "h")
        return {1280, 32, 16, 14};
    throw std::runtime_error("unknown ViT variant: " + v);
}

}  // namespace

Graph
buildViT(const std::string &variant, const ModelConfig &cfg)
{
    VitConfig vc = vitVariant(variant);
    if (cfg.testScale > 1) {
        vc.dim = std::max<int64_t>(vc.heads * 4, vc.dim / cfg.testScale);
        vc.dim -= vc.dim % vc.heads;
        vc.depth = std::max<int64_t>(1, vc.depth / cfg.testScale);
    }
    int64_t img = cfg.imageSize > 0 ? cfg.imageSize : 224;
    int64_t tokens_side = img / vc.patch;
    int64_t tokens = tokens_side * tokens_side + 1;  // + [CLS]

    Graph g;
    g.setName("vit_" + variant);
    GraphBuilder b(g);

    Value x = b.input(Shape{cfg.batch, 3, img, img}, DType::F32, "pixels");

    // Patch embedding: Conv2d stride=patch, then flatten + transpose.
    Value p = b.conv2d(x, vc.dim, static_cast<int>(vc.patch),
                       static_cast<int>(vc.patch), 0, 1, true,
                       "patch_embed");
    p = b.reshape(p, Shape{cfg.batch, vc.dim, tokens_side * tokens_side});
    p = b.permute(p, {0, 2, 1});
    p = b.contiguous(p);

    // Prepend the class token (expand + concat, Table I memory ops).
    Value cls = b.weight(Shape{1, 1, vc.dim}, "cls_token");
    Value cls_b = b.expand(cls, Shape{cfg.batch, 1, vc.dim});
    Value seq = b.concat({cls_b, p}, 1);

    // Learned position embeddings.
    Value pos = b.weight(Shape{1, tokens, vc.dim}, "pos_embed");
    seq = b.add(seq, pos);

    for (int64_t i = 0; i < vc.depth; ++i)
        seq = encoderLayerPreNorm(b, seq, vc.heads, vc.dim * 4,
                                  "layer" + std::to_string(i));

    seq = b.layerNorm(seq);
    Value cls_out = b.slice(seq, 1, 0, 1);
    cls_out = b.reshape(cls_out, Shape{cfg.batch, vc.dim});
    Value logits = b.linear(cls_out, 1000, true, "head");
    b.output(logits);
    return g;
}

}  // namespace models
}  // namespace ngb
