#include <algorithm>
#include <string>
#include <vector>

#include "graph/builder.h"
#include "models/common.h"
#include "models/models.h"
#include "models/resnet.h"

namespace ngb {
namespace models {

namespace {

/**
 * torchvision-style box decoding: apply regression deltas to anchors.
 * In eager mode this is a burst of small element-wise kernels (slices,
 * muls, exps, adds, clamps) per feature level — the Element-wise
 * Arithmetic latency that dominates the R-CNNs in Table IV.
 *
 * @param deltas [N, 4] regression output.
 * @return decoded, clipped boxes [N, 4].
 */
Value
boxDecode(GraphBuilder &b, Value deltas, int64_t n,
          const std::string &prefix)
{
    Value anchors = b.buffer(Shape{n, 4}, prefix + ".anchors");
    // Split deltas and anchors into coordinates.
    Value dx = b.slice(deltas, 1, 0, 1);
    Value dy = b.slice(deltas, 1, 1, 1);
    Value dw = b.slice(deltas, 1, 2, 1);
    Value dh = b.slice(deltas, 1, 3, 1);
    Value ax = b.slice(anchors, 1, 0, 1);
    Value ay = b.slice(anchors, 1, 1, 1);
    Value aw = b.slice(anchors, 1, 2, 1);
    Value ah = b.slice(anchors, 1, 3, 1);

    Value cx = b.add(b.mul(dx, aw), ax);
    Value cy = b.add(b.mul(dy, ah), ay);
    Value w = b.mul(b.exp(dw), aw);
    Value h = b.mul(b.exp(dh), ah);

    // Corners + clip to the image (clamp = a select kernel per side).
    Value x1 = b.sub(cx, b.mulScalar(w, 0.5));
    Value y1 = b.sub(cy, b.mulScalar(h, 0.5));
    Value x2 = b.add(cx, b.mulScalar(w, 0.5));
    Value y2 = b.add(cy, b.mulScalar(h, 0.5));
    x1 = b.where(x1, x1, x1);
    y1 = b.where(y1, y1, y1);
    x2 = b.where(x2, x2, x2);
    y2 = b.where(y2, y2, y2);
    Value boxes = b.concat({y1, x1, y2, x2}, 1);

    // remove_small_boxes: widths/heights + two comparisons + AND.
    Value ww = b.sub(x2, x1);
    Value hh = b.sub(y2, y1);
    Value keep_w = b.where(ww, ww, ww);
    Value keep_h = b.where(hh, hh, hh);
    Value keep = b.mul(keep_w, keep_h);
    (void)keep;
    return boxes;
}

struct RcnnTrunk {
    Value detections;      ///< [keep, 4] final boxes
    Value det_scores;      ///< [keep] final scores
    Value det_features;    ///< pooled features for downstream heads
    std::vector<Value> fpn;  ///< P2..P5 maps
    int64_t keep;
};

/**
 * The shared Faster/Mask R-CNN trunk: ResNet-50 + FPN + RPN with
 * per-level decoding, proposal NMS, RoIAlign, and the box head with
 * final per-class decoding and NMS.
 */
RcnnTrunk
rcnnTrunk(GraphBuilder &b, const ModelConfig &cfg)
{
    int64_t img_h = 800, img_w = 1088;
    int64_t width = 1;
    int64_t pre_nms = 1000, post_nms = 1000, detections = 100;
    if (cfg.testScale > 1) {
        img_h = 64;
        img_w = 96;
        width = cfg.testScale;
        pre_nms = 50;
        post_nms = 20;
        detections = 5;
    }
    int64_t fpn_ch = std::max<int64_t>(8, 256 / width);

    Value x = b.input(Shape{cfg.batch, 3, img_h, img_w}, DType::F32,
                      "pixels");
    // GeneralizedRCNNTransform: per-channel normalize (sub + div).
    Value mean = b.weight(Shape{1, 3, 1, 1}, "pixel_mean");
    Value stdv = b.weight(Shape{1, 3, 1, 1}, "pixel_std");
    x = b.sub(x, mean);
    x = b.div(x, stdv);
    // torchvision's FrozenBatchNorm2d traces as element-wise aten ops.
    ResNetFeatures f = resnet50Backbone(b, x, FrozenBnStyle::Elementwise,
                                        width, "backbone");

    // --- FPN ------------------------------------------------------------
    std::vector<Value> c = {f.c2, f.c3, f.c4, f.c5};
    std::vector<Value> lat(4);
    for (int i = 0; i < 4; ++i)
        lat[static_cast<size_t>(i)] =
            b.conv2d(c[static_cast<size_t>(i)], fpn_ch, 1, 1, 0, 1, true,
                     "fpn.lateral" + std::to_string(i));
    std::vector<Value> p(4);
    p[3] = lat[3];
    for (int i = 2; i >= 0; --i) {
        const Shape &ls = b.graph().shapeOf(lat[static_cast<size_t>(i)]);
        Value up = b.interpolate(p[static_cast<size_t>(i) + 1],
                                 static_cast<int>(ls[2]),
                                 static_cast<int>(ls[3]));
        p[static_cast<size_t>(i)] =
            b.add(lat[static_cast<size_t>(i)], up);
    }
    for (int i = 0; i < 4; ++i)
        p[static_cast<size_t>(i)] =
            b.conv2d(p[static_cast<size_t>(i)], fpn_ch, 3, 1, 1, 1, true,
                     "fpn.out" + std::to_string(i));
    Value p6 = b.maxPool2d(p[3], 1, 2, 0);
    std::vector<Value> levels = p;
    levels.push_back(p6);

    // --- RPN -------------------------------------------------------------
    std::vector<Value> level_boxes, level_scores;
    int64_t total_anchors = 0;
    for (size_t li = 0; li < levels.size(); ++li) {
        std::string lp = "rpn.l" + std::to_string(li);
        Value h = b.conv2d(levels[li], fpn_ch, 3, 1, 1, 1, true,
                           lp + ".conv");
        h = b.relu(h);
        Value logits = b.conv2d(h, 3, 1, 1, 0, 1, true, lp + ".cls");
        Value deltas = b.conv2d(h, 12, 1, 1, 0, 1, true, lp + ".bbox");

        const Shape &hs = b.graph().shapeOf(logits);
        int64_t n = hs[0] * 3 * hs[2] * hs[3];
        total_anchors += n;
        // Objectness: permute + reshape + sigmoid.
        Value s = b.permute(logits, {0, 2, 3, 1});
        s = b.contiguous(s);
        s = b.view(s, Shape{n});
        s = b.sigmoid(s);
        level_scores.push_back(s);

        Value d4 = b.permute(deltas, {0, 2, 3, 1});
        d4 = b.contiguous(d4);
        d4 = b.view(d4, Shape{n, 4});
        level_boxes.push_back(boxDecode(b, d4, n, lp));
    }
    Value all_boxes = b.concat(level_boxes, 0);
    Value all_scores = b.concat(level_scores, 0);

    // Pre-NMS top-k, then NMS down to the proposal budget.
    auto [top_scores, top_idx] =
        b.topk(all_scores, static_cast<int>(std::min(pre_nms * 4,
                                                     total_anchors)));
    (void)top_idx;
    int64_t cand = b.graph().shapeOf(top_scores)[0];
    Value cand_boxes = b.slice(all_boxes, 0, 0, cand);
    Value kept = b.nms(cand_boxes, top_scores, 0.7, 0.0, post_nms);
    (void)kept;

    // --- RoIAlign + box head ----------------------------------------------
    Value rois = b.buffer(Shape{post_nms, 5}, "proposal_rois");
    Value pooled = b.roiAlign(p[0], rois, 7, 7);
    Value flat = b.reshape(pooled, Shape{post_nms, fpn_ch * 7 * 7});
    Value bh = b.linear(flat, 1024 / width, true, "box_head.fc6");
    bh = b.relu(bh);
    bh = b.linear(bh, 1024 / width, true, "box_head.fc7");
    bh = b.relu(bh);
    Value cls_logits = b.linear(bh, 91, true, "box_predictor.cls");
    Value box_deltas = b.linear(bh, 364, true, "box_predictor.bbox");

    // Final decode over every class column + softmax + NMS
    // (torchvision decodes [N, num_classes, 4] in one burst of
    // element-wise kernels, then filters by score).
    Value probs = b.softmax(cls_logits, -1);
    Value best = b.slice(probs, 1, 0, 1);
    best = b.reshape(best, Shape{post_nms});
    Value all_deltas = b.view(box_deltas, Shape{post_nms * 91, 4});
    Value decoded = boxDecode(b, all_deltas, post_nms * 91, "final");
    Value score_keep = b.where(probs, probs, probs);  // score threshold
    (void)score_keep;
    Value final_boxes = b.slice(decoded, 0, 0, post_nms);
    Value det = b.nms(final_boxes, best, 0.5, 0.05, detections);
    (void)det;

    RcnnTrunk t;
    t.detections = final_boxes;
    t.det_scores = best;
    t.det_features = bh;
    t.fpn = p;
    t.keep = detections;
    return t;
}

}  // namespace

Graph
buildFasterRcnn(const ModelConfig &cfg)
{
    Graph g;
    g.setName("faster_rcnn");
    GraphBuilder b(g);
    RcnnTrunk t = rcnnTrunk(b, cfg);
    b.output(t.detections);
    b.output(t.det_scores);
    return g;
}

Graph
buildMaskRcnn(const ModelConfig &cfg)
{
    Graph g;
    g.setName("mask_rcnn");
    GraphBuilder b(g);
    RcnnTrunk t = rcnnTrunk(b, cfg);

    // Mask head: RoIAlign at 14x14 over the detections, 4 convs, a
    // 2x upsample (deconv modeled as interpolate + conv), mask logits.
    int64_t fpn_ch = b.graph().shapeOf(t.fpn[0])[1];
    Value mask_rois = b.buffer(Shape{t.keep, 5}, "mask_rois");
    Value m = b.roiAlign(t.fpn[0], mask_rois, 14, 14);
    for (int i = 0; i < 4; ++i) {
        m = b.conv2d(m, fpn_ch, 3, 1, 1, 1, true,
                     "mask_head.conv" + std::to_string(i));
        m = b.relu(m);
    }
    m = b.interpolate(m, 28, 28);
    m = b.conv2d(m, fpn_ch, 3, 1, 1, 1, true, "mask_head.deconv");
    m = b.relu(m);
    Value logits = b.conv2d(m, 81, 1, 1, 0, 1, true, "mask_predictor");
    Value masks = b.sigmoid(logits);

    b.output(t.detections);
    b.output(t.det_scores);
    b.output(masks);
    return g;
}

}  // namespace models
}  // namespace ngb
