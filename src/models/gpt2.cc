#include <stdexcept>

#include "graph/builder.h"
#include "models/common.h"
#include "models/models.h"

namespace ngb {
namespace models {

namespace {

struct Gpt2Config {
    int64_t dim;
    int64_t depth;
    int64_t heads;
    int64_t vocab = 50257;
};

Gpt2Config
gpt2Variant(const std::string &v)
{
    if (v.empty() || v == "base")
        return {768, 12, 12};
    if (v == "l")
        return {1280, 36, 20};
    if (v == "xl")
        return {1600, 48, 25};
    throw std::runtime_error("unknown GPT2 variant: " + v);
}

}  // namespace

Graph
buildGpt2(const std::string &variant, const ModelConfig &cfg)
{
    Gpt2Config gc = gpt2Variant(variant);
    if (cfg.testScale > 1) {
        gc.dim = std::max<int64_t>(gc.heads * 4, gc.dim / cfg.testScale);
        gc.dim -= gc.dim % gc.heads;
        gc.depth = std::max<int64_t>(1, gc.depth / cfg.testScale);
        gc.vocab = 512;
    }
    int64_t t = cfg.decodeStep ? 1 : cfg.seqLen;
    int64_t cache_t = cfg.decodeStep ? cfg.seqLen : 0;
    int64_t hd = gc.dim / gc.heads;

    Graph g;
    std::string base = variant.empty() ? "gpt2" : "gpt2-" + variant;
    g.setName(cfg.decodeStep ? base + "-decode" : base);
    GraphBuilder b(g);

    Value ids = b.tokenInput(Shape{cfg.batch, t});
    Value x = b.embedding(ids, gc.vocab, gc.dim, "wte");
    Value pos = b.weight(Shape{1, t, gc.dim}, "wpe");
    x = b.add(x, pos);

    for (int64_t i = 0; i < gc.depth; ++i) {
        std::string p = "h" + std::to_string(i);
        // Attention with pre-LN, fused qkv, causal mask.
        Value h = b.layerNorm(x);
        if (cache_t > 0) {
            // Decode step: project one token, append K/V to the cache.
            Value qkv = b.linear(h, 3 * gc.dim, true, p + ".c_attn");
            auto parts = b.split(qkv, gc.dim, -1);
            Value q = splitHeadsOp(b, parts[0], gc.heads);
            Value k = splitHeadsOp(b, parts[1], gc.heads);
            Value v = splitHeadsOp(b, parts[2], gc.heads);
            Value k_cache = b.buffer(
                Shape{cfg.batch * gc.heads, cache_t, hd},
                p + ".k_cache");
            Value v_cache = b.buffer(
                Shape{cfg.batch * gc.heads, cache_t, hd},
                p + ".v_cache");
            k = b.concat({k_cache, k}, 1);
            g.node(k.node).name = p + ".kv_append";
            v = b.concat({v_cache, v}, 1);
            g.node(v.node).name = p + ".kv_append";
            Value ctx = attentionCoreOp(b, q, k, v, cfg.batch, gc.heads,
                                        hd, false);
            h = b.linear(ctx, gc.dim, true, p + ".c_proj");
        } else {
            h = multiHeadSelfAttention(b, h, gc.heads, true, true,
                                       p + ".attn");
        }
        x = b.add(x, h);
        // MLP with HuggingFace's NewGELUActivation: the tanh
        // approximation is composed of 8 primitive torch ops, each a
        // separate eager kernel (the paper's dominant GPT-2 non-GEMM).
        Value m = b.layerNorm(x);
        m = transformerMlp(b, m, gc.dim * 4, 8, p + ".mlp");
        x = b.add(x, m);
    }

    x = b.layerNorm(x);
    Value logits = b.linear(x, gc.vocab, false, "lm_head");
    b.output(logits);
    return g;
}

Graph
buildBert(const ModelConfig &cfg)
{
    int64_t dim = 768, depth = 12, heads = 12, vocab = 30522;
    if (cfg.testScale > 1) {
        dim = std::max<int64_t>(heads * 4, dim / cfg.testScale);
        dim -= dim % heads;
        depth = std::max<int64_t>(1, depth / cfg.testScale);
        vocab = 512;
    }
    int64_t t = cfg.seqLen;

    Graph g;
    g.setName("bert");
    GraphBuilder b(g);

    Value ids = b.tokenInput(Shape{cfg.batch, t});
    Value x = b.embedding(ids, vocab, dim, "word_embeddings");
    Value pos = b.weight(Shape{1, t, dim}, "position_embeddings");
    Value seg = b.weight(Shape{1, t, dim}, "token_type_embeddings");
    x = b.add(x, pos);
    x = b.add(x, seg);
    x = b.layerNorm(x);

    for (int64_t i = 0; i < depth; ++i)
        x = encoderLayerPostNorm(b, x, heads, dim * 4,
                                 "layer" + std::to_string(i));

    // Pooler over [CLS].
    Value cls = b.slice(x, 1, 0, 1);
    cls = b.reshape(cls, Shape{cfg.batch, dim});
    Value pooled = b.linear(cls, dim, true, "pooler");
    pooled = b.tanh(pooled);
    Value out = b.linear(pooled, 2, true, "classifier");
    b.output(out);
    return g;
}

}  // namespace models
}  // namespace ngb
