#include "models/common.h"

#include <cmath>

namespace ngb {
namespace models {

void
setKernels(GraphBuilder &b, Value v, int kernels)
{
    b.graph().node(v.node).attrs.set("kernels", kernels);
}

/** [B, T, D] -> [B*H, T, D/H] via view + permute + view. */
Value
splitHeadsOp(GraphBuilder &b, Value x, int64_t heads)
{
    const Shape &s = b.graph().shapeOf(x);
    int64_t bs = s[0], t = s[1], d = s[2];
    int64_t hd = d / heads;
    // view + permute only: cuBLAS strided-batched GEMM consumes the
    // permuted layout directly, so eager PyTorch does not copy here.
    Value v = b.view(x, Shape{bs, t, heads, hd});
    v = b.permute(v, {0, 2, 1, 3});
    return b.view(v, Shape{bs * heads, t, hd});
}

/** [B*H, T, D/H] -> [B, T, D] via view + permute + contiguous + view. */
Value
mergeHeadsOp(GraphBuilder &b, Value x, int64_t bs, int64_t heads)
{
    const Shape &s = b.graph().shapeOf(x);
    int64_t t = s[1], hd = s[2];
    Value v = b.view(x, Shape{bs, heads, t, hd});
    v = b.permute(v, {0, 2, 1, 3});
    v = b.contiguous(v);
    return b.view(v, Shape{bs, t, heads * hd});
}

Value
attentionCoreOp(GraphBuilder &b, Value q, Value k, Value v, int64_t bs,
                int64_t heads, int64_t head_dim, bool mask_tokens)
{
    // logits = q @ k^T / sqrt(hd); the transpose is a stride trick.
    Value kt = b.transpose(k, 1, 2);
    Value logits = b.bmm(q, kt, "attn_logits");
    logits = b.mulScalar(logits,
                         1.0 / std::sqrt(static_cast<double>(head_dim)));
    if (mask_tokens) {
        // Causal masking: one point-wise select kernel over the logits
        // (the mask itself is a cached constant in real frameworks, so
        // only the select costs anything; self-select keeps concrete
        // execution semantics intact).
        logits = b.where(logits, logits, logits);
    }
    Value probs = b.softmax(logits, -1);
    Value ctx = b.bmm(probs, v, "attn_context");
    return mergeHeadsOp(b, ctx, bs, heads);
}

Value
multiHeadSelfAttention(GraphBuilder &b, Value x, int64_t heads,
                       bool fused_qkv, bool mask_tokens,
                       const std::string &prefix)
{
    const Shape &s = b.graph().shapeOf(x);
    int64_t bs = s[0], d = s[2];
    int64_t hd = d / heads;

    Value q, k, v;
    if (fused_qkv) {
        Value qkv = b.linear(x, 3 * d, true, prefix + ".c_attn");
        auto parts = b.split(qkv, d, -1);
        q = parts[0];
        k = parts[1];
        v = parts[2];
    } else {
        q = b.linear(x, d, true, prefix + ".q_proj");
        k = b.linear(x, d, true, prefix + ".k_proj");
        v = b.linear(x, d, true, prefix + ".v_proj");
    }
    q = splitHeadsOp(b, q, heads);
    k = splitHeadsOp(b, k, heads);
    v = splitHeadsOp(b, v, heads);

    Value ctx = attentionCoreOp(b, q, k, v, bs, heads, hd, mask_tokens);
    return b.linear(ctx, d, true, prefix + ".out_proj");
}

Value
multiHeadCrossAttention(GraphBuilder &b, Value q_tokens, Value kv_tokens,
                        int64_t heads, const std::string &prefix)
{
    const Shape &qs = b.graph().shapeOf(q_tokens);
    int64_t bs = qs[0], d = qs[2];
    int64_t hd = d / heads;

    Value q = b.linear(q_tokens, d, true, prefix + ".q_proj");
    Value k = b.linear(kv_tokens, d, true, prefix + ".k_proj");
    Value v = b.linear(kv_tokens, d, true, prefix + ".v_proj");
    q = splitHeadsOp(b, q, heads);
    k = splitHeadsOp(b, k, heads);
    v = splitHeadsOp(b, v, heads);

    Value ctx = attentionCoreOp(b, q, k, v, bs, heads, hd, false);
    return b.linear(ctx, d, true, prefix + ".out_proj");
}

Value
transformerMlp(GraphBuilder &b, Value x, int64_t hidden, int gelu_kernels,
               const std::string &prefix)
{
    const Shape &s = b.graph().shapeOf(x);
    int64_t d = s.dim(-1);
    Value h = b.linear(x, hidden, true, prefix + ".fc1");
    Value a = b.gelu(h);
    if (gelu_kernels > 1)
        setKernels(b, a, gelu_kernels);
    return b.linear(a, d, true, prefix + ".fc2");
}

Value
encoderLayerPreNorm(GraphBuilder &b, Value x, int64_t heads,
                    int64_t mlp_hidden, const std::string &prefix)
{
    Value h = b.layerNorm(x);
    h = multiHeadSelfAttention(b, h, heads, false, false,
                               prefix + ".attn");
    Value y = b.add(x, h);
    Value m = b.layerNorm(y);
    m = transformerMlp(b, m, mlp_hidden, 1, prefix + ".mlp");
    return b.add(y, m);
}

Value
encoderLayerPostNorm(GraphBuilder &b, Value x, int64_t heads,
                     int64_t mlp_hidden, const std::string &prefix)
{
    Value h = multiHeadSelfAttention(b, x, heads, false, false,
                                     prefix + ".attn");
    Value y = b.layerNorm(b.add(x, h));
    Value m = transformerMlp(b, y, mlp_hidden, 1, prefix + ".mlp");
    return b.layerNorm(b.add(y, m));
}

}  // namespace models
}  // namespace ngb
