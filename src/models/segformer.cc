#include <algorithm>
#include <cmath>
#include <string>

#include "graph/builder.h"
#include "models/common.h"
#include "models/models.h"

namespace ngb {
namespace models {

namespace {

/**
 * SegFormer efficient self-attention: keys/values are computed on a
 * spatially reduced token set (strided conv by sr), which is why the
 * softmax shape of Table I is [2, 1, 16384, 256] at stage 1.
 */
Value
efficientAttention(GraphBuilder &b, Value x, int64_t batch, int64_t h,
                   int64_t w, int64_t c, int64_t heads, int64_t sr,
                   const std::string &prefix)
{
    int64_t t = h * w;
    int64_t hd = c / heads;

    Value q = b.linear(x, c, true, prefix + ".q");
    q = splitHeadsOp(b, q, heads);

    Value kv_src = x;
    int64_t kt = t;
    if (sr > 1) {
        // Reshape tokens to NCHW, strided conv, back to tokens + LN.
        Value v = b.permute(x, {0, 2, 1});
        v = b.contiguous(v);
        v = b.view(v, Shape{batch, c, h, w});
        v = b.conv2d(v, c, static_cast<int>(sr), static_cast<int>(sr), 0,
                     1, true, prefix + ".sr");
        kt = (h / sr) * (w / sr);
        v = b.view(v, Shape{batch, c, kt});
        v = b.permute(v, {0, 2, 1});
        kv_src = b.layerNorm(v);
    }
    Value k = b.linear(kv_src, c, true, prefix + ".k");
    Value v = b.linear(kv_src, c, true, prefix + ".v");
    k = splitHeadsOp(b, k, heads);
    v = splitHeadsOp(b, v, heads);

    Value ktr = b.contiguous(b.transpose(k, 1, 2));
    Value logits = b.bmm(q, ktr, prefix + ".logits");
    logits = b.mulScalar(logits,
                         1.0 / std::sqrt(static_cast<double>(hd)));
    Value probs = b.softmax(logits, -1);
    Value ctx = b.bmm(probs, v, prefix + ".ctx");
    ctx = mergeHeadsOp(b, ctx, batch, heads);
    return b.linear(ctx, c, true, prefix + ".proj");
}

/** Mix-FFN: linear -> 3x3 depthwise conv -> GELU -> linear. */
Value
mixFfn(GraphBuilder &b, Value x, int64_t batch, int64_t h, int64_t w,
       int64_t c, int64_t hidden, const std::string &prefix)
{
    Value v = b.linear(x, hidden, true, prefix + ".fc1");
    Value n = b.permute(v, {0, 2, 1});
    n = b.contiguous(n);
    n = b.view(n, Shape{batch, hidden, h, w});
    n = b.conv2d(n, hidden, 3, 1, 1, static_cast<int>(hidden), true,
                 prefix + ".dwconv");
    n = b.reshape(n, Shape{batch, hidden, h * w});
    n = b.permute(n, {0, 2, 1});
    n = b.contiguous(n);
    Value a = b.gelu(n);
    return b.linear(a, c, true, prefix + ".fc2");
}

}  // namespace

Graph
buildSegFormer(const ModelConfig &cfg)
{
    // SegFormer-B0 (MiT-B0), 512x512 ADE/COCO-style input.
    std::vector<int64_t> dims = {32, 64, 160, 256};
    std::vector<int64_t> depths = {2, 2, 2, 2};
    std::vector<int64_t> heads = {1, 2, 5, 8};
    std::vector<int64_t> srs = {8, 4, 2, 1};
    int64_t img = 512;
    int64_t decoder_dim = 256;
    if (cfg.testScale > 1) {
        img = 64;
        for (size_t i = 0; i < dims.size(); ++i) {
            dims[i] = std::max<int64_t>(heads[i] * 4,
                                        dims[i] / cfg.testScale);
            dims[i] -= dims[i] % heads[i];
        }
        decoder_dim = 32;
        srs = {2, 2, 1, 1};
    }

    Graph g;
    g.setName("segformer");
    GraphBuilder b(g);

    Value x = b.input(Shape{cfg.batch, 3, img, img}, DType::F32, "pixels");

    std::vector<Value> stage_maps;
    std::vector<std::pair<int64_t, int64_t>> stage_hw;
    Value cur = x;
    int64_t h = img, w = img;
    for (size_t s = 0; s < dims.size(); ++s) {
        std::string sp = "stage" + std::to_string(s);
        int64_t c = dims[s];
        // Overlapped patch embedding.
        if (s == 0) {
            cur = b.conv2d(cur, c, 7, 4, 3, 1, true, sp + ".patch_embed");
            h /= 4;
            w /= 4;
        } else {
            cur = b.conv2d(cur, c, 3, 2, 1, 1, true, sp + ".patch_embed");
            h /= 2;
            w /= 2;
        }
        // flatten(2).transpose(1,2): stride tricks, no copy.
        Value seq = b.view(cur, Shape{cfg.batch, c, h * w});
        seq = b.permute(seq, {0, 2, 1});
        seq = b.layerNorm(seq);

        for (int64_t blk = 0; blk < depths[s]; ++blk) {
            std::string bp = sp + ".b" + std::to_string(blk);
            Value a = b.layerNorm(seq);
            a = efficientAttention(b, a, cfg.batch, h, w, c, heads[s],
                                   srs[s], bp + ".attn");
            seq = b.add(seq, a);
            Value m = b.layerNorm(seq);
            m = mixFfn(b, m, cfg.batch, h, w, c, c * 4, bp + ".ffn");
            seq = b.add(seq, m);
        }
        seq = b.layerNorm(seq);

        // Back to NCHW for the next stage / decoder.
        Value map = b.permute(seq, {0, 2, 1});
        map = b.contiguous(map);
        map = b.view(map, Shape{cfg.batch, c, h, w});
        stage_maps.push_back(map);
        stage_hw.push_back({h, w});
        cur = map;
    }

    // --- All-MLP decode head ---------------------------------------------
    int64_t oh = stage_hw[0].first, ow = stage_hw[0].second;
    std::vector<Value> unified;
    for (size_t s = 0; s < stage_maps.size(); ++s) {
        std::string dp = "decode.l" + std::to_string(s);
        int64_t c = dims[s];
        auto [sh, sw] = stage_hw[s];
        Value seq = b.view(stage_maps[s], Shape{cfg.batch, c, sh * sw});
        seq = b.permute(seq, {0, 2, 1});
        Value proj = b.linear(seq, decoder_dim, true, dp + ".proj");
        Value map = b.permute(proj, {0, 2, 1});
        map = b.contiguous(map);
        map = b.view(map, Shape{cfg.batch, decoder_dim, sh, sw});
        if (sh != oh || sw != ow)
            map = b.interpolate(map, static_cast<int>(oh),
                                static_cast<int>(ow));
        unified.push_back(map);
    }
    Value fused = b.concat(unified, 1);
    fused = b.conv2d(fused, decoder_dim, 1, 1, 0, 1, false, "decode.fuse");
    fused = b.batchNorm2d(fused);
    fused = b.relu(fused);
    Value logits = b.conv2d(fused, 150, 1, 1, 0, 1, true,
                            "decode.classifier");
    // Upsample predictions back toward input resolution.
    logits = b.interpolate(logits, static_cast<int>(oh * 2),
                           static_cast<int>(ow * 2));
    b.output(logits);
    return g;
}

}  // namespace models
}  // namespace ngb
