#ifndef NGB_MODELS_COMMON_H
#define NGB_MODELS_COMMON_H

#include <string>

#include "graph/builder.h"

namespace ngb {
namespace models {

/**
 * Multi-head self attention written the way eager frameworks execute
 * it, with every memory-layout operator explicit: qkv projections,
 * head split (view + permute), scaled BMM logits, softmax, value BMM,
 * head merge (permute + contiguous + view), output projection.
 *
 * @param x [B, T, D] token tensor.
 * @param heads number of attention heads (D % heads == 0).
 * @param fused_qkv one [D, 3D] projection + Split (GPT-2 style) when
 *        true, three separate projections otherwise.
 * @param mask_tokens apply a causal Where mask before softmax.
 * @return [B, T, D]
 */
Value multiHeadSelfAttention(GraphBuilder &b, Value x, int64_t heads,
                             bool fused_qkv, bool mask_tokens,
                             const std::string &prefix);

/**
 * Cross attention: queries from @p q_tokens [B, Q, D], keys/values
 * from @p kv_tokens [B, T, D] (DETR / MaskFormer decoders).
 */
Value multiHeadCrossAttention(GraphBuilder &b, Value q_tokens,
                              Value kv_tokens, int64_t heads,
                              const std::string &prefix);

/**
 * Transformer MLP: fc1 -> activation -> fc2.
 *
 * @param gelu_kernels primitive-kernel count of the activation: 1 for
 *        a native aten::gelu, 8 for HuggingFace's NewGELUActivation
 *        composed of primitive torch ops (GPT-2), matching the
 *        composite-operator behaviour the paper profiles.
 */
Value transformerMlp(GraphBuilder &b, Value x, int64_t hidden,
                     int gelu_kernels, const std::string &prefix);

/**
 * Pre-norm encoder layer: x + MHSA(LN(x)), then x + MLP(LN(x)).
 * Used by ViT and (per-window) Swin.
 */
Value encoderLayerPreNorm(GraphBuilder &b, Value x, int64_t heads,
                          int64_t mlp_hidden, const std::string &prefix);

/**
 * Post-norm encoder layer: LN(x + MHSA(x)), LN(x + MLP(x)).
 * Used by BERT and the DETR encoder.
 */
Value encoderLayerPostNorm(GraphBuilder &b, Value x, int64_t heads,
                           int64_t mlp_hidden, const std::string &prefix);

/** Set the primitive-kernel count of the node producing @p v. */
void setKernels(GraphBuilder &b, Value v, int kernels);

/** [B, T, D] -> [B*H, T, D/H] via view + permute (+ contiguous). */
Value splitHeadsOp(GraphBuilder &b, Value x, int64_t heads);

/** [B*H, T, hd] -> [B, T, H*hd] via view + permute + contiguous. */
Value mergeHeadsOp(GraphBuilder &b, Value x, int64_t batch, int64_t heads);

/**
 * Scaled-dot-product attention over per-head tensors
 * q,k,v: [B*H, T, hd] -> merged [B, T, D].
 */
Value attentionCoreOp(GraphBuilder &b, Value q, Value k, Value v,
                      int64_t batch, int64_t heads, int64_t head_dim,
                      bool mask_tokens);

}  // namespace models
}  // namespace ngb

#endif  // NGB_MODELS_COMMON_H
