#include <algorithm>
#include <string>

#include "graph/builder.h"
#include "models/common.h"
#include "models/models.h"

namespace ngb {
namespace models {

/**
 * MobileNetV2 (Sandler et al., the paper's [51]): inverted residual
 * bottlenecks built from 1x1 expand, 3x3 depthwise, 1x1 project, each
 * followed by BatchNorm and ReLU6 — a CNN whose depthwise convolutions
 * are bandwidth-bound rather than compute-bound, stressing a different
 * corner of the GEMM/non-GEMM balance than ResNet.
 */
namespace {

Value
convBnAct(GraphBuilder &b, Value x, int64_t out_ch, int kernel, int stride,
          int groups, bool act, const std::string &name)
{
    int pad = kernel / 2;
    Value v = b.conv2d(x, out_ch, kernel, stride, pad, groups, false,
                       name);
    v = b.batchNorm2d(v);
    setKernels(b, v, 1);  // eval-mode aten::batch_norm
    if (act) {
        // ReLU6 = clamp: one point-wise select kernel.
        v = b.relu(v);
    }
    return v;
}

Value
invertedResidual(GraphBuilder &b, Value x, int64_t out_ch, int stride,
                 int64_t expand, const std::string &prefix)
{
    const Shape &xs = b.graph().shapeOf(x);
    int64_t in_ch = xs[1];
    int64_t hidden = in_ch * expand;
    Value v = x;
    if (expand != 1)
        v = convBnAct(b, v, hidden, 1, 1, 1, true, prefix + ".expand");
    v = convBnAct(b, v, hidden, 3, stride,
                  static_cast<int>(hidden), true, prefix + ".dw");
    v = convBnAct(b, v, out_ch, 1, 1, 1, false, prefix + ".project");
    if (stride == 1 && in_ch == out_ch)
        v = b.add(x, v);
    return v;
}

}  // namespace

Graph
buildMobileNetV2(const ModelConfig &cfg)
{
    int64_t img = cfg.imageSize > 0 ? cfg.imageSize : 224;
    int64_t width = 1;
    if (cfg.testScale > 1) {
        img = 64;
        width = cfg.testScale;
    }
    auto ch = [width](int64_t c) {
        return std::max<int64_t>(4, c / width);
    };

    Graph g;
    g.setName("mobilenet_v2");
    GraphBuilder b(g);
    Value x = b.input(Shape{cfg.batch, 3, img, img}, DType::F32,
                      "pixels");
    Value v = convBnAct(b, x, ch(32), 3, 2, 1, true, "stem");

    // (expand, out_ch, repeats, stride) per the MobileNetV2 table.
    struct Stage {
        int64_t t, c, n;
        int s;
    };
    const Stage stages[] = {{1, 16, 1, 1},  {6, 24, 2, 2},
                            {6, 32, 3, 2},  {6, 64, 4, 2},
                            {6, 96, 3, 1},  {6, 160, 3, 2},
                            {6, 320, 1, 1}};
    int blk = 0;
    for (const Stage &st : stages) {
        for (int64_t i = 0; i < st.n; ++i) {
            int stride = i == 0 ? st.s : 1;
            v = invertedResidual(b, v, ch(st.c), stride, st.t,
                                 "block" + std::to_string(blk++));
        }
    }
    v = convBnAct(b, v, ch(1280), 1, 1, 1, true, "head_conv");
    v = b.adaptiveAvgPool2d(v, 1, 1);
    const Shape &ps = b.graph().shapeOf(v);
    v = b.reshape(v, Shape{cfg.batch, ps[1]});
    Value logits = b.linear(v, 1000, true, "classifier");
    b.output(logits);
    return g;
}

/**
 * VGG-16 (the paper's [52]): the all-conv, norm-free CNN extreme —
 * nearly pure GEMM work, a useful lower bound for non-GEMM share.
 */
Graph
buildVgg16(const ModelConfig &cfg)
{
    int64_t img = cfg.imageSize > 0 ? cfg.imageSize : 224;
    int64_t width = 1;
    if (cfg.testScale > 1) {
        img = 64;
        width = cfg.testScale;
    }
    auto ch = [width](int64_t c) {
        return std::max<int64_t>(4, c / width);
    };

    Graph g;
    g.setName("vgg16");
    GraphBuilder b(g);
    Value x = b.input(Shape{cfg.batch, 3, img, img}, DType::F32,
                      "pixels");
    const int64_t plan[][2] = {{64, 2}, {128, 2}, {256, 3},
                               {512, 3}, {512, 3}};
    Value v = x;
    int conv_id = 0;
    for (const auto &stage : plan) {
        for (int64_t i = 0; i < stage[1]; ++i) {
            v = b.conv2d(v, ch(stage[0]), 3, 1, 1, 1, true,
                         "conv" + std::to_string(conv_id++));
            v = b.relu(v);
        }
        v = b.maxPool2d(v, 2, 2, 0);
    }
    const Shape &fs = b.graph().shapeOf(v);
    v = b.reshape(v, Shape{cfg.batch, fs[1] * fs[2] * fs[3]});
    v = b.linear(v, ch(4096), true, "fc6");
    v = b.relu(v);
    v = b.linear(v, ch(4096), true, "fc7");
    v = b.relu(v);
    Value logits = b.linear(v, 1000, true, "fc8");
    b.output(logits);
    return g;
}

}  // namespace models
}  // namespace ngb
