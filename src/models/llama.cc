#include <algorithm>
#include <string>

#include "graph/builder.h"
#include "models/common.h"
#include "models/models.h"

namespace ngb {
namespace models {

namespace {

struct LlamaConfig {
    int64_t dim;
    int64_t depth;
    int64_t heads;
    int64_t kvHeads;  ///< < heads enables grouped-query attention
    int64_t ffn;
    int64_t vocab;
};

/**
 * Rotary position embedding exactly as HuggingFace executes it in
 * eager mode: rotate_half is two slices + neg + concat, then two
 * broadcast multiplies with the cached cos/sin tables and an add —
 * a burst of Memory and Element-wise non-GEMM ops per projection.
 */
Value
applyRotary(GraphBuilder &b, Value x, Value cos_w, Value sin_w)
{
    const Shape &s = b.graph().shapeOf(x);  // [B*H, T, hd]
    int64_t hd = s.dim(-1);
    Value x1 = b.slice(x, -1, 0, hd / 2);
    Value x2 = b.slice(x, -1, hd / 2, hd - hd / 2);
    Value rot = b.concat({b.neg(x2), x1}, -1);
    Value a = b.mul(x, cos_w);
    Value c = b.mul(rot, sin_w);
    return b.add(a, c);
}

/** Repeat KV heads for grouped-query attention (expand + reshape). */
Value
repeatKv(GraphBuilder &b, Value kv, int64_t batch, int64_t kv_heads,
         int64_t groups)
{
    if (groups == 1)
        return kv;
    const Shape &s = b.graph().shapeOf(kv);  // [B*KVH, T, hd]
    int64_t t = s[1], hd = s[2];
    Value v = b.view(kv, Shape{batch, kv_heads, 1, t, hd});
    v = b.expand(v, Shape{batch, kv_heads, groups, t, hd});
    v = b.contiguous(v);
    return b.view(v, Shape{batch * kv_heads * groups, t, hd});
}

Graph
buildLlamaFamily(const std::string &name, LlamaConfig lc,
                 const ModelConfig &cfg)
{
    if (cfg.testScale > 1) {
        lc.dim = std::max<int64_t>(lc.heads * 4, lc.dim / cfg.testScale);
        lc.dim -= lc.dim % lc.heads;
        lc.ffn = std::max<int64_t>(8, lc.ffn / cfg.testScale);
        lc.depth = std::max<int64_t>(1, lc.depth / cfg.testScale);
        lc.vocab = 512;
    }
    // Prefill processes seqLen query tokens; a decode step processes
    // one query token against a seqLen-entry KV cache.
    int64_t t = cfg.decodeStep ? 1 : cfg.seqLen;
    int64_t cache_t = cfg.decodeStep ? cfg.seqLen : 0;
    int64_t hd = lc.dim / lc.heads;
    int64_t kv_dim = lc.kvHeads * hd;
    int64_t groups = lc.heads / lc.kvHeads;

    Graph g;
    g.setName(cfg.decodeStep ? name + "-decode" : name);
    GraphBuilder b(g);

    Value ids = b.tokenInput(Shape{cfg.batch, t});
    Value x = b.embedding(ids, lc.vocab, lc.dim, "embed_tokens");

    // Cached rotary tables, broadcast over batch*heads.
    Value cos_w = b.weight(Shape{1, t, hd}, "rotary_cos");
    Value sin_w = b.weight(Shape{1, t, hd}, "rotary_sin");

    for (int64_t i = 0; i < lc.depth; ++i) {
        std::string p = "layer" + std::to_string(i);

        // HF LlamaRMSNorm is a composite of primitive torch kernels
        // (pow, mean, add-eps, rsqrt, mul, weight-mul).
        Value h = b.rmsNorm(x);
        setKernels(b, h, 8);
        b.graph().node(h.node).attrs.set("big_kernels", 3);

        Value q = b.linear(h, lc.dim, false, p + ".q_proj");
        Value k = b.linear(h, kv_dim, false, p + ".k_proj");
        Value v = b.linear(h, kv_dim, false, p + ".v_proj");
        q = splitHeadsOp(b, q, lc.heads);
        k = splitHeadsOp(b, k, lc.kvHeads);
        v = splitHeadsOp(b, v, lc.kvHeads);
        q = applyRotary(b, q, cos_w, sin_w);
        k = applyRotary(b, k, cos_w, sin_w);
        if (cache_t > 0) {
            // generate(): append the new K/V row to the layer cache —
            // a real copy of the whole cache every step.
            Value k_cache = b.buffer(
                Shape{cfg.batch * lc.kvHeads, cache_t, hd},
                p + ".k_cache");
            Value v_cache = b.buffer(
                Shape{cfg.batch * lc.kvHeads, cache_t, hd},
                p + ".v_cache");
            k = b.concat({k_cache, k}, 1);
            g.node(k.node).name = p + ".kv_append";
            v = b.concat({v_cache, v}, 1);
            g.node(v.node).name = p + ".kv_append";
        }
        k = repeatKv(b, k, cfg.batch, lc.kvHeads, groups);
        v = repeatKv(b, v, cfg.batch, lc.kvHeads, groups);

        Value ctx = attentionCoreOp(b, q, k, v, cfg.batch, lc.heads, hd,
                                    true);
        Value attn_out = b.linear(ctx, lc.dim, false, p + ".o_proj");
        x = b.add(x, attn_out);

        // Gated SiLU MLP.
        Value h2 = b.rmsNorm(x);
        setKernels(b, h2, 8);
        b.graph().node(h2.node).attrs.set("big_kernels", 3);
        Value gate = b.linear(h2, lc.ffn, false, p + ".gate_proj");
        Value up = b.linear(h2, lc.ffn, false, p + ".up_proj");
        Value act = b.silu(gate);
        Value prod = b.mul(act, up);
        Value down = b.linear(prod, lc.dim, false, p + ".down_proj");
        x = b.add(x, down);
    }

    Value fin = b.rmsNorm(x);
    setKernels(b, fin, 8);
    b.graph().node(fin.node).attrs.set("big_kernels", 3);
    Value logits = b.linear(fin, lc.vocab, false, "lm_head");
    b.output(logits);
    return g;
}

}  // namespace

Graph
buildLlama2(const ModelConfig &cfg)
{
    // Llama 2 7B: MHA (no GQA), SwiGLU 11008, 32k vocab.
    return buildLlamaFamily("llama2-7b",
                            {4096, 32, 32, 32, 11008, 32000}, cfg);
}

Graph
buildLlama3(const ModelConfig &cfg)
{
    // Llama 3 8B: GQA with 8 KV heads, SwiGLU 14336, 128k vocab.
    return buildLlamaFamily("llama3-8b",
                            {4096, 32, 32, 8, 14336, 128256}, cfg);
}

}  // namespace models
}  // namespace ngb
