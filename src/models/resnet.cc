#include "models/resnet.h"

#include <algorithm>

#include "models/common.h"
#include "models/models.h"

namespace ngb {
namespace models {

namespace {

/** Conv + FrozenBatchNorm (+ optional ReLU). */
Value
convBn(GraphBuilder &b, Value x, int64_t out_ch, int kernel, int stride,
       int padding, FrozenBnStyle style, bool relu,
       const std::string &name)
{
    Value v = b.conv2d(x, out_ch, kernel, stride, padding, 1, false, name);
    Value n;
    if (style == FrozenBnStyle::NativeBn) {
        // Eval-mode nn.BatchNorm2d: a single fused aten kernel.
        n = b.batchNorm2d(v, /*frozen=*/false);
        setKernels(b, n, 1);
    } else if (style == FrozenBnStyle::NormModule) {
        // 7 launches per forward (rsqrt/mul/sub stat kernels + the two
        // full passes); only the passes traverse the feature map.
        n = b.batchNorm2d(v, /*frozen=*/true);
        setKernels(b, n, 7);
        b.graph().node(n.node).attrs.set("big_kernels", 2);
    } else {
        // The same computation traced at aten granularity: a big mul
        // and a big add, each dragging along the small stat kernels.
        const Shape &vs = b.graph().shapeOf(v);
        Value scale = b.weight(Shape{1, vs[1], 1, 1}, name + ".bn_scale");
        Value bias = b.weight(Shape{1, vs[1], 1, 1}, name + ".bn_bias");
        Value m = b.mul(v, scale);
        setKernels(b, m, 3);
        b.graph().node(m.node).attrs.set("big_kernels", 1);
        n = b.add(m, bias);
        setKernels(b, n, 2);
        b.graph().node(n.node).attrs.set("big_kernels", 1);
    }
    return relu ? b.relu(n) : n;
}

/** Standard ResNet bottleneck: 1x1 -> 3x3 -> 1x1 with residual. */
Value
bottleneck(GraphBuilder &b, Value x, int64_t mid, int64_t out_ch,
           int stride, bool downsample, FrozenBnStyle style,
           const std::string &prefix)
{
    Value v = convBn(b, x, mid, 1, 1, 0, style, true, prefix + ".conv1");
    v = convBn(b, v, mid, 3, stride, 1, style, true, prefix + ".conv2");
    v = convBn(b, v, out_ch, 1, 1, 0, style, false, prefix + ".conv3");
    Value identity = x;
    if (downsample)
        identity = convBn(b, x, out_ch, 1, stride, 0, style, false,
                          prefix + ".downsample");
    Value sum = b.add(v, identity);
    return b.relu(sum);
}

Value
stage(GraphBuilder &b, Value x, int blocks, int64_t mid, int64_t out_ch,
      int stride, FrozenBnStyle style, const std::string &prefix)
{
    Value v = bottleneck(b, x, mid, out_ch, stride, true, style,
                         prefix + ".0");
    for (int i = 1; i < blocks; ++i)
        v = bottleneck(b, v, mid, out_ch, 1, false, style,
                       prefix + "." + std::to_string(i));
    return v;
}

}  // namespace

ResNetFeatures
resnet50Backbone(GraphBuilder &b, Value image, FrozenBnStyle style,
                 int64_t width, const std::string &prefix)
{
    auto ch = [width](int64_t c) {
        return std::max<int64_t>(4, c / width);
    };

    Value v = convBn(b, image, ch(64), 7, 2, 3, style, true,
                     prefix + ".stem");
    v = b.maxPool2d(v, 3, 2, 1);

    ResNetFeatures f;
    f.c2 = stage(b, v, 3, ch(64), ch(256), 1, style, prefix + ".layer1");
    f.c3 = stage(b, f.c2, 4, ch(128), ch(512), 2, style,
                 prefix + ".layer2");
    f.c4 = stage(b, f.c3, 6, ch(256), ch(1024), 2, style,
                 prefix + ".layer3");
    f.c5 = stage(b, f.c4, 3, ch(512), ch(2048), 2, style,
                 prefix + ".layer4");
    return f;
}

Graph
buildResNet50(const ModelConfig &cfg)
{
    int64_t img = cfg.imageSize > 0 ? cfg.imageSize : 224;
    int64_t width = 1;
    if (cfg.testScale > 1) {
        img = 64;
        width = cfg.testScale;
    }
    Graph g;
    g.setName("resnet50");
    GraphBuilder b(g);
    Value x = b.input(Shape{cfg.batch, 3, img, img}, DType::F32,
                      "pixels");
    ResNetFeatures f =
        resnet50Backbone(b, x, FrozenBnStyle::NativeBn, width, "resnet");
    Value pooled = b.adaptiveAvgPool2d(f.c5, 1, 1);
    const Shape &ps = b.graph().shapeOf(pooled);
    pooled = b.reshape(pooled, Shape{cfg.batch, ps[1]});
    Value logits = b.linear(pooled, 1000, true, "fc");
    b.output(logits);
    return g;
}

}  // namespace models
}  // namespace ngb