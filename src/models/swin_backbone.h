#ifndef NGB_MODELS_SWIN_BACKBONE_H
#define NGB_MODELS_SWIN_BACKBONE_H

#include <string>
#include <vector>

#include "graph/builder.h"

namespace ngb {
namespace models {

/** Architecture hyper-parameters of a Swin Transformer backbone. */
struct SwinSpec {
    int64_t embedDim;
    std::vector<int64_t> depths;
    std::vector<int64_t> heads;
    int64_t window;
};

/** Token tensor of one backbone stage, with its spatial layout. */
struct SwinStage {
    Value tokens;  ///< [B, h*w, c]
    int64_t h;
    int64_t w;
    int64_t c;
};

struct SwinFeatures {
    std::vector<SwinStage> stages;  ///< one entry per stage, stride 4..32
};

/** Specs for the "t", "s", "b" variants of Table II. */
SwinSpec swinVariant(const std::string &v);

/**
 * Build the full hierarchical Swin backbone on @p image (NCHW), with
 * the eager-mode window partition/reverse, cyclic roll, and patch
 * merging memory operators made explicit. Shared between the Swin
 * classifiers and MaskFormer.
 */
SwinFeatures buildSwinBackbone(GraphBuilder &b, Value image,
                               const SwinSpec &spec,
                               const std::string &prefix);

}  // namespace models
}  // namespace ngb

#endif  // NGB_MODELS_SWIN_BACKBONE_H
