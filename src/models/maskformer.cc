#include <algorithm>
#include <string>

#include "graph/builder.h"
#include "models/common.h"
#include "models/models.h"
#include "models/swin_backbone.h"

namespace ngb {
namespace models {

/**
 * MaskFormer (Swin-B backbone): hierarchical Swin features, an FPN
 * pixel decoder with GroupNorm, a 6-layer transformer decoder over 100
 * mask queries, and per-query mask embedding multiplied into the pixel
 * embedding. The Swin backbone's window partition/reverse traffic is
 * why Memory dominates MaskFormer's non-GEMM time (Table IV: 40.8%).
 */
Graph
buildMaskFormer(const ModelConfig &cfg)
{
    // maskformer-swin-base-coco resizes COCO images to ~800 px on the
    // short side; the non-divisible stages (200/100/50/25 vs window 12)
    // force HF's maybe_pad copies in every block.
    SwinSpec spec{128, {2, 2, 18, 2}, {4, 8, 16, 32}, 12};
    int64_t img = 800;
    int64_t d = 256, heads = 8, ffn = 2048, queries = 100;
    int64_t dec_layers = 6;
    if (cfg.testScale > 1) {
        spec.embedDim = std::max<int64_t>(spec.heads[0] * 4,
                                          spec.embedDim / cfg.testScale);
        spec.embedDim -= spec.embedDim % spec.heads[0];
        for (auto &dep : spec.depths)
            dep = std::max<int64_t>(1, dep / cfg.testScale);
        spec.window = 2;
        img = 64;
        d = std::max<int64_t>(heads * 4, d / cfg.testScale);
        d -= d % heads;
        ffn = std::max<int64_t>(8, ffn / cfg.testScale);
        queries = 10;
        dec_layers = 1;
    }

    Graph g;
    g.setName("maskformer");
    GraphBuilder b(g);

    Value x = b.input(Shape{cfg.batch, 3, img, img}, DType::F32, "pixels");
    SwinFeatures f = buildSwinBackbone(b, x, spec, "swin");

    // --- Pixel decoder (FPN with GroupNorm) -----------------------------
    auto toNchw = [&](const SwinStage &s) {
        Value v = b.permute(s.tokens, {0, 2, 1});
        v = b.contiguous(v);
        return b.view(v, Shape{cfg.batch, s.c, s.h, s.w});
    };

    std::vector<Value> maps;
    for (const SwinStage &s : f.stages)
        maps.push_back(toNchw(s));

    Value prev;
    for (int i = static_cast<int>(maps.size()) - 1; i >= 0; --i) {
        std::string lp = "pixel_decoder.l" + std::to_string(i);
        Value lat = b.conv2d(maps[static_cast<size_t>(i)], d, 1, 1, 0, 1,
                             false, lp + ".lateral");
        lat = b.groupNorm(lat, 32);
        if (prev.valid()) {
            const Shape &ls = b.graph().shapeOf(lat);
            Value up = b.interpolate(prev, static_cast<int>(ls[2]),
                                     static_cast<int>(ls[3]));
            lat = b.add(lat, up);
        }
        Value out = b.conv2d(lat, d, 3, 1, 1, 1, false, lp + ".out");
        out = b.groupNorm(out, 32);
        out = b.relu(out);
        prev = out;
    }
    // Per-pixel mask features at stride 4.
    Value mask_features =
        b.conv2d(prev, d, 3, 1, 1, 1, true, "pixel_decoder.mask_features");

    // --- Transformer decoder over the coarsest feature map --------------
    const SwinStage &c5 = f.stages.back();
    Value mem = b.conv2d(maps.back(), d, 1, 1, 0, 1, true,
                         "transformer.input_proj");
    Value mem_seq = b.reshape(mem, Shape{cfg.batch, d, c5.h * c5.w});
    mem_seq = b.permute(mem_seq, {0, 2, 1});
    mem_seq = b.contiguous(mem_seq);
    Value pos = b.weight(Shape{1, c5.h * c5.w, d}, "pos_embed");
    mem_seq = b.add(mem_seq, pos);

    Value qw = b.weight(Shape{1, queries, d}, "query_embed");
    Value q = b.contiguous(b.expand(qw, Shape{cfg.batch, queries, d}));
    for (int64_t i = 0; i < dec_layers; ++i) {
        std::string lp = "decoder" + std::to_string(i);
        Value h = multiHeadSelfAttention(b, q, heads, false, false,
                                         lp + ".self_attn");
        q = b.layerNorm(b.add(q, h));
        Value c = multiHeadCrossAttention(b, q, mem_seq, heads,
                                          lp + ".cross_attn");
        q = b.layerNorm(b.add(q, c));
        Value m = transformerMlp(b, q, ffn, 1, lp + ".mlp");
        q = b.layerNorm(b.add(q, m));
    }

    // --- Heads ------------------------------------------------------------
    Value cls = b.linear(q, 134, true, "class_head");
    b.output(cls);

    Value emb = b.linear(q, d, true, "mask_embed.0");
    emb = b.relu(emb);
    emb = b.linear(emb, d, true, "mask_embed.1");
    emb = b.relu(emb);
    emb = b.linear(emb, d, true, "mask_embed.2");

    // masks = einsum("bqc,bchw->bqhw"): flatten + BMM + view.
    const Shape &ms = b.graph().shapeOf(mask_features);
    Value flat = b.reshape(mask_features,
                           Shape{cfg.batch, d, ms[2] * ms[3]});
    Value masks = b.bmm(emb, flat, "mask_einsum");
    masks = b.view(masks, Shape{cfg.batch, queries, ms[2], ms[3]});
    masks = b.sigmoid(masks);
    b.output(masks);
    return g;
}

}  // namespace models
}  // namespace ngb
