#include "models/registry.h"

#include <stdexcept>

#include "models/models.h"

namespace ngb {
namespace models {

const std::vector<ModelInfo> &
modelRegistry()
{
    static const std::vector<ModelInfo> kRegistry = {
        // Image classification.
        {"vit_b", "Vt-b", "IC", "ImageNet", false, 0,
         [](const ModelConfig &c) { return buildViT("b", c); }},
        {"vit_l", "Vt-l", "IC", "ImageNet", false, 0,
         [](const ModelConfig &c) { return buildViT("l", c); }},
        {"vit_h", "Vt-h", "IC", "ImageNet", false, 0,
         [](const ModelConfig &c) { return buildViT("h", c); }},
        {"swin_t", "Sw-t", "IC", "ImageNet", false, 0,
         [](const ModelConfig &c) { return buildSwin("t", c); }},
        {"swin_s", "Sw-s", "IC", "ImageNet", false, 0,
         [](const ModelConfig &c) { return buildSwin("s", c); }},
        {"swin_b", "Sw-b", "IC", "ImageNet", false, 0,
         [](const ModelConfig &c) { return buildSwin("b", c); }},

        // Object detection.
        {"faster_rcnn", "FRCNN", "OD", "COCO", false, 0, buildFasterRcnn},
        {"mask_rcnn", "MRCNN", "OD", "COCO", false, 0, buildMaskRcnn},
        {"detr", "DETR", "OD", "COCO", false, 0, buildDetr},

        // Image segmentation.
        {"maskformer", "MF", "IS", "COCO", false, 0, buildMaskFormer},
        {"segformer", "Seg", "IS", "COCO", false, 0, buildSegFormer},

        // NLP.
        {"gpt2", "gpt2", "NLP", "wikitext", false, 8,
         [](const ModelConfig &c) { return buildGpt2("", c); }},
        {"gpt2_l", "gpt2-l", "NLP", "wikitext", false, 8,
         [](const ModelConfig &c) { return buildGpt2("l", c); }},
        {"gpt2_xl", "gpt2-xl", "NLP", "wikitext", false, 8,
         [](const ModelConfig &c) { return buildGpt2("xl", c); }},
        {"llama2", "llama2", "NLP", "wikitext", true, 10, buildLlama2},
        {"bert", "bert", "NLP", "wikitext", false, 128, buildBert},
        {"mixtral", "mixtral", "NLP", "wikitext", true, 10, buildMixtral},

        // Quantization case-study subject (Figure 9).
        {"llama3", "llama3-8b", "NLP", "wikitext", true, 512, buildLlama3},

        // Extension beyond Table II: the CNN baseline of Figure 3 (a),
        // demonstrating the registry's plug-in path for new models.
        {"resnet50", "RN50", "IC", "ImageNet", false, 0, buildResNet50},
        {"mobilenet_v2", "MNv2", "IC", "ImageNet", false, 0,
         buildMobileNetV2},
        {"vgg16", "VGG16", "IC", "ImageNet", false, 0, buildVgg16},
    };
    return kRegistry;
}

const ModelInfo &
findModel(const std::string &name)
{
    for (const ModelInfo &m : modelRegistry())
        if (m.name == name)
            return m;
    throw std::runtime_error("unknown model: " + name);
}

std::vector<std::string>
paperModelNames()
{
    std::vector<std::string> out;
    for (const ModelInfo &m : modelRegistry())
        if (m.name != "llama3" && m.name != "resnet50" &&
            m.name != "mobilenet_v2" && m.name != "vgg16")
            out.push_back(m.name);
    return out;
}

}  // namespace models
}  // namespace ngb
