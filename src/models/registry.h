#ifndef NGB_MODELS_REGISTRY_H
#define NGB_MODELS_REGISTRY_H

#include <functional>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "models/model_config.h"

namespace ngb {
namespace models {

/**
 * One entry of the NonGEMM Bench model registry (paper Table II, plus
 * Llama3-8B from the quantization study).
 */
struct ModelInfo {
    std::string name;         ///< registry key, e.g. "swin_b"
    std::string displayName;  ///< paper label, e.g. "Sw-b"
    std::string task;         ///< "IC", "OD", "IS", or "NLP"
    std::string dataset;      ///< dataset the paper profiled on
    bool halfPrecision;       ///< deployed in FP16 (large LLMs)
    int64_t defaultSeqLen;    ///< captured wikitext query length (NLP)
    std::function<Graph(const ModelConfig &)> build;
};

/** All registered models, in Table II order. */
const std::vector<ModelInfo> &modelRegistry();

/** Look up a model by registry key; throws for unknown names. */
const ModelInfo &findModel(const std::string &name);

/** The 17 Table II models (excludes the Llama3 quantization subject). */
std::vector<std::string> paperModelNames();

}  // namespace models
}  // namespace ngb

#endif  // NGB_MODELS_REGISTRY_H
