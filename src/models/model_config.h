#ifndef NGB_MODELS_MODEL_CONFIG_H
#define NGB_MODELS_MODEL_CONFIG_H

#include <cstdint>

namespace ngb {

/**
 * Workload configuration for a model-graph builder.
 *
 * Paper-scale defaults reproduce the shapes the paper captured on real
 * datasets (Table I): batch 1/8, short wikitext queries for decoder
 * LLMs, ImageNet 224x224 crops, COCO ~800x1066 images.
 *
 * testScale shrinks hidden dimensions and layer counts so the same
 * builders produce small graphs that concrete-execution tests can run
 * end to end on the host.
 */
struct ModelConfig {
    int64_t batch = 1;

    /** NLP: input sequence length (prefill) or KV-cache length when
     *  decodeStep is set. */
    int64_t seqLen = 8;

    /**
     * NLP: build one autoregressive decode step instead of a prefill
     * forward — a single query token attending to a seqLen-long KV
     * cache, with the cache-append Concat ops HF generate() executes
     * per layer. This is the regime behind the paper's LLM latencies.
     */
    bool decodeStep = false;

    /** CV: input image height (width derived per model). */
    int64_t imageSize = 0;  // 0 = model default

    /**
     * Divide hidden dims / depths by this factor for test-size graphs
     * (1 = paper scale). Builders round to keep head counts valid.
     */
    int64_t testScale = 1;

    ModelConfig withBatch(int64_t b) const
    {
        ModelConfig c = *this;
        c.batch = b;
        return c;
    }

    ModelConfig withSeqLen(int64_t s) const
    {
        ModelConfig c = *this;
        c.seqLen = s;
        return c;
    }
};

}  // namespace ngb

#endif  // NGB_MODELS_MODEL_CONFIG_H
