#include <algorithm>
#include <string>

#include "graph/builder.h"
#include "models/common.h"
#include "models/models.h"
#include "models/resnet.h"

namespace ngb {
namespace models {

namespace {

/**
 * DETR decoder layer: query self-attention, cross-attention into the
 * encoder memory, MLP — each post-normed with residuals.
 */
Value
detrDecoderLayer(GraphBuilder &b, Value queries, Value memory,
                 int64_t heads, int64_t ffn, const std::string &prefix)
{
    Value h = multiHeadSelfAttention(b, queries, heads, false, false,
                                     prefix + ".self_attn");
    Value q = b.layerNorm(b.add(queries, h));
    Value c = multiHeadCrossAttention(b, q, memory, heads,
                                      prefix + ".cross_attn");
    Value q2 = b.layerNorm(b.add(q, c));
    Value m = transformerMlp(b, q2, ffn, 1, prefix + ".mlp");
    return b.layerNorm(b.add(q2, m));
}

}  // namespace

Graph
buildDetr(const ModelConfig &cfg)
{
    // COCO-scale input; 800x1088 puts the C5 map at 25x34 = 850 tokens,
    // the encoder shape the paper reports in Table I.
    int64_t img_h = 800, img_w = 1088;
    int64_t d = 256, heads = 8, ffn = 2048;
    int64_t enc_layers = 6, dec_layers = 6, queries = 100;
    int64_t width = 1;
    if (cfg.testScale > 1) {
        img_h = 64;
        img_w = 96;
        width = cfg.testScale;
        d = std::max<int64_t>(heads * 4, d / cfg.testScale);
        d -= d % heads;
        ffn = std::max<int64_t>(8, ffn / cfg.testScale);
        enc_layers = dec_layers = 1;
        queries = 10;
    }

    Graph g;
    g.setName("detr");
    GraphBuilder b(g);

    Value x = b.input(Shape{cfg.batch, 3, img_h, img_w}, DType::F32,
                      "pixels");

    // ResNet-50 with DETR's custom FrozenBatchNorm2d, a Python
    // composite that eager mode runs as ~6 independent kernels — the
    // source of DETR's dominant Normalization latency (Table IV).
    ResNetFeatures f = resnet50Backbone(b, x, FrozenBnStyle::NormModule,
                                        width, "backbone");

    // 1x1 projection to the transformer width, then flatten to tokens.
    Value proj = b.conv2d(f.c5, d, 1, 1, 0, 1, true, "input_proj");
    const Shape &ps = b.graph().shapeOf(proj);
    int64_t tokens = ps[2] * ps[3];
    Value seq = b.reshape(proj, Shape{cfg.batch, d, tokens});
    seq = b.permute(seq, {0, 2, 1});
    seq = b.contiguous(seq);

    // Sine position embeddings are cached; adding them is one kernel.
    Value pos = b.weight(Shape{1, tokens, d}, "pos_embed");
    seq = b.add(seq, pos);

    for (int64_t i = 0; i < enc_layers; ++i)
        seq = encoderLayerPostNorm(b, seq, heads, ffn,
                                   "encoder" + std::to_string(i));

    // Learned object queries.
    Value qw = b.weight(Shape{1, queries, d}, "query_embed");
    Value q = b.expand(qw, Shape{cfg.batch, queries, d});
    q = b.contiguous(q);

    for (int64_t i = 0; i < dec_layers; ++i)
        q = detrDecoderLayer(b, q, seq, heads, ffn,
                             "decoder" + std::to_string(i));

    // Prediction heads: class logits + 3-layer box MLP with sigmoid.
    Value cls = b.linear(q, 92, true, "class_head");
    b.output(cls);
    Value box = b.linear(q, d, true, "bbox_mlp.0");
    box = b.relu(box);
    box = b.linear(box, d, true, "bbox_mlp.1");
    box = b.relu(box);
    box = b.linear(box, 4, true, "bbox_mlp.2");
    box = b.sigmoid(box);
    b.output(box);
    return g;
}

}  // namespace models
}  // namespace ngb
