#ifndef NGB_OPS_FUSED_KERNELS_H
#define NGB_OPS_FUSED_KERNELS_H

#include <vector>

#include "ops/backend.h"

/**
 * @file
 * Execution of OpKind::Fused nodes produced by applyFusion.
 *
 * Two strategies exist:
 *
 *  - evalFusedChain: interpret the folded chain member-by-member,
 *    dispatching every member through a backend's registry. Exactly
 *    the kernels the unfused graph would run, in the same order, so
 *    outputs are bit-identical to unfused execution under the same
 *    backend. This is the reference backend's Fused kernel and the
 *    universal fallback.
 *
 *  - evalFusedOptimized: the optimized backend's Fused kernel.
 *    CONV+BN(+act) triples run as ONE tiled-GEMM convolution with the
 *    BN affine pre-merged into the weights (ParamStore::derived,
 *    amortized per engine) and the activation applied in the tile
 *    write-out — numerics match the unfused chain to float tolerance
 *    (the affine merge reassociates the per-element scale). Linear +
 *    point-wise epilogues fuse into the GEMM write-out and all-unary
 *    point-wise chains run as a single-pass loop — both bit-identical
 *    to the unfused optimized kernels (same scalar expressions, same
 *    per-element order; see ops/scalar_ops.h). Everything else falls
 *    back to chain interpretation under the active backend.
 */

namespace ngb {

/**
 * Interpret the fused chain of @p c's node, dispatching members
 * through @p memberBackend. Throws a descriptive error naming the
 * fused group and the member when the chain is malformed or a member
 * operator cannot be folded (no kernel for it in the backend chain).
 */
std::vector<Tensor> evalFusedChain(const KernelContext &c,
                                   const Backend &memberBackend);

/** The optimized backend's Fused kernel (see file comment). */
std::vector<Tensor> evalFusedOptimized(const KernelContext &c);

/**
 * Pre-build the derived state evalFusedOptimized memoizes — packed
 * Linear member weights and merged Conv+BN affines — so engine warm-up
 * pays the one-time cost instead of the first request. Called from the
 * optimized backend's prepare hook.
 */
void prepareFusedGroups(const Graph &g, ParamStore &params);

}  // namespace ngb

#endif  // NGB_OPS_FUSED_KERNELS_H
