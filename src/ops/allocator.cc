#include "ops/allocator.h"

#include "tensor/scratch.h"

namespace ngb {

HeapAllocator &
HeapAllocator::instance()
{
    static HeapAllocator a;
    return a;
}

Tensor
ScratchAllocator::allocate(const Node &n, size_t i)
{
    return scratchEmpty(n.outShapes[i], n.outDtypes[i]);
}

ScratchAllocator &
ScratchAllocator::instance()
{
    static ScratchAllocator a;
    return a;
}

}  // namespace ngb
