#include "ops/backend.h"

#include <cstdlib>
#include <stdexcept>

namespace ngb {

const KernelFn &
Backend::kernelFor(OpKind k) const
{
    for (const Backend *b = this; b; b = b->fallback_)
        if (const KernelFn *fn = b->reg_.find(k))
            return *fn;
    std::string chain = name_;
    for (const Backend *b = fallback_; b; b = b->fallback_)
        chain += " -> " + b->name_;
    throw std::runtime_error("no kernel registered for op '" +
                             opKindName(k) + "' in backend '" + chain +
                             "'");
}

std::vector<Tensor>
Backend::evalTraced(const KernelContext &ctx) const
{
    obs::ScopedSpan span(obs::SpanKind::Node);
    obs::SpanEvent &ev = span.ev();
    ev.op = static_cast<int16_t>(ctx.node.kind);
    ev.cat = static_cast<int16_t>(ctx.node.category());
    ev.node = ctx.node.id;
    ev.fused = ctx.node.kind == OpKind::Fused;
    ev.backend = name_.c_str();
    if (ev.fused)
        ev.setLabel(ctx.node.name);
    if (!ctx.node.outShapes.empty())
        ev.a0 = ctx.node.outShapes[0].numel();
    ev.a1 = ctx.alloc ? ctx.alloc->plannedOffset(ctx.node, 0) : -1;
    // Output dtype, so traces distinguish int8 execution (quantized
    // GEMMs, Q/DQ) from float kernels of the same op kind.
    ev.a2 = ctx.node.outDtypes.empty()
                ? -1
                : static_cast<int64_t>(ctx.node.outDtypes[0]);
    // Fused members (re-dispatched with synthetic negative ids) get a
    // counter payload on their span but do NOT aggregate: the
    // enclosing group scope already counts their work once, under the
    // group's category — the same single-counting rule the time
    // profile applies to node_us.
    obs::CounterScope counters(
        span.armed() ? &span.ev() : nullptr,
        ctx.node.id < 0 ? -1 : static_cast<int>(ctx.node.category()));
    return kernelFor(ctx.node.kind)(ctx);
}

const Backend &
defaultBackend()
{
    static const Backend &backend = []() -> const Backend & {
        const char *env = std::getenv("NGB_BACKEND");
        return env && *env ? findBackend(env) : referenceBackend();
    }();
    return backend;
}

namespace {

/** The single source of truth for the built-in backends. */
struct BuiltinBackend {
    const char *name;
    const Backend &(*get)();
};

constexpr BuiltinBackend kBuiltins[] = {
    {"reference", referenceBackend},
    {"optimized", optimizedBackend},
    {"simd", simdBackend},
};

}  // namespace

const Backend &
findBackend(const std::string &name)
{
    for (const BuiltinBackend &b : kBuiltins)
        if (name == b.name)
            return b.get();
    std::string known;
    for (const std::string &n : backendNames())
        known += (known.empty() ? "" : ", ") + n;
    throw std::runtime_error("unknown backend '" + name +
                             "' (known backends: " + known + ")");
}

std::vector<std::string>
backendNames()
{
    std::vector<std::string> names;
    for (const BuiltinBackend &b : kBuiltins)
        names.push_back(b.name);
    return names;
}

}  // namespace ngb
