#include <cmath>
#include <stdexcept>

#include "ops/kernels.h"

namespace ngb {
namespace kernels {

Tensor
layerNorm(const Tensor &x, const Tensor &gamma, const Tensor &beta,
          float eps, Tensor dst)
{
    int64_t d = x.shape().dim(-1);
    Tensor xc = toContiguousF32(x);
    int64_t rows = xc.numel() / d;
    Tensor out = claimOut(std::move(dst), x.shape(), DType::F32);
    const float *px = xc.dataF32();
    float *po = out.dataF32();
    Tensor gc = toContiguousF32(gamma);
    Tensor bc = toContiguousF32(beta);
    const float *pg = gc.defined() ? gc.dataF32() : nullptr;
    const float *pb = bc.defined() ? bc.dataF32() : nullptr;
    for (int64_t i = 0; i < rows; ++i) {
        const float *row = px + i * d;
        float *orow = po + i * d;
        float mean = 0.0f;
        for (int64_t j = 0; j < d; ++j)
            mean += row[j];
        mean /= static_cast<float>(d);
        float var = 0.0f;
        for (int64_t j = 0; j < d; ++j) {
            float c = row[j] - mean;
            var += c * c;
        }
        var /= static_cast<float>(d);
        float inv = 1.0f / std::sqrt(var + eps);
        for (int64_t j = 0; j < d; ++j) {
            float v = (row[j] - mean) * inv;
            if (pg)
                v *= pg[j];
            if (pb)
                v += pb[j];
            orow[j] = v;
        }
    }
    return out;
}

Tensor
batchNorm2d(const Tensor &x, const Tensor &gamma, const Tensor &beta,
            const Tensor &mean, const Tensor &var, float eps, Tensor dst)
{
    if (x.shape().rank() != 4)
        throw std::runtime_error("batchNorm2d: NCHW input required");
    int64_t n = x.shape()[0], c = x.shape()[1];
    int64_t hw = x.shape()[2] * x.shape()[3];
    Tensor xc = toContiguousF32(x);
    Tensor out = claimOut(std::move(dst), x.shape(), DType::F32);
    const float *px = xc.dataF32();
    float *po = out.dataF32();
    Tensor mc = toContiguousF32(mean);
    Tensor vc = toContiguousF32(var);
    Tensor gc = toContiguousF32(gamma);
    Tensor bc = toContiguousF32(beta);
    const float *pm = mc.dataF32();
    const float *pv = vc.dataF32();
    const float *pg = gc.defined() ? gc.dataF32() : nullptr;
    const float *pb = bc.defined() ? bc.dataF32() : nullptr;
    for (int64_t img = 0; img < n; ++img) {
        for (int64_t cc = 0; cc < c; ++cc) {
            float inv = 1.0f / std::sqrt(pv[cc] + eps);
            float scale = pg ? pg[cc] * inv : inv;
            float shift = (pb ? pb[cc] : 0.0f) - pm[cc] * scale;
            const float *row = px + (img * c + cc) * hw;
            float *orow = po + (img * c + cc) * hw;
            for (int64_t j = 0; j < hw; ++j)
                orow[j] = row[j] * scale + shift;
        }
    }
    return out;
}

Tensor
rmsNorm(const Tensor &x, const Tensor &gamma, float eps, Tensor dst)
{
    int64_t d = x.shape().dim(-1);
    Tensor xc = toContiguousF32(x);
    int64_t rows = xc.numel() / d;
    Tensor out = claimOut(std::move(dst), x.shape(), DType::F32);
    const float *px = xc.dataF32();
    float *po = out.dataF32();
    Tensor gc = toContiguousF32(gamma);
    const float *pg = gc.defined() ? gc.dataF32() : nullptr;
    for (int64_t i = 0; i < rows; ++i) {
        const float *row = px + i * d;
        float *orow = po + i * d;
        float ms = 0.0f;
        for (int64_t j = 0; j < d; ++j)
            ms += row[j] * row[j];
        ms /= static_cast<float>(d);
        float inv = 1.0f / std::sqrt(ms + eps);
        for (int64_t j = 0; j < d; ++j) {
            float v = row[j] * inv;
            if (pg)
                v *= pg[j];
            orow[j] = v;
        }
    }
    return out;
}

Tensor
groupNorm(const Tensor &x, const Tensor &gamma, const Tensor &beta,
          int groups, float eps, Tensor dst)
{
    if (x.shape().rank() != 4)
        throw std::runtime_error("groupNorm: NCHW input required");
    int64_t n = x.shape()[0], c = x.shape()[1];
    int64_t hw = x.shape()[2] * x.shape()[3];
    if (c % groups != 0)
        throw std::runtime_error("groupNorm: channels not divisible");
    int64_t cg = c / groups;
    Tensor xc = toContiguousF32(x);
    Tensor out = claimOut(std::move(dst), x.shape(), DType::F32);
    const float *px = xc.dataF32();
    float *po = out.dataF32();
    Tensor gc = toContiguousF32(gamma);
    Tensor bc = toContiguousF32(beta);
    const float *pg = gc.defined() ? gc.dataF32() : nullptr;
    const float *pb = bc.defined() ? bc.dataF32() : nullptr;
    for (int64_t img = 0; img < n; ++img) {
        for (int g = 0; g < groups; ++g) {
            int64_t base = (img * c + g * cg) * hw;
            int64_t cnt = cg * hw;
            float mean = 0.0f;
            for (int64_t j = 0; j < cnt; ++j)
                mean += px[base + j];
            mean /= static_cast<float>(cnt);
            float var = 0.0f;
            for (int64_t j = 0; j < cnt; ++j) {
                float d = px[base + j] - mean;
                var += d * d;
            }
            var /= static_cast<float>(cnt);
            float inv = 1.0f / std::sqrt(var + eps);
            for (int64_t cc = 0; cc < cg; ++cc) {
                int64_t chan = g * cg + cc;
                float scale = pg ? pg[chan] * inv : inv;
                float shift =
                    (pb ? pb[chan] : 0.0f) - mean * scale;
                const float *row = px + (img * c + chan) * hw;
                float *orow = po + (img * c + chan) * hw;
                for (int64_t j = 0; j < hw; ++j)
                    orow[j] = row[j] * scale + shift;
            }
        }
    }
    return out;
}

}  // namespace kernels
}  // namespace ngb
