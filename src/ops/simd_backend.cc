#include "ops/simd_backend.h"

#include <chrono>
#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <utility>
#include <vector>

#include "ops/kernels.h"
#include "ops/optimized_kernels.h"
#include "platform/tuning_cache.h"
#include "quant/quant_kernels.h"
#include "quant/weight_pack.h"
#include "runtime/intraop.h"
#include "tensor/scratch.h"

/**
 * @file
 * Tensor plumbing for the simd backend: shape checks, operand
 * materialization, weight-layout packs, autotuner hookup, and the
 * Backend registrations. The raw kernels live in src/platform/ (one
 * TU per ISA); this file never touches intrinsics, so it compiles
 * with baseline flags and is safe to run at any dispatch level.
 */

namespace ngb {

namespace {

namespace ko = kernels::opt;
namespace kq = kernels::qnt;
using kernels::claimOut;
using simd::SimdOps;
using simd::TileConfig;
using simd::TuneKey;
using simd::TuningCache;

/** ParamStore::derived slot for the int8 dot-interleaved weight
 *  (fusion owns 0/1, quant owns 8-10). */
constexpr size_t kDotWeightSlot = 11;

std::string
shapeKey(int64_t m, int64_t k, int64_t n)
{
    return std::to_string(m) + "x" + std::to_string(k) + "x" +
           std::to_string(n);
}

/** Below this the sharding overhead exceeds the GEMM itself (same
 *  threshold as the f32 core in optimized_kernels.cc). */
constexpr int64_t kParMinFlops = 1 << 17;

int
parThreads(const ParallelRegion *par)
{
    return par ? par->threads() : 1;
}

/**
 * One f32 GEMM through @p ops, sharded into macro-tiles across
 * @p par's workers when profitable, serial otherwise. Shards call
 * gemmF32Strided on row-band x column-slice sub-problems with the
 * full K per shard — the per-element k chain is never split, so the
 * result is bit-identical to one serial gemmF32 call (simd.h
 * numerics contract) at every thread count.
 */
void
simdGemmPar(const SimdOps *ops, const ParallelRegion *par,
            const float *A, const float *B, float *C, int64_t m,
            int64_t k, int64_t n, const float *bias,
            const TileConfig &tile)
{
    const int threads = parThreads(par);
    if (threads <= 1 || 2 * m * n * k < kParMinFlops) {
        ops->gemmF32(A, B, C, m, k, n, bias, tile);
        return;
    }
    // 64-row bands; column blocks shrink (in vector-width steps) until
    // the grid covers the pool. Split geometry cannot change results —
    // it is purely a load-balance / locality choice.
    constexpr int64_t kMC = 64;
    const int64_t mBlocks = (m + kMC - 1) / kMC;
    const int64_t nUnit = ops->vectorWidthF32;
    int64_t nc = 16 * nUnit < n ? 16 * nUnit : n;
    while (nc > nUnit &&
           mBlocks * ((n + nc - 1) / nc) < static_cast<int64_t>(threads))
        nc -= nUnit;
    const int64_t nBlocks = (n + nc - 1) / nc;
    par->run(static_cast<size_t>(mBlocks * nBlocks), [&](size_t s, int) {
        const int64_t i0 = static_cast<int64_t>(s) / nBlocks * kMC;
        const int64_t j0 = static_cast<int64_t>(s) % nBlocks * nc;
        const int64_t h = m - i0 < kMC ? m - i0 : kMC;
        const int64_t w = n - j0 < nc ? n - j0 : nc;
        ops->gemmF32Strided(A + i0 * k, k, B + j0, n, C + i0 * n + j0,
                            n, h, k, w, bias ? bias + j0 : nullptr,
                            tile);
    });
}

/**
 * Pick the tile for one GEMM call: replay the tuning cache, or time
 * every candidate through @p run (each run produces the full, correct
 * output — candidates are bit-identical — so tuning leaves the
 * destination valid no matter which candidate ran last).
 */
TileConfig
chooseTile(const SimdOps *ops, const char *op,
           const std::vector<TileConfig> &cands, int64_t m, int64_t k,
           int64_t n, int threads,
           const std::function<void(const TileConfig &)> &run)
{
    using Clock = std::chrono::steady_clock;
    int idx = TuningCache::process().choose(
        TuneKey{op, shapeKey(m, k, n), ops->name, threads},
        static_cast<int>(cands.size()), [&](int i) {
            // Two timed runs per candidate, best-of: the first pays
            // first-touch and warms caches for its successor, so the
            // min is a stable ranking signal even on noisy hosts.
            double best = std::numeric_limits<double>::infinity();
            for (int rep = 0; rep < 2; ++rep) {
                auto t0 = Clock::now();
                run(cands[i]);
                double ns = std::chrono::duration<double, std::nano>(
                                Clock::now() - t0)
                                .count();
                best = best < ns ? best : ns;
            }
            return best;
        });
    return cands[idx];
}

// ----- f32 GEMM family ---------------------------------------------------

Tensor
simdMatmul(const SimdOps *ops, const Tensor &a, const Tensor &b,
           Tensor dst, const ParallelRegion *par)
{
    if (a.shape().rank() != 2 || b.shape().rank() != 2)
        throw std::runtime_error("simd matmul: rank-2 inputs required");
    int64_t m = a.shape()[0], k = a.shape()[1];
    if (b.shape()[0] != k)
        throw std::runtime_error("simd matmul: inner dim mismatch");
    int64_t n = b.shape()[1];
    Tensor ac = ko::asF32(a);
    Tensor bc = ko::asF32(b);
    Tensor out = claimOut(std::move(dst), Shape{m, n}, DType::F32);
    auto run = [&](const TileConfig &t) {
        simdGemmPar(ops, par, ac.dataF32(), bc.dataF32(), out.dataF32(),
                    m, k, n, nullptr, t);
    };
    run(chooseTile(ops, "matmul", simd::gemmTileCandidates(ops->level),
                   m, k, n, parThreads(par), run));
    return out;
}

Tensor
simdMatmulTiled(const SimdOps *ops, const Tensor &a, const Tensor &b,
                const TileConfig &tile, Tensor dst)
{
    if (a.shape().rank() != 2 || b.shape().rank() != 2)
        throw std::runtime_error("simd matmul: rank-2 inputs required");
    int64_t m = a.shape()[0], k = a.shape()[1], n = b.shape()[1];
    Tensor ac = ko::asF32(a);
    Tensor bc = ko::asF32(b);
    Tensor out = claimOut(std::move(dst), Shape{m, n}, DType::F32);
    ops->gemmF32(ac.dataF32(), bc.dataF32(), out.dataF32(), m, k, n,
                 nullptr, tile);
    return out;
}

Tensor
simdLinearPacked(const SimdOps *ops, const Tensor &x, const Tensor &wt,
                 const Tensor &b, Tensor dst,
                 const ParallelRegion *par)
{
    if (wt.shape().rank() != 2)
        throw std::runtime_error("simd linear: [K,N] packed weight "
                                 "required");
    int64_t k = wt.shape()[0], n = wt.shape()[1];
    if (x.shape().dim(-1) != k)
        throw std::runtime_error("simd linear: input last dim != K");
    Tensor rows = ko::asF32(x).view(Shape{x.numel() / k, k});
    int64_t m = rows.shape()[0];
    Tensor wc = ko::asF32(wt);
    Tensor bc = b.defined() ? ko::asF32(b) : Tensor();
    std::vector<int64_t> dims = x.shape().dims();
    dims.back() = n;
    Tensor out = claimOut(std::move(dst), Shape(dims), DType::F32);
    auto run = [&](const TileConfig &t) {
        simdGemmPar(ops, par, rows.dataF32(), wc.dataF32(),
                    out.dataF32(), m, k, n,
                    bc.defined() ? bc.dataF32() : nullptr, t);
    };
    run(chooseTile(ops, "linear", simd::gemmTileCandidates(ops->level),
                   m, k, n, parThreads(par), run));
    return out;
}

Tensor
simdBmm(const SimdOps *ops, const Tensor &a, const Tensor &b, Tensor dst,
        const ParallelRegion *par)
{
    if (a.shape().rank() != 3 || b.shape().rank() != 3)
        throw std::runtime_error("simd bmm: rank-3 inputs required");
    int64_t bs = a.shape()[0];
    int64_t m = a.shape()[1], k = a.shape()[2], n = b.shape()[2];
    if (b.shape()[0] != bs || b.shape()[1] != k)
        throw std::runtime_error("simd bmm: shape mismatch");
    Tensor ac = ko::asF32(a);
    Tensor bc = ko::asF32(b);
    Tensor out = claimOut(std::move(dst), Shape{bs, m, n}, DType::F32);
    const float *pa = ac.dataF32();
    const float *pb = bc.dataF32();
    float *po = out.dataF32();
    // Tune on batch item 0 (every item has the same shape), then run
    // the whole batch with the chosen tile.
    auto run0 = [&](const TileConfig &t) {
        ops->gemmF32(pa, pb, po, m, k, n, nullptr, t);
    };
    if (parThreads(par) > 1 && bs > 1) {
        // One batch item per shard, each running the serial kernel —
        // so the tile decision is the serial one (threads key 1, the
        // same entry the intra-op-off path tunes and replays).
        TileConfig tile = chooseTile(
            ops, "bmm", simd::gemmTileCandidates(ops->level), m, k, n,
            1, run0);
        par->run(static_cast<size_t>(bs), [&](size_t i, int) {
            ops->gemmF32(pa + static_cast<int64_t>(i) * m * k,
                         pb + static_cast<int64_t>(i) * k * n,
                         po + static_cast<int64_t>(i) * m * n, m, k, n,
                         nullptr, tile);
        });
        return out;
    }
    // Serial, or a single batch item: macro-tile sharding inside the
    // one GEMM instead (simdGemmPar degrades to the serial kernel
    // when the region is absent or the problem is small).
    auto runPar = [&](const TileConfig &t) {
        simdGemmPar(ops, par, pa, pb, po, m, k, n, nullptr, t);
    };
    TileConfig tile =
        bs > 0 ? chooseTile(ops, "bmm",
                            simd::gemmTileCandidates(ops->level), m, k,
                            n, parThreads(par), runPar)
               : TileConfig{};
    for (int64_t i = 0; i < bs; ++i)
        simdGemmPar(ops, par, pa + i * m * k, pb + i * k * n,
                    po + i * m * n, m, k, n, nullptr, tile);
    return out;
}

// ----- layer norm / elementwise ------------------------------------------

Tensor
simdLayerNorm(const SimdOps *ops, const Tensor &x, const Tensor &gamma,
              const Tensor &beta, float eps, Tensor dst)
{
    // The vector kernel wants both affine operands; the (unused in
    // the registry) affine-less form stays on the optimized kernel.
    if (!gamma.defined() || !beta.defined())
        return ko::layerNorm(x, gamma, beta, eps, std::move(dst));
    int64_t d = x.shape().dim(-1);
    Tensor xc = ko::asF32(x);
    Tensor gc = ko::asF32(gamma);
    Tensor bc = ko::asF32(beta);
    Tensor out = claimOut(std::move(dst), x.shape(), DType::F32);
    ops->layerNormRows(xc.dataF32(), gc.dataF32(), bc.dataF32(), eps,
                       xc.numel() / d, d, out.dataF32());
    return out;
}

Tensor
simdRelu(const SimdOps *ops, const Tensor &x, Tensor dst)
{
    if (!ko::fastF32(x))
        return ko::relu(x, std::move(dst));
    Tensor out = claimOut(std::move(dst), x.shape(), DType::F32);
    ops->relu(x.dataF32(), out.dataF32(), x.numel());
    return out;
}

Tensor
simdAddScalar(const SimdOps *ops, const Tensor &x, float s, Tensor dst)
{
    if (!ko::fastF32(x))
        return ko::addScalar(x, s, std::move(dst));
    Tensor out = claimOut(std::move(dst), x.shape(), DType::F32);
    ops->addScalar(x.dataF32(), s, out.dataF32(), x.numel());
    return out;
}

Tensor
simdMulScalar(const SimdOps *ops, const Tensor &x, float s, Tensor dst)
{
    if (!ko::fastF32(x))
        return ko::mulScalar(x, s, std::move(dst));
    Tensor out = claimOut(std::move(dst), x.shape(), DType::F32);
    ops->mulScalar(x.dataF32(), s, out.dataF32(), x.numel());
    return out;
}

Tensor
simdBinary(const SimdOps *ops, int op, const Tensor &a, const Tensor &b,
           Tensor dst)
{
    if (!ko::fastF32(a) || !ko::fastF32(b) ||
        !(a.shape() == b.shape())) {
        // Broadcasts and exotic dtypes keep the optimized/reference
        // behaviour through the same per-op fallback the chain uses.
        switch (op) {
        case 0: return ko::add(a, b, std::move(dst));
        case 1: return ko::sub(a, b, std::move(dst));
        case 2: return ko::mul(a, b, std::move(dst));
        default: return ko::div(a, b, std::move(dst));
        }
    }
    Tensor out = claimOut(std::move(dst), a.shape(), DType::F32);
    ops->binaryOp(op, a.dataF32(), b.dataF32(), out.dataF32(),
                  a.numel());
    return out;
}

// ----- int8 GEMM ---------------------------------------------------------

/** The active layout of an int8 weight for @p ops: dot-interleaved
 *  when the level has a dot unit, else the plain [K,N] pack. The
 *  tensor keeps the [K,N] shape — the layout is a raw-byte contract
 *  between packDotInterleave and gemmI8, not a shape change. */
Tensor
packInt8ForOps(const SimdOps *ops, const Tensor &wtq)
{
    Tensor wc = toContiguous(wtq);
    Tensor packed(wtq.shape(), DType::I8);
    if (ops->int8Dot)
        simd::packDotInterleave(wc.dataI8(), packed.dataI8(),
                                wtq.shape()[0], wtq.shape()[1]);
    else
        std::memcpy(packed.dataI8(), wc.dataI8(),
                    static_cast<size_t>(wtq.numel()));
    return packed;
}

/** Raw i8 x i8 -> i32 accumulators via the tuned SIMD kernel.
 *  @p wPacked must already be in packInt8ForOps layout. A region
 *  shards the output into row blocks (A/C slices; the weight layout —
 *  dot-interleaved or plain — is position-independent in M, so shards
 *  stream the same packed operand). i32 accumulation is exact, so any
 *  row partition is bit-identical to the serial sweep. */
void
simdInt8Acc(const SimdOps *ops, const ParallelRegion *par,
            const int8_t *xq, const int8_t *wPacked, int32_t *acc,
            int64_t m, int64_t k, int64_t n)
{
    const int threads = parThreads(par);
    if (threads <= 1 || m <= 1 || 2 * m * n * k < kParMinFlops) {
        auto run = [&](const TileConfig &t) {
            ops->gemmI8(xq, wPacked, acc, m, k, n, t);
        };
        run(chooseTile(ops, "int8_linear",
                       simd::int8TileCandidates(ops->level), m, k, n, 1,
                       run));
        return;
    }
    const int64_t block = (m + threads - 1) / threads;
    const int64_t nBlocks = (m + block - 1) / block;
    auto run = [&](const TileConfig &t) {
        par->run(static_cast<size_t>(nBlocks), [&](size_t s, int) {
            const int64_t i0 = static_cast<int64_t>(s) * block;
            const int64_t rows = m - i0 < block ? m - i0 : block;
            ops->gemmI8(xq + i0 * k, wPacked, acc + i0 * n, rows, k, n,
                        t);
        });
    };
    run(chooseTile(ops, "int8_linear",
                   simd::int8TileCandidates(ops->level), m, k, n,
                   threads, run));
}

Tensor
simdInt8Requant(const SimdOps *ops, const Tensor &xq, float xScale,
                const Tensor &wPacked, const Tensor &wScales,
                const Tensor &bias, Tensor dst,
                const ParallelRegion *par)
{
    int64_t k = wPacked.shape()[0], n = wPacked.shape()[1];
    int64_t m = xq.numel() / k;
    Tensor xc = toContiguous(xq);
    std::vector<int64_t> dims = xq.shape().dims();
    dims.back() = n;
    Tensor out = claimOut(std::move(dst), Shape(dims), DType::F32);
    Tensor accT = scratchEmpty(Shape{m, n}, DType::I32);
    simdInt8Acc(ops, par, xc.dataI8(), wPacked.dataI8(), accT.dataI32(),
                m, k, n);
    // The shared epilogue expression (requantOne + bias): i32
    // accumulation is exact, so evaluating it in a separate sweep is
    // bit-identical to the scalar kernels' fused tile write-out.
    const int32_t *pa = accT.dataI32();
    Tensor sc = ko::asF32(wScales);
    Tensor bc = bias.defined() ? ko::asF32(bias) : Tensor();
    const float *ps = sc.dataF32();
    const float *pb = bc.defined() ? bc.dataF32() : nullptr;
    float *po = out.dataF32();
    for (int64_t i = 0; i < m; ++i)
        for (int64_t j = 0; j < n; ++j) {
            float v = kq::requantOne(pa[i * n + j], xScale, ps[j]);
            if (pb)
                v += pb[j];
            po[i * n + j] = v;
        }
    return out;
}

// ----- backend assembly --------------------------------------------------

Backend
buildSimdBackend(const SimdOps *ops)
{
    Backend b("simd", &optimizedBackend());
    if (!ops)
        // Scalar dispatch: register nothing; every op falls through
        // the chain to optimized — degradation is per-op by
        // construction, and "per-process" simply means every op
        // degraded.
        return b;

    b.registerKernel(OpKind::MatMul, [ops](const KernelContext &c) {
        return singleOutput(
            simdMatmul(ops, c.in(0), c.in(1), c.out(0), c.par));
    });
    b.registerKernel(OpKind::Linear, [ops](const KernelContext &c) {
        if (c.node.attrs.getI("wq8", 0))
            // Weight-only int8 keeps the optimized fused epilogue.
            return optimizedBackend().kernelFor(OpKind::Linear)(c);
        const Tensor &wt = c.params.derived(c.node, 0, [&c] {
            return ko::packWeightTranspose(c.param(0));
        });
        return singleOutput(simdLinearPacked(ops, c.in(0), wt,
                                             c.optBias(), c.out(0),
                                             c.par));
    });
    b.registerKernel(OpKind::BMM, [ops](const KernelContext &c) {
        return singleOutput(
            simdBmm(ops, c.in(0), c.in(1), c.out(0), c.par));
    });
    b.registerKernel(OpKind::Int8Linear, [ops](const KernelContext &c) {
        if (!c.node.attrs.getI("executable", 0))
            return referenceBackend().kernelFor(OpKind::Int8Linear)(c);
        const Tensor &wtq = quant::packedWeight(c.node, c.params);
        const Tensor &wp =
            c.params.derived(c.node, kDotWeightSlot, [&] {
                return packInt8ForOps(ops, wtq);
            });
        if (c.node.attrs.getI("requant", 0))
            return singleOutput(simdInt8Requant(
                ops, c.in(0), kq::scaleValue(c.in(1)), wp,
                quant::weightScales(c.node, c.params), c.optBias(),
                c.out(0), c.par));
        int64_t k = wtq.shape()[0], n = wtq.shape()[1];
        const Tensor &xq = c.in(0);
        Tensor xc = toContiguous(xq);
        std::vector<int64_t> dims = xq.shape().dims();
        dims.back() = n;
        Tensor out = claimOut(c.out(0), Shape(dims), DType::I32);
        simdInt8Acc(ops, c.par, xc.dataI8(), wp.dataI8(), out.dataI32(),
                    xq.numel() / k, k, n);
        return singleOutput(std::move(out));
    });
    b.registerKernel(OpKind::LayerNorm, [ops](const KernelContext &c) {
        return singleOutput(simdLayerNorm(ops, c.in(0), c.param(0),
                                          c.param(1),
                                          c.attrFloat("eps", 1e-5),
                                          c.out(0)));
    });
    b.registerKernel(OpKind::ReLU, [ops](const KernelContext &c) {
        return singleOutput(simdRelu(ops, c.in(0), c.out(0)));
    });
    b.registerKernel(OpKind::Add, [ops](const KernelContext &c) {
        if (c.numInputs() == 1)
            return singleOutput(simdAddScalar(
                ops, c.in(0), c.attrFloat("scalar"), c.out(0)));
        return singleOutput(simdBinary(ops, 0, c.in(0), c.in(1),
                                       c.out(0)));
    });
    b.registerKernel(OpKind::Sub, [ops](const KernelContext &c) {
        return singleOutput(simdBinary(ops, 1, c.in(0), c.in(1),
                                       c.out(0)));
    });
    b.registerKernel(OpKind::Mul, [ops](const KernelContext &c) {
        if (c.numInputs() == 1)
            return singleOutput(simdMulScalar(
                ops, c.in(0), c.attrFloat("scalar"), c.out(0)));
        return singleOutput(simdBinary(ops, 2, c.in(0), c.in(1),
                                       c.out(0)));
    });
    b.registerKernel(OpKind::Div, [ops](const KernelContext &c) {
        return singleOutput(simdBinary(ops, 3, c.in(0), c.in(1),
                                       c.out(0)));
    });

    // Warm-up: pre-pack the int8 dot-interleaved weights this
    // backend's Int8Linear kernel streams. The optimized backend's
    // prepare (packed f32/int8 weights, fused affines) runs too —
    // Backend::prepare walks the whole fallback chain.
    b.setPrepare([ops](const Graph &g, ParamStore &params) {
        for (const Node &n : g.nodes())
            if (n.kind == OpKind::Int8Linear &&
                n.attrs.getI("executable", 0)) {
                const Tensor &wtq = quant::packedWeight(n, params);
                params.derived(n, kDotWeightSlot, [&] {
                    return packInt8ForOps(ops, wtq);
                });
            }
    });
    return b;
}

/** Ops table for the free-function entries: the active level's. */
const SimdOps *
activeOps()
{
    return simd::simdOpsFor(platform::activeIsa());
}

}  // namespace

const Backend &
simdBackend()
{
    static const Backend backend =
        buildSimdBackend(simd::simdOpsFor(platform::activeIsa()));
    return backend;
}

Backend
makeSimdBackend(platform::IsaLevel level)
{
    // Clamp to what this host can actually execute: a pinned level
    // above hardware support would register kernels that fault.
    if (static_cast<int>(level) > static_cast<int>(platform::detectIsa()))
        level = platform::detectIsa();
    return buildSimdBackend(simd::simdOpsFor(level));
}

namespace kernels {
namespace sd {

Tensor
matmul(const Tensor &a, const Tensor &b, Tensor dst,
       const ParallelRegion *par)
{
    const SimdOps *ops = activeOps();
    return ops ? simdMatmul(ops, a, b, std::move(dst), par)
               : ko::matmul(a, b, std::move(dst), par);
}

Tensor
matmulTiled(const Tensor &a, const Tensor &b, const simd::TileConfig &tile,
            Tensor dst)
{
    const SimdOps *ops = activeOps();
    return ops ? simdMatmulTiled(ops, a, b, tile, std::move(dst))
               : ko::matmul(a, b, std::move(dst));
}

Tensor
linearPacked(const Tensor &x, const Tensor &wt, const Tensor &b,
             Tensor dst, const ParallelRegion *par)
{
    const SimdOps *ops = activeOps();
    return ops ? simdLinearPacked(ops, x, wt, b, std::move(dst), par)
               : ko::linearPacked(x, wt, b, std::move(dst), par);
}

Tensor
bmm(const Tensor &a, const Tensor &b, Tensor dst,
    const ParallelRegion *par)
{
    const SimdOps *ops = activeOps();
    return ops ? simdBmm(ops, a, b, std::move(dst), par)
               : ko::bmm(a, b, std::move(dst), par);
}

Tensor
layerNorm(const Tensor &x, const Tensor &gamma, const Tensor &beta,
          float eps, Tensor dst)
{
    const SimdOps *ops = activeOps();
    return ops ? simdLayerNorm(ops, x, gamma, beta, eps, std::move(dst))
               : ko::layerNorm(x, gamma, beta, eps, std::move(dst));
}

Tensor
relu(const Tensor &x, Tensor dst)
{
    const SimdOps *ops = activeOps();
    return ops ? simdRelu(ops, x, std::move(dst))
               : ko::relu(x, std::move(dst));
}

Tensor
add(const Tensor &a, const Tensor &b, Tensor dst)
{
    const SimdOps *ops = activeOps();
    return ops ? simdBinary(ops, 0, a, b, std::move(dst))
               : ko::add(a, b, std::move(dst));
}

Tensor
mul(const Tensor &a, const Tensor &b, Tensor dst)
{
    const SimdOps *ops = activeOps();
    return ops ? simdBinary(ops, 2, a, b, std::move(dst))
               : ko::mul(a, b, std::move(dst));
}

Tensor
addScalar(const Tensor &x, float s, Tensor dst)
{
    const SimdOps *ops = activeOps();
    return ops ? simdAddScalar(ops, x, s, std::move(dst))
               : ko::addScalar(x, s, std::move(dst));
}

Tensor
mulScalar(const Tensor &x, float s, Tensor dst)
{
    const SimdOps *ops = activeOps();
    return ops ? simdMulScalar(ops, x, s, std::move(dst))
               : ko::mulScalar(x, s, std::move(dst));
}

Tensor
packInt8Weight(const Tensor &wtq)
{
    const SimdOps *ops = activeOps();
    if (!ops)
        return toContiguous(wtq);
    return packInt8ForOps(ops, wtq);
}

Tensor
int8LinearRequant(const Tensor &xq, float xScale, const Tensor &wPacked,
                  const Tensor &wScales, const Tensor &bias, Tensor dst,
                  const ParallelRegion *par)
{
    const SimdOps *ops = activeOps();
    if (!ops)
        return kq::int8LinearPackedRequant(xq, xScale, wPacked, wScales,
                                           bias, nullptr, 0,
                                           std::move(dst), par);
    return simdInt8Requant(ops, xq, xScale, wPacked, wScales, bias,
                           std::move(dst), par);
}

}  // namespace sd
}  // namespace kernels
}  // namespace ngb
