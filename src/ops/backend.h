#ifndef NGB_OPS_BACKEND_H
#define NGB_OPS_BACKEND_H

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "graph/node.h"
#include "graph/param_store.h"
#include "obs/perf.h"
#include "obs/trace.h"
#include "ops/allocator.h"
#include "ops/op_types.h"
#include "tensor/tensor.h"

/**
 * @file
 * The pluggable kernel-backend API.
 *
 * A Backend is a named KernelRegistry (OpKind -> KernelFn) with an
 * optional fallback chain. Executors dispatch every node through the
 * active backend instead of a hard-wired switch, so kernel sets can be
 * swapped, compared, and selectively optimized: the "reference"
 * backend carries the straightforward kernels in src/ops, the
 * "optimized" backend overrides the hottest operators and falls back
 * to reference for everything else.
 *
 * Registration happens either at first-use time inside
 * referenceBackend()/optimizedBackend() (the built-ins) or by
 * explicitly installing kernels into a caller-owned Backend
 * (registerKernel) — e.g. a test stubbing one operator while
 * inheriting the rest through the fallback chain.
 */

namespace ngb {

class Backend;
class ParallelRegion;

/**
 * Everything one kernel invocation may read: the node (attributes,
 * input/output shapes), a resolver from graph Values to computed
 * tensors, and the deterministic ParamStore. Kernels are pure with
 * respect to graph state — all reads go through in()/param() — so the
 * serial Executor, the parallel runtime, and the serving engines share
 * one dispatch path per backend and stay bit-identical to each other.
 */
struct KernelContext {
    const Node &node;
    const std::function<const Tensor &(const Value &)> &input;
    ParamStore &params;

    /**
     * The backend the executor is dispatching through (the head of the
     * fallback chain, not the backend whose registry resolved this
     * kernel). Fused-chain kernels dispatch their member operators
     * through it so per-op overrides apply inside fused groups too.
     * Null in ad-hoc contexts; treat as "use your own backend".
     */
    const Backend *backend = nullptr;

    /**
     * Output-buffer provider installed by the executor. Null means
     * heap allocation (out() still works); the runtime installs an
     * ArenaAllocator here when executing with planned arenas, so a
     * non-null alloc doubles as the "arena execution" signal for the
     * few kernels whose copy-vs-view policy depends on it (Split,
     * fused layout tails).
     */
    Allocator *alloc = nullptr;

    /**
     * Intra-op parallel region installed by the executor, or null for
     * serial execution (the default everywhere). Kernels that can
     * shard their iteration space — the GEMM family — run it across
     * par->threads() pool workers; every other kernel ignores it.
     * Sharding must never split a reduction (GEMM: M/N tiles only,
     * never K) so outputs stay bit-identical at every thread count.
     */
    const ParallelRegion *par = nullptr;

    /**
     * Destination buffer for output @p i of this node: the planned
     * arena slot when an arena allocator is installed and the value is
     * planned, else a fresh uninitialized heap tensor. Kernels must
     * fully write whatever they claim (poison-fill catches violations).
     */
    Tensor out(size_t i = 0) const
    {
        return alloc ? alloc->allocate(node, i)
                     : Tensor::empty(node.outShapes[i],
                                     node.outDtypes[i]);
    }

    /** Resolved tensor of input @p i. */
    const Tensor &in(size_t i) const { return input(node.inputs[i]); }

    size_t numInputs() const { return node.inputs.size(); }

    /** Materialized parameter @p i of the node. */
    const Tensor &param(size_t i) const { return params.get(node, i); }

    /**
     * The trailing rank-1 parameter when the node carries more than
     * one (the bias convention of Linear/Conv2d), else undefined.
     */
    Tensor optBias() const
    {
        return node.paramShapes.size() > 1
                   ? params.get(node, node.paramShapes.size() - 1)
                   : Tensor();
    }

    int attrInt(const std::string &key, int64_t def = 0) const
    {
        return static_cast<int>(node.attrs.getI(key, def));
    }

    float attrFloat(const std::string &key, double def = 0.0) const
    {
        return static_cast<float>(node.attrs.getF(key, def));
    }
};

/**
 * One kernel: consumes a KernelContext, produces every output of the
 * node (most ops one tensor; Split and TopK several). std::function so
 * ad-hoc backends can register capturing lambdas; the built-in
 * backends register capture-free ones.
 */
using KernelFn = std::function<std::vector<Tensor>(const KernelContext &)>;

/** Wrap the common single-tensor result as a kernel output vector. */
inline std::vector<Tensor>
singleOutput(Tensor t)
{
    std::vector<Tensor> out;
    out.push_back(std::move(t));
    return out;
}

/**
 * Optional one-time per-graph warm-up a backend runs before traffic:
 * pre-build whatever ParamStore::derived state its kernels memoize
 * (e.g. packed weight transposes), so per-request timings measure the
 * kernels alone and not first-touch preprocessing.
 */
using PrepareFn = std::function<void(const Graph &, ParamStore &)>;

/** A plain OpKind -> KernelFn table. */
class KernelRegistry
{
  public:
    /** Install (or replace) the kernel for @p k. */
    void add(OpKind k, KernelFn fn) { fns_[k] = std::move(fn); }

    /** The kernel for @p k, or nullptr when not registered. */
    const KernelFn *find(OpKind k) const
    {
        auto it = fns_.find(k);
        return it != fns_.end() ? &it->second : nullptr;
    }

    bool contains(OpKind k) const { return fns_.count(k) != 0; }
    size_t size() const { return fns_.size(); }

  private:
    std::map<OpKind, KernelFn> fns_;
};

/**
 * A named kernel set with fallback. Lookup walks this backend's own
 * registry, then the fallback chain; a miss everywhere is a clear
 * error naming the op and the backend, never UB. Backends are
 * immutable once shared across threads: register everything before
 * handing the Backend to an executor.
 */
class Backend
{
  public:
    explicit Backend(std::string name, const Backend *fallback = nullptr)
        : name_(std::move(name)), fallback_(fallback)
    {
    }

    const std::string &name() const { return name_; }
    const Backend *fallback() const { return fallback_; }

    /** Explicitly install a kernel for @p k in this backend. */
    void registerKernel(OpKind k, KernelFn fn)
    {
        reg_.add(k, std::move(fn));
    }

    /** True when THIS backend registers @p k (fallback not consulted). */
    bool handles(OpKind k) const { return reg_.contains(k); }

    /** Number of ops this backend itself registers. */
    size_t numKernels() const { return reg_.size(); }

    /**
     * Resolve the kernel for @p k through the fallback chain; throws
     * a descriptive error when no backend in the chain handles it.
     */
    const KernelFn &kernelFor(OpKind k) const;

    /**
     * Dispatch one node evaluation through this backend. This is the
     * single dispatch seam every executor funnels through, so it is
     * also where the measured tracer AND the hardware-counter sampler
     * hook in: when both are off the guard inlines to two relaxed
     * loads and dispatch proceeds untouched; when on, the out-of-line
     * traced path records a Node span (op kind, backend, fused flag,
     * output numel, arena offset) and/or a CounterScope (counter
     * payload + per-category aggregation) around the kernel. Fused
     * kernels re-dispatch their members through ctx.backend, so member
     * spans nest inside the group span with no extra plumbing.
     */
    std::vector<Tensor> eval(const KernelContext &ctx) const
    {
        if (obs::traceEnabled() || obs::perfEnabled())
            return evalTraced(ctx);
        return kernelFor(ctx.node.kind)(ctx);
    }

    /** Install the per-graph warm-up hook. */
    void setPrepare(PrepareFn fn) { prepare_ = std::move(fn); }

    /**
     * Run every prepare hook along the fallback chain for @p g.
     * Idempotent (hooks memoize through ParamStore::derived); the
     * executors call this during their untimed warm-up/planning phase.
     */
    void prepare(const Graph &g, ParamStore &params) const
    {
        for (const Backend *b = this; b; b = b->fallback_)
            if (b->prepare_)
                b->prepare_(g, params);
    }

  private:
    /** Slow path of eval(): record a span around the kernel call. */
    std::vector<Tensor> evalTraced(const KernelContext &ctx) const;

    std::string name_;
    const Backend *fallback_ = nullptr;
    KernelRegistry reg_;
    PrepareFn prepare_;
};

/** The reference backend: every operator, straightforward kernels. */
const Backend &referenceBackend();

/**
 * The optimized CPU backend: register-tiled GEMM family, fused bias
 * epilogues, single-pass normalization, and fast-path elementwise /
 * softmax kernels; falls back to reference for everything else.
 */
const Backend &optimizedBackend();

/**
 * The explicit-SIMD backend: AVX2/AVX-512/NEON vector kernels for the
 * GEMM family, layer norm, the simple elementwise ops, and the
 * executable int8 GEMM, selected by runtime CPU detection
 * (platform::activeIsa) and tile-tuned through the persistent
 * TuningCache; falls back to optimized per-op for everything else —
 * including everything, when dispatch resolves to scalar.
 */
const Backend &simdBackend();

/**
 * The process-wide default: $NGB_BACKEND when set (so a CI leg can run
 * the whole suite under another backend), else reference.
 */
const Backend &defaultBackend();

/** Look up a built-in backend by name; throws listing known names. */
const Backend &findBackend(const std::string &name);

/** Names of the built-in backends, lookup order. */
std::vector<std::string> backendNames();

}  // namespace ngb

#endif  // NGB_OPS_BACKEND_H
