#ifndef NGB_OPS_SIMD_BACKEND_H
#define NGB_OPS_SIMD_BACKEND_H

#include "ops/backend.h"
#include "platform/cpu_features.h"
#include "platform/simd.h"

/**
 * @file
 * The "simd" backend: explicit-SIMD kernels (src/platform/simd.h)
 * behind the Backend API, dispatched by runtime CPU detection and
 * tile-tuned through the persistent TuningCache.
 *
 * Registration is SPARSE by design: only the ops with explicit vector
 * kernels (matmul / linear / bmm / layer_norm / the simple
 * elementwise family / executable Int8Linear) are registered; every
 * other op — conv, softmax, transcendental activations, fused groups
 * — falls through the chain to the optimized backend per-op. An
 * unsupported ISA (or --isa scalar) registers NOTHING, so the whole
 * process degrades to optimized without any caller noticing: that is
 * the "per-op, not per-process" degradation story.
 */

namespace ngb {

class ParallelRegion;

/**
 * The process "simd" backend, built once at the dispatch level
 * platform::activeIsa() reports on first use — set --isa / $NGB_ISA
 * before first kernel dispatch (the CLI applies --isa while parsing).
 */
const Backend &simdBackend();

/**
 * A simd backend pinned to @p level regardless of the process active
 * ISA (clamped to what is compiled in/supported, like dispatch is) —
 * the per-level differential tests build one per supported level in a
 * single process. Falls back to optimized exactly like simdBackend().
 */
Backend makeSimdBackend(platform::IsaLevel level);

namespace kernels {
namespace sd {

/**
 * Free-function entries at the process-active dispatch level, for the
 * micro-bench and tests. Each delegates to the optimized kernel when
 * the active level has no SIMD table (scalar), so they are always
 * callable. GEMM entries tune through TuningCache::process() and take
 * an optional ParallelRegion: null runs the serial kernels, a region
 * shards macro-tiles across its workers (bit-identical either way —
 * the simd.h numerics contract).
 */
Tensor matmul(const Tensor &a, const Tensor &b, Tensor dst = {},
              const ParallelRegion *par = nullptr);
Tensor linearPacked(const Tensor &x, const Tensor &wt, const Tensor &b,
                    Tensor dst = {}, const ParallelRegion *par = nullptr);
Tensor bmm(const Tensor &a, const Tensor &b, Tensor dst = {},
           const ParallelRegion *par = nullptr);
Tensor layerNorm(const Tensor &x, const Tensor &gamma,
                 const Tensor &beta, float eps, Tensor dst = {});
Tensor relu(const Tensor &x, Tensor dst = {});
Tensor add(const Tensor &a, const Tensor &b, Tensor dst = {});
Tensor mul(const Tensor &a, const Tensor &b, Tensor dst = {});
Tensor addScalar(const Tensor &x, float s, Tensor dst = {});
Tensor mulScalar(const Tensor &x, float s, Tensor dst = {});

/** matmul with an explicit tile (no tuning) — the bit-identity-
 *  across-candidates test hook. */
Tensor matmulTiled(const Tensor &a, const Tensor &b,
                   const simd::TileConfig &tile, Tensor dst = {});

/**
 * Re-pack a [K,N] int8 weight (quant::packWeightInt8 layout) into
 * whatever layout the active level's int8 GEMM streams: the 4-deep
 * dot interleave when the level has a dot-product unit, else an
 * unchanged copy. Pair with int8LinearRequant below.
 */
Tensor packInt8Weight(const Tensor &wtq);

/** Int8 linear with the requantize epilogue over a packInt8Weight-
 *  packed operand; bit-identical to qnt::int8LinearPackedRequant. */
Tensor int8LinearRequant(const Tensor &xq, float xScale,
                         const Tensor &wPacked, const Tensor &wScales,
                         const Tensor &bias, Tensor dst = {},
                         const ParallelRegion *par = nullptr);

}  // namespace sd
}  // namespace kernels
}  // namespace ngb

#endif  // NGB_OPS_SIMD_BACKEND_H
