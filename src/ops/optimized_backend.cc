#include <utility>

#include "ops/backend.h"
#include "ops/fused_kernels.h"
#include "ops/optimized_kernels.h"
#include "quant/quant_kernels.h"
#include "quant/weight_pack.h"

/**
 * @file
 * Registration of the "optimized" backend: overrides for the hottest
 * operators in the NonGEMM Bench inventory (the GEMM family, the
 * norm / activation / elementwise / softmax ops that dominate the
 * non-GEMM share), with everything else inherited from the reference
 * backend through the fallback chain. This is the seam the paper's
 * central claim needs: re-measure the GEMM/non-GEMM split as kernels
 * get optimized, without touching the executors.
 */

namespace ngb {

namespace {

namespace ko = kernels::opt;
namespace qnt = kernels::qnt;

Backend
makeOptimizedBackend()
{
    Backend b("optimized", &referenceBackend());

    // GEMM family: 4x16 register-tiled core, fused bias epilogue.
    // Each entry forwards c.par — the executor's intra-op region, or
    // null for the (default) serial path.
    b.registerKernel(OpKind::MatMul, [](const KernelContext &c) {
        return singleOutput(
            ko::matmul(c.in(0), c.in(1), c.out(0), c.par));
    });
    b.registerKernel(OpKind::Linear, [](const KernelContext &c) {
        if (c.node.attrs.getI("wq8", 0))
            // Weight-only int8: tiled GEMM over the packed [K,N] int8
            // weight with the per-channel rescale + bias fused into
            // the tile write-out.
            return singleOutput(qnt::w8LinearPacked(
                c.in(0), quant::packedWeight(c.node, c.params),
                quant::weightScales(c.node, c.params), c.optBias(),
                nullptr, 0, c.out(0), c.par));
        // Weights are immutable: pack the [N,K]->[K,N] transpose once
        // per node and amortize it across every request of an engine.
        const Tensor &wt = c.params.derived(c.node, 0, [&c] {
            return ko::packWeightTranspose(c.param(0));
        });
        return singleOutput(ko::linearPacked(c.in(0), wt, c.optBias(),
                                             c.out(0), c.par));
    });
    b.registerKernel(OpKind::Int8Linear, [](const KernelContext &c) {
        if (c.node.attrs.getI("executable", 0)) {
            // Executable int8 GEMM: 4x16 tiled i8 x i8 -> i32 core over
            // the packed [K,N] weight; the "requant" form carries the
            // rescale + bias in the tile write-out epilogue.
            const Tensor &wtq = quant::packedWeight(c.node, c.params);
            if (c.node.attrs.getI("requant", 0))
                return singleOutput(qnt::int8LinearPackedRequant(
                    c.in(0), qnt::scaleValue(c.in(1)), wtq,
                    quant::weightScales(c.node, c.params), c.optBias(),
                    nullptr, 0, c.out(0), c.par));
            return singleOutput(
                qnt::int8AccLinearPacked(c.in(0), wtq, c.out(0),
                                         c.par));
        }
        // The legacy modeled form stays on the reference kernel.
        return referenceBackend().kernelFor(OpKind::Int8Linear)(c);
    });
    b.registerKernel(OpKind::BMM, [](const KernelContext &c) {
        return singleOutput(ko::bmm(c.in(0), c.in(1), c.out(0), c.par));
    });

    // Normalization: single-pass moments / hoisted channel affine.
    b.registerKernel(OpKind::LayerNorm, [](const KernelContext &c) {
        return singleOutput(ko::layerNorm(c.in(0), c.param(0), c.param(1),
                                 c.attrFloat("eps", 1e-5), c.out(0)));
    });
    KernelFn batchNorm = [](const KernelContext &c) {
        return singleOutput(ko::batchNorm2d(c.in(0), c.param(0), c.param(1),
                                   c.param(2), c.param(3),
                                   c.attrFloat("eps", 1e-5), c.out(0)));
    };
    b.registerKernel(OpKind::BatchNorm2d, batchNorm);
    b.registerKernel(OpKind::FrozenBatchNorm2d, std::move(batchNorm));

    // Logit computation: last-dim fast path.
    b.registerKernel(OpKind::Softmax, [](const KernelContext &c) {
        return singleOutput(
            ko::softmax(c.in(0), c.attrInt("dim"), c.out(0)));
    });

    // Activations: contiguous raw-pointer sweeps.
    b.registerKernel(OpKind::ReLU, [](const KernelContext &c) {
        return singleOutput(ko::relu(c.in(0), c.out(0)));
    });
    b.registerKernel(OpKind::GELU, [](const KernelContext &c) {
        return singleOutput(ko::gelu(c.in(0), c.out(0)));
    });
    b.registerKernel(OpKind::SiLU, [](const KernelContext &c) {
        return singleOutput(ko::silu(c.in(0), c.out(0)));
    });
    b.registerKernel(OpKind::Sigmoid, [](const KernelContext &c) {
        return singleOutput(ko::sigmoid(c.in(0), c.out(0)));
    });
    b.registerKernel(OpKind::Tanh, [](const KernelContext &c) {
        return singleOutput(ko::tanhOp(c.in(0), c.out(0)));
    });
    b.registerKernel(OpKind::Exp, [](const KernelContext &c) {
        return singleOutput(ko::expOp(c.in(0), c.out(0)));
    });

    // Elementwise arithmetic: same-shape contiguous fast path.
    b.registerKernel(OpKind::Add, [](const KernelContext &c) {
        if (c.numInputs() == 1)
            return singleOutput(
                ko::addScalar(c.in(0), c.attrFloat("scalar"), c.out(0)));
        return singleOutput(ko::add(c.in(0), c.in(1), c.out(0)));
    });
    b.registerKernel(OpKind::Sub, [](const KernelContext &c) {
        return singleOutput(ko::sub(c.in(0), c.in(1), c.out(0)));
    });
    b.registerKernel(OpKind::Mul, [](const KernelContext &c) {
        if (c.numInputs() == 1)
            return singleOutput(
                ko::mulScalar(c.in(0), c.attrFloat("scalar"), c.out(0)));
        return singleOutput(ko::mul(c.in(0), c.in(1), c.out(0)));
    });
    b.registerKernel(OpKind::Div, [](const KernelContext &c) {
        return singleOutput(ko::div(c.in(0), c.in(1), c.out(0)));
    });

    // Executable fusion: merged Conv+BN affines, GEMM-epilogue
    // write-outs, single-pass point-wise chains; chain interpretation
    // through the active backend for everything else.
    b.registerKernel(OpKind::Fused, evalFusedOptimized);

    // Pre-build the packed Linear weights (top-level and fused
    // members) and the merged Conv+BN affines during executor warm-up
    // so the first request's measured kernel time is the kernels
    // alone, not the one-time preprocessing.
    b.setPrepare([](const Graph &g, ParamStore &params) {
        for (const Node &n : g.nodes()) {
            if (n.kind == OpKind::Linear && !n.paramShapes.empty()) {
                if (n.attrs.getI("wq8", 0))
                    quant::packedWeight(n, params);
                else
                    params.derived(n, 0, [&] {
                        return ko::packWeightTranspose(params.get(n, 0));
                    });
            }
            if (n.kind == OpKind::Int8Linear &&
                n.attrs.getI("executable", 0))
                quant::packedWeight(n, params);
            if ((n.kind == OpKind::Dequantize ||
                 n.kind == OpKind::Quantize) &&
                n.attrs.getI("executable", 0) && !n.paramShapes.empty())
                quant::weightScales(n, params);
        }
        prepareFusedGroups(g, params);
    });

    return b;
}

}  // namespace

const Backend &
optimizedBackend()
{
    static const Backend backend = makeOptimizedBackend();
    return backend;
}

}  // namespace ngb
