#include "ops/optimized_kernels.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "ops/kernels.h"
#include "runtime/intraop.h"

namespace ngb {
namespace kernels {
namespace opt {

namespace {

// ----- register-tiled GEMM core ------------------------------------------

constexpr int64_t kMR = 4;   ///< output rows per register tile
constexpr int64_t kNR = 16;  ///< output cols per register tile

/**
 * C[M,N] = A[M,K] @ B[K,N] (+ colBias[N]) (+ rowBias[M]), all
 * row-major contiguous, with an optional point-wise epilogue applied
 * per element inside the write-out.
 *
 * The 4x16 accumulator tile lives in registers across the whole k
 * loop: each B row is loaded once per FOUR output rows (the reference
 * ikj loop reloads it per row) and C is written exactly once. The
 * per-element accumulation order is k-ascending with no
 * reassociation; unlike the reference it does NOT skip zero A
 * elements, so on finite data results match the reference exactly,
 * but a zero-times-nonfinite product (0 * inf = NaN) that the
 * reference's skip branch would elide propagates here — hence the
 * backend's tolerance contract instead of a bit-identity one. Bias
 * and the epilogue stages are fused into the write-out after the
 * accumulator is complete — the same "sum, then + bias, then
 * activation" order the unfused per-op sweeps use, minus their extra
 * memory passes. colBias is the Linear convention (one bias per
 * output feature), rowBias the im2col conv convention (one bias per
 * filter row).
 */
void
matmulCoreEpi(const float *A, const float *B, float *C, int64_t M,
              int64_t K, int64_t N, const float *colBias,
              const float *rowBias, const scalar::UnaryStage *stages,
              size_t nStages)
{
    auto finish = [&](int64_t row, int64_t col, float v) {
        if (colBias)
            v += colBias[col];
        if (rowBias)
            v += rowBias[row];
        return scalar::applyStages(stages, nStages, v);
    };
    int64_t i = 0;
    for (; i + kMR <= M; i += kMR) {
        int64_t j = 0;
        for (; j + kNR <= N; j += kNR) {
            float acc[kMR][kNR] = {};
            for (int64_t k = 0; k < K; ++k) {
                const float *brow = B + k * N + j;
                float av[kMR];
                for (int64_t r = 0; r < kMR; ++r)
                    av[r] = A[(i + r) * K + k];
                for (int64_t jj = 0; jj < kNR; ++jj) {
                    float bv = brow[jj];
                    for (int64_t r = 0; r < kMR; ++r)
                        acc[r][jj] += av[r] * bv;
                }
            }
            for (int64_t r = 0; r < kMR; ++r) {
                float *crow = C + (i + r) * N + j;
                for (int64_t jj = 0; jj < kNR; ++jj)
                    crow[jj] = finish(i + r, j + jj, acc[r][jj]);
            }
        }
        for (; j < N; ++j) {  // N tail: kMR scalar dot products
            for (int64_t r = 0; r < kMR; ++r) {
                float acc = 0.0f;
                for (int64_t k = 0; k < K; ++k)
                    acc += A[(i + r) * K + k] * B[k * N + j];
                C[(i + r) * N + j] = finish(i + r, j, acc);
            }
        }
    }
    for (; i < M; ++i) {  // M tail: one row at a time, ikj
        float *crow = C + i * N;
        for (int64_t j = 0; j < N; ++j)
            crow[j] = 0.0f;
        for (int64_t k = 0; k < K; ++k) {
            float av = A[i * K + k];
            const float *brow = B + k * N;
            for (int64_t j = 0; j < N; ++j)
                crow[j] += av * brow[j];
        }
        if (colBias || rowBias || nStages)
            for (int64_t j = 0; j < N; ++j)
                crow[j] = finish(i, j, crow[j]);
    }
}

/** The pre-epilogue entry: C = A @ B (+ bias[N]). */
void
matmulCore(const float *A, const float *B, const float *bias, float *C,
           int64_t M, int64_t K, int64_t N)
{
    matmulCoreEpi(A, B, C, M, K, N, bias, nullptr, nullptr, 0);
}

// ----- cache-blocked parallel GEMM ---------------------------------------

/** BLIS-style macro-tile extents (floats). mc/nc are multiples of the
 *  kMR/kNR register tile so macro-tile interiors run the exact tile
 *  body; kc bounds the packed panels (A: mc*kc, B: kc*nc) to stay
 *  cache-resident per worker. */
constexpr int64_t kMC = 64;
constexpr int64_t kKC = 256;
constexpr int64_t kNC = 128;

/** Problems below this many flops shard poorly: the fork-join and
 *  panel-pack overhead costs more than the multiply. */
constexpr int64_t kParMinFlops = 1 << 17;

/**
 * One macro-tile of the blocked GEMM: C[M,N] block (row-major, leading
 * dimension @p ldc) from PACKED panels A[M,K] (lda = K) and B[K,N]
 * (ldb = N). @p first zero-initializes the accumulators, otherwise
 * they resume from the exact f32 partial sums a previous k-block
 * stored to C (a lossless round trip, so the per-element k-ascending
 * chain is indistinguishable from the single-pass core); @p last
 * applies bias + stages on write-out. The loop bodies mirror
 * matmulCoreEpi expression for expression — per-element accumulation
 * must stay bit-identical to the serial core at every block boundary.
 */
void
matmulCoreEpiBlock(const float *A, const float *B, float *C, int64_t M,
                   int64_t K, int64_t N, int64_t ldc,
                   const float *colBias, const float *rowBias,
                   const scalar::UnaryStage *stages, size_t nStages,
                   bool first, bool last)
{
    auto finish = [&](int64_t row, int64_t col, float v) {
        if (colBias)
            v += colBias[col];
        if (rowBias)
            v += rowBias[row];
        return scalar::applyStages(stages, nStages, v);
    };
    int64_t i = 0;
    for (; i + kMR <= M; i += kMR) {
        int64_t j = 0;
        for (; j + kNR <= N; j += kNR) {
            float acc[kMR][kNR];
            for (int64_t r = 0; r < kMR; ++r)
                for (int64_t jj = 0; jj < kNR; ++jj)
                    acc[r][jj] =
                        first ? 0.0f : C[(i + r) * ldc + j + jj];
            for (int64_t k = 0; k < K; ++k) {
                const float *brow = B + k * N + j;
                float av[kMR];
                for (int64_t r = 0; r < kMR; ++r)
                    av[r] = A[(i + r) * K + k];
                for (int64_t jj = 0; jj < kNR; ++jj) {
                    float bv = brow[jj];
                    for (int64_t r = 0; r < kMR; ++r)
                        acc[r][jj] += av[r] * bv;
                }
            }
            for (int64_t r = 0; r < kMR; ++r) {
                float *crow = C + (i + r) * ldc + j;
                for (int64_t jj = 0; jj < kNR; ++jj)
                    crow[jj] = last ? finish(i + r, j + jj, acc[r][jj])
                                    : acc[r][jj];
            }
        }
        for (; j < N; ++j) {  // N tail: kMR scalar dot products
            for (int64_t r = 0; r < kMR; ++r) {
                float acc = first ? 0.0f : C[(i + r) * ldc + j];
                for (int64_t k = 0; k < K; ++k)
                    acc += A[(i + r) * K + k] * B[k * N + j];
                C[(i + r) * ldc + j] =
                    last ? finish(i + r, j, acc) : acc;
            }
        }
    }
    for (; i < M; ++i) {  // M tail: one row at a time, ikj
        float *crow = C + i * ldc;
        if (first)
            for (int64_t j = 0; j < N; ++j)
                crow[j] = 0.0f;
        for (int64_t k = 0; k < K; ++k) {
            float av = A[i * K + k];
            const float *brow = B + k * N;
            for (int64_t j = 0; j < N; ++j)
                crow[j] += av * brow[j];
        }
        if (last && (colBias || rowBias || nStages))
            for (int64_t j = 0; j < N; ++j)
                crow[j] = finish(i, j, crow[j]);
    }
}

/**
 * matmulCoreEpi sharded across @p par's workers: the output is cut
 * into mc x nc macro-tiles (grid aligned to the kMR/kNR register
 * tile), each produced end to end by exactly ONE shard, walking k in
 * kc blocks over panels packed into the worker's ScratchArena. Only M
 * and N are ever split — never K — so every output element keeps its
 * single k-ascending accumulator chain and the result is bit-identical
 * to the serial core at any thread count (the differential suite
 * enforces this across the registry).
 */
void
matmulCoreEpiPar(const ParallelRegion *par, const float *A,
                 const float *B, float *C, int64_t M, int64_t K,
                 int64_t N, const float *colBias, const float *rowBias,
                 const scalar::UnaryStage *stages, size_t nStages)
{
    const int threads = par ? par->threads() : 1;
    if (threads <= 1 || K == 0 || 2 * M * N * K < kParMinFlops) {
        matmulCoreEpi(A, B, C, M, K, N, colBias, rowBias, stages,
                      nStages);
        return;
    }
    const int64_t mBlocks = (M + kMC - 1) / kMC;
    // Column blocks: narrow nc toward kNR until the grid can feed
    // every worker, but never below one register tile.
    int64_t nc = kNC;
    while (nc > kNR &&
           mBlocks * ((N + nc - 1) / nc) < static_cast<int64_t>(threads))
        nc -= kNR;
    const int64_t nBlocks = (N + nc - 1) / nc;

    par->run(static_cast<size_t>(mBlocks * nBlocks), [&](size_t s, int) {
        const int64_t i0 = static_cast<int64_t>(s) / nBlocks * kMC;
        const int64_t j0 = static_cast<int64_t>(s) % nBlocks * nc;
        const int64_t h = std::min(kMC, M - i0);
        const int64_t w = std::min(nc, N - j0);
        const int64_t kc = std::min(kKC, K);
        Tensor apT = scratchEmpty(Shape{h, kc}, DType::F32);
        Tensor bpT = scratchEmpty(Shape{kc, w}, DType::F32);
        float *ap = apT.dataF32();
        float *bp = bpT.dataF32();
        for (int64_t k0 = 0; k0 < K; k0 += kc) {
            const int64_t kLen = std::min(kc, K - k0);
            for (int64_t r = 0; r < h; ++r)
                std::memcpy(ap + r * kLen, A + (i0 + r) * K + k0,
                            static_cast<size_t>(kLen) * sizeof(float));
            for (int64_t k = 0; k < kLen; ++k)
                std::memcpy(bp + k * w, B + (k0 + k) * N + j0,
                            static_cast<size_t>(w) * sizeof(float));
            matmulCoreEpiBlock(ap, bp, C + i0 * N + j0, h, kLen, w, N,
                               colBias ? colBias + j0 : nullptr,
                               rowBias ? rowBias + i0 : nullptr, stages,
                               nStages, k0 == 0, k0 + kLen == K);
        }
    });
}

/**
 * Pack w[N,K] row-major into wt[K,N] row-major (the B-operand layout
 * matmulCore wants) with a 32x32 blocked raw-pointer transpose. The
 * generic Tensor::contiguous() path decomposes a strided flat index
 * per element, which costs more than the GEMM core itself for
 * mid-sized weights.
 */
void
packTranspose(const float *w, float *wt, int64_t n, int64_t k)
{
    constexpr int64_t kBlk = 32;
    for (int64_t j0 = 0; j0 < n; j0 += kBlk) {
        int64_t jmax = std::min(j0 + kBlk, n);
        for (int64_t k0 = 0; k0 < k; k0 += kBlk) {
            int64_t kmax = std::min(k0 + kBlk, k);
            for (int64_t j = j0; j < jmax; ++j)
                for (int64_t kk = k0; kk < kmax; ++kk)
                    wt[kk * n + j] = w[j * k + kk];
        }
    }
}

}  // namespace

Tensor
matmul(const Tensor &a, const Tensor &b, Tensor dst,
       const ParallelRegion *par)
{
    if (a.shape().rank() != 2 || b.shape().rank() != 2)
        throw std::runtime_error("matmul: rank-2 inputs required");
    int64_t m = a.shape()[0], k = a.shape()[1];
    int64_t k2 = b.shape()[0], n = b.shape()[1];
    if (k != k2)
        throw std::runtime_error("matmul: inner dim mismatch");
    Tensor ac = asF32(a);
    Tensor bc = asF32(b);
    Tensor out = claimOut(std::move(dst), Shape{m, n}, DType::F32);
    matmulCoreEpiPar(par, ac.dataF32(), bc.dataF32(), out.dataF32(), m,
                     k, n, nullptr, nullptr, nullptr, 0);
    return out;
}

Tensor
packWeightTranspose(const Tensor &w)
{
    if (w.shape().rank() != 2)
        throw std::runtime_error("packWeightTranspose: [N,K] required");
    int64_t n = w.shape()[0], k = w.shape()[1];
    Tensor wc = asF32(w);
    Tensor wt(Shape{k, n}, DType::F32);
    packTranspose(wc.dataF32(), wt.dataF32(), n, k);
    return wt;
}

Tensor
linearPackedEpi(const Tensor &x, const Tensor &wt, const Tensor &b,
                const scalar::UnaryStage *stages, size_t nStages,
                Tensor dst, const ParallelRegion *par)
{
    if (wt.shape().rank() != 2)
        throw std::runtime_error("linearPacked: packed weight must be "
                                 "[K,N]");
    int64_t k = wt.shape()[0], n = wt.shape()[1];
    if (x.shape().dim(-1) != k)
        throw std::runtime_error("linearPacked: input last dim != K");
    Tensor rows = asF32(x).view(Shape{x.numel() / k, k});
    int64_t m = rows.shape()[0];
    Tensor wc = asF32(wt);
    Tensor bc = b.defined() ? asF32(b) : Tensor();

    std::vector<int64_t> dims = x.shape().dims();
    dims.back() = n;
    Tensor out = claimOut(std::move(dst), Shape(dims), DType::F32);
    matmulCoreEpiPar(par, rows.dataF32(), wc.dataF32(), out.dataF32(),
                     m, k, n, bc.defined() ? bc.dataF32() : nullptr,
                     nullptr, stages, nStages);
    return out;
}

Tensor
linearPacked(const Tensor &x, const Tensor &wt, const Tensor &b,
             Tensor dst, const ParallelRegion *par)
{
    return linearPackedEpi(x, wt, b, nullptr, 0, std::move(dst), par);
}

Tensor
conv2dEpi(const Tensor &x, const Tensor &w, const Tensor &b, int stride,
          int padding, int groups, const scalar::UnaryStage *stages,
          size_t nStages, Tensor dst, const ParallelRegion *par)
{
    if (x.shape().rank() != 4 || w.shape().rank() != 4)
        throw std::runtime_error("conv2dEpi: NCHW input and FCRS weight");
    int64_t n = x.shape()[0], c = x.shape()[1];
    int64_t h = x.shape()[2], wd = x.shape()[3];
    int64_t f = w.shape()[0], cg = w.shape()[1];
    int64_t r = w.shape()[2], s = w.shape()[3];
    if (c != cg * groups)
        throw std::runtime_error("conv2dEpi: channel/group mismatch");
    if (groups <= 0 || f % groups != 0)
        throw std::runtime_error(
            "conv2dEpi: filters not divisible by groups");
    int64_t oh = (h + 2 * padding - r) / stride + 1;
    int64_t ow = (wd + 2 * padding - s) / stride + 1;
    int64_t fg = f / groups;

    Tensor xc = asF32(x);
    Tensor wc = asF32(w);
    Tensor bc = b.defined() ? asF32(b) : Tensor();
    const float *px = xc.dataF32();
    const float *pw = wc.dataF32();
    const float *pb = bc.defined() ? bc.dataF32() : nullptr;
    Tensor out = claimOut(std::move(dst), Shape{n, f, oh, ow}, DType::F32);
    float *po = out.dataF32();

    // im2col per (image, group), then one tiled GEMM per group with
    // the filter bias and the point-wise stages applied in the tile
    // write-out: W[fg, patch] @ col[patch, oh*ow] -> out rows.
    int64_t patch = cg * r * s;
    auto fillCol = [&](int64_t img, int g, float *col) {
        for (int64_t cc = 0; cc < cg; ++cc) {
            int64_t cin = g * cg + cc;
            const float *chan = px + (img * c + cin) * h * wd;
            for (int64_t rr = 0; rr < r; ++rr) {
                for (int64_t ss = 0; ss < s; ++ss) {
                    int64_t row = (cc * r + rr) * s + ss;
                    float *crow = col + row * oh * ow;
                    for (int64_t oy = 0; oy < oh; ++oy) {
                        int64_t iy = oy * stride - padding + rr;
                        for (int64_t ox = 0; ox < ow; ++ox) {
                            int64_t ix = ox * stride - padding + ss;
                            float v = 0.0f;
                            if (iy >= 0 && iy < h && ix >= 0 && ix < wd)
                                v = chan[iy * wd + ix];
                            crow[oy * ow + ox] = v;
                        }
                    }
                }
            }
        }
    };
    // Two sharding shapes, both bit-identical to the serial loop: with
    // several (image, group) instances each shard runs ONE instance's
    // im2col + GEMM start to finish (its col buffer lives in the
    // worker's scratch); a single instance instead shards the one
    // GEMM's macro-tiles, reading a shared col buffer.
    if (par && par->threads() > 1 && n * groups > 1) {
        par->run(static_cast<size_t>(n * groups), [&](size_t inst, int) {
            int64_t img = static_cast<int64_t>(inst) / groups;
            int g = static_cast<int>(inst % static_cast<size_t>(groups));
            Tensor colT = scratchEmpty(Shape{patch, oh * ow}, DType::F32);
            float *col = colT.dataF32();
            fillCol(img, g, col);
            matmulCoreEpi(pw + g * fg * patch, col,
                          po + (img * f + g * fg) * oh * ow, fg, patch,
                          oh * ow, nullptr,
                          pb ? pb + g * fg : nullptr, stages, nStages);
        });
        return out;
    }
    Tensor colT = scratchEmpty(Shape{patch, oh * ow}, DType::F32);
    float *col = colT.dataF32();
    for (int64_t img = 0; img < n; ++img) {
        for (int g = 0; g < groups; ++g) {
            fillCol(img, g, col);
            matmulCoreEpiPar(par, pw + g * fg * patch, col,
                             po + (img * f + g * fg) * oh * ow, fg,
                             patch, oh * ow, nullptr,
                             pb ? pb + g * fg : nullptr, stages,
                             nStages);
        }
    }
    return out;
}

Tensor
linear(const Tensor &x, const Tensor &w, const Tensor &b, Tensor dst,
       const ParallelRegion *par)
{
    return linearPacked(x, packWeightTranspose(w), b, std::move(dst),
                        par);
}

Tensor
bmm(const Tensor &a, const Tensor &b, Tensor dst,
    const ParallelRegion *par)
{
    if (a.shape().rank() != 3 || b.shape().rank() != 3)
        throw std::runtime_error("bmm: rank-3 inputs required");
    int64_t bs = a.shape()[0];
    if (b.shape()[0] != bs)
        throw std::runtime_error("bmm: batch mismatch");
    int64_t m = a.shape()[1], k = a.shape()[2], n = b.shape()[2];
    if (b.shape()[1] != k)
        throw std::runtime_error("bmm: inner dim mismatch");
    Tensor ac = asF32(a);
    Tensor bc = asF32(b);
    Tensor out = claimOut(std::move(dst), Shape{bs, m, n}, DType::F32);
    const float *pa = ac.dataF32();
    const float *pb = bc.dataF32();
    float *po = out.dataF32();
    if (par && par->threads() > 1 && bs > 1) {
        // One batch item per shard: each item's GEMM is the unchanged
        // serial core, so the batch split is trivially bit-identical.
        par->run(static_cast<size_t>(bs), [&](size_t i, int) {
            matmulCore(pa + static_cast<int64_t>(i) * m * k,
                       pb + static_cast<int64_t>(i) * k * n, nullptr,
                       po + static_cast<int64_t>(i) * m * n, m, k, n);
        });
        return out;
    }
    for (int64_t i = 0; i < bs; ++i)
        matmulCoreEpiPar(par, pa + i * m * k, pb + i * k * n,
                         po + i * m * n, m, k, n, nullptr, nullptr,
                         nullptr, 0);
    return out;
}

Tensor
layerNorm(const Tensor &x, const Tensor &gamma, const Tensor &beta,
          float eps, Tensor dst)
{
    int64_t d = x.shape().dim(-1);
    Tensor xc = asF32(x);
    int64_t rows = xc.numel() / d;
    Tensor out = claimOut(std::move(dst), x.shape(), DType::F32);
    const float *px = xc.dataF32();
    float *po = out.dataF32();
    Tensor gc = gamma.defined() ? asF32(gamma) : Tensor();
    Tensor bc = beta.defined() ? asF32(beta) : Tensor();
    const float *pg = gc.defined() ? gc.dataF32() : nullptr;
    const float *pb = bc.defined() ? bc.dataF32() : nullptr;
    for (int64_t i = 0; i < rows; ++i) {
        const float *row = px + i * d;
        float *orow = po + i * d;
        // Single-pass Welford moments: one sweep computes mean and M2
        // (the reference makes separate mean and variance sweeps).
        // Welford centers each update, so unlike the naive
        // E[x^2]-mean^2 shortcut it does not cancel catastrophically
        // on rows with a large common offset.
        float mean = 0.0f, m2 = 0.0f;
        for (int64_t j = 0; j < d; ++j) {
            float v = row[j];
            float delta = v - mean;
            mean += delta / static_cast<float>(j + 1);
            m2 += delta * (v - mean);
        }
        float var = m2 / static_cast<float>(d);
        float inv = 1.0f / std::sqrt(var + eps);
        for (int64_t j = 0; j < d; ++j) {
            float v = (row[j] - mean) * inv;
            if (pg)
                v *= pg[j];
            if (pb)
                v += pb[j];
            orow[j] = v;
        }
    }
    return out;
}

Tensor
batchNorm2d(const Tensor &x, const Tensor &gamma, const Tensor &beta,
            const Tensor &mean, const Tensor &var, float eps, Tensor dst)
{
    if (x.shape().rank() != 4)
        throw std::runtime_error("batchNorm2d: NCHW input required");
    int64_t n = x.shape()[0], c = x.shape()[1];
    int64_t hw = x.shape()[2] * x.shape()[3];
    Tensor xc = asF32(x);
    Tensor out = claimOut(std::move(dst), x.shape(), DType::F32);
    const float *px = xc.dataF32();
    float *po = out.dataF32();
    Tensor mc = asF32(mean);
    Tensor vc = asF32(var);
    Tensor gc = gamma.defined() ? asF32(gamma) : Tensor();
    Tensor bc = beta.defined() ? asF32(beta) : Tensor();
    const float *pm = mc.dataF32();
    const float *pv = vc.dataF32();
    const float *pg = gc.defined() ? gc.dataF32() : nullptr;
    const float *pb = bc.defined() ? bc.dataF32() : nullptr;

    // Per-channel affine hoisted out of the image loop (the reference
    // recomputes scale/shift for every image). Same float expressions,
    // so results are bit-identical.
    Tensor affines = scratchEmpty(Shape{2, c}, DType::F32);
    float *scale = affines.dataF32();
    float *shift = scale + c;
    for (int64_t cc = 0; cc < c; ++cc) {
        float inv = 1.0f / std::sqrt(pv[cc] + eps);
        float s = pg ? pg[cc] * inv : inv;
        scale[cc] = s;
        shift[cc] = (pb ? pb[cc] : 0.0f) - pm[cc] * s;
    }
    for (int64_t img = 0; img < n; ++img) {
        for (int64_t cc = 0; cc < c; ++cc) {
            float s = scale[cc];
            float t = shift[cc];
            const float *row = px + (img * c + cc) * hw;
            float *orow = po + (img * c + cc) * hw;
            for (int64_t j = 0; j < hw; ++j)
                orow[j] = row[j] * s + t;
        }
    }
    return out;
}

Tensor
softmax(const Tensor &x, int dim, Tensor dst)
{
    int r = static_cast<int>(x.shape().rank());
    int nd = dim < 0 ? dim + r : dim;
    if (nd != r - 1 || !fastF32(x))
        return kernels::softmax(x, dim,
                                std::move(dst));  // permuting case:
                                                  // reference

    int64_t d = x.shape().dim(-1);
    int64_t rows = x.numel() / d;
    Tensor out = claimOut(std::move(dst), x.shape(), DType::F32);
    const float *px = x.dataF32();
    float *po = out.dataF32();
    for (int64_t i = 0; i < rows; ++i) {
        const float *row = px + i * d;
        float *orow = po + i * d;
        float mx = row[0];
        for (int64_t j = 1; j < d; ++j)
            mx = std::max(mx, row[j]);
        float sum = 0.0f;
        for (int64_t j = 0; j < d; ++j) {
            orow[j] = std::exp(row[j] - mx);
            sum += orow[j];
        }
        float inv = 1.0f / sum;
        for (int64_t j = 0; j < d; ++j)
            orow[j] *= inv;
    }
    return out;
}

// ----- elementwise fast paths --------------------------------------------

namespace {

/**
 * Contiguous-F32 unary fast path: raw pointer sweep with the SAME
 * per-element expression as the reference (bit-identical), without the
 * reference's per-element std::function call and strided flat-index
 * decomposition. @p Ref is taken as a fallback for other dtypes /
 * layouts.
 */
template <typename F, typename Ref>
Tensor
unaryFast(const Tensor &x, F f, Ref ref, Tensor dst)
{
    if (!fastF32(x))
        return ref(x, std::move(dst));
    Tensor out = claimOut(std::move(dst), x.shape(), DType::F32);
    const float *px = x.dataF32();
    float *po = out.dataF32();
    int64_t n = x.numel();
    for (int64_t i = 0; i < n; ++i)
        po[i] = f(px[i]);
    return out;
}

/** Same-shape contiguous-F32 binary fast path; else reference. */
template <typename F, typename Ref>
Tensor
binaryFast(const Tensor &a, const Tensor &b, F f, Ref ref, Tensor dst)
{
    if (!fastF32(a) || !fastF32(b) || !(a.shape() == b.shape()))
        return ref(a, b, std::move(dst));
    Tensor out = claimOut(std::move(dst), a.shape(), DType::F32);
    const float *pa = a.dataF32();
    const float *pb = b.dataF32();
    float *po = out.dataF32();
    int64_t n = a.numel();
    for (int64_t i = 0; i < n; ++i)
        po[i] = f(pa[i], pb[i]);
    return out;
}

}  // namespace

Tensor
relu(const Tensor &x, Tensor dst)
{
    return unaryFast(x, scalar::relu, kernels::relu, std::move(dst));
}

Tensor
gelu(const Tensor &x, Tensor dst)
{
    return unaryFast(x, scalar::gelu, kernels::gelu, std::move(dst));
}

Tensor
silu(const Tensor &x, Tensor dst)
{
    return unaryFast(x, scalar::silu, kernels::silu, std::move(dst));
}

Tensor
sigmoid(const Tensor &x, Tensor dst)
{
    return unaryFast(x, scalar::sigmoid, kernels::sigmoid, std::move(dst));
}

Tensor
tanhOp(const Tensor &x, Tensor dst)
{
    return unaryFast(x, scalar::tanhOp, kernels::tanhOp, std::move(dst));
}

Tensor
expOp(const Tensor &x, Tensor dst)
{
    return unaryFast(x, scalar::expOp, kernels::expOp, std::move(dst));
}

Tensor
add(const Tensor &a, const Tensor &b, Tensor dst)
{
    return binaryFast(
        a, b, [](float x, float y) { return x + y; }, kernels::add,
        std::move(dst));
}

Tensor
sub(const Tensor &a, const Tensor &b, Tensor dst)
{
    return binaryFast(
        a, b, [](float x, float y) { return x - y; }, kernels::sub,
        std::move(dst));
}

Tensor
mul(const Tensor &a, const Tensor &b, Tensor dst)
{
    return binaryFast(
        a, b, [](float x, float y) { return x * y; }, kernels::mul,
        std::move(dst));
}

Tensor
div(const Tensor &a, const Tensor &b, Tensor dst)
{
    return binaryFast(
        a, b, [](float x, float y) { return x / y; }, kernels::div,
        std::move(dst));
}

Tensor
addScalar(const Tensor &x, float s, Tensor dst)
{
    return unaryFast(
        x, [s](float v) { return v + s; },
        [s](const Tensor &t, Tensor d) {
            return kernels::addScalar(t, s, std::move(d));
        },
        std::move(dst));
}

Tensor
mulScalar(const Tensor &x, float s, Tensor dst)
{
    return unaryFast(
        x, [s](float v) { return v * s; },
        [s](const Tensor &t, Tensor d) {
            return kernels::mulScalar(t, s, std::move(d));
        },
        std::move(dst));
}

}  // namespace opt
}  // namespace kernels
}  // namespace ngb
