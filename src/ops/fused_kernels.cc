#include "ops/fused_kernels.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <stdexcept>
#include <string>
#include <utility>

#include "ops/kernels.h"
#include "ops/optimized_kernels.h"
#include "ops/scalar_ops.h"
#include "quant/quant_kernels.h"
#include "quant/weight_pack.h"
#include "tensor/scratch.h"

namespace ngb {

namespace {

namespace sc = kernels::scalar;
namespace ko = kernels::opt;
namespace qnt = kernels::qnt;

/** ParamStore::derived slots used on fused member nodes. */
constexpr size_t kFoldedWeightSlot = 0;
constexpr size_t kFoldedBiasSlot = 1;

using kernels::opt::asF32;
using kernels::opt::fastF32;

/** Context string for fused-chain errors. */
std::string
chainName(const Node &f)
{
    return "fused chain '" + (f.name.empty() ? "<unnamed>" : f.name) +
           "'";
}

/**
 * Map member @p m's kind to a single-pass unary stage, when it is one
 * of the point-wise operators whose optimized sweep uses the shared
 * scalar expressions (the bit-identity set). Binary Add/Mul (two
 * inputs) are not stages.
 */
bool
unaryStageOf(const Node &m, sc::UnaryStage *out)
{
    if (m.inputs.size() != 1)
        return false;
    switch (m.kind) {
      case OpKind::ReLU:
        out->kind = sc::UnaryKind::Relu;
        return true;
      case OpKind::GELU:
        out->kind = sc::UnaryKind::Gelu;
        return true;
      case OpKind::SiLU:
        out->kind = sc::UnaryKind::Silu;
        return true;
      case OpKind::Sigmoid:
        out->kind = sc::UnaryKind::Sigmoid;
        return true;
      case OpKind::Tanh:
        out->kind = sc::UnaryKind::Tanh;
        return true;
      case OpKind::Exp:
        out->kind = sc::UnaryKind::Exp;
        return true;
      case OpKind::Add:
        out->kind = sc::UnaryKind::AddScalar;
        out->scalar = static_cast<float>(m.attrs.getF("scalar"));
        return true;
      case OpKind::Mul:
        out->kind = sc::UnaryKind::MulScalar;
        out->scalar = static_cast<float>(m.attrs.getF("scalar"));
        return true;
      default:
        return false;
    }
}

/**
 * Collect the unary stages for members [@p from, end). Returns false
 * when any member is not a stage (or declares a non-F32 result, which
 * the single-pass F32 loop could not reproduce).
 */
bool
collectStages(const std::vector<Node> &body, size_t from,
              std::vector<sc::UnaryStage> *stages)
{
    for (size_t j = from; j < body.size(); ++j) {
        sc::UnaryStage s;
        if (!unaryStageOf(body[j], &s))
            return false;
        if (body[j].outDtypes.size() != 1 ||
            body[j].outDtypes[0] != DType::F32)
            return false;
        stages->push_back(s);
    }
    return true;
}

/** Resolve external port @p port of member @p m through the fused
 *  node's inputs. */
const Tensor &
externalInput(const KernelContext &c, const Node &m, size_t port)
{
    const auto &ext = m.attrs.getInts("__ext_ports");
    if (port >= ext.size() || ext[port] < 0 ||
        ext[port] >= static_cast<int64_t>(c.node.inputs.size()))
        throw std::runtime_error(chainName(c.node) +
                                 ": malformed __ext_ports on member '" +
                                 m.name + "'");
    return c.input(c.node.inputs[static_cast<size_t>(ext[port])]);
}

/**
 * Apply one stage over a block with a TIGHT per-kind loop: the switch
 * is hoisted out of the element loop and in/out are restrict-disjoint
 * (the caller ping-pongs scratch buffers), so cheap stages vectorize
 * exactly like the unfused optimized sweeps they replace — an
 * in-place loop would fail the vectorizer's alias check and run
 * scalar, slower than the sweeps it fuses.
 */
#if defined(__GNUC__)
__attribute__((noinline))  // keep the __restrict__ contract: inlining
                           // into the block loop drops it and the
                           // stage loops fall back to scalar code
#endif
void
applyStageBlock(const sc::UnaryStage s, const float *__restrict__ in,
                float *__restrict__ out, int64_t n)
{
    // NOTE @p s is taken by value: a reference could alias the output
    // buffer, forcing a per-element reload of s.scalar and defeating
    // vectorization of the stage loops.
    switch (s.kind) {
      case sc::UnaryKind::Relu:
        for (int64_t i = 0; i < n; ++i)
            out[i] = sc::relu(in[i]);
        break;
      case sc::UnaryKind::Gelu:
        for (int64_t i = 0; i < n; ++i)
            out[i] = sc::gelu(in[i]);
        break;
      case sc::UnaryKind::Silu:
        for (int64_t i = 0; i < n; ++i)
            out[i] = sc::silu(in[i]);
        break;
      case sc::UnaryKind::Sigmoid:
        for (int64_t i = 0; i < n; ++i)
            out[i] = sc::sigmoid(in[i]);
        break;
      case sc::UnaryKind::Tanh:
        for (int64_t i = 0; i < n; ++i)
            out[i] = sc::tanhOp(in[i]);
        break;
      case sc::UnaryKind::Exp:
        for (int64_t i = 0; i < n; ++i)
            out[i] = sc::expOp(in[i]);
        break;
      case sc::UnaryKind::AddScalar:
        for (int64_t i = 0; i < n; ++i)
            out[i] = in[i] + s.scalar;
        break;
      case sc::UnaryKind::MulScalar:
        for (int64_t i = 0; i < n; ++i)
            out[i] = in[i] * s.scalar;
        break;
    }
}

/**
 * Run a whole unary chain over @p x in L1-resident blocks: each block
 * is read from memory once and written once for the ENTIRE chain
 * (the unfused sweeps stream the full tensor per op), while every
 * stage still runs as a tight vectorizable loop. Per element the
 * stage order is unchanged, so results are bit-identical to the
 * member-by-member sweeps.
 */
Tensor
singlePassChain(const Tensor &x, const std::vector<sc::UnaryStage> &st,
                Tensor dst)
{
    constexpr int64_t kBlk = 4096;  // 16 KiB blocks: L1-hot
    Tensor out =
        kernels::claimOut(std::move(dst), x.shape(), DType::F32);
    const float *px = x.dataF32();
    float *po = out.dataF32();
    int64_t n = x.numel();
    Tensor ping = scratchEmpty(Shape{kBlk}, DType::F32);
    Tensor pong = scratchEmpty(Shape{kBlk}, DType::F32);
    float *scratch_a = ping.dataF32();
    float *scratch_b = pong.dataF32();
    for (int64_t i0 = 0; i0 < n; i0 += kBlk) {
        int64_t len = std::min(kBlk, n - i0);
        const float *src = px + i0;
        for (size_t j = 0; j < st.size(); ++j) {
            float *stage_out = j + 1 == st.size()
                                   ? po + i0
                                   : (src == scratch_a ? scratch_b
                                                       : scratch_a);
            applyStageBlock(st[j], src, stage_out, len);
            src = stage_out;
        }
    }
    return out;
}

/**
 * Hands the chain's tail member the ENCLOSING fused node's output
 * buffer: members carry synthetic ids the memory plan does not know,
 * so the tail resolves its destination through the outer context
 * (planned arena slot or heap) instead of its own node identity.
 */
class TailAllocator final : public Allocator
{
  public:
    explicit TailAllocator(const KernelContext &outer) : outer_(outer) {}

    Tensor allocate(const Node &, size_t i) override
    {
        claimed_ = outer_.out(i);
        return claimed_;
    }

    const char *name() const override { return "fused-tail"; }

    /** The buffer handed to the tail member, if it asked for one. */
    const Tensor &claimed() const { return claimed_; }

  private:
    const KernelContext &outer_;
    Tensor claimed_;
};

/** The BN-like kinds whose running-stats affine folds into a conv. */
bool
isFoldableBn(OpKind k)
{
    return k == OpKind::BatchNorm2d || k == OpKind::FrozenBatchNorm2d;
}

/**
 * Merged Conv+BN weight: W'[f] = W[f] * gamma[f] / sqrt(var[f] + eps).
 * Memoized on the conv member's synthetic id, so every request of a
 * long-lived engine reuses one fold.
 */
const Tensor &
foldedConvWeight(const Node &conv, const Node &bn, ParamStore &params)
{
    return params.derived(conv, kFoldedWeightSlot, [&]() -> Tensor {
        Tensor w = asF32(params.get(conv, 0));
        Tensor gamma = asF32(params.get(bn, 0));
        Tensor var = asF32(params.get(bn, 3));
        float eps = static_cast<float>(bn.attrs.getF("eps", 1e-5));
        int64_t f = w.shape()[0];
        int64_t per = w.numel() / f;
        Tensor out(w.shape(), DType::F32);
        const float *pw = w.dataF32();
        const float *pg = gamma.dataF32();
        const float *pv = var.dataF32();
        float *po = out.dataF32();
        for (int64_t ff = 0; ff < f; ++ff) {
            float inv = 1.0f / std::sqrt(pv[ff] + eps);
            float s = pg[ff] * inv;
            const float *row = pw + ff * per;
            float *orow = po + ff * per;
            for (int64_t j = 0; j < per; ++j)
                orow[j] = row[j] * s;
        }
        return out;
    });
}

/** Merged Conv+BN bias: b'[f] = beta[f] + (b0[f] - mean[f]) * s[f]. */
const Tensor &
foldedConvBias(const Node &conv, const Node &bn, ParamStore &params)
{
    return params.derived(conv, kFoldedBiasSlot, [&]() -> Tensor {
        Tensor gamma = asF32(params.get(bn, 0));
        Tensor beta = asF32(params.get(bn, 1));
        Tensor mean = asF32(params.get(bn, 2));
        Tensor var = asF32(params.get(bn, 3));
        float eps = static_cast<float>(bn.attrs.getF("eps", 1e-5));
        int64_t f = gamma.numel();
        Tensor b0;
        if (conv.paramShapes.size() > 1)
            b0 = asF32(params.get(conv, conv.paramShapes.size() - 1));
        Tensor out(Shape{f}, DType::F32);
        const float *pg = gamma.dataF32();
        const float *pb = beta.dataF32();
        const float *pm = mean.dataF32();
        const float *pv = var.dataF32();
        const float *p0 = b0.defined() ? b0.dataF32() : nullptr;
        float *po = out.dataF32();
        for (int64_t ff = 0; ff < f; ++ff) {
            float inv = 1.0f / std::sqrt(pv[ff] + eps);
            float s = pg[ff] * inv;
            po[ff] = pb[ff] + ((p0 ? p0[ff] : 0.0f) - pm[ff]) * s;
        }
        return out;
    });
}

/** Packed [K,N] weight of a Linear member (shared slot with the
 *  backend's top-level Linear packing convention: derived slot 0). */
const Tensor &
packedLinearWeight(const Node &lm, ParamStore &params)
{
    return params.derived(lm, 0, [&] {
        return ko::packWeightTranspose(params.get(lm, 0));
    });
}

}  // namespace

std::vector<Tensor>
evalFusedChain(const KernelContext &c, const Backend &memberBackend)
{
    const Node &f = c.node;
    if (f.fusedBody.empty())
        throw std::runtime_error(
            chainName(f) +
            ": no folded members (fusedBody is empty; was this node "
            "produced by applyFusion?)");

    // External inputs the chain result could alias (layout-op tails):
    // under arena execution such a view would escape into a buffer the
    // planner thinks is dead, so it must be copied out below.
    std::vector<const Storage *> ext_storages;

    TailAllocator tail(c);
    Tensor chain;
    for (size_t j = 0; j < f.fusedBody.size(); ++j) {
        const Node &m = f.fusedBody[j];
        if (m.outShapes.size() != 1)
            throw std::runtime_error(
                chainName(f) + ": cannot fold member '" + m.name +
                "' (" + opKindName(m.kind) +
                "): multi-output operators are not foldable");
        const auto &ext = m.attrs.getInts("__ext_ports");
        if (ext.size() != m.inputs.size())
            throw std::runtime_error(chainName(f) +
                                     ": member '" + m.name +
                                     "' has no valid __ext_ports map");
        // Resolve every port up front (Tensor copies are shallow).
        std::vector<Tensor> ports(m.inputs.size());
        for (size_t p = 0; p < ext.size(); ++p) {
            if (ext[p] < 0) {
                if (j == 0 || !chain.defined())
                    throw std::runtime_error(
                        chainName(f) + ": head member '" + m.name +
                        "' references a predecessor output");
                ports[p] = chain;
            } else {
                ports[p] = externalInput(c, m, p);
                ext_storages.push_back(ports[p].storage().get());
            }
        }
        std::function<const Tensor &(const Value &)> input =
            [&](const Value &v) -> const Tensor & {
            for (size_t p = 0; p < m.inputs.size(); ++p)
                if (m.inputs[p] == v)
                    return ports[p];
            throw std::runtime_error(chainName(f) + ": member '" +
                                     m.name +
                                     "' resolved an unknown input");
        };
        // Intermediates die inside this (scoped) kernel call, so they
        // come from scratch; the tail writes straight into the fused
        // node's own output buffer.
        Allocator *member_alloc =
            j + 1 == f.fusedBody.size()
                ? static_cast<Allocator *>(&tail)
                : &ScratchAllocator::instance();
        std::vector<Tensor> outs;
        try {
            outs = memberBackend.eval(KernelContext{
                m, input, c.params, &memberBackend, member_alloc,
                c.par});
        } catch (const std::exception &e) {
            throw std::runtime_error(
                chainName(f) + ": cannot fold member '" + m.name +
                "' (" + opKindName(m.kind) + "): " + e.what());
        }
        if (outs.size() != 1)
            throw std::runtime_error(
                chainName(f) + ": member '" + m.name + "' produced " +
                std::to_string(outs.size()) +
                " outputs; fused chains are single-value");
        chain = std::move(outs[0]);
    }

    // A layout-op tail may have produced a VIEW instead of writing the
    // tail buffer: of a scratch intermediate (whose bytes die with
    // this call) or, under arena execution, of an external input
    // (whose arena slot the planner may reuse while this result is
    // still live). Both must be materialized into the node's own
    // output buffer before escaping. A chain that already sits in the
    // buffer the TailAllocator handed out is in place — under arena
    // execution EVERY planned tensor shares one block Storage, so
    // storage identity with an external input alone proves nothing
    // and copying would be a same-slot self-copy.
    bool in_place = tail.claimed().defined() &&
                    chain.storage().get() ==
                        tail.claimed().storage().get() &&
                    chain.offset() == tail.claimed().offset();
    if (!in_place) {
        bool escapes_scratch = isScratch(chain);
        bool aliases_external = false;
        if (c.alloc && !escapes_scratch)
            for (const Storage *s : ext_storages)
                aliases_external =
                    aliases_external || chain.storage().get() == s;
        if (escapes_scratch || aliases_external) {
            Tensor out = c.out(0);
            out.copyFrom(chain);
            chain = std::move(out);
        }
    }
    return singleOutput(std::move(chain));
}

std::vector<Tensor>
evalFusedOptimized(const KernelContext &c)
{
    const Node &f = c.node;
    const std::vector<Node> &body = f.fusedBody;
    const Backend &active = c.backend ? *c.backend : optimizedBackend();
    if (body.empty())
        return evalFusedChain(c, active);  // throws the descriptive error

    // CONV (+BN) (+ unary epilogue): one tiled-GEMM convolution. With
    // a BN member the affine is pre-merged into weights/bias
    // (tolerance: the scale multiplies before the k accumulation
    // instead of after).
    if (body[0].kind == OpKind::Conv2d) {
        const Node &conv = body[0];
        size_t epi_start = 1;
        const Node *bn = nullptr;
        if (body.size() > 1 && isFoldableBn(body[1].kind)) {
            bn = &body[1];
            epi_start = 2;
        }
        std::vector<sc::UnaryStage> stages;
        if (collectStages(body, epi_start, &stages)) {
            const Tensor &x = externalInput(c, conv, 0);
            Tensor w, b;
            if (bn) {
                w = foldedConvWeight(conv, *bn, c.params);
                b = foldedConvBias(conv, *bn, c.params);
            } else {
                w = c.params.get(conv, 0);
                if (conv.paramShapes.size() > 1)
                    b = c.params.get(conv, conv.paramShapes.size() - 1);
            }
            return singleOutput(ko::conv2dEpi(
                x, w, b, static_cast<int>(conv.attrs.getI("stride")),
                static_cast<int>(conv.attrs.getI("padding")),
                static_cast<int>(conv.attrs.getI("groups", 1)),
                stages.data(), stages.size(), c.out(0), c.par));
        }
    }

    // Int8Linear(requant) + unary epilogue: the whole quantized region
    // tail — rescale, bias, and point-wise stages — runs inside the
    // int8 GEMM's tile write-out. Bit-identical to the granular
    // pipeline (i32 accumulation is order-exact, the epilogue is the
    // shared scalar expression chain).
    if (body[0].kind == OpKind::Int8Linear &&
        body[0].attrs.getI("requant", 0) && body.size() > 1) {
        std::vector<sc::UnaryStage> stages;
        if (collectStages(body, 1, &stages)) {
            const Node &lm = body[0];
            const Tensor &xq = externalInput(c, lm, 0);
            const Tensor &xs = externalInput(c, lm, 1);
            Tensor b;
            if (lm.paramShapes.size() > 1)
                b = c.params.get(lm, lm.paramShapes.size() - 1);
            return singleOutput(qnt::int8LinearPackedRequant(
                xq, qnt::scaleValue(xs),
                quant::packedWeight(lm, c.params),
                quant::weightScales(lm, c.params), b, stages.data(),
                stages.size(), c.out(0), c.par));
        }
    }

    // Weight-only-int8 Linear + unary epilogue: tiled GEMM over the
    // packed int8 weight with scale/bias/stages in the write-out.
    if (body[0].kind == OpKind::Linear &&
        body[0].attrs.getI("wq8", 0) && body.size() > 1) {
        std::vector<sc::UnaryStage> stages;
        if (collectStages(body, 1, &stages)) {
            const Node &lm = body[0];
            const Tensor &x = externalInput(c, lm, 0);
            Tensor b;
            if (lm.paramShapes.size() > 1)
                b = c.params.get(lm, lm.paramShapes.size() - 1);
            return singleOutput(qnt::w8LinearPacked(
                x, quant::packedWeight(lm, c.params),
                quant::weightScales(lm, c.params), b, stages.data(),
                stages.size(), c.out(0), c.par));
        }
    }

    // Linear + unary epilogue: stages fused into the GEMM tile
    // write-out. Bit-identical to linearPacked + separate sweeps.
    if (body[0].kind == OpKind::Linear &&
        !body[0].attrs.getI("wq8", 0) && body.size() > 1) {
        std::vector<sc::UnaryStage> stages;
        if (collectStages(body, 1, &stages)) {
            const Node &lm = body[0];
            const Tensor &x = externalInput(c, lm, 0);
            const Tensor &wt = packedLinearWeight(lm, c.params);
            Tensor b;
            if (lm.paramShapes.size() > 1)
                b = c.params.get(lm, lm.paramShapes.size() - 1);
            return singleOutput(ko::linearPackedEpi(
                x, wt, b, stages.data(), stages.size(), c.out(0),
                c.par));
        }
    }

    // All-unary point-wise chain on contiguous F32 data: single pass
    // over the tensor (one read, one write for the whole chain, with
    // L1-blocked vectorizable stage loops). Bit-identical to the
    // member-by-member optimized sweeps.
    {
        std::vector<sc::UnaryStage> stages;
        if (collectStages(body, 0, &stages)) {
            const Tensor &x = externalInput(c, body[0], 0);
            if (fastF32(x))
                return singleOutput(
                    singlePassChain(x, stages, c.out(0)));
        }
    }

    // General case (normalizations, softmax, binary elementwise, Q/DQ,
    // layout members, BMM/MatMul heads, ...): interpret the chain
    // through the active backend, so per-op optimized kernels still
    // apply inside the group.
    return evalFusedChain(c, active);
}

void
prepareFusedGroups(const Graph &g, ParamStore &params)
{
    for (const Node &n : g.nodes()) {
        if (n.kind != OpKind::Fused || n.fusedBody.empty())
            continue;
        const std::vector<Node> &body = n.fusedBody;
        if (body[0].kind == OpKind::Conv2d && body.size() > 1 &&
            isFoldableBn(body[1].kind)) {
            foldedConvWeight(body[0], body[1], params);
            foldedConvBias(body[0], body[1], params);
        }
        for (const Node &m : body) {
            if (m.kind == OpKind::Linear && !m.paramShapes.empty()) {
                if (m.attrs.getI("wq8", 0))
                    quant::packedWeight(m, params);
                else
                    packedLinearWeight(m, params);
            }
            if (m.kind == OpKind::Int8Linear &&
                m.attrs.getI("executable", 0))
                quant::packedWeight(m, params);
            if ((m.kind == OpKind::Quantize ||
                 m.kind == OpKind::Dequantize) &&
                m.attrs.getI("executable", 0) && !m.paramShapes.empty())
                quant::weightScales(m, params);
        }
    }
}

}  // namespace ngb
