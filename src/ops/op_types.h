#ifndef NGB_OPS_OP_TYPES_H
#define NGB_OPS_OP_TYPES_H

#include <string>
#include <vector>

namespace ngb {

/**
 * Every concrete ML operator the framework can represent.
 *
 * The set is the union of the GEMM operators and the non-GEMM operator
 * inventory of NonGEMM Bench Table I, plus the quantization operators
 * introduced by the LLM.int8() pass (Section IV-C) and a Fused
 * pseudo-operator produced by the deployment-flow fusion engines.
 */
enum class OpKind {
    // GEMM-based operators.
    Linear,
    Conv2d,
    BMM,
    MatMul,
    Int8Linear,

    // Activation operators.
    ReLU,
    GELU,
    SiLU,

    // Normalization operators.
    LayerNorm,
    BatchNorm2d,
    FrozenBatchNorm2d,
    RMSNorm,
    GroupNorm,

    // Memory (layout) operators.
    Reshape,
    View,
    Permute,
    Transpose,
    Contiguous,
    Split,
    Expand,
    Squeeze,
    Unsqueeze,
    Concat,
    Slice,
    Roll,
    Pad,

    // Element-wise arithmetic operators.
    Add,
    Sub,
    Mul,
    Div,
    Neg,
    Pow,
    Sqrt,
    Erf,
    Exp,
    Log,
    Tanh,
    Where,

    // Logit computation.
    Softmax,
    LogSoftmax,

    // RoI selection.
    NMS,
    RoIAlign,

    // Interpolation.
    Interpolate,

    // Embedding.
    Embedding,

    // Pooling and misc.
    MaxPool2d,
    AvgPool2d,
    AdaptiveAvgPool2d,
    TopK,
    Gather,
    CumSum,
    Sigmoid,

    // Quantization (Q/DQ) operators.
    Quantize,
    Dequantize,

    // A kernel produced by operator fusion in a deployment flow.
    Fused,
};

/**
 * Operator groups used for latency attribution. These are exactly the
 * legend categories of the paper's Figure 6 plus the Q/DQ class that
 * appears in Figure 9.
 */
enum class OpCategory {
    Gemm,
    Activation,
    Normalization,
    Memory,
    ElementWise,
    LogitCompute,
    RoiSelection,
    Interpolation,
    Embedding,
    QDQ,
    Misc,
};

/** Stable lower_snake name for an operator kind, e.g. "layer_norm". */
std::string opKindName(OpKind k);

/**
 * Every OpKind, in declaration order (Fused last). Lets registry
 * completeness checks and sweeps iterate the inventory without
 * hand-maintaining a parallel list at each call site.
 */
const std::vector<OpKind> &allOpKinds();

/** Display name for a category, e.g. "Normalization". */
std::string opCategoryName(OpCategory c);

/** The attribution group an operator belongs to. */
OpCategory opCategoryOf(OpKind k);

/** True for the GEMM-based operator class (Section II-A). */
bool isGemmOp(OpKind k);

/**
 * True for layout operators that are pure metadata updates (stride
 * tricks) in eager PyTorch and therefore cost only a kernel-free call:
 * View, Transpose/Permute (no copy), Squeeze/Unsqueeze, Expand, Slice.
 * Contiguous, Reshape-with-copy, Concat, Split and Roll move bytes.
 */
bool isZeroCopyLayoutOp(OpKind k);

}  // namespace ngb

#endif  // NGB_OPS_OP_TYPES_H
