#ifndef NGB_OPS_ALLOCATOR_H
#define NGB_OPS_ALLOCATOR_H

#include "graph/node.h"
#include "tensor/tensor.h"

/**
 * @file
 * The output-buffer allocation seam between executors and kernels.
 *
 * Kernels obtain destination buffers through KernelContext::out(),
 * which delegates to the executor-installed Allocator — destination
 * passing without changing kernel math. The default (no allocator /
 * HeapAllocator) hands out fresh uninitialized heap tensors; the
 * runtime's ArenaAllocator (runtime/arena.h) instead binds each
 * planned node output to its MemoryPlan offset inside a pooled arena
 * block, which is what makes the steady-state serving loop malloc- and
 * memset-free.
 */

namespace ngb {

/** Provider of output buffers for node evaluations. */
class Allocator
{
  public:
    virtual ~Allocator() = default;

    /**
     * An uninitialized contiguous buffer for output @p i of @p n
     * (shape n.outShapes[i], dtype n.outDtypes[i]). The kernel must
     * fully write it.
     */
    virtual Tensor allocate(const Node &n, size_t i) = 0;

    /**
     * Byte offset output @p i of @p n would land at inside this
     * allocator's backing block, or -1 when the output is not planned
     * (heap/scratch policies, unplanned values). Observability only —
     * lets the tracer tag node spans with their arena placement
     * without re-deriving the plan.
     */
    virtual int64_t plannedOffset(const Node &, size_t) const
    {
        return -1;
    }

    virtual const char *name() const = 0;
};

/** The default policy: every output is a fresh heap tensor. */
class HeapAllocator final : public Allocator
{
  public:
    Tensor allocate(const Node &n, size_t i) override
    {
        return Tensor::empty(n.outShapes[i], n.outDtypes[i]);
    }

    const char *name() const override { return "heap"; }

    static HeapAllocator &instance();
};

/**
 * Outputs from the thread's scratch arena — for evaluations whose
 * results die within an enclosing ScratchScope, e.g. the intermediate
 * members of an interpreted fused chain.
 */
class ScratchAllocator final : public Allocator
{
  public:
    Tensor allocate(const Node &n, size_t i) override;

    const char *name() const override { return "scratch"; }

    static ScratchAllocator &instance();
};

}  // namespace ngb

#endif  // NGB_OPS_ALLOCATOR_H
