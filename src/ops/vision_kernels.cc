#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "ops/kernels.h"

namespace ngb {
namespace kernels {

namespace {

float
iou(const float *a, const float *b)
{
    // Boxes as (y1, x1, y2, x2).
    float iy1 = std::max(a[0], b[0]);
    float ix1 = std::max(a[1], b[1]);
    float iy2 = std::min(a[2], b[2]);
    float ix2 = std::min(a[3], b[3]);
    float ih = std::max(0.0f, iy2 - iy1);
    float iw = std::max(0.0f, ix2 - ix1);
    float inter = ih * iw;
    float area_a = (a[2] - a[0]) * (a[3] - a[1]);
    float area_b = (b[2] - b[0]) * (b[3] - b[1]);
    float uni = area_a + area_b - inter;
    return uni > 0.0f ? inter / uni : 0.0f;
}

/** Bilinear sample from one channel plane. */
float
bilinear(const float *plane, int64_t h, int64_t w, float y, float x)
{
    if (y < -1.0f || y > static_cast<float>(h) || x < -1.0f ||
        x > static_cast<float>(w))
        return 0.0f;
    y = std::clamp(y, 0.0f, static_cast<float>(h - 1));
    x = std::clamp(x, 0.0f, static_cast<float>(w - 1));
    int64_t y0 = static_cast<int64_t>(y);
    int64_t x0 = static_cast<int64_t>(x);
    int64_t y1 = std::min(y0 + 1, h - 1);
    int64_t x1 = std::min(x0 + 1, w - 1);
    float fy = y - static_cast<float>(y0);
    float fx = x - static_cast<float>(x0);
    float v00 = plane[y0 * w + x0];
    float v01 = plane[y0 * w + x1];
    float v10 = plane[y1 * w + x0];
    float v11 = plane[y1 * w + x1];
    return v00 * (1 - fy) * (1 - fx) + v01 * (1 - fy) * fx +
           v10 * fy * (1 - fx) + v11 * fy * fx;
}

}  // namespace

Tensor
nms(const Tensor &boxes, const Tensor &scores, float iou_threshold,
    float score_threshold)
{
    if (boxes.shape().rank() != 2 || boxes.shape()[1] != 4)
        throw std::runtime_error("nms: boxes must be [N,4]");
    int64_t n = boxes.shape()[0];
    if (scores.numel() != n)
        throw std::runtime_error("nms: scores/boxes size mismatch");
    Tensor bc = toContiguousF32(boxes);
    Tensor sc = toContiguousF32(scores);
    const float *pb = bc.dataF32();
    const float *ps = sc.dataF32();

    // Sort candidates by descending score, dropping low scores.
    std::vector<int64_t> order;
    order.reserve(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i)
        if (ps[i] >= score_threshold)
            order.push_back(i);
    std::sort(order.begin(), order.end(),
              [ps](int64_t a, int64_t b) { return ps[a] > ps[b]; });

    std::vector<int64_t> keep;
    std::vector<bool> removed(order.size(), false);
    for (size_t i = 0; i < order.size(); ++i) {
        if (removed[i])
            continue;
        keep.push_back(order[i]);
        const float *bi = pb + order[i] * 4;
        for (size_t j = i + 1; j < order.size(); ++j) {
            if (removed[j])
                continue;
            if (iou(bi, pb + order[j] * 4) > iou_threshold)
                removed[j] = true;
        }
    }
    // Dynamic result size: scratch inside a scope, heap standalone.
    Tensor out = scratchEmpty(Shape{static_cast<int64_t>(keep.size())},
                              DType::I32);
    int32_t *po = out.dataI32();
    for (size_t i = 0; i < keep.size(); ++i)
        po[i] = static_cast<int32_t>(keep[i]);
    return out;
}

Tensor
roiAlign(const Tensor &feat, const Tensor &rois, int out_h, int out_w,
         Tensor dst)
{
    if (feat.shape().rank() != 4)
        throw std::runtime_error("roiAlign: NCHW feature map required");
    if (rois.shape().rank() != 2 || rois.shape()[1] != 5)
        throw std::runtime_error("roiAlign: rois must be [R,5]");
    int64_t n = feat.shape()[0], c = feat.shape()[1];
    int64_t h = feat.shape()[2], w = feat.shape()[3];
    int64_t r = rois.shape()[0];
    Tensor fc = toContiguousF32(feat);
    Tensor rc = toContiguousF32(rois);
    const float *pf = fc.dataF32();
    const float *pr = rc.dataF32();
    Tensor out =
        claimOut(std::move(dst), Shape{r, c, out_h, out_w}, DType::F32);
    float *po = out.dataF32();
    for (int64_t ri = 0; ri < r; ++ri) {
        const float *roi = pr + ri * 5;
        int64_t img = static_cast<int64_t>(roi[0]);
        if (img < 0 || img >= n)
            throw std::runtime_error("roiAlign: batch index out of range");
        float y1 = roi[1], x1 = roi[2], y2 = roi[3], x2 = roi[4];
        float rh = std::max(y2 - y1, 1.0f);
        float rw = std::max(x2 - x1, 1.0f);
        float bin_h = rh / static_cast<float>(out_h);
        float bin_w = rw / static_cast<float>(out_w);
        for (int64_t cc = 0; cc < c; ++cc) {
            const float *plane = pf + (img * c + cc) * h * w;
            float *oplane = po + (ri * c + cc) * out_h * out_w;
            for (int oy = 0; oy < out_h; ++oy) {
                for (int ox = 0; ox < out_w; ++ox) {
                    // One center sample per bin (sampling_ratio = 1).
                    float sy = y1 + (static_cast<float>(oy) + 0.5f) * bin_h;
                    float sx = x1 + (static_cast<float>(ox) + 0.5f) * bin_w;
                    oplane[oy * out_w + ox] = bilinear(plane, h, w, sy, sx);
                }
            }
        }
    }
    return out;
}

Tensor
interpolateBilinear(const Tensor &x, int out_h, int out_w, Tensor dst)
{
    if (x.shape().rank() != 4)
        throw std::runtime_error("interpolate: NCHW input required");
    int64_t n = x.shape()[0], c = x.shape()[1];
    int64_t h = x.shape()[2], w = x.shape()[3];
    Tensor xc = toContiguousF32(x);
    const float *px = xc.dataF32();
    Tensor out =
        claimOut(std::move(dst), Shape{n, c, out_h, out_w}, DType::F32);
    float *po = out.dataF32();
    float sy = static_cast<float>(h) / static_cast<float>(out_h);
    float sx = static_cast<float>(w) / static_cast<float>(out_w);
    for (int64_t img = 0; img < n; ++img) {
        for (int64_t cc = 0; cc < c; ++cc) {
            const float *plane = px + (img * c + cc) * h * w;
            float *oplane = po + (img * c + cc) * out_h * out_w;
            for (int oy = 0; oy < out_h; ++oy) {
                float fy = (static_cast<float>(oy) + 0.5f) * sy - 0.5f;
                for (int ox = 0; ox < out_w; ++ox) {
                    float fx = (static_cast<float>(ox) + 0.5f) * sx - 0.5f;
                    oplane[oy * out_w + ox] = bilinear(plane, h, w, fy, fx);
                }
            }
        }
    }
    return out;
}

namespace {

Tensor
pool2d(const Tensor &x, int kernel, int stride, int padding, bool is_max,
       Tensor dst)
{
    if (x.shape().rank() != 4)
        throw std::runtime_error("pool2d: NCHW input required");
    int64_t n = x.shape()[0], c = x.shape()[1];
    int64_t h = x.shape()[2], w = x.shape()[3];
    int64_t oh = (h + 2 * padding - kernel) / stride + 1;
    int64_t ow = (w + 2 * padding - kernel) / stride + 1;
    Tensor xc = toContiguousF32(x);
    const float *px = xc.dataF32();
    Tensor out = claimOut(std::move(dst), Shape{n, c, oh, ow}, DType::F32);
    float *po = out.dataF32();
    for (int64_t img = 0; img < n; ++img) {
        for (int64_t cc = 0; cc < c; ++cc) {
            const float *plane = px + (img * c + cc) * h * w;
            float *oplane = po + (img * c + cc) * oh * ow;
            for (int64_t oy = 0; oy < oh; ++oy) {
                for (int64_t ox = 0; ox < ow; ++ox) {
                    float best = is_max ? -1e30f : 0.0f;
                    int count = 0;
                    for (int ky = 0; ky < kernel; ++ky) {
                        int64_t iy = oy * stride - padding + ky;
                        if (iy < 0 || iy >= h)
                            continue;
                        for (int kx = 0; kx < kernel; ++kx) {
                            int64_t ix = ox * stride - padding + kx;
                            if (ix < 0 || ix >= w)
                                continue;
                            float v = plane[iy * w + ix];
                            if (is_max)
                                best = std::max(best, v);
                            else
                                best += v;
                            ++count;
                        }
                    }
                    if (!is_max && count > 0)
                        best /= static_cast<float>(kernel * kernel);
                    oplane[oy * ow + ox] = best;
                }
            }
        }
    }
    return out;
}

}  // namespace

Tensor
maxPool2d(const Tensor &x, int kernel, int stride, int padding, Tensor dst)
{
    return pool2d(x, kernel, stride, padding, true, std::move(dst));
}

Tensor
avgPool2d(const Tensor &x, int kernel, int stride, int padding, Tensor dst)
{
    return pool2d(x, kernel, stride, padding, false, std::move(dst));
}

Tensor
adaptiveAvgPool2d(const Tensor &x, int out_h, int out_w, Tensor dst)
{
    if (x.shape().rank() != 4)
        throw std::runtime_error("adaptiveAvgPool2d: NCHW input required");
    int64_t n = x.shape()[0], c = x.shape()[1];
    int64_t h = x.shape()[2], w = x.shape()[3];
    Tensor xc = toContiguousF32(x);
    const float *px = xc.dataF32();
    Tensor out =
        claimOut(std::move(dst), Shape{n, c, out_h, out_w}, DType::F32);
    float *po = out.dataF32();
    for (int64_t img = 0; img < n; ++img) {
        for (int64_t cc = 0; cc < c; ++cc) {
            const float *plane = px + (img * c + cc) * h * w;
            float *oplane = po + (img * c + cc) * out_h * out_w;
            for (int oy = 0; oy < out_h; ++oy) {
                int64_t y0 = oy * h / out_h;
                int64_t y1 = std::max<int64_t>((oy + 1) * h / out_h, y0 + 1);
                for (int ox = 0; ox < out_w; ++ox) {
                    int64_t x0 = ox * w / out_w;
                    int64_t x1 =
                        std::max<int64_t>((ox + 1) * w / out_w, x0 + 1);
                    float sum = 0.0f;
                    for (int64_t iy = y0; iy < y1; ++iy)
                        for (int64_t ix = x0; ix < x1; ++ix)
                            sum += plane[iy * w + ix];
                    oplane[oy * out_w + ox] =
                        sum / static_cast<float>((y1 - y0) * (x1 - x0));
                }
            }
        }
    }
    return out;
}

Tensor
concat(const std::vector<Tensor> &xs, int dim, Tensor dst)
{
    if (xs.empty())
        throw std::runtime_error("concat: empty input list");
    int r = static_cast<int>(xs[0].shape().rank());
    if (dim < 0)
        dim += r;
    size_t du = static_cast<size_t>(dim);
    std::vector<int64_t> dims = xs[0].shape().dims();
    int64_t total = 0;
    for (const Tensor &t : xs) {
        for (size_t i = 0; i < dims.size(); ++i)
            if (i != du && t.shape()[i] != dims[i])
                throw std::runtime_error("concat: shape mismatch");
        total += t.shape()[du];
    }
    dims[du] = total;
    Tensor out = claimOut(std::move(dst), Shape(dims), xs[0].dtype());
    int64_t off = 0;
    for (const Tensor &t : xs) {
        Tensor slot = out.slice(dim, off, t.shape()[du]);
        slot.copyFrom(t);
        off += t.shape()[du];
    }
    return out;
}

std::vector<Tensor>
split(const Tensor &x, int64_t size, int dim)
{
    int r = static_cast<int>(x.shape().rank());
    if (dim < 0)
        dim += r;
    int64_t extent = x.shape()[static_cast<size_t>(dim)];
    std::vector<Tensor> out;
    for (int64_t off = 0; off < extent; off += size)
        out.push_back(x.slice(dim, off, std::min(size, extent - off)));
    return out;
}

Tensor
roll(const Tensor &x, int64_t shift, int dim, Tensor dst)
{
    int r = static_cast<int>(x.shape().rank());
    if (dim < 0)
        dim += r;
    size_t du = static_cast<size_t>(dim);
    int64_t extent = x.shape()[du];
    shift = ((shift % extent) + extent) % extent;
    if (shift == 0)
        return claimOut(std::move(dst), x.shape(), x.dtype()).copyFrom(x);
    Tensor hi = x.slice(dim, extent - shift, shift);
    Tensor lo = x.slice(dim, 0, extent - shift);
    return concat({hi, lo}, dim, std::move(dst));
}

Tensor
pad(const Tensor &x, int dim, int64_t before, int64_t after, Tensor dst)
{
    int r = static_cast<int>(x.shape().rank());
    if (dim < 0)
        dim += r;
    size_t du = static_cast<size_t>(dim);
    std::vector<int64_t> dims = x.shape().dims();
    dims[du] += before + after;
    Tensor out = claimOut(std::move(dst), Shape(dims), x.dtype());
    out.fillZero();  // output may be uninitialized; pad regions are 0
    Tensor slot = out.slice(dim, before, x.shape()[du]);
    slot.copyFrom(x);
    return out;
}

Tensor
quantize(const Tensor &x, float scale, Tensor dst)
{
    Tensor out = claimOut(std::move(dst), x.shape(), DType::I8);
    for (int64_t i = 0; i < x.numel(); ++i)
        out.flatSet(i, x.flatAt(i) / scale);
    return out;
}

Tensor
dequantize(const Tensor &x_q, float scale, Tensor dst)
{
    Tensor out = claimOut(std::move(dst), x_q.shape(), DType::F32);
    float *po = out.dataF32();
    for (int64_t i = 0; i < x_q.numel(); ++i)
        po[i] = x_q.flatAt(i) * scale;
    return out;
}

float
absmaxScale(const Tensor &x)
{
    float mx = 0.0f;
    for (int64_t i = 0; i < x.numel(); ++i)
        mx = std::max(mx, std::abs(x.flatAt(i)));
    return mx > 0.0f ? mx / 127.0f : 1.0f;
}

}  // namespace kernels
}  // namespace ngb
