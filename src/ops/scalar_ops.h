#ifndef NGB_OPS_SCALAR_OPS_H
#define NGB_OPS_SCALAR_OPS_H

#include <cmath>
#include <cstddef>

/**
 * @file
 * Per-element float expressions shared by the optimized element-wise
 * sweeps, the fused single-pass chain loop, and the GEMM-epilogue
 * write-out. Sharing the literal expression — not just the semantics —
 * is what makes fused execution bit-identical to unfused execution
 * under the optimized backend: a chain applied one stage per element
 * evaluates exactly the float ops the member-by-member sweeps would.
 * The expressions also match the reference kernels in
 * elementwise_kernels.cc (asserted by the backend differential tests).
 */

namespace ngb {
namespace kernels {
namespace scalar {

inline float
relu(float v)
{
    return v > 0.0f ? v : 0.0f;
}

inline float
gelu(float v)
{
    return 0.5f * v * (1.0f + std::erf(v * 0.70710678f));
}

inline float
silu(float v)
{
    return v / (1.0f + std::exp(-v));
}

inline float
sigmoid(float v)
{
    return 1.0f / (1.0f + std::exp(-v));
}

inline float
tanhOp(float v)
{
    return std::tanh(v);
}

inline float
expOp(float v)
{
    return std::exp(v);
}

/**
 * One unary point-wise stage of a fused chain. The set is exactly the
 * operators the optimized backend overrides with these expressions, so
 * a single-pass loop over stages stays bit-identical to the unfused
 * sweeps; chains containing anything else fall back to member-by-member
 * interpretation.
 */
enum class UnaryKind {
    Relu,
    Gelu,
    Silu,
    Sigmoid,
    Tanh,
    Exp,
    AddScalar,
    MulScalar,
};

struct UnaryStage {
    UnaryKind kind = UnaryKind::Relu;
    float scalar = 0.0f;  ///< operand of AddScalar / MulScalar
};

inline float
applyUnary(const UnaryStage &s, float v)
{
    switch (s.kind) {
      case UnaryKind::Relu:
        return relu(v);
      case UnaryKind::Gelu:
        return gelu(v);
      case UnaryKind::Silu:
        return silu(v);
      case UnaryKind::Sigmoid:
        return sigmoid(v);
      case UnaryKind::Tanh:
        return tanhOp(v);
      case UnaryKind::Exp:
        return expOp(v);
      case UnaryKind::AddScalar:
        return v + s.scalar;
      case UnaryKind::MulScalar:
        return v * s.scalar;
    }
    return v;
}

/** Apply a stage sequence to one element, chain order. */
inline float
applyStages(const UnaryStage *stages, size_t n, float v)
{
    for (size_t i = 0; i < n; ++i)
        v = applyUnary(stages[i], v);
    return v;
}

}  // namespace scalar
}  // namespace kernels
}  // namespace ngb

#endif  // NGB_OPS_SCALAR_OPS_H
