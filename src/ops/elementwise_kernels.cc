#include <cmath>
#include <functional>
#include <stdexcept>

#include "ops/kernels.h"

namespace ngb {
namespace kernels {

namespace {

/** numpy-style broadcast of two shapes. */
Shape
broadcastShape(const Shape &a, const Shape &b)
{
    size_t r = std::max(a.rank(), b.rank());
    std::vector<int64_t> out(r);
    for (size_t i = 0; i < r; ++i) {
        int64_t da = i < r - a.rank() ? 1 : a[i - (r - a.rank())];
        int64_t db = i < r - b.rank() ? 1 : b[i - (r - b.rank())];
        if (da != db && da != 1 && db != 1)
            throw std::runtime_error("broadcast: incompatible shapes " +
                                     a.str() + " vs " + b.str());
        out[i] = std::max(da, db);
    }
    return Shape(out);
}

/** View @p t broadcast up to @p target via unsqueeze + expand. */
Tensor
broadcastTo(const Tensor &t, const Shape &target)
{
    Tensor v = t;
    while (v.shape().rank() < target.rank())
        v = v.unsqueeze(0);
    if (v.shape() == target)
        return v;
    return v.expand(target);
}

Tensor
binaryOp(const Tensor &a, const Tensor &b,
         const std::function<float(float, float)> &f, Tensor dst)
{
    Shape out_shape = broadcastShape(a.shape(), b.shape());
    Tensor av = broadcastTo(a, out_shape);
    Tensor bv = broadcastTo(b, out_shape);
    Tensor out = claimOut(std::move(dst), out_shape, DType::F32);
    float *po = out.dataF32();
    for (int64_t i = 0; i < out.numel(); ++i)
        po[i] = f(av.flatAt(i), bv.flatAt(i));
    return out;
}

Tensor
unaryOp(const Tensor &x, const std::function<float(float)> &f, Tensor dst)
{
    Tensor out = claimOut(std::move(dst), x.shape(), DType::F32);
    float *po = out.dataF32();
    for (int64_t i = 0; i < x.numel(); ++i)
        po[i] = f(x.flatAt(i));
    return out;
}

}  // namespace

Tensor
add(const Tensor &a, const Tensor &b, Tensor dst)
{
    return binaryOp(
        a, b, [](float x, float y) { return x + y; }, std::move(dst));
}

Tensor
sub(const Tensor &a, const Tensor &b, Tensor dst)
{
    return binaryOp(
        a, b, [](float x, float y) { return x - y; }, std::move(dst));
}

Tensor
mul(const Tensor &a, const Tensor &b, Tensor dst)
{
    return binaryOp(
        a, b, [](float x, float y) { return x * y; }, std::move(dst));
}

Tensor
div(const Tensor &a, const Tensor &b, Tensor dst)
{
    return binaryOp(
        a, b, [](float x, float y) { return x / y; }, std::move(dst));
}

Tensor
neg(const Tensor &x, Tensor dst)
{
    return unaryOp(x, [](float v) { return -v; }, std::move(dst));
}

Tensor
sqrtOp(const Tensor &x, Tensor dst)
{
    return unaryOp(
        x, [](float v) { return std::sqrt(v); }, std::move(dst));
}

Tensor
powScalar(const Tensor &x, float e, Tensor dst)
{
    return unaryOp(
        x, [e](float v) { return std::pow(v, e); }, std::move(dst));
}

Tensor
addScalar(const Tensor &x, float s, Tensor dst)
{
    return unaryOp(x, [s](float v) { return v + s; }, std::move(dst));
}

Tensor
mulScalar(const Tensor &x, float s, Tensor dst)
{
    return unaryOp(x, [s](float v) { return v * s; }, std::move(dst));
}

Tensor
where(const Tensor &cond, const Tensor &a, const Tensor &b, Tensor dst)
{
    Shape out_shape = broadcastShape(
        broadcastShape(cond.shape(), a.shape()), b.shape());
    Tensor cv = broadcastTo(cond, out_shape);
    Tensor av = broadcastTo(a, out_shape);
    Tensor bv = broadcastTo(b, out_shape);
    Tensor out = claimOut(std::move(dst), out_shape, DType::F32);
    float *po = out.dataF32();
    for (int64_t i = 0; i < out.numel(); ++i)
        po[i] = cv.flatAt(i) != 0.0f ? av.flatAt(i) : bv.flatAt(i);
    return out;
}

Tensor
relu(const Tensor &x, Tensor dst)
{
    return unaryOp(
        x, [](float v) { return v > 0.0f ? v : 0.0f; }, std::move(dst));
}

Tensor
gelu(const Tensor &x, Tensor dst)
{
    return unaryOp(
        x,
        [](float v) {
            return 0.5f * v * (1.0f + std::erf(v * 0.70710678f));
        },
        std::move(dst));
}

Tensor
sigmoid(const Tensor &x, Tensor dst)
{
    return unaryOp(
        x, [](float v) { return 1.0f / (1.0f + std::exp(-v)); },
        std::move(dst));
}

Tensor
silu(const Tensor &x, Tensor dst)
{
    return unaryOp(
        x, [](float v) { return v / (1.0f + std::exp(-v)); },
        std::move(dst));
}

Tensor
tanhOp(const Tensor &x, Tensor dst)
{
    return unaryOp(
        x, [](float v) { return std::tanh(v); }, std::move(dst));
}

Tensor
expOp(const Tensor &x, Tensor dst)
{
    return unaryOp(
        x, [](float v) { return std::exp(v); }, std::move(dst));
}

Tensor
logOp(const Tensor &x, Tensor dst)
{
    return unaryOp(
        x, [](float v) { return std::log(v); }, std::move(dst));
}

Tensor
erfOp(const Tensor &x, Tensor dst)
{
    return unaryOp(
        x, [](float v) { return std::erf(v); }, std::move(dst));
}

}  // namespace kernels
}  // namespace ngb
