#ifndef NGB_OPS_KERNELS_H
#define NGB_OPS_KERNELS_H

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "tensor/scratch.h"
#include "tensor/tensor.h"

/**
 * @file
 * Reference CPU kernels for every operator in the NonGEMM Bench
 * inventory. Kernels are straightforward, well-tested implementations
 * optimized for clarity: they define the numerical ground truth every
 * other backend is differential-tested against, and they are the
 * fallback the dispatch registry resolves to for ops a backend does
 * not override. Host speed DOES matter now that the runtime and
 * serving layers execute these concretely — but fast variants belong
 * in the "optimized" backend (ops/optimized_kernels.h), not here;
 * bench/micro_kernels tracks the per-op gap between the two.
 *
 * Destination passing: every allocating kernel takes a trailing
 * optional @p dst. When provided (the backends pass
 * KernelContext::out(), i.e. the executor's planned arena slot or a
 * fresh heap buffer), the kernel writes its result there and performs
 * no output allocation of its own; when omitted it allocates an
 * uninitialized heap tensor, so standalone calls keep working. Kernel
 * math is unchanged either way. Internal temporaries come from the
 * thread's ScratchScope (tensor/scratch.h) and die with the call.
 */

namespace ngb {
namespace kernels {

/**
 * Claim @p dst as the output buffer when provided, else allocate an
 * uninitialized heap tensor. A provided destination must be contiguous
 * with the right dtype and element count; a rank-mismatched (but
 * numel-matched) destination is reinterpreted to @p shape, so kernels
 * can claim flattened working views of their planned output.
 */
inline Tensor
claimOut(Tensor dst, const Shape &shape, DType dtype)
{
    if (!dst.defined())
        return Tensor::empty(shape, dtype);
    if (dst.dtype() != dtype || !dst.isContiguous() ||
        dst.numel() != shape.numel())
        throw std::runtime_error(
            "claimOut: destination mismatch (want " + shape.str() +
            ", have " + dst.shape().str() + ")");
    if (!(dst.shape() == shape))
        return dst.view(shape);
    return dst;
}

// ----- GEMM-based operators ---------------------------------------------

/**
 * Fully connected layer: y = x @ w^T + b.
 *
 * @param x [.., K] input; leading dims are flattened to rows.
 * @param w [N, K] weight (PyTorch nn.Linear layout).
 * @param b optional [N] bias (pass an undefined Tensor to skip).
 * @return [.., N]
 */
Tensor linear(const Tensor &x, const Tensor &w, const Tensor &b,
              Tensor dst = {});

/** Plain 2-D matrix product: [M,K] @ [K,N] -> [M,N]. */
Tensor matmul(const Tensor &a, const Tensor &b, Tensor dst = {});

/** Batched matrix product: [B,M,K] @ [B,K,N] -> [B,M,N]. */
Tensor bmm(const Tensor &a, const Tensor &b, Tensor dst = {});

/**
 * 2-D convolution via explicit im2col + GEMM, NCHW layout.
 *
 * @param x [N, C, H, W]
 * @param w [F, C/groups, R, S]
 * @param b optional [F]
 */
Tensor conv2d(const Tensor &x, const Tensor &w, const Tensor &b,
              int stride, int padding, int groups = 1, Tensor dst = {});

/**
 * LLM.int8()-style quantized linear: int8 x int8 -> int32 accumulate,
 * then rescale by x_scale * w_scale into float.
 */
Tensor int8Linear(const Tensor &x_q, const Tensor &w_q, const Tensor &b,
                  float x_scale, float w_scale, Tensor dst = {});

// ----- Activations -------------------------------------------------------

Tensor relu(const Tensor &x, Tensor dst = {});
/** Exact GELU using erf (the variant HF transformers defaults to). */
Tensor gelu(const Tensor &x, Tensor dst = {});
/** SiLU / swish: x * sigmoid(x). */
Tensor silu(const Tensor &x, Tensor dst = {});
Tensor sigmoid(const Tensor &x, Tensor dst = {});
Tensor tanhOp(const Tensor &x, Tensor dst = {});
Tensor expOp(const Tensor &x, Tensor dst = {});
Tensor logOp(const Tensor &x, Tensor dst = {});
Tensor erfOp(const Tensor &x, Tensor dst = {});

// ----- Normalization -----------------------------------------------------

/** LayerNorm over the last dimension. */
Tensor layerNorm(const Tensor &x, const Tensor &gamma, const Tensor &beta,
                 float eps, Tensor dst = {});
/** Inference-mode BatchNorm over dim 1 of NCHW using running stats. */
Tensor batchNorm2d(const Tensor &x, const Tensor &gamma, const Tensor &beta,
                   const Tensor &mean, const Tensor &var, float eps,
                   Tensor dst = {});
/** RMSNorm over the last dimension (no mean subtraction). */
Tensor rmsNorm(const Tensor &x, const Tensor &gamma, float eps,
               Tensor dst = {});
/** GroupNorm over NCHW with @p groups channel groups. */
Tensor groupNorm(const Tensor &x, const Tensor &gamma, const Tensor &beta,
                 int groups, float eps, Tensor dst = {});

// ----- Element-wise arithmetic (numpy-style broadcasting) ----------------

Tensor add(const Tensor &a, const Tensor &b, Tensor dst = {});
Tensor sub(const Tensor &a, const Tensor &b, Tensor dst = {});
Tensor mul(const Tensor &a, const Tensor &b, Tensor dst = {});
Tensor div(const Tensor &a, const Tensor &b, Tensor dst = {});
Tensor neg(const Tensor &x, Tensor dst = {});
Tensor sqrtOp(const Tensor &x, Tensor dst = {});
/** Element-wise power with scalar exponent. */
Tensor powScalar(const Tensor &x, float e, Tensor dst = {});
Tensor addScalar(const Tensor &x, float s, Tensor dst = {});
Tensor mulScalar(const Tensor &x, float s, Tensor dst = {});
/** where(cond, a, b) with cond broadcast against a/b. */
Tensor where(const Tensor &cond, const Tensor &a, const Tensor &b,
             Tensor dst = {});

// ----- Logit computation --------------------------------------------------

/** Numerically stable softmax along dimension @p dim. */
Tensor softmax(const Tensor &x, int dim, Tensor dst = {});
Tensor logSoftmax(const Tensor &x, int dim, Tensor dst = {});

// ----- RoI selection ------------------------------------------------------

/**
 * Non-maximum suppression (Figure 2 (a) of the paper).
 *
 * @param boxes [N,4] as (y1,x1,y2,x2).
 * @param scores [N].
 * @param iou_threshold overlapping proposals above this IoU are dropped.
 * @param score_threshold proposals below this score are dropped first.
 * @return indices of kept boxes, sorted by descending score (I32 [K]).
 *         The result size is data-dependent, so it comes from scratch
 *         (inside a scope) or the heap — callers holding it beyond the
 *         enclosing ScratchScope must copy it out.
 */
Tensor nms(const Tensor &boxes, const Tensor &scores, float iou_threshold,
           float score_threshold);

/**
 * RoIAlign with bilinear sampling.
 *
 * @param feat [N,C,H,W] feature map.
 * @param rois [R,5] as (batch_idx, y1, x1, y2, x2) in feature coords.
 * @param out_h,out_w output resolution per RoI.
 * @return [R, C, out_h, out_w]
 */
Tensor roiAlign(const Tensor &feat, const Tensor &rois, int out_h,
                int out_w, Tensor dst = {});

// ----- Interpolation ------------------------------------------------------

/** Bilinear resize of NCHW input to (out_h, out_w). */
Tensor interpolateBilinear(const Tensor &x, int out_h, int out_w,
                           Tensor dst = {});

// ----- Pooling ------------------------------------------------------------

Tensor maxPool2d(const Tensor &x, int kernel, int stride, int padding,
                 Tensor dst = {});
Tensor avgPool2d(const Tensor &x, int kernel, int stride, int padding,
                 Tensor dst = {});
/** Adaptive average pool to (out_h, out_w). */
Tensor adaptiveAvgPool2d(const Tensor &x, int out_h, int out_w,
                         Tensor dst = {});

// ----- Embedding / indexing ----------------------------------------------

/** Row gather: ids (I32 [..]) indexing table [V,D] -> [.., D]. */
Tensor embedding(const Tensor &ids, const Tensor &table, Tensor dst = {});

/** Top-k along the last dimension; returns (values, indices). */
std::pair<Tensor, Tensor> topk(const Tensor &x, int k,
                               Tensor values_dst = {},
                               Tensor indices_dst = {});

/** Gather along @p dim with an index tensor of the same rank. */
Tensor gather(const Tensor &x, int dim, const Tensor &index,
              Tensor dst = {});

/** Inclusive cumulative sum along @p dim. */
Tensor cumsum(const Tensor &x, int dim, Tensor dst = {});

// ----- Memory operators that move bytes -----------------------------------

/** Concatenate along @p dim. */
Tensor concat(const std::vector<Tensor> &xs, int dim, Tensor dst = {});

/** Split into equal chunks of @p size along @p dim (views of @p x). */
std::vector<Tensor> split(const Tensor &x, int64_t size, int dim);

/** Circular shift by @p shift along @p dim (torch.roll). */
Tensor roll(const Tensor &x, int64_t shift, int dim, Tensor dst = {});

/** Zero-pad @p dim with @p before/@p after extra entries (F.pad). */
Tensor pad(const Tensor &x, int dim, int64_t before, int64_t after,
           Tensor dst = {});

// ----- Quantization --------------------------------------------------------

/** Symmetric per-tensor quantization to int8 with the given scale. */
Tensor quantize(const Tensor &x, float scale, Tensor dst = {});
/** Dequantize int8 back to float with the given scale. */
Tensor dequantize(const Tensor &x_q, float scale, Tensor dst = {});
/** absmax / 127 scale for symmetric quantization. */
float absmaxScale(const Tensor &x);

}  // namespace kernels
}  // namespace ngb

#endif  // NGB_OPS_KERNELS_H
