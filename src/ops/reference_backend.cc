#include <stdexcept>
#include <utility>

#include "ops/backend.h"
#include "ops/fused_kernels.h"
#include "ops/kernels.h"
#include "quant/quant_kernels.h"
#include "quant/weight_pack.h"
#include "tensor/scratch.h"

/**
 * @file
 * Registration of the reference backend: one kernel per operator in
 * the inventory, each a thin adapter from KernelContext to the
 * straightforward kernels in src/ops. This is the complete backend
 * every other backend falls back to; the registry-completeness test
 * asserts it covers every concrete OpKind.
 *
 * Output buffers come from the context (c.out(i)): the executor's
 * planned arena slot under arena execution, a fresh uninitialized
 * heap tensor otherwise. Layout operators keep returning zero-copy
 * views where the op allows it — the memory planner's alias analysis
 * keeps the underlying buffers live — and materialize into their own
 * output buffer only where they would have copied anyway.
 */

namespace ngb {

namespace {

namespace kn = kernels;
namespace qnt = kernels::qnt;

void
registerGemmOps(Backend &b)
{
    b.registerKernel(OpKind::Linear, [](const KernelContext &c) {
        if (c.node.attrs.getI("wq8", 0))
            // Weight-only int8: stream the derived int8 weight and
            // rescale per channel as each f32 accumulator finishes.
            return singleOutput(qnt::w8Linear(
                c.in(0), quant::rowWeight(c.node, c.params),
                quant::weightScales(c.node, c.params), c.optBias(),
                c.out(0)));
        return singleOutput(
            kn::linear(c.in(0), c.param(0), c.optBias(), c.out(0)));
    });
    b.registerKernel(OpKind::Int8Linear, [](const KernelContext &c) {
        if (c.node.attrs.getI("executable", 0)) {
            // Executable int8 GEMM over the derived per-channel int8
            // weight. The "requant" form carries the rescale + bias in
            // its write-out; the granular form emits raw accumulators
            // for a downstream Dequantize/requantize node.
            const Tensor &wq = quant::rowWeight(c.node, c.params);
            if (c.node.attrs.getI("requant", 0))
                return singleOutput(qnt::int8LinearRequant(
                    c.in(0), qnt::scaleValue(c.in(1)), wq,
                    quant::weightScales(c.node, c.params), c.optBias(),
                    nullptr, 0, c.out(0)));
            return singleOutput(
                qnt::int8AccLinear(c.in(0), wq, c.out(0)));
        }
        // Legacy modeled form: dynamic activation quantization, absmax
        // weight scale. The quantized operands are kernel-internal:
        // scratch.
        float xs = kn::absmaxScale(c.in(0));
        Tensor wq = c.param(0);
        float ws = 1.0f;
        if (wq.dtype() != DType::I8) {
            ws = kn::absmaxScale(wq);
            wq = kn::quantize(wq, ws,
                              scratchEmpty(wq.shape(), DType::I8));
        } else {
            ws = 0.05f / 127.0f * 3.0f;  // matches ParamStore I8 rounding
        }
        Tensor xq = kn::quantize(
            c.in(0), xs, scratchEmpty(c.in(0).shape(), DType::I8));
        return singleOutput(
            kn::int8Linear(xq, wq, c.optBias(), xs, ws, c.out(0)));
    });
    b.registerKernel(OpKind::Conv2d, [](const KernelContext &c) {
        return singleOutput(kn::conv2d(c.in(0), c.param(0), c.optBias(),
                              c.attrInt("stride"), c.attrInt("padding"),
                              c.attrInt("groups", 1), c.out(0)));
    });
    b.registerKernel(OpKind::BMM, [](const KernelContext &c) {
        return singleOutput(kn::bmm(c.in(0), c.in(1), c.out(0)));
    });
    b.registerKernel(OpKind::MatMul, [](const KernelContext &c) {
        return singleOutput(kn::matmul(c.in(0), c.in(1), c.out(0)));
    });
}

void
registerActivationOps(Backend &b)
{
    b.registerKernel(OpKind::ReLU, [](const KernelContext &c) {
        return singleOutput(kn::relu(c.in(0), c.out(0)));
    });
    b.registerKernel(OpKind::GELU, [](const KernelContext &c) {
        return singleOutput(kn::gelu(c.in(0), c.out(0)));
    });
    b.registerKernel(OpKind::SiLU, [](const KernelContext &c) {
        return singleOutput(kn::silu(c.in(0), c.out(0)));
    });
    b.registerKernel(OpKind::Sigmoid, [](const KernelContext &c) {
        return singleOutput(kn::sigmoid(c.in(0), c.out(0)));
    });
    b.registerKernel(OpKind::Tanh, [](const KernelContext &c) {
        return singleOutput(kn::tanhOp(c.in(0), c.out(0)));
    });
    b.registerKernel(OpKind::Erf, [](const KernelContext &c) {
        return singleOutput(kn::erfOp(c.in(0), c.out(0)));
    });
    b.registerKernel(OpKind::Exp, [](const KernelContext &c) {
        return singleOutput(kn::expOp(c.in(0), c.out(0)));
    });
    b.registerKernel(OpKind::Log, [](const KernelContext &c) {
        return singleOutput(kn::logOp(c.in(0), c.out(0)));
    });
}

void
registerNormOps(Backend &b)
{
    b.registerKernel(OpKind::LayerNorm, [](const KernelContext &c) {
        return singleOutput(kn::layerNorm(c.in(0), c.param(0), c.param(1),
                                 c.attrFloat("eps", 1e-5), c.out(0)));
    });
    KernelFn batchNorm = [](const KernelContext &c) {
        return singleOutput(kn::batchNorm2d(c.in(0), c.param(0), c.param(1),
                                   c.param(2), c.param(3),
                                   c.attrFloat("eps", 1e-5), c.out(0)));
    };
    b.registerKernel(OpKind::BatchNorm2d, batchNorm);
    b.registerKernel(OpKind::FrozenBatchNorm2d, batchNorm);
    b.registerKernel(OpKind::RMSNorm, [](const KernelContext &c) {
        return singleOutput(kn::rmsNorm(c.in(0), c.param(0),
                               c.attrFloat("eps", 1e-6), c.out(0)));
    });
    b.registerKernel(OpKind::GroupNorm, [](const KernelContext &c) {
        return singleOutput(kn::groupNorm(c.in(0), c.param(0), c.param(1),
                                 c.attrInt("groups", 1),
                                 c.attrFloat("eps", 1e-5), c.out(0)));
    });
}

void
registerElementwiseOps(Backend &b)
{
    b.registerKernel(OpKind::Add, [](const KernelContext &c) {
        if (c.numInputs() == 1)
            return singleOutput(
                kn::addScalar(c.in(0), c.attrFloat("scalar"), c.out(0)));
        return singleOutput(kn::add(c.in(0), c.in(1), c.out(0)));
    });
    b.registerKernel(OpKind::Sub, [](const KernelContext &c) {
        return singleOutput(kn::sub(c.in(0), c.in(1), c.out(0)));
    });
    b.registerKernel(OpKind::Mul, [](const KernelContext &c) {
        if (c.numInputs() == 1)
            return singleOutput(
                kn::mulScalar(c.in(0), c.attrFloat("scalar"), c.out(0)));
        return singleOutput(kn::mul(c.in(0), c.in(1), c.out(0)));
    });
    b.registerKernel(OpKind::Div, [](const KernelContext &c) {
        return singleOutput(kn::div(c.in(0), c.in(1), c.out(0)));
    });
    b.registerKernel(OpKind::Neg, [](const KernelContext &c) {
        return singleOutput(kn::neg(c.in(0), c.out(0)));
    });
    b.registerKernel(OpKind::Sqrt, [](const KernelContext &c) {
        return singleOutput(kn::sqrtOp(c.in(0), c.out(0)));
    });
    b.registerKernel(OpKind::Pow, [](const KernelContext &c) {
        return singleOutput(kn::powScalar(
            c.in(0), c.attrFloat("exponent", 2.0), c.out(0)));
    });
    b.registerKernel(OpKind::Where, [](const KernelContext &c) {
        return singleOutput(
            kn::where(c.in(0), c.in(1), c.in(2), c.out(0)));
    });
    b.registerKernel(OpKind::Softmax, [](const KernelContext &c) {
        return singleOutput(
            kn::softmax(c.in(0), c.attrInt("dim"), c.out(0)));
    });
    b.registerKernel(OpKind::LogSoftmax, [](const KernelContext &c) {
        return singleOutput(
            kn::logSoftmax(c.in(0), c.attrInt("dim"), c.out(0)));
    });
}

void
registerLayoutOps(Backend &b)
{
    // Reshape/View/Contiguous are zero-copy when the input is already
    // contiguous; otherwise the materialization lands in the node's
    // own output buffer instead of a fresh heap tensor.
    KernelFn reshapeLike = [](const KernelContext &c) {
        const Tensor &x = c.in(0);
        if (x.isContiguous())
            return singleOutput(x.view(c.node.outShapes[0]));
        Tensor out = c.out(0);
        out.copyFrom(x);
        return singleOutput(std::move(out));
    };
    b.registerKernel(OpKind::Reshape, reshapeLike);
    b.registerKernel(OpKind::View, reshapeLike);
    b.registerKernel(OpKind::Contiguous, [](const KernelContext &c) {
        const Tensor &x = c.in(0);
        if (x.isContiguous())
            return singleOutput(x);
        Tensor out = c.out(0);
        out.copyFrom(x);
        return singleOutput(std::move(out));
    });
    b.registerKernel(OpKind::Permute, [](const KernelContext &c) {
        const auto &ord = c.node.attrs.getInts("order");
        std::vector<int> o(ord.begin(), ord.end());
        return singleOutput(c.in(0).permute(o));
    });
    b.registerKernel(OpKind::Transpose, [](const KernelContext &c) {
        return singleOutput(c.in(0).transpose(c.attrInt("d0"), c.attrInt("d1")));
    });
    b.registerKernel(OpKind::Slice, [](const KernelContext &c) {
        int dim = c.attrInt("dim");
        return singleOutput(c.in(0).slice(
            dim, c.node.attrs.getI("start"),
            c.node.outShapes[0][static_cast<size_t>(dim)]));
    });
    b.registerKernel(OpKind::Expand, [](const KernelContext &c) {
        return singleOutput(c.in(0).expand(c.node.outShapes[0]));
    });
    b.registerKernel(OpKind::Squeeze, [](const KernelContext &c) {
        return singleOutput(c.in(0).squeeze(c.attrInt("dim")));
    });
    b.registerKernel(OpKind::Unsqueeze, [](const KernelContext &c) {
        return singleOutput(c.in(0).unsqueeze(c.attrInt("dim")));
    });
    b.registerKernel(OpKind::Roll, [](const KernelContext &c) {
        return singleOutput(kn::roll(c.in(0), c.node.attrs.getI("shift"),
                            c.attrInt("dim"), c.out(0)));
    });
    b.registerKernel(OpKind::Pad, [](const KernelContext &c) {
        return singleOutput(kn::pad(c.in(0), c.attrInt("dim"),
                           c.node.attrs.getI("before"),
                           c.node.attrs.getI("after"), c.out(0)));
    });
    b.registerKernel(OpKind::Concat, [](const KernelContext &c) {
        std::vector<Tensor> xs;
        for (size_t i = 0; i < c.numInputs(); ++i)
            xs.push_back(c.in(i));
        return singleOutput(kn::concat(xs, c.attrInt("dim"), c.out(0)));
    });
    b.registerKernel(OpKind::Split, [](const KernelContext &c) {
        auto parts = kn::split(c.in(0), c.node.attrs.getI("size", 1),
                               c.attrInt("dim"));
        std::vector<Tensor> out;
        for (size_t i = 0; i < parts.size(); ++i) {
            if (c.alloc) {
                // Arena execution: each part owns its planned slot (a
                // contiguous part would otherwise alias the input
                // buffer past its planned lifetime).
                Tensor slot = c.out(i);
                slot.copyFrom(parts[i]);
                out.push_back(std::move(slot));
            } else {
                out.push_back(parts[i].contiguous());
            }
        }
        return out;
    });
}

void
registerVisionOps(Backend &b)
{
    b.registerKernel(OpKind::NMS, [](const KernelContext &c) {
        Tensor kept = kn::nms(c.in(0), c.in(1),
                              c.attrFloat("iou_threshold", 0.5),
                              c.attrFloat("score_threshold", 0.0));
        // Pad / trim to the static expected_keep size.
        int64_t want = c.node.outShapes[0][0];
        Tensor out = c.out(0);
        int32_t *po = out.dataI32();
        const int32_t *pk = kept.dataI32();
        for (int64_t i = 0; i < want; ++i)
            po[i] = i < kept.numel() ? pk[i] : 0;
        return singleOutput(std::move(out));
    });
    b.registerKernel(OpKind::RoIAlign, [](const KernelContext &c) {
        return singleOutput(kn::roiAlign(c.in(0), c.in(1), c.attrInt("out_h"),
                                c.attrInt("out_w"), c.out(0)));
    });
    b.registerKernel(OpKind::Interpolate, [](const KernelContext &c) {
        return singleOutput(kn::interpolateBilinear(c.in(0), c.attrInt("out_h"),
                                           c.attrInt("out_w"), c.out(0)));
    });
    b.registerKernel(OpKind::MaxPool2d, [](const KernelContext &c) {
        return singleOutput(kn::maxPool2d(c.in(0), c.attrInt("kernel"),
                                 c.attrInt("stride"),
                                 c.attrInt("padding"), c.out(0)));
    });
    b.registerKernel(OpKind::AvgPool2d, [](const KernelContext &c) {
        return singleOutput(kn::avgPool2d(c.in(0), c.attrInt("kernel"),
                                 c.attrInt("stride"),
                                 c.attrInt("padding"), c.out(0)));
    });
    b.registerKernel(OpKind::AdaptiveAvgPool2d, [](const KernelContext &c) {
        return singleOutput(kn::adaptiveAvgPool2d(c.in(0), c.attrInt("out_h"),
                                         c.attrInt("out_w"), c.out(0)));
    });
}

void
registerMiscOps(Backend &b)
{
    b.registerKernel(OpKind::Embedding, [](const KernelContext &c) {
        return singleOutput(kn::embedding(c.in(0), c.param(0), c.out(0)));
    });
    b.registerKernel(OpKind::Gather, [](const KernelContext &c) {
        return singleOutput(
            kn::gather(c.in(0), c.attrInt("dim"), c.in(1), c.out(0)));
    });
    b.registerKernel(OpKind::CumSum, [](const KernelContext &c) {
        return singleOutput(
            kn::cumsum(c.in(0), c.attrInt("dim"), c.out(0)));
    });
    b.registerKernel(OpKind::TopK, [](const KernelContext &c) {
        auto [vals, idx] =
            kn::topk(c.in(0), c.attrInt("k"), c.out(0), c.out(1));
        std::vector<Tensor> out;
        out.push_back(std::move(vals));
        out.push_back(std::move(idx));
        return out;
    });
    b.registerKernel(OpKind::Quantize, [](const KernelContext &c) {
        if (c.node.attrs.getI("executable", 0)) {
            if (c.node.attrs.getI("fused_qdq", 0)) {
                // Fused requantize: i32 accumulators straight to the
                // next region's int8 activation. The f32 intermediate
                // (exactly what the cancelled Dequantize would have
                // produced) lives only in scratch.
                Tensor f = qnt::requantize(
                    c.in(0), qnt::scaleValue(c.in(1)),
                    quant::weightScales(c.node, c.params), c.optBias(),
                    scratchEmpty(c.node.outShapes[0], DType::F32));
                auto qs = qnt::quantizeActivation(f, c.out(0), c.out(1));
                std::vector<Tensor> out;
                out.push_back(std::move(qs.first));
                out.push_back(std::move(qs.second));
                return out;
            }
            auto qs =
                qnt::quantizeActivation(c.in(0), c.out(0), c.out(1));
            std::vector<Tensor> out;
            out.push_back(std::move(qs.first));
            out.push_back(std::move(qs.second));
            return out;
        }
        return singleOutput(
            kn::quantize(c.in(0), kn::absmaxScale(c.in(0)), c.out(0)));
    });
    b.registerKernel(OpKind::Dequantize, [](const KernelContext &c) {
        if (c.node.attrs.getI("executable", 0))
            // Requantize the i32 accumulators: per-channel rescale
            // (scales derived from the carried master weight) + bias.
            return singleOutput(qnt::requantize(
                c.in(0), qnt::scaleValue(c.in(1)),
                quant::weightScales(c.node, c.params), c.optBias(),
                c.out(0)));
        // Symmetric round-trip: reuse the producing scale when known.
        return singleOutput(kn::dequantize(c.in(0), 1.0f, c.out(0)));
    });
    // Executable fusion (applyFusion): interpret the folded chain
    // member-by-member through the ACTIVE backend (the one the
    // executor dispatches through), so per-op overrides apply inside
    // fused groups and outputs stay bit-identical to the unfused
    // graph under the same backend.
    b.registerKernel(OpKind::Fused, [](const KernelContext &c) {
        return evalFusedChain(
            c, c.backend ? *c.backend : referenceBackend());
    });
}

Backend
makeReferenceBackend()
{
    Backend b("reference");
    registerGemmOps(b);
    registerActivationOps(b);
    registerNormOps(b);
    registerElementwiseOps(b);
    registerLayoutOps(b);
    registerVisionOps(b);
    registerMiscOps(b);
    return b;
}

}  // namespace

const Backend &
referenceBackend()
{
    static const Backend backend = makeReferenceBackend();
    return backend;
}

}  // namespace ngb
