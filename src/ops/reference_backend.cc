#include <stdexcept>
#include <utility>

#include "ops/backend.h"
#include "ops/fused_kernels.h"
#include "ops/kernels.h"

/**
 * @file
 * Registration of the reference backend: one kernel per operator in
 * the inventory, each a thin adapter from KernelContext to the
 * straightforward kernels in src/ops. This is the complete backend
 * every other backend falls back to; the registry-completeness test
 * asserts it covers every concrete OpKind.
 */

namespace ngb {

namespace {

namespace kn = kernels;

void
registerGemmOps(Backend &b)
{
    b.registerKernel(OpKind::Linear, [](const KernelContext &c) {
        return singleOutput(kn::linear(c.in(0), c.param(0), c.optBias()));
    });
    b.registerKernel(OpKind::Int8Linear, [](const KernelContext &c) {
        // Dynamic activation quantization, absmax weight scale.
        float xs = kn::absmaxScale(c.in(0));
        Tensor wq = c.param(0);
        float ws = 1.0f;
        if (wq.dtype() != DType::I8) {
            ws = kn::absmaxScale(wq);
            wq = kn::quantize(wq, ws);
        } else {
            ws = 0.05f / 127.0f * 3.0f;  // matches ParamStore I8 rounding
        }
        Tensor xq = kn::quantize(c.in(0), xs);
        return singleOutput(kn::int8Linear(xq, wq, c.optBias(), xs, ws));
    });
    b.registerKernel(OpKind::Conv2d, [](const KernelContext &c) {
        return singleOutput(kn::conv2d(c.in(0), c.param(0), c.optBias(),
                              c.attrInt("stride"), c.attrInt("padding"),
                              c.attrInt("groups", 1)));
    });
    b.registerKernel(OpKind::BMM, [](const KernelContext &c) {
        return singleOutput(kn::bmm(c.in(0), c.in(1)));
    });
    b.registerKernel(OpKind::MatMul, [](const KernelContext &c) {
        return singleOutput(kn::matmul(c.in(0), c.in(1)));
    });
}

void
registerActivationOps(Backend &b)
{
    b.registerKernel(OpKind::ReLU, [](const KernelContext &c) {
        return singleOutput(kn::relu(c.in(0)));
    });
    b.registerKernel(OpKind::GELU, [](const KernelContext &c) {
        return singleOutput(kn::gelu(c.in(0)));
    });
    b.registerKernel(OpKind::SiLU, [](const KernelContext &c) {
        return singleOutput(kn::silu(c.in(0)));
    });
    b.registerKernel(OpKind::Sigmoid, [](const KernelContext &c) {
        return singleOutput(kn::sigmoid(c.in(0)));
    });
    b.registerKernel(OpKind::Tanh, [](const KernelContext &c) {
        return singleOutput(kn::tanhOp(c.in(0)));
    });
    b.registerKernel(OpKind::Erf, [](const KernelContext &c) {
        return singleOutput(kn::erfOp(c.in(0)));
    });
    b.registerKernel(OpKind::Exp, [](const KernelContext &c) {
        return singleOutput(kn::expOp(c.in(0)));
    });
    b.registerKernel(OpKind::Log, [](const KernelContext &c) {
        return singleOutput(kn::logOp(c.in(0)));
    });
}

void
registerNormOps(Backend &b)
{
    b.registerKernel(OpKind::LayerNorm, [](const KernelContext &c) {
        return singleOutput(kn::layerNorm(c.in(0), c.param(0), c.param(1),
                                 c.attrFloat("eps", 1e-5)));
    });
    KernelFn batchNorm = [](const KernelContext &c) {
        return singleOutput(kn::batchNorm2d(c.in(0), c.param(0), c.param(1),
                                   c.param(2), c.param(3),
                                   c.attrFloat("eps", 1e-5)));
    };
    b.registerKernel(OpKind::BatchNorm2d, batchNorm);
    b.registerKernel(OpKind::FrozenBatchNorm2d, batchNorm);
    b.registerKernel(OpKind::RMSNorm, [](const KernelContext &c) {
        return singleOutput(kn::rmsNorm(c.in(0), c.param(0),
                               c.attrFloat("eps", 1e-6)));
    });
    b.registerKernel(OpKind::GroupNorm, [](const KernelContext &c) {
        return singleOutput(kn::groupNorm(c.in(0), c.param(0), c.param(1),
                                 c.attrInt("groups", 1),
                                 c.attrFloat("eps", 1e-5)));
    });
}

void
registerElementwiseOps(Backend &b)
{
    b.registerKernel(OpKind::Add, [](const KernelContext &c) {
        if (c.numInputs() == 1)
            return singleOutput(kn::addScalar(c.in(0), c.attrFloat("scalar")));
        return singleOutput(kn::add(c.in(0), c.in(1)));
    });
    b.registerKernel(OpKind::Sub, [](const KernelContext &c) {
        return singleOutput(kn::sub(c.in(0), c.in(1)));
    });
    b.registerKernel(OpKind::Mul, [](const KernelContext &c) {
        if (c.numInputs() == 1)
            return singleOutput(kn::mulScalar(c.in(0), c.attrFloat("scalar")));
        return singleOutput(kn::mul(c.in(0), c.in(1)));
    });
    b.registerKernel(OpKind::Div, [](const KernelContext &c) {
        return singleOutput(kn::div(c.in(0), c.in(1)));
    });
    b.registerKernel(OpKind::Neg, [](const KernelContext &c) {
        return singleOutput(kn::neg(c.in(0)));
    });
    b.registerKernel(OpKind::Sqrt, [](const KernelContext &c) {
        return singleOutput(kn::sqrtOp(c.in(0)));
    });
    b.registerKernel(OpKind::Pow, [](const KernelContext &c) {
        return singleOutput(kn::powScalar(c.in(0), c.attrFloat("exponent", 2.0)));
    });
    b.registerKernel(OpKind::Where, [](const KernelContext &c) {
        return singleOutput(kn::where(c.in(0), c.in(1), c.in(2)));
    });
    b.registerKernel(OpKind::Softmax, [](const KernelContext &c) {
        return singleOutput(kn::softmax(c.in(0), c.attrInt("dim")));
    });
    b.registerKernel(OpKind::LogSoftmax, [](const KernelContext &c) {
        return singleOutput(kn::logSoftmax(c.in(0), c.attrInt("dim")));
    });
}

void
registerLayoutOps(Backend &b)
{
    b.registerKernel(OpKind::Reshape, [](const KernelContext &c) {
        return singleOutput(c.in(0).reshape(c.node.outShapes[0]));
    });
    b.registerKernel(OpKind::View, [](const KernelContext &c) {
        return singleOutput(c.in(0).contiguous().view(c.node.outShapes[0]));
    });
    b.registerKernel(OpKind::Permute, [](const KernelContext &c) {
        const auto &ord = c.node.attrs.getInts("order");
        std::vector<int> o(ord.begin(), ord.end());
        return singleOutput(c.in(0).permute(o));
    });
    b.registerKernel(OpKind::Transpose, [](const KernelContext &c) {
        return singleOutput(c.in(0).transpose(c.attrInt("d0"), c.attrInt("d1")));
    });
    b.registerKernel(OpKind::Contiguous, [](const KernelContext &c) {
        return singleOutput(c.in(0).contiguous());
    });
    b.registerKernel(OpKind::Slice, [](const KernelContext &c) {
        int dim = c.attrInt("dim");
        return singleOutput(c.in(0).slice(
            dim, c.node.attrs.getI("start"),
            c.node.outShapes[0][static_cast<size_t>(dim)]));
    });
    b.registerKernel(OpKind::Expand, [](const KernelContext &c) {
        return singleOutput(c.in(0).expand(c.node.outShapes[0]));
    });
    b.registerKernel(OpKind::Squeeze, [](const KernelContext &c) {
        return singleOutput(c.in(0).squeeze(c.attrInt("dim")));
    });
    b.registerKernel(OpKind::Unsqueeze, [](const KernelContext &c) {
        return singleOutput(c.in(0).unsqueeze(c.attrInt("dim")));
    });
    b.registerKernel(OpKind::Roll, [](const KernelContext &c) {
        return singleOutput(kn::roll(c.in(0), c.node.attrs.getI("shift"),
                            c.attrInt("dim")));
    });
    b.registerKernel(OpKind::Pad, [](const KernelContext &c) {
        return singleOutput(kn::pad(c.in(0), c.attrInt("dim"),
                           c.node.attrs.getI("before"),
                           c.node.attrs.getI("after")));
    });
    b.registerKernel(OpKind::Concat, [](const KernelContext &c) {
        std::vector<Tensor> xs;
        for (size_t i = 0; i < c.numInputs(); ++i)
            xs.push_back(c.in(i));
        return singleOutput(kn::concat(xs, c.attrInt("dim")));
    });
    b.registerKernel(OpKind::Split, [](const KernelContext &c) {
        auto parts = kn::split(c.in(0), c.node.attrs.getI("size", 1),
                               c.attrInt("dim"));
        std::vector<Tensor> out;
        for (Tensor &p : parts)
            out.push_back(p.contiguous());
        return out;
    });
}

void
registerVisionOps(Backend &b)
{
    b.registerKernel(OpKind::NMS, [](const KernelContext &c) {
        Tensor kept = kn::nms(c.in(0), c.in(1),
                              c.attrFloat("iou_threshold", 0.5),
                              c.attrFloat("score_threshold", 0.0));
        // Pad / trim to the static expected_keep size.
        int64_t want = c.node.outShapes[0][0];
        Tensor out(Shape{want}, DType::I32);
        int32_t *po = out.dataI32();
        const int32_t *pk = kept.dataI32();
        for (int64_t i = 0; i < want; ++i)
            po[i] = i < kept.numel() ? pk[i] : 0;
        return singleOutput(std::move(out));
    });
    b.registerKernel(OpKind::RoIAlign, [](const KernelContext &c) {
        return singleOutput(kn::roiAlign(c.in(0), c.in(1), c.attrInt("out_h"),
                                c.attrInt("out_w")));
    });
    b.registerKernel(OpKind::Interpolate, [](const KernelContext &c) {
        return singleOutput(kn::interpolateBilinear(c.in(0), c.attrInt("out_h"),
                                           c.attrInt("out_w")));
    });
    b.registerKernel(OpKind::MaxPool2d, [](const KernelContext &c) {
        return singleOutput(kn::maxPool2d(c.in(0), c.attrInt("kernel"),
                                 c.attrInt("stride"),
                                 c.attrInt("padding")));
    });
    b.registerKernel(OpKind::AvgPool2d, [](const KernelContext &c) {
        return singleOutput(kn::avgPool2d(c.in(0), c.attrInt("kernel"),
                                 c.attrInt("stride"),
                                 c.attrInt("padding")));
    });
    b.registerKernel(OpKind::AdaptiveAvgPool2d, [](const KernelContext &c) {
        return singleOutput(kn::adaptiveAvgPool2d(c.in(0), c.attrInt("out_h"),
                                         c.attrInt("out_w")));
    });
}

void
registerMiscOps(Backend &b)
{
    b.registerKernel(OpKind::Embedding, [](const KernelContext &c) {
        return singleOutput(kn::embedding(c.in(0), c.param(0)));
    });
    b.registerKernel(OpKind::Gather, [](const KernelContext &c) {
        return singleOutput(kn::gather(c.in(0), c.attrInt("dim"), c.in(1)));
    });
    b.registerKernel(OpKind::CumSum, [](const KernelContext &c) {
        return singleOutput(kn::cumsum(c.in(0), c.attrInt("dim")));
    });
    b.registerKernel(OpKind::TopK, [](const KernelContext &c) {
        auto [vals, idx] = kn::topk(c.in(0), c.attrInt("k"));
        std::vector<Tensor> out;
        out.push_back(std::move(vals));
        out.push_back(std::move(idx));
        return out;
    });
    b.registerKernel(OpKind::Quantize, [](const KernelContext &c) {
        return singleOutput(kn::quantize(c.in(0), kn::absmaxScale(c.in(0))));
    });
    b.registerKernel(OpKind::Dequantize, [](const KernelContext &c) {
        // Symmetric round-trip: reuse the producing scale when known.
        return singleOutput(kn::dequantize(c.in(0), 1.0f));
    });
    // Executable fusion (applyFusion): interpret the folded chain
    // member-by-member through the ACTIVE backend (the one the
    // executor dispatches through), so per-op overrides apply inside
    // fused groups and outputs stay bit-identical to the unfused
    // graph under the same backend.
    b.registerKernel(OpKind::Fused, [](const KernelContext &c) {
        return evalFusedChain(
            c, c.backend ? *c.backend : referenceBackend());
    });
}

Backend
makeReferenceBackend()
{
    Backend b("reference");
    registerGemmOps(b);
    registerActivationOps(b);
    registerNormOps(b);
    registerElementwiseOps(b);
    registerLayoutOps(b);
    registerVisionOps(b);
    registerMiscOps(b);
    return b;
}

}  // namespace

const Backend &
referenceBackend()
{
    static const Backend backend = makeReferenceBackend();
    return backend;
}

}  // namespace ngb
