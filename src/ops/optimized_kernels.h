#ifndef NGB_OPS_OPTIMIZED_KERNELS_H
#define NGB_OPS_OPTIMIZED_KERNELS_H

#include "tensor/tensor.h"

/**
 * @file
 * The optimized CPU kernel set behind the "optimized" backend: the
 * hottest operators of the inventory, rewritten for host speed.
 *
 *  - matmul / linear / bmm: 4x16 register-tiled GEMM core. Keeps the
 *    whole accumulator tile in registers across the k loop, so each
 *    B row is loaded once per 4 output rows instead of once per row;
 *    linear fuses the bias epilogue into the accumulator write-out.
 *    Per-element accumulation stays k-ascending (no reassociation),
 *    so results match the reference kernels to float tolerance
 *    (typically bit-exact; the reference's skip-zero branch can
 *    differ in the last ulp around signed zeros / non-finite values).
 *  - layerNorm: single-pass Welford moments (one sweep computes mean
 *    and M2 instead of separate mean and variance passes; centered
 *    updates, so no E[x^2]-mean^2 cancellation) with the affine
 *    epilogue fused into the normalize sweep. Mean/variance round
 *    differently from the two-pass reference: compare with tolerance.
 *  - softmax: direct rows loop for the (ubiquitous) last-dim case,
 *    skipping the permute/contiguous round trip. Bit-identical.
 *  - batchNorm2d: per-channel scale/shift hoisted out of the image
 *    loop. Bit-identical.
 *  - elementwise (relu/gelu/silu/sigmoid/tanh/exp, add/sub/mul/div,
 *    +scalar variants): contiguous-F32 fast path over raw pointers —
 *    the reference path pays a std::function call and a strided
 *    flat-index decomposition per element. Bit-identical (same float
 *    expression, same order).
 *
 * Every kernel checks its fast-path preconditions (contiguity, dtype,
 * shapes) and falls back to the reference kernel in src/ops/kernels.h
 * when they do not hold, so behaviour is defined for every input the
 * reference accepts.
 */

namespace ngb {
namespace kernels {
namespace opt {

// ----- GEMM family (register-tiled core) ---------------------------------

Tensor matmul(const Tensor &a, const Tensor &b);
Tensor linear(const Tensor &x, const Tensor &w, const Tensor &b);
Tensor bmm(const Tensor &a, const Tensor &b);

/**
 * Pack a [N,K] linear weight into the [K,N] row-major layout the GEMM
 * core streams (blocked raw-pointer transpose). Weights are immutable,
 * so the optimized backend memoizes this per node via
 * ParamStore::derived and amortizes the pack across every request of
 * an engine; linearPacked then consumes the packed operand directly.
 */
Tensor packWeightTranspose(const Tensor &w);

/** linear() over an already-packed [K,N] weight from packWeightTranspose. */
Tensor linearPacked(const Tensor &x, const Tensor &wt, const Tensor &b);

// ----- Normalization ------------------------------------------------------

Tensor layerNorm(const Tensor &x, const Tensor &gamma, const Tensor &beta,
                 float eps);
Tensor batchNorm2d(const Tensor &x, const Tensor &gamma, const Tensor &beta,
                   const Tensor &mean, const Tensor &var, float eps);

// ----- Logit computation --------------------------------------------------

Tensor softmax(const Tensor &x, int dim);

// ----- Elementwise --------------------------------------------------------

Tensor relu(const Tensor &x);
Tensor gelu(const Tensor &x);
Tensor silu(const Tensor &x);
Tensor sigmoid(const Tensor &x);
Tensor tanhOp(const Tensor &x);
Tensor expOp(const Tensor &x);

Tensor add(const Tensor &a, const Tensor &b);
Tensor sub(const Tensor &a, const Tensor &b);
Tensor mul(const Tensor &a, const Tensor &b);
Tensor div(const Tensor &a, const Tensor &b);
Tensor addScalar(const Tensor &x, float s);
Tensor mulScalar(const Tensor &x, float s);

}  // namespace opt
}  // namespace kernels
}  // namespace ngb

#endif  // NGB_OPS_OPTIMIZED_KERNELS_H
