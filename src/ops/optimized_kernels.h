#ifndef NGB_OPS_OPTIMIZED_KERNELS_H
#define NGB_OPS_OPTIMIZED_KERNELS_H

#include "ops/scalar_ops.h"
#include "tensor/scratch.h"
#include "tensor/tensor.h"

/**
 * @file
 * The optimized CPU kernel set behind the "optimized" backend: the
 * hottest operators of the inventory, rewritten for host speed.
 *
 *  - matmul / linear / bmm: 4x16 register-tiled GEMM core. Keeps the
 *    whole accumulator tile in registers across the k loop, so each
 *    B row is loaded once per 4 output rows instead of once per row;
 *    linear fuses the bias epilogue into the accumulator write-out.
 *    Per-element accumulation stays k-ascending (no reassociation),
 *    so results match the reference kernels to float tolerance
 *    (typically bit-exact; the reference's skip-zero branch can
 *    differ in the last ulp around signed zeros / non-finite values).
 *  - layerNorm: single-pass Welford moments (one sweep computes mean
 *    and M2 instead of separate mean and variance passes; centered
 *    updates, so no E[x^2]-mean^2 cancellation) with the affine
 *    epilogue fused into the normalize sweep. Mean/variance round
 *    differently from the two-pass reference: compare with tolerance.
 *  - softmax: direct rows loop for the (ubiquitous) last-dim case,
 *    skipping the permute/contiguous round trip. Bit-identical.
 *  - batchNorm2d: per-channel scale/shift hoisted out of the image
 *    loop. Bit-identical.
 *  - elementwise (relu/gelu/silu/sigmoid/tanh/exp, add/sub/mul/div,
 *    +scalar variants): contiguous-F32 fast path over raw pointers —
 *    the reference path pays a std::function call and a strided
 *    flat-index decomposition per element. Bit-identical (same float
 *    expression, same order).
 *
 * Every kernel checks its fast-path preconditions (contiguity, dtype,
 * shapes) and falls back to the reference kernel in src/ops/kernels.h
 * when they do not hold, so behaviour is defined for every input the
 * reference accepts.
 */

namespace ngb {

class ParallelRegion;

namespace kernels {
namespace opt {

// ----- fast-path predicates ----------------------------------------------

/** True when @p t can be walked through a raw F32 pointer. */
inline bool
fastF32(const Tensor &t)
{
    return t.defined() && t.dtype() == DType::F32 && t.isContiguous();
}

/**
 * @p t as a contiguous F32 tensor WITHOUT copying when it already is
 * one. When a copy is needed it comes from the thread's ScratchScope
 * (kernel-internal lifetime), so steady-state execution performs no
 * heap allocation for operand materialization. Read-only use: the
 * result may alias @p t. Shared by the optimized kernels and the
 * fused-chain kernels, which must treat operands identically to stay
 * bit-compatible.
 */
inline Tensor
asF32(const Tensor &t)
{
    return toContiguousF32(t);
}

// ----- GEMM family (register-tiled core) ---------------------------------
//
// Every GEMM entry takes an optional ParallelRegion. Null (the
// default) runs the unchanged serial core; a region shards the output
// into mc/nc macro-tiles across the pool workers (packed kc panels in
// per-worker scratch), splitting M and N only — never K — so results
// are bit-identical to the serial core at every thread count.

Tensor matmul(const Tensor &a, const Tensor &b, Tensor dst = {},
              const ParallelRegion *par = nullptr);
Tensor linear(const Tensor &x, const Tensor &w, const Tensor &b,
              Tensor dst = {}, const ParallelRegion *par = nullptr);
Tensor bmm(const Tensor &a, const Tensor &b, Tensor dst = {},
           const ParallelRegion *par = nullptr);

/**
 * Pack a [N,K] linear weight into the [K,N] row-major layout the GEMM
 * core streams (blocked raw-pointer transpose). Weights are immutable,
 * so the optimized backend memoizes this per node via
 * ParamStore::derived and amortizes the pack across every request of
 * an engine; linearPacked then consumes the packed operand directly.
 */
Tensor packWeightTranspose(const Tensor &w);

/** linear() over an already-packed [K,N] weight from packWeightTranspose. */
Tensor linearPacked(const Tensor &x, const Tensor &wt, const Tensor &b,
                    Tensor dst = {}, const ParallelRegion *par = nullptr);

/**
 * linearPacked() with a fused point-wise epilogue: @p stages are
 * applied per element inside the 4x16 GEMM tile write-out, right after
 * the bias add — the "GEMM + activation" fusion of the executable
 * fusion pass. Bit-identical to linearPacked() followed by the
 * corresponding optimized element-wise sweeps (same expressions, same
 * per-element order).
 */
Tensor linearPackedEpi(const Tensor &x, const Tensor &wt, const Tensor &b,
                       const scalar::UnaryStage *stages, size_t nStages,
                       Tensor dst = {},
                       const ParallelRegion *par = nullptr);

/**
 * 2-D convolution (NCHW, im2col) through the register-tiled GEMM core
 * with the bias and the point-wise @p stages fused into the tile
 * write-out. This is the kernel behind the executable fusion pass's
 * CONV+BN(+act) groups: the caller pre-merges the BN affine into
 * @p w / @p b (ParamStore::derived), so the whole triple runs as one
 * GEMM with an activation epilogue. Matches the reference conv2d to
 * float tolerance (the tile core does not reassociate, but it also
 * does not skip zero products).
 */
Tensor conv2dEpi(const Tensor &x, const Tensor &w, const Tensor &b,
                 int stride, int padding, int groups,
                 const scalar::UnaryStage *stages, size_t nStages,
                 Tensor dst = {}, const ParallelRegion *par = nullptr);

// ----- Normalization ------------------------------------------------------

Tensor layerNorm(const Tensor &x, const Tensor &gamma, const Tensor &beta,
                 float eps, Tensor dst = {});
Tensor batchNorm2d(const Tensor &x, const Tensor &gamma, const Tensor &beta,
                   const Tensor &mean, const Tensor &var, float eps,
                   Tensor dst = {});

// ----- Logit computation --------------------------------------------------

Tensor softmax(const Tensor &x, int dim, Tensor dst = {});

// ----- Elementwise --------------------------------------------------------

Tensor relu(const Tensor &x, Tensor dst = {});
Tensor gelu(const Tensor &x, Tensor dst = {});
Tensor silu(const Tensor &x, Tensor dst = {});
Tensor sigmoid(const Tensor &x, Tensor dst = {});
Tensor tanhOp(const Tensor &x, Tensor dst = {});
Tensor expOp(const Tensor &x, Tensor dst = {});

Tensor add(const Tensor &a, const Tensor &b, Tensor dst = {});
Tensor sub(const Tensor &a, const Tensor &b, Tensor dst = {});
Tensor mul(const Tensor &a, const Tensor &b, Tensor dst = {});
Tensor div(const Tensor &a, const Tensor &b, Tensor dst = {});
Tensor addScalar(const Tensor &x, float s, Tensor dst = {});
Tensor mulScalar(const Tensor &x, float s, Tensor dst = {});

}  // namespace opt
}  // namespace kernels
}  // namespace ngb

#endif  // NGB_OPS_OPTIMIZED_KERNELS_H
