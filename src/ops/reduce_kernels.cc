#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "ops/kernels.h"

namespace ngb {
namespace kernels {

namespace {

/** Move dim to the last axis, returning the permutation used. */
std::vector<int>
permToLast(size_t rank, int dim)
{
    std::vector<int> order(rank);
    std::iota(order.begin(), order.end(), 0);
    order.erase(order.begin() + dim);
    order.push_back(dim);
    return order;
}

std::vector<int>
inversePerm(const std::vector<int> &p)
{
    std::vector<int> inv(p.size());
    for (size_t i = 0; i < p.size(); ++i)
        inv[static_cast<size_t>(p[i])] = static_cast<int>(i);
    return inv;
}

int
normDim(const Tensor &x, int dim)
{
    int r = static_cast<int>(x.shape().rank());
    if (dim < 0)
        dim += r;
    if (dim < 0 || dim >= r)
        throw std::runtime_error("softmax: bad dim");
    return dim;
}

/** Row-wise softmax of contiguous [rows, d] data. */
void
softmaxRows(const float *px, float *po, int64_t rows, int64_t d)
{
    for (int64_t i = 0; i < rows; ++i) {
        const float *row = px + i * d;
        float *orow = po + i * d;
        float mx = row[0];
        for (int64_t j = 1; j < d; ++j)
            mx = std::max(mx, row[j]);
        float sum = 0.0f;
        for (int64_t j = 0; j < d; ++j) {
            orow[j] = std::exp(row[j] - mx);
            sum += orow[j];
        }
        float inv = 1.0f / sum;
        for (int64_t j = 0; j < d; ++j)
            orow[j] *= inv;
    }
}

}  // namespace

Tensor
softmax(const Tensor &x, int dim, Tensor dst)
{
    dim = normDim(x, dim);
    int64_t rank = static_cast<int64_t>(x.shape().rank());
    if (dim == rank - 1) {
        // The ubiquitous case: no permutation round trip needed.
        Tensor xl = toContiguousF32(x);
        int64_t d = xl.shape().dim(-1);
        Tensor out = claimOut(std::move(dst), x.shape(), DType::F32);
        softmaxRows(xl.dataF32(), out.dataF32(), xl.numel() / d, d);
        return out;
    }
    std::vector<int> perm = permToLast(x.shape().rank(), dim);
    Tensor xl = toContiguousF32(x.permute(perm));
    int64_t d = xl.shape().dim(-1);
    Tensor tmp = scratchEmpty(xl.shape(), DType::F32);
    softmaxRows(xl.dataF32(), tmp.dataF32(), xl.numel() / d, d);
    Tensor out = claimOut(std::move(dst), x.shape(), DType::F32);
    return out.copyFrom(tmp.permute(inversePerm(perm)));
}

Tensor
logSoftmax(const Tensor &x, int dim, Tensor dst)
{
    Tensor sm = softmax(x, dim, scratchEmpty(x.shape(), DType::F32));
    Tensor out = claimOut(std::move(dst), sm.shape(), DType::F32);
    float *po = out.dataF32();
    const float *ps = sm.dataF32();
    for (int64_t i = 0; i < sm.numel(); ++i)
        po[i] = std::log(ps[i]);
    return out;
}

std::pair<Tensor, Tensor>
topk(const Tensor &x, int k, Tensor values_dst, Tensor indices_dst)
{
    int64_t d = x.shape().dim(-1);
    if (k > d)
        throw std::runtime_error("topk: k > last dim");
    Tensor xc = toContiguousF32(x);
    int64_t rows = xc.numel() / d;
    std::vector<int64_t> dims = x.shape().dims();
    dims.back() = k;
    Tensor values = claimOut(std::move(values_dst), Shape(dims), DType::F32);
    Tensor indices =
        claimOut(std::move(indices_dst), Shape(dims), DType::I32);
    const float *px = xc.dataF32();
    float *pv = values.dataF32();
    int32_t *pi = indices.dataI32();
    std::vector<int32_t> order(static_cast<size_t>(d));
    for (int64_t i = 0; i < rows; ++i) {
        const float *row = px + i * d;
        std::iota(order.begin(), order.end(), 0);
        std::partial_sort(order.begin(), order.begin() + k, order.end(),
                          [row](int32_t a, int32_t b) {
                              return row[a] > row[b];
                          });
        for (int j = 0; j < k; ++j) {
            pv[i * k + j] = row[order[static_cast<size_t>(j)]];
            pi[i * k + j] = order[static_cast<size_t>(j)];
        }
    }
    return {values, indices};
}

Tensor
gather(const Tensor &x, int dim, const Tensor &index, Tensor dst)
{
    dim = normDim(x, dim);
    Tensor out = claimOut(std::move(dst), index.shape(), DType::F32);
    int64_t n = index.numel();
    size_t rank = x.shape().rank();
    for (int64_t i = 0; i < n; ++i) {
        // Decompose i into the index tensor's coordinates.
        std::vector<int64_t> coord(rank);
        int64_t rem = i;
        for (int d2 = static_cast<int>(rank) - 1; d2 >= 0; --d2) {
            size_t du = static_cast<size_t>(d2);
            coord[du] = rem % index.shape()[du];
            rem /= index.shape()[du];
        }
        std::vector<int64_t> src = coord;
        src[static_cast<size_t>(dim)] =
            static_cast<int64_t>(index.at(coord));
        out.set(coord, x.at(src));
    }
    return out;
}

Tensor
cumsum(const Tensor &x, int dim, Tensor dst)
{
    dim = normDim(x, dim);
    int64_t rank = static_cast<int64_t>(x.shape().rank());
    bool last = dim == rank - 1;
    std::vector<int> perm = permToLast(x.shape().rank(), dim);
    Tensor xl = last ? toContiguousF32(x)
                     : toContiguousF32(x.permute(perm));
    int64_t d = xl.shape().dim(-1);
    int64_t rows = xl.numel() / d;
    Tensor out = claimOut(std::move(dst), x.shape(), DType::F32);
    Tensor work = last ? out : scratchEmpty(xl.shape(), DType::F32);
    const float *px = xl.dataF32();
    float *po = work.dataF32();
    for (int64_t i = 0; i < rows; ++i) {
        float acc = 0.0f;
        for (int64_t j = 0; j < d; ++j) {
            acc += px[i * d + j];
            po[i * d + j] = acc;
        }
    }
    if (last)
        return out;
    return out.copyFrom(work.permute(inversePerm(perm)));
}

Tensor
embedding(const Tensor &ids, const Tensor &table, Tensor dst)
{
    if (table.shape().rank() != 2)
        throw std::runtime_error("embedding: table must be [V,D]");
    int64_t v = table.shape()[0], d = table.shape()[1];
    Tensor tc = toContiguousF32(table);
    const float *pt = tc.dataF32();
    std::vector<int64_t> dims = ids.shape().dims();
    dims.push_back(d);
    Tensor out = claimOut(std::move(dst), Shape(dims), DType::F32);
    float *po = out.dataF32();
    for (int64_t i = 0; i < ids.numel(); ++i) {
        int64_t id = static_cast<int64_t>(ids.flatAt(i));
        if (id < 0 || id >= v)
            throw std::runtime_error("embedding: id out of range");
        const float *row = pt + id * d;
        for (int64_t j = 0; j < d; ++j)
            po[i * d + j] = row[j];
    }
    return out;
}

}  // namespace kernels
}  // namespace ngb
