#include "ops/op_types.h"

namespace ngb {

std::string
opKindName(OpKind k)
{
    switch (k) {
      case OpKind::Linear: return "linear";
      case OpKind::Conv2d: return "conv2d";
      case OpKind::BMM: return "bmm";
      case OpKind::MatMul: return "matmul";
      case OpKind::Int8Linear: return "int8_linear";
      case OpKind::ReLU: return "relu";
      case OpKind::GELU: return "gelu";
      case OpKind::SiLU: return "silu";
      case OpKind::LayerNorm: return "layer_norm";
      case OpKind::BatchNorm2d: return "batch_norm2d";
      case OpKind::FrozenBatchNorm2d: return "frozen_batch_norm2d";
      case OpKind::RMSNorm: return "rms_norm";
      case OpKind::GroupNorm: return "group_norm";
      case OpKind::Reshape: return "reshape";
      case OpKind::View: return "view";
      case OpKind::Permute: return "permute";
      case OpKind::Transpose: return "transpose";
      case OpKind::Contiguous: return "contiguous";
      case OpKind::Split: return "split";
      case OpKind::Expand: return "expand";
      case OpKind::Squeeze: return "squeeze";
      case OpKind::Unsqueeze: return "unsqueeze";
      case OpKind::Concat: return "concat";
      case OpKind::Slice: return "slice";
      case OpKind::Roll: return "roll";
      case OpKind::Pad: return "pad";
      case OpKind::Add: return "add";
      case OpKind::Sub: return "sub";
      case OpKind::Mul: return "mul";
      case OpKind::Div: return "div";
      case OpKind::Neg: return "neg";
      case OpKind::Pow: return "pow";
      case OpKind::Sqrt: return "sqrt";
      case OpKind::Erf: return "erf";
      case OpKind::Exp: return "exp";
      case OpKind::Log: return "log";
      case OpKind::Tanh: return "tanh";
      case OpKind::Where: return "where";
      case OpKind::Softmax: return "softmax";
      case OpKind::LogSoftmax: return "log_softmax";
      case OpKind::NMS: return "nms";
      case OpKind::RoIAlign: return "roi_align";
      case OpKind::Interpolate: return "interpolate";
      case OpKind::Embedding: return "embedding";
      case OpKind::MaxPool2d: return "max_pool2d";
      case OpKind::AvgPool2d: return "avg_pool2d";
      case OpKind::AdaptiveAvgPool2d: return "adaptive_avg_pool2d";
      case OpKind::TopK: return "topk";
      case OpKind::Gather: return "gather";
      case OpKind::CumSum: return "cumsum";
      case OpKind::Sigmoid: return "sigmoid";
      case OpKind::Quantize: return "quantize";
      case OpKind::Dequantize: return "dequantize";
      case OpKind::Fused: return "fused";
    }
    return "?";
}

const std::vector<OpKind> &
allOpKinds()
{
    static const std::vector<OpKind> kKinds = {
        OpKind::Linear,       OpKind::Conv2d,
        OpKind::BMM,          OpKind::MatMul,
        OpKind::Int8Linear,   OpKind::ReLU,
        OpKind::GELU,         OpKind::SiLU,
        OpKind::LayerNorm,    OpKind::BatchNorm2d,
        OpKind::FrozenBatchNorm2d,
        OpKind::RMSNorm,      OpKind::GroupNorm,
        OpKind::Reshape,      OpKind::View,
        OpKind::Permute,      OpKind::Transpose,
        OpKind::Contiguous,   OpKind::Split,
        OpKind::Expand,       OpKind::Squeeze,
        OpKind::Unsqueeze,    OpKind::Concat,
        OpKind::Slice,        OpKind::Roll,
        OpKind::Pad,          OpKind::Add,
        OpKind::Sub,          OpKind::Mul,
        OpKind::Div,          OpKind::Neg,
        OpKind::Pow,          OpKind::Sqrt,
        OpKind::Erf,          OpKind::Exp,
        OpKind::Log,          OpKind::Tanh,
        OpKind::Where,        OpKind::Softmax,
        OpKind::LogSoftmax,   OpKind::NMS,
        OpKind::RoIAlign,     OpKind::Interpolate,
        OpKind::Embedding,    OpKind::MaxPool2d,
        OpKind::AvgPool2d,    OpKind::AdaptiveAvgPool2d,
        OpKind::TopK,         OpKind::Gather,
        OpKind::CumSum,       OpKind::Sigmoid,
        OpKind::Quantize,     OpKind::Dequantize,
        OpKind::Fused,
    };
    return kKinds;
}

std::string
opCategoryName(OpCategory c)
{
    switch (c) {
      case OpCategory::Gemm: return "GEMM";
      case OpCategory::Activation: return "Activation";
      case OpCategory::Normalization: return "Normalization";
      case OpCategory::Memory: return "Memory";
      case OpCategory::ElementWise: return "ElementWise";
      case OpCategory::LogitCompute: return "LogitCompute";
      case OpCategory::RoiSelection: return "RoiSelection";
      case OpCategory::Interpolation: return "Interpolation";
      case OpCategory::Embedding: return "Embedding";
      case OpCategory::QDQ: return "QDQ";
      case OpCategory::Misc: return "Misc";
    }
    return "?";
}

OpCategory
opCategoryOf(OpKind k)
{
    switch (k) {
      case OpKind::Linear:
      case OpKind::Conv2d:
      case OpKind::BMM:
      case OpKind::MatMul:
      case OpKind::Int8Linear:
        return OpCategory::Gemm;

      case OpKind::ReLU:
      case OpKind::GELU:
      case OpKind::SiLU:
      case OpKind::Sigmoid:
        return OpCategory::Activation;

      case OpKind::LayerNorm:
      case OpKind::BatchNorm2d:
      case OpKind::FrozenBatchNorm2d:
      case OpKind::RMSNorm:
      case OpKind::GroupNorm:
        return OpCategory::Normalization;

      case OpKind::Reshape:
      case OpKind::View:
      case OpKind::Permute:
      case OpKind::Transpose:
      case OpKind::Contiguous:
      case OpKind::Split:
      case OpKind::Expand:
      case OpKind::Squeeze:
      case OpKind::Unsqueeze:
      case OpKind::Concat:
      case OpKind::Slice:
      case OpKind::Roll:
      case OpKind::Pad:
      case OpKind::Gather:
        return OpCategory::Memory;

      case OpKind::Add:
      case OpKind::Sub:
      case OpKind::Mul:
      case OpKind::Div:
      case OpKind::Neg:
      case OpKind::Pow:
      case OpKind::Sqrt:
      case OpKind::Erf:
      case OpKind::Exp:
      case OpKind::Log:
      case OpKind::Tanh:
      case OpKind::Where:
        return OpCategory::ElementWise;

      case OpKind::Softmax:
      case OpKind::LogSoftmax:
        return OpCategory::LogitCompute;

      case OpKind::NMS:
      case OpKind::RoIAlign:
        return OpCategory::RoiSelection;

      case OpKind::Interpolate:
        return OpCategory::Interpolation;

      case OpKind::Embedding:
        return OpCategory::Embedding;

      case OpKind::Quantize:
      case OpKind::Dequantize:
        return OpCategory::QDQ;

      case OpKind::MaxPool2d:
      case OpKind::AvgPool2d:
      case OpKind::AdaptiveAvgPool2d:
      case OpKind::TopK:
      case OpKind::CumSum:
      case OpKind::Fused:
        return OpCategory::Misc;
    }
    return OpCategory::Misc;
}

bool
isGemmOp(OpKind k)
{
    return opCategoryOf(k) == OpCategory::Gemm;
}

bool
isZeroCopyLayoutOp(OpKind k)
{
    switch (k) {
      case OpKind::View:
      case OpKind::Permute:
      case OpKind::Transpose:
      case OpKind::Expand:
      case OpKind::Squeeze:
      case OpKind::Unsqueeze:
      case OpKind::Slice:
        return true;
      default:
        return false;
    }
}

}  // namespace ngb
