#include <algorithm>
#include <stdexcept>

#include "ops/kernels.h"

namespace ngb {
namespace kernels {

Tensor
matmul(const Tensor &a, const Tensor &b, Tensor dst)
{
    if (a.shape().rank() != 2 || b.shape().rank() != 2)
        throw std::runtime_error("matmul: rank-2 inputs required");
    int64_t m = a.shape()[0], k = a.shape()[1];
    int64_t k2 = b.shape()[0], n = b.shape()[1];
    if (k != k2)
        throw std::runtime_error("matmul: inner dim mismatch");
    Tensor ac = toContiguousF32(a);
    Tensor bc = toContiguousF32(b);
    Tensor out = claimOut(std::move(dst), Shape{m, n}, DType::F32);
    const float *pa = ac.dataF32();
    const float *pb = bc.dataF32();
    float *po = out.dataF32();
    std::fill(po, po + m * n, 0.0f);  // ikj accumulates into the output
    for (int64_t i = 0; i < m; ++i) {
        for (int64_t kk = 0; kk < k; ++kk) {
            float av = pa[i * k + kk];
            if (av == 0.0f)
                continue;
            const float *brow = pb + kk * n;
            float *orow = po + i * n;
            for (int64_t j = 0; j < n; ++j)
                orow[j] += av * brow[j];
        }
    }
    return out;
}

Tensor
linear(const Tensor &x, const Tensor &w, const Tensor &b, Tensor dst)
{
    if (w.shape().rank() != 2)
        throw std::runtime_error("linear: weight must be [N,K]");
    int64_t n = w.shape()[0], k = w.shape()[1];
    if (x.shape().dim(-1) != k)
        throw std::runtime_error("linear: input last dim != K");
    Tensor rows = toContiguousF32(x).view(Shape{x.numel() / k, k});
    Tensor wt = toContiguousF32(w.transpose(0, 1));
    std::vector<int64_t> dims = x.shape().dims();
    dims.back() = n;
    Tensor out = claimOut(std::move(dst), Shape(dims), DType::F32);
    Tensor flat = out.view(Shape{rows.shape()[0], n});
    matmul(rows, wt, flat);
    if (b.defined()) {
        float *po = flat.dataF32();
        Tensor bc = toContiguousF32(b);
        const float *pb = bc.dataF32();
        int64_t m = flat.shape()[0];
        for (int64_t i = 0; i < m; ++i)
            for (int64_t j = 0; j < n; ++j)
                po[i * n + j] += pb[j];
    }
    return out;
}

Tensor
bmm(const Tensor &a, const Tensor &b, Tensor dst)
{
    if (a.shape().rank() != 3 || b.shape().rank() != 3)
        throw std::runtime_error("bmm: rank-3 inputs required");
    int64_t bs = a.shape()[0];
    if (b.shape()[0] != bs)
        throw std::runtime_error("bmm: batch mismatch");
    int64_t m = a.shape()[1], k = a.shape()[2], n = b.shape()[2];
    if (b.shape()[1] != k)
        throw std::runtime_error("bmm: inner dim mismatch");
    Tensor ac = toContiguousF32(a);
    Tensor bc = toContiguousF32(b);
    Tensor out = claimOut(std::move(dst), Shape{bs, m, n}, DType::F32);
    for (int64_t i = 0; i < bs; ++i)
        matmul(ac.slice(0, i, 1).view(Shape{m, k}),
               bc.slice(0, i, 1).view(Shape{k, n}),
               out.slice(0, i, 1).view(Shape{m, n}));
    return out;
}

Tensor
conv2d(const Tensor &x, const Tensor &w, const Tensor &b, int stride,
       int padding, int groups, Tensor dst)
{
    if (x.shape().rank() != 4 || w.shape().rank() != 4)
        throw std::runtime_error("conv2d: NCHW input and FCRS weight");
    int64_t n = x.shape()[0], c = x.shape()[1];
    int64_t h = x.shape()[2], wd = x.shape()[3];
    int64_t f = w.shape()[0], cg = w.shape()[1];
    int64_t r = w.shape()[2], s = w.shape()[3];
    if (c != cg * groups)
        throw std::runtime_error("conv2d: channel/group mismatch");
    if (f % groups != 0)
        throw std::runtime_error("conv2d: filters not divisible by groups");
    int64_t oh = (h + 2 * padding - r) / stride + 1;
    int64_t ow = (wd + 2 * padding - s) / stride + 1;
    int64_t fg = f / groups;

    Tensor xc = toContiguousF32(x);
    Tensor wc = toContiguousF32(w);
    const float *px = xc.dataF32();
    const float *pw = wc.dataF32();
    Tensor out = claimOut(std::move(dst), Shape{n, f, oh, ow}, DType::F32);
    float *po = out.dataF32();

    // im2col per (image, group), then GEMM over the patch matrix.
    int64_t patch = cg * r * s;
    Tensor colT = scratchEmpty(Shape{patch, oh * ow}, DType::F32);
    float *col = colT.dataF32();
    for (int64_t img = 0; img < n; ++img) {
        for (int g = 0; g < groups; ++g) {
            // Build the column matrix: [patch, oh*ow].
            for (int64_t cc = 0; cc < cg; ++cc) {
                int64_t cin = g * cg + cc;
                const float *chan = px + (img * c + cin) * h * wd;
                for (int64_t rr = 0; rr < r; ++rr) {
                    for (int64_t ss = 0; ss < s; ++ss) {
                        int64_t row = (cc * r + rr) * s + ss;
                        float *crow = col + row * oh * ow;
                        for (int64_t oy = 0; oy < oh; ++oy) {
                            int64_t iy = oy * stride - padding + rr;
                            for (int64_t ox = 0; ox < ow; ++ox) {
                                int64_t ix = ox * stride - padding + ss;
                                float v = 0.0f;
                                if (iy >= 0 && iy < h && ix >= 0 && ix < wd)
                                    v = chan[iy * wd + ix];
                                crow[oy * ow + ox] = v;
                            }
                        }
                    }
                }
            }
            // out[fg rows] = W[fg, patch] @ col[patch, oh*ow]
            for (int64_t ff = 0; ff < fg; ++ff) {
                int64_t fout = g * fg + ff;
                const float *wrow = pw + fout * patch;
                float *orow = po + (img * f + fout) * oh * ow;
                for (int64_t j = 0; j < oh * ow; ++j)
                    orow[j] = 0.0f;
                for (int64_t p = 0; p < patch; ++p) {
                    float wv = wrow[p];
                    if (wv == 0.0f)
                        continue;
                    const float *crow = col + p * oh * ow;
                    for (int64_t j = 0; j < oh * ow; ++j)
                        orow[j] += wv * crow[j];
                }
            }
        }
    }
    if (b.defined()) {
        Tensor bc = toContiguousF32(b);
        const float *pb = bc.dataF32();
        for (int64_t img = 0; img < n; ++img)
            for (int64_t ff = 0; ff < f; ++ff) {
                float *orow = po + (img * f + ff) * oh * ow;
                for (int64_t j = 0; j < oh * ow; ++j)
                    orow[j] += pb[ff];
            }
    }
    return out;
}

Tensor
int8Linear(const Tensor &x_q, const Tensor &w_q, const Tensor &b,
           float x_scale, float w_scale, Tensor dst)
{
    if (x_q.dtype() != DType::I8 || w_q.dtype() != DType::I8)
        throw std::runtime_error("int8Linear: int8 inputs required");
    int64_t n = w_q.shape()[0], k = w_q.shape()[1];
    if (x_q.shape().dim(-1) != k)
        throw std::runtime_error("int8Linear: input last dim != K");
    Tensor xc = toContiguous(x_q);
    int64_t m = xc.numel() / k;
    const int8_t *px = xc.dataI8();
    Tensor wc = toContiguous(w_q);
    const int8_t *pw = wc.dataI8();

    std::vector<int64_t> dims = x_q.shape().dims();
    dims.back() = n;
    Tensor out = claimOut(std::move(dst), Shape(dims), DType::F32);
    Tensor flat = out.view(Shape{m, n});
    float *po = flat.dataF32();
    float scale = x_scale * w_scale;
    for (int64_t i = 0; i < m; ++i) {
        for (int64_t j = 0; j < n; ++j) {
            int32_t acc = 0;
            const int8_t *xrow = px + i * k;
            const int8_t *wrow = pw + j * k;
            for (int64_t kk = 0; kk < k; ++kk)
                acc += static_cast<int32_t>(xrow[kk]) *
                       static_cast<int32_t>(wrow[kk]);
            po[i * n + j] = static_cast<float>(acc) * scale;
        }
    }
    if (b.defined()) {
        Tensor bc = toContiguousF32(b);
        const float *pb = bc.dataF32();
        for (int64_t i = 0; i < m; ++i)
            for (int64_t j = 0; j < n; ++j)
                po[i * n + j] += pb[j];
    }
    return out;
}

}  // namespace kernels
}  // namespace ngb
