#ifndef NGB_PROFILER_RUNTIME_REPORT_H
#define NGB_PROFILER_RUNTIME_REPORT_H

#include <ostream>

#include "runtime/memory_planner.h"
#include "runtime/runtime_profile.h"

namespace ngb {

/**
 * Human-readable report over a *measured* parallel-runtime execution:
 * wall clock vs summed kernel time, per-thread busy bars, the widest
 * wavefront levels, and the measured GEMM / non-GEMM split — the
 * wall-clock counterpart of the cost-model printReport, closing the
 * loop on the paper's claim with timings from the actual host kernels.
 */
void printRuntimeReport(const RuntimeProfile &p, std::ostream &os);

/**
 * Side-by-side per-category attribution of two measured runs of the
 * SAME graph under two kernel backends (e.g. reference vs optimized):
 * per-category kernel time, each backend's GEMM / non-GEMM share, and
 * the per-category speedup — the paper's Figure 6 experiment repeated
 * across backends, showing how the split shifts as kernels get
 * optimized.
 */
void printBackendComparison(const RuntimeProfile &a,
                            const RuntimeProfile &b, std::ostream &os);

/**
 * The same side-by-side attribution with caller-chosen column labels.
 * The --fuse runtime mode uses it to print unfused vs fused
 * measurements of one model under one backend (the Section IV-B
 * experiment measured instead of modeled).
 */
void printRuntimeComparison(const RuntimeProfile &a,
                            const RuntimeProfile &b,
                            const std::string &labelA,
                            const std::string &labelB, std::ostream &os);

/** One-line arena summary: planned peak vs the no-reuse footprint. */
void printMemoryPlan(const MemoryPlan &plan, std::ostream &os);

/** CSV row per wavefront level: level,nodes,wall_us. */
void writeLevelCsv(const RuntimeProfile &p, std::ostream &os);

}  // namespace ngb

#endif  // NGB_PROFILER_RUNTIME_REPORT_H
