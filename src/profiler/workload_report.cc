#include "profiler/workload_report.h"

#include <algorithm>
#include <iomanip>
#include <map>

namespace ngb {

const OpKindSummary *
WorkloadReport::find(OpKind k) const
{
    for (const OpKindSummary &s : byKind)
        if (s.kind == k)
            return &s;
    return nullptr;
}

WorkloadReport
buildWorkloadReport(const Graph &g, size_t max_examples)
{
    WorkloadReport r;
    r.model = g.name();
    r.stats = g.stats();

    std::map<OpKind, OpKindSummary> acc;
    for (const Node &n : g.nodes()) {
        if (n.inputs.empty())
            continue;  // graph inputs / weights
        OpKindSummary &s = acc[n.kind];
        s.kind = n.kind;
        s.category = n.category();
        ++s.count;
        s.launches += n.attrs.getI("kernels", 1);
        s.flops += n.cost.flops;
        s.activationBytes += n.cost.bytesIn + n.cost.bytesOut;
        s.paramBytes += n.cost.bytesParam;
        if (s.exampleShapes.size() < max_examples) {
            const Shape &in = g.shapeOf(n.inputs[0]);
            bool dup = false;
            for (const Shape &e : s.exampleShapes)
                dup |= e == in;
            if (!dup)
                s.exampleShapes.push_back(in);
        }
    }
    for (auto &[kind, s] : acc)
        r.byKind.push_back(std::move(s));
    std::sort(r.byKind.begin(), r.byKind.end(),
              [](const OpKindSummary &a, const OpKindSummary &b) {
                  return a.launches > b.launches;
              });
    return r;
}

void
writeWorkloadCsv(const WorkloadReport &r, std::ostream &os)
{
    os << "op,category,count,launches,flops,activation_bytes,"
          "param_bytes,example_shape\n";
    for (const OpKindSummary &s : r.byKind) {
        os << opKindName(s.kind) << ',' << opCategoryName(s.category)
           << ',' << s.count << ',' << s.launches << ',' << s.flops << ','
           << s.activationBytes << ',' << s.paramBytes << ',' << '"'
           << (s.exampleShapes.empty() ? "" : s.exampleShapes[0].str())
           << '"' << '\n';
    }
}

void
printWorkloadReport(const WorkloadReport &r, std::ostream &os)
{
    os << "Workload report: " << r.model << " — " << r.stats.numOps
       << " ops (" << r.stats.numGemmOps << " GEMM / "
       << r.stats.numNonGemmOps << " non-GEMM), "
       << std::fixed << std::setprecision(2)
       << r.stats.totalFlops / 1e9 << " GFLOPs, "
       << static_cast<double>(r.stats.totalParams) / 1e6 << " M params\n";
    for (const OpKindSummary &s : r.byKind) {
        os << "  " << std::left << std::setw(20) << opKindName(s.kind)
           << std::setw(14) << opCategoryName(s.category) << std::right
           << " x" << std::setw(4) << s.count << "  launches "
           << std::setw(5) << s.launches << "  e.g. "
           << (s.exampleShapes.empty() ? "-" : s.exampleShapes[0].str())
           << "\n";
    }
}

}  // namespace ngb
