#include "profiler/runtime_report.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace ngb {

namespace {

/** 1234567 -> "1.23M": engineering notation for counter magnitudes. */
std::string
engFmt(double v)
{
    static const char *suffix[] = {"", "k", "M", "G", "T", "P"};
    int mag = 0;
    while (v >= 1000.0 && mag < 5) {
        v /= 1000.0;
        ++mag;
    }
    std::ostringstream os;
    os << std::fixed << std::setprecision(v < 10 ? 2 : v < 100 ? 1 : 0)
       << v << suffix[mag];
    return os.str();
}

}  // namespace

void
printRuntimeReport(const RuntimeProfile &p, std::ostream &os)
{
    os << "runtime: backend=" << p.backend
       << (p.fused ? " (fused)" : "") << " threads=" << p.threads
       << " requests=" << p.requests
       << " intraop=" << p.intraop
       << "  levels=" << p.schedule.numLevels
       << " max_width=" << p.schedule.maxWidth << " avg_width="
       << std::fixed << std::setprecision(1) << p.schedule.avgWidth;
    if (int deep = p.deepLevelCount())
        os << "  deep_levels=" << deep << "/" << p.levels.size();
    os << "\n";
    os << "  wall " << std::setprecision(2) << p.wallUs * 1e-3
       << " ms  |  kernel time " << p.sumUs * 1e-3 << " ms  |  concurrency "
       << p.concurrency() << "x  |  utilization " << std::setprecision(1)
       << 100.0 * p.utilization() << "%  |  plan " << std::setprecision(2)
       << p.planUs * 1e-3 << " ms (amortized)\n";

    if (!p.threadBusyUs.empty()) {
        double busiest = *std::max_element(p.threadBusyUs.begin(),
                                           p.threadBusyUs.end());
        os << "  per-thread busy (steals=" << p.steals << "):\n";
        for (size_t t = 0; t < p.threadBusyUs.size(); ++t) {
            int bar = busiest > 0 ? static_cast<int>(
                                        32.0 * p.threadBusyUs[t] / busiest)
                                  : 0;
            os << "    t" << t << " " << std::setw(9)
               << std::setprecision(1) << p.threadBusyUs[t] << " us  |"
               << std::string(static_cast<size_t>(bar), '#') << "\n";
        }
    }

    if (!p.levels.empty()) {
        // The handful of levels that dominate wall time.
        std::vector<LevelTiming> by_wall = p.levels;
        std::sort(by_wall.begin(), by_wall.end(),
                  [](const LevelTiming &a, const LevelTiming &b) {
                      return a.wallUs > b.wallUs;
                  });
        size_t show = std::min<size_t>(by_wall.size(), 5);
        os << "  hottest levels:\n";
        for (size_t i = 0; i < show; ++i)
            os << "    level " << std::setw(4) << by_wall[i].level
               << "  nodes=" << std::setw(4) << by_wall[i].nodes
               << "  wall " << std::setprecision(1) << by_wall[i].wallUs
               << " us" << (by_wall[i].deep ? "  [deep]" : "") << "\n";
    }

    const MemoryStats &m = p.memory;
    os << "  memory: " << (m.arena ? "arena" : "heap")
       << " execution  |  planned arena " << m.plannedArenaBytes / 1024
       << " KiB, no-reuse " << m.plannedTotalBytes / 1024
       << " KiB  |  measured peak " << m.boundPeakBytes / 1024
       << " KiB (" << std::setprecision(1) << 100.0 * m.utilization()
       << "% of plan)\n";
    os << "    heap allocs " << m.heapAllocs << " ("
       << m.heapAllocBytes / 1024 << " KiB), "
       << std::setprecision(2) << m.allocsPerRequest(p.requests)
       << "/request  |  outputs " << m.arenaTensors << " arena / "
       << m.heapTensors << " heap  |  blocks " << m.arenaBlocks
       << "  |  scratch hw " << m.scratchPeakBytes / 1024
       << " KiB (workers sum " << m.scratchWorkerSumBytes / 1024
       << " KiB)\n";

    os << "  measured split [" << p.backend << "]: GEMM "
       << std::setprecision(1)
       << (p.sumUs > 0 ? 100.0 * p.gemmUs() / p.sumUs : 0)
       << "%  non-GEMM " << p.nonGemmPct() << "%\n";
    for (const auto &[cat, us] : p.usByCategory)
        os << "    " << std::left << std::setw(14) << opCategoryName(cat)
           << std::right << std::setw(10) << std::setprecision(1) << us
           << " us  (" << std::setw(5)
           << (p.sumUs > 0 ? 100.0 * us / p.sumUs : 0) << "%)\n";

    if (p.quant.quantized) {
        const quant::QuantExecStats &q = p.quant;
        os << "  quant: " << q.int8Gemms << " int8 GEMMs, " << q.qdqOps
           << " Q/DQ ops  |  weights " << q.packedWeightBytes / 1024
           << " KiB int8 vs " << q.floatWeightBytes / 1024
           << " KiB f32 (" << std::setprecision(2)
           << q.weightCompression() << "x smaller)\n";
        os << "    kernel time: int8 GEMM " << std::setprecision(1)
           << q.int8GemmUs << " us  |  float GEMM " << q.floatGemmUs
           << " us  |  Q/DQ " << q.qdqUs << " us ("
           << (p.sumUs > 0 ? 100.0 * q.qdqUs / p.sumUs : 0)
           << "% of kernel time)\n";
    }

    if (p.perf.enabled) {
        const obs::PerfCounterStats &pf = p.perf;
        if (!pf.measured) {
            os << "  hw counters: unavailable (" << pf.status << ")  |  "
               << pf.total.scopes << " kernel scopes clocked\n";
        } else {
            os << "  hw counters (" << pf.hwCounters
               << "/4 grouped): cycles " << engFmt(pf.total.cycles)
               << "  instr " << engFmt(pf.total.instructions)
               << "  IPC " << std::setprecision(2) << pf.total.ipc()
               << "  LLC MPKI " << pf.total.missesPerKiloInstr()
               << "  |  " << pf.total.scopes << " kernel scopes";
            if (!pf.status.empty())
                os << "  (" << pf.status << ")";
            os << "\n";
            for (size_t c = 0; c < obs::kPerfCategories; ++c) {
                const auto &b = pf.byCategory[c];
                if (b.scopes == 0)
                    continue;
                os << "    " << std::left << std::setw(14)
                   << opCategoryName(static_cast<OpCategory>(c))
                   << std::right << " cycles " << std::setw(8)
                   << engFmt(b.cycles) << "  IPC " << std::setw(5)
                   << std::setprecision(2) << b.ipc() << "  MPKI "
                   << std::setw(6) << b.missesPerKiloInstr() << "  ("
                   << engFmt(static_cast<double>(b.scopes))
                   << " scopes)\n";
            }
        }
        os << "  roofline: " << engFmt(p.measuredFlopsPerSec())
           << "FLOP/s (model FLOPs / measured wall)";
        if (pf.measured)
            os << "  |  bw proxy " << engFmt(p.measuredBandwidthProxy())
               << "B/s (LLC-miss lines)  |  AI " << std::setprecision(1)
               << p.measuredArithmeticIntensity() << " flop/B";
        else
            os << "  |  bw proxy unavailable (no LLC-miss counter)";
        os << "  |  model " << engFmt(p.modelFlops) << "FLOP, "
           << engFmt(p.modelBytes) << "B per request\n";
    }
}

void
printRuntimeComparison(const RuntimeProfile &a, const RuntimeProfile &b,
                       const std::string &labelA,
                       const std::string &labelB, std::ostream &os)
{
    auto usOf = [](const RuntimeProfile &p, OpCategory c) {
        auto it = p.usByCategory.find(c);
        return it != p.usByCategory.end() ? it->second : 0.0;
    };
    // Union of categories, map-ordered.
    std::map<OpCategory, double> cats = a.usByCategory;
    for (const auto &[cat, us] : b.usByCategory)
        cats.emplace(cat, us);

    os << "measured comparison: " << labelA << " vs " << labelB << "\n";
    os << "  " << std::left << std::setw(14) << "category" << std::right
       << std::setw(14) << labelA << std::setw(14) << labelB
       << std::setw(10) << "speedup" << "\n";
    for (const auto &[cat, unused] : cats) {
        (void)unused;
        double ua = usOf(a, cat), ub = usOf(b, cat);
        os << "  " << std::left << std::setw(14) << opCategoryName(cat)
           << std::right << std::fixed << std::setprecision(1)
           << std::setw(11) << ua << " us" << std::setw(11) << ub
           << " us" << std::setw(9) << std::setprecision(2)
           << (ub > 0 ? ua / ub : 0.0) << "x\n";
    }
    os << "  " << std::left << std::setw(14) << "total" << std::right
       << std::fixed << std::setprecision(1) << std::setw(11) << a.sumUs
       << " us" << std::setw(11) << b.sumUs << " us" << std::setw(9)
       << std::setprecision(2) << (b.sumUs > 0 ? a.sumUs / b.sumUs : 0.0)
       << "x\n";
    os << "  GEMM/non-GEMM split: " << labelA << " "
       << std::setprecision(1)
       << (a.sumUs > 0 ? 100.0 * a.gemmUs() / a.sumUs : 0.0) << "%/"
       << a.nonGemmPct() << "%  ->  " << labelB << " "
       << (b.sumUs > 0 ? 100.0 * b.gemmUs() / b.sumUs : 0.0) << "%/"
       << b.nonGemmPct() << "%\n";
}

void
printBackendComparison(const RuntimeProfile &a, const RuntimeProfile &b,
                       std::ostream &os)
{
    printRuntimeComparison(a, b, a.backend, b.backend, os);
}

void
printMemoryPlan(const MemoryPlan &plan, std::ostream &os)
{
    os << "memory plan: " << plan.placements.size() << " tensors, arena "
       << plan.arenaBytes / 1024 << " KiB, no-reuse "
       << plan.totalBytes / 1024 << " KiB, reuse " << std::fixed
       << std::setprecision(2) << plan.reuseFactor() << "x\n";
}

void
writeLevelCsv(const RuntimeProfile &p, std::ostream &os)
{
    os << "level,nodes,wall_us,deep\n";
    for (const LevelTiming &lt : p.levels)
        os << lt.level << ',' << lt.nodes << ',' << lt.wallUs << ','
           << (lt.deep ? 1 : 0) << '\n';
}

}  // namespace ngb
