#include "profiler/svg_chart.h"

#include <algorithm>
#include <cmath>
#include <iomanip>

namespace ngb {

namespace {

const std::vector<OpCategory> &
chartCategories()
{
    static const std::vector<OpCategory> kCats = {
        OpCategory::Gemm,          OpCategory::Activation,
        OpCategory::Normalization, OpCategory::Memory,
        OpCategory::RoiSelection,  OpCategory::Interpolation,
        OpCategory::ElementWise,   OpCategory::LogitCompute,
        OpCategory::Embedding,     OpCategory::QDQ,
        OpCategory::Misc,
    };
    return kCats;
}

}  // namespace

std::string
svgCategoryColor(OpCategory c)
{
    switch (c) {
      case OpCategory::Gemm: return "#4878cf";
      case OpCategory::Activation: return "#ee854a";
      case OpCategory::Normalization: return "#6acc64";
      case OpCategory::Memory: return "#d65f5f";
      case OpCategory::ElementWise: return "#956cb4";
      case OpCategory::LogitCompute: return "#8c613c";
      case OpCategory::RoiSelection: return "#dc7ec0";
      case OpCategory::Interpolation: return "#797979";
      case OpCategory::Embedding: return "#d5bb67";
      case OpCategory::QDQ: return "#82c6e2";
      case OpCategory::Misc: return "#b8b8b8";
    }
    return "#000000";
}

void
writeSvgChart(const std::vector<ProfileReport> &reports,
              const SvgChartOptions &opts, std::ostream &os,
              const std::vector<std::string> &labels)
{
    const int margin_left = 60;
    const int margin_top = 40;
    const int margin_bottom = 60;
    const int legend_w = opts.showLegend ? 160 : 0;
    const int n = static_cast<int>(reports.size());
    const int width = margin_left +
                      n * (opts.barWidth + opts.barGap) + legend_w + 20;
    const int height = margin_top + opts.chartHeight + margin_bottom;

    double max_ms = 1e-9;
    for (const ProfileReport &r : reports)
        max_ms = std::max(max_ms, r.totalMs());

    os << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << width
       << "\" height=\"" << height << "\">\n";
    os << "  <style>text{font-family:sans-serif;font-size:11px}"
          ".t{font-size:14px;font-weight:bold}</style>\n";
    os << "  <text class=\"t\" x=\"" << margin_left << "\" y=\"20\">"
       << opts.title << "</text>\n";

    // Y axis.
    os << "  <line x1=\"" << margin_left - 6 << "\" y1=\"" << margin_top
       << "\" x2=\"" << margin_left - 6 << "\" y2=\""
       << margin_top + opts.chartHeight
       << "\" stroke=\"#444\" stroke-width=\"1\"/>\n";
    for (int tick = 0; tick <= 4; ++tick) {
        double frac = tick / 4.0;
        int y = margin_top +
                static_cast<int>((1.0 - frac) * opts.chartHeight);
        os << "  <text x=\"4\" y=\"" << y + 4 << "\">";
        if (opts.normalize)
            os << static_cast<int>(frac * 100) << "%";
        else
            os << std::fixed << std::setprecision(1) << frac * max_ms
               << "ms";
        os << "</text>\n";
    }

    // Bars.
    for (int i = 0; i < n; ++i) {
        const ProfileReport &r = reports[static_cast<size_t>(i)];
        int x = margin_left + i * (opts.barWidth + opts.barGap);
        double bar_total =
            opts.normalize ? 100.0
                           : 100.0 * r.totalMs() / max_ms;
        double y_cursor = margin_top + opts.chartHeight;
        for (OpCategory c : chartCategories()) {
            double pct = r.categoryPct(c);
            if (pct <= 0.0)
                continue;
            double h = pct / 100.0 * bar_total / 100.0 *
                       opts.chartHeight;
            y_cursor -= h;
            os << "  <rect x=\"" << x << "\" y=\"" << y_cursor
               << "\" width=\"" << opts.barWidth << "\" height=\"" << h
               << "\" fill=\"" << svgCategoryColor(c) << "\">"
               << "<title>" << opCategoryName(c) << " "
               << std::fixed << std::setprecision(1) << pct
               << "%</title></rect>\n";
        }
        std::string label =
            i < static_cast<int>(labels.size())
                ? labels[static_cast<size_t>(i)]
                : r.model + " b" + std::to_string(r.batch);
        os << "  <text x=\"" << x + opts.barWidth / 2 << "\" y=\""
           << margin_top + opts.chartHeight + 14
           << "\" text-anchor=\"middle\" transform=\"rotate(30 "
           << x + opts.barWidth / 2 << " "
           << margin_top + opts.chartHeight + 14 << ")\">" << label
           << "</text>\n";
    }

    // Legend.
    if (opts.showLegend) {
        int lx = margin_left + n * (opts.barWidth + opts.barGap) + 16;
        int ly = margin_top;
        for (OpCategory c : chartCategories()) {
            os << "  <rect x=\"" << lx << "\" y=\"" << ly
               << "\" width=\"12\" height=\"12\" fill=\""
               << svgCategoryColor(c) << "\"/>\n";
            os << "  <text x=\"" << lx + 18 << "\" y=\"" << ly + 10
               << "\">" << opCategoryName(c) << "</text>\n";
            ly += 18;
        }
    }
    os << "</svg>\n";
}

}  // namespace ngb

namespace ngb {

void
writeRooflineSvg(const ExecutionPlan &plan,
                 const std::vector<GroupTiming> &timings,
                 const DeviceSpec &device, const std::string &title,
                 std::ostream &os)
{
    const int w = 640, h = 420;
    const int ml = 70, mr = 30, mt = 40, mb = 50;
    const double x_min = 1e-2, x_max = 1e4;   // flops/byte
    const double y_min = 1e0, y_max = 1e6;    // GFLOP/s

    auto xpos = [&](double v) {
        double f = (std::log10(v) - std::log10(x_min)) /
                   (std::log10(x_max) - std::log10(x_min));
        return ml + f * (w - ml - mr);
    };
    auto ypos = [&](double v) {
        double f = (std::log10(v) - std::log10(y_min)) /
                   (std::log10(y_max) - std::log10(y_min));
        return h - mb - f * (h - mt - mb);
    };
    auto clampd = [](double v, double lo, double hi) {
        return std::min(std::max(v, lo), hi);
    };

    os << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << w
       << "\" height=\"" << h << "\">\n";
    os << "  <style>text{font-family:sans-serif;font-size:11px}"
          ".t{font-size:14px;font-weight:bold}</style>\n";
    os << "  <text class=\"t\" x=\"" << ml << "\" y=\"22\">" << title
       << "</text>\n";
    os << "  <rect x=\"" << ml << "\" y=\"" << mt << "\" width=\""
       << w - ml - mr << "\" height=\"" << h - mt - mb
       << "\" fill=\"none\" stroke=\"#999\"/>\n";
    os << "  <text x=\"" << w / 2
       << "\" y=\"" << h - 12
       << "\" text-anchor=\"middle\">arithmetic intensity "
          "(FLOP/byte, log)</text>\n";
    os << "  <text x=\"14\" y=\"" << h / 2
       << "\" transform=\"rotate(-90 14 " << h / 2
       << ")\" text-anchor=\"middle\">GFLOP/s (log)</text>\n";

    // Rooflines: bandwidth slope and compute ceiling.
    double peak = device.gemmPeakGflops(false, false);
    double knee = peak / device.memBwGBs;
    os << "  <line x1=\"" << xpos(x_min) << "\" y1=\""
       << ypos(clampd(x_min * device.memBwGBs, y_min, y_max))
       << "\" x2=\"" << xpos(clampd(knee, x_min, x_max)) << "\" y2=\""
       << ypos(clampd(peak, y_min, y_max))
       << "\" stroke=\"#333\" stroke-width=\"1.5\"/>\n";
    os << "  <line x1=\"" << xpos(clampd(knee, x_min, x_max))
       << "\" y1=\"" << ypos(clampd(peak, y_min, y_max)) << "\" x2=\""
       << xpos(x_max) << "\" y2=\"" << ypos(clampd(peak, y_min, y_max))
       << "\" stroke=\"#333\" stroke-width=\"1.5\"/>\n";

    // One dot per kernel group.
    for (size_t i = 0; i < plan.groups.size(); ++i) {
        const KernelGroup &g = plan.groups[i];
        const GroupTiming &t = timings[i];
        double bytes = g.bytesIn + g.bytesOut + g.bytesParam;
        if (g.flops <= 0 || bytes <= 0 || t.deviceUs <= 0)
            continue;
        double intensity = clampd(g.flops / bytes, x_min, x_max);
        double gflops =
            clampd(g.flops / (t.deviceUs * 1e3), y_min, y_max);
        os << "  <circle cx=\"" << xpos(intensity) << "\" cy=\""
           << ypos(gflops) << "\" r=\"3.5\" fill=\""
           << svgCategoryColor(g.category)
           << "\" fill-opacity=\"0.75\"><title>" << g.label << " ("
           << opCategoryName(g.category) << ")</title></circle>\n";
    }
    os << "</svg>\n";
}

}  // namespace ngb
