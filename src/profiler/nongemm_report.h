#ifndef NGB_PROFILER_NONGEMM_REPORT_H
#define NGB_PROFILER_NONGEMM_REPORT_H

#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace ngb {

/**
 * The Non-GEMM Report of Section III-C: operator *variants* within a
 * class (e.g. DETR employing both its custom FrozenBatchNorm2d and the
 * library LayerNorm under the Normalization group) and the non-GEMM
 * operator footprint across task domains.
 */
struct CategoryVariants {
    OpCategory category;
    /** Distinct operator kinds of this category in the graph, with
     *  instance counts — the "variants of the same class". */
    std::map<OpKind, int64_t> variants;

    int64_t variantCount() const
    {
        return static_cast<int64_t>(variants.size());
    }
    int64_t instanceCount() const
    {
        int64_t n = 0;
        for (const auto &[k, c] : variants)
            n += c;
        return n;
    }
};

struct NonGemmReport {
    std::string model;
    std::vector<CategoryVariants> categories;  ///< non-GEMM only

    const CategoryVariants *find(OpCategory c) const;
};

/** Analyze one model graph. */
NonGemmReport buildNonGemmReport(const Graph &g);

/**
 * Aggregate non-GEMM operator usage across task domains: for each
 * domain, which non-GEMM categories its models employ and with how
 * many operator variants — the "non-GEMM operator trace on different
 * domains" output.
 */
struct DomainTrace {
    /** domain -> category -> set size of distinct operator kinds. */
    std::map<std::string, std::map<OpCategory, int64_t>> variantsByDomain;
    /** domain -> total non-GEMM op instances. */
    std::map<std::string, int64_t> instancesByDomain;
};

DomainTrace
buildDomainTrace(const std::vector<std::pair<std::string, Graph>> &graphs);

void printNonGemmReport(const NonGemmReport &r, std::ostream &os);

/**
 * Variant of printNonGemmReport annotated with *measured* kernel time
 * per category (e.g. RuntimeProfile::usByCategory from the parallel
 * runtime), closing the loop between the static operator inventory
 * and where wall-clock actually went.
 */
void printNonGemmReport(const NonGemmReport &r,
                        const std::map<OpCategory, double> &measuredUs,
                        std::ostream &os);

void printDomainTrace(const DomainTrace &t, std::ostream &os);

}  // namespace ngb

#endif  // NGB_PROFILER_NONGEMM_REPORT_H
