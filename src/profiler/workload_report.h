#ifndef NGB_PROFILER_WORKLOAD_REPORT_H
#define NGB_PROFILER_WORKLOAD_REPORT_H

#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace ngb {

/**
 * The Workload Report of Section III-C: operator types, instance
 * counts, and the tensor shapes each operator sees during inference —
 * the data behind the paper's Table I.
 */
struct OpKindSummary {
    OpKind kind;
    OpCategory category;
    int64_t count = 0;            ///< instances in the graph
    int64_t launches = 0;         ///< eager kernel launches (composites)
    double flops = 0;
    double activationBytes = 0;
    double paramBytes = 0;
    std::vector<Shape> exampleShapes;  ///< up to a few distinct inputs
};

struct WorkloadReport {
    std::string model;
    GraphStats stats;
    std::vector<OpKindSummary> byKind;  ///< descending by launches

    /** Summary for one kind, or nullptr if absent. */
    const OpKindSummary *find(OpKind k) const;
};

/** Build the workload report for a graph. */
WorkloadReport buildWorkloadReport(const Graph &g,
                                   size_t max_examples = 3);

/** Write as CSV: kind,category,count,launches,flops,bytes,example. */
void writeWorkloadCsv(const WorkloadReport &r, std::ostream &os);

/** Human-readable table. */
void printWorkloadReport(const WorkloadReport &r, std::ostream &os);

}  // namespace ngb

#endif  // NGB_PROFILER_WORKLOAD_REPORT_H
