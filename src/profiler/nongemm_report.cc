#include "profiler/nongemm_report.h"

#include <cstdio>
#include <set>

namespace ngb {

const CategoryVariants *
NonGemmReport::find(OpCategory c) const
{
    for (const CategoryVariants &v : categories)
        if (v.category == c)
            return &v;
    return nullptr;
}

NonGemmReport
buildNonGemmReport(const Graph &g)
{
    NonGemmReport r;
    r.model = g.name();
    std::map<OpCategory, CategoryVariants> acc;
    for (const Node &n : g.nodes()) {
        if (n.inputs.empty() || n.isGemm())
            continue;
        CategoryVariants &v = acc[n.category()];
        v.category = n.category();
        ++v.variants[n.kind];
    }
    for (auto &[cat, v] : acc)
        r.categories.push_back(std::move(v));
    return r;
}

DomainTrace
buildDomainTrace(const std::vector<std::pair<std::string, Graph>> &graphs)
{
    DomainTrace t;
    std::map<std::string, std::map<OpCategory, std::set<OpKind>>> kinds;
    for (const auto &[domain, g] : graphs) {
        for (const Node &n : g.nodes()) {
            if (n.inputs.empty() || n.isGemm())
                continue;
            kinds[domain][n.category()].insert(n.kind);
            ++t.instancesByDomain[domain];
        }
    }
    for (const auto &[domain, per_cat] : kinds)
        for (const auto &[cat, ks] : per_cat)
            t.variantsByDomain[domain][cat] =
                static_cast<int64_t>(ks.size());
    return t;
}

void
printNonGemmReport(const NonGemmReport &r, std::ostream &os)
{
    printNonGemmReport(r, {}, os);
}

void
printNonGemmReport(const NonGemmReport &r,
                   const std::map<OpCategory, double> &measuredUs,
                   std::ostream &os)
{
    double non_gemm_us = 0;
    for (const auto &[cat, us] : measuredUs)
        if (cat != OpCategory::Gemm)
            non_gemm_us += us;

    os << "Non-GEMM report: " << r.model << "\n";
    for (const CategoryVariants &v : r.categories) {
        os << "  " << opCategoryName(v.category) << ": "
           << v.variantCount() << " variant(s), " << v.instanceCount()
           << " instance(s)";
        auto it = measuredUs.find(v.category);
        if (it != measuredUs.end() && non_gemm_us > 0) {
            char buf[64];
            std::snprintf(buf, sizeof(buf),
                          ", measured %.1f us (%.1f%% of non-GEMM)",
                          it->second, 100.0 * it->second / non_gemm_us);
            os << buf;
        }
        os << "\n";
        for (const auto &[kind, count] : v.variants)
            os << "    " << opKindName(kind) << " x" << count << "\n";
    }
}

void
printDomainTrace(const DomainTrace &t, std::ostream &os)
{
    os << "Non-GEMM trace by task domain:\n";
    for (const auto &[domain, per_cat] : t.variantsByDomain) {
        os << "  " << domain << " ("
           << t.instancesByDomain.at(domain) << " non-GEMM ops):";
        for (const auto &[cat, n] : per_cat)
            os << " " << opCategoryName(cat) << "=" << n;
        os << "\n";
    }
}

}  // namespace ngb
