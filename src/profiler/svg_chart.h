#ifndef NGB_PROFILER_SVG_CHART_H
#define NGB_PROFILER_SVG_CHART_H

#include <ostream>
#include <string>
#include <vector>

#include "platform/cost_model.h"
#include "profiler/profile_report.h"

namespace ngb {

/**
 * Stacked-bar chart rendering of latency breakdowns, the SVG
 * counterpart of the paper's Figure 6/8/9 plots (the original
 * artifact emits PNG via matplotlib; this library emits
 * self-contained SVG with no dependencies).
 */
struct SvgChartOptions {
    std::string title;
    int barWidth = 46;
    int barGap = 14;
    int chartHeight = 280;
    bool showLegend = true;
    /** Normalize each bar to 100% (share view) vs absolute ms. */
    bool normalize = true;
};

/**
 * Render one stacked bar per report. Bar labels come from
 * "<model> b<batch>" unless @p labels provides overrides.
 */
void writeSvgChart(const std::vector<ProfileReport> &reports,
                   const SvgChartOptions &opts, std::ostream &os,
                   const std::vector<std::string> &labels = {});

/** Category fill color used by the chart (stable across charts). */
std::string svgCategoryColor(OpCategory c);

/**
 * Log-log roofline scatter of a priced plan: each kernel group is a
 * dot at (arithmetic intensity, achieved GFLOP/s), colored by
 * category, under the device's bandwidth slope and compute ceiling.
 * Shows at a glance why non-GEMM operators live against the memory
 * roof while GEMMs climb toward the compute ceiling.
 */
void writeRooflineSvg(const ExecutionPlan &plan,
                      const std::vector<GroupTiming> &timings,
                      const DeviceSpec &device, const std::string &title,
                      std::ostream &os);

}  // namespace ngb

#endif  // NGB_PROFILER_SVG_CHART_H
