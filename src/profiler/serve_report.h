#ifndef NGB_PROFILER_SERVE_REPORT_H
#define NGB_PROFILER_SERVE_REPORT_H

#include <ostream>
#include <vector>

#include "serve/serve_stats.h"

namespace ngb {

/**
 * Linear-interpolated quantile of @p values (q in [0, 1]). Returns 0
 * for an empty set. Exposed for the serving bench and tests.
 */
double percentile(std::vector<double> values, double q);

/**
 * Human-readable serving report: admission counters, throughput,
 * engine-cache hit rate, batch-size histogram, queue depth over time,
 * and the p50/p95/p99 tail-latency table split into queue vs execute
 * time — the serving-layer counterpart of printRuntimeReport.
 */
void printServeReport(const ServeStats &s, std::ostream &os);

/**
 * Machine-readable serving stats: totals, cache, latency percentiles,
 * batch histogram, and the per-request records (id, model, seed,
 * queue_us, exec_us, batch) so CI can diff runs numerically.
 */
void writeServeJson(const ServeStats &s, std::ostream &os);

}  // namespace ngb

#endif  // NGB_PROFILER_SERVE_REPORT_H
