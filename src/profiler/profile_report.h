#ifndef NGB_PROFILER_PROFILE_REPORT_H
#define NGB_PROFILER_PROFILE_REPORT_H

#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "deploy/fusion.h"
#include "obs/perf.h"
#include "platform/cost_model.h"
#include "platform/plan.h"
#include "quant/quant_mode.h"

namespace ngb {

/** Priced record of one executed kernel group. */
struct OpProfile {
    std::string label;
    OpCategory category = OpCategory::Misc;
    bool onGpu = false;
    bool fused = false;
    int nodeCount = 1;
    int kernelCount = 1;
    double us = 0;
    double flops = 0;
    double bytes = 0;
};

/**
 * The complete result of characterizing one (model, flow, platform,
 * batch) point: the paper's Performance / Workload / Non-GEMM reports
 * in one structure (Section III-C).
 */
struct ProfileReport {
    std::string model;
    std::string flow;
    std::string platformId;
    bool gpuEnabled = false;
    int64_t batch = 1;
    int64_t seqLen = 0;

    double totalUs = 0;
    double gemmUs = 0;
    double nonGemmUs = 0;
    std::map<OpCategory, double> usByCategory;
    std::map<OpCategory, int64_t> opsByCategory;

    /**
     * Cost-model latency of the dependency-critical path through the
     * plan (CostModel::criticalPathUs) — the floor a wavefront
     * scheduler of unbounded width could reach. 0 until priced.
     */
    double criticalPathUs = 0;

    /**
     * Summary of a *measured* execution through src/runtime, filled
     * by callers that actually ran the graph (threads == 0 means the
     * point was only modeled, not executed).
     */
    struct MeasuredRuntime {
        int threads = 0;
        int requests = 0;
        std::string backend = "reference";  ///< kernel backend measured
        std::string intraop = "off";        ///< intra-op mode measured
        int deepLevels = 0;  ///< levels the hybrid scheduler ran deep
        bool fused = false;  ///< graph was rewritten by applyFusion
        double wallUs = 0;           ///< fork-join wall clock
        double sumUs = 0;            ///< total kernel time
        double planUs = 0;           ///< schedule+arena+params, amortized
        size_t levels = 0;           ///< wavefront level count
        size_t maxWidth = 0;         ///< widest level
        int64_t arenaBytes = 0;      ///< planned peak activation arena
        int64_t totalTensorBytes = 0;  ///< no-reuse activation footprint

        // Measured memory behaviour (executable memory planning).
        bool arena = false;             ///< executed with pooled arenas
        int64_t measuredPeakBytes = 0;  ///< max bound arena extent
        int64_t heapAllocs = 0;         ///< Storage heap allocs in run
        int64_t scratchPeakBytes = 0;   ///< kernel-temporary high water
        int64_t scratchWorkerSumBytes = 0;  ///< sum of worker high waters

        // Executable-quantization census + int8-vs-float kernel-time
        // attribution (quant.quantized false on float graphs).
        quant::QuantExecStats quant;

        // Hardware-counter aggregate + roofline inputs (--perf runs;
        // perf.enabled false otherwise).
        obs::PerfCounterStats perf;
        double modelFlops = 0;  ///< cost-model FLOPs of one request
        double modelBytes = 0;  ///< cost-model bytes of one request
    };
    MeasuredRuntime runtime;

    EnergyBreakdown energy;
    GraphStats graphStats;
    FusionStats fusionStats;

    std::vector<OpProfile> ops;

    double totalMs() const { return totalUs * 1e-3; }
    double gemmPct() const
    {
        return totalUs > 0 ? 100.0 * gemmUs / totalUs : 0;
    }
    double nonGemmPct() const
    {
        return totalUs > 0 ? 100.0 * nonGemmUs / totalUs : 0;
    }
    double categoryPct(OpCategory c) const
    {
        auto it = usByCategory.find(c);
        return it != usByCategory.end() && totalUs > 0
                   ? 100.0 * it->second / totalUs
                   : 0;
    }

    /** The most time-consuming non-GEMM operator group (Table IV). */
    OpCategory dominantNonGemmCategory() const;

    /** The @p n slowest kernel groups, descending. */
    std::vector<OpProfile> topOps(size_t n) const;
};

/**
 * Aggregate a priced plan into a report. @p timings must come from
 * CostModel::priceAll on the same plan.
 */
ProfileReport aggregateProfile(const ExecutionPlan &plan,
                               const std::vector<GroupTiming> &timings,
                               const PlatformSpec &platform);

/** Write one row per kernel group as CSV (label,category,us,...). */
void writeOpCsv(const ProfileReport &r, std::ostream &os);

/** Write the category breakdown as CSV (category,us,percent). */
void writeCategoryCsv(const ProfileReport &r, std::ostream &os);

/** Render a human-readable breakdown table. */
void printReport(const ProfileReport &r, std::ostream &os);

/**
 * Serialize the whole report as JSON (metadata, totals, category
 * breakdown, fusion stats, energy, and per-op records) for downstream
 * tooling — the machine-readable counterpart of the artifact's CSVs.
 */
void writeJsonReport(const ProfileReport &r, std::ostream &os);

}  // namespace ngb

#endif  // NGB_PROFILER_PROFILE_REPORT_H
