#include "profiler/serve_report.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <string>

#include "obs/json_util.h"
#include "obs/metrics.h"

namespace ngb {

namespace {

struct LatencySplit {
    std::vector<double> total, queue, exec;  ///< each sorted ascending
};

/** Quantile of an already-sorted vector (no per-call copy/sort). */
double
percentileSorted(const std::vector<double> &values, double q)
{
    if (values.empty())
        return 0;
    q = std::min(std::max(q, 0.0), 1.0);
    double pos = q * static_cast<double>(values.size() - 1);
    size_t lo = static_cast<size_t>(pos);
    size_t hi = std::min(lo + 1, values.size() - 1);
    double frac = pos - static_cast<double>(lo);
    return values[lo] + (values[hi] - values[lo]) * frac;
}

LatencySplit
collectLatencies(const ServeStats &s)
{
    LatencySplit l;
    l.total.reserve(s.requests.size());
    l.queue.reserve(s.requests.size());
    l.exec.reserve(s.requests.size());
    for (const RequestRecord &r : s.requests) {
        l.total.push_back(r.totalUs());
        l.queue.push_back(r.queueUs);
        l.exec.push_back(r.execUs);
    }
    // Sort once here; every percentile below indexes the sorted data.
    std::sort(l.total.begin(), l.total.end());
    std::sort(l.queue.begin(), l.queue.end());
    std::sort(l.exec.begin(), l.exec.end());
    return l;
}

}  // namespace

double
percentile(std::vector<double> values, double q)
{
    std::sort(values.begin(), values.end());
    return percentileSorted(values, q);
}

void
printServeReport(const ServeStats &s, std::ostream &os)
{
    auto ms = [](double us) { return us * 1e-3; };

    os << "serving report: " << s.completed << " completed / "
       << s.offered << " offered in " << std::fixed
       << std::setprecision(2) << s.durationUs * 1e-6 << " s  ("
       << std::setprecision(1) << s.throughputRps() << " req/s)\n";
    os << "  admission: " << s.admitted << " admitted, " << s.rejected
       << " rejected\n";
    os << "  engine cache: " << s.cacheMisses << " engines built in "
       << std::setprecision(1) << ms(s.engineBuildUs) << " ms, "
       << s.cacheHits << " hits / " << s.cacheMisses
       << " misses (hit rate " << std::setprecision(1)
       << 100.0 * s.cacheHitRate() << "%)\n";

    os << "  memory: " << (s.arena ? "arena" : "heap") << " execution, "
       << s.tensorAllocs << " tensor allocs ("
       << s.tensorAllocBytes / 1024 << " KiB) over the session, "
       << std::setprecision(2) << s.allocsPerRequest()
       << " allocs/request";
    if (s.arena)
        os << "; " << s.arenaBlocks << " pooled arena blocks ("
           << s.arenaBlockBytes / 1024 << " KiB)";
    os << "\n";

    if (s.quant.quantized)
        os << "  quant: mode " << s.quantMode << ", "
           << s.quant.int8Gemms << " int8 GEMMs and " << s.quant.qdqOps
           << " Q/DQ ops across engines, weights "
           << s.quant.packedWeightBytes / 1024 << " KiB int8 vs "
           << s.quant.floatWeightBytes / 1024 << " KiB f32 ("
           << std::setprecision(2) << s.quant.weightCompression()
           << "x smaller)\n";

    if (s.perf.enabled) {
        if (s.perf.measured)
            os << "  hw counters: IPC " << std::setprecision(2)
               << s.perf.total.ipc() << ", LLC MPKI "
               << s.perf.total.missesPerKiloInstr() << ", "
               << std::setprecision(0) << s.cyclesPerRequest() * 1e-6
               << " Mcycles/request over " << s.perf.total.scopes
               << " kernel scopes\n";
        else
            os << "  hw counters: unavailable (" << s.perf.status
               << "), " << s.perf.total.scopes
               << " kernel scopes clocked\n";
    }

    int64_t timeout_closed = 0;
    for (const BatchRecord &b : s.batches)
        timeout_closed += b.closedByTimeout;
    os << "  batches: " << s.batches.size() << " dispatched, mean size "
       << std::setprecision(2) << s.meanBatchSize() << ", "
       << timeout_closed << " closed by deadline\n";
    if (!s.batchSizeHist.empty()) {
        int64_t most = 0;
        for (const auto &[size, count] : s.batchSizeHist)
            most = std::max(most, count);
        os << "    size histogram:\n";
        for (const auto &[size, count] : s.batchSizeHist) {
            int bar = most > 0 ? static_cast<int>(
                                     32.0 * static_cast<double>(count) /
                                     static_cast<double>(most))
                               : 0;
            os << "      " << std::setw(3) << size << ": " << std::setw(6)
               << count << " |" << std::string(static_cast<size_t>(bar), '#')
               << "\n";
        }
    }

    if (!s.depthSamples.empty()) {
        // Queue depth over time, folded into up to 12 buckets.
        size_t max_depth = 0;
        double sum_depth = 0;
        for (const QueueDepthSample &d : s.depthSamples) {
            max_depth = std::max(max_depth, d.depth);
            sum_depth += static_cast<double>(d.depth);
        }
        os << "  queue depth: mean " << std::setprecision(1)
           << sum_depth / static_cast<double>(s.depthSamples.size())
           << ", max " << max_depth << " ("
           << s.depthSamples.size() << " samples";
        if (s.samplerCadenceUs > 0)
            os << ", sampler cadence "
               << static_cast<double>(s.samplerCadenceUs) * 1e-3
               << " ms";
        os << ")\n";
        const size_t buckets =
            std::min<size_t>(12, s.depthSamples.size());
        double span = s.depthSamples.back().tUs;
        if (buckets > 1 && span > 0 && max_depth > 0) {
            std::vector<double> sum(buckets, 0);
            std::vector<int64_t> cnt(buckets, 0);
            for (const QueueDepthSample &d : s.depthSamples) {
                size_t b = std::min(
                    buckets - 1,
                    static_cast<size_t>(static_cast<double>(buckets) *
                                        d.tUs / span));
                sum[b] += static_cast<double>(d.depth);
                ++cnt[b];
            }
            os << "    over time:\n";
            for (size_t b = 0; b < buckets; ++b) {
                double avg = cnt[b] > 0
                                 ? sum[b] / static_cast<double>(cnt[b])
                                 : 0;
                int bar = static_cast<int>(
                    32.0 * avg / static_cast<double>(max_depth));
                os << "      t=" << std::setw(5) << std::setprecision(2)
                   << (span * static_cast<double>(b) /
                       static_cast<double>(buckets)) *
                          1e-6
                   << "s  " << std::setw(6) << std::setprecision(1) << avg
                   << " |"
                   << std::string(static_cast<size_t>(bar), '#') << "\n";
            }
        }
    }

    LatencySplit l = collectLatencies(s);
    os << "  latency (ms):        p50      p95      p99      max\n";
    auto row = [&](const char *label, const std::vector<double> &v) {
        double mx = v.empty() ? 0 : v.back();
        os << "    " << std::left << std::setw(9) << label << std::right
           << std::setw(9) << std::setprecision(2)
           << ms(percentileSorted(v, 0.50))
           << std::setw(9) << ms(percentileSorted(v, 0.95))
           << std::setw(9) << ms(percentileSorted(v, 0.99))
           << std::setw(9) << ms(mx) << "\n";
    };
    row("total", l.total);
    row("queue", l.queue);
    row("execute", l.exec);

    if (!s.completedByModel.empty()) {
        os << "  per tenant:";
        for (const auto &[model, count] : s.completedByModel)
            os << "  " << model << "=" << count;
        os << "\n";
    }
}

void
writeServeJson(const ServeStats &s, std::ostream &os)
{
    LatencySplit l = collectLatencies(s);
    auto pct = [&](const std::vector<double> &v) {
        return std::string("{\"p50\": ") +
               std::to_string(percentileSorted(v, 0.50)) + ", \"p95\": " +
               std::to_string(percentileSorted(v, 0.95)) + ", \"p99\": " +
               std::to_string(percentileSorted(v, 0.99)) + "}";
    };

    os << "{\n";
    os << "  \"duration_us\": " << s.durationUs << ",\n";
    os << "  \"offered\": " << s.offered << ",\n";
    os << "  \"admitted\": " << s.admitted << ",\n";
    os << "  \"rejected\": " << s.rejected << ",\n";
    os << "  \"completed\": " << s.completed << ",\n";
    os << "  \"throughput_rps\": " << s.throughputRps() << ",\n";
    os << "  \"cache\": {\"hits\": " << s.cacheHits << ", \"misses\": "
       << s.cacheMisses << ", \"hit_rate\": " << s.cacheHitRate()
       << ", \"build_us\": " << s.engineBuildUs << "},\n";
    os << "  \"memory\": {\"arena\": " << (s.arena ? "true" : "false")
       << ", \"tensor_allocs\": " << s.tensorAllocs
       << ", \"tensor_alloc_bytes\": " << s.tensorAllocBytes
       << ", \"allocs_per_request\": " << s.allocsPerRequest()
       << ", \"arena_blocks\": " << s.arenaBlocks
       << ", \"arena_block_bytes\": " << s.arenaBlockBytes << "},\n";
    os << "  \"quant\": {\"mode\": " << obs::jsonQuote(s.quantMode)
       << ", \"quantized\": " << (s.quant.quantized ? "true" : "false")
       << ", \"int8_gemms\": " << s.quant.int8Gemms
       << ", \"qdq_ops\": " << s.quant.qdqOps
       << ", \"packed_weight_bytes\": " << s.quant.packedWeightBytes
       << ", \"float_weight_bytes\": " << s.quant.floatWeightBytes
       << ", \"weight_compression\": " << s.quant.weightCompression()
       << "},\n";
    if (s.perf.enabled) {
        const obs::PerfCounterStats &pf = s.perf;
        os << "  \"perf\": {\"measured\": "
           << (pf.measured ? "true" : "false") << ", \"hw_counters\": "
           << pf.hwCounters << ", \"status\": "
           << obs::jsonQuote(pf.status)
           << ", \"cycles\": " << pf.total.cycles
           << ", \"instructions\": " << pf.total.instructions
           << ", \"llc_misses\": " << pf.total.cacheMisses
           << ", \"branch_misses\": " << pf.total.branchMisses
           << ", \"kernel_scopes\": " << pf.total.scopes
           << ", \"ipc\": " << pf.total.ipc()
           << ", \"llc_mpki\": " << pf.total.missesPerKiloInstr()
           << ", \"cycles_per_request\": " << s.cyclesPerRequest()
           << "},\n";
    }
    os << "  \"batches\": " << s.batches.size() << ",\n";
    os << "  \"mean_batch_size\": " << s.meanBatchSize() << ",\n";
    os << "  \"batch_size_hist\": {";
    bool first = true;
    for (const auto &[size, count] : s.batchSizeHist) {
        if (!first)
            os << ", ";
        first = false;
        os << "\"" << size << "\": " << count;
    }
    os << "},\n";
    os << "  \"latency_us\": {\"total\": " << pct(l.total)
       << ", \"queue\": " << pct(l.queue) << ", \"execute\": "
       << pct(l.exec) << "},\n";

    // The metrics registry's log-bucketed estimates next to the exact
    // sorted-vector percentiles above: the mid-run-readable numbers a
    // scraper saw, reported with the post-run truth so the bounded
    // bucket error is visible in one document. Only meaningful when
    // metrics recorded this session.
    if (obs::metricsEnabled()) {
        auto &reg = obs::MetricsRegistry::instance();
        auto hist = [&](const char *name) {
            obs::Histogram::Snapshot h =
                reg.histogram(name).snapshot();
            obs::JsonDict d;
            d.add("count", h.count);
            d.add("p50", h.percentile(0.50));
            d.add("p95", h.percentile(0.95));
            d.add("p99", h.percentile(0.99));
            return d.str();
        };
        os << "  \"latency_us_hist\": {\"total\": "
           << hist("serve.latency_us") << ", \"queue\": "
           << hist("serve.queue_us") << ", \"execute\": "
           << hist("serve.exec_us") << "},\n";
    }

    os << "  \"sampler_cadence_us\": " << s.samplerCadenceUs << ",\n";
    os << "  \"depth_samples\": [";
    first = true;
    for (const QueueDepthSample &d : s.depthSamples) {
        os << (first ? "" : ", ") << "{\"t_us\": "
           << obs::jsonNumber(d.tUs) << ", \"depth\": " << d.depth
           << "}";
        first = false;
    }
    os << "],\n";

    os << "  \"completed_by_model\": {";
    first = true;
    for (const auto &[model, count] : s.completedByModel) {
        if (!first)
            os << ", ";
        first = false;
        os << obs::jsonQuote(model) << ": " << count;
    }
    os << "},\n";
    os << "  \"requests\": [\n";
    for (size_t i = 0; i < s.requests.size(); ++i) {
        const RequestRecord &r = s.requests[i];
        os << "    {\"id\": " << r.id << ", \"model\": "
           << obs::jsonQuote(r.model) << ", \"seed\": " << r.seed
           << ", \"queue_us\": " << r.queueUs << ", \"exec_us\": "
           << r.execUs << ", \"batch\": " << r.batchSize << "}"
           << (i + 1 < s.requests.size() ? ",\n" : "\n");
    }
    os << "  ]\n}\n";
}

}  // namespace ngb
