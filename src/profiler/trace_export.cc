#include "profiler/trace_export.h"

#include <iomanip>
#include <string>

namespace ngb {

namespace {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

}  // namespace

void
writeChromeTrace(const ExecutionPlan &plan,
                 const std::vector<GroupTiming> &timings, std::ostream &os)
{
    os << "{\"traceEvents\":[\n";
    double host_t = 0;
    double dev_t = 0;
    bool first = true;
    for (size_t i = 0; i < plan.groups.size(); ++i) {
        const KernelGroup &g = plan.groups[i];
        const GroupTiming &t = timings[i];

        auto emit = [&](const std::string &tid, double start, double dur) {
            if (dur <= 0)
                return;
            if (!first)
                os << ",\n";
            first = false;
            os << "  {\"name\":\"" << jsonEscape(g.label)
               << "\",\"cat\":\"" << opCategoryName(g.category)
               << "\",\"ph\":\"X\",\"pid\":0,\"tid\":\"" << tid
               << "\",\"ts\":" << std::fixed << std::setprecision(3)
               << start << ",\"dur\":" << dur << ",\"args\":{"
               << "\"kernels\":" << g.kernelCount << ",\"fused\":"
               << (g.fused ? "true" : "false") << ",\"flops\":"
               << std::setprecision(0) << g.flops << ",\"bytes\":"
               << g.bytesIn + g.bytesOut + g.bytesParam << "}}";
        };

        // Host dispatch precedes the device kernel; the device track
        // starts no earlier than its dispatch finished.
        emit("host", host_t, t.hostUs);
        host_t += t.hostUs;
        double dev_start = std::max(dev_t, host_t);
        emit(g.onGpu ? "gpu" : "cpu", dev_start,
             t.deviceUs + t.transferUs);
        dev_t = dev_start + t.deviceUs + t.transferUs;
    }
    os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

}  // namespace ngb
