#include "profiler/trace_export.h"

#include <algorithm>

#include "obs/chrome_trace.h"

namespace ngb {

void
writeChromeTrace(const ExecutionPlan &plan,
                 const std::vector<GroupTiming> &timings, std::ostream &os)
{
    obs::ChromeTraceWriter w(os);
    double host_t = 0;
    double dev_t = 0;
    for (size_t i = 0; i < plan.groups.size(); ++i) {
        const KernelGroup &g = plan.groups[i];
        const GroupTiming &t = timings[i];

        auto emit = [&](const char *tid, double start, double dur) {
            if (dur <= 0)
                return;
            obs::JsonDict args;
            args.add("kernels", g.kernelCount);
            args.add("fused", g.fused);
            args.add("flops", g.flops, 0);
            args.add("bytes", g.bytesIn + g.bytesOut + g.bytesParam);
            w.completeEvent(g.label, opCategoryName(g.category), 0, tid,
                            start, dur, args);
        };

        // Host dispatch precedes the device kernel; the device track
        // starts no earlier than its dispatch finished.
        emit("host", host_t, t.hostUs);
        host_t += t.hostUs;
        double dev_start = std::max(dev_t, host_t);
        emit(g.onGpu ? "gpu" : "cpu", dev_start,
             t.deviceUs + t.transferUs);
        dev_t = dev_start + t.deviceUs + t.transferUs;
    }
    w.finish();
}

}  // namespace ngb
