#include "profiler/profile_report.h"

#include <algorithm>
#include <iomanip>

#include "obs/json_util.h"

namespace ngb {

OpCategory
ProfileReport::dominantNonGemmCategory() const
{
    OpCategory best = OpCategory::Misc;
    double best_us = -1;
    for (const auto &[cat, us] : usByCategory) {
        if (cat == OpCategory::Gemm)
            continue;
        if (us > best_us) {
            best_us = us;
            best = cat;
        }
    }
    return best;
}

std::vector<OpProfile>
ProfileReport::topOps(size_t n) const
{
    std::vector<OpProfile> sorted = ops;
    std::sort(sorted.begin(), sorted.end(),
              [](const OpProfile &a, const OpProfile &b) {
                  return a.us > b.us;
              });
    if (sorted.size() > n)
        sorted.resize(n);
    return sorted;
}

ProfileReport
aggregateProfile(const ExecutionPlan &plan,
                 const std::vector<GroupTiming> &timings,
                 const PlatformSpec &platform)
{
    ProfileReport r;
    r.flow = plan.flowName;
    r.platformId = platform.id;
    r.gpuEnabled = plan.gpuEnabled;
    if (plan.graph) {
        r.model = plan.graph->name();
        r.graphStats = plan.graph->stats();
    }

    for (size_t i = 0; i < plan.groups.size(); ++i) {
        const KernelGroup &g = plan.groups[i];
        const GroupTiming &t = timings[i];
        double us = t.totalUs();

        OpProfile op;
        op.label = g.label;
        op.category = g.category;
        op.onGpu = g.onGpu;
        op.fused = g.fused;
        op.nodeCount = static_cast<int>(g.nodeIds.size());
        op.kernelCount = g.kernelCount;
        op.us = us;
        op.flops = g.flops;
        op.bytes = g.bytesIn + g.bytesOut + g.bytesParam;
        r.ops.push_back(std::move(op));

        r.totalUs += us;
        r.usByCategory[g.category] += us;
        r.opsByCategory[g.category] += 1;
        if (g.category == OpCategory::Gemm)
            r.gemmUs += us;
        else
            r.nonGemmUs += us;
    }
    r.energy = energyOf(plan, timings, platform);
    return r;
}

void
writeOpCsv(const ProfileReport &r, std::ostream &os)
{
    os << "label,category,on_gpu,fused,nodes,kernels,us,flops,bytes\n";
    for (const OpProfile &op : r.ops) {
        os << op.label << ',' << opCategoryName(op.category) << ','
           << (op.onGpu ? 1 : 0) << ',' << (op.fused ? 1 : 0) << ','
           << op.nodeCount << ',' << op.kernelCount << ',' << op.us << ','
           << op.flops << ',' << op.bytes << '\n';
    }
}

void
writeCategoryCsv(const ProfileReport &r, std::ostream &os)
{
    os << "category,us,percent,ops\n";
    for (const auto &[cat, us] : r.usByCategory) {
        os << opCategoryName(cat) << ',' << us << ','
           << r.categoryPct(cat) << ',' << r.opsByCategory.at(cat) << '\n';
    }
}

void
printReport(const ProfileReport &r, std::ostream &os)
{
    os << "model=" << r.model << " flow=" << r.flow << " platform="
       << r.platformId << (r.gpuEnabled ? " (CPU+GPU)" : " (CPU only)")
       << " batch=" << r.batch << "\n";
    os << "  total latency: " << std::fixed << std::setprecision(2)
       << r.totalMs() << " ms  |  GEMM " << std::setprecision(1)
       << r.gemmPct() << "%  non-GEMM " << r.nonGemmPct() << "%\n";
    for (const auto &[cat, us] : r.usByCategory) {
        os << "    " << std::left << std::setw(14) << opCategoryName(cat)
           << std::right << std::setw(10) << std::setprecision(2) << us
           << " us  (" << std::setw(5) << std::setprecision(1)
           << r.categoryPct(cat) << "%)  ops=" << r.opsByCategory.at(cat)
           << "\n";
    }
    os << "  GPU energy: " << std::setprecision(3) << r.energy.gpuJoules
       << " J, CPU energy: " << r.energy.cpuJoules << " J\n";
    if (r.criticalPathUs > 0) {
        os << "  critical path: " << std::setprecision(2)
           << r.criticalPathUs * 1e-3 << " ms";
        // With asyncDispatch, totalUs is already an overlapped wall
        // clock and the serial-attribution bound is meaningless.
        if (r.totalUs >= r.criticalPathUs)
            os << "  (parallel speedup bound " << std::setprecision(2)
               << r.totalUs / r.criticalPathUs << "x)";
        os << "\n";
    }
    if (r.runtime.threads > 0) {
        const auto &rt = r.runtime;
        os << "  runtime (measured): backend=" << rt.backend
           << (rt.fused ? " (fused)" : "") << " threads=" << rt.threads
           << " intraop=" << rt.intraop
           << (rt.deepLevels > 0
                   ? " (deep levels " + std::to_string(rt.deepLevels) +
                         ")"
                   : "")
           << " requests=" << rt.requests << "  wall "
           << std::setprecision(2) << rt.wallUs * 1e-3 << " ms, kernels "
           << rt.sumUs * 1e-3 << " ms, concurrency "
           << (rt.wallUs > 0 ? rt.sumUs / rt.wallUs : 1.0) << "x\n";
        os << "    levels=" << rt.levels << " max_width=" << rt.maxWidth
           << "  arena " << rt.arenaBytes / 1024 << " KiB vs no-reuse "
           << rt.totalTensorBytes / 1024 << " KiB\n";
        os << "    memory (measured): " << (rt.arena ? "arena" : "heap")
           << " execution, peak bound " << rt.measuredPeakBytes / 1024
           << " KiB, " << rt.heapAllocs << " heap tensor allocs, scratch "
           << rt.scratchPeakBytes / 1024 << " KiB (workers sum "
           << rt.scratchWorkerSumBytes / 1024 << " KiB)\n";
        if (rt.quant.quantized)
            os << "    quant (measured): " << rt.quant.int8Gemms
               << " int8 GEMMs " << std::setprecision(1)
               << rt.quant.int8GemmUs << " us, Q/DQ " << rt.quant.qdqUs
               << " us, weights " << std::setprecision(2)
               << rt.quant.weightCompression() << "x smaller\n";
        if (rt.perf.enabled) {
            if (rt.perf.measured)
                os << "    hw counters: IPC " << std::setprecision(2)
                   << rt.perf.total.ipc() << ", LLC MPKI "
                   << rt.perf.total.missesPerKiloInstr() << " over "
                   << rt.perf.total.scopes << " kernel scopes\n";
            else
                os << "    hw counters: unavailable (" << rt.perf.status
                   << ")\n";
        }
    }
}

void
writeJsonReport(const ProfileReport &r, std::ostream &os)
{
    // The shared escaper handles control characters too, which the
    // old inline lambda silently passed through.
    auto esc = [](const std::string &in) { return obs::jsonEscape(in); };
    os << "{\n";
    os << "  \"model\": \"" << esc(r.model) << "\",\n";
    os << "  \"flow\": \"" << esc(r.flow) << "\",\n";
    os << "  \"platform\": \"" << esc(r.platformId) << "\",\n";
    os << "  \"gpu\": " << (r.gpuEnabled ? "true" : "false") << ",\n";
    os << "  \"batch\": " << r.batch << ",\n";
    os << "  \"seq_len\": " << r.seqLen << ",\n";
    os << "  \"total_us\": " << r.totalUs << ",\n";
    os << "  \"gemm_us\": " << r.gemmUs << ",\n";
    os << "  \"non_gemm_us\": " << r.nonGemmUs << ",\n";
    os << "  \"critical_path_us\": " << r.criticalPathUs << ",\n";
    if (r.runtime.threads > 0) {
        os << "  \"runtime\": {\"backend\": \""
           << esc(r.runtime.backend) << "\", \"fused\": "
           << (r.runtime.fused ? "true" : "false") << ", \"threads\": "
           << r.runtime.threads
           << ", \"intraop\": \"" << esc(r.runtime.intraop) << "\""
           << ", \"deep_levels\": " << r.runtime.deepLevels
           << ", \"requests\": " << r.runtime.requests
           << ", \"wall_us\": " << r.runtime.wallUs
           << ", \"kernel_us\": " << r.runtime.sumUs
           << ", \"plan_us\": " << r.runtime.planUs
           << ", \"levels\": " << r.runtime.levels
           << ", \"max_width\": " << r.runtime.maxWidth
           << ", \"arena_bytes\": " << r.runtime.arenaBytes
           << ", \"total_tensor_bytes\": " << r.runtime.totalTensorBytes
           << ", \"arena\": " << (r.runtime.arena ? "true" : "false")
           << ", \"measured_peak_bytes\": " << r.runtime.measuredPeakBytes
           << ", \"heap_allocs\": " << r.runtime.heapAllocs
           << ", \"scratch_peak_bytes\": " << r.runtime.scratchPeakBytes
           << ", \"scratch_worker_sum_bytes\": "
           << r.runtime.scratchWorkerSumBytes
           << "},\n";
    }
    if (r.runtime.quant.quantized) {
        const quant::QuantExecStats &q = r.runtime.quant;
        os << "  \"quant\": {\"int8_gemms\": " << q.int8Gemms
           << ", \"qdq_ops\": " << q.qdqOps
           << ", \"packed_weight_bytes\": " << q.packedWeightBytes
           << ", \"float_weight_bytes\": " << q.floatWeightBytes
           << ", \"weight_compression\": " << q.weightCompression()
           << ", \"int8_gemm_us\": " << q.int8GemmUs
           << ", \"float_gemm_us\": " << q.floatGemmUs
           << ", \"qdq_us\": " << q.qdqUs << "},\n";
    }
    if (r.runtime.perf.enabled) {
        const obs::PerfCounterStats &pf = r.runtime.perf;
        double wall_s = r.runtime.wallUs * 1e-6;
        double flops_per_s =
            wall_s > 0
                ? r.runtime.modelFlops * r.runtime.requests / wall_s
                : 0;
        double bw_proxy =
            wall_s > 0 ? pf.total.bytesMovedEstimate() / wall_s : 0;
        os << "  \"perf\": {\"measured\": "
           << (pf.measured ? "true" : "false") << ", \"hw_counters\": "
           << pf.hwCounters << ", \"status\": \"" << esc(pf.status)
           << "\", \"cycles\": " << pf.total.cycles
           << ", \"instructions\": " << pf.total.instructions
           << ", \"llc_misses\": " << pf.total.cacheMisses
           << ", \"branch_misses\": " << pf.total.branchMisses
           << ", \"kernel_scopes\": " << pf.total.scopes
           << ", \"ipc\": " << pf.total.ipc()
           << ", \"llc_mpki\": " << pf.total.missesPerKiloInstr()
           << ", \"model_flops\": " << r.runtime.modelFlops
           << ", \"model_bytes\": " << r.runtime.modelBytes
           << ", \"flops_per_sec\": " << flops_per_s
           << ", \"bandwidth_proxy_bps\": " << bw_proxy
           << ", \"categories\": {";
        bool pfirst = true;
        for (size_t c = 0; c < obs::kPerfCategories; ++c) {
            const auto &b = pf.byCategory[c];
            if (b.scopes == 0)
                continue;
            if (!pfirst)
                os << ", ";
            pfirst = false;
            os << "\"" << opCategoryName(static_cast<OpCategory>(c))
               << "\": {\"cycles\": " << b.cycles << ", \"instructions\": "
               << b.instructions << ", \"llc_misses\": " << b.cacheMisses
               << ", \"branch_misses\": " << b.branchMisses
               << ", \"scopes\": " << b.scopes << ", \"ipc\": " << b.ipc()
               << ", \"llc_mpki\": " << b.missesPerKiloInstr() << "}";
        }
        os << "}},\n";
    }
    os << "  \"energy_gpu_j\": " << r.energy.gpuJoules << ",\n";
    os << "  \"energy_cpu_j\": " << r.energy.cpuJoules << ",\n";
    os << "  \"fusion\": {\"total_non_gemm\": "
       << r.fusionStats.totalNonGemm << ", \"fused_non_gemm\": "
       << r.fusionStats.fusedNonGemm << ", \"fused_with_gemm\": "
       << r.fusionStats.fusedWithGemm << "},\n";
    os << "  \"categories\": {";
    bool first = true;
    for (const auto &[cat, us] : r.usByCategory) {
        if (!first)
            os << ", ";
        first = false;
        os << "\"" << opCategoryName(cat) << "\": " << us;
    }
    os << "},\n";
    os << "  \"ops\": [\n";
    for (size_t i = 0; i < r.ops.size(); ++i) {
        const OpProfile &op = r.ops[i];
        os << "    {\"label\": \"" << esc(op.label)
           << "\", \"category\": \"" << opCategoryName(op.category)
           << "\", \"us\": " << op.us << ", \"kernels\": "
           << op.kernelCount << ", \"fused\": "
           << (op.fused ? "true" : "false") << "}";
        os << (i + 1 < r.ops.size() ? ",\n" : "\n");
    }
    os << "  ]\n}\n";
}

}  // namespace ngb
