#ifndef NGB_PROFILER_TRACE_EXPORT_H
#define NGB_PROFILER_TRACE_EXPORT_H

#include <ostream>

#include "platform/cost_model.h"
#include "platform/plan.h"

namespace ngb {

/**
 * Export a priced execution plan as a Chrome trace (the JSON format
 * chrome://tracing and Perfetto load), mirroring the timeline view the
 * PyTorch Profiler produces for the paper's measurements.
 *
 * Two tracks are emitted: host-side dispatch (pid 0 / tid "host") and
 * device kernels (tid "gpu" or "cpu"), laid out back to back in plan
 * order. Each event carries the operator category, kernel count, and
 * FLOP/byte counters as args.
 */
void writeChromeTrace(const ExecutionPlan &plan,
                      const std::vector<GroupTiming> &timings,
                      std::ostream &os);

}  // namespace ngb

#endif  // NGB_PROFILER_TRACE_EXPORT_H
