#include <gtest/gtest.h>

#include <cmath>

#include "ops/kernels.h"

namespace ngb {
namespace {

namespace kn = kernels;

/** Mean / variance of one logical row of the last dimension. */
std::pair<float, float>
rowStats(const Tensor &t, int64_t row)
{
    int64_t d = t.shape().dim(-1);
    float mean = 0;
    for (int64_t j = 0; j < d; ++j)
        mean += t.flatAt(row * d + j);
    mean /= static_cast<float>(d);
    float var = 0;
    for (int64_t j = 0; j < d; ++j) {
        float c = t.flatAt(row * d + j) - mean;
        var += c * c;
    }
    return {mean, var / static_cast<float>(d)};
}

TEST(LayerNormTest, OutputRowsAreStandardized)
{
    Tensor x = Tensor::randn(Shape{4, 32}, 21, 3.0f);
    Tensor gamma = Tensor::full(Shape{32}, 1.0f);
    Tensor beta = Tensor::zeros(Shape{32});
    Tensor y = kn::layerNorm(x, gamma, beta, 1e-5f);
    for (int64_t r = 0; r < 4; ++r) {
        auto [mean, var] = rowStats(y, r);
        EXPECT_NEAR(mean, 0.0f, 1e-4f);
        EXPECT_NEAR(var, 1.0f, 1e-2f);
    }
}

TEST(LayerNormTest, AffineParametersApplied)
{
    Tensor x = Tensor::randn(Shape{2, 8}, 22);
    Tensor gamma = Tensor::full(Shape{8}, 2.0f);
    Tensor beta = Tensor::full(Shape{8}, 5.0f);
    Tensor y = kn::layerNorm(x, gamma, beta, 1e-5f);
    for (int64_t r = 0; r < 2; ++r) {
        auto [mean, var] = rowStats(y, r);
        EXPECT_NEAR(mean, 5.0f, 1e-3f);
        EXPECT_NEAR(var, 4.0f, 5e-2f);
    }
}

TEST(LayerNormTest, InvariantToInputShift)
{
    Tensor x = Tensor::randn(Shape{1, 16}, 23);
    Tensor shifted = kn::addScalar(x, 100.0f);
    Tensor g = Tensor::full(Shape{16}, 1.0f);
    Tensor z = Tensor::zeros(Shape{16});
    Tensor y0 = kn::layerNorm(x, g, z, 1e-5f);
    Tensor y1 = kn::layerNorm(shifted, g, z, 1e-5f);
    for (int64_t i = 0; i < 16; ++i)
        EXPECT_NEAR(y0.flatAt(i), y1.flatAt(i), 2e-3f);
}

TEST(RmsNormTest, UnitRmsOutput)
{
    Tensor x = Tensor::randn(Shape{3, 64}, 24, 2.0f);
    Tensor gamma = Tensor::full(Shape{64}, 1.0f);
    Tensor y = kn::rmsNorm(x, gamma, 1e-6f);
    for (int64_t r = 0; r < 3; ++r) {
        float ms = 0;
        for (int64_t j = 0; j < 64; ++j) {
            float v = y.flatAt(r * 64 + j);
            ms += v * v;
        }
        EXPECT_NEAR(ms / 64.0f, 1.0f, 1e-3f);
    }
}

TEST(RmsNormTest, NoMeanSubtraction)
{
    // Unlike LayerNorm, a constant input maps to a constant +-1 vector,
    // not zero.
    Tensor x = Tensor::full(Shape{1, 8}, 3.0f);
    Tensor gamma = Tensor::full(Shape{8}, 1.0f);
    Tensor y = kn::rmsNorm(x, gamma, 1e-6f);
    EXPECT_NEAR(y.flatAt(0), 1.0f, 1e-4f);
}

TEST(BatchNormTest, FoldedScaleShift)
{
    Tensor x = Tensor::randn(Shape{2, 3, 4, 4}, 25);
    Tensor gamma = Tensor::full(Shape{3}, 2.0f);
    Tensor beta = Tensor::full(Shape{3}, 1.0f);
    Tensor mean = Tensor::full(Shape{3}, 0.5f);
    Tensor var = Tensor::full(Shape{3}, 4.0f);
    Tensor y = kn::batchNorm2d(x, gamma, beta, mean, var, 0.0f);
    // y = (x - 0.5)/2 * 2 + 1 = x + 0.5
    for (int64_t i = 0; i < x.numel(); ++i)
        EXPECT_NEAR(y.flatAt(i), x.flatAt(i) + 0.5f, 1e-4f);
}

TEST(BatchNormTest, IdentityWithUnitStats)
{
    Tensor x = Tensor::randn(Shape{1, 2, 3, 3}, 26);
    Tensor ones = Tensor::full(Shape{2}, 1.0f);
    Tensor zeros = Tensor::zeros(Shape{2});
    Tensor y = kn::batchNorm2d(x, ones, zeros, zeros, ones, 0.0f);
    for (int64_t i = 0; i < x.numel(); ++i)
        EXPECT_NEAR(y.flatAt(i), x.flatAt(i), 1e-5f);
}

TEST(BatchNormTest, RequiresNchw)
{
    Tensor x = Tensor::zeros(Shape{2, 3});
    Tensor p = Tensor::zeros(Shape{3});
    EXPECT_THROW(kn::batchNorm2d(x, p, p, p, p, 1e-5f),
                 std::runtime_error);
}

TEST(GroupNormTest, PerGroupStandardization)
{
    Tensor x = Tensor::randn(Shape{1, 4, 5, 5}, 27, 3.0f);
    Tensor gamma = Tensor::full(Shape{4}, 1.0f);
    Tensor beta = Tensor::zeros(Shape{4});
    Tensor y = kn::groupNorm(x, gamma, beta, 2, 1e-5f);
    // Each group of 2 channels is standardized.
    for (int g = 0; g < 2; ++g) {
        float mean = 0;
        int64_t cnt = 0;
        for (int64_t c = g * 2; c < g * 2 + 2; ++c)
            for (int64_t i = 0; i < 5; ++i)
                for (int64_t j = 0; j < 5; ++j) {
                    mean += y.at({0, c, i, j});
                    ++cnt;
                }
        EXPECT_NEAR(mean / static_cast<float>(cnt), 0.0f, 1e-4f);
    }
}

TEST(GroupNormTest, IndivisibleGroupsThrow)
{
    Tensor x = Tensor::zeros(Shape{1, 3, 2, 2});
    Tensor p = Tensor::zeros(Shape{3});
    EXPECT_THROW(kn::groupNorm(x, p, p, 2, 1e-5f), std::runtime_error);
}

class NormShapeSweep
    : public ::testing::TestWithParam<std::pair<int64_t, int64_t>>
{
};

TEST_P(NormShapeSweep, LayerNormShapePreserved)
{
    auto [rows, d] = GetParam();
    Tensor x = Tensor::randn(Shape{rows, d}, 28);
    Tensor g = Tensor::full(Shape{d}, 1.0f);
    Tensor bt = Tensor::zeros(Shape{d});
    Tensor y = kn::layerNorm(x, g, bt, 1e-5f);
    EXPECT_EQ(y.shape(), x.shape());
    auto [mean, var] = rowStats(y, 0);
    EXPECT_NEAR(mean, 0.0f, 1e-3f);
    (void)var;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, NormShapeSweep,
    ::testing::Values(std::make_pair<int64_t, int64_t>(1, 4),
                      std::make_pair<int64_t, int64_t>(7, 16),
                      std::make_pair<int64_t, int64_t>(16, 97),
                      std::make_pair<int64_t, int64_t>(2, 768)));

}  // namespace
}  // namespace ngb
