#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <map>
#include <random>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/chrome_trace.h"
#include "obs/json_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/serve_driver.h"

namespace ngb {
namespace {

using namespace ngb::serve;

// Every suite here is named Obs* on purpose: the TSan CI leg runs
// exactly --gtest_filter='Obs*' to put the concurrency tests (and
// only code that is meant to be concurrency-clean) under the race
// detector.

/** RAII process-flag toggles so a failing test can't leak state. */
struct TraceOn {
    TraceOn() { obs::setTraceEnabled(true); }
    ~TraceOn() { obs::setTraceEnabled(false); }
};
struct MetricsOn {
    MetricsOn() { obs::setMetricsEnabled(true); }
    ~MetricsOn() { obs::setMetricsEnabled(false); }
};

// ---- json_util -------------------------------------------------------------

TEST(ObsJsonTest, EscapesQuotesBackslashesAndControls)
{
    EXPECT_EQ(obs::jsonEscape("plain"), "plain");
    EXPECT_EQ(obs::jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(obs::jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(obs::jsonEscape("a\nb\tc"), "a\\nb\\tc");
    EXPECT_EQ(obs::jsonEscape(std::string("x\x01y", 3)), "x\\u0001y");
    EXPECT_EQ(obs::jsonQuote("m\"odel"), "\"m\\\"odel\"");
}

TEST(ObsJsonTest, NumbersTrimTrailingZerosAndDegradeNonFinite)
{
    EXPECT_EQ(obs::jsonNumber(2.0), "2");
    EXPECT_EQ(obs::jsonNumber(0.5), "0.5");
    EXPECT_EQ(obs::jsonNumber(1.23456, 3), "1.235");
    EXPECT_EQ(obs::jsonNumber(-4.25), "-4.25");
    EXPECT_EQ(obs::jsonNumber(std::nan("")), "0");
    EXPECT_EQ(obs::jsonNumber(INFINITY), "0");
}

TEST(ObsJsonTest, DictBuildsOrderedObject)
{
    obs::JsonDict d;
    EXPECT_TRUE(d.empty());
    d.add("s", "a\"b").add("b", true).add("n", int64_t{-3});
    d.add("f", 1.5).addRaw("r", "[1,2]");
    EXPECT_EQ(d.str(),
              "{\"s\":\"a\\\"b\",\"b\":true,\"n\":-3,\"f\":1.5,"
              "\"r\":[1,2]}");
}

// ---- histogram -------------------------------------------------------------

TEST(ObsHistogramTest, CountSumMinMaxAreExact)
{
    obs::Histogram h;
    for (double v : {1.0, 2.0, 4.0, 8.0})
        h.observe(v);
    obs::Histogram::Snapshot s = h.snapshot();
    EXPECT_EQ(s.count, 4);
    EXPECT_DOUBLE_EQ(s.sum, 15.0);
    EXPECT_DOUBLE_EQ(s.min, 1.0);
    EXPECT_DOUBLE_EQ(s.max, 8.0);
    EXPECT_DOUBLE_EQ(s.mean(), 3.75);
}

TEST(ObsHistogramTest, EmptySnapshotIsZero)
{
    obs::Histogram h;
    EXPECT_EQ(h.snapshot().count, 0);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
}

TEST(ObsHistogramTest, PercentilesTrackSortedVectorWithinBucketError)
{
    // Log-normal latencies spanning several octaves — the shape the
    // log-bucketed layout exists for. With 16 sub-buckets per octave
    // a bucket is 2^(1/16) ~ 4.4% wide; interpolation lands inside
    // it, so 6% relative tolerance bounds the design error with
    // headroom for the interpolation itself.
    std::mt19937_64 rng(7);
    std::lognormal_distribution<double> dist(std::log(800.0), 0.9);
    obs::Histogram h;
    std::vector<double> exact;
    for (int i = 0; i < 20000; ++i) {
        double v = dist(rng);
        h.observe(v);
        exact.push_back(v);
    }
    std::sort(exact.begin(), exact.end());
    for (double q : {0.5, 0.9, 0.95, 0.99}) {
        double want =
            exact[static_cast<size_t>(q * (exact.size() - 1))];
        double got = h.percentile(q);
        EXPECT_NEAR(got, want, want * 0.06) << "q=" << q;
    }
    // Quantile edges clamp to the observed extremes, not bucket walls.
    EXPECT_DOUBLE_EQ(h.percentile(0.0), exact.front());
    EXPECT_DOUBLE_EQ(h.percentile(1.0), exact.back());
}

TEST(ObsHistogramTest, BucketBoundsContainTheirValues)
{
    for (double v : {0.01, 1.0, 3.5, 1000.0, 1e9}) {
        obs::Histogram h;
        h.observe(v);
        obs::Histogram::Snapshot s = h.snapshot();
        int bucket = -1;
        for (int i = 0; i < obs::Histogram::kBuckets; ++i)
            if (s.counts[i] > 0)
                bucket = i;
        ASSERT_GE(bucket, 0) << v;
        EXPECT_GE(v, obs::Histogram::bucketLo(bucket)) << v;
        EXPECT_LT(v, obs::Histogram::bucketHi(bucket)) << v;
    }
}

// ---- registry + exporters --------------------------------------------------

TEST(ObsMetricsRegistryTest, SnapshotsRenderAsJsonAndPrometheus)
{
    auto &reg = obs::MetricsRegistry::instance();
    reg.counter("obs_test.count").inc(3);
    reg.gauge("obs_test.level").set(-2);
    reg.histogram("obs_test.lat_us").observe(250.0);

    std::ostringstream js;
    reg.writeJson(js);
    std::string j = js.str();
    EXPECT_NE(j.find("\"obs_test.count\": 3"), std::string::npos) << j;
    EXPECT_NE(j.find("\"obs_test.level\": -2"), std::string::npos) << j;
    EXPECT_NE(j.find("\"obs_test.lat_us\""), std::string::npos);
    EXPECT_NE(j.find("\"p99\""), std::string::npos);
    // Provider gauges (tensor heap, scratch high-water) ride along.
    EXPECT_NE(j.find("\"tensor.live_bytes\""), std::string::npos);

    std::ostringstream pr;
    reg.writePrometheus(pr);
    std::string p = pr.str();
    EXPECT_NE(p.find("ngb_obs_test_count 3"), std::string::npos) << p;
    EXPECT_NE(p.find("# TYPE ngb_obs_test_count counter"),
              std::string::npos);
    EXPECT_NE(p.find("ngb_obs_test_lat_us{quantile=\"0.99\"}"),
              std::string::npos);
    EXPECT_NE(p.find("ngb_obs_test_lat_us_count 1"), std::string::npos);
}

TEST(ObsChromeTraceTest, WriterEmitsParseableEnvelopeAndEvents)
{
    std::ostringstream os;
    {
        obs::ChromeTraceWriter w(os);
        obs::JsonDict args;
        args.add("node", 7);
        w.processName(0, "test proc");
        w.threadName(0, 3, "worker-3");
        w.completeEvent("soft\"max", "Activation", 0, 3, 10.0, 2.5,
                        args);
        w.asyncBegin("queue", "serve", 0, obs::TraceTid("batcher"), 42,
                     1.0, obs::JsonDict());
        w.asyncEnd("queue", "serve", 0, obs::TraceTid("batcher"), 42,
                   5.0);
        w.finish();
    }
    std::string s = os.str();
    EXPECT_EQ(s.rfind("{\"traceEvents\":[\n", 0), 0u) << s;
    EXPECT_NE(s.find("],\"displayTimeUnit\":\"ms\"}\n"),
              std::string::npos);
    EXPECT_NE(s.find("\"name\":\"soft\\\"max\",\"cat\":\"Activation\","
                     "\"ph\":\"X\",\"pid\":0,\"tid\":3,\"ts\":10,"
                     "\"dur\":2.5,\"args\":{\"node\":7}"),
              std::string::npos)
        << s;
    EXPECT_NE(s.find("\"ph\":\"b\",\"pid\":0,\"tid\":\"batcher\","
                     "\"id\":42"),
              std::string::npos);
    EXPECT_NE(s.find("\"ph\":\"e\""), std::string::npos);
    EXPECT_NE(s.find("\"args\":{\"name\":\"worker-3\"}"),
              std::string::npos);
}

// ---- tracer ----------------------------------------------------------------

TEST(ObsRingTest, WrapsOverwritingOldestAndCountsDrops)
{
    obs::TraceBuffer buf(8, 0);
    for (int i = 0; i < 20; ++i) {
        obs::SpanEvent ev;
        ev.a0 = i;
        buf.record(ev);
    }
    EXPECT_EQ(buf.recorded(), 20u);
    EXPECT_EQ(buf.dropped(), 12u);
    std::vector<obs::SpanEvent> got = buf.snapshot();
    ASSERT_EQ(got.size(), 8u);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(got[static_cast<size_t>(i)].a0, 12 + i);  // oldest first
    buf.clear();
    EXPECT_EQ(buf.recorded(), 0u);
    EXPECT_TRUE(buf.snapshot().empty());
}

TEST(ObsTraceIdTest, ScopesNestAndRestore)
{
    EXPECT_EQ(obs::currentTraceId(), 0u);
    {
        obs::TraceIdScope outer(11);
        EXPECT_EQ(obs::currentTraceId(), 11u);
        {
            obs::TraceIdScope inner(22);
            EXPECT_EQ(obs::currentTraceId(), 22u);
        }
        EXPECT_EQ(obs::currentTraceId(), 11u);
    }
    EXPECT_EQ(obs::currentTraceId(), 0u);
}

TEST(ObsScopedSpanTest, RecordsOnlyWhenEnabled)
{
    auto &tracer = obs::Tracer::instance();
    uint64_t before = tracer.totalRecorded();
    // Explicitly off first: the suite must hold even when the process
    // inherited $NGB_TRACE=1 (the obs-on CI leg).
    obs::setTraceEnabled(false);
    {
        obs::ScopedSpan off(obs::SpanKind::Mark);
        EXPECT_FALSE(off.armed());
    }
    EXPECT_EQ(tracer.totalRecorded(), before);

    TraceOn on;
    {
        obs::ScopedSpan span(obs::SpanKind::Mark);
        ASSERT_TRUE(span.armed());
        span.ev().setLabel("a label too long to fit in the array");
    }
    EXPECT_EQ(tracer.totalRecorded(), before + 1);
}

// ---- concurrency (the TSan targets) ----------------------------------------

TEST(ObsMetricsConcurrencyTest, ProducersRaceASnapshottingReader)
{
    auto &reg = obs::MetricsRegistry::instance();
    obs::Counter &c = reg.counter("obs_test.race_count");
    obs::Histogram &h = reg.histogram("obs_test.race_us");
    c.reset();
    h.reset();

    constexpr int kThreads = 4;
    constexpr int kOps = 20000;
    std::atomic<bool> done{false};
    std::thread reader([&] {
        // Hammer mid-run reads the whole time producers run: the
        // point of the registry is that this is safe and the numbers
        // are coherent enough to render.
        while (!done.load(std::memory_order_acquire)) {
            std::ostringstream os;
            reg.writeJson(os);
            obs::Histogram::Snapshot s = h.snapshot();
            EXPECT_GE(s.percentile(0.99), 0.0);
            EXPECT_LE(s.count,
                      static_cast<int64_t>(kThreads) * kOps);
        }
    });
    std::vector<std::thread> producers;
    for (int t = 0; t < kThreads; ++t)
        producers.emplace_back([&, t] {
            for (int i = 0; i < kOps; ++i) {
                c.inc();
                h.observe(static_cast<double>((t + 1) * 100 + i % 97));
            }
        });
    for (std::thread &t : producers)
        t.join();
    done.store(true, std::memory_order_release);
    reader.join();

    EXPECT_EQ(c.value(), int64_t{kThreads} * kOps);
    obs::Histogram::Snapshot s = h.snapshot();
    EXPECT_EQ(s.count, int64_t{kThreads} * kOps);
    uint64_t bucket_total = 0;
    for (uint64_t b : s.counts)
        bucket_total += b;
    EXPECT_EQ(bucket_total, static_cast<uint64_t>(kThreads) * kOps);
}

TEST(ObsTracerConcurrencyTest, ParallelProducersThenQuiescentExport)
{
    TraceOn on;
    auto &tracer = obs::Tracer::instance();
    uint64_t before = tracer.totalRecorded();

    constexpr int kThreads = 4;
    constexpr int kSpans = 2000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([t] {
            obs::Tracer::instance().setThreadName(
                "obs-test-" + std::to_string(t));
            obs::TraceIdScope id(static_cast<uint64_t>(t) + 1);
            for (int i = 0; i < kSpans; ++i) {
                obs::ScopedSpan span(obs::SpanKind::Mark);
                span.ev().setLabel("concurrent");
                span.ev().a0 = i;
            }
        });
    for (std::thread &t : threads)
        t.join();

    // join() is the quiescence point: every producer's release store
    // happened-before this read.
    EXPECT_EQ(tracer.totalRecorded() - before,
              static_cast<uint64_t>(kThreads) * kSpans);
    std::ostringstream os;
    tracer.writeChromeTrace(os);
    std::string s = os.str();
    EXPECT_EQ(s.rfind("{\"traceEvents\":[\n", 0), 0u);
    EXPECT_NE(s.find("],\"displayTimeUnit\":\"ms\""),
              std::string::npos);
    // Drop accounting rides in the envelope's otherData block.
    EXPECT_NE(s.find("\"otherData\":{\"dropped_spans\":"),
              std::string::npos);
    EXPECT_EQ(s.substr(s.size() - 2), "}\n");
    EXPECT_NE(s.find("obs-test-0"), std::string::npos);
    EXPECT_NE(s.find("\"trace_id\":" + std::to_string(kThreads)),
              std::string::npos);
}

// ---- end-to-end determinism ------------------------------------------------

/**
 * Per-request span structure of everything currently recorded: for
 * each trace id, the sorted (op, node) list of its kernel spans. The
 * shape of the work is deterministic under a fixed seed even though
 * timings and batch composition are not.
 */
std::map<uint64_t, std::vector<std::pair<int, int>>>
spanStructure()
{
    std::map<uint64_t, std::vector<std::pair<int, int>>> by_request;
    for (const auto &te : obs::Tracer::instance().collect()) {
        EXPECT_EQ(te.dropped, 0u);
        for (const obs::SpanEvent &ev : te.events)
            if (ev.kind == obs::SpanKind::Node && ev.traceId != 0)
                by_request[ev.traceId].push_back(
                    {static_cast<int>(ev.op), ev.node});
    }
    for (auto &[id, ops] : by_request)
        std::sort(ops.begin(), ops.end());
    return by_request;
}

TEST(ObsServeDeterminismTest, IdenticalSeedsProduceIdenticalSpanTrees)
{
    TraceOn trace_on;
    MetricsOn metrics_on;
    ServeConfig cfg;
    cfg.mix = parseMix("vit_b:2,gpt2:1");
    cfg.rps = 120;
    cfg.durationS = 0.2;
    cfg.policy.maxBatch = 4;
    cfg.policy.timeoutUs = 1000;
    cfg.queueDepth = 4096;
    cfg.engine.scale = 16;
    cfg.seed = 99;
    cfg.samplerCadenceUs = 5000;
    ThreadPool pool(2);

    obs::Tracer::instance().clear();
    ServeResult a = runServe(cfg, pool);
    auto tree_a = spanStructure();

    obs::Tracer::instance().clear();
    ServeResult b = runServe(cfg, pool);
    auto tree_b = spanStructure();

    ASSERT_GT(a.stats.completed, 0);
    EXPECT_EQ(a.stats.completed, b.stats.completed);
    ASSERT_FALSE(tree_a.empty());
    // Same request ids, and per request the same kernels over the
    // same nodes — batching/timing may differ, structure may not.
    EXPECT_EQ(tree_a, tree_b);
    // Every completed request shows up as a traced span tree.
    EXPECT_EQ(tree_a.size(),
              static_cast<size_t>(a.stats.completed));
}

}  // namespace
}  // namespace ngb
