#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "ops/kernels.h"

namespace ngb {
namespace {

namespace kn = kernels;

// ----- Pooling parameter sweep -------------------------------------------

class PoolSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(PoolSweep, MaxPoolNeverBelowAvgPool)
{
    auto [kernel, stride, padding] = GetParam();
    Tensor x = Tensor::randn(Shape{1, 2, 12, 12}, 101);
    // Shift positive so zero padding cannot exceed data values.
    x = kn::addScalar(x, 10.0f);
    Tensor mx = kn::maxPool2d(x, kernel, stride, padding);
    Tensor av = kn::avgPool2d(x, kernel, stride, padding);
    ASSERT_EQ(mx.shape(), av.shape());
    for (int64_t i = 0; i < mx.numel(); ++i)
        EXPECT_GE(mx.flatAt(i) + 1e-5f, av.flatAt(i));
}

TEST_P(PoolSweep, OutputShapeFormula)
{
    auto [kernel, stride, padding] = GetParam();
    Tensor x = Tensor::zeros(Shape{1, 1, 12, 12});
    Tensor y = kn::maxPool2d(x, kernel, stride, padding);
    int64_t want = (12 + 2 * padding - kernel) / stride + 1;
    EXPECT_EQ(y.shape()[2], want);
    EXPECT_EQ(y.shape()[3], want);
}

INSTANTIATE_TEST_SUITE_P(
    Params, PoolSweep,
    ::testing::Values(std::make_tuple(2, 2, 0), std::make_tuple(3, 2, 1),
                      std::make_tuple(3, 1, 1), std::make_tuple(1, 2, 0),
                      std::make_tuple(4, 4, 0)));

// ----- Broadcast rank sweep ------------------------------------------------

class BroadcastSweep
    : public ::testing::TestWithParam<std::pair<Shape, Shape>>
{
};

TEST_P(BroadcastSweep, AddCommutes)
{
    auto [sa, sb] = GetParam();
    Tensor a = Tensor::randn(sa, 102);
    Tensor b = Tensor::randn(sb, 103);
    Tensor ab = kn::add(a, b);
    Tensor ba = kn::add(b, a);
    ASSERT_EQ(ab.shape(), ba.shape());
    for (int64_t i = 0; i < ab.numel(); ++i)
        EXPECT_FLOAT_EQ(ab.flatAt(i), ba.flatAt(i));
}

TEST_P(BroadcastSweep, MulWithOnesIsIdentityOnBroadcast)
{
    auto [sa, sb] = GetParam();
    Tensor a = Tensor::randn(sa, 104);
    Tensor ones = Tensor::full(sb, 1.0f);
    Tensor y = kn::mul(a, ones);
    // Every output element equals some input element of a.
    Tensor want = kn::add(a, Tensor::zeros(sb));
    ASSERT_EQ(y.shape(), want.shape());
    for (int64_t i = 0; i < y.numel(); ++i)
        EXPECT_FLOAT_EQ(y.flatAt(i), want.flatAt(i));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BroadcastSweep,
    ::testing::Values(
        std::make_pair(Shape{4}, Shape{1}),
        std::make_pair(Shape{3, 4}, Shape{4}),
        std::make_pair(Shape{2, 1, 4}, Shape{1, 3, 1}),
        std::make_pair(Shape{2, 3, 4}, Shape{2, 3, 4}),
        std::make_pair(Shape{1, 5}, Shape{6, 1})));

// ----- Grouped convolution sweep -------------------------------------------

class GroupedConvSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(GroupedConvSweep, OutputChannelsIndependentAcrossGroups)
{
    int groups = GetParam();
    int64_t c = 8;
    Tensor x = Tensor::randn(Shape{1, c, 6, 6}, 105);
    Tensor w = Tensor::randn(Shape{c, c / groups, 3, 3}, 106);
    Tensor base = kn::conv2d(x, w, Tensor(), 1, 1, groups);

    // Perturbing the last group's input channels must not change the
    // first group's output channels.
    Tensor x2 = x.clone();
    int64_t cg = c / groups;
    for (int64_t ch = c - cg; ch < c; ++ch)
        for (int64_t i = 0; i < 6; ++i)
            for (int64_t j = 0; j < 6; ++j)
                x2.set({0, ch, i, j}, -x2.at({0, ch, i, j}) + 1.0f);
    Tensor pert = kn::conv2d(x2, w, Tensor(), 1, 1, groups);
    int64_t fg = c / groups;  // filters per group
    for (int64_t f = 0; f < fg && groups > 1; ++f)
        for (int64_t i = 0; i < 6; ++i)
            EXPECT_NEAR(base.at({0, f, i, i}), pert.at({0, f, i, i}),
                        1e-4f);
}

INSTANTIATE_TEST_SUITE_P(Groups, GroupedConvSweep,
                         ::testing::Values(1, 2, 4, 8));

// ----- Roll dimension sweep --------------------------------------------------

class RollSweep : public ::testing::TestWithParam<std::pair<int, int64_t>>
{
};

TEST_P(RollSweep, InverseRollRestores)
{
    auto [dim, shift] = GetParam();
    Tensor x = Tensor::randn(Shape{3, 4, 5}, 107);
    Tensor y = kn::roll(kn::roll(x, shift, dim), -shift, dim);
    for (int64_t i = 0; i < x.numel(); ++i)
        EXPECT_FLOAT_EQ(y.flatAt(i), x.flatAt(i));
}

TEST_P(RollSweep, PreservesMultiset)
{
    auto [dim, shift] = GetParam();
    Tensor x = Tensor::arange(Shape{3, 4, 5});
    Tensor y = kn::roll(x, shift, dim);
    double sx = 0, sy = 0;
    for (int64_t i = 0; i < x.numel(); ++i) {
        sx += x.flatAt(i);
        sy += y.flatAt(i);
    }
    EXPECT_DOUBLE_EQ(sx, sy);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, RollSweep,
    ::testing::Values(std::make_pair(0, 1L), std::make_pair(1, 2L),
                      std::make_pair(2, 3L), std::make_pair(1, -1L),
                      std::make_pair(0, 7L)));

// ----- Pad sweep ---------------------------------------------------------------

class PadSweep
    : public ::testing::TestWithParam<std::tuple<int, int64_t, int64_t>>
{
};

TEST_P(PadSweep, SumPreservedAndShapeGrows)
{
    auto [dim, before, after] = GetParam();
    Tensor x = Tensor::randn(Shape{2, 3, 4}, 108);
    Tensor y = kn::pad(x, dim, before, after);
    EXPECT_EQ(y.shape()[static_cast<size_t>(dim)],
              x.shape()[static_cast<size_t>(dim)] + before + after);
    double sx = 0, sy = 0;
    for (int64_t i = 0; i < x.numel(); ++i)
        sx += x.flatAt(i);
    for (int64_t i = 0; i < y.numel(); ++i)
        sy += y.flatAt(i);
    EXPECT_NEAR(sx, sy, 1e-4);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, PadSweep,
    ::testing::Values(std::make_tuple(0, 1L, 0L),
                      std::make_tuple(1, 0L, 2L),
                      std::make_tuple(2, 2L, 2L),
                      std::make_tuple(1, 3L, 1L)));

// ----- Interpolation scale sweep -----------------------------------------------

class InterpSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(InterpSweep, ValuesBoundedByInputRange)
{
    int out = GetParam();
    Tensor x = Tensor::randn(Shape{1, 2, 5, 5}, 109);
    float lo = 1e30f, hi = -1e30f;
    for (int64_t i = 0; i < x.numel(); ++i) {
        lo = std::min(lo, x.flatAt(i));
        hi = std::max(hi, x.flatAt(i));
    }
    Tensor y = kn::interpolateBilinear(x, out, out);
    for (int64_t i = 0; i < y.numel(); ++i) {
        EXPECT_GE(y.flatAt(i), lo - 1e-5f);
        EXPECT_LE(y.flatAt(i), hi + 1e-5f);
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, InterpSweep,
                         ::testing::Values(2, 3, 5, 10, 17));

// ----- Softmax/NMS interplay (Figure 2 behaviours) ------------------------------

TEST(DynamicBehaviourTest, NmsOutputSizeDependsOnData)
{
    // The defining non-GEMM property of Section II: output size is
    // input-data dependent.
    auto run = [](float spread) {
        Tensor boxes(Shape{8, 4});
        for (int64_t i = 0; i < 8; ++i) {
            float base = static_cast<float>(i) * spread;
            boxes.set({i, 0}, base);
            boxes.set({i, 1}, base);
            boxes.set({i, 2}, base + 10.0f);
            boxes.set({i, 3}, base + 10.0f);
        }
        Tensor scores = Tensor::full(Shape{8}, 0.9f);
        return kn::nms(boxes, scores, 0.3f, 0.0f).numel();
    };
    EXPECT_EQ(run(100.0f), 8);  // disjoint: all kept
    EXPECT_EQ(run(0.0f), 1);    // identical: one survivor
    EXPECT_GT(run(2.0f), 1);    // heavy overlap: in between
    EXPECT_LT(run(2.0f), 8);
}

}  // namespace
}  // namespace ngb
